// Benchmarks regenerating every table and figure of the Spinner paper's
// evaluation (§V). Each benchmark prints the experiment's rows once (the
// same output cmd/experiments renders) and reports the end-to-end cost of
// regenerating the experiment as the benchmark time.
//
// Run a single experiment:
//
//	go test -bench=BenchmarkTable1 -benchtime=1x
//
// The b.N loop re-runs the whole experiment; quality rows are printed only
// on the first iteration to keep -benchtime sweeps readable. Scales are
// reduced relative to cmd/experiments defaults so `go test -bench=.`
// completes in minutes; pass -scale via cmd/experiments for bigger runs.
package repro

import (
	"os"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// benchCfg returns the experiment configuration used by the benchmarks,
// printing rows only when firstRun is true.
func benchCfg(firstRun bool) experiments.Config {
	cfg := experiments.Config{Scale: 6000, Seed: 1, Workers: 4}
	if firstRun {
		cfg.Out = os.Stdout
	}
	return cfg
}

// BenchmarkTable1Comparison regenerates Table I: Spinner vs Wang et al.,
// Stanton et al. (LDG), Fennel and METIS on the Twitter-like graph,
// k ∈ {2..32}.
func BenchmarkTable1Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(benchCfg(i == 0)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Balance regenerates Table III: average ρ per graph.
func BenchmarkTable3Balance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(benchCfg(i == 0)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4WorkerLoad regenerates Table IV: PageRank superstep worker
// times under random vs Spinner placement.
func BenchmarkTable4WorkerLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(benchCfg(i == 0)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3aLocalityVsK regenerates Fig. 3(a): φ as a function of the
// number of partitions for every dataset analogue (and, via the HashPhi
// column, Fig. 3(b)'s improvement over hash partitioning).
func BenchmarkFig3aLocalityVsK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(benchCfg(i == 0), 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3bHashImprovement regenerates Fig. 3(b) standalone: the φ
// improvement factor over hash partitioning at large k.
func BenchmarkFig3bHashImprovement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig3(benchCfg(false), 64)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.K == 64 {
					b.Logf("%s k=%d: %.1fx over hash", r.Dataset, r.K, r.Improvement)
				}
			}
		}
	}
}

// BenchmarkFig4Evolution regenerates Fig. 4: per-iteration evolution of φ,
// ρ and score(G) on the Twitter-like and Yahoo-like graphs.
func BenchmarkFig4Evolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(benchCfg(i == 0)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5CapacitySweep regenerates Fig. 5: the effect of the
// additional-capacity parameter c on balance (ρ ≤ c) and convergence speed.
func BenchmarkFig5CapacitySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(benchCfg(i == 0), 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6aScaleVertices regenerates Fig. 6(a): first-iteration
// runtime as a function of the graph size (Watts–Strogatz, fixed degree).
func BenchmarkFig6aScaleVertices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6a(benchCfg(i == 0), []int{4000, 8000, 16000, 32000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6bScaleWorkers regenerates Fig. 6(b): first-iteration runtime
// as a function of the number of workers.
func BenchmarkFig6bScaleWorkers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6b(benchCfg(i == 0), []int{1, 2, 4, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6cScaleParts regenerates Fig. 6(c): first-iteration runtime
// as a function of the number of partitions.
func BenchmarkFig6cScaleParts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6c(benchCfg(i == 0), []int{2, 8, 32, 128}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7DynamicGraphs regenerates Fig. 7: cost savings and
// partitioning stability of incremental adaptation vs repartitioning after
// graph growth.
func BenchmarkFig7DynamicGraphs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(benchCfg(i == 0), []float64{0.01, 0.05, 0.10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8ElasticResize regenerates Fig. 8: cost savings and stability
// of elastic adaptation when partitions are added.
func BenchmarkFig8ElasticResize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(benchCfg(i == 0), []int{1, 2, 4, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Applications regenerates Fig. 9: runtime improvement of SP,
// PR and CC under Spinner placement vs hash placement.
func BenchmarkFig9Applications(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(benchCfg(i == 0)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (DESIGN.md §5) --------------------------------------

// ablationGraph is shared by the ablation benches. The hub-skewed Twitter
// analogue is used because the probabilistic-migration ablation only shows
// its ρ damage when hubs make partitions capacity-constrained.
func ablationGraph() *graph.Weighted {
	return graph.Convert(gen.Load(gen.TwitterLike, 6000, 1))
}

func runAblation(b *testing.B, mod func(*core.Options)) (phi, rho float64, iters int) {
	w := ablationGraph()
	opts := core.DefaultOptions(16)
	opts.Seed = 1
	opts.NumWorkers = 4
	if mod != nil {
		mod(&opts)
	}
	p, err := core.NewPartitioner(opts)
	if err != nil {
		b.Fatal(err)
	}
	var res *core.Result
	for i := 0; i < b.N; i++ {
		res, err = p.PartitionWeighted(w)
		if err != nil {
			b.Fatal(err)
		}
	}
	return metrics.Phi(w, res.Labels), metrics.Rho(w, res.Labels, 16), res.Iterations
}

// BenchmarkAblationBaseline is the reference configuration for the
// ablation comparisons below.
func BenchmarkAblationBaseline(b *testing.B) {
	phi, rho, iters := runAblation(b, nil)
	b.ReportMetric(phi, "φ")
	b.ReportMetric(rho, "ρ")
	b.ReportMetric(float64(iters), "iters")
}

// BenchmarkAblationSyncLoads disables the per-worker asynchronous load
// view (§IV-A4).
func BenchmarkAblationSyncLoads(b *testing.B) {
	phi, rho, iters := runAblation(b, func(o *core.Options) { o.DisableAsyncWorkerState = true })
	b.ReportMetric(phi, "φ")
	b.ReportMetric(rho, "ρ")
	b.ReportMetric(float64(iters), "iters")
}

// BenchmarkAblationUnboundedMigration disables the probabilistic migration
// bound (Eq. 14); watch the ρ metric degrade.
func BenchmarkAblationUnboundedMigration(b *testing.B) {
	phi, rho, iters := runAblation(b, func(o *core.Options) { o.UnboundedMigration = true })
	b.ReportMetric(phi, "φ")
	b.ReportMetric(rho, "ρ")
	b.ReportMetric(float64(iters), "iters")
}

// BenchmarkAblationUnweighted ignores the directed-multiplicity edge
// weights of Eq. 3.
func BenchmarkAblationUnweighted(b *testing.B) {
	phi, rho, iters := runAblation(b, func(o *core.Options) { o.IgnoreEdgeWeights = true })
	b.ReportMetric(phi, "φ")
	b.ReportMetric(rho, "ρ")
	b.ReportMetric(float64(iters), "iters")
}

// BenchmarkAblationRandomTieBreak breaks score ties randomly instead of
// preferring the current label.
func BenchmarkAblationRandomTieBreak(b *testing.B) {
	phi, rho, iters := runAblation(b, func(o *core.Options) { o.RandomTieBreak = true })
	b.ReportMetric(phi, "φ")
	b.ReportMetric(rho, "ρ")
	b.ReportMetric(float64(iters), "iters")
}

// --- Microbenchmarks -------------------------------------------------------

// BenchmarkSpinnerIteration measures the core partitioning loop on a
// mid-size small-world graph (whole run, conversion included).
func BenchmarkSpinnerIteration(b *testing.B) {
	g := gen.WattsStrogatz(20000, 16, 0.3, 1)
	opts := core.DefaultOptions(32)
	opts.Seed = 1
	p, err := core.NewPartitioner(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Partition(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineMultilevel measures the METIS-style comparator on the
// same workload for context.
func BenchmarkBaselineMultilevel(b *testing.B) {
	w := graph.Convert(gen.WattsStrogatz(20000, 16, 0.3, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baselines.Multilevel{Seed: 1}.Partition(w, 32)
	}
}

// BenchmarkBaselineFennel measures the Fennel streaming comparator.
func BenchmarkBaselineFennel(b *testing.B) {
	w := graph.Convert(gen.WattsStrogatz(20000, 16, 0.3, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baselines.Fennel{Seed: 1}.Partition(w, 32)
	}
}

// BenchmarkConvert measures the directed→weighted-undirected conversion.
func BenchmarkConvert(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.Convert(g)
	}
}
