package repro

import (
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// The root package re-exports the library's public API so downstream users
// import a single path. The implementation lives in internal/ packages;
// these aliases are the supported surface.

// Graph types.
type (
	// Graph is an adjacency-list graph (directed or undirected).
	Graph = graph.Graph
	// Weighted is the weighted undirected graph Spinner partitions,
	// produced from a directed graph by Convert (Eq. 3 of the paper).
	Weighted = graph.Weighted
	// VertexID identifies a vertex; IDs are dense in [0, NumVertices).
	VertexID = graph.VertexID
	// Mutation is a batch of graph changes for incremental repartitioning.
	Mutation = graph.Mutation
	// WeightedEdgeRecord is an undirected edge with an explicit weight,
	// used inside Mutation batches.
	WeightedEdgeRecord = graph.WeightedEdgeRecord
)

// Partitioner types.
type (
	// Options configures a Partitioner; see DefaultOptions.
	Options = core.Options
	// Partitioner computes k-way balanced partitionings with Spinner.
	Partitioner = core.Partitioner
	// Result is the outcome of a partitioning run.
	Result = core.Result
	// IterationMetrics traces one LPA iteration (the Fig. 4 curves).
	IterationMetrics = core.IterationMetrics
)

// NewGraph returns an empty graph with n vertices.
func NewGraph(n int, directed bool) *Graph { return graph.New(n, directed) }

// Convert turns a (possibly directed) graph into the weighted undirected
// form Spinner partitions, implementing Eq. 3 of the paper.
func Convert(g *Graph) *Weighted { return graph.Convert(g) }

// DefaultOptions returns the paper's experiment configuration for k
// partitions: c = 1.05, ε = 0.001, w = 5.
func DefaultOptions(k int) Options { return core.DefaultOptions(k) }

// NewPartitioner validates opts and returns a Partitioner.
func NewPartitioner(opts Options) (*Partitioner, error) { return core.NewPartitioner(opts) }

// Phi returns the ratio of local edge weight of a labeling (Eq. 16).
func Phi(w *Weighted, labels []int32) float64 { return metrics.Phi(w, labels) }

// Rho returns the maximum normalized load of a labeling (Eq. 16).
func Rho(w *Weighted, labels []int32, k int) float64 { return metrics.Rho(w, labels, k) }

// Difference returns the fraction of vertices whose label differs between
// two labelings (§V-D, partitioning stability).
func Difference(a, b []int32) float64 { return metrics.Difference(a, b) }

// WattsStrogatz generates the paper's synthetic scalability workload
// (§V-B): a directed small-world graph with out-degree k and rewiring
// probability beta.
func WattsStrogatz(n, k int, beta float64, seed uint64) *Graph {
	return gen.WattsStrogatz(n, k, beta, seed)
}

// BarabasiAlbert generates a hub-skewed preferential-attachment graph
// (a follower-network surrogate).
func BarabasiAlbert(n, m int, seed uint64) *Graph { return gen.BarabasiAlbert(n, m, seed) }
