// Package repro is a from-scratch Go reproduction of "Spinner: Scalable
// Graph Partitioning in the Cloud" (Martella, Logothetis, Loukas, Siganos;
// ICDE 2017 / arXiv:1404.3861).
//
// The primary contribution — the Spinner k-way balanced label-propagation
// partitioner — lives in internal/core, built on a from-scratch
// Pregel/Giraph BSP engine (internal/pregel). Baseline partitioners,
// dataset analogues, analytical applications and a cluster cost model
// complete the substrate needed to regenerate every table and figure of
// the paper's evaluation; see DESIGN.md for the inventory and
// EXPERIMENTS.md for paper-vs-measured results.
//
// The benchmarks in bench_test.go regenerate each experiment:
//
//	go test -bench=Table1 -benchtime=1x
//	go test -bench=. -benchmem
//
// or run the CLI: go run ./cmd/experiments -exp all.
//
// # Performance architecture
//
// Superstep cost in a Pregel system is dominated by message traffic and
// barrier overhead, so the engine's hot path is built around reusable,
// engine-owned buffers rather than per-superstep allocation:
//
//   - Message planes (worker outboxes, per-vertex inboxes backed by
//     per-worker flat arenas, combiner staging slots) are created once per
//     run and truncated in place between supersteps — steady-state
//     supersteps allocate nothing on the message path.
//   - With a message combiner installed, messages are combined on the send
//     side: each worker stages one merged payload per destination vertex,
//     so both allocation and cross-worker delivery volume shrink before
//     the barrier (see internal/pregel's package comment for when each
//     path is taken).
//   - Active-vertex tracking is incremental — workers count survivors at
//     compute time and reactivations at delivery time — so the engine
//     never rescans the vertex set between supersteps.
//   - Graphs built via graph.Builder are CSR-backed: adjacency lives in
//     one flat, sorted target array, keeping LPA edge scans cache-friendly
//     and giving binary-search HasEdge.
//
// The `make bench` target records BenchmarkSpinnerIteration under
// -benchmem into BENCH_pr1.json; future performance work is measured
// against that trajectory.
//
// # Serving architecture
//
// internal/serve turns the batch algorithms into a live
// partition-maintenance service (the paper's §III-D/E claim that
// partitions are maintained, not recomputed), exposed by cmd/spinnerd and
// walked through in examples/serving:
//
//   - The store is sharded (Config.Shards): each shard owns a contiguous
//     vertex range — its adjacency rows, its label segment, and the
//     integer cut counters of the edges whose lower endpoint it owns —
//     behind an atomically-swapped vertex→shard route table.
//   - Lookups are lock-free: readers load the route table and the target
//     shard's immutable snapshot through two atomic pointers; a published
//     snapshot is never mutated.
//   - graph.Mutation batches flow through a bounded mutation log into a
//     coordinator goroutine. Add-only batches between existing vertices
//     broadcast to the shards, which append their rows and fold O(batch)
//     incremental cut deltas in parallel (labels are frozen between
//     barriers), publishing O(k) snapshots that reuse the previous label
//     copy. Batches that append vertices or remove edges apply atomically
//     under a full shard barrier, seed new vertices least-loaded, and
//     advance the counters by the batch's exact deltas
//     (graph.Mutation.CutEdits) — never an O(E) recompute per swap.
//   - Every Config.ReconcileEvery applied batches, a reconciliation pass
//     recomputes the per-shard counters exactly (bit-identical to the
//     incremental values — metrics.CutWeightsRange over each owned range)
//     and rebalances shard boundaries by weighted degree
//     (cluster.BalancedRanges).
//   - The coordinator composes the cut ratio from the per-shard integer
//     counters; past a degradation threshold it clones the merged graph
//     under a barrier and restabilizes in a background goroutine with the
//     incremental Spinner adaptation, streaming per-iteration labels back
//     as mid-run snapshots (via the pregel AfterSuperstep hook) and
//     merging the final labels — scattered back per shard — when the run
//     lands.
//   - Elastic k→k′ changes relabel the paper's n/(k+n) fraction
//     immediately — lookups never observe an out-of-range label — and
//     repair locality with the same background machinery; runs in flight
//     across a resize are discarded, not merged.
//
// internal/metrics.ServeCounters instruments lookups, staleness,
// migration volume, the sharded write plane (sub-batches, reconciles,
// drift, rebalances) and the durability path (journal appends/bytes/
// fsyncs, checkpoints, recovery replay length);
// cluster.MigrationVolume/MigrationTime price the migration traffic under
// the cost model. `make bench-serve` records
// BenchmarkServeLookupUnderChurn (sustained lookup latency under live
// churn and restabilization) into BENCH_pr2.json; `make bench-mutate`
// records BenchmarkServeMutateThroughput (the sharded write plane:
// shards=1/2/4 fan-out plus incremental-vs-exact cut tracking) into
// BENCH_pr3.json; `make test-race` runs the concurrency-bearing packages
// under the race detector.
//
// # Durability
//
// A maintained partitioning is exactly the state the paper argues is too
// expensive to recompute, so the serving layer can persist it
// (internal/wal + serve.NewDurable/BootstrapDurable/Open, surfaced by
// spinnerd's -data-dir/-fsync/-checkpoint-every flags):
//
// The durable write path is a staged commit pipeline (ISSUE 5): group
// commit, coalesced apply, background checkpoints.
//
//   - Journal + group commit: each coordinator turn drains everything
//     pending in the mutation log and appends the drained
//     mutations/resizes to the segmented, CRC-framed write-ahead log
//     (binary graph.Mutation encoding, monotonic sequence numbers) as
//     ONE wal group — one frame-staging pass, one write syscall, at most
//     one fsync (wal.AppendGroup; the wal layer also combines fsyncs
//     across concurrent appenders). The durability boundary stays
//     pre-apply per entry: the whole group is durable before any entry
//     of it is applied, so no state a lookup has ever observed can be
//     forgotten by a crash.
//   - Fsync policy: never (page cache — survives process death, the
//     common crash), interval (bounded loss window against OS/power
//     death), always (every acknowledged batch survives power loss).
//     BenchmarkServeMutateDurable (`make bench-durable` → BENCH_pr5.json;
//     PR 4's serial numbers remain in BENCH_pr4.json) prices each policy
//     against the in-memory write plane along a concurrent-submitters
//     axis: the framing itself (fsync=never) costs well under 2x, and
//     with ≥8 submitters group commit amortizes fsync=always toward the
//     interval policy.
//   - Coalesced apply: consecutive add-only batches drained in one turn
//     merge into a single shard broadcast — one scan, one cut-delta
//     fold, one snapshot publication per shard for the run (sound
//     because add-only batches never relabel).
//   - Background checkpoints: every CheckpointEvery applied entries the
//     barrier only *captures* the composed state — graph (Weighted.Clone),
//     labels, k, shard ranges, generation/epoch, trigger state — and a
//     background goroutine encodes and atomically installs it
//     (tmp+fsync+rename), prunes old checkpoints, and deletes journal
//     segments below the oldest retained one; at most one is in flight,
//     and the write plane never stops for the encode. Close still
//     checkpoints synchronously after waiting out an in-flight capture.
//   - Recovery: serve.Open loads the latest valid checkpoint (falling
//     back past a damaged newest file — or one that never finished
//     installing because the crash hit mid-checkpoint, in which case the
//     longer journal tail replays to the identical state), rebuilds the
//     shards, verifies the cut counters bit-for-bit, replays the journal
//     tail through the normal shard-broadcast apply path, and runs an
//     exact reconcile (CutDrift stays 0). Torn tails — the crash shape —
//     are truncated; mid-log corruption fails recovery loudly rather
//     than silently dropping acknowledged batches. For quiesced
//     histories recovery is bit-identical: labels, k, shard ranges and
//     integer cut counters match the uninterrupted store exactly
//     (property-tested, including a crash during an in-flight background
//     checkpoint).
//
// # CI
//
// .github/workflows/ci.yml enforces the contract on every push and PR, on
// the Go version pinned in go.mod with module/build caching: `make lint`
// (gofmt -l + go vet), `make check` (build + vet + tier-1 tests + race
// pass), `make bench-quick` (every recorded benchmark compiled and run
// once, -benchtime=1x, no timing or JSON), and `make recovery-smoke`
// (kill -9 a durable spinnerd mid-churn — additionally simulating a
// crash during an in-flight background checkpoint — reopen the data
// dir, assert health and lookup consistency); BENCH_pr4.json and
// BENCH_pr5.json are uploaded as workflow artifacts.
package repro
