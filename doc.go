// Package repro is a from-scratch Go reproduction of "Spinner: Scalable
// Graph Partitioning in the Cloud" (Martella, Logothetis, Loukas, Siganos;
// ICDE 2017 / arXiv:1404.3861).
//
// The primary contribution — the Spinner k-way balanced label-propagation
// partitioner — lives in internal/core, built on a from-scratch
// Pregel/Giraph BSP engine (internal/pregel). Baseline partitioners,
// dataset analogues, analytical applications and a cluster cost model
// complete the substrate needed to regenerate every table and figure of
// the paper's evaluation; see DESIGN.md for the inventory and
// EXPERIMENTS.md for paper-vs-measured results.
//
// The benchmarks in bench_test.go regenerate each experiment:
//
//	go test -bench=Table1 -benchtime=1x
//	go test -bench=. -benchmem
//
// or run the CLI: go run ./cmd/experiments -exp all.
//
// # Performance architecture
//
// Superstep cost in a Pregel system is dominated by message traffic and
// barrier overhead, so the engine's hot path is built around reusable,
// engine-owned buffers rather than per-superstep allocation:
//
//   - Message planes (worker outboxes, per-vertex inboxes backed by
//     per-worker flat arenas, combiner staging slots) are created once per
//     run and truncated in place between supersteps — steady-state
//     supersteps allocate nothing on the message path.
//   - With a message combiner installed, messages are combined on the send
//     side: each worker stages one merged payload per destination vertex,
//     so both allocation and cross-worker delivery volume shrink before
//     the barrier (see internal/pregel's package comment for when each
//     path is taken).
//   - Active-vertex tracking is incremental — workers count survivors at
//     compute time and reactivations at delivery time — so the engine
//     never rescans the vertex set between supersteps.
//   - Graphs built via graph.Builder are CSR-backed: adjacency lives in
//     one flat, sorted target array, keeping LPA edge scans cache-friendly
//     and giving binary-search HasEdge.
//
// The `make bench` target records BenchmarkSpinnerIteration under
// -benchmem into BENCH_pr1.json; future performance work is measured
// against that trajectory.
//
// # Serving architecture
//
// internal/serve turns the batch algorithms into a live
// partition-maintenance service (the paper's §III-D/E claim that
// partitions are maintained, not recomputed), exposed by cmd/spinnerd and
// walked through in examples/serving:
//
//   - Lookups are lock-free: readers load an immutable snapshot through
//     one atomic pointer; a published snapshot is never mutated.
//   - graph.Mutation batches flow through a bounded mutation log into a
//     single maintenance goroutine that owns the authoritative graph,
//     applies each batch atomically, seeds appended vertices on the
//     least-loaded partitions, and swaps a fresh snapshot per batch.
//   - The loop tracks the cut ratio; past a degradation threshold it
//     clones the graph and restabilizes in a background goroutine with
//     the incremental Spinner adaptation, streaming per-iteration labels
//     back as mid-run snapshots (via the pregel AfterSuperstep hook) and
//     merging the final labels when the run lands.
//   - Elastic k→k′ changes relabel the paper's n/(k+n) fraction
//     immediately — lookups never observe an out-of-range label — and
//     repair locality with the same background machinery; runs in flight
//     across a resize are discarded, not merged.
//
// internal/metrics.ServeCounters instruments lookups, staleness and
// migration volume; cluster.MigrationVolume/MigrationTime price the
// migration traffic under the cost model. `make bench-serve` records
// BenchmarkServeLookupUnderChurn (sustained lookup latency under live
// churn and restabilization) into BENCH_pr2.json, and `make test-race`
// runs the concurrency-bearing packages under the race detector.
package repro
