// Package repro is a from-scratch Go reproduction of "Spinner: Scalable
// Graph Partitioning in the Cloud" (Martella, Logothetis, Loukas, Siganos;
// ICDE 2017 / arXiv:1404.3861).
//
// The primary contribution — the Spinner k-way balanced label-propagation
// partitioner — lives in internal/core, built on a from-scratch
// Pregel/Giraph BSP engine (internal/pregel). Baseline partitioners,
// dataset analogues, analytical applications and a cluster cost model
// complete the substrate needed to regenerate every table and figure of
// the paper's evaluation; see DESIGN.md for the inventory and
// EXPERIMENTS.md for paper-vs-measured results.
//
// The benchmarks in bench_test.go regenerate each experiment:
//
//	go test -bench=Table1 -benchtime=1x
//	go test -bench=. -benchmem
//
// or run the CLI: go run ./cmd/experiments -exp all.
//
// # Performance architecture
//
// Superstep cost in a Pregel system is dominated by message traffic and
// barrier overhead, so the engine's hot path is built around reusable,
// engine-owned buffers rather than per-superstep allocation:
//
//   - Message planes (worker outboxes, per-vertex inboxes backed by
//     per-worker flat arenas, combiner staging slots) are created once per
//     run and truncated in place between supersteps — steady-state
//     supersteps allocate nothing on the message path.
//   - With a message combiner installed, messages are combined on the send
//     side: each worker stages one merged payload per destination vertex,
//     so both allocation and cross-worker delivery volume shrink before
//     the barrier (see internal/pregel's package comment for when each
//     path is taken).
//   - Active-vertex tracking is incremental — workers count survivors at
//     compute time and reactivations at delivery time — so the engine
//     never rescans the vertex set between supersteps.
//   - Graphs built via graph.Builder are CSR-backed: adjacency lives in
//     one flat, sorted target array, keeping LPA edge scans cache-friendly
//     and giving binary-search HasEdge.
//
// The `make bench` target records BenchmarkSpinnerIteration under
// -benchmem into BENCH_pr1.json; future performance work is measured
// against that trajectory.
package repro
