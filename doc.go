// Package repro is a from-scratch Go reproduction of "Spinner: Scalable
// Graph Partitioning in the Cloud" (Martella, Logothetis, Loukas, Siganos;
// ICDE 2017 / arXiv:1404.3861).
//
// The primary contribution — the Spinner k-way balanced label-propagation
// partitioner — lives in internal/core, built on a from-scratch
// Pregel/Giraph BSP engine (internal/pregel). Baseline partitioners,
// dataset analogues, analytical applications and a cluster cost model
// complete the substrate needed to regenerate every table and figure of
// the paper's evaluation; see DESIGN.md for the inventory and
// EXPERIMENTS.md for paper-vs-measured results.
//
// The benchmarks in bench_test.go regenerate each experiment:
//
//	go test -bench=Table1 -benchtime=1x
//	go test -bench=. -benchmem
//
// or run the CLI: go run ./cmd/experiments -exp all.
package repro
