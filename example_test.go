package repro_test

import (
	"fmt"

	"repro"
)

// Example demonstrates the basic flow: generate, partition, evaluate.
func Example() {
	g := repro.WattsStrogatz(2000, 8, 0.2, 1)
	opts := repro.DefaultOptions(8)
	opts.Seed = 1
	p, err := repro.NewPartitioner(opts)
	if err != nil {
		panic(err)
	}
	res, err := p.Partition(g)
	if err != nil {
		panic(err)
	}
	w := repro.Convert(g)
	fmt.Printf("k=%d converged=%v\n", res.K, res.Converged)
	fmt.Printf("locality beats hash: %v\n", repro.Phi(w, res.Labels) > 1.0/8)
	fmt.Printf("balanced: %v\n", repro.Rho(w, res.Labels, 8) < 1.15)
	// Output:
	// k=8 converged=true
	// locality beats hash: true
	// balanced: true
}

// ExamplePartitioner_Adapt shows incremental repartitioning after growth.
func ExamplePartitioner_Adapt() {
	g := repro.WattsStrogatz(2000, 8, 0.2, 2)
	w := repro.Convert(g)
	opts := repro.DefaultOptions(8)
	opts.Seed = 2
	p, _ := repro.NewPartitioner(opts)
	base, err := p.PartitionWeighted(w)
	if err != nil {
		panic(err)
	}

	// The graph changes: a new vertex with three friendships appears.
	nv := w.AddVertices(1)
	mut := &repro.Mutation{}
	for _, friend := range []repro.VertexID{10, 20, 30} {
		mut.NewEdges = append(mut.NewEdges, repro.WeightedEdgeRecord{U: nv, V: friend, Weight: 2})
	}
	if _, err := mut.Apply(w); err != nil {
		panic(err)
	}

	res, err := p.Adapt(w, base.Labels, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("labels cover new vertex: %v\n", len(res.Labels) == 2001)
	fmt.Printf("stable: %v\n", repro.Difference(base.Labels, res.Labels[:2000]) < 0.2)
	// Output:
	// labels cover new vertex: true
	// stable: true
}

// ExamplePartitioner_Resize shows elastic adaptation to more partitions.
func ExamplePartitioner_Resize() {
	g := repro.WattsStrogatz(2000, 8, 0.2, 3)
	w := repro.Convert(g)
	opts8 := repro.DefaultOptions(8)
	opts8.Seed = 3
	p8, _ := repro.NewPartitioner(opts8)
	base, err := p8.PartitionWeighted(w)
	if err != nil {
		panic(err)
	}

	opts10 := repro.DefaultOptions(10)
	opts10.Seed = 3
	p10, _ := repro.NewPartitioner(opts10)
	res, err := p10.Resize(w, base.Labels, 8)
	if err != nil {
		panic(err)
	}
	maxLabel := int32(0)
	for _, l := range res.Labels {
		if l > maxLabel {
			maxLabel = l
		}
	}
	fmt.Printf("new partitions in use: %v\n", maxLabel >= 8)
	fmt.Printf("still balanced: %v\n", repro.Rho(w, res.Labels, 10) < 1.2)
	// Output:
	// new partitions in use: true
	// still balanced: true
}
