# Development targets for the Spinner reproduction.
#
#   make test        — tier-1 gate: go build ./... && go test ./...
#   make test-race   — race-detector pass over the concurrency-bearing
#                      packages (pregel engine + sharded serving layer)
#   make vet         — go vet ./...
#   make lint        — gofmt -l (fails on unformatted files) + go vet
#   make check       — vet + test + test-race (what CI enforces on push/PR)
#   make bench       — vet + tier-1 + race + BenchmarkSpinnerIteration
#                      (-benchmem, -count=5), recorded into BENCH_pr1.json
#   make bench-serve — same gate but BenchmarkServeLookupUnderChurn,
#                      recorded into BENCH_pr2.json
#   make bench-mutate— same gate but BenchmarkServeMutateThroughput (the
#                      sharded-store write plane: shards=1/2/4 fan-out plus
#                      the incremental-vs-exact cut axis), into BENCH_pr3.json
#   make bench-durable— same gate but BenchmarkServeMutateDurable (journaled
#                      vs in-memory mutation throughput across fsync
#                      policies AND concurrent submitters — the group-commit
#                      axis), into BENCH_pr5.json (PR 4's serial numbers
#                      remain in BENCH_pr4.json)
#   make bench-fairness— same gate but BenchmarkServeFairness (trickle-
#                      tenant mutation latency with and without a flooding
#                      tenant beside it — the weighted-fair admission
#                      plane), into BENCH_pr6.json
#   make bench-replica— same gate but BenchmarkFollowerLookupStaleness
#                      (read-replica lookup latency while the journal
#                      stream replicates leader churn underneath, plus the
#                      worst observed staleness), into BENCH_pr7.json
#   make bench-delta — same gate but BenchmarkCheckpointDelta (checkpoint
#                      bytes per interval on a low-churn history after a
#                      large base: incremental chain vs full re-encode —
#                      bytes_per_op in the JSON is the installed payload
#                      size), into BENCH_pr8.json
#   make bench-metrics— same gate but the observability-plane pair:
#                      BenchmarkHistogramRecord (the lock-free log-linear
#                      histogram's record path) and
#                      BenchmarkServeLookupInstrumented (sampled-vs-off
#                      lookup timing overhead), both into BENCH_pr9.json
#   make bench-watch — same gate but BenchmarkWatchFanout (one publisher
#                      churning deltas into the hub while 256/2k/10k
#                      subscribers drain it: the encode-once shared-frame
#                      path vs the per-subscriber re-encode baseline;
#                      encodes/op and p99 publish→delivery latency ride
#                      along as extra metrics), into BENCH_pr10.json
#   make bench-quick — CI benchmark smoke: every recorded benchmark runs
#                      once (-benchtime=1x -count=1, no JSON write), so
#                      compile/run breakage is caught without timing runs
#   make recovery-smoke — kill -9 a durable spinnerd mid-churn, reopen the
#                      data dir, assert /healthz + lookup consistency
#                      (scripts/recovery_smoke.sh; also a CI job)
#   make overload-smoke — flood a quota-limited spinnerd from one tenant,
#                      assert honest 429s (Retry-After + typed codes) while
#                      other tenants' writes land, then kill -9 under load
#                      and assert recovery (scripts/overload_smoke.sh;
#                      also a CI job)
#   make replication-smoke — leader + follower under churn: bounded
#                      staleness, follower lookups from its own snapshots,
#                      kill -9 the leader, /promote the follower, assert no
#                      acknowledged batch lost and lookups unchanged
#                      (scripts/replication_smoke.sh; also a CI job)
#   make changefeed-smoke — live /v1/watch consumer under churn: delta
#                      frames stream, spinnerctl feed-labels (410-resync
#                      path included) converges to lookup truth, .dckp
#                      chain links land on disk, kill -9 mid-chain and
#                      recovery from base + delta chain
#                      (scripts/changefeed_smoke.sh; also a CI job)
#   make metrics-smoke — scrape /v1/metrics under churn: Prometheus text
#                      parseability, no duplicate series, monotonic
#                      counters across scrapes, stage/HTTP histograms
#                      populated, /stats latency section, pprof side
#                      listener, spinnerctl metrics
#                      (scripts/metrics_smoke.sh; also a CI job)
#
# The serving layer (internal/serve) is a sharded store: N shards each own
# a contiguous vertex range with incremental O(batch) cut tracking, exact-
# reconciled (and boundary-rebalanced) every Config.ReconcileEvery batches.
# Durability (internal/wal) is a staged commit pipeline: each coordinator
# turn journals everything pending as one group append (one write + one
# fsync — group commit), coalesces consecutive add-only batches into single
# shard broadcasts, and checkpoints in the background (the barrier only
# clones state; encode/write/install run off the hot path). serve.Open
# recovers after a crash, falling back past a checkpoint lost mid-write.
# Replication (internal/replica) streams the leader's journal to warm-
# standby followers that replay it through the same apply path and serve
# staleness-bounded reads; /promote fences the old leader by epoch.
# The serving HTTP surface lives in internal/api (versioned /v1 routes +
# legacy aliases, typed Go client under internal/api/client, /v1/watch
# change feed); cmd/spinnerctl is the CLI companion built on the client.
# Observability (internal/metrics) is a dependency-free metrics plane:
# lock-free log-linear latency histograms and gauges in a registry,
# pipeline-stage timing seams in serve/wal, sampled lookup timing, and a
# hand-rolled Prometheus text exposition on GET /v1/metrics (plus a
# -pprof-addr side listener on spinnerd).
# CI (.github/workflows/ci.yml) runs lint + check + bench-quick + the
# recovery, overload, replication, changefeed, and metrics smokes on the
# Go version pinned in go.mod, and uploads BENCH_pr4.json through
# BENCH_pr9.json as workflow artifacts.

.PHONY: all check build vet lint test test-race bench bench-serve bench-mutate bench-durable bench-fairness bench-replica bench-delta bench-metrics bench-watch bench-quick recovery-smoke overload-smoke replication-smoke changefeed-smoke metrics-smoke

all: check

check: vet test test-race

build:
	go build ./...

vet:
	go vet ./...

lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	go vet ./...

test:
	go build ./...
	go test ./...

test-race:
	go test -race ./internal/pregel/ ./internal/serve/ ./internal/wal/ ./internal/replica/ ./internal/metrics/ ./internal/api/

bench:
	./scripts/bench.sh -l current -o BENCH_pr1.json

bench-serve:
	./scripts/bench.sh -l current -b BenchmarkServeLookupUnderChurn -p ./internal/serve -o BENCH_pr2.json

bench-mutate:
	./scripts/bench.sh -l current -b BenchmarkServeMutateThroughput -p ./internal/serve -o BENCH_pr3.json

bench-durable:
	./scripts/bench.sh -l current -b BenchmarkServeMutateDurable -p ./internal/serve -o BENCH_pr5.json

bench-fairness:
	./scripts/bench.sh -l current -b BenchmarkServeFairness -p ./internal/serve -o BENCH_pr6.json

bench-replica:
	./scripts/bench.sh -l current -b BenchmarkFollowerLookupStaleness -p ./internal/replica -o BENCH_pr7.json

bench-delta:
	./scripts/bench.sh -l current -b BenchmarkCheckpointDelta -p ./internal/serve -o BENCH_pr8.json

bench-metrics:
	./scripts/bench.sh -l histogram -b BenchmarkHistogramRecord -p ./internal/metrics -o BENCH_pr9.json
	./scripts/bench.sh -l lookup-overhead -b BenchmarkServeLookupInstrumented -p ./internal/serve -o BENCH_pr9.json

bench-watch:
	./scripts/bench.sh -l current -b BenchmarkWatchFanout -p ./internal/serve -o BENCH_pr10.json

bench-quick:
	./scripts/bench.sh -q -b BenchmarkSpinnerIteration -p .
	./scripts/bench.sh -q -b 'BenchmarkServe(LookupUnderChurn|MutateThroughput|MutateDurable|Fairness|LookupInstrumented)' -p ./internal/serve
	./scripts/bench.sh -q -b 'Benchmark(CheckpointDelta|WatchFanout)' -p ./internal/serve
	./scripts/bench.sh -q -b BenchmarkFollowerLookupStaleness -p ./internal/replica
	./scripts/bench.sh -q -b BenchmarkHistogramRecord -p ./internal/metrics

recovery-smoke:
	./scripts/recovery_smoke.sh

overload-smoke:
	./scripts/overload_smoke.sh

replication-smoke:
	./scripts/replication_smoke.sh

changefeed-smoke:
	./scripts/changefeed_smoke.sh

metrics-smoke:
	./scripts/metrics_smoke.sh
