# Development targets for the Spinner reproduction.
#
#   make test       — tier-1 gate: go build ./... && go test ./...
#   make test-race  — race-detector pass over the concurrency-bearing
#                     packages (pregel engine + serving layer)
#   make vet        — go vet ./...
#   make bench      — vet + tier-1 + race + BenchmarkSpinnerIteration
#                     (-benchmem, -count=5), recorded into BENCH_pr1.json
#   make bench-serve— same gate but BenchmarkServeLookupUnderChurn,
#                     recorded into BENCH_pr2.json
#   make check      — vet + test + test-race

.PHONY: all check build vet test test-race bench bench-serve

all: check

check: vet test test-race

build:
	go build ./...

vet:
	go vet ./...

test:
	go build ./...
	go test ./...

test-race:
	go test -race ./internal/pregel/ ./internal/serve/

bench:
	./scripts/bench.sh -l current -o BENCH_pr1.json

bench-serve:
	./scripts/bench.sh -l current -b BenchmarkServeLookupUnderChurn -p ./internal/serve -o BENCH_pr2.json
