# Development targets for the Spinner reproduction.
#
#   make test   — tier-1 gate: go build ./... && go test ./...
#   make vet    — go vet ./...
#   make bench  — vet + tier-1 + BenchmarkSpinnerIteration (-benchmem,
#                 -count=5), recording results into BENCH_pr1.json
#   make check  — vet + test

.PHONY: all check build vet test bench

all: check

check: vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go build ./...
	go test ./...

bench:
	./scripts/bench.sh -l current -o BENCH_pr1.json
