// Command graphgen emits synthetic graphs as edge lists for use with the
// spinner CLI and external tools.
//
// Usage:
//
//	graphgen -model ws -n 100000 -deg 40 -beta 0.3 > graph.txt
//	graphgen -model ba -n 100000 -deg 12 > twitterish.txt
//	graphgen -model dataset -dataset TW -n 20000 > tw.txt
//
// Models: ws (Watts–Strogatz), ba (Barabási–Albert), er (Erdős–Rényi),
// rmat (R-MAT, -n rounded to a power of two), plaw (power-law
// configuration model), dataset (named analogue of a paper dataset:
// LJ, G+, TU, TW, FR, Y!).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	var (
		model   = flag.String("model", "ws", "ws | ba | er | rmat | plaw | dataset")
		n       = flag.Int("n", 10000, "number of vertices")
		deg     = flag.Int("deg", 16, "out-degree (ws/ba) or mean degree (er)")
		beta    = flag.Float64("beta", 0.3, "Watts–Strogatz rewiring probability")
		alpha   = flag.Float64("alpha", 1.6, "power-law exponent (plaw)")
		maxDeg  = flag.Int("maxdeg", 200, "power-law max degree (plaw)")
		dataset = flag.String("dataset", "TW", "dataset analogue name (model=dataset)")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	g, err := build(*model, *n, *deg, *beta, *alpha, *maxDeg, *dataset, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	if err := graph.WriteEdgeList(os.Stdout, g); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "graphgen: %s n=%d |E|=%d\n", *model, g.NumVertices(), g.NumEdges())
}

func build(model string, n, deg int, beta, alpha float64, maxDeg int, dataset string, seed uint64) (*graph.Graph, error) {
	switch model {
	case "ws":
		return gen.WattsStrogatz(n, deg, beta, seed), nil
	case "ba":
		return gen.BarabasiAlbert(n, deg, seed), nil
	case "er":
		return gen.ErdosRenyi(n, int64(n)*int64(deg), true, seed), nil
	case "rmat":
		scale := int(math.Round(math.Log2(float64(n))))
		if scale < 1 {
			scale = 1
		}
		return gen.RMAT(scale, int64(n)*int64(deg), seed), nil
	case "plaw":
		return gen.PowerLawConfig(n, maxDeg, alpha, seed), nil
	case "dataset":
		return gen.Load(gen.Dataset(dataset), n, seed), nil
	default:
		return nil, fmt.Errorf("unknown model %q", model)
	}
}
