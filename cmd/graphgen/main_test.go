package main

import "testing"

func TestBuildModels(t *testing.T) {
	cases := []struct {
		model string
		n     int
	}{
		{"ws", 200},
		{"ba", 200},
		{"er", 200},
		{"rmat", 256},
		{"plaw", 300},
		{"dataset", 500},
	}
	for _, c := range cases {
		g, err := build(c.model, c.n, 4, 0.3, 1.6, 50, "TU", 1)
		if err != nil {
			t.Fatalf("%s: %v", c.model, err)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Fatalf("%s: empty graph", c.model)
		}
	}
}

func TestBuildUnknownModel(t *testing.T) {
	if _, err := build("nope", 100, 4, 0.3, 1.6, 50, "TU", 1); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := build("ws", 300, 4, 0.3, 1.6, 50, "TU", 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := build("ws", 300, 4, 0.3, 1.6, 50, "TU", 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("nondeterministic edge count")
	}
}
