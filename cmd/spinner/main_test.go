package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
)

// writeEdgeList writes a small test graph and returns its path.
func writeEdgeList(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "graph.txt")
	var b strings.Builder
	// Two dense 50-vertex pseudo-random clusters joined by one edge: LPA
	// must recover the two communities.
	for i := 0; i < 50; i++ {
		for j := 1; j <= 8; j++ {
			u := (i + j*j*7 + j*13) % 50
			if u != i {
				b.WriteString(formatEdge(i, u))
				b.WriteString(formatEdge(50+i, 50+u))
			}
		}
	}
	b.WriteString(formatEdge(0, 50))
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func formatEdge(u, v int) string {
	return strings.Join([]string{itoa(u), " ", itoa(v), "\n"}, "")
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	var digits []byte
	for x > 0 {
		digits = append([]byte{byte('0' + x%10)}, digits...)
		x /= 10
	}
	return string(digits)
}

func TestRunScratch(t *testing.T) {
	in := writeEdgeList(t)
	out := filepath.Join(t.TempDir(), "parts.txt")
	if err := run(2, 1.05, 0.001, 5, 100, 1, 2, false, in, out, "", 0, true); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	labels, err := graph.ReadPartitioning(f, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The two rings are nearly disconnected; a 2-way split should separate
	// them almost perfectly.
	agree := 0
	for v := 0; v < 50; v++ {
		if labels[v] == labels[0] {
			agree++
		}
		if labels[50+v] == labels[50] {
			agree++
		}
	}
	if agree < 90 {
		t.Fatalf("ring separation weak: %d/100 vertices on their ring's side", agree)
	}
}

func TestRunAdapt(t *testing.T) {
	in := writeEdgeList(t)
	dir := t.TempDir()
	out1 := filepath.Join(dir, "parts1.txt")
	if err := run(2, 1.05, 0.001, 5, 100, 1, 2, false, in, out1, "", 0, true); err != nil {
		t.Fatal(err)
	}
	out2 := filepath.Join(dir, "parts2.txt")
	if err := run(2, 1.05, 0.001, 5, 100, 1, 2, false, in, out2, out1, 0, true); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	// Adapting an unchanged graph should barely move anything; with this
	// tiny graph the outputs are usually identical.
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("empty outputs")
	}
}

func TestRunErrors(t *testing.T) {
	in := writeEdgeList(t)
	if err := run(0, 1.05, 0.001, 5, 100, 1, 2, false, in, "", "", 0, true); err == nil {
		t.Fatal("k=0 accepted")
	}
	if err := run(2, 1.05, 0.001, 5, 100, 1, 2, false, "/does/not/exist", "", "", 0, true); err == nil {
		t.Fatal("missing input accepted")
	}
	if err := run(2, 1.05, 0.001, 5, 100, 1, 2, false, in, "", "", 3, true); err == nil {
		t.Fatal("-resize without -adapt accepted")
	}
	if err := run(2, 1.05, 0.001, 5, 100, 1, 2, false, in, "", "/does/not/exist", 0, true); err == nil {
		t.Fatal("missing -adapt file accepted")
	}
}
