// Command spinner partitions an edge-list graph with the Spinner algorithm
// and writes one "vertex label" line per vertex.
//
// Usage:
//
//	spinner -k 32 [-in graph.txt] [-out parts.txt] [flags]
//
// Reads the edge list from stdin (or -in), one "src dst" pair per line;
// lines starting with '#' or '%' are skipped. With -adapt PREV, the
// partitioning in PREV is adapted incrementally instead of computing from
// scratch; with -resize OLDK, PREV is adapted from OLDK to -k partitions.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
)

func main() {
	var (
		k          = flag.Int("k", 32, "number of partitions")
		c          = flag.Float64("c", 1.05, "additional capacity (c > 1)")
		eps        = flag.Float64("epsilon", 0.001, "halting threshold ε")
		window     = flag.Int("w", 5, "halting window w")
		maxIter    = flag.Int("max-iterations", 200, "iteration cap")
		seed       = flag.Uint64("seed", 1, "random seed")
		workers    = flag.Int("workers", 0, "Pregel workers (0 = GOMAXPROCS)")
		undirected = flag.Bool("undirected", false, "treat input edges as undirected")
		inPath     = flag.String("in", "", "input edge list (default stdin)")
		outPath    = flag.String("out", "", "output partitioning (default stdout)")
		adaptPath  = flag.String("adapt", "", "previous partitioning to adapt incrementally")
		resizeFrom = flag.Int("resize", 0, "previous partition count; adapt PREV from this k to -k")
		quiet      = flag.Bool("q", false, "suppress the summary line on stderr")
	)
	flag.Parse()

	if err := run(*k, *c, *eps, *window, *maxIter, *seed, *workers, *undirected,
		*inPath, *outPath, *adaptPath, *resizeFrom, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "spinner:", err)
		os.Exit(1)
	}
}

func run(k int, c, eps float64, window, maxIter int, seed uint64, workers int,
	undirected bool, inPath, outPath, adaptPath string, resizeFrom int, quiet bool) error {
	var in io.Reader = os.Stdin
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	g, err := graph.ReadEdgeList(in, !undirected)
	if err != nil {
		return err
	}

	opts := core.Options{K: k, C: c, Epsilon: eps, W: window, MaxIterations: maxIter, Seed: seed, NumWorkers: workers}
	p, err := core.NewPartitioner(opts)
	if err != nil {
		return err
	}

	var res *core.Result
	switch {
	case adaptPath != "" && resizeFrom > 0:
		return fmt.Errorf("-adapt and -resize are mutually exclusive on one run; resize reads -adapt as the previous labels")
	case adaptPath != "":
		prev, err := readPrev(adaptPath, g.NumVertices(), k)
		if err != nil {
			return err
		}
		res, err = p.Adapt(graph.Convert(g), prev, nil)
		if err != nil {
			return err
		}
	case resizeFrom > 0:
		return fmt.Errorf("-resize requires -adapt PREV with the previous labels")
	default:
		res, err = p.Partition(g)
		if err != nil {
			return err
		}
	}

	var out io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := graph.WritePartitioning(out, res.Labels); err != nil {
		return err
	}
	if !quiet {
		w := graph.Convert(g)
		fmt.Fprintf(os.Stderr, "%s φ=%.3f ρ=%.3f runtime=%v\n",
			res, metrics.Phi(w, res.Labels), metrics.Rho(w, res.Labels, k), res.Runtime)
	}
	return nil
}

func readPrev(path string, n, k int) ([]int32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadPartitioning(f, n, k)
}
