package main

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/serve"
	"repro/internal/wal"
)

func testStore(t *testing.T, k int) *serve.Store {
	t.Helper()
	opts := core.DefaultOptions(k)
	opts.Seed = 7
	opts.NumWorkers = 2
	opts.MaxIterations = 30
	st, err := serve.Bootstrap(gen.WattsStrogatz(600, 8, 0.2, 7), serve.Config{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestHTTPLookupAndStats(t *testing.T) {
	st := testStore(t, 4)
	srv := httptest.NewServer(newMux(st, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/lookup?v=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lookup status %d", resp.StatusCode)
	}
	var body struct {
		Vertex    int64  `json:"vertex"`
		Partition int32  `json:"partition"`
		Version   uint64 `json:"version"`
		K         int    `json:"k"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Vertex != 5 || body.Partition < 0 || int(body.Partition) >= body.K {
		t.Fatalf("lookup body %+v", body)
	}

	for _, bad := range []string{"/lookup?v=abc", "/lookup?v=", "/lookup"} {
		r, err := http.Get(srv.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s status %d, want 400", bad, r.StatusCode)
		}
	}
	r, err := http.Get(srv.URL + "/lookup?v=100000")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("missing vertex status %d, want 404", r.StatusCode)
	}

	r, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats["vertices"].(float64) != 600 || stats["k"].(float64) != 4 {
		t.Fatalf("stats %v", stats)
	}

	r, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", r.StatusCode)
	}
}

func TestHTTPMutateAndResize(t *testing.T) {
	st := testStore(t, 4)
	srv := httptest.NewServer(newMux(st, nil))
	defer srv.Close()

	body := "# add two vertices and wire them in\nv 2\n+ 600 0\n+ 601 1 3\n- 0 1\n"
	resp, err := http.Post(srv.URL+"/mutate", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("mutate status %d", resp.StatusCode)
	}
	if err := st.Quiesce(); err != nil {
		// {0,1} may legitimately be absent in the generated graph; only a
		// rejected-batch error is acceptable here.
		if !strings.Contains(err.Error(), "absent edge") {
			t.Fatal(err)
		}
	}

	resp, err = http.Post(srv.URL+"/resize?k=6", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resize status %d", resp.StatusCode)
	}
	if err := st.Quiesce(); err != nil && !strings.Contains(err.Error(), "absent edge") {
		t.Fatal(err)
	}
	if got := st.Snapshot().K; got != 6 {
		t.Fatalf("k after resize = %d, want 6", got)
	}

	for _, bad := range []string{"/resize", "/resize?k=0", "/resize?k=x"} {
		r, err := http.Post(srv.URL+bad, "text/plain", nil)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s status %d, want 400", bad, r.StatusCode)
		}
	}

	r, err := http.Post(srv.URL+"/mutate", "text/plain", strings.NewReader("bogus 1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad mutate status %d, want 400", r.StatusCode)
	}
}

func TestParseMutation(t *testing.T) {
	mut, err := parseMutation(strings.NewReader("v 3\n+ 1 2\n+ 2 3 5\n- 4 5\n\n# comment\n"))
	if err != nil {
		t.Fatal(err)
	}
	if mut.NewVertices != 3 || len(mut.NewEdges) != 2 || len(mut.RemovedEdges) != 1 {
		t.Fatalf("parsed %+v", mut)
	}
	if mut.NewEdges[0].Weight != 2 || mut.NewEdges[1].Weight != 5 {
		t.Fatalf("weights %d,%d", mut.NewEdges[0].Weight, mut.NewEdges[1].Weight)
	}
	for _, bad := range []string{"+ 1\n", "- 1\n", "v x\n", "v -1\n", "v 999999999999\n", "v 8000000\nv 8000000\n", "+ a b\n", "+ 1 2 0\n", "? 1 2\n"} {
		if _, err := parseMutation(strings.NewReader(bad)); err == nil {
			t.Fatalf("parseMutation(%q) accepted", bad)
		}
	}
}

// Every HTTP error path must report the right status code and leave the
// store untouched: same snapshot version, batch counts, and k.
func TestHTTPErrorPathsLeaveStoreUntouched(t *testing.T) {
	st := testStore(t, 4)
	srv := httptest.NewServer(newMux(st, nil))
	defer srv.Close()
	if err := st.Quiesce(); err != nil {
		t.Fatal(err)
	}
	before := st.Snapshot()
	beforeCtr := st.Counters().Snapshot()

	cases := []struct {
		method, path, body string
		wantStatus         int
	}{
		// /resize: malformed, out-of-range, and unchanged k.
		{"POST", "/resize", "", http.StatusBadRequest},
		{"POST", "/resize?k=0", "", http.StatusBadRequest},
		{"POST", "/resize?k=-3", "", http.StatusBadRequest},
		{"POST", "/resize?k=abc", "", http.StatusBadRequest},
		{"POST", "/resize?k=4", "", http.StatusBadRequest}, // unchanged
		// /mutate: malformed bodies.
		{"POST", "/mutate", "bogus 1 2\n", http.StatusBadRequest},
		{"POST", "/mutate", "+ 1\n", http.StatusBadRequest},
		{"POST", "/mutate", "+ a b\n", http.StatusBadRequest},
		{"POST", "/mutate", "+ 1 2 -5\n", http.StatusBadRequest},
		{"POST", "/mutate", "- 1\n", http.StatusBadRequest},
		{"POST", "/mutate", "v notanumber\n", http.StatusBadRequest},
		{"POST", "/mutate", "{\"json\": \"not the protocol\"}", http.StatusBadRequest},
		// /lookup: malformed and unknown vertices.
		{"GET", "/lookup?v=junk", "", http.StatusBadRequest},
		{"GET", "/lookup", "", http.StatusBadRequest},
		{"GET", "/lookup?v=999999", "", http.StatusNotFound},
		{"GET", "/lookup?v=-1", "", http.StatusNotFound},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Fatalf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
		}
	}

	if err := st.Quiesce(); err != nil {
		t.Fatal(err)
	}
	after := st.Snapshot()
	afterCtr := st.Counters().Snapshot()
	if after.Version != before.Version || after.K != before.K ||
		after.AppliedBatches != before.AppliedBatches || len(after.Labels) != len(before.Labels) {
		t.Fatalf("error paths mutated the store: %+v -> %+v", before, after)
	}
	if afterCtr.BatchesApplied != beforeCtr.BatchesApplied ||
		afterCtr.BatchesRejected != beforeCtr.BatchesRejected ||
		afterCtr.ElasticResizes != beforeCtr.ElasticResizes {
		t.Fatalf("error paths reached the maintenance plane: %v -> %v", beforeCtr, afterCtr)
	}
}

// The -demo smoke mode must run end to end without a listener and report
// its counters.
func TestDemoMode(t *testing.T) {
	var sb strings.Builder
	dc := daemonConfig{k: 4, c: 1.05, seed: 7, workers: 2, maxIter: 30, synthetic: 800,
		logDepth: 16, degrade: 1.05, shards: 2, demo: 300 * time.Millisecond, fsync: "interval"}
	if err := run(dc, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"spinnerd: serving", "spinnerd demo:", "lookups", "snapshot v"} {
		if !strings.Contains(out, want) {
			t.Fatalf("demo output missing %q:\n%s", want, out)
		}
	}
}

// Every error path must answer with the shared JSON error shape
// {"error": msg}, not a plain-text body.
func TestHTTPErrorBodiesAreJSON(t *testing.T) {
	st := testStore(t, 4)
	srv := httptest.NewServer(newMux(st, nil))
	defer srv.Close()
	cases := []struct {
		method, path, body string
	}{
		{"GET", "/lookup?v=abc", ""},
		{"GET", "/lookup?v=99999999", ""},
		{"POST", "/mutate", "bogus 1 2\n"},
		{"POST", "/resize?k=0", ""},
		{"POST", "/resize?k=4", ""}, // unchanged k
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s %s: Content-Type %q", tc.method, tc.path, ct)
		}
		var body struct {
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil || body.Error == "" {
			t.Fatalf("%s %s: error body not {\"error\": msg}: %v", tc.method, tc.path, err)
		}
	}
}

// A durable demo run must bootstrap a data dir; a second run over the
// same dir must recover from it (ignoring the graph flags) and keep
// serving.
func TestDurableDemoBootstrapAndRecover(t *testing.T) {
	dir := t.TempDir()
	dc := daemonConfig{k: 4, c: 1.05, seed: 7, workers: 2, maxIter: 30, synthetic: 800,
		logDepth: 16, degrade: 1.05, shards: 2, demo: 200 * time.Millisecond,
		dataDir: dir, fsync: "never", checkpointEvery: 8}

	var first strings.Builder
	if err := run(dc, &first); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.String(), "durable in "+dir) {
		t.Fatalf("first run did not bootstrap durably:\n%s", first.String())
	}

	var second strings.Builder
	dc.synthetic = 0
	dc.inPath = "/nonexistent/ignored-when-recovering"
	if err := run(dc, &second); err != nil {
		t.Fatal(err)
	}
	out := second.String()
	if !strings.Contains(out, "spinnerd: recovering from "+dir) {
		t.Fatalf("second run did not recover:\n%s", out)
	}
	if !strings.Contains(out, "recovered 800 vertices") {
		t.Fatalf("recovery lost the vertex space:\n%s", out)
	}
}

// A tenant past its token-bucket quota gets 429 with the stable
// machine-readable code, an honest Retry-After header, and per-tenant
// accounting in /stats; other tenants are unaffected.
func TestHTTPQuotaRejection(t *testing.T) {
	opts := core.DefaultOptions(4)
	opts.Seed = 7
	opts.NumWorkers = 2
	opts.MaxIterations = 30
	cfg := serve.Config{Options: opts,
		Quota: serve.QuotaConfig{Rate: 0.001, Burst: 1}}
	st, err := serve.Bootstrap(gen.WattsStrogatz(600, 8, 0.2, 7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := httptest.NewServer(newMux(st, nil))
	defer srv.Close()

	mutate := func(tenant string) *http.Response {
		req, err := http.NewRequest("POST", srv.URL+"/mutate", strings.NewReader("+ 1 2\n"))
		if err != nil {
			t.Fatal(err)
		}
		if tenant != "" {
			req.Header.Set("X-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if resp := mutate("alpha"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first alpha mutate status %d, want 202", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	resp := mutate("alpha") // burst of 1 spent, refill ~17 min away
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second alpha mutate status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want whole seconds >= 1", ra)
	}
	var body struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	err = json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if err != nil || body.Code != "quota_exceeded" || body.Error == "" {
		t.Fatalf("429 body = %+v, err %v; want code quota_exceeded", body, err)
	}

	// A different tenant has its own bucket and sails through.
	if resp := mutate("beta"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("beta mutate status %d, want 202", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	r, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var stats struct {
		Tenants map[string]struct {
			Submitted     int64 `json:"submitted"`
			QuotaRejected int64 `json:"quota_rejected"`
		} `json:"tenants"`
		Counters struct {
			QuotaRejections int64
		} `json:"counters"`
	}
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	alpha := stats.Tenants["alpha"]
	if alpha.Submitted != 1 || alpha.QuotaRejected != 1 {
		t.Fatalf("alpha stats %+v, want submitted=1 quota_rejected=1", alpha)
	}
	if beta := stats.Tenants["beta"]; beta.Submitted != 1 || beta.QuotaRejected != 0 {
		t.Fatalf("beta stats %+v, want submitted=1 quota_rejected=0", beta)
	}
	if stats.Counters.QuotaRejections != 1 {
		t.Fatalf("QuotaRejections = %d, want 1", stats.Counters.QuotaRejections)
	}
}

// While the store is overloaded, /resize is shed with 503 + Retry-After
// and the shed is counted; lookups and mutations keep flowing.
func TestHTTPResizeShedUnderOverload(t *testing.T) {
	opts := core.DefaultOptions(4)
	opts.Seed = 7
	opts.NumWorkers = 2
	opts.MaxIterations = 30
	cfg := serve.Config{Options: opts,
		Overload: serve.OverloadConfig{LookupRate: 1, Window: 5 * time.Millisecond}}
	st, err := serve.Bootstrap(gen.WattsStrogatz(600, 8, 0.2, 7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := httptest.NewServer(newMux(st, nil))
	defer srv.Close()

	// Hammer lookups until the EWMA detector trips (well above 1/sec).
	deadline := time.Now().Add(5 * time.Second)
	for !st.Overloaded() {
		if time.Now().After(deadline) {
			t.Fatal("overload detector never tripped")
		}
		for v := 0; v < 500; v++ {
			st.Lookup(graph.VertexID(v))
		}
	}

	resp, err := http.Post(srv.URL+"/resize?k=6", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded resize status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed resize without Retry-After header")
	}
	var body struct {
		Code string `json:"code"`
	}
	err = json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if err != nil || body.Code != "overloaded" {
		t.Fatalf("shed body code = %q, err %v; want overloaded", body.Code, err)
	}
	if got := st.Counters().ShedRequests.Load(); got < 1 {
		t.Fatalf("ShedRequests = %d, want >= 1", got)
	}

	// Mutations still flow while overloaded.
	r, err := http.Post(srv.URL+"/mutate", "text/plain", strings.NewReader("v 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusAccepted {
		t.Fatalf("mutate while overloaded status %d, want 202", r.StatusCode)
	}
}

// After an injected storage fault the daemon fails stop: /healthz flips
// to 503 {"status":"degraded"}, writes refuse with code "degraded", and
// lookups keep serving the last applied state.
func TestHTTPDegradedAfterStorageFault(t *testing.T) {
	opts := core.DefaultOptions(4)
	opts.Seed = 7
	opts.NumWorkers = 2
	opts.MaxIterations = 30
	cfg := serve.Config{Options: opts, Shards: 2,
		Durability: serve.DurabilityConfig{Fsync: wal.SyncNever}}
	st, err := serve.BootstrapDurable(t.TempDir(), gen.WattsStrogatz(600, 8, 0.2, 7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Quiesce(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newMux(st, nil))
	defer srv.Close()

	restore := wal.InjectFaults(func(*os.File, []byte) (int, error) {
		return 0, errors.New("injected: disk gone")
	}, nil)
	defer restore()

	// The faulted write happens on the coordinator after the 202; poll
	// until the fail-stop transition lands.
	r, err := http.Post(srv.URL+"/mutate", "text/plain", strings.NewReader("v 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusAccepted {
		t.Fatalf("mutate status %d, want 202", r.StatusCode)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !st.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("store never degraded after injected journal fault")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded healthz status %d, want 503", resp.StatusCode)
	}
	var health struct {
		Status string `json:"status"`
	}
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil || health.Status != "degraded" {
		t.Fatalf("healthz body status = %q, err %v; want degraded", health.Status, err)
	}

	for _, tc := range []struct{ path, body string }{
		{"/mutate", "v 1\n"},
		{"/resize?k=6", ""},
	} {
		resp, err := http.Post(srv.URL+tc.path, "text/plain", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Code string `json:"code"`
		}
		derr := json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable || derr != nil || body.Code != "degraded" {
			t.Fatalf("POST %s while degraded: status %d code %q err %v; want 503 degraded",
				tc.path, resp.StatusCode, body.Code, derr)
		}
	}

	// The read path is unaffected.
	lr, err := http.Get(srv.URL + "/lookup?v=5")
	if err != nil {
		t.Fatal(err)
	}
	lr.Body.Close()
	if lr.StatusCode != http.StatusOK {
		t.Fatalf("lookup while degraded status %d, want 200", lr.StatusCode)
	}
}

func TestParseWeights(t *testing.T) {
	w, err := parseWeights("teamA=4, teamB=1,default=2")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"teamA": 4, "teamB": 1, "default": 2}
	if len(w) != len(want) {
		t.Fatalf("parsed %v, want %v", w, want)
	}
	for k, v := range want {
		if w[k] != v {
			t.Fatalf("parsed %v, want %v", w, want)
		}
	}
	if w, err := parseWeights(""); err != nil || w != nil {
		t.Fatalf("empty weights = %v, %v; want nil, nil", w, err)
	}
	for _, bad := range []string{"teamA", "teamA=", "teamA=0", "teamA=-1", "teamA=x", "=3", "a=1,,b=2"} {
		if _, err := parseWeights(bad); err == nil {
			t.Fatalf("parseWeights(%q) accepted", bad)
		}
	}
}

// The /stats payload must expose the durability counters and flag.
func TestHTTPStatsDurabilityFields(t *testing.T) {
	st := testStore(t, 4)
	srv := httptest.NewServer(newMux(st, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if durable, ok := stats["durable"].(bool); !ok || durable {
		t.Fatalf("in-memory store durable flag = %v", stats["durable"])
	}
	ctr, ok := stats["counters"].(map[string]any)
	if !ok {
		t.Fatalf("counters missing: %v", stats)
	}
	for _, field := range []string{"JournalAppends", "JournalBytes", "JournalSyncs", "Checkpoints", "ReplayedRecords"} {
		if _, ok := ctr[field]; !ok {
			t.Fatalf("counters missing %s: %v", field, ctr)
		}
	}
}
