package main

import (
	"strings"
	"testing"
	"time"
)

// The HTTP surface itself is tested in internal/api; these tests cover
// what is left in the command: flag plumbing and the demo/durable modes.

func TestParseWeights(t *testing.T) {
	w, err := parseWeights("teamA=4, teamB=1,default=2")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"teamA": 4, "teamB": 1, "default": 2}
	if len(w) != len(want) {
		t.Fatalf("parsed %v, want %v", w, want)
	}
	for k, v := range want {
		if w[k] != v {
			t.Fatalf("parsed %v, want %v", w, want)
		}
	}
	if w, err := parseWeights(""); err != nil || w != nil {
		t.Fatalf("empty weights = %v, %v; want nil, nil", w, err)
	}
	for _, bad := range []string{"teamA", "teamA=", "teamA=0", "teamA=-1", "teamA=x", "=3", "a=1,,b=2"} {
		if _, err := parseWeights(bad); err == nil {
			t.Fatalf("parseWeights(%q) accepted", bad)
		}
	}
}

// The -demo smoke mode must run end to end without a listener and report
// its counters.
func TestDemoMode(t *testing.T) {
	var sb strings.Builder
	dc := daemonConfig{k: 4, c: 1.05, seed: 7, workers: 2, maxIter: 30, synthetic: 800,
		logDepth: 16, degrade: 1.05, shards: 2, demo: 300 * time.Millisecond, fsync: "interval"}
	if err := run(dc, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"spinnerd: serving", "spinnerd demo:", "lookups", "snapshot v"} {
		if !strings.Contains(out, want) {
			t.Fatalf("demo output missing %q:\n%s", want, out)
		}
	}
}

// A durable demo run must bootstrap a data dir; a second run over the
// same dir must recover from it (ignoring the graph flags) and keep
// serving.
func TestDurableDemoBootstrapAndRecover(t *testing.T) {
	dir := t.TempDir()
	dc := daemonConfig{k: 4, c: 1.05, seed: 7, workers: 2, maxIter: 30, synthetic: 800,
		logDepth: 16, degrade: 1.05, shards: 2, demo: 200 * time.Millisecond,
		dataDir: dir, fsync: "never", checkpointEvery: 8}

	var first strings.Builder
	if err := run(dc, &first); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.String(), "durable in "+dir) {
		t.Fatalf("first run did not bootstrap durably:\n%s", first.String())
	}

	var second strings.Builder
	dc.synthetic = 0
	dc.inPath = "/nonexistent/ignored-when-recovering"
	if err := run(dc, &second); err != nil {
		t.Fatal(err)
	}
	out := second.String()
	if !strings.Contains(out, "spinnerd: recovering from "+dir) {
		t.Fatalf("second run did not recover:\n%s", out)
	}
	if !strings.Contains(out, "recovered 800 vertices") {
		t.Fatalf("recovery lost the vertex space:\n%s", out)
	}
}
