package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/serve"
)

func testStore(t *testing.T, k int) *serve.Store {
	t.Helper()
	opts := core.DefaultOptions(k)
	opts.Seed = 7
	opts.NumWorkers = 2
	opts.MaxIterations = 30
	st, err := serve.Bootstrap(gen.WattsStrogatz(600, 8, 0.2, 7), serve.Config{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestHTTPLookupAndStats(t *testing.T) {
	st := testStore(t, 4)
	srv := httptest.NewServer(newMux(st))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/lookup?v=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lookup status %d", resp.StatusCode)
	}
	var body struct {
		Vertex    int64  `json:"vertex"`
		Partition int32  `json:"partition"`
		Version   uint64 `json:"version"`
		K         int    `json:"k"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Vertex != 5 || body.Partition < 0 || int(body.Partition) >= body.K {
		t.Fatalf("lookup body %+v", body)
	}

	for _, bad := range []string{"/lookup?v=abc", "/lookup?v=", "/lookup"} {
		r, err := http.Get(srv.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s status %d, want 400", bad, r.StatusCode)
		}
	}
	r, err := http.Get(srv.URL + "/lookup?v=100000")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("missing vertex status %d, want 404", r.StatusCode)
	}

	r, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats["vertices"].(float64) != 600 || stats["k"].(float64) != 4 {
		t.Fatalf("stats %v", stats)
	}

	r, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", r.StatusCode)
	}
}

func TestHTTPMutateAndResize(t *testing.T) {
	st := testStore(t, 4)
	srv := httptest.NewServer(newMux(st))
	defer srv.Close()

	body := "# add two vertices and wire them in\nv 2\n+ 600 0\n+ 601 1 3\n- 0 1\n"
	resp, err := http.Post(srv.URL+"/mutate", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("mutate status %d", resp.StatusCode)
	}
	if err := st.Quiesce(); err != nil {
		// {0,1} may legitimately be absent in the generated graph; only a
		// rejected-batch error is acceptable here.
		if !strings.Contains(err.Error(), "absent edge") {
			t.Fatal(err)
		}
	}

	resp, err = http.Post(srv.URL+"/resize?k=6", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resize status %d", resp.StatusCode)
	}
	if err := st.Quiesce(); err != nil && !strings.Contains(err.Error(), "absent edge") {
		t.Fatal(err)
	}
	if got := st.Snapshot().K; got != 6 {
		t.Fatalf("k after resize = %d, want 6", got)
	}

	for _, bad := range []string{"/resize", "/resize?k=0", "/resize?k=x"} {
		r, err := http.Post(srv.URL+bad, "text/plain", nil)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s status %d, want 400", bad, r.StatusCode)
		}
	}

	r, err := http.Post(srv.URL+"/mutate", "text/plain", strings.NewReader("bogus 1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad mutate status %d, want 400", r.StatusCode)
	}
}

func TestParseMutation(t *testing.T) {
	mut, err := parseMutation(strings.NewReader("v 3\n+ 1 2\n+ 2 3 5\n- 4 5\n\n# comment\n"))
	if err != nil {
		t.Fatal(err)
	}
	if mut.NewVertices != 3 || len(mut.NewEdges) != 2 || len(mut.RemovedEdges) != 1 {
		t.Fatalf("parsed %+v", mut)
	}
	if mut.NewEdges[0].Weight != 2 || mut.NewEdges[1].Weight != 5 {
		t.Fatalf("weights %d,%d", mut.NewEdges[0].Weight, mut.NewEdges[1].Weight)
	}
	for _, bad := range []string{"+ 1\n", "- 1\n", "v x\n", "v -1\n", "v 999999999999\n", "v 8000000\nv 8000000\n", "+ a b\n", "+ 1 2 0\n", "? 1 2\n"} {
		if _, err := parseMutation(strings.NewReader(bad)); err == nil {
			t.Fatalf("parseMutation(%q) accepted", bad)
		}
	}
}

// Every HTTP error path must report the right status code and leave the
// store untouched: same snapshot version, batch counts, and k.
func TestHTTPErrorPathsLeaveStoreUntouched(t *testing.T) {
	st := testStore(t, 4)
	srv := httptest.NewServer(newMux(st))
	defer srv.Close()
	if err := st.Quiesce(); err != nil {
		t.Fatal(err)
	}
	before := st.Snapshot()
	beforeCtr := st.Counters().Snapshot()

	cases := []struct {
		method, path, body string
		wantStatus         int
	}{
		// /resize: malformed, out-of-range, and unchanged k.
		{"POST", "/resize", "", http.StatusBadRequest},
		{"POST", "/resize?k=0", "", http.StatusBadRequest},
		{"POST", "/resize?k=-3", "", http.StatusBadRequest},
		{"POST", "/resize?k=abc", "", http.StatusBadRequest},
		{"POST", "/resize?k=4", "", http.StatusBadRequest}, // unchanged
		// /mutate: malformed bodies.
		{"POST", "/mutate", "bogus 1 2\n", http.StatusBadRequest},
		{"POST", "/mutate", "+ 1\n", http.StatusBadRequest},
		{"POST", "/mutate", "+ a b\n", http.StatusBadRequest},
		{"POST", "/mutate", "+ 1 2 -5\n", http.StatusBadRequest},
		{"POST", "/mutate", "- 1\n", http.StatusBadRequest},
		{"POST", "/mutate", "v notanumber\n", http.StatusBadRequest},
		{"POST", "/mutate", "{\"json\": \"not the protocol\"}", http.StatusBadRequest},
		// /lookup: malformed and unknown vertices.
		{"GET", "/lookup?v=junk", "", http.StatusBadRequest},
		{"GET", "/lookup", "", http.StatusBadRequest},
		{"GET", "/lookup?v=999999", "", http.StatusNotFound},
		{"GET", "/lookup?v=-1", "", http.StatusNotFound},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Fatalf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
		}
	}

	if err := st.Quiesce(); err != nil {
		t.Fatal(err)
	}
	after := st.Snapshot()
	afterCtr := st.Counters().Snapshot()
	if after.Version != before.Version || after.K != before.K ||
		after.AppliedBatches != before.AppliedBatches || len(after.Labels) != len(before.Labels) {
		t.Fatalf("error paths mutated the store: %+v -> %+v", before, after)
	}
	if afterCtr.BatchesApplied != beforeCtr.BatchesApplied ||
		afterCtr.BatchesRejected != beforeCtr.BatchesRejected ||
		afterCtr.ElasticResizes != beforeCtr.ElasticResizes {
		t.Fatalf("error paths reached the maintenance plane: %v -> %v", beforeCtr, afterCtr)
	}
}

// The -demo smoke mode must run end to end without a listener and report
// its counters.
func TestDemoMode(t *testing.T) {
	var sb strings.Builder
	dc := daemonConfig{k: 4, c: 1.05, seed: 7, workers: 2, maxIter: 30, synthetic: 800,
		logDepth: 16, degrade: 1.05, shards: 2, demo: 300 * time.Millisecond, fsync: "interval"}
	if err := run(dc, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"spinnerd: serving", "spinnerd demo:", "lookups", "snapshot v"} {
		if !strings.Contains(out, want) {
			t.Fatalf("demo output missing %q:\n%s", want, out)
		}
	}
}

// Every error path must answer with the shared JSON error shape
// {"error": msg}, not a plain-text body.
func TestHTTPErrorBodiesAreJSON(t *testing.T) {
	st := testStore(t, 4)
	srv := httptest.NewServer(newMux(st))
	defer srv.Close()
	cases := []struct {
		method, path, body string
	}{
		{"GET", "/lookup?v=abc", ""},
		{"GET", "/lookup?v=99999999", ""},
		{"POST", "/mutate", "bogus 1 2\n"},
		{"POST", "/resize?k=0", ""},
		{"POST", "/resize?k=4", ""}, // unchanged k
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s %s: Content-Type %q", tc.method, tc.path, ct)
		}
		var body struct {
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil || body.Error == "" {
			t.Fatalf("%s %s: error body not {\"error\": msg}: %v", tc.method, tc.path, err)
		}
	}
}

// A durable demo run must bootstrap a data dir; a second run over the
// same dir must recover from it (ignoring the graph flags) and keep
// serving.
func TestDurableDemoBootstrapAndRecover(t *testing.T) {
	dir := t.TempDir()
	dc := daemonConfig{k: 4, c: 1.05, seed: 7, workers: 2, maxIter: 30, synthetic: 800,
		logDepth: 16, degrade: 1.05, shards: 2, demo: 200 * time.Millisecond,
		dataDir: dir, fsync: "never", checkpointEvery: 8}

	var first strings.Builder
	if err := run(dc, &first); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.String(), "durable in "+dir) {
		t.Fatalf("first run did not bootstrap durably:\n%s", first.String())
	}

	var second strings.Builder
	dc.synthetic = 0
	dc.inPath = "/nonexistent/ignored-when-recovering"
	if err := run(dc, &second); err != nil {
		t.Fatal(err)
	}
	out := second.String()
	if !strings.Contains(out, "spinnerd: recovering from "+dir) {
		t.Fatalf("second run did not recover:\n%s", out)
	}
	if !strings.Contains(out, "recovered 800 vertices") {
		t.Fatalf("recovery lost the vertex space:\n%s", out)
	}
}

// The /stats payload must expose the durability counters and flag.
func TestHTTPStatsDurabilityFields(t *testing.T) {
	st := testStore(t, 4)
	srv := httptest.NewServer(newMux(st))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if durable, ok := stats["durable"].(bool); !ok || durable {
		t.Fatalf("in-memory store durable flag = %v", stats["durable"])
	}
	ctr, ok := stats["counters"].(map[string]any)
	if !ok {
		t.Fatalf("counters missing: %v", stats)
	}
	for _, field := range []string{"JournalAppends", "JournalBytes", "JournalSyncs", "Checkpoints", "ReplayedRecords"} {
		if _, ok := ctr[field]; !ok {
			t.Fatalf("counters missing %s: %v", field, ctr)
		}
	}
}
