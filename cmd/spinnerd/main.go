// Command spinnerd runs the live partition-maintenance service: it
// partitions an edge-list graph once at startup, then serves
// vertex→partition lookups over HTTP while ingesting graph mutations and
// elastic partition-count changes, maintaining the partitioning
// incrementally in the background (internal/serve).
//
// Usage:
//
//	spinnerd -k 32 -in graph.txt -addr :8080
//	spinnerd -k 8 -synthetic 20000 -demo 2s
//	spinnerd -k 32 -shards 8 -in graph.txt     # 8-way sharded mutation application
//
// The store is sharded (-shards, default GOMAXPROCS capped at 8): each
// shard owns a contiguous vertex range and applies mutation sub-batches in
// parallel with incremental cut tracking; /stats reports the composed
// integer cut counters (cut_weight, total_weight, cut_by_partition) and
// the shard count.
//
// Endpoints:
//
//	GET  /lookup?v=ID      → {"vertex":ID,"partition":P,"version":V}
//	POST /mutate           → apply a mutation batch, one op per line:
//	                           + u v [w]   add undirected edge {u,v} (weight w, default 2)
//	                           - u v       remove undirected edge {u,v}
//	                           v n         append n vertices
//	POST /resize?k=K       → elastic change to K partitions (400 if K is
//	                         malformed, < 1, or equal to the current k)
//	GET  /stats            → snapshot + serving counters (JSON)
//	GET  /healthz          → 200 once serving
//
// With -demo D the daemon skips the listener, drives synthetic churn
// against the store for duration D while hammering lookups, prints the
// serving counters, and exits — the no-network smoke mode used by tests
// and quick evaluations.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/serve"
)

func main() {
	var (
		k          = flag.Int("k", 32, "number of partitions")
		c          = flag.Float64("c", 1.05, "additional capacity (c > 1)")
		seed       = flag.Uint64("seed", 1, "random seed")
		workers    = flag.Int("workers", 0, "Pregel workers (0 = GOMAXPROCS)")
		maxIter    = flag.Int("max-iterations", 200, "iteration cap per maintenance run")
		undirected = flag.Bool("undirected", false, "treat input edges as undirected")
		inPath     = flag.String("in", "", "input edge list (default stdin; ignored with -synthetic)")
		synthetic  = flag.Int("synthetic", 0, "generate a Watts-Strogatz graph with this many vertices instead of reading input")
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		logDepth   = flag.Int("log-depth", 64, "bounded mutation log depth")
		degrade    = flag.Float64("degrade", 1.10, "cut-ratio degradation factor triggering restabilization")
		shards     = flag.Int("shards", 0, "store shards for parallel mutation application (0 = GOMAXPROCS, capped at 8)")
		demo       = flag.Duration("demo", 0, "run synthetic churn for this duration and exit (no listener)")
	)
	flag.Parse()
	if err := run(*k, *c, *seed, *workers, *maxIter, *undirected, *inPath, *synthetic,
		*addr, *logDepth, *degrade, *shards, *demo, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spinnerd:", err)
		os.Exit(1)
	}
}

func run(k int, c float64, seed uint64, workers, maxIter int, undirected bool,
	inPath string, synthetic int, addr string, logDepth int, degrade float64,
	shards int, demo time.Duration, out io.Writer) error {
	if shards == 0 {
		shards = min(runtime.GOMAXPROCS(0), 8)
	}
	var g *graph.Graph
	switch {
	case synthetic > 0:
		g = gen.WattsStrogatz(synthetic, 10, 0.2, seed)
	default:
		var in io.Reader = os.Stdin
		if inPath != "" {
			f, err := os.Open(inPath)
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		}
		var err error
		g, err = graph.ReadEdgeList(in, !undirected)
		if err != nil {
			return err
		}
	}

	opts := core.Options{K: k, C: c, Seed: seed, NumWorkers: workers, MaxIterations: maxIter}
	cfg := serve.Config{Options: opts, LogDepth: logDepth, DegradeFactor: degrade, Shards: shards}
	fmt.Fprintf(out, "spinnerd: partitioning %d vertices into %d partitions (%d store shards)...\n",
		g.NumVertices(), k, shards)
	st, err := serve.Bootstrap(g, cfg)
	if err != nil {
		return err
	}
	defer st.Close()
	snap := st.Snapshot()
	fmt.Fprintf(out, "spinnerd: serving (cut ratio %.4f)\n", snap.CutRatio)

	if demo > 0 {
		return runDemo(st, demo, seed, out)
	}
	fmt.Fprintf(out, "spinnerd: listening on %s\n", addr)
	return http.ListenAndServe(addr, newMux(st))
}

// runDemo drives synthetic churn + lookups against the store and prints
// the counters — the no-network smoke mode.
func runDemo(st *serve.Store, d time.Duration, seed uint64, out io.Writer) error {
	n := len(st.Snapshot().Labels)
	src := rng.New(seed ^ 0xdeadbeef)
	var lookups atomic.Int64
	stop := make(chan struct{})
	lookupDone := make(chan struct{})
	go func() {
		defer close(lookupDone)
		v := graph.VertexID(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, ok := st.Lookup(v); ok {
				lookups.Add(1)
			}
			v = (v + 13) % graph.VertexID(len(st.Snapshot().Labels))
		}
	}()
	deadline := time.Now().Add(d)
	batch := 0
	for time.Now().Before(deadline) {
		mut := &graph.Mutation{}
		for i := 0; i < 50; i++ {
			u := graph.VertexID(src.Intn(n))
			v := graph.VertexID(src.Intn(n))
			if u != v {
				mut.NewEdges = append(mut.NewEdges, graph.WeightedEdgeRecord{U: u, V: v, Weight: 2})
			}
		}
		if err := st.Submit(mut); err != nil {
			return err
		}
		batch++
	}
	close(stop)
	<-lookupDone
	if err := st.Quiesce(); err != nil {
		fmt.Fprintf(out, "spinnerd: batch error during demo: %v\n", err)
	}
	fmt.Fprintf(out, "spinnerd demo: %d lookups alongside %d batches\n", lookups.Load(), batch)
	fmt.Fprintf(out, "spinnerd demo: %v\n", st.Counters().Snapshot())
	fmt.Fprintf(out, "spinnerd demo: final %s\n", describe(st.Snapshot()))
	return nil
}

func describe(s *serve.Snapshot) string {
	return fmt.Sprintf("snapshot v%d: %d vertices, k=%d, cut=%.4f, epoch=%d",
		s.Version, len(s.Labels), s.K, s.CutRatio, s.Epoch)
}

// newMux wires the store into an HTTP API.
func newMux(st *serve.Store) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /lookup", func(w http.ResponseWriter, r *http.Request) {
		v, err := strconv.ParseInt(r.URL.Query().Get("v"), 10, 32)
		if err != nil {
			http.Error(w, "bad vertex id", http.StatusBadRequest)
			return
		}
		part, ok := st.Lookup(graph.VertexID(v))
		if !ok {
			http.Error(w, "vertex not found", http.StatusNotFound)
			return
		}
		snap := st.Snapshot()
		writeJSON(w, map[string]any{"vertex": v, "partition": part, "version": snap.Version, "k": snap.K})
	})
	mux.HandleFunc("POST /mutate", func(w http.ResponseWriter, r *http.Request) {
		mut, err := parseMutation(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := st.TrySubmit(mut); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		writeJSON(w, map[string]any{"queued": true,
			"adds": len(mut.NewEdges), "removes": len(mut.RemovedEdges), "vertices": mut.NewVertices})
	})
	mux.HandleFunc("POST /resize", func(w http.ResponseWriter, r *http.Request) {
		k, err := strconv.Atoi(r.URL.Query().Get("k"))
		if err != nil || k < 1 {
			http.Error(w, "bad k", http.StatusBadRequest)
			return
		}
		if k == st.K() {
			http.Error(w, "k unchanged", http.StatusBadRequest)
			return
		}
		if err := st.Resize(k); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		writeJSON(w, map[string]any{"queued": true, "k": k})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		snap := st.Snapshot()
		payload := map[string]any{
			"vertices":         len(snap.Labels),
			"k":                snap.K,
			"version":          snap.Version,
			"epoch":            snap.Epoch,
			"applied":          snap.AppliedBatches,
			"cut":              snap.CutRatio,
			"cut_weight":       snap.CutWeight,
			"total_weight":     snap.TotalWeight,
			"cut_by_partition": snap.CutByPartition,
			"shards":           snap.Shards,
			"counters":         st.Counters().Snapshot(),
		}
		if err := st.Err(); err != nil {
			payload["last_error"] = err.Error()
		}
		writeJSON(w, payload)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// parseMutation reads the /mutate line protocol.
func parseMutation(r io.Reader) (*graph.Mutation, error) {
	mut := &graph.Mutation{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		switch fields[0] {
		case "+":
			if len(fields) < 3 {
				return nil, fmt.Errorf("line %d: want '+ u v [w]'", lineNo)
			}
			u, err1 := strconv.ParseInt(fields[1], 10, 32)
			v, err2 := strconv.ParseInt(fields[2], 10, 32)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("line %d: bad endpoints", lineNo)
			}
			weight := int64(2)
			if len(fields) > 3 {
				var err error
				weight, err = strconv.ParseInt(fields[3], 10, 32)
				if err != nil || weight < 1 {
					return nil, fmt.Errorf("line %d: bad weight %q", lineNo, fields[3])
				}
			}
			mut.NewEdges = append(mut.NewEdges, graph.WeightedEdgeRecord{
				U: graph.VertexID(u), V: graph.VertexID(v), Weight: int32(weight)})
		case "-":
			if len(fields) != 3 {
				return nil, fmt.Errorf("line %d: want '- u v'", lineNo)
			}
			u, err1 := strconv.ParseInt(fields[1], 10, 32)
			v, err2 := strconv.ParseInt(fields[2], 10, 32)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("line %d: bad endpoints", lineNo)
			}
			mut.RemovedEdges = append(mut.RemovedEdges, graph.Edge{From: graph.VertexID(u), To: graph.VertexID(v)})
		case "v":
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: want 'v n'", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 || n > graph.MaxVertices || mut.NewVertices > graph.MaxVertices-n {
				return nil, fmt.Errorf("line %d: bad vertex count %q", lineNo, fields[1])
			}
			mut.NewVertices += n
		default:
			return nil, fmt.Errorf("line %d: unknown op %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return mut, nil
}
