// Command spinnerd runs the live partition-maintenance service: it
// partitions an edge-list graph once at startup, then serves
// vertex→partition lookups over HTTP while ingesting graph mutations and
// elastic partition-count changes, maintaining the partitioning
// incrementally in the background (internal/serve).
//
// Usage:
//
//	spinnerd -k 32 -in graph.txt -addr :8080
//	spinnerd -k 8 -synthetic 20000 -demo 2s
//	spinnerd -k 32 -shards 8 -in graph.txt          # 8-way sharded mutation application
//	spinnerd -k 32 -in graph.txt -data-dir /var/spinner -fsync interval
//
// The store is sharded (-shards, default GOMAXPROCS capped at 8): each
// shard owns a contiguous vertex range and applies mutation sub-batches in
// parallel with incremental cut tracking; /stats reports the composed
// integer cut counters (cut_weight, total_weight, cut_by_partition) and
// the shard count.
//
// # Durability
//
// With -data-dir the daemon is durable: every accepted mutation/resize
// batch is appended to a CRC-framed write-ahead journal before it is
// applied, and the composed store state is checkpointed every
// -checkpoint-every applied batches (plus once at graceful shutdown —
// SIGINT/SIGTERM drains the listener and writes a final checkpoint). If
// the data dir already holds state, the input graph flags are ignored and
// the daemon recovers instead: latest valid checkpoint + journal tail
// replay, with torn tails truncated and mid-log corruption refused. The
// -fsync policy trades throughput for durability against OS/power death:
// never (page cache; survives process crashes), interval (bounded loss
// window, period set by -fsync-interval), always (every acknowledged
// batch survives power loss). -keep-checkpoints sets the checkpoint
// retention: the journal is only truncated below the oldest retained
// checkpoint, so recovery survives the loss (or crash-interrupted write)
// of the newest one by falling back and replaying a longer tail.
//
// The durable write path is a staged commit pipeline (see internal/serve
// and internal/wal): each coordinator turn journals everything pending
// as one group (one write + one fsync — under -fsync always, concurrent
// submitters amortize the disk barrier), coalesces consecutive add-only
// batches into single shard broadcasts, and runs checkpoints in the
// background (the write plane only pauses to clone the state, never for
// the encode + write + fsync). /stats reports the pipeline's shape:
// GroupCommits/GroupedEntries (and the derived journal_group_depth —
// mean entries per fsync), ApplyCoalesces/CoalescedBatches, and
// CheckpointsPending (1 while a background checkpoint is in flight).
//
// # HTTP API
//
// Success responses are JSON; error responses are JSON too, shaped
// {"error": "message"} with the status carrying the class (400 malformed,
// 404 unknown vertex, 503 backpressure/shutdown).
//
//	GET  /lookup?v=ID      → 200 {"vertex":ID,"partition":P,"version":V,"k":K}
//	                         400 {"error":"bad vertex id"} | 404 {"error":"vertex not found"}
//	POST /mutate           → 202 {"queued":true,"adds":A,"removes":R,"vertices":N}
//	                         400 {"error":"line L: ..."} | 503 {"error":"serve: mutation log full"}
//	                         body: one op per line:
//	                           + u v [w]   add undirected edge {u,v} (weight w, default 2)
//	                           - u v       remove undirected edge {u,v}
//	                           v n         append n vertices
//	POST /resize?k=K       → 202 {"queued":true,"k":K}
//	                         400 {"error":"bad k"|"k unchanged"} | 503 {"error":...}
//	GET  /stats            → 200 snapshot + serving counters (JSON), including the
//	                         durability counters (journal appends/bytes/fsyncs,
//	                         checkpoints, replayed records), the commit-pipeline
//	                         counters (GroupCommits/GroupedEntries, ApplyCoalesces/
//	                         CoalescedBatches, CheckpointsPending), "durable" and
//	                         the derived "journal_group_depth"
//	GET  /healthz          → 200 once serving
//
// With -demo D the daemon skips the listener, drives synthetic churn
// against the store for duration D while hammering lookups, prints the
// serving counters, and exits — the no-network smoke mode used by tests
// and quick evaluations.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/wal"
)

// daemonConfig carries the parsed flags into run.
type daemonConfig struct {
	k          int
	c          float64
	seed       uint64
	workers    int
	maxIter    int
	undirected bool
	inPath     string
	synthetic  int
	addr       string
	logDepth   int
	degrade    float64
	shards     int
	demo       time.Duration

	dataDir         string
	fsync           string
	fsyncInterval   time.Duration
	checkpointEvery int
	keepCheckpoints int
}

func main() {
	var dc daemonConfig
	flag.IntVar(&dc.k, "k", 32, "number of partitions")
	flag.Float64Var(&dc.c, "c", 1.05, "additional capacity (c > 1)")
	flag.Uint64Var(&dc.seed, "seed", 1, "random seed")
	flag.IntVar(&dc.workers, "workers", 0, "Pregel workers (0 = GOMAXPROCS)")
	flag.IntVar(&dc.maxIter, "max-iterations", 200, "iteration cap per maintenance run")
	flag.BoolVar(&dc.undirected, "undirected", false, "treat input edges as undirected")
	flag.StringVar(&dc.inPath, "in", "", "input edge list (default stdin; ignored with -synthetic or when -data-dir holds state)")
	flag.IntVar(&dc.synthetic, "synthetic", 0, "generate a Watts-Strogatz graph with this many vertices instead of reading input")
	flag.StringVar(&dc.addr, "addr", ":8080", "HTTP listen address")
	flag.IntVar(&dc.logDepth, "log-depth", 64, "bounded mutation log depth")
	flag.Float64Var(&dc.degrade, "degrade", 1.10, "cut-ratio degradation factor triggering restabilization")
	flag.IntVar(&dc.shards, "shards", 0, "store shards for parallel mutation application (0 = GOMAXPROCS, capped at 8)")
	flag.DurationVar(&dc.demo, "demo", 0, "run synthetic churn for this duration and exit (no listener)")
	flag.StringVar(&dc.dataDir, "data-dir", "", "durable data directory (journal + checkpoints); empty = in-memory only")
	flag.StringVar(&dc.fsync, "fsync", "interval", "journal fsync policy: never|interval|always")
	flag.DurationVar(&dc.fsyncInterval, "fsync-interval", 50*time.Millisecond, "background fsync period under -fsync interval")
	flag.IntVar(&dc.checkpointEvery, "checkpoint-every", 4096, "applied batches between checkpoints (negative disables periodic checkpoints)")
	flag.IntVar(&dc.keepCheckpoints, "keep-checkpoints", 2, "newest checkpoints retained; the journal is truncated below the oldest kept")
	flag.Parse()
	if err := run(dc, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spinnerd:", err)
		os.Exit(1)
	}
}

func run(dc daemonConfig, out io.Writer) error {
	// The flag default 0 means GOMAXPROCS (capped) on a fresh store, and
	// "keep the checkpointed shard layout" when recovering.
	shards := dc.shards
	if shards == 0 {
		shards = min(runtime.GOMAXPROCS(0), 8)
	}
	opts := core.Options{K: dc.k, C: dc.c, Seed: dc.seed, NumWorkers: dc.workers, MaxIterations: dc.maxIter}
	cfg := serve.Config{Options: opts, LogDepth: dc.logDepth, DegradeFactor: dc.degrade, Shards: shards}

	loadGraph := func() (*graph.Graph, error) {
		if dc.synthetic > 0 {
			return gen.WattsStrogatz(dc.synthetic, 10, 0.2, dc.seed), nil
		}
		var in io.Reader = os.Stdin
		if dc.inPath != "" {
			f, err := os.Open(dc.inPath)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			in = f
		}
		return graph.ReadEdgeList(in, !dc.undirected)
	}

	var st *serve.Store
	switch {
	case dc.dataDir != "":
		pol, err := wal.ParsePolicy(dc.fsync)
		if err != nil {
			return err
		}
		cfg.Durability = serve.DurabilityConfig{
			Fsync:           pol,
			FsyncInterval:   dc.fsyncInterval,
			CheckpointEvery: dc.checkpointEvery,
			KeepCheckpoints: dc.keepCheckpoints,
		}
		if serve.HasState(dc.dataDir) {
			fmt.Fprintf(out, "spinnerd: recovering from %s (fsync=%s)...\n", dc.dataDir, pol)
			cfg.Shards = dc.shards // 0 keeps the checkpointed layout
			st, err = serve.Open(dc.dataDir, cfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "spinnerd: recovered %d vertices (replayed %d journal records)\n",
				len(st.Snapshot().Labels), st.Counters().ReplayedRecords.Load())
		} else {
			g, err := loadGraph()
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "spinnerd: partitioning %d vertices into %d partitions (%d store shards, durable in %s, fsync=%s)...\n",
				g.NumVertices(), dc.k, shards, dc.dataDir, pol)
			st, err = serve.BootstrapDurable(dc.dataDir, g, cfg)
			if err != nil {
				return err
			}
		}
	default:
		g, err := loadGraph()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "spinnerd: partitioning %d vertices into %d partitions (%d store shards)...\n",
			g.NumVertices(), dc.k, shards)
		st, err = serve.Bootstrap(g, cfg)
		if err != nil {
			return err
		}
	}
	defer st.Close()
	snap := st.Snapshot()
	fmt.Fprintf(out, "spinnerd: serving (cut ratio %.4f)\n", snap.CutRatio)

	if dc.demo > 0 {
		return runDemo(st, dc.demo, dc.seed, out)
	}
	fmt.Fprintf(out, "spinnerd: listening on %s\n", dc.addr)
	srv := &http.Server{Addr: dc.addr, Handler: newMux(st)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		// Graceful shutdown: drain the listener, then Close the store —
		// on a durable store that writes the final checkpoint, so the
		// next start recovers without replaying.
		fmt.Fprintln(out, "spinnerd: signal received; draining and checkpointing...")
		sdCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sdCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return st.Close()
	}
}

// runDemo drives synthetic churn + lookups against the store and prints
// the counters — the no-network smoke mode.
func runDemo(st *serve.Store, d time.Duration, seed uint64, out io.Writer) error {
	n := len(st.Snapshot().Labels)
	src := rng.New(seed ^ 0xdeadbeef)
	var lookups atomic.Int64
	stop := make(chan struct{})
	lookupDone := make(chan struct{})
	go func() {
		defer close(lookupDone)
		v := graph.VertexID(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, ok := st.Lookup(v); ok {
				lookups.Add(1)
			}
			v = (v + 13) % graph.VertexID(len(st.Snapshot().Labels))
		}
	}()
	deadline := time.Now().Add(d)
	batch := 0
	for time.Now().Before(deadline) {
		mut := &graph.Mutation{}
		for i := 0; i < 50; i++ {
			u := graph.VertexID(src.Intn(n))
			v := graph.VertexID(src.Intn(n))
			if u != v {
				mut.NewEdges = append(mut.NewEdges, graph.WeightedEdgeRecord{U: u, V: v, Weight: 2})
			}
		}
		if err := st.Submit(mut); err != nil {
			return err
		}
		batch++
	}
	close(stop)
	<-lookupDone
	if err := st.Quiesce(); err != nil {
		fmt.Fprintf(out, "spinnerd: batch error during demo: %v\n", err)
	}
	fmt.Fprintf(out, "spinnerd demo: %d lookups alongside %d batches\n", lookups.Load(), batch)
	fmt.Fprintf(out, "spinnerd demo: %v\n", st.Counters().Snapshot())
	fmt.Fprintf(out, "spinnerd demo: final %s\n", describe(st.Snapshot()))
	return nil
}

func describe(s *serve.Snapshot) string {
	return fmt.Sprintf("snapshot v%d: %d vertices, k=%d, cut=%.4f, epoch=%d",
		s.Version, len(s.Labels), s.K, s.CutRatio, s.Epoch)
}

// newMux wires the store into an HTTP API. Success and error bodies are
// both JSON (errors are {"error": msg}); see the package comment for the
// exact shapes.
func newMux(st *serve.Store) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /lookup", func(w http.ResponseWriter, r *http.Request) {
		v, err := strconv.ParseInt(r.URL.Query().Get("v"), 10, 32)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad vertex id")
			return
		}
		part, ok := st.Lookup(graph.VertexID(v))
		if !ok {
			writeError(w, http.StatusNotFound, "vertex not found")
			return
		}
		snap := st.Snapshot()
		writeJSON(w, http.StatusOK, map[string]any{"vertex": v, "partition": part, "version": snap.Version, "k": snap.K})
	})
	mux.HandleFunc("POST /mutate", func(w http.ResponseWriter, r *http.Request) {
		mut, err := parseMutation(r.Body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if err := st.TrySubmit(mut); err != nil {
			writeError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]any{"queued": true,
			"adds": len(mut.NewEdges), "removes": len(mut.RemovedEdges), "vertices": mut.NewVertices})
	})
	mux.HandleFunc("POST /resize", func(w http.ResponseWriter, r *http.Request) {
		k, err := strconv.Atoi(r.URL.Query().Get("k"))
		if err != nil || k < 1 {
			writeError(w, http.StatusBadRequest, "bad k")
			return
		}
		if k == st.K() {
			writeError(w, http.StatusBadRequest, "k unchanged")
			return
		}
		if err := st.Resize(k); err != nil {
			writeError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]any{"queued": true, "k": k})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		snap := st.Snapshot()
		ctr := st.Counters().Snapshot()
		payload := map[string]any{
			"vertices":         len(snap.Labels),
			"k":                snap.K,
			"version":          snap.Version,
			"epoch":            snap.Epoch,
			"applied":          snap.AppliedBatches,
			"cut":              snap.CutRatio,
			"cut_weight":       snap.CutWeight,
			"total_weight":     snap.TotalWeight,
			"cut_by_partition": snap.CutByPartition,
			"shards":           snap.Shards,
			"durable":          st.Durable(),
			// Mean journal records framed per group append — the entries
			// amortizing each fsync under -fsync always.
			"journal_group_depth": ctr.GroupCommitDepth(),
			"counters":            ctr,
		}
		if err := st.Err(); err != nil {
			payload["last_error"] = err.Error()
		}
		writeJSON(w, http.StatusOK, payload)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits the JSON error shape every endpoint shares:
// {"error": msg} with the status carrying the class.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]any{"error": msg})
}

// parseMutation reads the /mutate line protocol.
func parseMutation(r io.Reader) (*graph.Mutation, error) {
	mut := &graph.Mutation{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		switch fields[0] {
		case "+":
			if len(fields) < 3 {
				return nil, fmt.Errorf("line %d: want '+ u v [w]'", lineNo)
			}
			u, err1 := strconv.ParseInt(fields[1], 10, 32)
			v, err2 := strconv.ParseInt(fields[2], 10, 32)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("line %d: bad endpoints", lineNo)
			}
			weight := int64(2)
			if len(fields) > 3 {
				var err error
				weight, err = strconv.ParseInt(fields[3], 10, 32)
				if err != nil || weight < 1 {
					return nil, fmt.Errorf("line %d: bad weight %q", lineNo, fields[3])
				}
			}
			mut.NewEdges = append(mut.NewEdges, graph.WeightedEdgeRecord{
				U: graph.VertexID(u), V: graph.VertexID(v), Weight: int32(weight)})
		case "-":
			if len(fields) != 3 {
				return nil, fmt.Errorf("line %d: want '- u v'", lineNo)
			}
			u, err1 := strconv.ParseInt(fields[1], 10, 32)
			v, err2 := strconv.ParseInt(fields[2], 10, 32)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("line %d: bad endpoints", lineNo)
			}
			mut.RemovedEdges = append(mut.RemovedEdges, graph.Edge{From: graph.VertexID(u), To: graph.VertexID(v)})
		case "v":
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: want 'v n'", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 || n > graph.MaxVertices || mut.NewVertices > graph.MaxVertices-n {
				return nil, fmt.Errorf("line %d: bad vertex count %q", lineNo, fields[1])
			}
			mut.NewVertices += n
		default:
			return nil, fmt.Errorf("line %d: unknown op %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return mut, nil
}
