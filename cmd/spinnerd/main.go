// Command spinnerd runs the live partition-maintenance service: it
// partitions an edge-list graph once at startup, then serves
// vertex→partition lookups over HTTP while ingesting graph mutations and
// elastic partition-count changes, maintaining the partitioning
// incrementally in the background (internal/serve).
//
// Usage:
//
//	spinnerd -k 32 -in graph.txt -addr :8080
//	spinnerd -k 8 -synthetic 20000 -demo 2s
//	spinnerd -k 32 -shards 8 -in graph.txt          # 8-way sharded mutation application
//	spinnerd -k 32 -in graph.txt -data-dir /var/spinner -fsync interval
//
// The store is sharded (-shards, default GOMAXPROCS capped at 8): each
// shard owns a contiguous vertex range and applies mutation sub-batches in
// parallel with incremental cut tracking; /stats reports the composed
// integer cut counters (cut_weight, total_weight, cut_by_partition) and
// the shard count.
//
// # Durability
//
// With -data-dir the daemon is durable: every accepted mutation/resize
// batch is appended to a CRC-framed write-ahead journal before it is
// applied, and the composed store state is checkpointed every
// -checkpoint-every applied batches (plus once at graceful shutdown —
// SIGINT/SIGTERM drains the listener and writes a final checkpoint). If
// the data dir already holds state, the input graph flags are ignored and
// the daemon recovers instead: latest valid checkpoint + journal tail
// replay, with torn tails truncated and mid-log corruption refused. The
// -fsync policy trades throughput for durability against OS/power death:
// never (page cache; survives process crashes), interval (bounded loss
// window, period set by -fsync-interval), always (every acknowledged
// batch survives power loss). -keep-checkpoints sets the checkpoint
// retention: the journal is only truncated below the oldest retained
// checkpoint, so recovery survives the loss (or crash-interrupted write)
// of the newest one by falling back and replaying a longer tail.
//
// The durable write path is a staged commit pipeline (see internal/serve
// and internal/wal): each coordinator turn journals everything pending
// as one group (one write + one fsync — under -fsync always, concurrent
// submitters amortize the disk barrier), coalesces consecutive add-only
// batches into single shard broadcasts, and runs checkpoints in the
// background (the write plane only pauses to clone the state, never for
// the encode + write + fsync). /stats reports the pipeline's shape:
// GroupCommits/GroupedEntries (and the derived journal_group_depth —
// mean entries per fsync), ApplyCoalesces/CoalescedBatches, and
// CheckpointsPending (1 while a background checkpoint is in flight).
//
// # Overload robustness
//
// The write plane is multi-tenant: /mutate batches are attributed to the
// tenant named by the X-Tenant request header (empty = the default
// tenant). With -quota-rate R each tenant gets a token bucket (R
// batches/sec, burst -quota-burst) and -quota-depth caps each tenant's
// queued backlog, so one abusive client exhausts its own quota instead
// of the shared mutation log; the coordinator drains the per-tenant
// backlogs deficit-round-robin, weighted by -quota-weights
// ("teamA=4,teamB=1" CSV, unlisted tenants weigh 1), which keeps
// well-behaved tenants' commit latency bounded while a flooder is
// saturating its share. Refusals are honest: quota and backpressure
// rejections return 429 with a machine-readable "code" and a
// Retry-After header computed from the observed drain rate.
//
// With -degrade-lookups or -degrade-staleness set, the daemon watches
// read-path load over an EWMA (-degrade-window) and, while overloaded,
// spends its degradation budget deliberately: background
// restabilization and exact cut-reconcile passes are deferred, and
// /resize — the most expensive write — is shed with 503 + Retry-After.
// Lookups and mutations keep flowing.
//
// Storage faults fail stop: if a journal write or fsync fails, the
// affected group is never acknowledged, the journal is poisoned, and
// the store degrades to read-only — /mutate and /resize return 503
// {"code":"degraded"}, /healthz reports {"status":"degraded"}, and
// lookups keep serving the last applied state. Restart to recover: the
// journal tail holds exactly the acknowledged suffix.
//
// # Replication
//
// A durable daemon is also a replication leader: followers bootstrap
// from GET /replicate/checkpoint (the latest checkpoint payload, with
// X-Replica-Epoch and X-Checkpoint-Seq headers) and then tail
// GET /replicate?after_seq=N&epoch=E — a chunked stream of the journal's
// own CRC-framed records wrapped in epoch-stamped stream frames
// (internal/replica). While a follower is connected the leader pins
// journal retention at the lowest sequence any follower still needs, so
// checkpoint truncation never races the stream; 409 means the epoch is
// stale (fenced), 410 means the journal no longer holds after_seq+1 and
// the follower must re-bootstrap.
//
// With -follow <leader-addr> (requires -data-dir) the daemon runs as a
// warm-standby follower: it installs the leader's checkpoint into its
// own data dir on first contact (later starts resume from its own
// state), replays the streamed tail through the same journal-then-apply
// path recovery uses — so follower state is bit-identical to the
// leader's quiesced history — and serves /lookup from its own
// atomically-swapped snapshots. External writes refuse with 503
// {"code":"read_only"}. /stats exposes the watermark: "applied_seq",
// "leader_seq" and "staleness_ms" (time since the follower last
// observed itself caught up); with -max-staleness D, /lookup answers
// 503 {"code":"stale_replica"} + Retry-After once staleness exceeds D.
//
// POST /promote fails the follower over: it fences the deposed leader
// (epoch+1 on every future frame check, persisted before writes open),
// seals the applied journal position, flips the store read-write, and
// starts serving /replicate itself so further replicas can chain from
// the new leader. No acknowledged batch is lost: the follower's journal
// holds exactly the leader records it applied.
//
// # HTTP API
//
// Success responses are JSON; error responses are JSON too, shaped
// {"error": "message"} with the status carrying the class (400 malformed,
// 404 unknown vertex, 429 quota/backpressure, 503 overload/fault/
// shutdown). 429 and 503 rejections add a stable "code" field
// (quota_exceeded, log_full, overloaded, degraded, k_unchanged,
// unavailable) and, where a backoff hint exists, a Retry-After header
// (whole seconds).
//
//	GET  /lookup?v=ID      → 200 {"vertex":ID,"partition":P,"version":V,"k":K}
//	                         400 {"error":"bad vertex id"} | 404 {"error":"vertex not found"}
//	                         503 {"error":...,"code":"stale_replica"} + Retry-After on a
//	                         follower lagging past -max-staleness
//	POST /mutate           → 202 {"queued":true,"adds":A,"removes":R,"vertices":N}
//	                         400 {"error":"line L: ..."}
//	                         429 {"error":...,"code":"quota_exceeded"|"log_full"} + Retry-After
//	                         503 {"error":...,"code":"degraded"|"unavailable"}
//	                         headers: X-Tenant names the submitting tenant
//	                         body: one op per line:
//	                           + u v [w]   add undirected edge {u,v} (weight w, default 2)
//	                           - u v       remove undirected edge {u,v}
//	                           v n         append n vertices
//	POST /resize?k=K       → 202 {"queued":true,"k":K}
//	                         400 {"error":"bad k"} | 400 {"error":"k unchanged","code":"k_unchanged"}
//	                         503 {"error":...,"code":"overloaded"|"degraded"|"unavailable"}
//	GET  /stats            → 200 snapshot + serving counters (JSON), including the
//	                         durability counters (journal appends/bytes/fsyncs,
//	                         checkpoints, replayed records), the commit-pipeline
//	                         counters (GroupCommits/GroupedEntries, ApplyCoalesces/
//	                         CoalescedBatches, CheckpointsPending), "durable",
//	                         the derived "journal_group_depth", and the overload
//	                         view: "degraded", "overloaded", "drain_rate",
//	                         "lookup_rate" and the per-tenant "tenants" map
//	                         (weight, submitted/committed/rejected/quota_rejected,
//	                         backlog)
//	GET  /healthz          → 200 once serving | 503 {"status":"degraded"} after a
//	                         storage fault
//	GET  /replicate?after_seq=N[&epoch=E]
//	                       → 200 chunked stream: handshake frame, then records/
//	                         heartbeat frames (raw journal frames inside, all
//	                         epoch-stamped and CRC-framed)
//	                         409 {"error":...} epoch mismatch (fenced) |
//	                         410 {"error":...} journal truncated below after_seq+1
//	                         (re-bootstrap) | 503 on a non-durable or still-
//	                         following node
//	GET  /replicate/checkpoint
//	                       → 200 latest checkpoint payload (binary), headers
//	                         X-Replica-Epoch, X-Checkpoint-Seq | 503 when none
//	POST /promote          → 200 {"promoted":true,"epoch":E,"sealed_seq":S}
//	                         (idempotent) | 409 {"code":"not_follower"} on a node
//	                         not running with -follow
//
// With -demo D the daemon skips the listener, drives synthetic churn
// against the store for duration D while hammering lookups, prints the
// serving counters, and exits — the no-network smoke mode used by tests
// and quick evaluations.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/replica"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/wal"
)

// daemonConfig carries the parsed flags into run.
type daemonConfig struct {
	k          int
	c          float64
	seed       uint64
	workers    int
	maxIter    int
	undirected bool
	inPath     string
	synthetic  int
	addr       string
	logDepth   int
	degrade    float64
	shards     int
	demo       time.Duration

	dataDir         string
	fsync           string
	fsyncInterval   time.Duration
	checkpointEvery int
	keepCheckpoints int

	quotaRate        float64
	quotaBurst       float64
	quotaDepth       int
	quotaWeights     string
	degradeLookups   float64
	degradeStaleness float64
	degradeWindow    time.Duration

	follow       string
	maxStaleness time.Duration
}

func main() {
	var dc daemonConfig
	flag.IntVar(&dc.k, "k", 32, "number of partitions")
	flag.Float64Var(&dc.c, "c", 1.05, "additional capacity (c > 1)")
	flag.Uint64Var(&dc.seed, "seed", 1, "random seed")
	flag.IntVar(&dc.workers, "workers", 0, "Pregel workers (0 = GOMAXPROCS)")
	flag.IntVar(&dc.maxIter, "max-iterations", 200, "iteration cap per maintenance run")
	flag.BoolVar(&dc.undirected, "undirected", false, "treat input edges as undirected")
	flag.StringVar(&dc.inPath, "in", "", "input edge list (default stdin; ignored with -synthetic or when -data-dir holds state)")
	flag.IntVar(&dc.synthetic, "synthetic", 0, "generate a Watts-Strogatz graph with this many vertices instead of reading input")
	flag.StringVar(&dc.addr, "addr", ":8080", "HTTP listen address")
	flag.IntVar(&dc.logDepth, "log-depth", 64, "bounded mutation log depth")
	flag.Float64Var(&dc.degrade, "degrade", 1.10, "cut-ratio degradation factor triggering restabilization")
	flag.IntVar(&dc.shards, "shards", 0, "store shards for parallel mutation application (0 = GOMAXPROCS, capped at 8)")
	flag.DurationVar(&dc.demo, "demo", 0, "run synthetic churn for this duration and exit (no listener)")
	flag.StringVar(&dc.dataDir, "data-dir", "", "durable data directory (journal + checkpoints); empty = in-memory only")
	flag.StringVar(&dc.fsync, "fsync", "interval", "journal fsync policy: never|interval|always")
	flag.DurationVar(&dc.fsyncInterval, "fsync-interval", 50*time.Millisecond, "background fsync period under -fsync interval")
	flag.IntVar(&dc.checkpointEvery, "checkpoint-every", 4096, "applied batches between checkpoints (negative disables periodic checkpoints)")
	flag.IntVar(&dc.keepCheckpoints, "keep-checkpoints", 2, "newest checkpoints retained; the journal is truncated below the oldest kept")
	flag.Float64Var(&dc.quotaRate, "quota-rate", 0, "per-tenant mutation admission rate (batches/sec; 0 disables quotas)")
	flag.Float64Var(&dc.quotaBurst, "quota-burst", 0, "per-tenant admission burst (0 = max(1, quota-rate))")
	flag.IntVar(&dc.quotaDepth, "quota-depth", 0, "per-tenant backlog cap for non-blocking submits (0 = unlimited)")
	flag.StringVar(&dc.quotaWeights, "quota-weights", "", "fair-drain weights as tenant=weight CSV (unlisted tenants weigh 1)")
	flag.Float64Var(&dc.degradeLookups, "degrade-lookups", 0, "lookups/sec above which maintenance defers and /resize sheds (0 disables)")
	flag.Float64Var(&dc.degradeStaleness, "degrade-staleness", 0, "mean lookup staleness (batches) above which overload engages (0 disables)")
	flag.DurationVar(&dc.degradeWindow, "degrade-window", 100*time.Millisecond, "EWMA window for the overload detector")
	flag.StringVar(&dc.follow, "follow", "", "run as a read replica of this leader address (requires -data-dir)")
	flag.DurationVar(&dc.maxStaleness, "max-staleness", 0, "follower lookups answer 503 stale_replica past this lag (0 = serve regardless)")
	flag.Parse()
	if err := run(dc, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spinnerd:", err)
		os.Exit(1)
	}
}

func run(dc daemonConfig, out io.Writer) error {
	// The flag default 0 means GOMAXPROCS (capped) on a fresh store, and
	// "keep the checkpointed shard layout" when recovering.
	shards := dc.shards
	if shards == 0 {
		shards = min(runtime.GOMAXPROCS(0), 8)
	}
	opts := core.Options{K: dc.k, C: dc.c, Seed: dc.seed, NumWorkers: dc.workers, MaxIterations: dc.maxIter}
	weights, err := parseWeights(dc.quotaWeights)
	if err != nil {
		return err
	}
	cfg := serve.Config{
		Options: opts, LogDepth: dc.logDepth, DegradeFactor: dc.degrade, Shards: shards,
		Quota:    serve.QuotaConfig{Rate: dc.quotaRate, Burst: dc.quotaBurst, TenantDepth: dc.quotaDepth, Weights: weights},
		Overload: serve.OverloadConfig{LookupRate: dc.degradeLookups, Staleness: dc.degradeStaleness, Window: dc.degradeWindow},
	}

	loadGraph := func() (*graph.Graph, error) {
		if dc.synthetic > 0 {
			return gen.WattsStrogatz(dc.synthetic, 10, 0.2, dc.seed), nil
		}
		var in io.Reader = os.Stdin
		if dc.inPath != "" {
			f, err := os.Open(dc.inPath)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			in = f
		}
		return graph.ReadEdgeList(in, !dc.undirected)
	}

	var st *serve.Store
	var rep *replicaState
	switch {
	case dc.follow != "":
		if dc.dataDir == "" {
			return errors.New("-follow requires -data-dir (the follower journals and checkpoints locally)")
		}
		if dc.demo > 0 {
			return errors.New("-follow and -demo are mutually exclusive")
		}
		pol, err := wal.ParsePolicy(dc.fsync)
		if err != nil {
			return err
		}
		cfg.Durability = serve.DurabilityConfig{
			Fsync:           pol,
			FsyncInterval:   dc.fsyncInterval,
			CheckpointEvery: dc.checkpointEvery,
			KeepCheckpoints: dc.keepCheckpoints,
		}
		cfg.Shards = dc.shards // 0 inherits the leader's checkpointed layout
		fmt.Fprintf(out, "spinnerd: following %s from %s (fsync=%s)...\n", dc.follow, dc.dataDir, pol)
		fl, err := replica.StartFollower(replica.FollowerConfig{
			Leader: dc.follow, Dir: dc.dataDir, Store: cfg,
		})
		if err != nil {
			return err
		}
		defer fl.Close()
		st = fl.Store()
		rep = &replicaState{
			fl:           fl,
			srv:          replica.NewServer(st, dc.dataDir, fl.Epoch),
			maxStaleness: dc.maxStaleness,
		}
		fmt.Fprintf(out, "spinnerd: follower at epoch %d, applied seq %d\n", fl.Epoch(), fl.AppliedSeq())
	case dc.dataDir != "":
		pol, err := wal.ParsePolicy(dc.fsync)
		if err != nil {
			return err
		}
		cfg.Durability = serve.DurabilityConfig{
			Fsync:           pol,
			FsyncInterval:   dc.fsyncInterval,
			CheckpointEvery: dc.checkpointEvery,
			KeepCheckpoints: dc.keepCheckpoints,
		}
		if serve.HasState(dc.dataDir) {
			fmt.Fprintf(out, "spinnerd: recovering from %s (fsync=%s)...\n", dc.dataDir, pol)
			cfg.Shards = dc.shards // 0 keeps the checkpointed layout
			st, err = serve.Open(dc.dataDir, cfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "spinnerd: recovered %d vertices (replayed %d journal records)\n",
				len(st.Snapshot().Labels), st.Counters().ReplayedRecords.Load())
		} else {
			g, err := loadGraph()
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "spinnerd: partitioning %d vertices into %d partitions (%d store shards, durable in %s, fsync=%s)...\n",
				g.NumVertices(), dc.k, shards, dc.dataDir, pol)
			st, err = serve.BootstrapDurable(dc.dataDir, g, cfg)
			if err != nil {
				return err
			}
		}
	default:
		g, err := loadGraph()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "spinnerd: partitioning %d vertices into %d partitions (%d store shards)...\n",
			g.NumVertices(), dc.k, shards)
		st, err = serve.Bootstrap(g, cfg)
		if err != nil {
			return err
		}
	}
	defer st.Close()
	if rep == nil && dc.dataDir != "" {
		// A durable non-follower node is a replication leader: pin its
		// epoch (1 on first boot; a promoted-then-restarted node keeps its
		// sealed epoch) and serve the journal stream.
		ep, err := replica.LoadOrInitEpoch(dc.dataDir)
		if err != nil {
			return err
		}
		rep = &replicaState{srv: replica.NewServer(st, dc.dataDir, func() uint64 { return ep.Epoch })}
	}
	snap := st.Snapshot()
	fmt.Fprintf(out, "spinnerd: serving (cut ratio %.4f)\n", snap.CutRatio)

	if dc.demo > 0 {
		return runDemo(st, dc.demo, dc.seed, out)
	}
	fmt.Fprintf(out, "spinnerd: listening on %s\n", dc.addr)
	srv := &http.Server{Addr: dc.addr, Handler: newMux(st, rep)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		// Graceful shutdown: drain the listener, then Close the store —
		// on a durable store that writes the final checkpoint, so the
		// next start recovers without replaying.
		fmt.Fprintln(out, "spinnerd: signal received; draining and checkpointing...")
		sdCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sdCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return st.Close()
	}
}

// runDemo drives synthetic churn + lookups against the store and prints
// the counters — the no-network smoke mode.
func runDemo(st *serve.Store, d time.Duration, seed uint64, out io.Writer) error {
	n := len(st.Snapshot().Labels)
	src := rng.New(seed ^ 0xdeadbeef)
	var lookups atomic.Int64
	stop := make(chan struct{})
	lookupDone := make(chan struct{})
	go func() {
		defer close(lookupDone)
		v := graph.VertexID(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, ok := st.Lookup(v); ok {
				lookups.Add(1)
			}
			v = (v + 13) % graph.VertexID(len(st.Snapshot().Labels))
		}
	}()
	deadline := time.Now().Add(d)
	batch := 0
	for time.Now().Before(deadline) {
		mut := &graph.Mutation{}
		for i := 0; i < 50; i++ {
			u := graph.VertexID(src.Intn(n))
			v := graph.VertexID(src.Intn(n))
			if u != v {
				mut.NewEdges = append(mut.NewEdges, graph.WeightedEdgeRecord{U: u, V: v, Weight: 2})
			}
		}
		if err := st.Submit(mut); err != nil {
			return err
		}
		batch++
	}
	close(stop)
	<-lookupDone
	if err := st.Quiesce(); err != nil {
		fmt.Fprintf(out, "spinnerd: batch error during demo: %v\n", err)
	}
	fmt.Fprintf(out, "spinnerd demo: %d lookups alongside %d batches\n", lookups.Load(), batch)
	fmt.Fprintf(out, "spinnerd demo: %v\n", st.Counters().Snapshot())
	fmt.Fprintf(out, "spinnerd demo: final %s\n", describe(st.Snapshot()))
	return nil
}

func describe(s *serve.Snapshot) string {
	return fmt.Sprintf("snapshot v%d: %d vertices, k=%d, cut=%.4f, epoch=%d",
		s.Version, len(s.Labels), s.K, s.CutRatio, s.Epoch)
}

// replicaState carries the node's replication role into the mux: srv is
// non-nil on any durable node (it serves the journal stream), fl is
// non-nil in follower mode. Both nil = an in-memory node with no
// replication surface.
type replicaState struct {
	srv          *replica.Server
	fl           *replica.Follower
	maxStaleness time.Duration
}

// following reports whether the node is still a tailing follower (false
// once promoted — and on leaders, which never had a tail).
func (rs *replicaState) following() bool {
	return rs != nil && rs.fl != nil && !rs.fl.Promoted()
}

func (rs *replicaState) role() string {
	if rs.following() {
		return "follower"
	}
	return "leader"
}

// newMux wires the store into an HTTP API. Success and error bodies are
// both JSON (errors are {"error": msg}); see the package comment for the
// exact shapes. rep may be nil (in-memory node: no replication surface).
func newMux(st *serve.Store, rep *replicaState) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if st.Degraded() {
			payload := map[string]any{"status": "degraded"}
			if err := st.Err(); err != nil {
				payload["error"] = err.Error()
			}
			writeJSON(w, http.StatusServiceUnavailable, payload)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /lookup", func(w http.ResponseWriter, r *http.Request) {
		v, err := strconv.ParseInt(r.URL.Query().Get("v"), 10, 32)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad vertex id")
			return
		}
		if rep.following() && rep.maxStaleness > 0 && rep.fl.Staleness() > rep.maxStaleness {
			st.Counters().StaleLookups.Add(1)
			writeErrorCode(w, http.StatusServiceUnavailable, "stale_replica",
				fmt.Sprintf("replica %s behind the leader (bound %s)", rep.fl.Staleness().Round(time.Millisecond), rep.maxStaleness), time.Second)
			return
		}
		part, ok := st.Lookup(graph.VertexID(v))
		if !ok {
			writeError(w, http.StatusNotFound, "vertex not found")
			return
		}
		snap := st.Snapshot()
		writeJSON(w, http.StatusOK, map[string]any{"vertex": v, "partition": part, "version": snap.Version, "k": snap.K})
	})
	mux.HandleFunc("POST /mutate", func(w http.ResponseWriter, r *http.Request) {
		mut, err := parseMutation(r.Body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		mut.Tenant = r.Header.Get("X-Tenant")
		if err := st.TrySubmit(mut); err != nil {
			var qe *serve.QuotaError
			switch {
			case errors.As(err, &qe):
				writeErrorCode(w, http.StatusTooManyRequests, "quota_exceeded", err.Error(), qe.RetryAfter)
			case errors.Is(err, serve.ErrLogFull):
				writeErrorCode(w, http.StatusTooManyRequests, "log_full", err.Error(), st.RetryAfter())
			case errors.Is(err, serve.ErrDegraded):
				writeErrorCode(w, http.StatusServiceUnavailable, "degraded", err.Error(), 0)
			case errors.Is(err, serve.ErrReadOnly):
				writeErrorCode(w, http.StatusServiceUnavailable, "read_only", err.Error(), 0)
			default:
				writeErrorCode(w, http.StatusServiceUnavailable, "unavailable", err.Error(), 0)
			}
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]any{"queued": true,
			"adds": len(mut.NewEdges), "removes": len(mut.RemovedEdges), "vertices": mut.NewVertices})
	})
	mux.HandleFunc("POST /resize", func(w http.ResponseWriter, r *http.Request) {
		k, err := strconv.Atoi(r.URL.Query().Get("k"))
		if err != nil || k < 1 {
			writeError(w, http.StatusBadRequest, "bad k")
			return
		}
		// Resizes are the most expensive write (global relabel + repair
		// runs); under overload they are shed outright so the degradation
		// budget is spent on keeping lookups and mutations flowing.
		if st.Overloaded() {
			st.Counters().ShedRequests.Add(1)
			writeErrorCode(w, http.StatusServiceUnavailable, "overloaded", "serve: overloaded; resize shed", st.RetryAfter())
			return
		}
		if err := st.Resize(k); err != nil {
			switch {
			case errors.Is(err, serve.ErrKUnchanged):
				// The unchanged-k check lives inside Resize so concurrent
				// duplicate resizes race atomically, not via a stale K().
				writeErrorCode(w, http.StatusBadRequest, "k_unchanged", "k unchanged", 0)
			case errors.Is(err, serve.ErrDegraded):
				writeErrorCode(w, http.StatusServiceUnavailable, "degraded", err.Error(), 0)
			case errors.Is(err, serve.ErrReadOnly):
				writeErrorCode(w, http.StatusServiceUnavailable, "read_only", err.Error(), 0)
			default:
				writeErrorCode(w, http.StatusServiceUnavailable, "unavailable", err.Error(), 0)
			}
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]any{"queued": true, "k": k})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		snap := st.Snapshot()
		ctr := st.Counters().Snapshot()
		payload := map[string]any{
			"vertices":         len(snap.Labels),
			"k":                snap.K,
			"version":          snap.Version,
			"epoch":            snap.Epoch,
			"applied":          snap.AppliedBatches,
			"cut":              snap.CutRatio,
			"cut_weight":       snap.CutWeight,
			"total_weight":     snap.TotalWeight,
			"cut_by_partition": snap.CutByPartition,
			"shards":           snap.Shards,
			"durable":          st.Durable(),
			// Mean journal records framed per group append — the entries
			// amortizing each fsync under -fsync always.
			"journal_group_depth": ctr.GroupCommitDepth(),
			"counters":            ctr,
			"degraded":            st.Degraded(),
			"overloaded":          st.Overloaded(),
			"drain_rate":          st.DrainRate(),
			"lookup_rate":         st.LookupRate(),
			"tenants":             st.Tenants(),
			"role":                rep.role(),
			"applied_seq":         st.JournalSeq(),
			"leader_seq":          st.JournalSeq(),
		}
		if rep.following() {
			payload["applied_seq"] = rep.fl.AppliedSeq()
			payload["leader_seq"] = rep.fl.LeaderSeq()
			payload["staleness_ms"] = rep.fl.Staleness().Milliseconds()
			if err := rep.fl.Err(); err != nil {
				payload["replication_error"] = err.Error()
			}
		}
		if rep != nil && rep.fl != nil {
			payload["replica_epoch"] = rep.fl.Epoch()
		}
		if err := st.Err(); err != nil {
			payload["last_error"] = err.Error()
		}
		writeJSON(w, http.StatusOK, payload)
	})
	replicating := func(w http.ResponseWriter) bool {
		if rep == nil || rep.srv == nil {
			writeErrorCode(w, http.StatusServiceUnavailable, "not_durable", "replication requires -data-dir", 0)
			return false
		}
		if rep.following() {
			// A tailing follower does not serve the stream: chaining
			// replicas from a replica would hide leader truncation and
			// staleness behind a second hop. Promote first.
			writeErrorCode(w, http.StatusServiceUnavailable, "follower", "node is a follower; promote it to serve replication", 0)
			return false
		}
		return true
	}
	mux.HandleFunc("GET /replicate", func(w http.ResponseWriter, r *http.Request) {
		if !replicating(w) {
			return
		}
		rep.srv.ServeStream(w, r)
	})
	mux.HandleFunc("GET /replicate/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		if !replicating(w) {
			return
		}
		rep.srv.ServeCheckpoint(w, r)
	})
	mux.HandleFunc("POST /promote", func(w http.ResponseWriter, r *http.Request) {
		if rep == nil || rep.fl == nil {
			writeErrorCode(w, http.StatusConflict, "not_follower", "node is not running with -follow", 0)
			return
		}
		ep, err := rep.fl.Promote()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"promoted": true, "epoch": ep.Epoch, "sealed_seq": ep.SealedSeq})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits the JSON error shape every endpoint shares:
// {"error": msg} with the status carrying the class.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]any{"error": msg})
}

// writeErrorCode is writeError plus a stable machine-readable "code"
// field and, when retryAfter > 0, a Retry-After header carrying an
// honest backoff hint (whole seconds, minimum 1) computed from the
// store's observed drain rate.
func writeErrorCode(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	if retryAfter > 0 {
		secs := int(retryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, status, map[string]any{"error": msg, "code": code})
}

// parseWeights parses the -quota-weights "tenant=weight,..." CSV.
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	weights := make(map[string]int)
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		w, err := strconv.Atoi(val)
		if !ok || name == "" || err != nil || w < 1 {
			return nil, fmt.Errorf("bad -quota-weights entry %q, want tenant=weight with weight >= 1", pair)
		}
		weights[name] = w
	}
	return weights, nil
}

// parseMutation reads the /mutate line protocol.
func parseMutation(r io.Reader) (*graph.Mutation, error) {
	mut := &graph.Mutation{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		switch fields[0] {
		case "+":
			if len(fields) < 3 {
				return nil, fmt.Errorf("line %d: want '+ u v [w]'", lineNo)
			}
			u, err1 := strconv.ParseInt(fields[1], 10, 32)
			v, err2 := strconv.ParseInt(fields[2], 10, 32)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("line %d: bad endpoints", lineNo)
			}
			weight := int64(2)
			if len(fields) > 3 {
				var err error
				weight, err = strconv.ParseInt(fields[3], 10, 32)
				if err != nil || weight < 1 {
					return nil, fmt.Errorf("line %d: bad weight %q", lineNo, fields[3])
				}
			}
			mut.NewEdges = append(mut.NewEdges, graph.WeightedEdgeRecord{
				U: graph.VertexID(u), V: graph.VertexID(v), Weight: int32(weight)})
		case "-":
			if len(fields) != 3 {
				return nil, fmt.Errorf("line %d: want '- u v'", lineNo)
			}
			u, err1 := strconv.ParseInt(fields[1], 10, 32)
			v, err2 := strconv.ParseInt(fields[2], 10, 32)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("line %d: bad endpoints", lineNo)
			}
			mut.RemovedEdges = append(mut.RemovedEdges, graph.Edge{From: graph.VertexID(u), To: graph.VertexID(v)})
		case "v":
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: want 'v n'", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 || n > graph.MaxVertices || mut.NewVertices > graph.MaxVertices-n {
				return nil, fmt.Errorf("line %d: bad vertex count %q", lineNo, fields[1])
			}
			mut.NewVertices += n
		default:
			return nil, fmt.Errorf("line %d: unknown op %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return mut, nil
}
