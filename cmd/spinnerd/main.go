// Command spinnerd runs the live partition-maintenance service: it
// partitions an edge-list graph once at startup, then serves
// vertex→partition lookups over HTTP while ingesting graph mutations and
// elastic partition-count changes, maintaining the partitioning
// incrementally in the background (internal/serve).
//
// Usage:
//
//	spinnerd -k 32 -in graph.txt -addr :8080
//	spinnerd -k 8 -synthetic 20000 -demo 2s
//	spinnerd -k 32 -shards 8 -in graph.txt          # 8-way sharded mutation application
//	spinnerd -k 32 -in graph.txt -data-dir /var/spinner -fsync interval
//
// The store is sharded (-shards, default GOMAXPROCS capped at 8): each
// shard owns a contiguous vertex range and applies mutation sub-batches in
// parallel with incremental cut tracking; /v1/stats reports the composed
// integer cut counters (cut_weight, total_weight, cut_by_partition) and
// the shard count.
//
// # Durability
//
// With -data-dir the daemon is durable: every accepted mutation/resize
// batch is appended to a CRC-framed write-ahead journal before it is
// applied, and the composed store state is checkpointed every
// -checkpoint-every applied batches (plus once at graceful shutdown —
// SIGINT/SIGTERM drains the listener and writes a final checkpoint). If
// the data dir already holds state, the input graph flags are ignored and
// the daemon recovers instead: latest valid checkpoint + journal tail
// replay, with torn tails truncated and mid-log corruption refused. The
// -fsync policy trades throughput for durability against OS/power death:
// never (page cache; survives process crashes), interval (bounded loss
// window, period set by -fsync-interval), always (every acknowledged
// batch survives power loss). -keep-checkpoints sets the checkpoint
// retention: the journal is only truncated below the oldest retained
// checkpoint, so recovery survives the loss (or crash-interrupted write)
// of the newest one by falling back and replaying a longer tail.
//
// Checkpoints are incremental by default: when the label map has barely
// moved since the last checkpoint, the store writes a small delta
// checkpoint (changed label runs + counters, chained onto the previous
// encoding) instead of re-encoding the whole graph; after
// -max-delta-chain links — or whenever a delta stops being materially
// smaller than a full re-encode — it rebases onto a fresh full
// checkpoint and prunes the superseded chain. Recovery composes base +
// chain + journal tail into state bit-identical to full-checkpoint
// recovery. -max-delta-chain < 0 disables incremental checkpoints.
//
// The durable write path is a staged commit pipeline (see internal/serve
// and internal/wal): each coordinator turn journals everything pending
// as one group (one write + one fsync — under -fsync always, concurrent
// submitters amortize the disk barrier), coalesces consecutive add-only
// batches into single shard broadcasts, and runs checkpoints in the
// background (the write plane only pauses to clone the state, never for
// the encode + write + fsync). /v1/stats reports the pipeline's shape:
// GroupCommits/GroupedEntries (and the derived journal_group_depth —
// mean entries per fsync), ApplyCoalesces/CoalescedBatches, and
// CheckpointsPending (1 while a background checkpoint is in flight).
//
// # Overload robustness
//
// The write plane is multi-tenant: /v1/mutate batches are attributed to
// the tenant named by the X-Tenant request header (empty = the default
// tenant). With -quota-rate R each tenant gets a token bucket (R
// batches/sec, burst -quota-burst) and -quota-depth caps each tenant's
// queued backlog, so one abusive client exhausts its own quota instead
// of the shared mutation log; the coordinator drains the per-tenant
// backlogs deficit-round-robin, weighted by -quota-weights
// ("teamA=4,teamB=1" CSV, unlisted tenants weigh 1), which keeps
// well-behaved tenants' commit latency bounded while a flooder is
// saturating its share. Refusals are honest: quota and backpressure
// rejections return 429 with a machine-readable "code" and a
// Retry-After header computed from the observed drain rate.
//
// With -degrade-lookups or -degrade-staleness set, the daemon watches
// read-path load over an EWMA (-degrade-window) and, while overloaded,
// spends its degradation budget deliberately: background
// restabilization and exact cut-reconcile passes are deferred, and
// /v1/resize — the most expensive write — is shed with 503 + Retry-After.
// Lookups and mutations keep flowing.
//
// Storage faults fail stop: if a journal write or fsync fails, the
// affected group is never acknowledged, the journal is poisoned, and
// the store degrades to read-only — /v1/mutate and /v1/resize return 503
// {"code":"degraded"}, /v1/healthz reports {"status":"degraded"}, and
// lookups keep serving the last applied state. Restart to recover: the
// journal tail holds exactly the acknowledged suffix.
//
// # Replication
//
// A durable daemon is also a replication leader: followers bootstrap
// from GET /v1/replicate/checkpoint (the latest checkpoint payload, with
// X-Replica-Epoch and X-Checkpoint-Seq headers) and then tail
// GET /v1/replicate?after_seq=N&epoch=E — a chunked stream of the
// journal's own CRC-framed records wrapped in epoch-stamped stream
// frames (internal/replica). While a follower is connected the leader
// pins journal retention at the lowest sequence any follower still
// needs, so checkpoint truncation never races the stream; 409 means the
// epoch is stale (fenced), 410 means the journal no longer holds
// after_seq+1 and the follower must re-bootstrap.
//
// With -follow <leader-addr> (requires -data-dir) the daemon runs as a
// warm-standby follower: it installs the leader's checkpoint into its
// own data dir on first contact (later starts resume from its own
// state), replays the streamed tail through the same journal-then-apply
// path recovery uses — so follower state is bit-identical to the
// leader's quiesced history — and serves /v1/lookup from its own
// atomically-swapped snapshots. External writes refuse with 503
// {"code":"read_only"}. /v1/stats exposes the watermark: "applied_seq",
// "leader_seq" and "staleness_ms" (time since the follower last
// observed itself caught up); with -max-staleness D, /v1/lookup answers
// 503 {"code":"stale_replica"} + Retry-After once staleness exceeds D.
//
// POST /v1/promote fails the follower over: it fences the deposed leader
// (epoch+1 on every future frame check, persisted before writes open),
// seals the applied journal position, flips the store read-write, and
// starts serving /v1/replicate itself so further replicas can chain from
// the new leader. No acknowledged batch is lost: the follower's journal
// holds exactly the leader records it applied.
//
// # Change feed
//
// Every label-changing event in the store also publishes a compact
// delta record (changed vertex→label runs, partition-count and
// shard-boundary changes, integer cut counters) into a bounded ring
// (-delta-ring records; the oldest are compacted away). GET /v1/watch
// streams those records so an external consumer — a cache, an index, a
// router — can mirror the vertex→partition map without polling:
// subscribe from sequence 0, apply each delta, and the map converges to
// exactly what /v1/lookup serves. Delta sequences are per-process
// (restart ⇒ resync), and a consumer that falls behind the ring gets an
// honest 410 and re-bootstraps from the full map.
//
// # Watch at scale
//
// The watch fan-out is encode-once: each publication's delta payload
// and its complete CRC-framed wire frame are memoized in the ring entry
// at publish time, and every connected stream writes the same immutable
// bytes — one encode and one CRC per publication whether one stream or
// ten thousand are attached (BenchmarkWatchFanout / make bench-watch
// records the curve into BENCH_pr10.json). Idle streams park on
// per-subscriber coalesced wakeups (a single-slot channel each) rather
// than a shared broadcast channel, so a publication wakes each stream
// at most once — a stream that fell several publications behind wakes
// once and drains a batch — and a slow consumer never blocks the
// publisher. Ring reads are lock-free snapshot loads, so catch-up reads
// never contend with publishes. A cursor that compaction overruns
// mid-stream (the ring is bounded; a consumer stalled longer than
// -delta-ring publications loses its place) is told so explicitly: the
// server sends a typed end frame carrying the refreshed floor/next
// bounds before closing the stream, the client surfaces it as the same
// "compacted" condition as the 410, and the consumer resyncs via
// GET /v1/lookup. spinnerctl watch -reconnect automates the whole loop:
// jittered-backoff re-dial on connection drops, resume from the last
// applied sequence, full lookup resync on 410 or end frame.
//
// # HTTP API (v1)
//
// Every endpoint lives under /v1/; the pre-versioning paths (/lookup,
// /mutate, /resize, /stats, /healthz, /replicate, /replicate/checkpoint,
// /promote) remain as aliases with identical shapes. Success responses
// are JSON; error responses are JSON too, shaped {"error": msg} with the
// status carrying the class (400 malformed, 404 unknown vertex, 409
// conflict, 410 gone, 429 quota/backpressure, 503 overload/fault/
// shutdown). Machine-actionable rejections add a stable "code" field
// (quota_exceeded, log_full, overloaded, degraded, read_only,
// stale_replica, k_unchanged, unavailable, not_durable, follower,
// not_follower, compacted, reset) and, where a backoff hint exists, a
// Retry-After header (whole seconds). Every response — success and
// error alike — carries Content-Type: application/json, except the
// binary /v1/watch and /v1/replicate streams.
//
//	GET  /v1/healthz       → 200 {"status":"ok"}
//	                         503 {"status":"degraded","error":...} after a storage fault
//	GET  /v1/lookup?v=ID   → 200 {"vertex":ID,"partition":P,"version":V,"k":K}
//	                         400 {"error":"bad vertex id"} | 404 {"error":"vertex not found"}
//	                         503 {"error":...,"code":"stale_replica"} + Retry-After on a
//	                         follower lagging past -max-staleness
//	GET  /v1/lookup        → 200 {"k":K,"vertices":N,"labels":[...],"from_seq":S}
//	                         (no v parameter: the full map + the watch cursor to resume
//	                         the change feed from — the resync path after a 410; the
//	                         legacy /lookup alias keeps answering 400 here)
//	POST /v1/mutate        → 202 {"queued":true,"adds":A,"removes":R,"vertices":N}
//	                         400 {"error":"line L: ..."}
//	                         429 {"error":...,"code":"quota_exceeded"|"log_full"} + Retry-After
//	                         503 {"error":...,"code":"degraded"|"read_only"|"unavailable"}
//	                         headers: X-Tenant names the submitting tenant
//	                         body: one op per line:
//	                           + u v [w]   add undirected edge {u,v} (weight w, default 2)
//	                           - u v       remove undirected edge {u,v}
//	                           v n         append n vertices
//	POST /v1/resize?k=K    → 202 {"queued":true,"k":K}
//	                         400 {"error":"bad k"} | 400 {"error":"k unchanged","code":"k_unchanged"}
//	                         503 {"error":...,"code":"overloaded"|"degraded"|"read_only"|"unavailable"}
//	GET  /v1/stats         → 200 snapshot + serving counters (one documented JSON
//	                         struct — see api.StatsResponse): vertices, k, version,
//	                         epoch, applied, cut, cut_weight, total_weight,
//	                         cut_by_partition, shards, durable, journal_group_depth,
//	                         counters, degraded, overloaded, drain_rate, lookup_rate,
//	                         tenants, delta_floor, delta_next, role, applied_seq,
//	                         leader_seq (+ follower-only staleness_ms,
//	                         replication_error, replica_epoch; last_error after a fault)
//	GET  /v1/watch?from_seq=N[&limit=M]
//	                       → 200 chunked application/octet-stream of CRC frames
//	                         (u8 kind | u32 len | u32 crc | payload): a handshake
//	                         frame (floor+next), then one frame per delta record
//	                         from sequence N+1 on, with heartbeat frames while
//	                         idle. from_seq names the last delta the consumer has
//	                         applied (0 = from the beginning; the first delta is
//	                         the baseline full-label record). Long-polls forever
//	                         unless limit > 0 caps the deltas delivered.
//	                         Headers X-Delta-Floor/X-Delta-Next report retention.
//	                         If compaction overruns the cursor mid-stream, a
//	                         final end frame (refreshed floor+next) precedes the
//	                         close — resync exactly as for the 410 below.
//	                         410 {"code":"compacted"} the cursor fell below the
//	                         compaction floor | 410 {"code":"reset"} the cursor is
//	                         from a previous server incarnation — both mean: full
//	                         resync via GET /v1/lookup, re-watch from its from_seq
//	GET  /v1/replicate?after_seq=N[&epoch=E]
//	                       → 200 chunked stream: handshake frame, then records/
//	                         heartbeat frames (raw journal frames inside, all
//	                         epoch-stamped and CRC-framed)
//	                         409 {"error":...} epoch mismatch (fenced) |
//	                         410 {"error":...} journal truncated below after_seq+1
//	                         (re-bootstrap) | 503 on a non-durable or still-
//	                         following node
//	GET  /v1/replicate/checkpoint
//	                       → 200 latest checkpoint payload (binary), headers
//	                         X-Replica-Epoch, X-Checkpoint-Seq | 503 when none
//	POST /v1/promote       → 200 {"promoted":true,"epoch":E,"sealed_seq":S}
//	                         (idempotent) | 409 {"code":"not_follower"} on a node
//	                         not running with -follow
//	GET  /v1/metrics       → 200 Prometheus text exposition (version 0.0.4,
//	                         Content-Type text/plain) of every metric below.
//	                         New surface; no legacy alias.
//
// The typed Go client for this surface is internal/api/client; the
// spinnerctl command wraps it for shell use (spinnerctl metrics
// pretty-prints the exposition; spinnerctl stats -watch polls /v1/stats).
//
// # Metrics reference
//
// GET /v1/metrics renders two planes into one exposition. The first is
// the registry of histograms and gauges; observations are nanoseconds
// internally, exposed in seconds with power-of-two bucket boundaries:
//
//	spinner_http_request_duration_seconds  histogram {route,status}
//	    request latency per route (healthz, lookup, mutate, resize,
//	    stats, replicate, replicate_checkpoint, promote, watch, metrics)
//	    and status class (2xx, 4xx, ...). Streaming routes (watch,
//	    replicate) record time-to-first-byte — the handshake — since
//	    their total duration is the subscription lifetime.
//	spinner_lookup_duration_seconds        histogram
//	    sampled store-lookup latency (one in -lookup-sample-every).
//	spinner_stage_duration_seconds         histogram {stage}
//	    per-turn commit-pipeline stage timing: drain (log drain + group
//	    formation), journal (wal group append incl. fsync wait), apply
//	    (shard broadcast/barrier application), publish (full shard
//	    republication after relabeling), checkpoint_capture (the
//	    under-barrier state clone), checkpoint_write (background encode
//	    + install).
//	spinner_replica_lag_records            gauge (follower only)
//	    leader seq − applied seq at scrape time.
//	spinner_replica_staleness_seconds      gauge (follower only)
//	    wall-clock time since last caught-up observation — the same
//	    quantity /v1/stats reports as staleness_ms.
//	spinner_replica_apply_lag_records      histogram (follower only)
//	    apply lag observed at each applied record (raw record counts).
//	spinner_watch_fanout_duration_seconds  histogram
//	    change-feed delivery latency: delta publication to the batch
//	    containing it being flushed to a watch stream.
//	spinner_watch_subscribers              gauge
//	    watch streams currently registered on (or still draining) the
//	    delta hub's broadcast plane.
//
// The second plane is every counter /v1/stats carries under "counters",
// one series per field, CamelCase mapped to snake_case with the
// Prometheus _total suffix on monotonic counters — e.g. Lookups →
// spinner_lookups_total, GroupCommits → spinner_group_commits_total,
// ReplicaRecordsApplied → spinner_replica_records_applied_total. The two
// non-monotonic fields are gauges: spinner_checkpoints_pending (1 while
// a background checkpoint is in flight) and spinner_watch_streams
// (currently open /v1/watch streams; the companion counter
// spinner_watch_streams_total counts every accepted stream). The
// encode-once fan-out invariant is auditable from two of them:
// spinner_delta_encodes_total tracks spinner_deltas_published_total
// exactly, independent of how many streams are attached, and
// spinner_watch_bytes_sent_total totals the frame bytes written across
// all watch streams. The full
// name table lives in internal/metrics (ServeMetrics), and
// /v1/stats.latency carries headline p50/p90/p99/max per histogram for
// humans who want quantiles without a scraper.
//
// With -pprof-addr the daemon additionally serves net/http/pprof
// (/debug/pprof/...) on a separate side listener, keeping profiling off
// the serving address entirely.
//
// With -demo D the daemon skips the listener, drives synthetic churn
// against the store for duration D while hammering lookups, prints the
// serving counters, and exits — the no-network smoke mode used by tests
// and quick evaluations.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/replica"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/wal"
)

// daemonConfig carries the parsed flags into run.
type daemonConfig struct {
	k          int
	c          float64
	seed       uint64
	workers    int
	maxIter    int
	undirected bool
	inPath     string
	synthetic  int
	addr       string
	logDepth   int
	degrade    float64
	shards     int
	demo       time.Duration
	deltaRing  int

	dataDir         string
	fsync           string
	fsyncInterval   time.Duration
	checkpointEvery int
	keepCheckpoints int
	maxDeltaChain   int

	quotaRate        float64
	quotaBurst       float64
	quotaDepth       int
	quotaWeights     string
	degradeLookups   float64
	degradeStaleness float64
	degradeWindow    time.Duration

	follow       string
	maxStaleness time.Duration

	pprofAddr         string
	lookupSampleEvery int
}

func main() {
	var dc daemonConfig
	flag.IntVar(&dc.k, "k", 32, "number of partitions")
	flag.Float64Var(&dc.c, "c", 1.05, "additional capacity (c > 1)")
	flag.Uint64Var(&dc.seed, "seed", 1, "random seed")
	flag.IntVar(&dc.workers, "workers", 0, "Pregel workers (0 = GOMAXPROCS)")
	flag.IntVar(&dc.maxIter, "max-iterations", 200, "iteration cap per maintenance run")
	flag.BoolVar(&dc.undirected, "undirected", false, "treat input edges as undirected")
	flag.StringVar(&dc.inPath, "in", "", "input edge list (default stdin; ignored with -synthetic or when -data-dir holds state)")
	flag.IntVar(&dc.synthetic, "synthetic", 0, "generate a Watts-Strogatz graph with this many vertices instead of reading input")
	flag.StringVar(&dc.addr, "addr", ":8080", "HTTP listen address")
	flag.IntVar(&dc.logDepth, "log-depth", 64, "bounded mutation log depth")
	flag.Float64Var(&dc.degrade, "degrade", 1.10, "cut-ratio degradation factor triggering restabilization")
	flag.IntVar(&dc.shards, "shards", 0, "store shards for parallel mutation application (0 = GOMAXPROCS, capped at 8)")
	flag.DurationVar(&dc.demo, "demo", 0, "run synthetic churn for this duration and exit (no listener)")
	flag.IntVar(&dc.deltaRing, "delta-ring", 1024, "change-feed delta records retained for /v1/watch before compaction")
	flag.StringVar(&dc.dataDir, "data-dir", "", "durable data directory (journal + checkpoints); empty = in-memory only")
	flag.StringVar(&dc.fsync, "fsync", "interval", "journal fsync policy: never|interval|always")
	flag.DurationVar(&dc.fsyncInterval, "fsync-interval", 50*time.Millisecond, "background fsync period under -fsync interval")
	flag.IntVar(&dc.checkpointEvery, "checkpoint-every", 4096, "applied batches between checkpoints (negative disables periodic checkpoints)")
	flag.IntVar(&dc.keepCheckpoints, "keep-checkpoints", 2, "newest checkpoints retained; the journal is truncated below the oldest kept")
	flag.IntVar(&dc.maxDeltaChain, "max-delta-chain", 0, "incremental checkpoints chained before a forced full rebase (0 = default 8, negative disables)")
	flag.Float64Var(&dc.quotaRate, "quota-rate", 0, "per-tenant mutation admission rate (batches/sec; 0 disables quotas)")
	flag.Float64Var(&dc.quotaBurst, "quota-burst", 0, "per-tenant admission burst (0 = max(1, quota-rate))")
	flag.IntVar(&dc.quotaDepth, "quota-depth", 0, "per-tenant backlog cap for non-blocking submits (0 = unlimited)")
	flag.StringVar(&dc.quotaWeights, "quota-weights", "", "fair-drain weights as tenant=weight CSV (unlisted tenants weigh 1)")
	flag.Float64Var(&dc.degradeLookups, "degrade-lookups", 0, "lookups/sec above which maintenance defers and /resize sheds (0 disables)")
	flag.Float64Var(&dc.degradeStaleness, "degrade-staleness", 0, "mean lookup staleness (batches) above which overload engages (0 disables)")
	flag.DurationVar(&dc.degradeWindow, "degrade-window", 100*time.Millisecond, "EWMA window for the overload detector")
	flag.StringVar(&dc.follow, "follow", "", "run as a read replica of this leader address (requires -data-dir)")
	flag.DurationVar(&dc.maxStaleness, "max-staleness", 0, "follower lookups answer 503 stale_replica past this lag (0 = serve regardless)")
	flag.StringVar(&dc.pprofAddr, "pprof-addr", "", "serve net/http/pprof on this side address (empty disables)")
	flag.IntVar(&dc.lookupSampleEvery, "lookup-sample-every", 0, "time one in N lookups into the latency histogram (0 = default 256, negative disables)")
	flag.Parse()
	if err := run(dc, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spinnerd:", err)
		os.Exit(1)
	}
}

func run(dc daemonConfig, out io.Writer) error {
	// The flag default 0 means GOMAXPROCS (capped) on a fresh store, and
	// "keep the checkpointed shard layout" when recovering.
	shards := dc.shards
	if shards == 0 {
		shards = min(runtime.GOMAXPROCS(0), 8)
	}
	opts := core.Options{K: dc.k, C: dc.c, Seed: dc.seed, NumWorkers: dc.workers, MaxIterations: dc.maxIter}
	weights, err := parseWeights(dc.quotaWeights)
	if err != nil {
		return err
	}
	cfg := serve.Config{
		Options: opts, LogDepth: dc.logDepth, DegradeFactor: dc.degrade, Shards: shards,
		DeltaRing: dc.deltaRing, LookupSampleEvery: dc.lookupSampleEvery,
		Quota:    serve.QuotaConfig{Rate: dc.quotaRate, Burst: dc.quotaBurst, TenantDepth: dc.quotaDepth, Weights: weights},
		Overload: serve.OverloadConfig{LookupRate: dc.degradeLookups, Staleness: dc.degradeStaleness, Window: dc.degradeWindow},
	}
	newDurability := func(pol wal.Policy) serve.DurabilityConfig {
		return serve.DurabilityConfig{
			Fsync:           pol,
			FsyncInterval:   dc.fsyncInterval,
			CheckpointEvery: dc.checkpointEvery,
			KeepCheckpoints: dc.keepCheckpoints,
			MaxDeltaChain:   dc.maxDeltaChain,
		}
	}

	loadGraph := func() (*graph.Graph, error) {
		if dc.synthetic > 0 {
			return gen.WattsStrogatz(dc.synthetic, 10, 0.2, dc.seed), nil
		}
		var in io.Reader = os.Stdin
		if dc.inPath != "" {
			f, err := os.Open(dc.inPath)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			in = f
		}
		return graph.ReadEdgeList(in, !dc.undirected)
	}

	var st *serve.Store
	var rep *api.Replica
	switch {
	case dc.follow != "":
		if dc.dataDir == "" {
			return errors.New("-follow requires -data-dir (the follower journals and checkpoints locally)")
		}
		if dc.demo > 0 {
			return errors.New("-follow and -demo are mutually exclusive")
		}
		pol, err := wal.ParsePolicy(dc.fsync)
		if err != nil {
			return err
		}
		cfg.Durability = newDurability(pol)
		cfg.Shards = dc.shards // 0 inherits the leader's checkpointed layout
		fmt.Fprintf(out, "spinnerd: following %s from %s (fsync=%s)...\n", dc.follow, dc.dataDir, pol)
		fl, err := replica.StartFollower(replica.FollowerConfig{
			Leader: dc.follow, Dir: dc.dataDir, Store: cfg,
		})
		if err != nil {
			return err
		}
		defer fl.Close()
		st = fl.Store()
		rep = &api.Replica{
			Fl:           fl,
			Srv:          replica.NewServer(st, dc.dataDir, fl.Epoch),
			MaxStaleness: dc.maxStaleness,
		}
		fmt.Fprintf(out, "spinnerd: follower at epoch %d, applied seq %d\n", fl.Epoch(), fl.AppliedSeq())
	case dc.dataDir != "":
		pol, err := wal.ParsePolicy(dc.fsync)
		if err != nil {
			return err
		}
		cfg.Durability = newDurability(pol)
		if serve.HasState(dc.dataDir) {
			fmt.Fprintf(out, "spinnerd: recovering from %s (fsync=%s)...\n", dc.dataDir, pol)
			cfg.Shards = dc.shards // 0 keeps the checkpointed layout
			st, err = serve.Open(dc.dataDir, cfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "spinnerd: recovered %d vertices (replayed %d journal records)\n",
				len(st.Snapshot().Labels), st.Counters().ReplayedRecords.Load())
		} else {
			g, err := loadGraph()
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "spinnerd: partitioning %d vertices into %d partitions (%d store shards, durable in %s, fsync=%s)...\n",
				g.NumVertices(), dc.k, shards, dc.dataDir, pol)
			st, err = serve.BootstrapDurable(dc.dataDir, g, cfg)
			if err != nil {
				return err
			}
		}
	default:
		g, err := loadGraph()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "spinnerd: partitioning %d vertices into %d partitions (%d store shards)...\n",
			g.NumVertices(), dc.k, shards)
		st, err = serve.Bootstrap(g, cfg)
		if err != nil {
			return err
		}
	}
	defer st.Close()
	if rep == nil && dc.dataDir != "" {
		// A durable non-follower node is a replication leader: pin its
		// epoch (1 on first boot; a promoted-then-restarted node keeps its
		// sealed epoch) and serve the journal stream.
		ep, err := replica.LoadOrInitEpoch(dc.dataDir)
		if err != nil {
			return err
		}
		rep = &api.Replica{Srv: replica.NewServer(st, dc.dataDir, func() uint64 { return ep.Epoch })}
	}
	snap := st.Snapshot()
	fmt.Fprintf(out, "spinnerd: serving (cut ratio %.4f)\n", snap.CutRatio)

	if dc.demo > 0 {
		return runDemo(st, dc.demo, dc.seed, out)
	}
	if dc.pprofAddr != "" {
		// Profiling lives on its own listener with an explicit mux, so
		// the serving address never exposes /debug/pprof and the side
		// listener exposes nothing else.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Fprintf(out, "spinnerd: pprof on %s\n", dc.pprofAddr)
		go func() {
			if err := http.ListenAndServe(dc.pprofAddr, pm); err != nil {
				fmt.Fprintln(os.Stderr, "spinnerd: pprof listener:", err)
			}
		}()
	}
	fmt.Fprintf(out, "spinnerd: listening on %s\n", dc.addr)
	srv := &http.Server{Addr: dc.addr, Handler: api.NewServer(st, rep).Mux()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		// Graceful shutdown: drain the listener, then Close the store —
		// on a durable store that writes the final checkpoint, so the
		// next start recovers without replaying.
		fmt.Fprintln(out, "spinnerd: signal received; draining and checkpointing...")
		sdCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sdCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return st.Close()
	}
}

// runDemo drives synthetic churn + lookups against the store and prints
// the counters — the no-network smoke mode.
func runDemo(st *serve.Store, d time.Duration, seed uint64, out io.Writer) error {
	n := len(st.Snapshot().Labels)
	src := rng.New(seed ^ 0xdeadbeef)
	var lookups atomic.Int64
	stop := make(chan struct{})
	lookupDone := make(chan struct{})
	go func() {
		defer close(lookupDone)
		v := graph.VertexID(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, ok := st.Lookup(v); ok {
				lookups.Add(1)
			}
			v = (v + 13) % graph.VertexID(len(st.Snapshot().Labels))
		}
	}()
	deadline := time.Now().Add(d)
	batch := 0
	for time.Now().Before(deadline) {
		mut := &graph.Mutation{}
		for i := 0; i < 50; i++ {
			u := graph.VertexID(src.Intn(n))
			v := graph.VertexID(src.Intn(n))
			if u != v {
				mut.NewEdges = append(mut.NewEdges, graph.WeightedEdgeRecord{U: u, V: v, Weight: 2})
			}
		}
		if err := st.Submit(mut); err != nil {
			return err
		}
		batch++
	}
	close(stop)
	<-lookupDone
	if err := st.Quiesce(); err != nil {
		fmt.Fprintf(out, "spinnerd: batch error during demo: %v\n", err)
	}
	fmt.Fprintf(out, "spinnerd demo: %d lookups alongside %d batches\n", lookups.Load(), batch)
	fmt.Fprintf(out, "spinnerd demo: %v\n", st.Counters().Snapshot())
	fmt.Fprintf(out, "spinnerd demo: final %s\n", describe(st.Snapshot()))
	return nil
}

func describe(s *serve.Snapshot) string {
	return fmt.Sprintf("snapshot v%d: %d vertices, k=%d, cut=%.4f, epoch=%d",
		s.Version, len(s.Labels), s.K, s.CutRatio, s.Epoch)
}

// parseWeights parses the -quota-weights "tenant=weight,..." CSV.
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	weights := make(map[string]int)
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		w, err := strconv.Atoi(val)
		if !ok || name == "" || err != nil || w < 1 {
			return nil, fmt.Errorf("bad -quota-weights entry %q, want tenant=weight with weight >= 1", pair)
		}
		weights[name] = w
	}
	return weights, nil
}
