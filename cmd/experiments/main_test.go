package main

import (
	"testing"

	"repro/internal/experiments"
)

func TestRunOneSmoke(t *testing.T) {
	cfg := experiments.Config{Scale: 1500, Seed: 1, Workers: 2}
	for _, id := range []string{"table3", "fig4"} {
		if err := runOne(id, cfg, 8, 1); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
}

func TestRunOneUnknown(t *testing.T) {
	if err := runOne("nope", experiments.Config{Scale: 100}, 4, 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
