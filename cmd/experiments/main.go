// Command experiments regenerates the tables and figures of the Spinner
// paper's evaluation (§V) on synthetic dataset analogues.
//
// Usage:
//
//	experiments -exp all            # everything (several minutes at default scale)
//	experiments -exp table1         # one experiment
//	experiments -exp fig7 -scale 50000 -seed 3
//
// Experiments: table1, table3, table4, fig3a, fig3b (alias of fig3), fig4,
// fig5, fig6a, fig6b, fig6c, fig7, fig8, fig9, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (table1|table3|table4|fig3a|fig3b|fig4|fig5|fig6a|fig6b|fig6c|fig7|fig8|fig9|all)")
		scale   = flag.Int("scale", 20000, "vertex scale for dataset analogues")
		seed    = flag.Uint64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "Pregel workers (0 = GOMAXPROCS)")
		maxK    = flag.Int("maxk", 128, "largest k for the fig3 sweep")
		runs    = flag.Int("runs", 3, "repetitions for fig5")
	)
	flag.Parse()

	cfg := experiments.Config{Scale: *scale, Seed: *seed, Workers: *workers, Out: os.Stdout}
	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{"table1", "table3", "table4", "fig3a", "fig4", "fig5", "fig6a", "fig6b", "fig6c", "fig7", "fig8", "fig9"}
	}
	for _, id := range ids {
		if err := runOne(id, cfg, *maxK, *runs); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func runOne(id string, cfg experiments.Config, maxK, runs int) error {
	switch id {
	case "table1":
		_, err := experiments.Table1(cfg)
		return err
	case "table3":
		_, err := experiments.Table3(cfg)
		return err
	case "table4":
		_, err := experiments.Table4(cfg)
		return err
	case "fig3a", "fig3b", "fig3":
		_, err := experiments.Fig3(cfg, maxK)
		return err
	case "fig4":
		_, err := experiments.Fig4(cfg)
		return err
	case "fig5":
		_, err := experiments.Fig5(cfg, runs)
		return err
	case "fig6a":
		_, err := experiments.Fig6a(cfg, nil)
		return err
	case "fig6b":
		_, err := experiments.Fig6b(cfg, nil)
		return err
	case "fig6c":
		_, err := experiments.Fig6c(cfg, nil)
		return err
	case "fig7":
		_, err := experiments.Fig7(cfg, nil)
		return err
	case "fig8":
		_, err := experiments.Fig8(cfg, nil)
		return err
	case "fig9":
		_, err := experiments.Fig9(cfg)
		return err
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
}
