// Command spinnerctl is the CLI companion to spinnerd, built on the
// typed /v1 client (internal/api/client). Usage:
//
//	spinnerctl [-addr URL] [-tenant T] <command> [args]
//
// Commands:
//
//	health              print the node's health status
//	lookup <v>          resolve one vertex's partition
//	labels              dump the full vertex→partition map ("v label" lines)
//	feed-labels         build the same map purely from the /v1/watch change
//	                    feed (resyncing via /v1/lookup when compacted), then
//	                    print it — the consumer-side convergence check
//	watch               tail the change feed, one line per delta
//	  -from N             resume after delta sequence N (default 0)
//	  -count N            exit after N deltas (default 0 = forever)
//	  -reconnect          survive connection drops: re-dial with jittered
//	                      backoff from the last applied sequence, resync
//	                      via /v1/lookup when the cursor is compacted
//	mutate              submit the line protocol from stdin ("+ u v [w]",
//	                    "- u v", "v n")
//	resize <k>          elastic-resize to k partitions
//	stats               print the full stats snapshot as JSON
//	  -watch              refresh continuously instead of printing once
//	  -interval D         refresh period with -watch (default 1s)
//	metrics             fetch /v1/metrics and pretty-print the spinner_*
//	                    families: counters and gauges with their values,
//	                    histograms with count/p50/p90/p99 per label set
//	  -raw                dump the raw Prometheus exposition instead
//	promote             fail a follower over to leader
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/api/client"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "spinnerd base URL")
	tenant := flag.String("tenant", "", "tenant name sent as X-Tenant on mutates")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cli := client.New(*addr)
	cli.Tenant = *tenant
	if err := dispatch(ctx, cli, flag.Args(), os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spinnerctl:", err)
		os.Exit(1)
	}
}

func dispatch(ctx context.Context, cli *client.Client, args []string, out io.Writer) error {
	if len(args) == 0 {
		return errors.New("usage: spinnerctl [-addr URL] <health|lookup|labels|feed-labels|watch|mutate|resize|stats|metrics|promote>")
	}
	switch cmd, rest := args[0], args[1:]; cmd {
	case "health":
		h, err := cli.Health(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, h.Status)
		return nil
	case "lookup":
		if len(rest) != 1 {
			return errors.New("usage: spinnerctl lookup <vertex>")
		}
		v, err := strconv.ParseInt(rest[0], 10, 64)
		if err != nil {
			return fmt.Errorf("bad vertex %q", rest[0])
		}
		l, err := cli.Lookup(ctx, v)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%d %d\n", l.Vertex, l.Partition)
		return nil
	case "labels":
		all, err := cli.LookupAll(ctx)
		if err != nil {
			return err
		}
		printLabels(out, all.Labels)
		return nil
	case "feed-labels":
		labels, err := feedLabels(ctx, cli)
		if err != nil {
			return err
		}
		printLabels(out, labels)
		return nil
	case "watch":
		fs := flag.NewFlagSet("watch", flag.ContinueOnError)
		from := fs.Uint64("from", 0, "resume after this delta sequence")
		count := fs.Int("count", 0, "exit after this many deltas (0 = forever)")
		reconnect := fs.Bool("reconnect", false, "auto-reconnect with jittered backoff, resuming from the last applied sequence (resyncing via /v1/lookup when compacted)")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if *reconnect {
			return watchReconnect(ctx, cli, *from, *count, out)
		}
		return watch(ctx, cli, *from, *count, out)
	case "mutate":
		ops, err := io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
		m, err := cli.Mutate(ctx, string(ops))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "queued: %d adds, %d removes, %d vertices\n", m.Adds, m.Removes, m.Vertices)
		return nil
	case "resize":
		if len(rest) != 1 {
			return errors.New("usage: spinnerctl resize <k>")
		}
		k, err := strconv.Atoi(rest[0])
		if err != nil {
			return fmt.Errorf("bad k %q", rest[0])
		}
		r, err := cli.Resize(ctx, k)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "queued: resize to k=%d\n", r.K)
		return nil
	case "stats":
		fs := flag.NewFlagSet("stats", flag.ContinueOnError)
		watch := fs.Bool("watch", false, "refresh continuously until interrupted")
		interval := fs.Duration("interval", time.Second, "refresh period with -watch")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		return stats(ctx, cli, *watch, *interval, out)
	case "metrics":
		fs := flag.NewFlagSet("metrics", flag.ContinueOnError)
		raw := fs.Bool("raw", false, "dump the raw Prometheus exposition")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		return printMetrics(ctx, cli, *raw, out)
	case "promote":
		p, err := cli.Promote(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "promoted: epoch %d, sealed seq %d\n", p.Epoch, p.SealedSeq)
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// stats prints one stats snapshot, or with watch set keeps reprinting
// every interval until the context is cancelled (Ctrl-C exits cleanly).
func stats(ctx context.Context, cli *client.Client, watch bool, interval time.Duration, out io.Writer) error {
	if interval <= 0 {
		interval = time.Second
	}
	for {
		st, err := cli.Stats(ctx)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			return err
		}
		if !watch {
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(interval):
		}
	}
}

// printMetrics renders the /v1/metrics exposition for humans: one line
// per counter/gauge sample, and per histogram label set the observation
// count with interpolated p50/p90/p99 from the cumulative buckets.
func printMetrics(ctx context.Context, cli *client.Client, raw bool, out io.Writer) error {
	text, err := cli.MetricsText(ctx)
	if err != nil {
		return err
	}
	if raw {
		_, err := io.WriteString(out, text)
		return err
	}
	fams, err := client.ParseProm(text)
	if err != nil {
		return err
	}
	for _, f := range fams {
		if !strings.HasPrefix(f.Name, "spinner_") {
			continue
		}
		fmt.Fprintf(out, "%s (%s)\n", f.Name, f.Type)
		if f.Type == "histogram" {
			for _, labels := range histLabelSets(f) {
				count := histCount(f, labels)
				p50, _ := client.HistQuantile(f, labels, 0.50)
				p90, _ := client.HistQuantile(f, labels, 0.90)
				p99, _ := client.HistQuantile(f, labels, 0.99)
				fmt.Fprintf(out, "  %scount=%.0f p50=%.6g p90=%.6g p99=%.6g\n",
					formatLabels(labels), count, p50, p90, p99)
			}
			continue
		}
		for _, s := range f.Samples {
			fmt.Fprintf(out, "  %s%g\n", formatLabels(s.Labels), s.Value)
		}
	}
	return nil
}

// histLabelSets extracts the distinct label sets (minus "le") of a
// histogram family's series, in first-seen order.
func histLabelSets(f *client.Family) []map[string]string {
	var sets []map[string]string
	seen := map[string]bool{}
	for _, s := range f.Samples {
		if s.Name != f.Name+"_count" {
			continue
		}
		key := formatLabels(s.Labels)
		if seen[key] {
			continue
		}
		seen[key] = true
		sets = append(sets, s.Labels)
	}
	return sets
}

func histCount(f *client.Family, labels map[string]string) float64 {
	for _, s := range f.Samples {
		if s.Name == f.Name+"_count" && formatLabels(s.Labels) == formatLabels(labels) {
			return s.Value
		}
	}
	return 0
}

// formatLabels renders a label set as a stable "k=v,... " prefix (empty
// for unlabeled series).
func formatLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + labels[k]
	}
	return "{" + strings.Join(parts, ",") + "} "
}

func printLabels(out io.Writer, labels []int32) {
	for v, l := range labels {
		fmt.Fprintf(out, "%d %d\n", v, l)
	}
}

// feedLabels reconstructs the label map purely from the change feed:
// watch from sequence 0, apply every delta, and stop at the first
// caught-up heartbeat (cursor == Next-1). A compacted cursor falls back
// to the full /v1/lookup resync and resumes watching from the returned
// cursor — the documented 410 recovery path.
func feedLabels(ctx context.Context, cli *client.Client) ([]int32, error) {
	var labels []int32
	cursor := uint64(0)
	for {
		w, err := cli.Watch(ctx, cursor)
		if errors.Is(err, client.ErrCompacted) {
			all, aerr := cli.LookupAll(ctx)
			if aerr != nil {
				return nil, aerr
			}
			labels = append(labels[:0], all.Labels...)
			cursor = all.FromSeq
			continue
		}
		if err != nil {
			return nil, err
		}
		caught := false
		for {
			ev, rerr := w.Recv()
			if rerr != nil {
				if errors.Is(rerr, io.EOF) || errors.Is(rerr, client.ErrCompacted) {
					// Stream ended — or the server said the cursor was
					// compacted mid-stream (typed end frame). Reconnect
					// from the cursor; a compacted one earns the 410
					// that routes through the resync branch above.
					break
				}
				w.Close()
				return nil, rerr
			}
			if ev.Delta != nil {
				labels, err = ev.Delta.Apply(labels)
				if err != nil {
					w.Close()
					return nil, err
				}
				cursor = ev.Delta.Seq
			} else if cursor+1 >= ev.Next {
				// Heartbeats carry the server's authoritative next
				// sequence: cursor == Next-1 means fully caught up.
				caught = true
				break
			}
		}
		w.Close()
		if caught {
			return labels, nil
		}
	}
}

// watchReconnect is watch behind an AutoWatcher: connection drops are
// re-dialed from the last applied sequence with jittered backoff, and a
// compacted cursor (410 or the mid-stream end frame) resyncs via
// /v1/lookup before re-arming — the tail survives server restarts.
func watchReconnect(ctx context.Context, cli *client.Client, from uint64, count int, out io.Writer) error {
	aw := cli.WatchReconnect(ctx, from)
	defer aw.Close()
	seen := 0
	for count == 0 || seen < count {
		ev, err := aw.Recv()
		if errors.Is(err, client.ErrCompacted) {
			all, aerr := cli.LookupAll(ctx)
			if aerr != nil {
				return aerr
			}
			fmt.Fprintf(out, "# compacted: resynced %d labels via /v1/lookup, resuming after seq %d\n",
				len(all.Labels), all.FromSeq)
			aw.SetCursor(all.FromSeq)
			continue
		}
		if err != nil {
			if errors.Is(err, context.Canceled) {
				return nil
			}
			return err
		}
		if ev.Delta == nil {
			continue
		}
		d := ev.Delta
		fmt.Fprintf(out, "seq=%d epoch=%d gen=%d k=%d n=%d runs=%d changed=%d cross=%d total=%d\n",
			d.Seq, d.Epoch, d.Gen, d.K, d.N, len(d.Runs), d.RunVertices(), d.Cross, d.Total)
		seen++
	}
	return nil
}

func watch(ctx context.Context, cli *client.Client, from uint64, count int, out io.Writer) error {
	w, err := cli.Watch(ctx, from)
	if err != nil {
		return err
	}
	defer w.Close()
	fmt.Fprintf(out, "# floor=%d next=%d\n", w.Floor(), w.Next())
	seen := 0
	for count == 0 || seen < count {
		ev, err := w.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, context.Canceled) {
				return nil
			}
			return err
		}
		if ev.Delta == nil {
			continue
		}
		d := ev.Delta
		fmt.Fprintf(out, "seq=%d epoch=%d gen=%d k=%d n=%d runs=%d changed=%d cross=%d total=%d\n",
			d.Seq, d.Epoch, d.Gen, d.K, d.N, len(d.Runs), d.RunVertices(), d.Cross, d.Total)
		seen++
	}
	return nil
}
