// Analytics acceleration: run PageRank, shortest paths and connected
// components on a Pregel engine whose workers are laid out by a Spinner
// partitioning vs. by hash placement — the §V-F / Fig. 9 / Table IV
// experiment as a library user would write it.
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	const workers = 8
	const k = 32
	g := gen.Load(gen.TwitterLike, 20000, 5)
	fmt.Printf("graph: %d vertices, %d edges; %d workers\n", g.NumVertices(), g.NumEdges(), workers)

	// Partition once with Spinner...
	opts := core.DefaultOptions(k)
	opts.Seed = 5
	p, err := core.NewPartitioner(opts)
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.Partition(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spinner partitioning: %s\n\n", res)

	// ...then run each app under both placements and price the runs with
	// the cluster cost model.
	model := cluster.Default()
	hashPl := apps.HashPlacement(workers)
	spinPl := apps.PlacementFromLabels(res.Labels, workers)

	type runner func(pl func(graph.VertexID) int) (*apps.Result, error)
	for _, app := range []struct {
		name string
		run  runner
	}{
		{"Shortest Paths (BFS)", func(pl func(graph.VertexID) int) (*apps.Result, error) {
			_, r, err := apps.SSSP(g, 0, apps.RunConfig{NumWorkers: workers, Placement: pl})
			return r, err
		}},
		{"PageRank (20 iter)", func(pl func(graph.VertexID) int) (*apps.Result, error) {
			_, r, err := apps.PageRank(g, 20, apps.RunConfig{NumWorkers: workers, Placement: pl})
			return r, err
		}},
		{"Connected Components", func(pl func(graph.VertexID) int) (*apps.Result, error) {
			_, r, err := apps.WCC(g, apps.RunConfig{NumWorkers: workers, Placement: pl})
			return r, err
		}},
	} {
		hr, err := app.run(hashPl)
		if err != nil {
			log.Fatal(err)
		}
		sr, err := app.run(spinPl)
		if err != nil {
			log.Fatal(err)
		}
		ht, st := model.Total(hr.Stats), model.Total(sr.Stats)
		fmt.Printf("%-22s hash: %-12v (remote msgs %9d)\n", app.name, ht, hr.RemoteMessages())
		fmt.Printf("%-22s spin: %-12v (remote msgs %9d)  → %.0f%% faster\n\n",
			"", st, sr.RemoteMessages(), 100*(1-float64(st)/float64(ht)))
	}

	// Table IV-style worker-balance view for PageRank.
	_, hr, err := apps.PageRank(g, 20, apps.RunConfig{NumWorkers: workers, Placement: hashPl})
	if err != nil {
		log.Fatal(err)
	}
	_, sr, err := apps.PageRank(g, 20, apps.RunConfig{NumWorkers: workers, Placement: spinPl})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("superstep worker times (mean / max / min, Table IV):")
	fmt.Printf("  random : %s\n", model.Summarize(hr.Stats))
	fmt.Printf("  spinner: %s\n", model.Summarize(sr.Stats))
}
