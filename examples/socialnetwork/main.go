// Social network maintenance: keep a partitioning fresh while the graph
// grows, the scenario of §III-D / Fig. 7 of the paper.
//
// A Tuenti-like social graph receives batches of new friendships (70%
// triadic closure). After each batch we adapt the partitioning
// incrementally and compare against what a from-scratch repartitioning
// would have cost.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
)

func main() {
	const k = 32
	g := gen.Load(gen.TuentiLike, 20000, 7)
	w := graph.Convert(g)
	fmt.Printf("social graph: %d members, %d friendships\n", w.NumVertices(), w.NumEdges())

	p, err := core.NewPartitioner(core.DefaultOptions(k))
	if err != nil {
		log.Fatal(err)
	}
	base, err := p.PartitionWeighted(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial partitioning: φ=%.3f ρ=%.3f (%d iterations)\n\n",
		metrics.Phi(w, base.Labels), metrics.Rho(w, base.Labels, k), base.Iterations)

	labels := base.Labels
	for day := 1; day <= 3; day++ {
		// One day of growth: 1% new friendships.
		mut := gen.GrowthBatch(w, 0.01, uint64(100+day))
		if _, err := mut.Apply(w); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("day %d: +%d friendships\n", day, len(mut.NewEdges))

		adapted, err := p.Adapt(w, labels, mut.TouchedVertices())
		if err != nil {
			log.Fatal(err)
		}
		scratch, err := p.PartitionWeighted(w)
		if err != nil {
			log.Fatal(err)
		}

		moved := metrics.Difference(labels, adapted.Labels)
		movedScratch := metrics.Difference(labels, scratch.Labels)
		fmt.Printf("  incremental: φ=%.3f ρ=%.3f  %2d iterations, %7d messages, %4.1f%% of members moved\n",
			metrics.Phi(w, adapted.Labels), metrics.Rho(w, adapted.Labels, k),
			adapted.Iterations, adapted.Messages, 100*moved)
		fmt.Printf("  from scratch: φ=%.3f ρ=%.3f  %2d iterations, %7d messages, %4.1f%% of members moved\n",
			metrics.Phi(w, scratch.Labels), metrics.Rho(w, scratch.Labels, k),
			scratch.Iterations, scratch.Messages, 100*movedScratch)
		fmt.Printf("  savings: %.0f%% of messages, stability ×%.0f\n\n",
			100*(1-float64(adapted.Messages)/float64(scratch.Messages)), movedScratch/moved)

		labels = adapted.Labels
	}
}
