// Live serving: maintain a partitioning under concurrent traffic, the
// production scenario behind §III-D/E of the paper.
//
// A social graph is partitioned once, then served from a 4-way sharded
// durable store: reader goroutines resolve vertex→partition lookups
// against lock-free per-shard snapshots while the graph keeps growing
// through mutation batches applied shard-parallel with incremental cut
// tracking — every batch journaled to a write-ahead log before it
// applies. When growth degrades the cut ratio past the threshold, the
// store restabilizes in the background — lookups never stop — and an
// elastic scale-out to k+2 partitions migrates only the paper's n/(k+n)
// fraction of vertices instead of reshuffling everything. At the end the
// store is closed and reopened from disk: the maintained partitioning
// survives process death instead of being recomputed from scratch.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/serve"
)

func main() {
	const k = 8
	g := gen.Load(gen.LiveJournalLike, 10000, 21)
	opts := core.DefaultOptions(k)
	opts.Seed = 21
	opts.MaxIterations = 40

	dir, err := os.MkdirTemp("", "spinner-serving-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cfg := serve.Config{Options: opts, DegradeFactor: 1.05, Shards: 4}
	fmt.Printf("bootstrapping: %d vertices into %d partitions (4 store shards, journal+checkpoints in %s)...\n",
		g.NumVertices(), k, dir)
	st, err := serve.BootstrapDurable(dir, g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	fmt.Printf("serving: %s\n\n", line(st.Snapshot()))

	// Readers: sustained lookups against whatever snapshot is current.
	var stop atomic.Bool
	var served atomic.Int64
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			v := graph.VertexID(r)
			for !stop.Load() {
				if _, ok := st.Lookup(v); ok {
					served.Add(1)
				}
				v = (v + 37) % graph.VertexID(len(st.Snapshot().Labels))
			}
		}(r)
	}

	// Writer: the graph grows ~1% per batch; triadic-closure-biased edges
	// erode locality until the 5% degradation trigger fires.
	shadow := graph.Convert(g)
	start := time.Now()
	for batch := 0; batch < 12; batch++ {
		mut := gen.GrowthBatch(shadow, 0.01, uint64(300+batch))
		if _, err := mut.Apply(shadow); err != nil {
			log.Fatal(err)
		}
		if err := st.Submit(&graph.Mutation{NewEdges: mut.NewEdges}); err != nil {
			log.Fatal(err)
		}
	}
	if err := st.Quiesce(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after 12 growth batches (%.0fms): %s\n", time.Since(start).Seconds()*1000, line(st.Snapshot()))

	// Elastic scale-out: k -> k+2 machines, incremental migration only.
	before := st.Snapshot().Labels
	fmt.Printf("\nscaling out to %d partitions...\n", k+2)
	if err := st.Resize(k + 2); err != nil {
		log.Fatal(err)
	}
	if err := st.Quiesce(); err != nil {
		log.Fatal(err)
	}
	after := st.Snapshot()
	moved := 0
	for v := range before {
		if before[v] != after.Labels[v] {
			moved++
		}
	}
	fmt.Printf("after elastic repair: %s\n", line(after))
	fmt.Printf("  moved %.1f%% of vertices (from-scratch would reshuffle nearly all)\n",
		100*float64(moved)/float64(len(before)))

	stop.Store(true)
	readers.Wait()
	fmt.Printf("\nserved %d lookups throughout; counters:\n  %v\n", served.Load(), st.Counters().Snapshot())

	// Durability payoff: close (final checkpoint) and recover from disk.
	// The maintained partitioning — including the elastic resize and every
	// journaled growth batch — comes back without re-partitioning.
	want := st.Snapshot()
	if err := st.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreopening from %s...\n", dir)
	rec, err := serve.Open(dir, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer rec.Close()
	got := rec.Snapshot()
	same := got.K == want.K && len(got.Labels) == len(want.Labels)
	for v := 0; same && v < len(want.Labels); v++ {
		same = got.Labels[v] == want.Labels[v]
	}
	fmt.Printf("recovered: %s\n  labels bit-identical to pre-shutdown state: %v (replayed %d journal records)\n",
		line(got), same, rec.Counters().ReplayedRecords.Load())
}

func line(s *serve.Snapshot) string {
	return fmt.Sprintf("snapshot v%d: %d vertices, k=%d, cut=%.4f, restab epoch %d",
		s.Version, len(s.Labels), s.K, s.CutRatio, s.Epoch)
}
