// Live serving over the versioned HTTP API: maintain a partitioning
// under concurrent traffic, the production scenario behind §III-D/E of
// the paper — this time through the wire protocol a real deployment
// would use.
//
// A social graph is partitioned once and served from a 4-way sharded
// durable store behind the /v1 HTTP API (internal/api) on a loopback
// listener. Everything below talks to it through the typed client
// (internal/api/client): reader goroutines resolve vertex→partition
// lookups with GET /v1/lookup, a change-feed consumer tails GET
// /v1/watch and maintains its own label map purely from delta frames,
// and the writer submits growth batches with POST /v1/mutate. When the
// cut degrades, the store restabilizes in the background; an elastic
// POST /v1/resize to k+2 migrates only the paper's n/(k+n) fraction.
// At the end the feed consumer's reconstructed labels are checked
// against GET /v1/lookup truth, and the store is closed and reopened
// from disk: the maintained partitioning — and the change feed's
// incremental checkpoints — survive process death.
//
//	go run ./examples/serving
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/api/client"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/serve"
)

func main() {
	const k = 8
	g := gen.Load(gen.LiveJournalLike, 10000, 21)
	opts := core.DefaultOptions(k)
	opts.Seed = 21
	opts.MaxIterations = 40

	dir, err := os.MkdirTemp("", "spinner-serving-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cfg := serve.Config{Options: opts, DegradeFactor: 1.05, Shards: 4}
	fmt.Printf("bootstrapping: %d vertices into %d partitions (4 store shards, journal+checkpoints in %s)...\n",
		g.NumVertices(), k, dir)
	st, err := serve.BootstrapDurable(dir, g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	// Serve the /v1 API on a loopback port and talk to it like a client.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	as := api.NewServer(st, nil)
	as.Heartbeat = 50 * time.Millisecond
	httpSrv := &http.Server{Handler: as.Mux()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	cli := client.New("http://" + ln.Addr().String())
	fmt.Printf("serving /v1 on %s: %s\n\n", ln.Addr(), line(st.Snapshot()))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Readers: sustained GET /v1/lookup against whatever snapshot is live.
	var stop atomic.Bool
	var served atomic.Int64
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			v := int64(r)
			for !stop.Load() {
				if _, err := cli.Lookup(ctx, v); err == nil {
					served.Add(1)
				}
				v = (v + 37) % int64(len(st.Snapshot().Labels))
			}
		}(r)
	}

	// Change-feed consumer: tail GET /v1/watch from sequence 0 and
	// maintain a label map purely from delta frames — the router/cache
	// pattern the feed exists for. On a compacted cursor it resyncs via
	// the GET /v1/lookup dump, the documented 410 recovery.
	feed := &feedState{}
	var consumer sync.WaitGroup
	consumer.Add(1)
	go func() {
		defer consumer.Done()
		feed.follow(ctx, cli)
	}()

	// Writer: the graph grows ~1% per batch through POST /v1/mutate;
	// triadic-closure-biased edges erode locality until the 5%
	// degradation trigger fires.
	shadow := graph.Convert(g)
	start := time.Now()
	for batch := 0; batch < 12; batch++ {
		mut := gen.GrowthBatch(shadow, 0.01, uint64(300+batch))
		if _, err := mut.Apply(shadow); err != nil {
			log.Fatal(err)
		}
		if _, err := cli.Mutate(ctx, mutationText(mut.NewEdges)); err != nil {
			log.Fatal(err)
		}
	}
	if err := st.Quiesce(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after 12 growth batches over POST /v1/mutate (%.0fms): %s\n",
		time.Since(start).Seconds()*1000, line(st.Snapshot()))

	// Elastic scale-out: k -> k+2 machines, incremental migration only.
	before := st.Snapshot().Labels
	fmt.Printf("\nscaling out to %d partitions (POST /v1/resize)...\n", k+2)
	if _, err := cli.Resize(ctx, k+2); err != nil {
		log.Fatal(err)
	}
	if err := st.Quiesce(); err != nil {
		log.Fatal(err)
	}
	after := st.Snapshot()
	moved := 0
	for v := range before {
		if before[v] != after.Labels[v] {
			moved++
		}
	}
	fmt.Printf("after elastic repair: %s\n", line(after))
	fmt.Printf("  moved %.1f%% of vertices (from-scratch would reshuffle nearly all)\n",
		100*float64(moved)/float64(len(before)))

	stop.Store(true)
	readers.Wait()

	// The consumer must converge on exactly the labels lookup serves.
	deadline := time.Now().Add(10 * time.Second)
	_, next := st.DeltaBounds()
	for feed.cursor() < next-1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	truth, err := cli.LookupAll(ctx)
	if err != nil {
		log.Fatal(err)
	}
	feedLabels := feed.labelsCopy()
	same := len(feedLabels) == len(truth.Labels)
	for v := 0; same && v < len(truth.Labels); v++ {
		same = feedLabels[v] == truth.Labels[v]
	}
	stats, err := cli.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserved %d lookups throughout; /v1/watch consumer applied %d deltas (retention [%d,%d))\n",
		served.Load(), feed.applied.Load(), stats.DeltaFloor, stats.DeltaNext)
	fmt.Printf("  feed-reconstructed labels identical to /v1/lookup truth: %v\n", same)
	fmt.Printf("  counters: %v\n", st.Counters().Snapshot())
	cancel()
	consumer.Wait()

	// Durability payoff: close (final checkpoint) and recover from disk.
	// The maintained partitioning — including the elastic resize and every
	// journaled growth batch — comes back without re-partitioning.
	want := st.Snapshot()
	if err := st.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreopening from %s...\n", dir)
	rec, err := serve.Open(dir, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer rec.Close()
	got := rec.Snapshot()
	same = got.K == want.K && len(got.Labels) == len(want.Labels)
	for v := 0; same && v < len(want.Labels); v++ {
		same = got.Labels[v] == want.Labels[v]
	}
	fmt.Printf("recovered: %s\n  labels bit-identical to pre-shutdown state: %v (replayed %d journal records)\n",
		line(got), same, rec.Counters().ReplayedRecords.Load())
}

// feedState is the watch consumer's view: a label map reconstructed
// purely from delta frames, plus the cursor of the last applied delta.
type feedState struct {
	mu      sync.Mutex
	labels  []int32
	seq     uint64
	applied atomic.Int64
}

func (f *feedState) cursor() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

func (f *feedState) labelsCopy() []int32 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int32(nil), f.labels...)
}

// follow tails the change feed until ctx cancels, reconnecting on
// stream end and full-resyncing on a compacted cursor.
func (f *feedState) follow(ctx context.Context, cli *client.Client) {
	for ctx.Err() == nil {
		w, err := cli.Watch(ctx, f.cursor())
		if errors.Is(err, client.ErrCompacted) {
			all, aerr := cli.LookupAll(ctx)
			if aerr != nil {
				return
			}
			f.mu.Lock()
			f.labels = append(f.labels[:0], all.Labels...)
			f.seq = all.FromSeq
			f.mu.Unlock()
			continue
		}
		if err != nil {
			return
		}
		for {
			ev, rerr := w.Recv()
			if rerr != nil {
				w.Close()
				if errors.Is(rerr, io.EOF) {
					break // reconnect
				}
				return
			}
			if ev.Delta == nil {
				continue
			}
			f.mu.Lock()
			f.labels, err = ev.Delta.Apply(f.labels)
			f.seq = ev.Delta.Seq
			f.mu.Unlock()
			if err != nil {
				return
			}
			f.applied.Add(1)
		}
	}
}

// mutationText renders added edges in the line protocol POST /v1/mutate
// speaks ("+ u v w").
func mutationText(edges []graph.WeightedEdgeRecord) string {
	var sb strings.Builder
	for _, e := range edges {
		fmt.Fprintf(&sb, "+ %d %d %d\n", e.U, e.V, e.Weight)
	}
	return sb.String()
}

func line(s *serve.Snapshot) string {
	return fmt.Sprintf("snapshot v%d: %d vertices, k=%d, cut=%.4f, restab epoch %d",
		s.Version, len(s.Labels), s.K, s.CutRatio, s.Epoch)
}
