// Elastic scale-out: adapt a partitioning when the cluster grows, the
// scenario of §III-E / Fig. 8 of the paper.
//
// A graph partitioned across 32 machines must spread onto 40 after a
// scale-out. Spinner relabels each vertex to a new partition with
// probability n/(k+n) (Eq. 11) and repairs locality incrementally, instead
// of reshuffling everything from scratch.
//
//	go run ./examples/elastic
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
)

func main() {
	const oldK, newK = 32, 40
	g := gen.Load(gen.FriendsterLike, 20000, 11)
	w := graph.Convert(g)
	fmt.Printf("graph: %d vertices, %d edges, partitioned across %d machines\n",
		w.NumVertices(), w.NumEdges(), oldK)

	p32, err := core.NewPartitioner(core.DefaultOptions(oldK))
	if err != nil {
		log.Fatal(err)
	}
	base, err := p32.PartitionWeighted(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before scale-out: φ=%.3f ρ=%.3f\n\n",
		metrics.Phi(w, base.Labels), metrics.Rho(w, base.Labels, oldK))

	fmt.Printf("scaling out to %d machines...\n", newK)
	p40, err := core.NewPartitioner(core.DefaultOptions(newK))
	if err != nil {
		log.Fatal(err)
	}
	elastic, err := p40.Resize(w, base.Labels, oldK)
	if err != nil {
		log.Fatal(err)
	}
	scratch, err := p40.PartitionWeighted(w)
	if err != nil {
		log.Fatal(err)
	}

	loads := metrics.Loads(w, elastic.Labels, newK)
	var newLoad, total int64
	for l, b := range loads {
		total += b
		if l >= oldK {
			newLoad += b
		}
	}
	fmt.Printf("  elastic:      φ=%.3f ρ=%.3f  %2d iterations  moved %4.1f%% of vertices\n",
		metrics.Phi(w, elastic.Labels), metrics.Rho(w, elastic.Labels, newK),
		elastic.Iterations, 100*metrics.Difference(base.Labels, elastic.Labels))
	fmt.Printf("  from scratch: φ=%.3f ρ=%.3f  %2d iterations  moved %4.1f%% of vertices\n",
		metrics.Phi(w, scratch.Labels), metrics.Rho(w, scratch.Labels, newK),
		scratch.Iterations, 100*metrics.Difference(base.Labels, scratch.Labels))
	fmt.Printf("  the %d new machines now hold %.1f%% of the load (ideal %.1f%%)\n",
		newK-oldK, 100*float64(newLoad)/float64(total), 100*float64(newK-oldK)/float64(newK))
}
