// Heterogeneous cluster: partition for machines of unequal size.
//
// The paper presents the homogeneous case (§III-B: every partition gets
// capacity C = c·|E|/k). This example uses the library's generalization
// C_l = c·T·f_l to lay a graph out over a cluster with two big machines
// and six small ones, then verifies the load lands proportionally without
// sacrificing locality.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
)

func main() {
	g := gen.Load(gen.LiveJournalLike, 20000, 13)
	w := graph.Convert(g)
	fmt.Printf("graph: %d vertices, %d edges\n", w.NumVertices(), w.NumEdges())

	// Cluster: machines 0-1 have 2× the memory of machines 2-7.
	fractions := []float64{2, 2, 1, 1, 1, 1, 1, 1}
	opts := core.DefaultOptions(len(fractions))
	opts.Seed = 13
	opts.CapacityFractions = fractions
	p, err := core.NewPartitioner(opts)
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.PartitionWeighted(w)
	if err != nil {
		log.Fatal(err)
	}

	loads := metrics.Loads(w, res.Labels, len(fractions))
	var total int64
	for _, b := range loads {
		total += b
	}
	norm := p.Options().CapacityFractions
	fmt.Println("\nmachine  size  load%  target%  utilization")
	for l, b := range loads {
		share := float64(b) / float64(total)
		fmt.Printf("   %d      %.0fx  %5.1f    %5.1f      %.2f\n",
			l, fractions[l], 100*share, 100*norm[l], share/norm[l])
	}
	fmt.Printf("\nφ=%.3f  weighted ρ=%.3f (target ≤ c=%.2f)\n",
		metrics.Phi(w, res.Labels),
		metrics.RhoWeighted(w, res.Labels, norm), opts.C)
}
