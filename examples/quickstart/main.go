// Quickstart: generate a small social-network-like graph, partition it with
// Spinner, and inspect the quality metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
)

func main() {
	// A directed graph with hub structure, like a follower network.
	g := gen.BarabasiAlbert(10000, 8, 42)
	fmt.Printf("graph: %d vertices, %d directed edges\n", g.NumVertices(), g.NumEdges())

	// Partition into 16 parts with the paper's default parameters
	// (c = 1.05, ε = 0.001, w = 5).
	p, err := core.NewPartitioner(core.DefaultOptions(16))
	if err != nil {
		log.Fatal(err)
	}
	// Partition converts the directed graph to its weighted undirected form
	// in-engine (NeighborPropagation/NeighborDiscovery supersteps) and then
	// runs the iterative label propagation.
	res, err := p.Partition(g)
	if err != nil {
		log.Fatal(err)
	}

	// Evaluate: φ is the fraction of edge weight kept local, ρ the maximum
	// normalized load (1.0 = perfectly balanced).
	w := graph.Convert(g)
	fmt.Printf("result: %s\n", res)
	fmt.Printf("locality φ = %.3f (hash partitioning would give ~%.3f)\n",
		metrics.Phi(w, res.Labels), 1.0/16)
	fmt.Printf("balance  ρ = %.3f (capacity bound c = 1.05)\n",
		metrics.Rho(w, res.Labels, 16))
	fmt.Printf("converged after %d iterations, %d supersteps, %d messages\n",
		res.Iterations, res.Supersteps, res.Messages)

	// The per-iteration history shows the hill climbing at work.
	fmt.Println("\niter    φ      ρ    migrations")
	for _, it := range res.History {
		if it.Iteration%5 == 1 || it.Iteration == len(res.History) {
			fmt.Printf("%4d  %.3f  %.3f  %d\n", it.Iteration, it.Phi, it.Rho, it.Migrations)
		}
	}
}
