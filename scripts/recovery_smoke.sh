#!/usr/bin/env bash
# recovery_smoke.sh — end-to-end crash-recovery smoke for the durable
# serving daemon (ISSUE 4 / CI job).
#
# Boots a durable spinnerd on a synthetic graph, drives mutation batches
# at it over HTTP, records the pre-crash partition of a sample of
# vertices, then kill -9s the process mid-churn. On top of the plain
# crash, the script simulates dying DURING an in-flight background
# checkpoint (ISSUE 5): the newest checkpoint file is removed — install
# is atomic, so an interrupted checkpoint simply never appears — and a
# torn temp file is left in the checkpoint directory. A second spinnerd
# over the same data dir must recover (previous checkpoint + LONGER
# journal tail replay, temp file ignored), answer /healthz, report zero
# cut drift from the post-recovery exact reconcile, and resolve every
# sampled vertex to a valid partition — identical to the pre-crash
# answer for the quiesced prefix.
#
# Usage: scripts/recovery_smoke.sh [port]
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${1:-18573}"
BASE="http://127.0.0.1:$PORT"
BIN=$(mktemp -d)/spinnerd
DIR=$(mktemp -d)
PID=""
cleanup() {
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
  rm -rf "$DIR" "$(dirname "$BIN")"
}
trap cleanup EXIT

echo "== build spinnerd"
go build -o "$BIN" ./cmd/spinnerd

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "spinnerd never became healthy" >&2
  return 1
}

stat_field() { # stat_field <jq-ish key> — crude JSON number extraction, no jq dependency
  curl -fsS "$BASE/stats" | tr ',{}' '\n\n\n' | grep -m1 "\"$1\":" | sed 's/.*: *//'
}

echo "== boot durable spinnerd (fsync=never, checkpoint-every=4, keep-checkpoints=2)"
# -degrade suppresses background restabilization: an unquiesced crash
# recovers to *a* valid state, and with relabeling events excluded that
# state's labels must match the pre-crash lookups exactly.
# -keep-checkpoints/-fsync-interval exercise the ISSUE-5 durability knobs.
"$BIN" -k 4 -synthetic 2000 -seed 11 -shards 2 -addr "127.0.0.1:$PORT" \
  -degrade 999999 -data-dir "$DIR" -fsync never -fsync-interval 25ms \
  -checkpoint-every 4 -keep-checkpoints 2 &
PID=$!
wait_healthy

echo "== churn: 24 mutation batches over HTTP"
for i in $(seq 1 24); do
  body=""
  for j in $(seq 1 20); do
    u=$(( (i * 131 + j * 17) % 2000 ))
    v=$(( (i * 37 + j * 113 + 1) % 2000 ))
    [ "$u" -eq "$v" ] && v=$(( (v + 1) % 2000 ))
    body+="+ $u $v 2"$'\n'
  done
  curl -fsS -X POST --data-binary "$body" "$BASE/mutate" >/dev/null
done

# Let the store drain far enough that a checkpoint exists, then record
# the pre-crash lookups we will compare after recovery.
sleep 1
APPLIED_BEFORE=$(stat_field applied)
SAMPLE="1 42 500 999 1500 1999"
declare -A BEFORE
for v in $SAMPLE; do
  BEFORE[$v]=$(curl -fsS "$BASE/lookup?v=$v" | tr ',{}' '\n\n\n' | grep -m1 '"partition":' | sed 's/.*: *//')
done
echo "   applied=$APPLIED_BEFORE before crash"

echo "== crash: kill -9 mid-churn"
curl -fsS -X POST --data-binary "+ 3 4 2" "$BASE/mutate" >/dev/null || true
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

echo "== simulate crash during an in-flight background checkpoint"
# The newest checkpoint never finished installing (atomic rename → it
# simply does not exist) and the writer died mid-write (leftover .tmp).
# Recovery must ignore the temp file, fall back to the previous retained
# checkpoint, and replay the longer journal tail to the same answers.
CKPTS=( "$DIR"/checkpoints/ckpt-*.ckpt )
[ "${#CKPTS[@]}" -ge 2 ] || { echo "FAIL: need >= 2 checkpoints to lose one, have ${#CKPTS[@]}" >&2; exit 1; }
NEWEST="${CKPTS[${#CKPTS[@]}-1]}"
echo "   dropping $NEWEST (of ${#CKPTS[@]} checkpoints)"
rm "$NEWEST"
printf 'torn checkpoint write' > "$DIR/checkpoints/ckpt-0123456789abcdef.tmp"

echo "== recover from $DIR"
"$BIN" -addr "127.0.0.1:$PORT" -degrade 999999 -data-dir "$DIR" -fsync never -fsync-interval 25ms \
  -checkpoint-every 4 -keep-checkpoints 2 &
PID=$!
wait_healthy

VERTICES=$(stat_field vertices)
DURABLE=$(stat_field durable)
DRIFT=$(stat_field CutDrift)
RECONCILES=$(stat_field CutReconciles)
APPLIED_AFTER=$(stat_field applied)
REPLAYED=$(stat_field ReplayedRecords)
CKPT_PENDING=$(stat_field CheckpointsPending)
echo "   vertices=$VERTICES durable=$DURABLE applied=$APPLIED_AFTER reconciles=$RECONCILES drift=$DRIFT replayed=$REPLAYED ckpt-pending=$CKPT_PENDING"
[ "$VERTICES" = "2000" ] || { echo "FAIL: vertex space not recovered" >&2; exit 1; }
[ "$DURABLE" = "true" ] || { echo "FAIL: recovered store not durable" >&2; exit 1; }
[ "$DRIFT" = "0" ] || { echo "FAIL: cut drift $DRIFT after recovery" >&2; exit 1; }
[ "$RECONCILES" -ge 1 ] || { echo "FAIL: post-recovery reconcile never ran" >&2; exit 1; }
[ "$APPLIED_AFTER" -ge "$APPLIED_BEFORE" ] || { echo "FAIL: applied went backwards ($APPLIED_BEFORE -> $APPLIED_AFTER)" >&2; exit 1; }
# The fallback checkpoint covers at least -checkpoint-every fewer applied
# batches than the one we deleted, so the replayed tail must be non-empty.
[ "$REPLAYED" -ge 1 ] || { echo "FAIL: fallback recovery replayed nothing" >&2; exit 1; }

echo "== lookup consistency on $SAMPLE"
for v in $SAMPLE; do
  part=$(curl -fsS "$BASE/lookup?v=$v" | tr ',{}' '\n\n\n' | grep -m1 '"partition":' | sed 's/.*: *//')
  if [ -z "$part" ] || [ "$part" -lt 0 ] || [ "$part" -ge 4 ]; then
    echo "FAIL: lookup($v) = '$part' out of [0,4)" >&2; exit 1
  fi
  if [ "$part" != "${BEFORE[$v]}" ]; then
    echo "FAIL: lookup($v) = $part, pre-crash ${BEFORE[$v]}" >&2; exit 1
  fi
done

kill "$PID" 2>/dev/null && wait "$PID" 2>/dev/null || true
PID=""
echo "recovery smoke: OK"
