#!/usr/bin/env bash
# bench.sh — perf gate for the Spinner reproduction.
#
# Runs go vet, the tier-1 test suite, the race-detector pass over the
# concurrency-bearing packages (pregel + serve), and one microbenchmark
# (-benchmem, -count=N), then appends a labeled JSON record of the
# benchmark runs to the output file. Sub-benchmarks (BenchmarkX/case=y) are
# recorded individually under "name". Each PR that touches a hot path
# records its before/after pair here so the perf trajectory is auditable.
#
# Quick mode (-q) is the CI benchmark smoke: it skips the verify steps and
# the JSON write and runs the benchmark once (-benchtime=1x -count=1), so
# benchmark compile/run breakage fails fast without full timing runs.
#
# Defaults reproduce the PR-1 gate (BenchmarkSpinnerIteration in the root
# package into BENCH_pr1.json); the serving-layer gates are
#
#   scripts/bench.sh -b BenchmarkServeLookupUnderChurn -p ./internal/serve -o BENCH_pr2.json
#   scripts/bench.sh -b BenchmarkServeMutateThroughput -p ./internal/serve -o BENCH_pr3.json
#   scripts/bench.sh -b BenchmarkServeMutateDurable    -p ./internal/serve -o BENCH_pr5.json
#
# Usage: scripts/bench.sh [-l label] [-o outfile] [-c count] [-b benchmark] [-p package] [-q]
set -euo pipefail
cd "$(dirname "$0")/.."

LABEL="current"
OUT="BENCH_pr1.json"
COUNT=5
BENCH="BenchmarkSpinnerIteration"
PKG="."
QUICK=0
while getopts "l:o:c:b:p:q" opt; do
  case "$opt" in
    l) LABEL="$OPTARG" ;;
    o) OUT="$OPTARG" ;;
    c) COUNT="$OPTARG" ;;
    b) BENCH="$OPTARG" ;;
    p) PKG="$OPTARG" ;;
    q) QUICK=1 ;;
    *) echo "usage: $0 [-l label] [-o outfile] [-c count] [-b benchmark] [-p package] [-q]" >&2; exit 2 ;;
  esac
done

if [ "$QUICK" -eq 1 ]; then
  echo "== quick bench smoke: go test -bench=$BENCH -benchtime=1x -count=1 $PKG"
  go test -run='^$' -bench="^${BENCH}\$" -benchtime=1x -count=1 "$PKG"
  exit 0
fi

verify() {
  echo "== go vet ./..."
  go vet ./... || return 1
  echo "== tier-1: go build ./... && go test ./..."
  go build ./... || return 1
  go test ./... || return 1
  echo "== race: go test -race ./internal/pregel/ ./internal/serve/ ./internal/wal/ ./internal/replica/"
  go test -race ./internal/pregel/ ./internal/serve/ ./internal/wal/ ./internal/replica/ || return 1
}
if ! verify; then
  echo "bench.sh: verify step failed; not recording benchmarks" >&2
  exit 1
fi

echo "== go test -bench=$BENCH -benchmem -count=$COUNT $PKG"
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT
go test -run='^$' -bench="^${BENCH}\$" -benchmem -count="$COUNT" "$PKG" | tee "$RAW"

RECORD=$(awk -v label="$LABEL" -v bench="$BENCH" -v gover="$(go version | awk '{print $3}')" '
  BEGIN { n = 0 }
  # Match the benchmark and its sub-benchmarks: Bench, Bench-8, Bench/sub=x-8.
  $1 ~ "^" bench "(/[^ ]*)?(-[0-9]+)?$" {
    name[n] = $1; sub(/-[0-9]+$/, "", name[n])
    ns[n] = 0; bytes[n] = 0; allocs[n] = 0; extra[n] = ""
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op") ns[n] = $(i-1)
      else if ($i == "B/op") bytes[n] = $(i-1)
      else if ($i == "allocs/op") allocs[n] = $(i-1)
      else if ($i ~ /\/op$/) {
        # Custom b.ReportMetric units (encodes/op, p99-delivery-ns/op, ...)
        key = $i; gsub(/[^A-Za-z0-9]/, "_", key)
        extra[n] = extra[n] sprintf(", \"%s\": %s", key, $(i-1))
      }
    }
    n++
  }
  END {
    if (n == 0) { print "no benchmark output" > "/dev/stderr"; exit 1 }
    printf "{\"label\": \"%s\", \"go\": \"%s\", \"benchmark\": \"%s\", \"runs\": [", label, gover, bench
    sns = 0; sb = 0; sa = 0
    for (i = 0; i < n; i++) {
      if (i) printf ", "
      printf "{\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s%s}", name[i], ns[i], bytes[i], allocs[i], extra[i]
      sns += ns[i]; sb += bytes[i]; sa += allocs[i]
    }
    printf "], \"mean\": {\"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.0f}}", sns/n, sb/n, sa/n
  }' "$RAW")

if command -v python3 >/dev/null 2>&1; then
  python3 - "$OUT" "$RECORD" <<'EOF'
import json, sys
path, record = sys.argv[1], json.loads(sys.argv[2])
try:
    with open(path) as f:
        doc = json.load(f)
except (FileNotFoundError, json.JSONDecodeError):
    doc = {"benchmark": record["benchmark"], "records": []}
doc["records"] = [r for r in doc.get("records", []) if r.get("label") != record["label"]]
doc["records"].append(record)
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"recorded label {record['label']!r} into {path}")
EOF
else
  # Fallback without python3: write a single-record document.
  printf '{"benchmark": "%s", "records": [%s]}\n' "$BENCH" "$RECORD" > "$OUT"
  echo "recorded (fallback, single record) into $OUT"
fi
