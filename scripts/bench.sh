#!/usr/bin/env bash
# bench.sh — perf gate for the Spinner reproduction.
#
# Runs go vet, the tier-1 test suite, the race-detector pass over the
# concurrency-bearing packages (pregel + serve), and one microbenchmark
# (-benchmem, -count=N), then appends a labeled JSON record of the
# benchmark runs to the output file. Each PR that touches a hot path
# records its before/after pair here so the perf trajectory is auditable.
#
# Defaults reproduce the PR-1 gate (BenchmarkSpinnerIteration in the root
# package into BENCH_pr1.json); the serving-layer gate is
#
#   scripts/bench.sh -b BenchmarkServeLookupUnderChurn -p ./internal/serve -o BENCH_pr2.json
#
# Usage: scripts/bench.sh [-l label] [-o outfile] [-c count] [-b benchmark] [-p package]
set -euo pipefail
cd "$(dirname "$0")/.."

LABEL="current"
OUT="BENCH_pr1.json"
COUNT=5
BENCH="BenchmarkSpinnerIteration"
PKG="."
while getopts "l:o:c:b:p:" opt; do
  case "$opt" in
    l) LABEL="$OPTARG" ;;
    o) OUT="$OPTARG" ;;
    c) COUNT="$OPTARG" ;;
    b) BENCH="$OPTARG" ;;
    p) PKG="$OPTARG" ;;
    *) echo "usage: $0 [-l label] [-o outfile] [-c count] [-b benchmark] [-p package]" >&2; exit 2 ;;
  esac
done

echo "== go vet ./..."
go vet ./...
echo "== tier-1: go build ./... && go test ./..."
go build ./...
go test ./...
echo "== race: go test -race ./internal/pregel/ ./internal/serve/"
go test -race ./internal/pregel/ ./internal/serve/
echo "== go test -bench=$BENCH -benchmem -count=$COUNT $PKG"
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT
go test -run='^$' -bench="^${BENCH}\$" -benchmem -count="$COUNT" "$PKG" | tee "$RAW"

RECORD=$(awk -v label="$LABEL" -v bench="$BENCH" -v gover="$(go version | awk '{print $3}')" '
  BEGIN { n = 0 }
  $1 ~ "^" bench "(-[0-9]+)?$" {
    ns[n] = 0; bytes[n] = 0; allocs[n] = 0
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op") ns[n] = $(i-1)
      else if ($i == "B/op") bytes[n] = $(i-1)
      else if ($i == "allocs/op") allocs[n] = $(i-1)
    }
    n++
  }
  END {
    if (n == 0) { print "no benchmark output" > "/dev/stderr"; exit 1 }
    printf "{\"label\": \"%s\", \"go\": \"%s\", \"benchmark\": \"%s\", \"runs\": [", label, gover, bench
    sns = 0; sb = 0; sa = 0
    for (i = 0; i < n; i++) {
      if (i) printf ", "
      printf "{\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", ns[i], bytes[i], allocs[i]
      sns += ns[i]; sb += bytes[i]; sa += allocs[i]
    }
    printf "], \"mean\": {\"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.0f}}", sns/n, sb/n, sa/n
  }' "$RAW")

if command -v python3 >/dev/null 2>&1; then
  python3 - "$OUT" "$RECORD" <<'EOF'
import json, sys
path, record = sys.argv[1], json.loads(sys.argv[2])
try:
    with open(path) as f:
        doc = json.load(f)
except (FileNotFoundError, json.JSONDecodeError):
    doc = {"benchmark": record["benchmark"], "records": []}
doc["records"] = [r for r in doc.get("records", []) if r.get("label") != record["label"]]
doc["records"].append(record)
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"recorded label {record['label']!r} into {path}")
EOF
else
  # Fallback without python3: write a single-record document.
  printf '{"benchmark": "%s", "records": [%s]}\n' "$BENCH" "$RECORD" > "$OUT"
  echo "recorded (fallback, single record) into $OUT"
fi
