#!/usr/bin/env bash
# bench.sh — perf gate for the Spinner reproduction.
#
# Runs go vet, the tier-1 test suite, and the BenchmarkSpinnerIteration
# microbenchmark (-benchmem, -count=5), then appends a labeled JSON record
# of the benchmark runs to the output file (default BENCH_pr1.json). Each
# PR that touches the hot path records its before/after pair here so the
# perf trajectory is auditable.
#
# Usage: scripts/bench.sh [-l label] [-o outfile] [-c count]
set -euo pipefail
cd "$(dirname "$0")/.."

LABEL="current"
OUT="BENCH_pr1.json"
COUNT=5
while getopts "l:o:c:" opt; do
  case "$opt" in
    l) LABEL="$OPTARG" ;;
    o) OUT="$OPTARG" ;;
    c) COUNT="$OPTARG" ;;
    *) echo "usage: $0 [-l label] [-o outfile] [-c count]" >&2; exit 2 ;;
  esac
done

echo "== go vet ./..."
go vet ./...
echo "== tier-1: go build ./... && go test ./..."
go build ./...
go test ./...
echo "== go test -bench=BenchmarkSpinnerIteration -benchmem -count=$COUNT"
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT
go test -run='^$' -bench='^BenchmarkSpinnerIteration$' -benchmem -count="$COUNT" . | tee "$RAW"

RECORD=$(awk -v label="$LABEL" -v gover="$(go version | awk '{print $3}')" '
  BEGIN { n = 0 }
  /^BenchmarkSpinnerIteration/ {
    ns[n] = $3; bytes[n] = $5; allocs[n] = $7; n++
  }
  END {
    if (n == 0) { print "no benchmark output" > "/dev/stderr"; exit 1 }
    printf "{\"label\": \"%s\", \"go\": \"%s\", \"benchmark\": \"BenchmarkSpinnerIteration\", \"runs\": [", label, gover
    sns = 0; sb = 0; sa = 0
    for (i = 0; i < n; i++) {
      if (i) printf ", "
      printf "{\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", ns[i], bytes[i], allocs[i]
      sns += ns[i]; sb += bytes[i]; sa += allocs[i]
    }
    printf "], \"mean\": {\"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.0f}}", sns/n, sb/n, sa/n
  }' "$RAW")

if command -v python3 >/dev/null 2>&1; then
  python3 - "$OUT" "$RECORD" <<'EOF'
import json, sys
path, record = sys.argv[1], json.loads(sys.argv[2])
try:
    with open(path) as f:
        doc = json.load(f)
except (FileNotFoundError, json.JSONDecodeError):
    doc = {"benchmark": "BenchmarkSpinnerIteration", "records": []}
doc["records"] = [r for r in doc.get("records", []) if r.get("label") != record["label"]]
doc["records"].append(record)
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"recorded label {record['label']!r} into {path}")
EOF
else
  # Fallback without python3: write a single-record document.
  printf '{"benchmark": "BenchmarkSpinnerIteration", "records": [%s]}\n' "$RECORD" > "$OUT"
  echo "recorded (fallback, single record) into $OUT"
fi
