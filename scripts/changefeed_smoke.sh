#!/usr/bin/env bash
# changefeed_smoke.sh — end-to-end smoke for the /v1 change feed and the
# incremental checkpoint chain (ISSUE 8 / CI job).
#
# Boots a durable spinnerd with a small delta ring and a short
# incremental-checkpoint chain, tails /v1/watch with a live spinnerctl
# consumer while mutation batches churn the graph, then asserts the
# consumer-facing contract end to end:
#
#   1. a live `spinnerctl watch` stream delivers delta frames while the
#      writes are in flight;
#   2. `spinnerctl feed-labels` — which builds the label map purely from
#      the change feed, falling back to the /v1/lookup resync when its
#      cursor is compacted out of the small ring (the documented 410
#      path) — converges to exactly the `spinnerctl labels` lookup truth;
#   3. 50 concurrent watchers tailing the same cursor under churn all
#      receive identical deltas (the encode-once fan-out), the server
#      encoded each publication exactly once regardless of stream count
#      (DeltaEncodes == DeltasPublished), and the WatchStreams gauge
#      drains back to zero when they hang up;
#   4. the churn forced delta checkpoints (.dckp files) onto disk;
#   5. after a kill -9 mid-chain, a second spinnerd over the same data
#      dir recovers from the base checkpoint + delta chain, answers
#      /healthz, reports zero cut drift, and the feed-vs-lookup
#      convergence holds again on the recovered incarnation.
#
# Usage: scripts/changefeed_smoke.sh [port]
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${1:-18577}"
BASE="http://127.0.0.1:$PORT"
BINDIR=$(mktemp -d)
DIR=$(mktemp -d)
PID=""
cleanup() {
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
  rm -rf "$DIR" "$BINDIR"
}
trap cleanup EXIT

echo "== build spinnerd + spinnerctl"
go build -o "$BINDIR/spinnerd" ./cmd/spinnerd
go build -o "$BINDIR/spinnerctl" ./cmd/spinnerctl
CTL="$BINDIR/spinnerctl -addr $BASE"

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "spinnerd never became healthy" >&2
  return 1
}

stat_field() { # crude JSON number extraction, no jq dependency
  curl -fsS "$BASE/stats" | tr ',{}' '\n\n\n' | grep -m1 "\"$1\":" | sed 's/.*: *//'
}

churn() { # churn <rounds> <salt>
  for i in $(seq 1 "$1"); do
    body=""
    for j in $(seq 1 20); do
      u=$(( (i * 131 + j * 17 + $2) % 2000 ))
      v=$(( (i * 37 + j * 113 + $2 + 1) % 2000 ))
      [ "$u" -eq "$v" ] && v=$(( (v + 1) % 2000 ))
      body+="+ $u $v 2"$'\n'
    done
    printf '%s' "$body" | $CTL mutate >/dev/null
  done
}

echo "== boot durable spinnerd (delta-ring=32, max-delta-chain=4, checkpoint-every=4)"
# -degrade suppresses background restabilization so the feed-vs-lookup
# comparison races no relabeling; the tiny ring forces the 410 resync.
"$BINDIR/spinnerd" -k 4 -synthetic 2000 -seed 11 -shards 2 -addr "127.0.0.1:$PORT" \
  -degrade 999999 -data-dir "$DIR" -fsync never -checkpoint-every 4 \
  -max-delta-chain 4 -delta-ring 32 &
PID=$!
wait_healthy

echo "== live /v1/watch consumer under churn"
WATCHOUT="$BINDIR/watch.out"
$CTL watch -count 3 > "$WATCHOUT" &
WATCHPID=$!
churn 8 0
wait "$WATCHPID"
DELTALINES=$(grep -c '^seq=' "$WATCHOUT" || true)
[ "$DELTALINES" -ge 3 ] || { echo "FAIL: live watch printed $DELTALINES delta lines, want >= 3" >&2; cat "$WATCHOUT" >&2; exit 1; }
echo "   live consumer streamed $DELTALINES deltas"

echo "== churn past the 32-slot ring, then feed-labels must resync and converge"
churn 30 7
sleep 1  # drain
FLOOR=$(stat_field delta_floor)
NEXT=$(stat_field delta_next)
[ "$FLOOR" -gt 1 ] || { echo "FAIL: delta floor $FLOOR, ring never compacted" >&2; exit 1; }
$CTL feed-labels > "$BINDIR/feed.txt"
$CTL labels > "$BINDIR/lookup.txt"
if ! diff -q "$BINDIR/feed.txt" "$BINDIR/lookup.txt" >/dev/null; then
  echo "FAIL: feed-reconstructed labels differ from lookup truth" >&2
  diff "$BINDIR/feed.txt" "$BINDIR/lookup.txt" | head >&2
  exit 1
fi
LINES=$(wc -l < "$BINDIR/feed.txt")
echo "   feed == lookup over $LINES vertices (retention [$FLOOR,$NEXT))"

# WatchStreams is a gauge of open streams (0 once consumers hang up);
# the monotonic accepted-stream count is WatchStreamsTotal.
WATCHES=$(stat_field WatchStreamsTotal)
PUBLISHED=$(stat_field DeltasPublished)
[ "$WATCHES" -ge 2 ] || { echo "FAIL: WatchStreamsTotal=$WATCHES, want >= 2" >&2; exit 1; }
[ "$PUBLISHED" -ge 32 ] || { echo "FAIL: DeltasPublished=$PUBLISHED, want >= 32" >&2; exit 1; }

echo "== fan-out: 50 concurrent watchers under churn see identical deltas"
# All watchers tail from the same cursor while mutations churn the ring
# underneath (and compact it past older sequences). The encode-once
# fan-out hands every stream the same memoized frames, so after
# normalizing away the per-connection handshake line the outputs must be
# byte-identical — and the server must have encoded each delta exactly
# once no matter how many streams were attached.
FROM=$(( $(stat_field delta_next) - 1 ))
WDIR="$BINDIR/fanout"
mkdir -p "$WDIR"
WPIDS=()
for i in $(seq 1 50); do
  $CTL watch -from "$FROM" -count 5 > "$WDIR/w$i.out" &
  WPIDS+=("$!")
done
sleep 1 # let the streams connect before churn compacts FROM away
churn 10 41
for p in "${WPIDS[@]}"; do wait "$p"; done
for i in $(seq 1 50); do
  grep '^seq=' "$WDIR/w$i.out" > "$WDIR/w$i.seqs" || true
done
for i in $(seq 2 50); do
  diff -q "$WDIR/w1.seqs" "$WDIR/w$i.seqs" >/dev/null || {
    echo "FAIL: watcher $i deltas differ from watcher 1 (fan-out not identical)" >&2
    diff "$WDIR/w1.seqs" "$WDIR/w$i.seqs" | head >&2
    exit 1
  }
done
NSEQS=$(wc -l < "$WDIR/w1.seqs")
[ "$NSEQS" -eq 5 ] || { echo "FAIL: watchers saw $NSEQS deltas, want 5" >&2; cat "$WDIR/w1.out" >&2; exit 1; }
sleep 1 # drain the churn so the two counters are sampled at rest
PUB=$(stat_field DeltasPublished)
ENC=$(stat_field DeltaEncodes)
[ "$PUB" = "$ENC" ] || { echo "FAIL: DeltaEncodes=$ENC != DeltasPublished=$PUB (encode-once broken)" >&2; exit 1; }
for _ in $(seq 1 50); do
  [ "$(stat_field WatchStreams)" = "0" ] && break
  sleep 0.1
done
[ "$(stat_field WatchStreams)" = "0" ] || { echo "FAIL: WatchStreams gauge stuck at $(stat_field WatchStreams)" >&2; exit 1; }
# And the feed still reconstructs lookup truth after the fan-out churn.
$CTL feed-labels > "$BINDIR/feed-fanout.txt"
$CTL labels > "$BINDIR/lookup-fanout.txt"
diff -q "$BINDIR/feed-fanout.txt" "$BINDIR/lookup-fanout.txt" >/dev/null \
  || { echo "FAIL: post-fan-out feed differs from lookup truth" >&2; exit 1; }
echo "   50 watchers, identical frames, $ENC encodes for $PUB publications, streams drained"

echo "== incremental checkpoints on disk"
INCR_BYTES=$(stat_field IncrCheckpointBytes)
DCKPS=$(ls "$DIR"/checkpoints/ckpt-*.dckp 2>/dev/null | wc -l)
[ "$DCKPS" -ge 1 ] || { echo "FAIL: no .dckp chain links on disk" >&2; ls -la "$DIR/checkpoints" >&2; exit 1; }
[ "$INCR_BYTES" -gt 0 ] || { echo "FAIL: IncrCheckpointBytes=$INCR_BYTES with $DCKPS chain links" >&2; exit 1; }
echo "   $DCKPS chain links, $INCR_BYTES incremental bytes"

echo "== crash: kill -9 mid-chain"
printf '+ 3 4 2\n' | $CTL mutate >/dev/null || true
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

echo "== recover from base + delta chain"
"$BINDIR/spinnerd" -addr "127.0.0.1:$PORT" -degrade 999999 -data-dir "$DIR" \
  -fsync never -checkpoint-every 4 -max-delta-chain 4 -delta-ring 32 &
PID=$!
wait_healthy
VERTICES=$(stat_field vertices)
DRIFT=$(stat_field CutDrift)
REPLAYED=$(stat_field ReplayedRecords)
NEWFLOOR=$(stat_field delta_floor)
echo "   vertices=$VERTICES drift=$DRIFT replayed=$REPLAYED delta_floor=$NEWFLOOR"
[ "$VERTICES" = "2000" ] || { echo "FAIL: vertex space not recovered" >&2; exit 1; }
[ "$DRIFT" = "0" ] || { echo "FAIL: cut drift $DRIFT after chain recovery" >&2; exit 1; }

echo "== post-recovery: sequences reset, feed still converges"
# The new incarnation starts its feed over: a consumer from seq 0 sees
# the fresh baseline (or a 410 "reset"/"compacted" it recovers from).
churn 3 23
sleep 1
$CTL feed-labels > "$BINDIR/feed2.txt"
$CTL labels > "$BINDIR/lookup2.txt"
diff -q "$BINDIR/feed2.txt" "$BINDIR/lookup2.txt" >/dev/null \
  || { echo "FAIL: post-recovery feed differs from lookup truth" >&2; exit 1; }
echo "   feed == lookup on the recovered incarnation"

echo "PASS: change feed + incremental checkpoint smoke"
