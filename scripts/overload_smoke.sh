#!/usr/bin/env bash
# overload_smoke.sh — end-to-end overload-robustness smoke for the
# multi-tenant serving daemon (ISSUE 6 / CI job).
#
# Boots a durable spinnerd with per-tenant admission quotas, then:
#   1. floods it from an abusive tenant (X-Tenant: abuser) and asserts
#      the flood is refused with honest 429s — machine-readable
#      {"code":"quota_exceeded"} bodies and a Retry-After header —
#      while trickle tenants' writes keep landing with 202;
#   2. asserts the duplicate-resize rejection is typed (400 +
#      {"code":"k_unchanged"}), and that /stats exposes the overload
#      view: QuotaRejections, FairnessPasses, and the per-tenant map
#      with the abuser's quota_rejected count;
#   3. kill -9s the daemon while the abuser is still firing, reopens the
#      data dir, and asserts recovery: healthy, full vertex space, not
#      degraded, and a fresh admission state (quota buckets are not
#      persisted — the abuser gets its burst back).
#
# Usage: scripts/overload_smoke.sh [port]
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${1:-18574}"
BASE="http://127.0.0.1:$PORT"
BIN=$(mktemp -d)/spinnerd
DIR=$(mktemp -d)
PID=""
FLOOD_PID=""
cleanup() {
  [ -n "$FLOOD_PID" ] && kill -9 "$FLOOD_PID" 2>/dev/null || true
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
  rm -rf "$DIR" "$(dirname "$BIN")"
}
trap cleanup EXIT

echo "== build spinnerd"
go build -o "$BIN" ./cmd/spinnerd

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "spinnerd never became healthy" >&2
  return 1
}

stat_field() { # stat_field <key> — crude JSON number extraction, no jq dependency
  curl -fsS "$BASE/stats" | tr ',{}' '\n\n\n' | grep -m1 "\"$1\":" | sed 's/.*: *//'
}

# mutate <tenant> — POST one small batch; prints the HTTP status code.
mutate() {
  curl -s -o /dev/null -w '%{http_code}' -H "X-Tenant: $1" \
    -X POST --data-binary "+ $((RANDOM % 2000)) $((RANDOM % 2000)) 2" "$BASE/mutate"
}

echo "== boot durable spinnerd with per-tenant quotas (rate=2, burst=3, weights trickle=2)"
"$BIN" -k 4 -synthetic 2000 -seed 11 -shards 2 -addr "127.0.0.1:$PORT" \
  -degrade 999999 -data-dir "$DIR" -fsync never \
  -quota-rate 2 -quota-burst 3 -quota-depth 8 -quota-weights "trickle-a=2" &
PID=$!
wait_healthy

echo "== abusive tenant: 20 rapid mutates, quota must refuse most with 429"
ACCEPTED=0
REJECTED=0
for _ in $(seq 1 20); do
  code=$(mutate abuser)
  case "$code" in
    202) ACCEPTED=$((ACCEPTED + 1)) ;;
    429) REJECTED=$((REJECTED + 1)) ;;
    *) echo "FAIL: abuser mutate got HTTP $code, want 202 or 429" >&2; exit 1 ;;
  esac
done
echo "   abuser: $ACCEPTED accepted, $REJECTED rejected"
[ "$ACCEPTED" -ge 1 ] || { echo "FAIL: abuser never got its burst" >&2; exit 1; }
[ "$REJECTED" -ge 10 ] || { echo "FAIL: only $REJECTED/20 abuser requests refused" >&2; exit 1; }

echo "== a 429 carries Retry-After and a machine-readable code"
HDRS=$(mktemp)
BODY=$(curl -s -D "$HDRS" -H "X-Tenant: abuser" -X POST --data-binary "+ 1 2 2" "$BASE/mutate")
grep -qi '^retry-after: *[1-9]' "$HDRS" || { echo "FAIL: 429 without Retry-After header" >&2; cat "$HDRS" >&2; exit 1; }
echo "$BODY" | grep -q '"code": *"quota_exceeded"' || { echo "FAIL: 429 body lacks code quota_exceeded: $BODY" >&2; exit 1; }
rm -f "$HDRS"

echo "== trickle tenants sail through beside the flood"
for tenant in trickle-a trickle-b; do
  code=$(mutate "$tenant")
  [ "$code" = "202" ] || { echo "FAIL: $tenant mutate got HTTP $code beside the flood, want 202" >&2; exit 1; }
done

echo "== duplicate resize is a typed 400"
RESIZE=$(curl -s -w '\n%{http_code}' -X POST "$BASE/resize?k=4")
RESIZE_CODE=$(echo "$RESIZE" | tail -1)
[ "$RESIZE_CODE" = "400" ] || { echo "FAIL: resize to current k got HTTP $RESIZE_CODE, want 400" >&2; exit 1; }
echo "$RESIZE" | grep -q '"code": *"k_unchanged"' || { echo "FAIL: duplicate resize body lacks code k_unchanged" >&2; exit 1; }

echo "== /stats exposes the overload view"
sleep 0.5 # let the accepted writes drain so fairness passes are counted
QUOTA_REJ=$(stat_field QuotaRejections)
FAIR=$(stat_field FairnessPasses)
DEGRADED=$(stat_field degraded)
echo "   quota-rejections=$QUOTA_REJ fairness-passes=$FAIR degraded=$DEGRADED"
[ "$QUOTA_REJ" -ge 10 ] || { echo "FAIL: QuotaRejections=$QUOTA_REJ, want >= 10" >&2; exit 1; }
[ "$FAIR" -ge 1 ] || { echo "FAIL: FairnessPasses=$FAIR, want >= 1" >&2; exit 1; }
[ "$DEGRADED" = "false" ] || { echo "FAIL: store degraded during quota smoke" >&2; exit 1; }
STATS=$(curl -fsS "$BASE/stats")
echo "$STATS" | grep -q '"abuser"' || { echo "FAIL: /stats tenants map lacks the abuser" >&2; exit 1; }
echo "$STATS" | tr '{}' '\n\n' | grep -A1 '"abuser"' | grep -q '"quota_rejected": *[1-9]' \
  || { echo "FAIL: abuser quota_rejected not surfaced in /stats" >&2; exit 1; }

echo "== crash: kill -9 while the abuser is still firing"
( while :; do mutate abuser >/dev/null 2>&1 || true; done ) &
FLOOD_PID=$!
sleep 0.3
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""
kill -9 "$FLOOD_PID" 2>/dev/null || true
wait "$FLOOD_PID" 2>/dev/null || true
FLOOD_PID=""

echo "== recover from $DIR"
"$BIN" -addr "127.0.0.1:$PORT" -degrade 999999 -data-dir "$DIR" -fsync never \
  -quota-rate 2 -quota-burst 3 -quota-depth 8 -quota-weights "trickle-a=2" &
PID=$!
wait_healthy

VERTICES=$(stat_field vertices)
DEGRADED=$(stat_field degraded)
echo "   vertices=$VERTICES degraded=$DEGRADED"
[ "$VERTICES" = "2000" ] || { echo "FAIL: vertex space not recovered" >&2; exit 1; }
[ "$DEGRADED" = "false" ] || { echo "FAIL: recovered store reports degraded" >&2; exit 1; }

echo "== admission state is fresh after recovery (buckets are not persisted)"
code=$(mutate abuser)
[ "$code" = "202" ] || { echo "FAIL: abuser's post-recovery burst got HTTP $code, want 202" >&2; exit 1; }

kill "$PID" 2>/dev/null && wait "$PID" 2>/dev/null || true
PID=""
echo "overload smoke: OK"
