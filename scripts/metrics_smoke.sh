#!/usr/bin/env bash
# metrics_smoke.sh — end-to-end smoke for the observability plane
# (ISSUE 9 / CI job).
#
# Boots a durable spinnerd with -pprof-addr, churns mutations through it,
# and asserts the exposition contract end to end:
#
#   1. GET /v1/metrics answers Prometheus 0.0.4 text: every non-comment
#      line parses as "name{labels} value", and no series repeats;
#   2. counters are monotonic across two scrapes under churn;
#   3. the pipeline stage histograms (drain/journal/apply) are non-empty
#      after mutates, and the HTTP middleware recorded the mutate route;
#   4. /v1/stats carries the latency section with plausible quantiles;
#   5. the pprof side listener serves a heap profile and a 1s CPU
#      profile, both non-empty;
#   6. `spinnerctl metrics` pretty-prints the families.
#
# Usage: scripts/metrics_smoke.sh [port [pprof-port]]
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${1:-18677}"
PPROF_PORT="${2:-18678}"
BASE="http://127.0.0.1:$PORT"
PPROF="http://127.0.0.1:$PPROF_PORT"
BINDIR=$(mktemp -d)
DIR=$(mktemp -d)
PID=""
cleanup() {
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
  rm -rf "$DIR" "$BINDIR"
}
trap cleanup EXIT

echo "== build spinnerd + spinnerctl"
go build -o "$BINDIR/spinnerd" ./cmd/spinnerd
go build -o "$BINDIR/spinnerctl" ./cmd/spinnerctl
CTL="$BINDIR/spinnerctl -addr $BASE"

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "spinnerd never became healthy" >&2
  return 1
}

churn() { # churn <rounds> <salt>
  for i in $(seq 1 "$1"); do
    body=""
    for j in $(seq 1 20); do
      u=$(( (i * 131 + j * 17 + $2) % 2000 ))
      v=$(( (i * 37 + j * 113 + $2 + 1) % 2000 ))
      [ "$u" -eq "$v" ] && v=$(( (v + 1) % 2000 ))
      body+="+ $u $v 2"$'\n'
    done
    printf '%s' "$body" | $CTL mutate >/dev/null
  done
}

# metric <file> <series-regex> — print the value of the first matching
# series line (the last whitespace-separated field).
metric() {
  grep -E "^$2 " "$1" | head -1 | awk '{print $NF}'
}

echo "== boot durable spinnerd with pprof side listener"
"$BINDIR/spinnerd" -k 4 -synthetic 2000 -seed 11 -shards 2 -addr "127.0.0.1:$PORT" \
  -degrade 999999 -data-dir "$DIR" -fsync never -checkpoint-every 8 \
  -pprof-addr "127.0.0.1:$PPROF_PORT" -lookup-sample-every 4 &
PID=$!
wait_healthy

echo "== churn, then first scrape"
churn 6 0
for i in $(seq 0 99); do curl -fsS "$BASE/v1/lookup?v=$i" >/dev/null; done
SCRAPE1="$BINDIR/scrape1.txt"
curl -fsS -D "$BINDIR/headers1.txt" "$BASE/v1/metrics" > "$SCRAPE1"
grep -qi '^content-type: text/plain; version=0.0.4' "$BINDIR/headers1.txt" \
  || { echo "FAIL: wrong Content-Type" >&2; cat "$BINDIR/headers1.txt" >&2; exit 1; }

echo "== exposition parses and has no duplicate series"
BAD=$(grep -v '^#' "$SCRAPE1" | grep -v '^$' | \
  grep -cvE '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.e+-]+|\+Inf|NaN)$' || true)
[ "$BAD" -eq 0 ] || { echo "FAIL: $BAD unparseable exposition lines" >&2; exit 1; }
DUPES=$(grep -v '^#' "$SCRAPE1" | grep -v '^$' | sed 's/ [^ ]*$//' | sort | uniq -d)
[ -z "$DUPES" ] || { echo "FAIL: duplicate series:" >&2; echo "$DUPES" >&2; exit 1; }
SERIES=$(grep -cv '^#' "$SCRAPE1")
echo "   $SERIES series, all parseable, no duplicates"

echo "== stage + http histograms populated after churn"
for stage in drain journal apply; do
  C=$(metric "$SCRAPE1" "spinner_stage_duration_seconds_count\{stage=\"$stage\"\}")
  [ -n "$C" ] && [ "$C" -ge 1 ] \
    || { echo "FAIL: stage=$stage histogram count='$C', want >= 1" >&2; exit 1; }
done
MUTS=$(metric "$SCRAPE1" 'spinner_http_request_duration_seconds_count\{route="mutate",status="2xx"\}')
[ -n "$MUTS" ] && [ "$MUTS" -ge 6 ] \
  || { echo "FAIL: mutate route histogram count='$MUTS', want >= 6" >&2; exit 1; }
LOOKED=$(metric "$SCRAPE1" 'spinner_lookup_duration_seconds_count')
[ -n "$LOOKED" ] && [ "$LOOKED" -ge 1 ] \
  || { echo "FAIL: sampled lookup histogram count='$LOOKED', want >= 1" >&2; exit 1; }
echo "   stage histograms non-empty, mutate route count=$MUTS, sampled lookups=$LOOKED"

echo "== counters monotonic across a second scrape under churn"
churn 4 5
SCRAPE2="$BINDIR/scrape2.txt"
curl -fsS "$BASE/v1/metrics" > "$SCRAPE2"
for name in spinner_lookups_total spinner_batches_applied_total \
            spinner_journal_appends_total spinner_deltas_published_total; do
  A=$(metric "$SCRAPE1" "$name")
  B=$(metric "$SCRAPE2" "$name")
  [ -n "$A" ] && [ -n "$B" ] || { echo "FAIL: counter $name missing from a scrape" >&2; exit 1; }
  [ "$B" -ge "$A" ] || { echo "FAIL: $name went backwards: $A -> $B" >&2; exit 1; }
done
echo "   counters monotonic"

echo "== /v1/stats latency section"
curl -fsS "$BASE/stats" | grep -q '"latency"' \
  || { echo "FAIL: stats missing latency section" >&2; exit 1; }
curl -fsS "$BASE/stats" | grep -q '"stage:apply"' \
  || { echo "FAIL: stats latency missing stage:apply" >&2; exit 1; }
echo "   latency quantiles present"

echo "== pprof side listener"
curl -fsS "$PPROF/debug/pprof/heap" > "$BINDIR/heap.pb.gz"
[ -s "$BINDIR/heap.pb.gz" ] || { echo "FAIL: empty heap profile" >&2; exit 1; }
curl -fsS "$PPROF/debug/pprof/profile?seconds=1" > "$BINDIR/cpu.pb.gz"
[ -s "$BINDIR/cpu.pb.gz" ] || { echo "FAIL: empty CPU profile" >&2; exit 1; }
# The main listener must NOT serve pprof.
CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/debug/pprof/heap")
[ "$CODE" = "404" ] || { echo "FAIL: serving address exposes pprof (http $CODE)" >&2; exit 1; }
echo "   heap + cpu profiles fetched; serving address clean"

echo "== spinnerctl metrics pretty-printer"
$CTL metrics > "$BINDIR/pretty.txt"
grep -q 'spinner_stage_duration_seconds (histogram)' "$BINDIR/pretty.txt" \
  || { echo "FAIL: spinnerctl metrics missing stage family" >&2; cat "$BINDIR/pretty.txt" >&2; exit 1; }
grep -q 'p99=' "$BINDIR/pretty.txt" \
  || { echo "FAIL: spinnerctl metrics printed no quantiles" >&2; exit 1; }
$CTL metrics -raw | head -1 | grep -q '^#' \
  || { echo "FAIL: spinnerctl metrics -raw did not dump the exposition" >&2; exit 1; }
echo "   pretty print + raw dump OK"

echo "PASS: metrics + pprof observability smoke"
