#!/usr/bin/env bash
# replication_smoke.sh — end-to-end replicated-serving smoke for the
# spinnerd daemon (ISSUE 7 / CI job).
#
# Boots a durable leader on a synthetic graph plus a warm-standby
# follower tailing its journal stream (-follow). Drives mutation churn at
# the leader, asserts the follower converges to the same applied sequence
# with bounded staleness, serves lookups from its own snapshots, and
# refuses writes (503 read_only). Then the failover drill: record the
# leader's acknowledged-and-replicated watermark plus a lookup sample,
# kill -9 the leader, POST /promote on the follower, and assert the
# promoted node reports role=leader, has lost no acknowledged batch
# (applied_seq >= the pre-kill watermark), answers the sample lookups
# identically, and accepts writes.
#
# Usage: scripts/replication_smoke.sh [leader-port] [follower-port]
set -euo pipefail
cd "$(dirname "$0")/.."

LPORT="${1:-18577}"
FPORT="${2:-18578}"
LBASE="http://127.0.0.1:$LPORT"
FBASE="http://127.0.0.1:$FPORT"
BIN=$(mktemp -d)/spinnerd
LDIR=$(mktemp -d)
FDIR=$(mktemp -d)
LPID=""
FPID=""
cleanup() {
  [ -n "$LPID" ] && kill -9 "$LPID" 2>/dev/null || true
  [ -n "$FPID" ] && kill -9 "$FPID" 2>/dev/null || true
  rm -rf "$LDIR" "$FDIR" "$(dirname "$BIN")"
}
trap cleanup EXIT

echo "== build spinnerd"
go build -o "$BIN" ./cmd/spinnerd

wait_healthy() { # wait_healthy <base-url>
  for _ in $(seq 1 100); do
    if curl -fsS "$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "spinnerd at $1 never became healthy" >&2
  return 1
}

stat_field() { # stat_field <base-url> <key> — crude JSON extraction, no jq dependency
  curl -fsS "$1/stats" | tr ',{}' '\n\n\n' | grep -m1 "\"$2\":" | sed 's/.*: *//' | tr -d '"'
}

churn() { # churn <rounds> <salt> — mutation batches against the leader
  for i in $(seq 1 "$1"); do
    body=""
    for j in $(seq 1 20); do
      u=$(( (i * 131 + j * 17 + $2) % 2000 ))
      v=$(( (i * 37 + j * 113 + $2 + 1) % 2000 ))
      [ "$u" -eq "$v" ] && v=$(( (v + 1) % 2000 ))
      body+="+ $u $v 2"$'\n'
    done
    curl -fsS -X POST --data-binary "$body" "$LBASE/mutate" >/dev/null
  done
}

# wait_caught_up: block until the follower has applied the leader's
# current journal watermark (acknowledged AND replicated).
wait_caught_up() {
  want=$(stat_field "$LBASE" applied_seq)
  for _ in $(seq 1 200); do
    got=$(stat_field "$FBASE" applied_seq)
    [ -n "$got" ] && [ "$got" -ge "$want" ] && return 0
    sleep 0.1
  done
  echo "follower stuck at applied_seq=$got, leader at $want" >&2
  return 1
}

echo "== boot leader (fsync=never, checkpoint-every=8)"
# -degrade suppresses background restabilization so the follower's
# replayed labels must match the leader's lookups exactly.
"$BIN" -k 4 -synthetic 2000 -seed 11 -shards 2 -addr "127.0.0.1:$LPORT" \
  -degrade 999999 -data-dir "$LDIR" -fsync never -fsync-interval 25ms \
  -checkpoint-every 8 -keep-checkpoints 2 &
LPID=$!
wait_healthy "$LBASE"

echo "== boot follower tailing $LBASE"
# Same partitioner flags as the leader: the journal replay path is the
# recovery path, and identical options make it bit-identical.
"$BIN" -k 4 -seed 11 -addr "127.0.0.1:$FPORT" -degrade 999999 \
  -follow "127.0.0.1:$LPORT" -data-dir "$FDIR" -fsync never \
  -max-staleness 30s &
FPID=$!
wait_healthy "$FBASE"
[ "$(stat_field "$FBASE" role)" = "follower" ] || { echo "FAIL: follower reports role=$(stat_field "$FBASE" role)" >&2; exit 1; }
[ "$(stat_field "$LBASE" role)" = "leader" ] || { echo "FAIL: leader reports role=$(stat_field "$LBASE" role)" >&2; exit 1; }

echo "== churn: 24 mutation batches at the leader"
churn 24 0
sleep 0.5
wait_caught_up

STALE=$(stat_field "$FBASE" staleness_ms)
echo "   follower caught up (applied_seq=$(stat_field "$FBASE" applied_seq), staleness=${STALE}ms)"
[ -n "$STALE" ] && [ "$STALE" -lt 5000 ] || { echo "FAIL: follower staleness ${STALE}ms, want < 5000" >&2; exit 1; }

echo "== follower refuses writes while tailing"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST --data-binary "+ 1 2 2" "$FBASE/mutate")
[ "$CODE" = "503" ] || { echo "FAIL: follower /mutate returned $CODE, want 503 read_only" >&2; exit 1; }

echo "== lookup sample served from the follower's own snapshots"
SAMPLE="1 42 500 999 1500 1999"
declare -A BEFORE
for v in $SAMPLE; do
  lpart=$(curl -fsS "$LBASE/lookup?v=$v" | tr ',{}' '\n\n\n' | grep -m1 '"partition":' | sed 's/.*: *//')
  fpart=$(curl -fsS "$FBASE/lookup?v=$v" | tr ',{}' '\n\n\n' | grep -m1 '"partition":' | sed 's/.*: *//')
  [ "$fpart" = "$lpart" ] || { echo "FAIL: lookup($v) leader=$lpart follower=$fpart" >&2; exit 1; }
  BEFORE[$v]=$fpart
done

echo "== more churn, then record the replicated watermark"
churn 12 7
sleep 0.5
wait_caught_up
WATERMARK=$(stat_field "$FBASE" applied_seq)
for v in $SAMPLE; do
  BEFORE[$v]=$(curl -fsS "$FBASE/lookup?v=$v" | tr ',{}' '\n\n\n' | grep -m1 '"partition":' | sed 's/.*: *//')
done
echo "   watermark=$WATERMARK (acknowledged and replicated)"

echo "== kill -9 the leader"
kill -9 "$LPID"
wait "$LPID" 2>/dev/null || true
LPID=""

echo "== promote the follower"
PROMOTE=$(curl -fsS -X POST "$FBASE/promote")
echo "   $PROMOTE"
echo "$PROMOTE" | grep -q '"promoted": *true' || { echo "FAIL: promote response: $PROMOTE" >&2; exit 1; }
[ "$(stat_field "$FBASE" role)" = "leader" ] || { echo "FAIL: promoted node still role=$(stat_field "$FBASE" role)" >&2; exit 1; }

APPLIED=$(stat_field "$FBASE" applied_seq)
[ "$APPLIED" -ge "$WATERMARK" ] || { echo "FAIL: promoted applied_seq=$APPLIED lost acknowledged batches (watermark $WATERMARK)" >&2; exit 1; }

echo "== lookup consistency across failover"
for v in $SAMPLE; do
  part=$(curl -fsS "$FBASE/lookup?v=$v" | tr ',{}' '\n\n\n' | grep -m1 '"partition":' | sed 's/.*: *//')
  if [ -z "$part" ] || [ "$part" -lt 0 ] || [ "$part" -ge 4 ]; then
    echo "FAIL: lookup($v) = '$part' out of [0,4)" >&2; exit 1
  fi
  if [ "$part" != "${BEFORE[$v]}" ]; then
    echo "FAIL: lookup($v) = $part after promotion, pre-kill ${BEFORE[$v]}" >&2; exit 1
  fi
done

echo "== promoted node accepts writes"
curl -fsS -X POST --data-binary "+ 5 6 2" "$FBASE/mutate" >/dev/null || { echo "FAIL: promoted node refused a write" >&2; exit 1; }
NEW_APPLIED=$(stat_field "$FBASE" applied_seq)
[ "$NEW_APPLIED" -gt "$APPLIED" ] || sleep 0.5
NEW_APPLIED=$(stat_field "$FBASE" applied_seq)
[ "$NEW_APPLIED" -gt "$APPLIED" ] || { echo "FAIL: post-promotion write never journaled ($APPLIED -> $NEW_APPLIED)" >&2; exit 1; }

kill "$FPID" 2>/dev/null && wait "$FPID" 2>/dev/null || true
FPID=""
echo "replication smoke: OK"
