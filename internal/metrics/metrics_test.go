package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// path4 builds 0-1-2-3 with unit weights.
func path4() *graph.Weighted {
	w := graph.NewWeighted(4)
	w.AddEdge(0, 1, 1)
	w.AddEdge(1, 2, 1)
	w.AddEdge(2, 3, 1)
	return w
}

func TestPhiAllLocal(t *testing.T) {
	w := path4()
	if got := Phi(w, []int32{0, 0, 0, 0}); got != 1 {
		t.Fatalf("phi=%v, want 1", got)
	}
}

func TestPhiAllCut(t *testing.T) {
	w := path4()
	if got := Phi(w, []int32{0, 1, 0, 1}); got != 0 {
		t.Fatalf("phi=%v, want 0", got)
	}
}

func TestPhiPartial(t *testing.T) {
	w := path4()
	// 0,1 together; 2,3 together; middle edge cut → 2/3 local.
	got := Phi(w, []int32{0, 0, 1, 1})
	if math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("phi=%v, want 2/3", got)
	}
}

func TestPhiWeighted(t *testing.T) {
	w := graph.NewWeighted(3)
	w.AddEdge(0, 1, 2) // local
	w.AddEdge(1, 2, 1) // cut
	got := Phi(w, []int32{0, 0, 1})
	if math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("weighted phi=%v, want 2/3", got)
	}
}

func TestPhiEmptyGraph(t *testing.T) {
	w := graph.NewWeighted(3)
	if Phi(w, []int32{0, 1, 2}) != 1 {
		t.Fatal("edgeless phi should be 1")
	}
}

func TestCutEdges(t *testing.T) {
	w := path4()
	if got := CutEdges(w, []int32{0, 0, 1, 1}); got != 1 {
		t.Fatalf("cut=%d, want 1", got)
	}
}

func TestLoadsConservation(t *testing.T) {
	w := path4()
	loads := Loads(w, []int32{0, 0, 1, 1}, 2)
	var sum int64
	for _, b := range loads {
		sum += b
	}
	if sum != 2*w.TotalWeight() {
		t.Fatalf("Σb(l)=%d, want %d", sum, 2*w.TotalWeight())
	}
}

func TestRhoBalanced(t *testing.T) {
	// Two partitions each carrying identical load.
	w := graph.NewWeighted(4)
	w.AddEdge(0, 1, 1)
	w.AddEdge(2, 3, 1)
	got := Rho(w, []int32{0, 0, 1, 1}, 2)
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("rho=%v, want 1", got)
	}
}

func TestRhoUnbalanced(t *testing.T) {
	w := graph.NewWeighted(4)
	w.AddEdge(0, 1, 1)
	w.AddEdge(2, 3, 1)
	// All in one partition: max load 4 (weighted degree sum), ideal 2 → ρ=2.
	got := Rho(w, []int32{0, 0, 0, 0}, 2)
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("rho=%v, want 2", got)
	}
}

func TestRhoEmptyGraph(t *testing.T) {
	w := graph.NewWeighted(2)
	if Rho(w, []int32{0, 1}, 2) != 1 {
		t.Fatal("edgeless rho should be 1")
	}
}

func TestScoreImprovesWithLocality(t *testing.T) {
	w := path4()
	bad := Score(w, []int32{0, 1, 0, 1}, 2, 1.05)
	good := Score(w, []int32{0, 0, 1, 1}, 2, 1.05)
	if good <= bad {
		t.Fatalf("score(good)=%v <= score(bad)=%v", good, bad)
	}
}

func TestScorePenalizesImbalance(t *testing.T) {
	w := graph.NewWeighted(4)
	w.AddEdge(0, 1, 1)
	w.AddEdge(2, 3, 1)
	balanced := Score(w, []int32{0, 0, 1, 1}, 2, 1.05)
	lopsided := Score(w, []int32{0, 0, 0, 0}, 2, 1.05)
	if balanced <= lopsided {
		t.Fatalf("balanced score %v <= lopsided %v", balanced, lopsided)
	}
}

func TestDifference(t *testing.T) {
	a := []int32{0, 1, 2, 3}
	b := []int32{0, 1, 0, 0}
	if got := Difference(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("difference=%v, want 0.5", got)
	}
	if Difference(a, a) != 0 {
		t.Fatal("self-difference nonzero")
	}
	if Difference(nil, nil) != 0 {
		t.Fatal("empty difference nonzero")
	}
}

func TestDifferencePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Difference([]int32{0}, []int32{0, 1})
}

func TestValidateLabels(t *testing.T) {
	if err := ValidateLabels([]int32{0, 1, 2}, 3); err != nil {
		t.Fatal(err)
	}
	if err := ValidateLabels([]int32{0, 3}, 3); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if err := ValidateLabels([]int32{-1}, 3); err == nil {
		t.Fatal("negative label accepted")
	}
}

func TestSummarize(t *testing.T) {
	w := path4()
	s := Summarize(w, []int32{0, 0, 1, 1}, 2)
	if s.K != 2 || s.Cut != 1 {
		t.Fatalf("summary %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

// Property: φ ∈ [0,1] and ρ ≥ 1 for any labeling of any graph.
func TestMetricBoundsProperty(t *testing.T) {
	f := func(seed uint16, kRaw uint8) bool {
		k := int(kRaw%8) + 1
		s := rng.New(uint64(seed))
		g := gen.ErdosRenyi(30, 100, true, uint64(seed))
		w := graph.Convert(g)
		labels := make([]int32, w.NumVertices())
		for i := range labels {
			labels[i] = int32(s.Intn(k))
		}
		phi := Phi(w, labels)
		rho := Rho(w, labels, k)
		return phi >= 0 && phi <= 1 && rho >= 1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: load conservation Σ_l b(l) = Σ_v deg_w(v) for any labeling.
func TestLoadConservationProperty(t *testing.T) {
	f := func(seed uint16) bool {
		s := rng.New(uint64(seed))
		w := graph.Convert(gen.ErdosRenyi(40, 150, true, uint64(seed)))
		k := 1 + s.Intn(6)
		labels := make([]int32, w.NumVertices())
		for i := range labels {
			labels[i] = int32(s.Intn(k))
		}
		loads := Loads(w, labels, k)
		var sum int64
		for _, b := range loads {
			sum += b
		}
		var degSum int64
		for v := 0; v < w.NumVertices(); v++ {
			degSum += w.WeightedDegree(graph.VertexID(v))
		}
		return sum == degSum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGroundTruthPhiHigh(t *testing.T) {
	g, truth := gen.PlantedPartition(800, 4, 12, 2, 5)
	w := graph.Convert(g)
	if phi := Phi(w, truth); phi < 0.75 {
		t.Fatalf("ground truth phi=%v, want >= 0.75", phi)
	}
}

// CutWeights must agree with Phi exactly, and range-restricted sums over a
// disjoint partition of the vertex space must reproduce the global counters
// bit-for-bit — the invariant the sharded store's reconciliation relies on.
func TestCutWeightsMatchPhiAndCompose(t *testing.T) {
	g, _ := gen.PlantedPartition(500, 3, 10, 3, 11)
	w := graph.Convert(g)
	labels := make([]int32, w.NumVertices())
	for v := range labels {
		labels[v] = int32(v % 3)
	}
	cross, total, perPart := CutWeights(w, labels, 3)
	if total != w.TotalWeight() {
		t.Fatalf("total %d != TotalWeight %d", total, w.TotalWeight())
	}
	// Integer identity with Phi's numerator: cross = total − local. (The
	// float 1−Phi differs from cross/total only by rounding of the
	// subtraction, which is why the serving layer keeps integers.)
	var local int64
	w.EdgesOnce(func(u, v graph.VertexID, weight int32) {
		if labels[u] == labels[v] {
			local += int64(weight)
		}
	})
	if cross != total-local {
		t.Fatalf("cross %d != total-local %d", cross, total-local)
	}
	for _, l := range perPart {
		if l < 0 || l > 2*cross {
			t.Fatalf("perPart out of range: %v (cross %d)", perPart, cross)
		}
	}
	var sumPP int64
	for _, l := range perPart {
		sumPP += l
	}
	if sumPP != 2*cross {
		t.Fatalf("sum perPart %d != 2*cross %d", sumPP, cross)
	}

	bounds := []int{0, 97, 213, w.NumVertices()}
	var rc, rt int64
	rpp := make([]int64, 3)
	for i := 0; i+1 < len(bounds); i++ {
		c, tt, pp := CutWeightsRange(w, labels, 3, bounds[i], bounds[i+1])
		rc += c
		rt += tt
		for l := range pp {
			rpp[l] += pp[l]
		}
	}
	if rc != cross || rt != total {
		t.Fatalf("range sums (%d,%d) != global (%d,%d)", rc, rt, cross, total)
	}
	for l := range rpp {
		if rpp[l] != perPart[l] {
			t.Fatalf("range perPart[%d]=%d != %d", l, rpp[l], perPart[l])
		}
	}
}
