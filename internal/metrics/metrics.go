// Package metrics implements the evaluation metrics of §V of the Spinner
// paper:
//
//	φ (phi)  — ratio of local edges (Eq. 16, left): the weighted fraction
//	           of edges whose endpoints share a partition.
//	ρ (rho)  — maximum normalized load (Eq. 16, right): the load of the
//	           most loaded partition divided by the ideal load |E|/k.
//	score(G) — the aggregate optimization objective (Eq. 10).
//	partitioning difference — the fraction of vertices whose label differs
//	           between two partitionings (§V-D, "partitioning stability").
//
// All edge-based metrics operate on the weighted undirected graph produced
// by graph.Convert, so "load" counts messages exactly as the paper's Giraph
// implementation does.
package metrics

import (
	"fmt"

	"repro/internal/graph"
)

// Loads returns b(l) for every label l (Eq. 6): the sum over vertices with
// label l of their weighted degree. Σ_l b(l) = 2·TotalWeight.
func Loads(w *graph.Weighted, labels []int32, k int) []int64 {
	loads := make([]int64, k)
	for v := 0; v < w.NumVertices(); v++ {
		loads[labels[v]] += w.WeightedDegree(graph.VertexID(v))
	}
	return loads
}

// Phi returns the ratio of local edge weight: Σ_{local e} w(e) / Σ_e w(e).
// An edge is local when both endpoints carry the same label. Returns 1 for
// an edgeless graph (nothing is cut).
func Phi(w *graph.Weighted, labels []int32) float64 {
	var local, total int64
	w.EdgesOnce(func(u, v graph.VertexID, weight int32) {
		total += int64(weight)
		if labels[u] == labels[v] {
			local += int64(weight)
		}
	})
	if total == 0 {
		return 1
	}
	return float64(local) / float64(total)
}

// CutEdges returns the number of undirected edges (unweighted count) whose
// endpoints carry different labels.
func CutEdges(w *graph.Weighted, labels []int32) int64 {
	var cut int64
	w.EdgesOnce(func(u, v graph.VertexID, _ int32) {
		if labels[u] != labels[v] {
			cut++
		}
	})
	return cut
}

// CutWeights returns the integer cut counters the serving layer tracks
// incrementally: the total edge weight, the cross-partition (cut) edge
// weight, and the per-partition external weight (each cut edge contributes
// its weight to both endpoints' partitions). 1−Phi equals
// float64(cross)/float64(total); keeping the counters in integers makes
// incremental deltas bit-exactly reconcilable against this recompute.
func CutWeights(w *graph.Weighted, labels []int32, k int) (cross, total int64, perPart []int64) {
	return CutWeightsRange(w, labels, k, 0, w.NumVertices())
}

// CutWeightsRange is CutWeights restricted to the edges owned by the
// contiguous vertex range [lo, hi): an edge {u,v} with u < v is owned by
// the range containing u. Summing the results over a partition of the
// vertex space into disjoint ranges reproduces CutWeights exactly — the
// sharded store reconciles each shard's incremental counters this way.
func CutWeightsRange(w *graph.Weighted, labels []int32, k, lo, hi int) (cross, total int64, perPart []int64) {
	perPart = make([]int64, k)
	for u := lo; u < hi; u++ {
		lu := labels[u]
		for _, a := range w.Neighbors(graph.VertexID(u)) {
			if a.To <= graph.VertexID(u) {
				continue
			}
			total += int64(a.Weight)
			if lv := labels[a.To]; lu != lv {
				cross += int64(a.Weight)
				perPart[lu] += int64(a.Weight)
				perPart[lv] += int64(a.Weight)
			}
		}
	}
	return cross, total, perPart
}

// Rho returns the maximum normalized load: max_l b(l) / (Σ_l b(l) / k).
// A perfectly balanced partitioning has ρ = 1. Returns 1 when the graph
// carries no load.
func Rho(w *graph.Weighted, labels []int32, k int) float64 {
	loads := Loads(w, labels, k)
	var sum, maxLoad int64
	for _, b := range loads {
		sum += b
		if b > maxLoad {
			maxLoad = b
		}
	}
	if sum == 0 {
		return 1
	}
	ideal := float64(sum) / float64(k)
	return float64(maxLoad) / ideal
}

// RhoWeighted generalizes Rho to heterogeneous capacities: the maximum over
// partitions of b(l) / (T·f_l), where f are the (already normalized)
// capacity fractions. With uniform fractions it equals Rho. Returns 1 when
// the graph carries no load.
func RhoWeighted(w *graph.Weighted, labels []int32, fractions []float64) float64 {
	k := len(fractions)
	loads := Loads(w, labels, k)
	var total int64
	for _, b := range loads {
		total += b
	}
	if total == 0 {
		return 1
	}
	maxUtil := 0.0
	for l, b := range loads {
		util := float64(b) / (float64(total) * fractions[l])
		if util > maxUtil {
			maxUtil = util
		}
	}
	return maxUtil
}

// Score returns score(G) (Eq. 10): the sum over vertices of the per-vertex
// normalized score score”(v, α(v)) (Eq. 8), evaluated against the current
// loads and the capacity C = c·|E|/k (Eq. 5). It is the objective Spinner
// hill-climbs; tests assert it is non-decreasing across iterations.
func Score(w *graph.Weighted, labels []int32, k int, c float64) float64 {
	loads := Loads(w, labels, k)
	capacity := c * float64(w.TotalWeight()) / float64(k)
	if capacity == 0 {
		return 0
	}
	total := 0.0
	for v := 0; v < w.NumVertices(); v++ {
		l := labels[v]
		var same, degW int64
		for _, a := range w.Neighbors(graph.VertexID(v)) {
			degW += int64(a.Weight)
			if labels[a.To] == l {
				same += int64(a.Weight)
			}
		}
		if degW == 0 {
			continue
		}
		locality := float64(same) / float64(degW)
		penalty := float64(loads[l]) / capacity
		total += locality - penalty
	}
	return total
}

// Difference returns the partitioning difference of §V-D: the fraction of
// vertices whose label differs between a and b. It panics if the slices
// have different lengths. Labels are compared up to an optimal one-to-one
// relabeling ONLY when exact is false; the paper's metric is the raw
// difference (exact=true) because vertices physically move when the label
// changes, so that is the default behaviour of Difference.
func Difference(a, b []int32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metrics: Difference length mismatch %d vs %d", len(a), len(b)))
	}
	if len(a) == 0 {
		return 0
	}
	moved := 0
	for i := range a {
		if a[i] != b[i] {
			moved++
		}
	}
	return float64(moved) / float64(len(a))
}

// Summary bundles the headline metrics for one partitioning.
type Summary struct {
	K     int
	Phi   float64
	Rho   float64
	Cut   int64
	Loads []int64
}

// Summarize computes a Summary for the labeling.
func Summarize(w *graph.Weighted, labels []int32, k int) Summary {
	return Summary{
		K:     k,
		Phi:   Phi(w, labels),
		Rho:   Rho(w, labels, k),
		Cut:   CutEdges(w, labels),
		Loads: Loads(w, labels, k),
	}
}

// String formats a Summary like the paper's tables (φ, ρ to two decimals).
func (s Summary) String() string {
	return fmt.Sprintf("k=%d φ=%.3f ρ=%.3f cut=%d", s.K, s.Phi, s.Rho, s.Cut)
}

// ValidateLabels checks that every label is in [0, k). It returns an error
// naming the first offending vertex.
func ValidateLabels(labels []int32, k int) error {
	for v, l := range labels {
		if l < 0 || int(l) >= k {
			return fmt.Errorf("metrics: vertex %d has label %d outside [0,%d)", v, l, k)
		}
	}
	return nil
}
