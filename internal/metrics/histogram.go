package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram's bucket layout is log-linear (HDR-histogram style): values
// below subCount land in exact unit buckets; above that, each power-of-two
// octave is split into subCount equal sub-buckets, so the relative width of
// any bucket — and therefore the relative error of any quantile read — is
// bounded by 1/subCount (6.25%). The layout is fixed at compile time, which
// is what makes the record path a handful of atomic adds with no allocation
// and snapshots mergeable by plain element-wise addition.
const (
	subBits  = 4
	subCount = 1 << subBits
	// numBuckets covers every non-negative int64: subCount exact unit
	// buckets plus subCount sub-buckets per octave for exponents
	// subBits..62.
	numBuckets = (63-subBits)*subCount + subCount
)

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v uint64) int {
	if v < subCount {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // subBits..62
	return ((exp - subBits + 1) << subBits) | int((v>>(exp-subBits))&(subCount-1))
}

// bucketLo returns the inclusive lower bound of bucket i.
func bucketLo(i int) uint64 {
	if i < subCount {
		return uint64(i)
	}
	q := i >> subBits // octave offset, >= 1
	r := uint64(i & (subCount - 1))
	return (subCount + r) << (q - 1)
}

// bucketHi returns the exclusive upper bound of bucket i.
func bucketHi(i int) uint64 {
	if i < subCount {
		return uint64(i) + 1
	}
	return bucketLo(i) + 1<<((i>>subBits)-1)
}

// Histogram is a lock-free fixed-bucket log₂-scale histogram: atomic bucket
// counters with power-of-two sub-buckets, a tracked sum and exact max.
// Record never allocates and never takes a lock, so it is safe on serving
// hot paths; readers take a Snapshot and extract quantiles from that.
// Values are int64 — durations record their nanosecond count. The zero
// value is ready to use.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// Record adds one duration observation (negative durations clamp to 0).
func (h *Histogram) Record(d time.Duration) { h.RecordValue(int64(d)) }

// RecordValue adds one raw observation (negative values clamp to 0).
func (h *Histogram) RecordValue(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(uint64(v))].Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Snapshot copies the histogram into a plain-value, mergeable view. Buckets
// are read individually (not under a barrier), so a snapshot racing writers
// is consistent per-bucket with bounded cross-bucket skew — the usual
// monitoring contract, matching ServeCounters.Snapshot.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Counts: make([]int64, numBuckets),
		Sum:    h.sum.Load(),
		Max:    h.max.Load(),
	}
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram. Merge composes
// snapshots from different histograms (or shards) by element-wise
// addition — merging is associative and commutative.
type HistSnapshot struct {
	// Counts holds one count per fixed bucket (len numBuckets).
	Counts []int64
	// Count, Sum and Max summarize the recorded values; Max is exact.
	Count int64
	Sum   int64
	Max   int64
}

// Merge folds o into s element-wise. Snapshots with no buckets (zero
// values) merge as empty.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	if s.Counts == nil && o.Counts != nil {
		s.Counts = make([]int64, numBuckets)
	}
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Quantile returns an upper bound for the q-th quantile (q in [0,1]): the
// exclusive upper bound of the bucket holding the ⌈q·Count⌉-th smallest
// observation, clamped to the exact tracked Max. The bound is at most
// 1/subCount (6.25%) above the true value for values ≥ subCount, exact
// below. Returns 0 on an empty snapshot; q ≥ 1 returns Max exactly.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q >= 1 {
		return s.Max
	}
	if q < 0 {
		q = 0
	}
	target := int64(q*float64(s.Count)) + 1
	if target > s.Count {
		target = s.Count
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			hi := int64(bucketHi(i))
			if hi > s.Max {
				hi = s.Max
			}
			return hi
		}
	}
	return s.Max
}

// Mean returns the mean observation (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// CountBelow returns the number of observations strictly below bound —
// the cumulative count backing a Prometheus `le` bucket whose boundary
// falls on a bucket edge.
func (s HistSnapshot) CountBelow(bound uint64) int64 {
	idx := bucketOf(bound)
	if idx > len(s.Counts) {
		idx = len(s.Counts)
	}
	var cum int64
	for _, c := range s.Counts[:idx] {
		cum += c
	}
	return cum
}
