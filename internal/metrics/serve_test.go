package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestServeCountersSnapshot(t *testing.T) {
	var c ServeCounters
	c.Lookups.Add(10)
	c.StalenessSum.Add(5)
	c.BatchesApplied.Add(3)
	c.BatchesRejected.Add(1)
	c.MigratedVertices.Add(7)
	c.ElasticResizes.Add(2)

	c.ShardBatches.Add(6)
	c.CutReconciles.Add(4)
	c.CutDrift.Add(1)
	c.ShardRebalances.Add(2)

	c.GroupCommits.Add(4)
	c.GroupedEntries.Add(10)
	c.ApplyCoalesces.Add(2)
	c.CoalescedBatches.Add(5)
	c.CheckpointsPending.Store(1)

	s := c.Snapshot()
	if s.Lookups != 10 || s.BatchesApplied != 3 || s.BatchesRejected != 1 ||
		s.MigratedVertices != 7 || s.ElasticResizes != 2 {
		t.Fatalf("snapshot lost counts: %+v", s)
	}
	if s.ShardBatches != 6 || s.CutReconciles != 4 || s.CutDrift != 1 || s.ShardRebalances != 2 {
		t.Fatalf("snapshot lost shard counts: %+v", s)
	}
	if s.GroupCommits != 4 || s.GroupedEntries != 10 || s.ApplyCoalesces != 2 ||
		s.CoalescedBatches != 5 || s.CheckpointsPending != 1 {
		t.Fatalf("snapshot lost commit-pipeline counts: %+v", s)
	}
	if got := s.GroupCommitDepth(); got != 2.5 {
		t.Fatalf("GroupCommitDepth = %v, want 2.5", got)
	}
	if (ServeSnapshot{}).GroupCommitDepth() != 0 {
		t.Fatal("GroupCommitDepth must be 0 with no group commits")
	}
	if got := s.MeanStaleness(); got != 0.5 {
		t.Fatalf("MeanStaleness = %v, want 0.5", got)
	}
	if (ServeSnapshot{}).MeanStaleness() != 0 {
		t.Fatal("MeanStaleness must be 0 with no lookups")
	}
	if str := s.String(); !strings.Contains(str, "lookups=10") || !strings.Contains(str, "batches=3/4") ||
		!strings.Contains(str, "reconciles=4") || !strings.Contains(str, "groups=4 (depth 2.50)") ||
		!strings.Contains(str, "coalesced=5/2") {
		t.Fatalf("String() missing headline figures: %q", str)
	}
}

// The counters must tolerate concurrent writers and readers (they back the
// serving layer's hot path); run with -race.
func TestServeCountersConcurrent(t *testing.T) {
	var c ServeCounters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Lookups.Add(1)
				c.StalenessSum.Add(2)
				_ = c.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := c.Lookups.Load(); got != 8000 {
		t.Fatalf("Lookups = %d, want 8000", got)
	}
	if got := c.Snapshot().MeanStaleness(); got != 2 {
		t.Fatalf("MeanStaleness = %v, want 2", got)
	}
}
