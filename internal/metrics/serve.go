package metrics

import (
	"fmt"
	"sync/atomic"
)

// ServeCounters instruments the live partition-maintenance service
// (internal/serve) with lock-free counters: lookup traffic and staleness on
// the read path, mutation/batch volume on the write path, and
// restabilization/elastic migration volume on the maintenance path. All
// fields are safe for concurrent use; readers take a consistent-enough
// Snapshot (individual counters are atomic; cross-counter skew is bounded
// by in-flight operations, which is the usual monitoring contract).
type ServeCounters struct {
	// Read path.

	// Lookups counts vertex→partition lookups served.
	Lookups atomic.Int64
	// LookupMisses counts lookups for vertices outside the snapshot (not
	// yet visible or never created).
	LookupMisses atomic.Int64
	// StalenessSum accumulates, per lookup, the number of submitted
	// mutation batches not yet reflected in the snapshot served (the
	// mutation-log backlog observed by that lookup). StalenessSum/Lookups
	// is the mean lookup staleness in batches.
	StalenessSum atomic.Int64

	// Write path.

	// BatchesApplied counts mutation batches applied to the authoritative
	// graph; BatchesRejected counts batches refused by validation (the
	// graph is untouched by a rejected batch).
	BatchesApplied  atomic.Int64
	BatchesRejected atomic.Int64
	// EdgesAdded, EdgesRemoved and VerticesAdded total the applied volume.
	EdgesAdded    atomic.Int64
	EdgesRemoved  atomic.Int64
	VerticesAdded atomic.Int64

	// Maintenance path.

	// SnapshotSwaps counts atomic snapshot publications of any kind.
	SnapshotSwaps atomic.Int64
	// Restabilizations counts completed background incremental runs whose
	// result was merged; RestabDiscarded counts runs thrown away because
	// the partition count changed while they were in flight.
	Restabilizations atomic.Int64
	RestabDiscarded  atomic.Int64
	// MidRunSnapshots counts snapshots published from a restabilization
	// run still in progress (per-iteration extraction).
	MidRunSnapshots atomic.Int64
	// MigratedVertices and MigratedWeight total the vertices that changed
	// partition when restabilization results merged, and the weighted
	// degree they dragged across partitions — the migration-volume figure
	// the paper reports savings in (Fig. 7b).
	MigratedVertices atomic.Int64
	MigratedWeight   atomic.Int64
	// ElasticResizes counts k→k′ changes; ElasticSeedMoved totals the
	// vertices moved by the probabilistic relabeling itself (the paper's
	// n/(k+n) fraction, Eq. 11) before LPA repair.
	ElasticResizes   atomic.Int64
	ElasticSeedMoved atomic.Int64

	// Sharded-store path.

	// ShardBatches counts per-shard sub-batch applications on the sharded
	// fast path (one submitted batch fans out to ≤ shards sub-batches).
	ShardBatches atomic.Int64
	// CutReconciles counts periodic exact cut recomputations checked
	// against the incremental per-shard counters; CutDrift counts shards
	// whose incremental counters disagreed with the exact pass and were
	// repaired (expected to stay 0 — integer deltas are exact).
	CutReconciles atomic.Int64
	CutDrift      atomic.Int64
	// ShardRebalances counts shard-boundary recomputations that actually
	// moved a boundary (piggybacked on the reconciliation pass).
	ShardRebalances atomic.Int64

	// Durability path (internal/wal; zero on in-memory stores).

	// JournalAppends counts records durably framed into the write-ahead
	// journal; JournalBytes totals their encoded size; JournalSyncs counts
	// fsyncs issued under the configured policy.
	JournalAppends atomic.Int64
	JournalBytes   atomic.Int64
	JournalSyncs   atomic.Int64
	// Checkpoints counts snapshot checkpoints atomically installed
	// (full and incremental); CheckpointBytes totals their payload size.
	Checkpoints     atomic.Int64
	CheckpointBytes atomic.Int64
	// IncrCheckpointBytes totals the payload bytes of the incremental
	// (delta) checkpoints among them — the churn-proportional share of
	// CheckpointBytes. CheckpointRebases counts full re-encodes forced
	// while a delta chain was open (chain-length cap or a delta too dense
	// to pay off).
	IncrCheckpointBytes atomic.Int64
	CheckpointRebases   atomic.Int64
	// ReplayedRecords counts journal records re-applied during crash
	// recovery (serve.Open) — the recovery replay length.
	ReplayedRecords atomic.Int64

	// Commit-pipeline path (the staged write plane of ISSUE 5).

	// GroupCommits counts journal group appends (one write + at most one
	// fsync each); GroupedEntries totals the records framed into them.
	// GroupedEntries/GroupCommits is the mean group-commit depth — the
	// number of entries amortizing each fsync under wal.SyncAlways.
	GroupCommits   atomic.Int64
	GroupedEntries atomic.Int64
	// ApplyCoalesces counts shard broadcasts that merged a run of two or
	// more consecutive add-only batches into one fan-out (one cut-delta
	// fold, one snapshot publication); CoalescedBatches totals the
	// batches so merged.
	ApplyCoalesces   atomic.Int64
	CoalescedBatches atomic.Int64
	// CheckpointsPending is a 0/1 gauge: 1 while a captured checkpoint is
	// being encoded/written/installed by the background checkpointer.
	CheckpointsPending atomic.Int64

	// Overload-robustness path (admission control + degradation budget).

	// QuotaRejections counts submissions refused by per-tenant token-bucket
	// admission control (never enqueued, never journaled).
	QuotaRejections atomic.Int64
	// ShedRequests counts HTTP requests shed under overload with 503 +
	// Retry-After (currently /resize, the most expensive write).
	ShedRequests atomic.Int64
	// DeferredRestabs and DeferredReconciles count maintenance passes the
	// degradation budget pushed back because the store was overloaded —
	// one per deferral episode, not per skipped turn.
	DeferredRestabs    atomic.Int64
	DeferredReconciles atomic.Int64
	// FairnessPasses counts deficit-round-robin passes over the tenant
	// ring when the coordinator forms a commit group from the backlog.
	FairnessPasses atomic.Int64

	// Change-feed path (the delta plane; see internal/serve/delta.go).

	// DeltasPublished counts Delta records published into the change-feed
	// ring (baselines, barrier deltas and counter-only deltas).
	DeltasPublished atomic.Int64
	// DeltaEncodes counts EncodeDelta calls on the publish path. The
	// encode-once fan-out invariant is DeltaEncodes == DeltasPublished
	// no matter how many watch streams are attached: frames are memoized
	// at publish time and shared by every stream.
	DeltaEncodes atomic.Int64
	// WatchStreams is a gauge of currently open /v1/watch streams:
	// incremented when a stream is accepted, decremented when it closes.
	WatchStreams atomic.Int64
	// WatchStreamsTotal counts /v1/watch streams ever accepted.
	WatchStreamsTotal atomic.Int64
	// WatchBytesSent totals the frame bytes written to /v1/watch streams
	// (handshakes, deltas, heartbeats and end frames).
	WatchBytesSent atomic.Int64

	// Replication path (internal/replica; zero unless replicating).

	// ReplicaFramesSent and ReplicaBytesSent total the stream frames a
	// leader pushed to followers (handshakes, records and heartbeats) and
	// their encoded size.
	ReplicaFramesSent atomic.Int64
	ReplicaBytesSent  atomic.Int64
	// ReplicaRecordsApplied counts leader journal records a follower
	// applied through the replicated apply path.
	ReplicaRecordsApplied atomic.Int64
	// ReplicaFencedFrames counts stream frames rejected by the epoch
	// check — traffic from a deposed leader after promotion.
	ReplicaFencedFrames atomic.Int64
	// ReplicaReconnects counts follower stream re-establishments after a
	// dropped or torn connection (the initial connect is not counted).
	ReplicaReconnects atomic.Int64
	// StaleLookups counts follower /lookup requests refused with 503
	// stale_replica because staleness exceeded the -max-staleness bound.
	StaleLookups atomic.Int64
}

// ServeSnapshot is a plain-value copy of ServeCounters.
type ServeSnapshot struct {
	Lookups, LookupMisses, StalenessSum     int64
	BatchesApplied, BatchesRejected         int64
	EdgesAdded, EdgesRemoved, VerticesAdded int64
	SnapshotSwaps, Restabilizations         int64
	RestabDiscarded, MidRunSnapshots        int64
	MigratedVertices, MigratedWeight        int64
	ElasticResizes, ElasticSeedMoved        int64
	ShardBatches, CutReconciles             int64
	CutDrift, ShardRebalances               int64
	JournalAppends, JournalBytes            int64
	JournalSyncs, Checkpoints               int64
	CheckpointBytes, ReplayedRecords        int64
	IncrCheckpointBytes, CheckpointRebases  int64
	DeltasPublished, DeltaEncodes           int64
	WatchStreams, WatchStreamsTotal         int64
	WatchBytesSent                          int64
	GroupCommits, GroupedEntries            int64
	ApplyCoalesces, CoalescedBatches        int64
	CheckpointsPending                      int64
	QuotaRejections, ShedRequests           int64
	DeferredRestabs, DeferredReconciles     int64
	FairnessPasses                          int64
	ReplicaFramesSent, ReplicaBytesSent     int64
	ReplicaRecordsApplied                   int64
	ReplicaFencedFrames, ReplicaReconnects  int64
	StaleLookups                            int64
}

// Snapshot copies every counter.
func (c *ServeCounters) Snapshot() ServeSnapshot {
	return ServeSnapshot{
		Lookups:          c.Lookups.Load(),
		LookupMisses:     c.LookupMisses.Load(),
		StalenessSum:     c.StalenessSum.Load(),
		BatchesApplied:   c.BatchesApplied.Load(),
		BatchesRejected:  c.BatchesRejected.Load(),
		EdgesAdded:       c.EdgesAdded.Load(),
		EdgesRemoved:     c.EdgesRemoved.Load(),
		VerticesAdded:    c.VerticesAdded.Load(),
		SnapshotSwaps:    c.SnapshotSwaps.Load(),
		Restabilizations: c.Restabilizations.Load(),
		RestabDiscarded:  c.RestabDiscarded.Load(),
		MidRunSnapshots:  c.MidRunSnapshots.Load(),
		MigratedVertices: c.MigratedVertices.Load(),
		MigratedWeight:   c.MigratedWeight.Load(),
		ElasticResizes:   c.ElasticResizes.Load(),
		ElasticSeedMoved: c.ElasticSeedMoved.Load(),
		ShardBatches:     c.ShardBatches.Load(),
		CutReconciles:    c.CutReconciles.Load(),
		CutDrift:         c.CutDrift.Load(),
		ShardRebalances:  c.ShardRebalances.Load(),
		JournalAppends:   c.JournalAppends.Load(),
		JournalBytes:     c.JournalBytes.Load(),
		JournalSyncs:     c.JournalSyncs.Load(),
		Checkpoints:      c.Checkpoints.Load(),
		CheckpointBytes:  c.CheckpointBytes.Load(),
		ReplayedRecords:  c.ReplayedRecords.Load(),

		IncrCheckpointBytes: c.IncrCheckpointBytes.Load(),
		CheckpointRebases:   c.CheckpointRebases.Load(),
		DeltasPublished:     c.DeltasPublished.Load(),
		DeltaEncodes:        c.DeltaEncodes.Load(),
		WatchStreams:        c.WatchStreams.Load(),
		WatchStreamsTotal:   c.WatchStreamsTotal.Load(),
		WatchBytesSent:      c.WatchBytesSent.Load(),

		GroupCommits:     c.GroupCommits.Load(),
		GroupedEntries:   c.GroupedEntries.Load(),
		ApplyCoalesces:   c.ApplyCoalesces.Load(),
		CoalescedBatches: c.CoalescedBatches.Load(),

		CheckpointsPending: c.CheckpointsPending.Load(),

		QuotaRejections:    c.QuotaRejections.Load(),
		ShedRequests:       c.ShedRequests.Load(),
		DeferredRestabs:    c.DeferredRestabs.Load(),
		DeferredReconciles: c.DeferredReconciles.Load(),
		FairnessPasses:     c.FairnessPasses.Load(),

		ReplicaFramesSent:     c.ReplicaFramesSent.Load(),
		ReplicaBytesSent:      c.ReplicaBytesSent.Load(),
		ReplicaRecordsApplied: c.ReplicaRecordsApplied.Load(),
		ReplicaFencedFrames:   c.ReplicaFencedFrames.Load(),
		ReplicaReconnects:     c.ReplicaReconnects.Load(),
		StaleLookups:          c.StaleLookups.Load(),
	}
}

// GroupCommitDepth returns the mean number of journal records framed per
// group append — the entries amortizing each fsync under wal.SyncAlways
// (0 with no group commits).
func (s ServeSnapshot) GroupCommitDepth() float64 {
	if s.GroupCommits == 0 {
		return 0
	}
	return float64(s.GroupedEntries) / float64(s.GroupCommits)
}

// MeanStaleness returns the mean number of mutation batches the served
// snapshots lagged behind submissions, per lookup (0 with no lookups).
func (s ServeSnapshot) MeanStaleness() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.StalenessSum) / float64(s.Lookups)
}

// String formats the headline serving counters on one line.
func (s ServeSnapshot) String() string {
	return fmt.Sprintf(
		"lookups=%d (miss %d, staleness %.3f) batches=%d/%d (sub %d) edges=+%d/-%d verts=+%d swaps=%d restabs=%d (midrun %d, discarded %d) migrated=%d (weight %d) resizes=%d (seed-moved %d) reconciles=%d (drift %d, rebalanced %d) journal=%d (%dB, %d fsyncs) groups=%d (depth %.2f) coalesced=%d/%d ckpts=%d (%dB, incr %dB, rebases %d, pending %d) replayed=%d deltas=%d (enc %d) watches=%d/%d (%dB) quota-rej=%d shed=%d deferred=%d/%d fair=%d replica=%d/%dB (applied %d, fenced %d, reconnects %d, stale-503 %d)",
		s.Lookups, s.LookupMisses, s.MeanStaleness(),
		s.BatchesApplied, s.BatchesApplied+s.BatchesRejected, s.ShardBatches,
		s.EdgesAdded, s.EdgesRemoved, s.VerticesAdded,
		s.SnapshotSwaps, s.Restabilizations, s.MidRunSnapshots, s.RestabDiscarded,
		s.MigratedVertices, s.MigratedWeight, s.ElasticResizes, s.ElasticSeedMoved,
		s.CutReconciles, s.CutDrift, s.ShardRebalances,
		s.JournalAppends, s.JournalBytes, s.JournalSyncs,
		s.GroupCommits, s.GroupCommitDepth(), s.CoalescedBatches, s.ApplyCoalesces,
		s.Checkpoints, s.CheckpointBytes, s.IncrCheckpointBytes, s.CheckpointRebases,
		s.CheckpointsPending, s.ReplayedRecords, s.DeltasPublished, s.DeltaEncodes,
		s.WatchStreams, s.WatchStreamsTotal, s.WatchBytesSent,
		s.QuotaRejections, s.ShedRequests, s.DeferredRestabs, s.DeferredReconciles,
		s.FairnessPasses,
		s.ReplicaFramesSent, s.ReplicaBytesSent, s.ReplicaRecordsApplied,
		s.ReplicaFencedFrames, s.ReplicaReconnects, s.StaleLookups)
}
