package metrics

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketLayout checks the log-linear indexing invariants:
// every value lands in a bucket whose [lo, hi) range contains it, bucket
// bounds tile without gaps, and the relative width past the exact range
// is bounded by 1/subCount.
func TestHistogramBucketLayout(t *testing.T) {
	for i := 0; i < numBuckets; i++ {
		lo, hi := bucketLo(i), bucketHi(i)
		if hi <= lo {
			t.Fatalf("bucket %d: hi %d <= lo %d", i, hi, lo)
		}
		if i > 0 && bucketHi(i-1) != lo {
			t.Fatalf("bucket %d: gap — prev hi %d, lo %d", i, bucketHi(i-1), lo)
		}
		if got := bucketOf(lo); got != i {
			t.Fatalf("bucketOf(lo=%d) = %d, want %d", lo, got, i)
		}
		if got := bucketOf(hi - 1); got != i {
			t.Fatalf("bucketOf(hi-1=%d) = %d, want %d", hi-1, got, i)
		}
		if lo >= subCount && float64(hi-lo) > float64(lo)/subCount+1 {
			t.Fatalf("bucket %d: width %d too wide for lo %d", i, hi-lo, lo)
		}
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100000; i++ {
		v := uint64(rng.Int63()) >> uint(rng.Intn(60))
		b := bucketOf(v)
		if lo, hi := bucketLo(b), bucketHi(b); v < lo || v >= hi {
			t.Fatalf("value %d in bucket %d [%d,%d)", v, b, lo, hi)
		}
	}
}

// TestHistogramQuantileAccuracy replays random value sets against an exact
// sorted reference and bounds the histogram's quantile error: the reported
// value must be >= the true quantile and within the documented 1/subCount
// relative bound (+1 for the unit-bucket rounding).
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		var h Histogram
		n := 1000 + rng.Intn(5000)
		vals := make([]int64, n)
		for i := range vals {
			// Mix scales: exponential-ish spread over ns..seconds.
			v := int64(rng.Intn(1 << uint(4+rng.Intn(28))))
			vals[i] = v
			h.RecordValue(v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		snap := h.Snapshot()
		if snap.Count != int64(n) {
			t.Fatalf("count %d, want %d", snap.Count, n)
		}
		for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
			idx := int(q*float64(n)) + 1
			if idx > n {
				idx = n
			}
			exact := vals[idx-1]
			got := snap.Quantile(q)
			if got < exact {
				t.Fatalf("q=%v: histogram %d below exact %d", q, got, exact)
			}
			bound := exact + exact/subCount + 1
			if got > bound {
				t.Fatalf("q=%v: histogram %d exceeds bound %d (exact %d)", q, got, bound, exact)
			}
		}
		if snap.Quantile(1.0) != vals[n-1] {
			t.Fatalf("max quantile %d, want exact max %d", snap.Quantile(1.0), vals[n-1])
		}
	}
}

// TestHistogramMergeAssociativity splits one value stream across three
// histograms and checks (a+b)+c == a+(b+c) == whole, field by field —
// merge must be associative for multi-shard composition to be sound.
func TestHistogramMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var whole, a, b, c Histogram
	for i := 0; i < 30000; i++ {
		v := int64(rng.Intn(1 << uint(rng.Intn(30))))
		whole.RecordValue(v)
		switch i % 3 {
		case 0:
			a.RecordValue(v)
		case 1:
			b.RecordValue(v)
		default:
			c.RecordValue(v)
		}
	}
	left := a.Snapshot()
	left.Merge(b.Snapshot())
	left.Merge(c.Snapshot())
	right := c.Snapshot()
	right.Merge(b.Snapshot())
	right.Merge(a.Snapshot())
	want := whole.Snapshot()
	for _, m := range []HistSnapshot{left, right} {
		if m.Count != want.Count || m.Sum != want.Sum || m.Max != want.Max {
			t.Fatalf("merged summary {%d %d %d}, want {%d %d %d}",
				m.Count, m.Sum, m.Max, want.Count, want.Sum, want.Max)
		}
		for i := range want.Counts {
			if m.Counts[i] != want.Counts[i] {
				t.Fatalf("bucket %d: merged %d, want %d", i, m.Counts[i], want.Counts[i])
			}
		}
	}
}

// TestHistogramConcurrentRecord hammers Record from many goroutines (run
// under make test-race) and checks nothing is lost.
func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 20000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.RecordValue(int64(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	snap := h.Snapshot()
	if want := int64(goroutines * per); snap.Count != want {
		t.Fatalf("count %d, want %d", snap.Count, want)
	}
	if want := int64(goroutines*per - 1); snap.Max != want {
		t.Fatalf("max %d, want %d", snap.Max, want)
	}
}

// TestHistogramRecordAllocs enforces the zero-allocation budget on the
// record path.
func TestHistogramRecordAllocs(t *testing.T) {
	var h Histogram
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Record(137 * time.Microsecond)
	}); allocs > 0 {
		t.Fatalf("Record allocates %v per op, want 0", allocs)
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile %d, want 0", got)
	}
	h.Record(-time.Second) // clamps to 0
	snap := h.Snapshot()
	if snap.Count != 1 || snap.Counts[0] != 1 || snap.Sum != 0 {
		t.Fatalf("negative record: count=%d bucket0=%d sum=%d", snap.Count, snap.Counts[0], snap.Sum)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(1)
		for pb.Next() {
			h.RecordValue(v)
			v = (v * 2862933555777941757) & ((1 << 30) - 1)
		}
	})
}
