package metrics

import (
	"strconv"
	"strings"
)

// Prometheus text exposition (format 0.0.4), hand-rolled — no dependency.
// Metric names are the stable spinner_* contract documented in the
// spinnerd command doc ("Metrics reference"); renaming one is an API
// break. Histograms are rendered with one cumulative `le` bucket per
// power-of-two octave (a stable boundary set across scrapes), plus _sum
// and _count; the finer sub-bucket resolution backs the quantiles in
// /stats and `spinnerctl metrics`.

// promSecondsExps and promRawExps pick the exposed octave boundaries:
// 2^7ns = 128ns up to 2^34ns ≈ 17.2s for durations, 1 up to 2^20 for raw
// counts (replication lag in records). Observations past the last
// boundary land in +Inf.
var (
	promSecondsExps = expRange(7, 34)
	promRawExps     = expRange(0, 20)
)

func expRange(lo, hi int) []uint64 {
	var out []uint64
	for e := lo; e <= hi; e++ {
		out = append(out, uint64(1)<<e)
	}
	return out
}

// AppendProm renders every registered series in Prometheus text format,
// grouped into families (one # HELP/# TYPE per family, in first-
// registration order).
func (r *Registry) AppendProm(buf []byte) []byte {
	var order []string
	families := make(map[string][]*Series)
	r.Each(func(s *Series) {
		if _, ok := families[s.Name]; !ok {
			order = append(order, s.Name)
		}
		families[s.Name] = append(families[s.Name], s)
	})
	for _, name := range order {
		group := families[name]
		buf = appendHeader(buf, name, group[0].Help, group[0].Kind)
		for _, s := range group {
			switch s.Kind {
			case KindHistogram:
				buf = appendHist(buf, s)
			default:
				buf = appendSeriesName(buf, s.Name, s.Labels)
				if s.GaugeFn != nil {
					buf = strconv.AppendFloat(buf, s.GaugeFn(), 'g', -1, 64)
				} else {
					buf = strconv.AppendInt(buf, s.Gauge.Load(), 10)
				}
				buf = append(buf, '\n')
			}
		}
	}
	return buf
}

func appendHeader(buf []byte, name, help string, kind Kind) []byte {
	if help != "" {
		buf = append(buf, "# HELP "...)
		buf = append(buf, name...)
		buf = append(buf, ' ')
		buf = append(buf, strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(help)...)
		buf = append(buf, '\n')
	}
	buf = append(buf, "# TYPE "...)
	buf = append(buf, name...)
	buf = append(buf, ' ')
	buf = append(buf, kind.String()...)
	buf = append(buf, '\n')
	return buf
}

// appendSeriesName writes `name{labels} ` (with the trailing space),
// leaving the value to the caller. extra, when non-empty, is appended as
// a pre-rendered last label (used for `le`).
func appendSeriesName(buf []byte, name string, labels []Label, extra ...Label) []byte {
	buf = append(buf, name...)
	all := labels
	if len(extra) > 0 {
		all = append(append([]Label(nil), labels...), extra...)
	}
	if len(all) > 0 {
		buf = append(buf, '{')
		for i, l := range all {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, l.Key...)
			buf = append(buf, '=', '"')
			buf = append(buf, escapeLabel(l.Value)...)
			buf = append(buf, '"')
		}
		buf = append(buf, '}')
	}
	buf = append(buf, ' ')
	return buf
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	return strings.NewReplacer("\\", `\\`, `"`, `\"`, "\n", `\n`).Replace(v)
}

func appendHist(buf []byte, s *Series) []byte {
	snap := s.Hist.Snapshot()
	exps := promSecondsExps
	if s.Unit == UnitNone {
		exps = promRawExps
	}
	for _, bound := range exps {
		le := strconv.FormatFloat(boundValue(bound, s.Unit), 'g', -1, 64)
		buf = appendSeriesName(buf, s.Name+"_bucket", s.Labels, Label{Key: "le", Value: le})
		buf = strconv.AppendInt(buf, snap.CountBelow(bound), 10)
		buf = append(buf, '\n')
	}
	buf = appendSeriesName(buf, s.Name+"_bucket", s.Labels, Label{Key: "le", Value: "+Inf"})
	buf = strconv.AppendInt(buf, snap.Count, 10)
	buf = append(buf, '\n')
	buf = appendSeriesName(buf, s.Name+"_sum", s.Labels)
	buf = strconv.AppendFloat(buf, sumValue(snap.Sum, s.Unit), 'g', -1, 64)
	buf = append(buf, '\n')
	buf = appendSeriesName(buf, s.Name+"_count", s.Labels)
	buf = strconv.AppendInt(buf, snap.Count, 10)
	buf = append(buf, '\n')
	return buf
}

func boundValue(bound uint64, u Unit) float64 {
	if u == UnitSeconds {
		return float64(bound) / 1e9
	}
	return float64(bound)
}

func sumValue(sum int64, u Unit) float64 {
	if u == UnitSeconds {
		return float64(sum) / 1e9
	}
	return float64(sum)
}

// ServeMetric maps one ServeSnapshot field onto its exported Prometheus
// identity. The table is the single source of truth for the flat-counter
// half of /v1/metrics; a reflection test asserts it covers every
// ServeSnapshot field exactly once.
type ServeMetric struct {
	// Field is the ServeSnapshot (and /stats "counters") field name.
	Field string
	// Name is the exported metric family name.
	Name string
	Kind Kind
	Help string
	Get  func(*ServeSnapshot) int64
}

// ServeMetrics lists every ServeCounters field's exposition. Order is the
// exposition order (grouped as the struct is).
var ServeMetrics = []ServeMetric{
	{"Lookups", "spinner_lookups_total", KindCounter, "Vertex-to-partition lookups served.", func(s *ServeSnapshot) int64 { return s.Lookups }},
	{"LookupMisses", "spinner_lookup_misses_total", KindCounter, "Lookups for vertices outside the snapshot.", func(s *ServeSnapshot) int64 { return s.LookupMisses }},
	{"StalenessSum", "spinner_lookup_staleness_batches_total", KindCounter, "Per-lookup sum of the mutation-batch backlog observed (mean staleness = this / spinner_lookups_total).", func(s *ServeSnapshot) int64 { return s.StalenessSum }},
	{"BatchesApplied", "spinner_batches_applied_total", KindCounter, "Mutation batches applied to the authoritative graph.", func(s *ServeSnapshot) int64 { return s.BatchesApplied }},
	{"BatchesRejected", "spinner_batches_rejected_total", KindCounter, "Mutation batches refused by validation or a failed journal append.", func(s *ServeSnapshot) int64 { return s.BatchesRejected }},
	{"EdgesAdded", "spinner_edges_added_total", KindCounter, "Edges added by applied batches.", func(s *ServeSnapshot) int64 { return s.EdgesAdded }},
	{"EdgesRemoved", "spinner_edges_removed_total", KindCounter, "Edges removed by applied batches.", func(s *ServeSnapshot) int64 { return s.EdgesRemoved }},
	{"VerticesAdded", "spinner_vertices_added_total", KindCounter, "Vertices appended by applied batches.", func(s *ServeSnapshot) int64 { return s.VerticesAdded }},
	{"SnapshotSwaps", "spinner_snapshot_swaps_total", KindCounter, "Atomic snapshot publications of any kind.", func(s *ServeSnapshot) int64 { return s.SnapshotSwaps }},
	{"Restabilizations", "spinner_restabilizations_total", KindCounter, "Completed background restabilization runs merged.", func(s *ServeSnapshot) int64 { return s.Restabilizations }},
	{"RestabDiscarded", "spinner_restabs_discarded_total", KindCounter, "Background runs discarded because the partition count changed mid-flight.", func(s *ServeSnapshot) int64 { return s.RestabDiscarded }},
	{"MidRunSnapshots", "spinner_midrun_snapshots_total", KindCounter, "Snapshots published from in-flight restabilization runs.", func(s *ServeSnapshot) int64 { return s.MidRunSnapshots }},
	{"MigratedVertices", "spinner_migrated_vertices_total", KindCounter, "Vertices that changed partition when restabilization results merged.", func(s *ServeSnapshot) int64 { return s.MigratedVertices }},
	{"MigratedWeight", "spinner_migrated_weight_total", KindCounter, "Weighted degree dragged across partitions by merges.", func(s *ServeSnapshot) int64 { return s.MigratedWeight }},
	{"ElasticResizes", "spinner_elastic_resizes_total", KindCounter, "Elastic partition-count changes applied.", func(s *ServeSnapshot) int64 { return s.ElasticResizes }},
	{"ElasticSeedMoved", "spinner_elastic_seed_moved_total", KindCounter, "Vertices moved by the probabilistic elastic relabeling itself.", func(s *ServeSnapshot) int64 { return s.ElasticSeedMoved }},
	{"ShardBatches", "spinner_shard_batches_total", KindCounter, "Per-shard sub-batch applications on the sharded fast path.", func(s *ServeSnapshot) int64 { return s.ShardBatches }},
	{"CutReconciles", "spinner_cut_reconciles_total", KindCounter, "Periodic exact cut recomputations.", func(s *ServeSnapshot) int64 { return s.CutReconciles }},
	{"CutDrift", "spinner_cut_drift_total", KindCounter, "Shards whose incremental cut counters disagreed with an exact pass.", func(s *ServeSnapshot) int64 { return s.CutDrift }},
	{"ShardRebalances", "spinner_shard_rebalances_total", KindCounter, "Shard-boundary recomputations that moved a boundary.", func(s *ServeSnapshot) int64 { return s.ShardRebalances }},
	{"JournalAppends", "spinner_journal_appends_total", KindCounter, "Records durably framed into the write-ahead journal.", func(s *ServeSnapshot) int64 { return s.JournalAppends }},
	{"JournalBytes", "spinner_journal_bytes_total", KindCounter, "Encoded bytes appended to the journal.", func(s *ServeSnapshot) int64 { return s.JournalBytes }},
	{"JournalSyncs", "spinner_journal_syncs_total", KindCounter, "Journal fsyncs issued under the configured policy.", func(s *ServeSnapshot) int64 { return s.JournalSyncs }},
	{"Checkpoints", "spinner_checkpoints_total", KindCounter, "Checkpoints atomically installed (full and incremental).", func(s *ServeSnapshot) int64 { return s.Checkpoints }},
	{"CheckpointBytes", "spinner_checkpoint_bytes_total", KindCounter, "Checkpoint payload bytes written.", func(s *ServeSnapshot) int64 { return s.CheckpointBytes }},
	{"IncrCheckpointBytes", "spinner_checkpoint_incr_bytes_total", KindCounter, "Payload bytes of the incremental (delta) checkpoints.", func(s *ServeSnapshot) int64 { return s.IncrCheckpointBytes }},
	{"CheckpointRebases", "spinner_checkpoint_rebases_total", KindCounter, "Full checkpoint re-encodes forced while a delta chain was open.", func(s *ServeSnapshot) int64 { return s.CheckpointRebases }},
	{"ReplayedRecords", "spinner_replayed_records_total", KindCounter, "Journal records re-applied during crash recovery.", func(s *ServeSnapshot) int64 { return s.ReplayedRecords }},
	{"GroupCommits", "spinner_group_commits_total", KindCounter, "Journal group appends (one write, at most one fsync each).", func(s *ServeSnapshot) int64 { return s.GroupCommits }},
	{"GroupedEntries", "spinner_grouped_entries_total", KindCounter, "Records framed into group appends.", func(s *ServeSnapshot) int64 { return s.GroupedEntries }},
	{"ApplyCoalesces", "spinner_apply_coalesces_total", KindCounter, "Shard broadcasts that merged two or more consecutive add-only batches.", func(s *ServeSnapshot) int64 { return s.ApplyCoalesces }},
	{"CoalescedBatches", "spinner_coalesced_batches_total", KindCounter, "Batches merged by coalesced broadcasts.", func(s *ServeSnapshot) int64 { return s.CoalescedBatches }},
	{"CheckpointsPending", "spinner_checkpoints_pending", KindGauge, "1 while a background checkpoint is being encoded/written/installed.", func(s *ServeSnapshot) int64 { return s.CheckpointsPending }},
	{"QuotaRejections", "spinner_quota_rejections_total", KindCounter, "Submissions refused by per-tenant token-bucket admission control.", func(s *ServeSnapshot) int64 { return s.QuotaRejections }},
	{"ShedRequests", "spinner_shed_requests_total", KindCounter, "HTTP requests shed under overload with 503 + Retry-After.", func(s *ServeSnapshot) int64 { return s.ShedRequests }},
	{"DeferredRestabs", "spinner_deferred_restabs_total", KindCounter, "Restabilization passes deferred by the degradation budget.", func(s *ServeSnapshot) int64 { return s.DeferredRestabs }},
	{"DeferredReconciles", "spinner_deferred_reconciles_total", KindCounter, "Reconcile passes deferred by the degradation budget.", func(s *ServeSnapshot) int64 { return s.DeferredReconciles }},
	{"FairnessPasses", "spinner_fairness_passes_total", KindCounter, "Deficit-round-robin passes over the tenant ring.", func(s *ServeSnapshot) int64 { return s.FairnessPasses }},
	{"DeltasPublished", "spinner_deltas_published_total", KindCounter, "Delta records published into the change-feed ring.", func(s *ServeSnapshot) int64 { return s.DeltasPublished }},
	{"DeltaEncodes", "spinner_delta_encodes_total", KindCounter, "EncodeDelta calls on the publish path (equals spinner_deltas_published_total under encode-once fan-out, independent of watch-stream count).", func(s *ServeSnapshot) int64 { return s.DeltaEncodes }},
	{"WatchStreams", "spinner_watch_streams", KindGauge, "Currently open /v1/watch streams.", func(s *ServeSnapshot) int64 { return s.WatchStreams }},
	{"WatchStreamsTotal", "spinner_watch_streams_total", KindCounter, "/v1/watch streams ever accepted.", func(s *ServeSnapshot) int64 { return s.WatchStreamsTotal }},
	{"WatchBytesSent", "spinner_watch_bytes_sent_total", KindCounter, "Frame bytes written to /v1/watch streams.", func(s *ServeSnapshot) int64 { return s.WatchBytesSent }},
	{"ReplicaFramesSent", "spinner_replica_frames_sent_total", KindCounter, "Replication stream frames pushed to followers.", func(s *ServeSnapshot) int64 { return s.ReplicaFramesSent }},
	{"ReplicaBytesSent", "spinner_replica_bytes_sent_total", KindCounter, "Encoded bytes pushed over replication streams.", func(s *ServeSnapshot) int64 { return s.ReplicaBytesSent }},
	{"ReplicaRecordsApplied", "spinner_replica_records_applied_total", KindCounter, "Leader journal records applied through the replicated apply path.", func(s *ServeSnapshot) int64 { return s.ReplicaRecordsApplied }},
	{"ReplicaFencedFrames", "spinner_replica_fenced_frames_total", KindCounter, "Replication frames rejected by the epoch check.", func(s *ServeSnapshot) int64 { return s.ReplicaFencedFrames }},
	{"ReplicaReconnects", "spinner_replica_reconnects_total", KindCounter, "Follower stream re-establishments after a dropped connection.", func(s *ServeSnapshot) int64 { return s.ReplicaReconnects }},
	{"StaleLookups", "spinner_stale_lookups_total", KindCounter, "Follower lookups refused with 503 stale_replica.", func(s *ServeSnapshot) int64 { return s.StaleLookups }},
}

// AppendServeProm renders every ServeCounters field from the snapshot in
// Prometheus text format.
func AppendServeProm(buf []byte, s *ServeSnapshot) []byte {
	for _, m := range ServeMetrics {
		buf = appendHeader(buf, m.Name, m.Help, m.Kind)
		buf = append(buf, m.Name...)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, m.Get(s), 10)
		buf = append(buf, '\n')
	}
	return buf
}
