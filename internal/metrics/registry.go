package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies a registered metric for exposition.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Unit names the unit a histogram's raw int64 observations are in, so the
// exposition layer can scale them (nanoseconds → seconds) or leave raw
// counts alone.
type Unit int

const (
	// UnitSeconds marks nanosecond observations exposed as seconds.
	UnitSeconds Unit = iota
	// UnitNone marks dimensionless observations exposed raw.
	UnitNone
)

// Label is one metric label pair.
type Label struct{ Key, Value string }

// Gauge is a registry-owned instantaneous value (Set) or up/down counter
// (Add). Lock-free; safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Series is one registered metric series: a family name, an optional label
// set, and exactly one backing instrument.
type Series struct {
	Name   string
	Help   string
	Kind   Kind
	Unit   Unit
	Labels []Label

	Hist    *Histogram
	Gauge   *Gauge
	GaugeFn func() float64
}

// Registry names histograms and gauges alongside the flat ServeCounters:
// serving subsystems register series once at construction and record into
// the returned instruments lock-free; the exposition layer walks the
// registry to render /v1/metrics and the /stats latency section.
// Registration is get-or-create on (name, labels): re-registering an
// identical series returns the existing instrument (so rebuilding an API
// server over the same store is idempotent), while re-registering with a
// different kind panics — that is a programming error.
type Registry struct {
	mu     sync.Mutex
	series []*Series
	index  map[string]*Series // seriesKey → series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*Series)}
}

func seriesKey(name string, labels []Label) string {
	key := name
	for _, l := range labels {
		key += "\x00" + l.Key + "\x01" + l.Value
	}
	return key
}

// register implements the get-or-create contract shared by every
// constructor. Labels are sorted by key for a canonical identity.
func (r *Registry) register(s *Series) *Series {
	sort.SliceStable(s.Labels, func(i, j int) bool { return s.Labels[i].Key < s.Labels[j].Key })
	key := seriesKey(s.Name, s.Labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.index[key]; ok {
		if existing.Kind != s.Kind {
			panic(fmt.Sprintf("metrics: series %s re-registered as %s (was %s)", s.Name, s.Kind, existing.Kind))
		}
		return existing
	}
	r.index[key] = s
	r.series = append(r.series, s)
	return s
}

// NewHistogram registers (or returns) the histogram series name{labels}.
func (r *Registry) NewHistogram(name, help string, unit Unit, labels ...Label) *Histogram {
	s := r.register(&Series{Name: name, Help: help, Kind: KindHistogram, Unit: unit,
		Labels: labels, Hist: &Histogram{}})
	return s.Hist
}

// NewGauge registers (or returns) an instantaneous-value series.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	s := r.register(&Series{Name: name, Help: help, Kind: KindGauge,
		Labels: labels, Gauge: &Gauge{}})
	return s.Gauge
}

// NewGaugeFunc registers a computed gauge sampled at exposition time. On a
// duplicate registration the first function wins.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(&Series{Name: name, Help: help, Kind: KindGauge,
		Labels: labels, GaugeFn: fn})
}

// Each calls fn for every registered series in registration order. The
// *Series is shared — callers must not mutate it.
func (r *Registry) Each(fn func(*Series)) {
	r.mu.Lock()
	series := append([]*Series(nil), r.series...)
	r.mu.Unlock()
	for _, s := range series {
		fn(s)
	}
}
