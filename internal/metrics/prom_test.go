package metrics

import (
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	h1 := r.NewHistogram("spinner_test_seconds", "h", UnitSeconds, Label{"route", "lookup"})
	h2 := r.NewHistogram("spinner_test_seconds", "h", UnitSeconds, Label{"route", "lookup"})
	if h1 != h2 {
		t.Fatal("duplicate registration minted a new histogram")
	}
	h3 := r.NewHistogram("spinner_test_seconds", "h", UnitSeconds, Label{"route", "mutate"})
	if h1 == h3 {
		t.Fatal("distinct label sets shared a histogram")
	}
	g1 := r.NewGauge("spinner_test_gauge", "g")
	if g2 := r.NewGauge("spinner_test_gauge", "g"); g1 != g2 {
		t.Fatal("duplicate gauge registration minted a new gauge")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.NewGauge("spinner_test_seconds", "clash", Label{"route", "lookup"})
}

// TestAppendPromExposition checks the hand-rolled writer's structural
// contract: one HELP/TYPE pair per family, cumulative monotone buckets
// ending in +Inf == _count, no duplicate series lines.
func TestAppendPromExposition(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("spinner_req_seconds", "request latency", UnitSeconds, Label{"route", "lookup"})
	h2 := r.NewHistogram("spinner_req_seconds", "request latency", UnitSeconds, Label{"route", "mutate"})
	g := r.NewGauge("spinner_open_things", "open things")
	r.NewGaugeFunc("spinner_lag_seconds", "computed lag", func() float64 { return 1.5 })
	for i := 0; i < 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	h2.Record(3 * time.Millisecond)
	g.Set(7)

	out := string(r.AppendProm(nil))
	for _, want := range []string{
		"# TYPE spinner_req_seconds histogram",
		"# TYPE spinner_open_things gauge",
		"spinner_open_things 7",
		"spinner_lag_seconds 1.5",
		`spinner_req_seconds_bucket{route="lookup",le="+Inf"} 1000`,
		`spinner_req_seconds_count{route="lookup"} 1000`,
		`spinner_req_seconds_count{route="mutate"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if c := strings.Count(out, "# TYPE spinner_req_seconds histogram"); c != 1 {
		t.Fatalf("family header repeated %d times", c)
	}
	// No duplicate series lines.
	seen := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := strings.SplitN(line, " ", 2)[0]
		if seen[name] {
			t.Fatalf("duplicate series %q", name)
		}
		seen[name] = true
	}
	// Bucket cumulative counts must be monotone for each series.
	var prev int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, `spinner_req_seconds_bucket{route="lookup"`) {
			continue
		}
		v, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("non-monotone buckets at %q", line)
		}
		prev = v
	}
}

func TestEscapeLabel(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("spinner_esc", "", Label{"path", `a"b\c` + "\n"})
	g.Set(1)
	out := string(r.AppendProm(nil))
	if !strings.Contains(out, `path="a\"b\\c\n"`) {
		t.Fatalf("label not escaped: %s", out)
	}
}

// TestServeMetricsCoverage asserts the exposition table covers every
// ServeSnapshot field exactly once — adding a counter without exporting
// it (or exporting a stale name) fails here.
func TestServeMetricsCoverage(t *testing.T) {
	covered := map[string]int{}
	names := map[string]int{}
	for _, m := range ServeMetrics {
		covered[m.Field]++
		names[m.Name]++
	}
	typ := reflect.TypeOf(ServeSnapshot{})
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i).Name
		if covered[f] != 1 {
			t.Errorf("ServeSnapshot.%s covered %d times in ServeMetrics, want exactly 1", f, covered[f])
		}
		delete(covered, f)
	}
	for f := range covered {
		t.Errorf("ServeMetrics names unknown field %s", f)
	}
	for n, c := range names {
		if c != 1 {
			t.Errorf("metric name %s used %d times", n, c)
		}
		if !strings.HasPrefix(n, "spinner_") {
			t.Errorf("metric name %s lacks the spinner_ prefix", n)
		}
	}
	// The rendered text must carry every name.
	snap := ServeSnapshot{Lookups: 5, WatchStreams: 2}
	out := string(AppendServeProm(nil, &snap))
	if !strings.Contains(out, "spinner_lookups_total 5") || !strings.Contains(out, "spinner_watch_streams 2") {
		t.Fatalf("serve exposition missing values:\n%s", out)
	}
}
