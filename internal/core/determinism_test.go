package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// TestPartitionDeterminismRegression pins the engine-rework guarantee:
// for a fixed Options.Seed, Partition and PartitionWeighted must return
// bit-identical labels — and identical per-run message totals, superstep
// counts and iteration histories — across repeated runs, at both 1 and 4
// workers. The asynchronous per-worker load view (§IV-A4) makes results
// legitimately depend on the worker count, so runs are compared within
// each worker count, not across them.
func TestPartitionDeterminismRegression(t *testing.T) {
	g := gen.WattsStrogatz(2000, 8, 0.3, 7)
	w := graph.Convert(g)
	for _, workers := range []int{1, 4} {
		for name, run := range map[string]func() (*Result, error){
			"Partition": func() (*Result, error) {
				opts := DefaultOptions(8)
				opts.Seed = 42
				opts.NumWorkers = workers
				p, err := NewPartitioner(opts)
				if err != nil {
					t.Fatal(err)
				}
				return p.Partition(g)
			},
			"PartitionWeighted": func() (*Result, error) {
				opts := DefaultOptions(8)
				opts.Seed = 42
				opts.NumWorkers = workers
				p, err := NewPartitioner(opts)
				if err != nil {
					t.Fatal(err)
				}
				return p.PartitionWeighted(w)
			},
		} {
			a, err := run()
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			b, err := run()
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if a.Supersteps != b.Supersteps || a.Iterations != b.Iterations {
				t.Fatalf("%s workers=%d: supersteps %d/%d iterations %d/%d differ",
					name, workers, a.Supersteps, b.Supersteps, a.Iterations, b.Iterations)
			}
			if a.Messages != b.Messages {
				t.Fatalf("%s workers=%d: message totals %d vs %d differ", name, workers, a.Messages, b.Messages)
			}
			for i := range a.Labels {
				if a.Labels[i] != b.Labels[i] {
					t.Fatalf("%s workers=%d: label of vertex %d differs: %d vs %d",
						name, workers, i, a.Labels[i], b.Labels[i])
				}
			}
			for i := range a.History {
				if a.History[i].Score != b.History[i].Score || a.History[i].Migrations != b.History[i].Migrations {
					t.Fatalf("%s workers=%d: iteration %d metrics differ", name, workers, i)
				}
			}
		}
	}
}
