package core

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/pregel"
)

// Partitioner computes k-way balanced partitionings with the Spinner
// algorithm. A Partitioner is immutable and safe for reuse across runs.
type Partitioner struct {
	opts Options
}

// NewPartitioner validates opts (filling defaults) and returns a
// Partitioner.
func NewPartitioner(opts Options) (*Partitioner, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	return &Partitioner{opts: opts}, nil
}

// Options returns the normalized options in effect.
func (p *Partitioner) Options() Options { return p.opts }

// Partition partitions g from scratch. Directed graphs are first converted
// to the weighted undirected form with the in-engine NeighborPropagation /
// NeighborDiscovery supersteps (Eq. 3); g should be deduplicated (use
// graph.Builder) since reciprocal detection assumes simple graphs.
func (p *Partitioner) Partition(g *graph.Graph) (*Result, error) {
	vs := verticesFromGraph(g)
	prog := newProgram(p.opts, true, nil, nil)
	return p.run(prog, vs)
}

// PartitionWeighted partitions an already-converted weighted undirected
// graph from scratch, skipping the conversion supersteps.
func (p *Partitioner) PartitionWeighted(w *graph.Weighted) (*Result, error) {
	vs := verticesFromWeighted(w)
	prog := newProgram(p.opts, false, nil, nil)
	return p.run(prog, vs)
}

// Adapt incrementally repartitions w after graph changes (§III-D). prev
// holds the previous labels; if w has grown, vertices beyond len(prev) are
// new and are seeded on the least-loaded partitions so the balance
// constraint is not violated. affected optionally lists the vertices
// adjacent to the changes; it is consulted only when Options.AffectedOnly
// restricts migration evaluation (the paper's default lets every vertex
// participate, and so does ours when AffectedOnly is false).
func (p *Partitioner) Adapt(w *graph.Weighted, prev []int32, affected []graph.VertexID) (*Result, error) {
	n := w.NumVertices()
	if len(prev) > n {
		return nil, fmt.Errorf("core: previous labeling has %d labels but graph has %d vertices", len(prev), n)
	}
	for v, l := range prev {
		if l < 0 || int(l) >= p.opts.K {
			return nil, fmt.Errorf("core: previous label %d of vertex %d outside [0,%d)", l, v, p.opts.K)
		}
	}
	init := make([]int32, n)
	copy(init, prev)
	SeedNewVertices(w, init, len(prev), p.opts.K)

	var mask []bool
	if p.opts.AffectedOnly {
		mask = make([]bool, n)
		for v := len(prev); v < n; v++ {
			mask[v] = true
		}
		for _, v := range affected {
			if v >= 0 && int(v) < n {
				mask[v] = true
			}
		}
	}
	prog := newProgram(p.opts, false, init, mask)
	return p.run(prog, verticesFromWeighted(w))
}

// Resize adapts a partitioning from oldK partitions to Options.K
// partitions (§III-E). When partitions are added, each vertex moves to a
// uniformly chosen new partition with probability n/(k+n) (Eq. 11); when
// partitions are removed, vertices on removed partitions move to a
// uniformly chosen surviving one. The LPA iterations then repair locality.
func (p *Partitioner) Resize(w *graph.Weighted, prev []int32, oldK int) (*Result, error) {
	if len(prev) != w.NumVertices() {
		return nil, fmt.Errorf("core: previous labeling has %d labels but graph has %d vertices", len(prev), w.NumVertices())
	}
	if oldK < 1 {
		return nil, fmt.Errorf("core: oldK=%d", oldK)
	}
	init, err := ElasticRelabel(prev, oldK, p.opts.K, p.opts.Seed)
	if err != nil {
		return nil, err
	}
	prog := newProgram(p.opts, false, init, nil)
	return p.run(prog, verticesFromWeighted(w))
}

// run drives the Pregel engine and packages the Result.
func (p *Partitioner) run(prog *program, vs []pregel.Vertex[vval, eval]) (*Result, error) {
	start := time.Now()
	cfg := pregel.Config{
		NumWorkers:    p.opts.NumWorkers,
		Seed:          p.opts.Seed,
		MaxSupersteps: 3 + 2*p.opts.MaxIterations + 2,
	}
	var eng *pregel.Engine[vval, eval, msg]
	if hook := p.opts.IterationSnapshot; hook != nil {
		// An LPA iteration completes when the master appends its metrics
		// entry, so history growth is the snapshot signal; the engine calls
		// this after the barrier, when vertex values are quiescent.
		snapped := 0
		cfg.AfterSuperstep = func(int) {
			if len(prog.history) == snapped {
				return
			}
			snapped = len(prog.history)
			labels := make([]int32, len(vs))
			for i := range eng.Vertices() {
				labels[i] = eng.Vertices()[i].Value.label
			}
			hook(snapped, labels)
		}
	}
	eng = pregel.NewEngine[vval, eval, msg](cfg, prog)
	prog.register(eng)
	if err := eng.SetVertices(vs); err != nil {
		return nil, err
	}
	steps, err := eng.Run()
	if err != nil {
		return nil, err
	}
	labels := make([]int32, len(vs))
	for i := range eng.Vertices() {
		labels[i] = eng.Vertices()[i].Value.label
	}
	var msgs int64
	durations := make([]time.Duration, 0, len(eng.Stats()))
	for _, st := range eng.Stats() {
		msgs += st.TotalSent()
		durations = append(durations, st.Duration)
	}
	return &Result{
		Labels:             labels,
		K:                  p.opts.K,
		Iterations:         len(prog.history),
		Converged:          prog.converged,
		History:            prog.history,
		Supersteps:         steps,
		Messages:           msgs,
		Runtime:            time.Since(start),
		SuperstepDurations: durations,
	}, nil
}

// verticesFromGraph loads a (possibly directed) graph as weight-1 edges;
// the conversion supersteps then fix up weights and reverse edges.
// Self-loops are dropped.
func verticesFromGraph(g *graph.Graph) []pregel.Vertex[vval, eval] {
	n := g.NumVertices()
	vs := make([]pregel.Vertex[vval, eval], n)
	// All edge lists live in one flat arena, each vertex owning a
	// capacity-clamped window with 2× headroom so NeighborDiscovery can
	// append reverse edges in place; a vertex whose in-degree outruns the
	// headroom copies out of the arena on growth, which is safe because the
	// windows cannot overlap.
	var totalDeg int
	for i := 0; i < n; i++ {
		totalDeg += g.OutDegree(graph.VertexID(i))
	}
	arena := make([]pregel.Edge[eval], 0, 2*totalDeg)
	off := 0
	for i := range vs {
		vs[i].ID = graph.VertexID(i)
		nbrs := g.Neighbors(graph.VertexID(i))
		window := 2 * len(nbrs)
		es := arena[off : off : off+window]
		off += window
		for _, to := range nbrs {
			if to == graph.VertexID(i) {
				continue
			}
			es = append(es, pregel.Edge[eval]{To: to, Value: eval{weight: 1, label: -1}})
		}
		vs[i].Edges = es
	}
	// Undirected graphs store both directions, so NeighborDiscovery sees a
	// reciprocal announcement for every edge and assigns weight 2, matching
	// the paper's message-count semantics without special-casing here.
	return vs
}

// verticesFromWeighted loads a converted weighted undirected graph. The
// weighted path skips the conversion supersteps, so edge lists never grow
// and the arena windows are exact.
func verticesFromWeighted(w *graph.Weighted) []pregel.Vertex[vval, eval] {
	n := w.NumVertices()
	vs := make([]pregel.Vertex[vval, eval], n)
	var totalDeg int
	for i := 0; i < n; i++ {
		totalDeg += w.Degree(graph.VertexID(i))
	}
	arena := make([]pregel.Edge[eval], totalDeg)
	off := 0
	for i := range vs {
		vs[i].ID = graph.VertexID(i)
		arcs := w.Neighbors(graph.VertexID(i))
		es := arena[off : off+len(arcs) : off+len(arcs)]
		off += len(arcs)
		for j, a := range arcs {
			es[j] = pregel.Edge[eval]{To: a.To, Value: eval{weight: a.Weight, label: -1}}
		}
		vs[i].Edges = es
	}
	return vs
}
