package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
)

func TestKGreaterThanVertices(t *testing.T) {
	w := graph.NewWeighted(5)
	w.AddEdge(0, 1, 1)
	w.AddEdge(1, 2, 1)
	opts := DefaultOptions(16)
	opts.Seed = 201
	res, err := mustPartitioner(t, opts).PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.ValidateLabels(res.Labels, 16); err != nil {
		t.Fatal(err)
	}
}

func TestSingleVertex(t *testing.T) {
	w := graph.NewWeighted(1)
	opts := DefaultOptions(2)
	res, err := mustPartitioner(t, opts).PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != 1 {
		t.Fatal("missing label")
	}
}

func TestMoreWorkersThanVerticesCore(t *testing.T) {
	w := graph.NewWeighted(6)
	for i := 0; i < 5; i++ {
		w.AddEdge(graph.VertexID(i), graph.VertexID(i+1), 1)
	}
	opts := DefaultOptions(2)
	opts.NumWorkers = 32
	opts.Seed = 203
	res, err := mustPartitioner(t, opts).PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.ValidateLabels(res.Labels, 2); err != nil {
		t.Fatal(err)
	}
}

func TestIsolatedVerticesGetLabels(t *testing.T) {
	// Isolated vertices have zero degree and zero load; they must still be
	// labeled and must not crash the score function.
	w := graph.NewWeighted(100)
	for i := 0; i < 50; i += 2 {
		w.AddEdge(graph.VertexID(i), graph.VertexID(i+1), 1)
	}
	opts := DefaultOptions(4)
	opts.Seed = 207
	res, err := mustPartitioner(t, opts).PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.ValidateLabels(res.Labels, 4); err != nil {
		t.Fatal(err)
	}
}

func TestFirstIterationTime(t *testing.T) {
	g := gen.WattsStrogatz(1000, 6, 0.3, 209)
	w := graph.Convert(g)
	opts := DefaultOptions(4)
	opts.Seed = 211
	res, err := mustPartitioner(t, opts).PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}
	d := res.FirstIterationTime()
	if d <= 0 {
		t.Fatalf("first iteration time %v", d)
	}
	if d > res.Runtime {
		t.Fatalf("first iteration %v exceeds total runtime %v", d, res.Runtime)
	}
	if len(res.SuperstepDurations) != res.Supersteps {
		t.Fatalf("%d durations for %d supersteps", len(res.SuperstepDurations), res.Supersteps)
	}
}

func TestFirstIterationTimeNoIterations(t *testing.T) {
	r := &Result{Supersteps: 1, Iterations: 0, SuperstepDurations: nil}
	if r.FirstIterationTime() != 0 {
		t.Fatal("empty run reported nonzero iteration time")
	}
}

func TestConvertPathMatchesWeightedPath(t *testing.T) {
	// Partitioning via the in-engine conversion must see the same weighted
	// structure as host-side graph.Convert: verify by checking the total
	// load both report (via balance at k=1... instead compare φ on the
	// same labels). Run convert-path, then evaluate its labels on the
	// host-converted graph, and check history rho consistency.
	g := gen.BarabasiAlbert(1500, 6, 213)
	opts := DefaultOptions(8)
	opts.Seed = 215
	res, err := mustPartitioner(t, opts).Partition(g)
	if err != nil {
		t.Fatal(err)
	}
	w := graph.Convert(g)
	want := metrics.Rho(w, res.Labels, 8)
	got := res.FinalRho()
	if diff := want - got; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("engine-tracked rho %.6f != recomputed %.6f: conversion paths disagree", got, want)
	}
}

func TestHistoryMigrationsBounded(t *testing.T) {
	g := gen.WattsStrogatz(1000, 6, 0.3, 217)
	w := graph.Convert(g)
	opts := DefaultOptions(4)
	opts.Seed = 219
	res, err := mustPartitioner(t, opts).PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res.History {
		if it.Migrations < 0 || it.Migrations > int64(w.NumVertices()) {
			t.Fatalf("iteration %d: migrations=%d out of range", it.Iteration, it.Migrations)
		}
		if it.CandidateLoad < 0 {
			t.Fatalf("iteration %d: negative candidate load", it.Iteration)
		}
	}
}
