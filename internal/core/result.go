package core

import (
	"fmt"
	"time"
)

// IterationMetrics records the evolution of the partitioning quality during
// one LPA iteration; the sequence reproduces Fig. 4 of the paper.
type IterationMetrics struct {
	// Iteration is the 1-based LPA iteration number.
	Iteration int
	// Score is score(G) (Eq. 10) measured at the ComputeScores step.
	Score float64
	// Phi is the ratio of local edge weight before this iteration's
	// migrations.
	Phi float64
	// Rho is the maximum normalized load after this iteration's migrations.
	Rho float64
	// Migrations is the number of vertices that changed label.
	Migrations int64
	// CandidateLoad is Σ_l m(l): the total load that wanted to move.
	CandidateLoad float64
	// Loads is the post-migration load vector b(l) — the state vector x_t
	// of the §III-C convergence analysis. Used by the analysis helpers to
	// verify Proposition 1's exponential convergence empirically.
	Loads []float64
}

// Result is the outcome of a partitioning run.
type Result struct {
	// Labels assigns each vertex its partition in [0, K).
	Labels []int32
	// K is the number of partitions.
	K int
	// Iterations is the number of LPA iterations executed.
	Iterations int
	// Converged reports whether the run halted via the (ε, w) steady-state
	// heuristic rather than hitting MaxIterations.
	Converged bool
	// History holds per-iteration metrics (Fig. 4 curves).
	History []IterationMetrics
	// Supersteps is the total number of Pregel supersteps, including
	// conversion and initialization.
	Supersteps int
	// Messages is the total number of Pregel messages exchanged; the
	// incremental-adaptation experiments (Fig. 7a) report savings in this
	// quantity as the network-load proxy.
	Messages int64
	// Runtime is the wall-clock partitioning time.
	Runtime time.Duration
	// SuperstepDurations holds the wall-clock time of each Pregel
	// superstep, in order (conversion and initialization steps included).
	// The scalability experiments (Fig. 6) report the first LPA iteration:
	// the first ComputeScores + ComputeMigrations pair.
	SuperstepDurations []time.Duration
}

// FirstIterationTime returns the wall-clock time of the first LPA
// iteration (ComputeScores + ComputeMigrations), the quantity the paper's
// scalability study measures (§V-B). Returns 0 if no iteration ran.
func (r *Result) FirstIterationTime() time.Duration {
	offset := r.Supersteps - 2*r.Iterations
	if r.Iterations == 0 || offset < 0 || offset+1 >= len(r.SuperstepDurations) {
		return 0
	}
	return r.SuperstepDurations[offset] + r.SuperstepDurations[offset+1]
}

// FinalPhi returns the locality recorded at the last iteration, or 0 if no
// iterations ran.
func (r *Result) FinalPhi() float64 {
	if len(r.History) == 0 {
		return 0
	}
	return r.History[len(r.History)-1].Phi
}

// FinalRho returns the balance recorded at the last iteration, or 1.
func (r *Result) FinalRho() float64 {
	if len(r.History) == 0 {
		return 1
	}
	return r.History[len(r.History)-1].Rho
}

// String summarizes the run.
func (r *Result) String() string {
	return fmt.Sprintf("spinner: k=%d iters=%d converged=%v φ=%.3f ρ=%.3f msgs=%d",
		r.K, r.Iterations, r.Converged, r.FinalPhi(), r.FinalRho(), r.Messages)
}
