package core

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
)

func TestCapacityFractionsValidation(t *testing.T) {
	if _, err := NewPartitioner(Options{K: 3, CapacityFractions: []float64{0.5, 0.5}}); err == nil {
		t.Fatal("wrong-length fractions accepted")
	}
	if _, err := NewPartitioner(Options{K: 2, CapacityFractions: []float64{1, 0}}); err == nil {
		t.Fatal("zero fraction accepted")
	}
	if _, err := NewPartitioner(Options{K: 2, CapacityFractions: []float64{-1, 2}}); err == nil {
		t.Fatal("negative fraction accepted")
	}
	// Unnormalized fractions are normalized.
	p, err := NewPartitioner(Options{K: 2, CapacityFractions: []float64{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	f := p.Options().CapacityFractions
	if math.Abs(f[0]-0.5) > 1e-12 || math.Abs(f[1]-0.5) > 1e-12 {
		t.Fatalf("fractions not normalized: %v", f)
	}
}

func TestHeterogeneousCapacitiesShapeLoads(t *testing.T) {
	// A 4-way split where partition 0 is a double-size machine: it should
	// attract roughly 40% of the load, the rest ~20% each.
	g := gen.WattsStrogatz(4000, 10, 0.3, 301)
	w := graph.Convert(g)
	fractions := []float64{0.4, 0.2, 0.2, 0.2}
	opts := DefaultOptions(4)
	opts.Seed = 303
	opts.CapacityFractions = fractions
	res, err := mustPartitioner(t, opts).PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}
	loads := metrics.Loads(w, res.Labels, 4)
	var total int64
	for _, b := range loads {
		total += b
	}
	share0 := float64(loads[0]) / float64(total)
	if share0 < 0.30 || share0 > 0.45 {
		t.Fatalf("big partition holds %.0f%% of load, want ~40%%", 100*share0)
	}
	for l := 1; l < 4; l++ {
		share := float64(loads[l]) / float64(total)
		if share < 0.12 || share > 0.28 {
			t.Fatalf("partition %d holds %.0f%% of load, want ~20%%", l, 100*share)
		}
	}
	// Weighted balance near c.
	if rho := metrics.RhoWeighted(w, res.Labels, fractions); rho > 1.15 {
		t.Fatalf("weighted rho=%.3f", rho)
	}
}

func TestHeterogeneousLocalityStillGood(t *testing.T) {
	g, _ := gen.PlantedPartition(2000, 4, 12, 2, 307)
	w := graph.Convert(g)
	opts := DefaultOptions(4)
	opts.Seed = 311
	opts.CapacityFractions = []float64{0.34, 0.22, 0.22, 0.22}
	res, err := mustPartitioner(t, opts).PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}
	if phi := metrics.Phi(w, res.Labels); phi < 0.55 {
		t.Fatalf("heterogeneous phi=%.3f", phi)
	}
}

func TestRhoWeightedUniformMatchesRho(t *testing.T) {
	g := gen.ErdosRenyi(300, 900, true, 313)
	w := graph.Convert(g)
	labels := make([]int32, 300)
	for i := range labels {
		labels[i] = int32(i % 4)
	}
	uniform := []float64{0.25, 0.25, 0.25, 0.25}
	a := metrics.Rho(w, labels, 4)
	b := metrics.RhoWeighted(w, labels, uniform)
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("RhoWeighted(uniform)=%v != Rho=%v", b, a)
	}
}

func TestRhoWeightedEmpty(t *testing.T) {
	w := graph.NewWeighted(4)
	if metrics.RhoWeighted(w, make([]int32, 4), []float64{0.5, 0.5}) != 1 {
		t.Fatal("edgeless weighted rho != 1")
	}
}

// TestHoeffdingBound empirically validates Proposition 3: the probability
// that a partition's post-migration load exceeds C + ε·r(l) decays with the
// number of migrating vertices. We run many independent migration rounds
// and check the violation frequency stays below the analytic bound.
func TestHoeffdingBound(t *testing.T) {
	g := gen.WattsStrogatz(3000, 8, 0.3, 317)
	w := graph.Convert(g)
	const k = 8
	violations, trials := 0, 0
	for seed := uint64(0); seed < 12; seed++ {
		opts := DefaultOptions(k)
		opts.Seed = 317 + seed
		opts.MaxIterations = 20
		opts.W = 1000 // don't halt early; we want many migration rounds
		res, err := mustPartitioner(t, opts).PartitionWeighted(w)
		if err != nil {
			t.Fatal(err)
		}
		capBound := opts.C * 1.10 // C plus ε r(l) slack with ε generous
		for _, it := range res.History {
			trials++
			if it.Rho > capBound {
				violations++
			}
		}
	}
	if trials == 0 {
		t.Fatal("no trials")
	}
	frac := float64(violations) / float64(trials)
	// Prop. 3 bounds each round's violation probability well below 1; with
	// the generous ε the empirical frequency must be small.
	if frac > 0.05 {
		t.Fatalf("capacity exceeded in %.1f%% of iterations (bound ~5%%)", 100*frac)
	}
}
