package core

import (
	"math"
	"slices"

	"repro/internal/pregel"
)

// Algorithm phases (Fig. 2 of the paper). Each phase maps onto one or more
// Pregel supersteps; the master advances the phase between supersteps.
const (
	phaseNeighborPropagation = iota // directed graph: announce ID to out-neighbors
	phaseNeighborDiscovery          // create reverse edges / weight-2 reciprocal edges
	phaseInitialization             // label assignment + load aggregation
	phaseComputeScores              // pick candidate label maximizing Eq. 8
	phaseComputeMigrations          // probabilistic migration (Eq. 14)
)

// Aggregator names.
const (
	aggLoads  = "loads"  // persistent: b(l) per label (Eq. 6)
	aggCand   = "cand"   // per-iteration: m(l), load wanting to migrate to l (Eq. 13)
	aggProbs  = "probs"  // master-published migration probabilities (Eq. 14)
	aggScore  = "score"  // per-iteration: score(G) (Eq. 10)
	aggLocalW = "localw" // per-iteration: Σ_v (weight to same-label neighbors)
	aggMigs   = "migs"   // per-iteration: number of migrations
	aggTotal  = "total"  // persistent: total load T = Σ_v deg_w(v)
)

// vval is the per-vertex state.
type vval struct {
	label int32
	cand  int32   // candidate label for this iteration, -1 if none
	degW  float64 // weighted degree, fixed at Initialization
	dirty bool    // AffectedOnly: may evaluate migration
}

// eval is the per-edge state: the edge weight of Eq. 3 and the neighbor's
// last announced label (the Giraph implementation stores exactly this in
// the edge value to avoid re-sending labels every superstep).
type eval struct {
	weight int32
	label  int32
}

// msg announces the sender and its (new) label. During the conversion
// phase the label field is unused.
type msg struct {
	src   pregel.VertexID
	label int32
}

// workerScratch is the per-worker shared state of §IV-A4: an
// asynchronously updated view of the partition loads, plus reusable
// scratch buffers for per-label neighborhood weights.
type workerScratch struct {
	refreshedAt int // superstep for which localLoads is current
	localLoads  []float64
	labelW      []float64
	touched     []int32
}

// program is the Spinner vertex program plus its master state. One
// instance drives one partitioning run.
type program struct {
	opts       Options
	k          int
	convert    bool    // run NeighborPropagation/Discovery first
	initLabels []int32 // nil → uniform random initialization
	affected   []bool  // AffectedOnly: initially-dirty vertices (nil → all dirty)

	// Master state (written only in MasterCompute, read by workers in the
	// following superstep).
	phase      int
	iter       int // 1-based LPA iteration, set when entering ComputeScores
	totalLoad  float64
	capacities []float64 // C_l = c·T·f_l (Eq. 5; homogeneous f_l = 1/k)

	pendingScore float64
	pendingPhi   float64
	pendingCand  float64
	history      []IterationMetrics
	bestScore    float64
	haveScore    bool
	steady       int
	converged    bool
}

func newProgram(opts Options, convert bool, initLabels []int32, affected []bool) *program {
	p := &program{opts: opts, k: opts.K, convert: convert, initLabels: initLabels, affected: affected}
	if convert {
		p.phase = phaseNeighborPropagation
	} else {
		p.phase = phaseInitialization
	}
	return p
}

// register declares the aggregators on the engine.
func (p *program) register(e *pregel.Engine[vval, eval, msg]) {
	e.RegisterAggregator(aggLoads, pregel.AggSum, p.k, true)
	e.RegisterAggregator(aggCand, pregel.AggSum, p.k, false)
	e.RegisterAggregator(aggProbs, pregel.AggSum, p.k, false)
	e.RegisterAggregator(aggScore, pregel.AggSum, 1, false)
	e.RegisterAggregator(aggLocalW, pregel.AggSum, 1, false)
	e.RegisterAggregator(aggMigs, pregel.AggSum, 1, false)
	e.RegisterAggregator(aggTotal, pregel.AggSum, 1, true)
}

// InitWorker implements pregel.WorkerInitializer. The scratch buffers are
// sized for k labels up front so the per-vertex hot path never grows them.
func (p *program) InitWorker(workerID, numWorkers int) any {
	return &workerScratch{
		refreshedAt: -1,
		localLoads:  make([]float64, p.k),
		labelW:      make([]float64, p.k),
		touched:     make([]int32, 0, p.k),
	}
}

// Compute implements pregel.Program.
func (p *program) Compute(ctx *pregel.Context[vval, eval, msg], v *pregel.Vertex[vval, eval], msgs []msg) {
	switch p.phase {
	case phaseNeighborPropagation:
		p.neighborPropagation(ctx, v)
	case phaseNeighborDiscovery:
		p.neighborDiscovery(ctx, v, msgs)
	case phaseInitialization:
		p.initialize(ctx, v)
	case phaseComputeScores:
		p.computeScores(ctx, v, msgs)
	case phaseComputeMigrations:
		p.computeMigrations(ctx, v)
	}
}

// neighborPropagation: every vertex announces its ID along its out-edges so
// the reverse direction can be discovered (the Pregel data model only
// stores out-edges).
func (p *program) neighborPropagation(ctx *pregel.Context[vval, eval, msg], v *pregel.Vertex[vval, eval]) {
	for i := range v.Edges {
		v.Edges[i].Value = eval{weight: 1, label: -1}
		ctx.SendTo(v.Edges[i].To, msg{src: v.ID})
	}
	ctx.CountEdges(len(v.Edges))
}

// neighborDiscovery: for each received announcement, either bump an
// existing reciprocal edge to weight 2 (Eq. 3, AND case) or create the
// missing reverse edge with weight 1 (XOR case).
func (p *program) neighborDiscovery(ctx *pregel.Context[vval, eval, msg], v *pregel.Vertex[vval, eval], msgs []msg) {
	for _, m := range msgs {
		found := false
		for i := range v.Edges {
			if v.Edges[i].To == m.src {
				if !p.opts.IgnoreEdgeWeights {
					v.Edges[i].Value.weight = 2
				}
				found = true
				break
			}
		}
		if !found {
			v.Edges = append(v.Edges, pregel.Edge[eval]{To: m.src, Value: eval{weight: 1, label: -1}})
		}
	}
	ctx.CountEdges(len(msgs))
}

// initialize: assign the starting label, cache the weighted degree,
// contribute it to the load counters, and announce the label to all
// neighbors. Edges are sorted by target so later label updates can use
// binary search.
func (p *program) initialize(ctx *pregel.Context[vval, eval, msg], v *pregel.Vertex[vval, eval]) {
	slices.SortFunc(v.Edges, func(a, b pregel.Edge[eval]) int { return int(a.To) - int(b.To) })
	var degW float64
	for i := range v.Edges {
		degW += float64(v.Edges[i].Value.weight)
	}
	var label int32
	if p.initLabels != nil {
		label = p.initLabels[v.ID]
	} else {
		label = ctx.Rand().Int31n(int32(p.k))
	}
	dirty := true
	if p.affected != nil {
		dirty = p.affected[v.ID]
	}
	v.Value = vval{label: label, cand: -1, degW: degW, dirty: dirty}
	ctx.Aggregate(aggLoads, int(label), degW)
	ctx.Aggregate(aggTotal, 0, degW)
	for i := range v.Edges {
		ctx.SendTo(v.Edges[i].To, msg{src: v.ID, label: label})
	}
	ctx.CountEdges(len(v.Edges))
}

// updateEdgeLabels applies incoming label announcements to the edge values
// (edges are sorted by target; binary search).
func updateEdgeLabels(v *pregel.Vertex[vval, eval], msgs []msg) {
	for _, m := range msgs {
		lo, hi := 0, len(v.Edges)
		for lo < hi {
			mid := (lo + hi) / 2
			if v.Edges[mid].To < m.src {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(v.Edges) && v.Edges[lo].To == m.src {
			v.Edges[lo].Value.label = m.label
		}
	}
}

// computeScores is the first superstep of an LPA iteration: each vertex
// refreshes its view of neighbor labels, evaluates score”(v, l) (Eq. 8)
// for every label in its neighborhood, and becomes a migration candidate
// if some label beats its current one.
func (p *program) computeScores(ctx *pregel.Context[vval, eval, msg], v *pregel.Vertex[vval, eval], msgs []msg) {
	ws := ctx.WorkerState().(*workerScratch)
	if ws.refreshedAt != ctx.Superstep() {
		ctx.AggregatedVector(aggLoads, ws.localLoads)
		ws.refreshedAt = ctx.Superstep()
	}
	if len(msgs) > 0 {
		updateEdgeLabels(v, msgs)
		v.Value.dirty = true
	}
	ctx.CountEdges(len(v.Edges) + len(msgs))

	cur := v.Value.label
	degW := v.Value.degW

	// Accumulate per-label neighborhood weight into worker scratch.
	labelW := ws.labelW
	touched := ws.touched[:0]
	for i := range v.Edges {
		l := v.Edges[i].Value.label
		if l < 0 {
			continue // neighbor not yet announced (cannot happen after iter 1)
		}
		w := float64(v.Edges[i].Value.weight)
		if p.opts.IgnoreEdgeWeights {
			w = 1
		}
		if labelW[l] == 0 {
			touched = append(touched, l)
		}
		labelW[l] += w
	}

	// score''(v, l) = labelW[l]/degW − b(l)/C  (Eq. 8). When degW is zero
	// the locality term is defined as 0 and only the penalty drives the
	// choice, sending isolated vertices toward the least-loaded partition.
	normDeg := degW
	if p.opts.IgnoreEdgeWeights {
		normDeg = float64(len(v.Edges))
	}
	loads := ws.localLoads
	if p.opts.DisableAsyncWorkerState {
		// Score against the synchronized loads directly.
		loads = nil
	}

	curScore := p.labelScore(ctx, loads, labelW, normDeg, cur)
	ctx.Aggregate(aggScore, 0, curScore)
	ctx.Aggregate(aggLocalW, 0, labelW[cur])

	v.Value.cand = -1
	if p.opts.AffectedOnly && !v.Value.dirty {
		// Clean vertex: contributes to the global score but does not
		// evaluate migration.
		for _, l := range touched {
			labelW[l] = 0
		}
		ws.touched = touched[:0]
		return
	}

	// Find the best label among the neighborhood labels and the current
	// label, with the paper's tie-break: prefer the current label, else
	// choose uniformly among the tied maxima.
	const tieEps = 1e-12
	best := cur
	bestScore := curScore
	var ties int
	for _, l := range touched {
		if l == cur {
			continue
		}
		s := p.labelScore(ctx, loads, labelW, normDeg, l)
		switch {
		case s > bestScore+tieEps:
			best, bestScore, ties = l, s, 1
		case s > bestScore-tieEps: // tie
			if best == cur && !p.opts.RandomTieBreak {
				continue // keep current on ties
			}
			ties++
			if ctx.Rand().Intn(ties) == 0 {
				best = l
			}
		}
	}
	if best != cur {
		v.Value.cand = best
		ctx.Aggregate(aggCand, int(best), degW)
		if !p.opts.DisableAsyncWorkerState {
			// Asynchronous per-worker view (§IV-A4): subsequent vertices on
			// this worker see the tentative move.
			ws.localLoads[best] += degW
			ws.localLoads[cur] -= degW
		}
	}

	for _, l := range touched {
		labelW[l] = 0
	}
	ws.touched = touched[:0]
}

// labelScore evaluates score”(v, l) (Eq. 8) against either the worker's
// asynchronous load view (loads non-nil) or the synchronized aggregator.
// It is a method, not a closure, to keep the per-vertex hot path free of
// capture allocations.
func (p *program) labelScore(ctx *pregel.Context[vval, eval, msg], loads, labelW []float64, normDeg float64, l int32) float64 {
	b := 0.0
	if loads != nil {
		b = loads[l]
	} else {
		b = ctx.AggregatedValue(aggLoads, int(l))
	}
	s := -b / p.capacities[l]
	if normDeg > 0 {
		s += labelW[l] / normDeg
	}
	return s
}

// computeMigrations is the second superstep of an iteration: each candidate
// migrates with probability p = r(l)/m(l) (Eq. 14), updates the load
// counters, and announces its new label.
func (p *program) computeMigrations(ctx *pregel.Context[vval, eval, msg], v *pregel.Vertex[vval, eval]) {
	cand := v.Value.cand
	if cand < 0 {
		return
	}
	v.Value.cand = -1
	prob := 1.0
	if !p.opts.UnboundedMigration {
		prob = ctx.AggregatedValue(aggProbs, int(cand))
	}
	if prob < 1 && !ctx.Rand().Bool(prob) {
		return // retry in a later iteration
	}
	old := v.Value.label
	v.Value.label = cand
	ctx.Aggregate(aggLoads, int(old), -v.Value.degW)
	ctx.Aggregate(aggLoads, int(cand), v.Value.degW)
	ctx.Aggregate(aggMigs, 0, 1)
	for i := range v.Edges {
		ctx.SendTo(v.Edges[i].To, msg{src: v.ID, label: cand})
	}
	ctx.CountEdges(len(v.Edges))
}

// MasterCompute implements pregel.MasterProgram: it advances the phase
// machine, computes the migration probabilities, records per-iteration
// metrics, and applies the (ε, w) halting heuristic.
func (p *program) MasterCompute(m *pregel.Master) {
	switch p.phase {
	case phaseNeighborPropagation:
		p.phase = phaseNeighborDiscovery

	case phaseNeighborDiscovery:
		p.phase = phaseInitialization

	case phaseInitialization:
		p.totalLoad = m.Agg(aggTotal)[0]
		if p.totalLoad == 0 {
			// Edgeless graph: any labeling is optimal.
			p.converged = true
			m.Halt()
			return
		}
		p.capacities = make([]float64, p.k)
		for l := 0; l < p.k; l++ {
			f := 1 / float64(p.k)
			if p.opts.CapacityFractions != nil {
				f = p.opts.CapacityFractions[l]
			}
			p.capacities[l] = p.opts.C * p.totalLoad * f
		}
		p.phase = phaseComputeScores
		p.iter = 1

	case phaseComputeScores:
		// Publish migration probabilities for the coming superstep.
		loads := m.Agg(aggLoads)
		cand := m.Agg(aggCand)
		probs := make([]float64, p.k)
		var candTotal float64
		for l := 0; l < p.k; l++ {
			candTotal += cand[l]
			r := p.capacities[l] - loads[l]
			switch {
			case cand[l] <= 0 || r >= cand[l]:
				probs[l] = 1
			case r <= 0:
				probs[l] = 0
			default:
				probs[l] = r / cand[l]
			}
		}
		m.SetAgg(aggProbs, probs)
		p.pendingScore = m.Agg(aggScore)[0]
		p.pendingPhi = m.Agg(aggLocalW)[0] / p.totalLoad
		p.pendingCand = candTotal
		p.phase = phaseComputeMigrations

	case phaseComputeMigrations:
		loads := m.Agg(aggLoads)
		maxLoad := 0.0
		for _, b := range loads {
			if b > maxLoad {
				maxLoad = b
			}
		}
		rho := maxLoad / (p.totalLoad / float64(p.k))
		p.history = append(p.history, IterationMetrics{
			Iteration:     p.iter,
			Score:         p.pendingScore,
			Phi:           p.pendingPhi,
			Rho:           rho,
			Migrations:    int64(m.Agg(aggMigs)[0]),
			CandidateLoad: p.pendingCand,
			Loads:         append([]float64(nil), loads...),
		})

		// Halting heuristic (§III-C): the run is in a steady state once the
		// score fails to improve on its best value by more than ε
		// (relative) for w consecutive iterations. Comparing against the
		// best — not the previous — score makes plateau oscillations
		// (§III-C's limit-cycle concern) count as steady instead of
		// resetting the window.
		if p.haveScore {
			denom := math.Max(math.Abs(p.bestScore), 1)
			if (p.pendingScore-p.bestScore)/denom < p.opts.Epsilon {
				p.steady++
			} else {
				p.steady = 0
			}
		}
		if !p.haveScore || p.pendingScore > p.bestScore {
			p.bestScore = p.pendingScore
		}
		p.haveScore = true

		if p.steady >= p.opts.W {
			p.converged = true
			m.Halt()
			return
		}
		if p.iter >= p.opts.MaxIterations {
			m.Halt()
			return
		}
		p.iter++
		p.phase = phaseComputeScores
	}
}
