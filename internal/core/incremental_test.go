package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// partitionBase produces a converged base partitioning for adaptation tests.
func partitionBase(t *testing.T, w *graph.Weighted, k int) *Result {
	t.Helper()
	opts := DefaultOptions(k)
	opts.Seed = 100
	res, err := mustPartitioner(t, opts).PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAdaptCheaperAndStabler(t *testing.T) {
	// Fig. 7: adapting after a small change must cost far less than
	// repartitioning from scratch and move far fewer vertices.
	g := gen.WattsStrogatz(4000, 10, 0.15, 51)
	w := graph.Convert(g)
	base := partitionBase(t, w, 8)

	grown := w.Clone()
	mut := gen.GrowthBatch(grown, 0.02, 53)
	if _, err := mut.Apply(grown); err != nil {
		t.Fatal(err)
	}

	opts := DefaultOptions(8)
	opts.Seed = 101
	p := mustPartitioner(t, opts)

	adapted, err := p.Adapt(grown, base.Labels, mut.TouchedVertices())
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := p.PartitionWeighted(grown)
	if err != nil {
		t.Fatal(err)
	}

	if adapted.Iterations >= scratch.Iterations {
		t.Fatalf("adaptation took %d iterations vs scratch %d", adapted.Iterations, scratch.Iterations)
	}
	if adapted.Messages >= scratch.Messages {
		t.Fatalf("adaptation sent %d messages vs scratch %d", adapted.Messages, scratch.Messages)
	}
	moveAdapt := metrics.Difference(base.Labels, adapted.Labels)
	moveScratch := metrics.Difference(base.Labels, scratch.Labels)
	if moveAdapt > 0.3 {
		t.Fatalf("adaptation moved %.0f%% of vertices", 100*moveAdapt)
	}
	if moveAdapt >= moveScratch {
		t.Fatalf("adaptation (%.2f) not stabler than scratch (%.2f)", moveAdapt, moveScratch)
	}
	// Quality must remain comparable.
	if phi := metrics.Phi(grown, adapted.Labels); phi < 0.9*metrics.Phi(grown, scratch.Labels) {
		t.Fatalf("adapted phi=%.3f much worse than scratch", phi)
	}
	if rho := metrics.Rho(grown, adapted.Labels, 8); rho > 1.25 {
		t.Fatalf("adapted rho=%.3f", rho)
	}
}

func TestAdaptWithNewVertices(t *testing.T) {
	g := gen.WattsStrogatz(2000, 8, 0.2, 57)
	w := graph.Convert(g)
	base := partitionBase(t, w, 4)

	grown := w.Clone()
	first := grown.AddVertices(100)
	// Attach each new vertex to a few existing ones.
	mut := &graph.Mutation{}
	for i := 0; i < 100; i++ {
		nv := first + graph.VertexID(i)
		for j := 0; j < 3; j++ {
			mut.NewEdges = append(mut.NewEdges, graph.WeightedEdgeRecord{U: nv, V: graph.VertexID((i*37 + j*911) % 2000), Weight: 2})
		}
	}
	if _, err := mut.Apply(grown); err != nil {
		t.Fatal(err)
	}

	opts := DefaultOptions(4)
	opts.Seed = 59
	res, err := mustPartitioner(t, opts).Adapt(grown, base.Labels, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != 2100 {
		t.Fatalf("labels for %d vertices, want 2100", len(res.Labels))
	}
	if err := metrics.ValidateLabels(res.Labels, 4); err != nil {
		t.Fatal(err)
	}
	if rho := metrics.Rho(grown, res.Labels, 4); rho > 1.25 {
		t.Fatalf("rho=%.3f after growth", rho)
	}
}

func TestAdaptValidation(t *testing.T) {
	w := graph.NewWeighted(3)
	w.AddEdge(0, 1, 1)
	opts := DefaultOptions(2)
	p := mustPartitioner(t, opts)
	if _, err := p.Adapt(w, []int32{0, 0, 1, 1}, nil); err == nil {
		t.Fatal("too many previous labels accepted")
	}
	if _, err := p.Adapt(w, []int32{0, 7, 1}, nil); err == nil {
		t.Fatal("out-of-range previous label accepted")
	}
}

func TestAdaptNoChangesIsNearNoop(t *testing.T) {
	g := gen.WattsStrogatz(1500, 8, 0.2, 61)
	w := graph.Convert(g)
	base := partitionBase(t, w, 4)
	opts := DefaultOptions(4)
	opts.Seed = 63
	res, err := mustPartitioner(t, opts).Adapt(w, base.Labels, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := metrics.Difference(base.Labels, res.Labels); d > 0.15 {
		t.Fatalf("no-change adaptation moved %.0f%% of vertices", 100*d)
	}
	if res.Iterations > base.Iterations {
		t.Fatalf("no-change adaptation ran %d iterations vs base %d", res.Iterations, base.Iterations)
	}
}

func TestAffectedOnlyMode(t *testing.T) {
	g := gen.WattsStrogatz(2000, 8, 0.2, 67)
	w := graph.Convert(g)
	base := partitionBase(t, w, 4)

	grown := w.Clone()
	mut := gen.GrowthBatch(grown, 0.01, 69)
	if _, err := mut.Apply(grown); err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(4)
	opts.Seed = 71
	opts.AffectedOnly = true
	res, err := mustPartitioner(t, opts).Adapt(grown, base.Labels, mut.TouchedVertices())
	if err != nil {
		t.Fatal(err)
	}
	// Affected-only restarts must be extremely stable.
	if d := metrics.Difference(base.Labels, res.Labels); d > 0.10 {
		t.Fatalf("affected-only moved %.0f%% of vertices", 100*d)
	}
}

func TestResizeGrow(t *testing.T) {
	// Fig. 8: adding partitions and adapting.
	g := gen.WattsStrogatz(3000, 8, 0.2, 73)
	w := graph.Convert(g)
	base := partitionBase(t, w, 8)

	opts := DefaultOptions(10) // +2 partitions
	opts.Seed = 75
	res, err := mustPartitioner(t, opts).Resize(w, base.Labels, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.ValidateLabels(res.Labels, 10); err != nil {
		t.Fatal(err)
	}
	// New partitions must actually receive load.
	loads := metrics.Loads(w, res.Labels, 10)
	for l := 8; l < 10; l++ {
		if loads[l] == 0 {
			t.Fatalf("new partition %d empty", l)
		}
	}
	if rho := metrics.Rho(w, res.Labels, 10); rho > 1.3 {
		t.Fatalf("rho=%.3f after grow", rho)
	}
	// Stability: moved fraction ≈ p = 2/10 plus repair churn; far below the
	// ~96% a scratch run would shuffle.
	if d := metrics.Difference(base.Labels, res.Labels); d > 0.6 {
		t.Fatalf("grow moved %.0f%% of vertices", 100*d)
	}
}

func TestResizeShrink(t *testing.T) {
	g := gen.WattsStrogatz(3000, 8, 0.2, 77)
	w := graph.Convert(g)
	base := partitionBase(t, w, 8)

	opts := DefaultOptions(6)
	opts.Seed = 79
	res, err := mustPartitioner(t, opts).Resize(w, base.Labels, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.ValidateLabels(res.Labels, 6); err != nil {
		t.Fatal(err)
	}
	if rho := metrics.Rho(w, res.Labels, 6); rho > 1.3 {
		t.Fatalf("rho=%.3f after shrink", rho)
	}
}

func TestResizeValidation(t *testing.T) {
	w := graph.NewWeighted(2)
	w.AddEdge(0, 1, 1)
	opts := DefaultOptions(2)
	p := mustPartitioner(t, opts)
	if _, err := p.Resize(w, []int32{0}, 2); err == nil {
		t.Fatal("label length mismatch accepted")
	}
	if _, err := p.Resize(w, []int32{0, 0}, 0); err == nil {
		t.Fatal("oldK=0 accepted")
	}
}

func TestResizeSameKKeepsLabels(t *testing.T) {
	prev := []int32{0, 1, 2, 0}
	out, err := ElasticRelabel(prev, 3, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range prev {
		if out[i] != prev[i] {
			t.Fatal("same-k relabel changed labels")
		}
	}
}

func TestElasticRelabelGrowProbability(t *testing.T) {
	// With oldK=4 and newK=8, p = 4/8 = 0.5 of vertices move to labels 4..7.
	prev := make([]int32, 20000)
	for i := range prev {
		prev[i] = int32(i % 4)
	}
	out, err := ElasticRelabel(prev, 4, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := range out {
		if out[i] >= 4 {
			moved++
		} else if out[i] != prev[i] {
			t.Fatal("vertex moved to an old partition")
		}
	}
	frac := float64(moved) / float64(len(out))
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("moved fraction %.3f, want ~0.5", frac)
	}
}

func TestElasticRelabelShrinkRemovesHighLabels(t *testing.T) {
	prev := make([]int32, 1000)
	for i := range prev {
		prev[i] = int32(i % 8)
	}
	out, err := ElasticRelabel(prev, 8, 5, 13)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range out {
		if l >= 5 {
			t.Fatalf("vertex %d kept removed label %d", i, l)
		}
		if prev[i] < 5 && out[i] != prev[i] {
			t.Fatalf("vertex %d on surviving partition moved", i)
		}
	}
}

func TestSeedNewVerticesBalances(t *testing.T) {
	// Heavily unbalanced existing loads; new vertices must flow to the
	// light partitions.
	w := graph.NewWeighted(6)
	w.AddEdge(0, 1, 10) // heavy partition 0 load
	init := make([]int32, 6)
	// Vertices 0,1 on partition 0; vertices 2..5 are new.
	SeedNewVertices(w, init, 2, 2)
	for v := 2; v < 6; v++ {
		if init[v] != 1 {
			t.Fatalf("new vertex %d seeded on loaded partition (labels=%v)", v, init)
		}
	}
}

func TestAdaptAfterChurn(t *testing.T) {
	// The full dynamic setting: edges added AND removed (§I), then adapt.
	g := gen.WattsStrogatz(3000, 8, 0.2, 401)
	w := graph.Convert(g)
	base := partitionBase(t, w, 8)

	churned := w.Clone()
	mut := gen.ChurnBatch(churned, 0.03, 0.03, 403)
	if _, err := mut.Apply(churned); err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(8)
	opts.Seed = 405
	res, err := mustPartitioner(t, opts).Adapt(churned, base.Labels, mut.TouchedVertices())
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.ValidateLabels(res.Labels, 8); err != nil {
		t.Fatal(err)
	}
	if rho := metrics.Rho(churned, res.Labels, 8); rho > 1.25 {
		t.Fatalf("rho=%.3f after churn adaptation", rho)
	}
	if d := metrics.Difference(base.Labels, res.Labels); d > 0.30 {
		t.Fatalf("churn adaptation moved %.0f%% of vertices", 100*d)
	}
}
