package core

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// Property: on arbitrary random graphs and k, Spinner produces a complete,
// valid labeling.
func TestPartitionProducesValidLabelsProperty(t *testing.T) {
	f := func(seed uint16, kRaw uint8) bool {
		k := int(kRaw%15) + 1
		s := rng.New(uint64(seed))
		n := 50 + s.Intn(200)
		g := gen.ErdosRenyi(n, int64(3*n), true, uint64(seed))
		w := graph.Convert(g)
		opts := DefaultOptions(k)
		opts.Seed = uint64(seed)
		opts.MaxIterations = 30
		opts.NumWorkers = 2
		p, err := NewPartitioner(opts)
		if err != nil {
			return false
		}
		res, err := p.PartitionWeighted(w)
		if err != nil {
			return false
		}
		if len(res.Labels) != n {
			return false
		}
		return metrics.ValidateLabels(res.Labels, k) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the per-iteration history reports loads consistent with the
// final labeling — the recorded final rho must match a recomputation from
// scratch (load-conservation of the aggregator bookkeeping).
func TestAggregatedLoadsMatchRecomputationProperty(t *testing.T) {
	f := func(seed uint16) bool {
		s := rng.New(uint64(seed))
		n := 100 + s.Intn(150)
		g := gen.WattsStrogatz(n, 4, 0.3, uint64(seed))
		w := graph.Convert(g)
		k := 2 + s.Intn(6)
		opts := DefaultOptions(k)
		opts.Seed = uint64(seed) + 1
		opts.MaxIterations = 25
		opts.NumWorkers = 3
		p, err := NewPartitioner(opts)
		if err != nil {
			return false
		}
		res, err := p.PartitionWeighted(w)
		if err != nil || len(res.History) == 0 {
			return false
		}
		want := metrics.Rho(w, res.Labels, k)
		got := res.FinalRho()
		diff := want - got
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: adaptation never produces an invalid labeling and preserves
// every unmoved vertex's label domain.
func TestAdaptValidProperty(t *testing.T) {
	f := func(seed uint16) bool {
		s := rng.New(uint64(seed))
		n := 100 + s.Intn(100)
		g := gen.WattsStrogatz(n, 4, 0.2, uint64(seed))
		w := graph.Convert(g)
		k := 2 + s.Intn(4)
		opts := DefaultOptions(k)
		opts.Seed = uint64(seed)
		opts.MaxIterations = 20
		opts.NumWorkers = 2
		p, err := NewPartitioner(opts)
		if err != nil {
			return false
		}
		base, err := p.PartitionWeighted(w)
		if err != nil {
			return false
		}
		grown := w.Clone()
		mut := gen.GrowthBatch(grown, 0.05, uint64(seed)+7)
		if _, err := mut.Apply(grown); err != nil {
			return false
		}
		res, err := p.Adapt(grown, base.Labels, mut.TouchedVertices())
		if err != nil {
			return false
		}
		return metrics.ValidateLabels(res.Labels, k) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: elastic relabeling is deterministic per seed and only ever
// moves vertices in the directions §III-E allows.
func TestElasticRelabelProperty(t *testing.T) {
	f := func(seed uint16, oldKRaw, newKRaw uint8) bool {
		oldK := int(oldKRaw%10) + 1
		newK := int(newKRaw%10) + 1
		s := rng.New(uint64(seed))
		prev := make([]int32, 500)
		for i := range prev {
			prev[i] = int32(s.Intn(oldK))
		}
		a, err := ElasticRelabel(prev, oldK, newK, uint64(seed))
		if err != nil {
			return false
		}
		b, err := ElasticRelabel(prev, oldK, newK, uint64(seed))
		if err != nil {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false // nondeterministic
			}
			if a[i] < 0 || a[i] >= int32(newK) {
				return false // out of range
			}
			if newK > oldK && a[i] != prev[i] && a[i] < int32(oldK) {
				return false // grow may only move to new partitions
			}
			if newK < oldK && prev[i] < int32(newK) && a[i] != prev[i] {
				return false // shrink may not move surviving vertices
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Ablation: without the probabilistic migration step, balance degrades
// (this is the design rationale for ComputeMigrations, §IV-A3).
func TestAblationUnboundedMigrationHurtsBalance(t *testing.T) {
	g := gen.BarabasiAlbert(3000, 8, 83)
	w := graph.Convert(g)

	bounded := DefaultOptions(8)
	bounded.Seed = 85
	rb, err := mustPartitioner(t, bounded).PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}

	unbounded := bounded
	unbounded.UnboundedMigration = true
	ru, err := mustPartitioner(t, unbounded).PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}

	rhoB := metrics.Rho(w, rb.Labels, 8)
	rhoU := metrics.Rho(w, ru.Labels, 8)
	// The bounded variant must respect c; the unbounded one is free to
	// wander. We assert the bounded property rather than strict ordering
	// (the unbounded run can get lucky).
	if rhoB > 1.15 {
		t.Fatalf("bounded rho=%.3f", rhoB)
	}
	t.Logf("ablation: bounded rho=%.3f unbounded rho=%.3f", rhoB, rhoU)
}

// Ablation: the remaining switches must all produce valid runs.
func TestAblationSwitchesRun(t *testing.T) {
	g := gen.WattsStrogatz(1000, 6, 0.3, 87)
	w := graph.Convert(g)
	for _, mod := range []func(*Options){
		func(o *Options) { o.DisableAsyncWorkerState = true },
		func(o *Options) { o.IgnoreEdgeWeights = true },
		func(o *Options) { o.RandomTieBreak = true },
	} {
		opts := DefaultOptions(4)
		opts.Seed = 89
		opts.MaxIterations = 40
		mod(&opts)
		res, err := mustPartitioner(t, opts).PartitionWeighted(w)
		if err != nil {
			t.Fatal(err)
		}
		if err := metrics.ValidateLabels(res.Labels, 4); err != nil {
			t.Fatal(err)
		}
	}
}

// The async per-worker state (§IV-A4) should not converge slower than the
// synchronous variant on average; assert it still reaches comparable
// quality.
func TestAsyncStateQualityComparable(t *testing.T) {
	g := gen.WattsStrogatz(2000, 8, 0.2, 91)
	w := graph.Convert(g)
	async := DefaultOptions(8)
	async.Seed = 93
	ra, err := mustPartitioner(t, async).PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}
	sync := async
	sync.DisableAsyncWorkerState = true
	rs, err := mustPartitioner(t, sync).PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}
	pa, ps := metrics.Phi(w, ra.Labels), metrics.Phi(w, rs.Labels)
	if pa < 0.8*ps {
		t.Fatalf("async phi=%.3f much worse than sync phi=%.3f", pa, ps)
	}
	t.Logf("async: φ=%.3f iters=%d; sync: φ=%.3f iters=%d", pa, ra.Iterations, ps, rs.Iterations)
}
