// Package core implements Spinner, the scalable k-way balanced graph
// partitioning algorithm of Martella et al. (ICDE 2017), on top of the
// Pregel engine in internal/pregel.
//
// Spinner extends label propagation (LPA) with:
//
//   - a weighting of the undirected support graph that counts the messages
//     a Pregel system would exchange across each edge (Eq. 3);
//   - a balance penalty π(l) = b(l)/C subtracted from the normalized
//     locality score (Eq. 8), where C = c·T/k is the per-partition
//     capacity (Eq. 5) over the total load T;
//   - a decentralized probabilistic migration step that lets each
//     candidate vertex migrate with probability r(l)/m(l) (Eq. 14), which
//     bounds capacity violations with high probability (Prop. 3);
//   - a per-worker asynchronous view of the partition loads (§IV-A4) that
//     speeds up convergence without cross-worker coordination;
//   - a score-based halting heuristic (ε, w) over score(G) (Eq. 10);
//   - incremental adaptation after graph mutations (§III-D) and elastic
//     adaptation after partition count changes (§III-E).
package core

import (
	"errors"
	"fmt"
)

// Options configures a Partitioner. The zero value is not valid; use
// DefaultOptions or fill in at least K.
type Options struct {
	// K is the number of partitions (labels). Required, >= 1.
	K int
	// C is the additional-capacity constant c > 1 of Eq. 5. Each partition
	// may hold up to c·T/k load. Larger values converge faster but allow
	// more unbalance (Fig. 5). Default 1.05.
	C float64
	// Epsilon is the halting threshold ε: the run is in a steady state when
	// the relative improvement of score(G) stays below ε. Default 0.001.
	Epsilon float64
	// W is the halting window w: number of consecutive steady iterations
	// required before halting. Default 5.
	W int
	// MaxIterations bounds the number of LPA iterations (each iteration is
	// a ComputeScores + ComputeMigrations superstep pair). Default 200.
	MaxIterations int
	// Seed drives all randomness (initialization, tie-breaks, migration
	// coin flips, elastic re-labeling). Runs are reproducible per seed.
	Seed uint64
	// NumWorkers is the Pregel worker count. Default GOMAXPROCS.
	NumWorkers int
	// IterationSnapshot, when non-nil, is called after every completed LPA
	// iteration (each ComputeScores + ComputeMigrations pair) with the
	// 1-based iteration number and a fresh copy of the labels at that
	// point. Because score(G) climbs monotonically toward convergence,
	// every intermediate labeling is a valid, progressively better
	// partitioning; the serving layer publishes them as live snapshots
	// while a restabilization run is still converging. The callback runs
	// on the partitioning goroutine between supersteps, so it should
	// return quickly. The callback owns the labels slice.
	IterationSnapshot func(iteration int, labels []int32)
	// CapacityFractions optionally assigns heterogeneous capacities: entry
	// l is partition l's share of the total load (normalized internally).
	// Nil means homogeneous (the paper's §III-B setting, 1/k each). This
	// generalizes Eq. 5 to C_l = c·T·f_l, supporting clusters of unequal
	// machines — an extension the paper leaves implicit by presenting the
	// homogeneous case "often preferred ... to eliminate stragglers".
	CapacityFractions []float64

	// Ablation switches (all default false = paper behaviour). These exist
	// for the ablation benchmarks called out in DESIGN.md §5.

	// DisableAsyncWorkerState turns off the per-worker asynchronous load
	// view of §IV-A4; vertices then score against the barrier-synchronized
	// loads only.
	DisableAsyncWorkerState bool
	// UnboundedMigration disables the probabilistic migration step
	// (Eq. 14): every candidate migrates. Demonstrates the ρ blow-up the
	// ComputeMigrations step prevents.
	UnboundedMigration bool
	// IgnoreEdgeWeights scores every edge as weight 1, discarding the
	// directed-multiplicity weighting of Eq. 3.
	IgnoreEdgeWeights bool
	// RandomTieBreak breaks score ties uniformly at random instead of
	// preferring the current label, increasing needless migrations.
	RandomTieBreak bool
	// AffectedOnly restricts migration evaluation, after an incremental
	// restart, to vertices affected by the graph change and vertices that
	// subsequently observe a neighbor's migration (§III-D, first strategy).
	// The paper's default (and ours) is to let every vertex participate.
	AffectedOnly bool
}

// DefaultOptions returns the paper's experiment configuration (§V-A):
// c = 1.05, ε = 0.001, w = 5.
func DefaultOptions(k int) Options {
	return Options{K: k, C: 1.05, Epsilon: 0.001, W: 5, MaxIterations: 200}
}

// normalize fills defaults and validates.
func (o *Options) normalize() error {
	if o.K < 1 {
		return fmt.Errorf("core: K=%d, want >= 1", o.K)
	}
	if o.C == 0 {
		o.C = 1.05
	}
	if o.C <= 1 {
		return fmt.Errorf("core: C=%v, want > 1", o.C)
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.001
	}
	if o.Epsilon < 0 {
		return errors.New("core: negative Epsilon")
	}
	if o.W == 0 {
		o.W = 5
	}
	if o.W < 1 {
		return errors.New("core: W must be >= 1")
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 200
	}
	if o.MaxIterations < 1 {
		return errors.New("core: MaxIterations must be >= 1")
	}
	if o.CapacityFractions != nil {
		if len(o.CapacityFractions) != o.K {
			return fmt.Errorf("core: %d capacity fractions for K=%d partitions", len(o.CapacityFractions), o.K)
		}
		sum := 0.0
		for l, f := range o.CapacityFractions {
			if f <= 0 {
				return fmt.Errorf("core: capacity fraction %v of partition %d not positive", f, l)
			}
			sum += f
		}
		norm := make([]float64, o.K)
		for l, f := range o.CapacityFractions {
			norm[l] = f / sum
		}
		o.CapacityFractions = norm
	}
	return nil
}
