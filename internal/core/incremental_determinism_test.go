package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// TestAdaptDeterminismRegression mirrors TestPartitionDeterminismRegression
// for the incremental path (§III-D): for a fixed seed and a fixed mutation
// batch, Adapt must return bit-identical labels — and identical message
// totals, superstep counts and iteration histories — across repeated runs,
// at both 1 and 4 workers. As in the from-scratch test, the asynchronous
// per-worker load view makes results legitimately depend on the worker
// count, so runs are compared within each worker count only. Both the
// paper-default (every vertex participates) and the AffectedOnly variant
// are pinned.
func TestAdaptDeterminismRegression(t *testing.T) {
	g := gen.WattsStrogatz(2000, 8, 0.3, 7)
	base := graph.Convert(g)

	// One base partitioning shared by every run.
	opts := DefaultOptions(8)
	opts.Seed = 42
	opts.NumWorkers = 2
	p, err := NewPartitioner(opts)
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := p.PartitionWeighted(base)
	if err != nil {
		t.Fatal(err)
	}

	// One fixed churn batch: ~3% new edges (some to 25 new vertices), ~1%
	// removals. The batch is regenerated per run from the same seed, and
	// the mutated graph is rebuilt from a clone, so every run adapts the
	// identical (graph, prev, affected) input.
	makeInput := func() (*graph.Weighted, *graph.Mutation) {
		w := base.Clone()
		mut := gen.ChurnBatch(w, 0.03, 0.01, 99)
		mut.NewVertices = 25
		for i := 0; i < 25; i++ {
			mut.NewEdges = append(mut.NewEdges, graph.WeightedEdgeRecord{
				U: graph.VertexID(base.NumVertices() + i), V: graph.VertexID(i * 7 % base.NumVertices()), Weight: 2,
			})
		}
		if _, err := mut.Apply(w); err != nil {
			t.Fatal(err)
		}
		return w, mut
	}

	for _, affectedOnly := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			run := func() *Result {
				w, mut := makeInput()
				o := DefaultOptions(8)
				o.Seed = 42
				o.NumWorkers = workers
				o.AffectedOnly = affectedOnly
				ap, err := NewPartitioner(o)
				if err != nil {
					t.Fatal(err)
				}
				res, err := ap.Adapt(w, baseRes.Labels, mut.TouchedVertices())
				if err != nil {
					t.Fatalf("Adapt workers=%d affectedOnly=%v: %v", workers, affectedOnly, err)
				}
				if err := metrics.ValidateLabels(res.Labels, 8); err != nil {
					t.Fatalf("workers=%d affectedOnly=%v: %v", workers, affectedOnly, err)
				}
				return res
			}
			a, b := run(), run()
			if a.Supersteps != b.Supersteps || a.Iterations != b.Iterations {
				t.Fatalf("workers=%d affectedOnly=%v: supersteps %d/%d iterations %d/%d differ",
					workers, affectedOnly, a.Supersteps, b.Supersteps, a.Iterations, b.Iterations)
			}
			if a.Messages != b.Messages {
				t.Fatalf("workers=%d affectedOnly=%v: message totals %d vs %d differ",
					workers, affectedOnly, a.Messages, b.Messages)
			}
			for i := range a.Labels {
				if a.Labels[i] != b.Labels[i] {
					t.Fatalf("workers=%d affectedOnly=%v: label of vertex %d differs: %d vs %d",
						workers, affectedOnly, i, a.Labels[i], b.Labels[i])
				}
			}
			for i := range a.History {
				if a.History[i].Score != b.History[i].Score || a.History[i].Migrations != b.History[i].Migrations {
					t.Fatalf("workers=%d affectedOnly=%v: iteration %d metrics differ", workers, affectedOnly, i)
				}
			}
		}
	}
}

// TestIterationSnapshotHook pins the mid-run snapshot extraction contract:
// the hook fires once per completed LPA iteration with monotonically
// increasing iteration numbers, every intermediate labeling is complete and
// valid, and the final snapshot equals the returned Result exactly.
func TestIterationSnapshotHook(t *testing.T) {
	g := gen.WattsStrogatz(1500, 8, 0.2, 3)
	w := graph.Convert(g)
	opts := DefaultOptions(6)
	opts.Seed = 11
	opts.NumWorkers = 2
	var iters []int
	var snaps [][]int32
	opts.IterationSnapshot = func(iter int, labels []int32) {
		iters = append(iters, iter)
		snaps = append(snaps, labels)
	}
	p, err := NewPartitioner(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != res.Iterations {
		t.Fatalf("hook fired %d times for %d iterations", len(iters), res.Iterations)
	}
	for i, it := range iters {
		if it != i+1 {
			t.Fatalf("iteration sequence %v not 1..n", iters)
		}
		if len(snaps[i]) != w.NumVertices() {
			t.Fatalf("snapshot %d has %d labels, want %d", i, len(snaps[i]), w.NumVertices())
		}
		if err := metrics.ValidateLabels(snaps[i], 6); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
	}
	final := snaps[len(snaps)-1]
	for v := range final {
		if final[v] != res.Labels[v] {
			t.Fatalf("final snapshot differs from Result at vertex %d: %d vs %d", v, final[v], res.Labels[v])
		}
	}
	// The hook must not change the outcome: a hook-free run with the same
	// seed produces identical labels.
	opts.IterationSnapshot = nil
	p2, err := NewPartitioner(opts)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := p2.PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}
	for v := range res.Labels {
		if res.Labels[v] != res2.Labels[v] {
			t.Fatalf("snapshot hook perturbed the run: vertex %d %d vs %d", v, res.Labels[v], res2.Labels[v])
		}
	}
}
