package core

import (
	"container/heap"
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// SeedNewVertices assigns labels to vertices init[firstNew:] by repeatedly
// placing each new vertex on the currently least-loaded partition (§III-D:
// "we initially assign them to the least loaded partition, to ensure we do
// not violate the balance constraint"). Loads are measured in weighted
// degree, consistent with b(l), and updated greedily as vertices are
// placed. Besides Adapt, the serving layer (internal/serve) calls this
// directly to label vertices arriving in mutation batches without waiting
// for a restabilization run.
func SeedNewVertices(w *graph.Weighted, init []int32, firstNew, k int) {
	if firstNew >= len(init) {
		return
	}
	loads := make([]float64, k)
	for v := 0; v < firstNew; v++ {
		loads[init[v]] += float64(w.WeightedDegree(graph.VertexID(v)))
	}
	// A heap keeps placement O(log k) per vertex even for large k.
	h := &loadHeap{}
	for l := 0; l < k; l++ {
		h.items = append(h.items, loadItem{label: int32(l), load: loads[l]})
	}
	heap.Init(h)
	for v := firstNew; v < len(init); v++ {
		it := h.items[0]
		init[v] = it.label
		it.load += float64(w.WeightedDegree(graph.VertexID(v))) + 1 // +1 spreads degree-0 newcomers
		h.items[0] = it
		heap.Fix(h, 0)
	}
}

type loadItem struct {
	label int32
	load  float64
}

type loadHeap struct{ items []loadItem }

func (h *loadHeap) Len() int { return len(h.items) }
func (h *loadHeap) Less(i, j int) bool {
	if h.items[i].load != h.items[j].load {
		return h.items[i].load < h.items[j].load
	}
	return h.items[i].label < h.items[j].label
}
func (h *loadHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *loadHeap) Push(x any)    { h.items = append(h.items, x.(loadItem)) }
func (h *loadHeap) Pop() any {
	x := h.items[len(h.items)-1]
	h.items = h.items[:len(h.items)-1]
	return x
}

// ElasticRelabel implements §III-E. Growing from oldK to newK partitions:
// every vertex independently moves, with probability p = n/(k+n) (Eq. 11,
// n = newK−oldK new partitions, k = oldK), to a uniformly chosen new
// partition. Shrinking: vertices on removed partitions (label >= newK)
// move to a uniformly chosen surviving partition. Equal counts return a
// copy unchanged. Resize composes this with an LPA repair run; the serving
// layer calls it directly so lookups see valid [0,newK) labels immediately
// while the repair converges in the background.
func ElasticRelabel(prev []int32, oldK, newK int, seed uint64) ([]int32, error) {
	if newK < 1 {
		return nil, fmt.Errorf("core: newK=%d", newK)
	}
	out := make([]int32, len(prev))
	copy(out, prev)
	r := rng.New(seed*0x9e3779b97f4a7c15 + 0xe1a5)
	switch {
	case newK > oldK:
		n := newK - oldK
		p := float64(n) / float64(oldK+n)
		for v := range out {
			if r.Bool(p) {
				out[v] = int32(oldK + r.Intn(n))
			}
		}
	case newK < oldK:
		for v := range out {
			if out[v] >= int32(newK) {
				out[v] = int32(r.Intn(newK))
			}
		}
	}
	return out, nil
}
