package core

import (
	"fmt"
	"math"
)

// This file provides the empirical side of the paper's convergence theory
// (§III-C and Appendix A). Proposition 1 states that when the partition
// graph — one node per label, an edge when load flows between two labels —
// is B-connected, Spinner's load vector x_t converges exponentially fast to
// the even balancing x* = [T/k … T/k]. The helpers below extract the load
// trajectory from a Result's history and quantify the convergence, and the
// tests in analysis_test.go verify the exponential-decay shape on real
// runs.

// BalanceError returns ‖x_t − x*‖∞ / ‖x*‖∞ for one iteration's load
// vector: the relative distance of the loads from the even balancing.
// Zero means perfectly balanced.
func BalanceError(loads []float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	total := 0.0
	for _, b := range loads {
		total += b
	}
	if total == 0 {
		return 0
	}
	ideal := total / float64(len(loads))
	maxDev := 0.0
	for _, b := range loads {
		if d := math.Abs(b - ideal); d > maxDev {
			maxDev = d
		}
	}
	return maxDev / ideal
}

// BalanceTrajectory returns the per-iteration balance error of a run.
func BalanceTrajectory(r *Result) []float64 {
	out := make([]float64, 0, len(r.History))
	for _, it := range r.History {
		out = append(out, BalanceError(it.Loads))
	}
	return out
}

// DecayRate fits an exponential err_t ≈ q·μ^t to the (positive prefix of
// the) trajectory by least squares in log space and returns μ. A μ in
// (0, 1) confirms Proposition 1's exponential convergence; μ ≥ 1 indicates
// the balance is not contracting (e.g. it already started at the floor).
// An error is returned when fewer than three positive samples exist.
func DecayRate(traj []float64) (mu float64, err error) {
	// Use only the prefix before the error bottoms out (the probabilistic
	// migrations leave a noise floor around the granularity limit).
	floor := 1e-12
	var xs, ys []float64
	for t, e := range traj {
		if e <= floor {
			break
		}
		xs = append(xs, float64(t))
		ys = append(ys, math.Log(e))
	}
	if len(xs) < 3 {
		return 0, fmt.Errorf("core: trajectory has %d usable samples, need >= 3", len(xs))
	}
	// Least squares slope of log(err) over t.
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0, fmt.Errorf("core: degenerate trajectory")
	}
	slope := (n*sxy - sx*sy) / denom
	return math.Exp(slope), nil
}

// PartitionGraphConnected reports whether load moved between every pair of
// partitions somewhere in a window of iterations — a practical proxy for
// the B-connectivity premise of Proposition 1. It compares consecutive
// load vectors: any pair (i, j) where i lost load while j gained within the
// same iteration is counted as a potential flow edge; the union over the
// window must make the partition graph connected (weakly, as flows are
// symmetric opportunities in Spinner).
func PartitionGraphConnected(r *Result, from, to int) bool {
	if from < 0 {
		from = 0
	}
	if to > len(r.History) {
		to = len(r.History)
	}
	if to-from < 2 {
		return false
	}
	k := len(r.History[from].Loads)
	adj := make([][]bool, k)
	for i := range adj {
		adj[i] = make([]bool, k)
	}
	for t := from + 1; t < to; t++ {
		prev, cur := r.History[t-1].Loads, r.History[t].Loads
		var losers, gainers []int
		for l := 0; l < k; l++ {
			switch {
			case cur[l] < prev[l]:
				losers = append(losers, l)
			case cur[l] > prev[l]:
				gainers = append(gainers, l)
			}
		}
		for _, i := range losers {
			for _, j := range gainers {
				adj[i][j], adj[j][i] = true, true
			}
		}
	}
	// BFS over the union graph.
	seen := make([]bool, k)
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := 0; v < k; v++ {
			if adj[u][v] && !seen[v] {
				seen[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	return count == k
}
