package core

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestBalanceError(t *testing.T) {
	if BalanceError([]float64{10, 10, 10}) != 0 {
		t.Fatal("balanced vector has nonzero error")
	}
	// [20, 10, 0]: ideal 10, max deviation 10 → error 1.
	if got := BalanceError([]float64{20, 10, 0}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("error=%v, want 1", got)
	}
	if BalanceError(nil) != 0 || BalanceError([]float64{0, 0}) != 0 {
		t.Fatal("degenerate vectors should have zero error")
	}
}

// Proposition 1, empirically: starting from an unbalanced random state the
// balance error must contract exponentially (fitted μ < 1) until it hits
// the probabilistic noise floor.
func TestBalanceConvergesExponentially(t *testing.T) {
	// Proposition 1's setting: start far from the even balancing and watch
	// the load vector contract. A uniform-degree graph keeps the noise
	// floor near zero; the skewed start packs 60% of the vertices onto
	// partition 0.
	g := gen.WattsStrogatz(4000, 10, 0.3, 501)
	w := graph.Convert(g)
	const k = 8
	skewed := make([]int32, 4000)
	for v := range skewed {
		if v%10 < 6 {
			skewed[v] = 0
		} else {
			skewed[v] = int32(1 + v%(k-1))
		}
	}
	opts := DefaultOptions(k)
	opts.Seed = 503
	opts.W = 1000 // run to MaxIterations so the trajectory is long
	opts.MaxIterations = 30
	res, err := mustPartitioner(t, opts).Adapt(w, skewed, nil)
	if err != nil {
		t.Fatal(err)
	}
	traj := BalanceTrajectory(res)
	if len(traj) != res.Iterations {
		t.Fatalf("trajectory length %d != iterations %d", len(traj), res.Iterations)
	}
	// The early error must dominate the late error.
	early := (traj[0] + traj[1] + traj[2]) / 3
	n := len(traj)
	late := (traj[n-1] + traj[n-2] + traj[n-3]) / 3
	if late >= early {
		t.Fatalf("balance error did not contract: early=%.4f late=%.4f", early, late)
	}
	// Fit over the contracting prefix (first 10 iterations).
	mu, err := DecayRate(traj[:10])
	if err != nil {
		t.Fatal(err)
	}
	if mu >= 1 {
		t.Fatalf("fitted decay rate μ=%.3f, want < 1 (exponential contraction)", mu)
	}
	t.Logf("balance error %.4f → %.4f, fitted μ=%.3f", early, late, mu)
}

func TestDecayRateErrors(t *testing.T) {
	if _, err := DecayRate([]float64{0.5}); err == nil {
		t.Fatal("short trajectory accepted")
	}
	if _, err := DecayRate([]float64{0, 0, 0, 0}); err == nil {
		t.Fatal("all-zero trajectory accepted")
	}
}

func TestDecayRateKnownSeries(t *testing.T) {
	// err_t = 0.8^t exactly.
	traj := make([]float64, 12)
	for t0 := range traj {
		traj[t0] = math.Pow(0.8, float64(t0))
	}
	mu, err := DecayRate(traj)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mu-0.8) > 1e-9 {
		t.Fatalf("μ=%v, want 0.8", mu)
	}
}

func TestPartitionGraphConnected(t *testing.T) {
	g := gen.WattsStrogatz(3000, 8, 0.3, 507)
	w := graph.Convert(g)
	opts := DefaultOptions(8)
	opts.Seed = 509
	opts.W = 1000
	opts.MaxIterations = 15
	res, err := mustPartitioner(t, opts).PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}
	// During the active phase every partition exchanges load with the rest:
	// the B-connectivity premise of Proposition 1 holds in practice.
	if !PartitionGraphConnected(res, 0, res.Iterations) {
		t.Fatal("partition graph not connected over the run")
	}
	// Degenerate windows.
	if PartitionGraphConnected(res, 0, 1) {
		t.Fatal("single-iteration window reported connected")
	}
}
