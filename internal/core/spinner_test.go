package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
)

func mustPartitioner(t *testing.T, opts Options) *Partitioner {
	t.Helper()
	p, err := NewPartitioner(opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPartitionerValidation(t *testing.T) {
	if _, err := NewPartitioner(Options{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := NewPartitioner(Options{K: 4, C: 0.9}); err == nil {
		t.Fatal("C<=1 accepted")
	}
	if _, err := NewPartitioner(Options{K: 4, Epsilon: -1}); err == nil {
		t.Fatal("negative epsilon accepted")
	}
	if _, err := NewPartitioner(Options{K: 4, W: -2}); err == nil {
		t.Fatal("negative W accepted")
	}
	if _, err := NewPartitioner(Options{K: 4, MaxIterations: -1}); err == nil {
		t.Fatal("negative MaxIterations accepted")
	}
	p, err := NewPartitioner(DefaultOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	o := p.Options()
	if o.C != 1.05 || o.Epsilon != 0.001 || o.W != 5 {
		t.Fatalf("defaults wrong: %+v", o)
	}
}

func TestPartitionRecoversPlantedCommunities(t *testing.T) {
	g, _ := gen.PlantedPartition(2000, 4, 14, 2, 7)
	w := graph.Convert(g)
	opts := DefaultOptions(4)
	opts.Seed = 1
	opts.NumWorkers = 4
	res, err := mustPartitioner(t, opts).PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.ValidateLabels(res.Labels, 4); err != nil {
		t.Fatal(err)
	}
	phi := metrics.Phi(w, res.Labels)
	rho := metrics.Rho(w, res.Labels, 4)
	if phi < 0.70 {
		t.Fatalf("phi=%.3f, want >= 0.70 on planted communities", phi)
	}
	if rho > 1.20 {
		t.Fatalf("rho=%.3f, want near c=1.05", rho)
	}
}

func TestPartitionDirectedConversionPath(t *testing.T) {
	g := gen.BarabasiAlbert(3000, 6, 3)
	opts := DefaultOptions(8)
	opts.Seed = 2
	opts.NumWorkers = 4
	res, err := mustPartitioner(t, opts).Partition(g)
	if err != nil {
		t.Fatal(err)
	}
	w := graph.Convert(g)
	phi := metrics.Phi(w, res.Labels)
	rho := metrics.Rho(w, res.Labels, 8)
	// Hash partitioning on k=8 gives phi ~ 1/8; Spinner must do far better.
	if phi < 0.3 {
		t.Fatalf("phi=%.3f, want >= 0.3", phi)
	}
	if rho > 1.25 {
		t.Fatalf("rho=%.3f too unbalanced", rho)
	}
	if res.Supersteps < 3 {
		t.Fatalf("supersteps=%d, conversion phases missing", res.Supersteps)
	}
}

func TestPartitionBeatsRandomLocality(t *testing.T) {
	g := gen.WattsStrogatz(4000, 10, 0.2, 5)
	w := graph.Convert(g)
	opts := DefaultOptions(16)
	opts.Seed = 3
	res, err := mustPartitioner(t, opts).PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}
	phi := metrics.Phi(w, res.Labels)
	if phi < 3.0/16.0 {
		t.Fatalf("phi=%.3f, not meaningfully better than random (1/16)", phi)
	}
}

func TestRhoBoundedByC(t *testing.T) {
	// Fig. 5(a): with high probability ρ ≤ c; allow small exceedance per
	// Prop. 3's probabilistic bound.
	g := gen.WattsStrogatz(3000, 8, 0.3, 11)
	w := graph.Convert(g)
	for _, c := range []float64{1.05, 1.10, 1.20} {
		opts := DefaultOptions(8)
		opts.C = c
		opts.Seed = 13
		res, err := mustPartitioner(t, opts).PartitionWeighted(w)
		if err != nil {
			t.Fatal(err)
		}
		rho := metrics.Rho(w, res.Labels, 8)
		if rho > c*1.05 {
			t.Fatalf("c=%.2f: rho=%.3f exceeds bound materially", c, rho)
		}
	}
}

func TestDeterminism(t *testing.T) {
	g := gen.WattsStrogatz(1000, 6, 0.3, 17)
	w := graph.Convert(g)
	opts := DefaultOptions(8)
	opts.Seed = 42
	opts.NumWorkers = 4
	run := func() []int32 {
		res, err := mustPartitioner(t, opts).PartitionWeighted(w)
		if err != nil {
			t.Fatal(err)
		}
		return res.Labels
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at vertex %d", i)
		}
	}
}

func TestDifferentSeedsDifferentPartitionings(t *testing.T) {
	g := gen.WattsStrogatz(1000, 6, 0.3, 17)
	w := graph.Convert(g)
	optsA := DefaultOptions(8)
	optsA.Seed = 1
	optsB := DefaultOptions(8)
	optsB.Seed = 2
	ra, err := mustPartitioner(t, optsA).PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := mustPartitioner(t, optsB).PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Difference(ra.Labels, rb.Labels) == 0 {
		t.Fatal("different seeds produced identical partitionings")
	}
}

func TestK1Trivial(t *testing.T) {
	g := gen.ErdosRenyi(200, 600, true, 19)
	w := graph.Convert(g)
	opts := DefaultOptions(1)
	res, err := mustPartitioner(t, opts).PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Labels {
		if l != 0 {
			t.Fatal("k=1 produced nonzero label")
		}
	}
	if metrics.Phi(w, res.Labels) != 1 {
		t.Fatal("k=1 phi != 1")
	}
}

func TestEdgelessGraphHalts(t *testing.T) {
	w := graph.NewWeighted(10)
	opts := DefaultOptions(4)
	res, err := mustPartitioner(t, opts).PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("edgeless graph did not converge immediately")
	}
	if err := metrics.ValidateLabels(res.Labels, 4); err != nil {
		t.Fatal(err)
	}
}

func TestConvergenceHaltsBeforeMaxIterations(t *testing.T) {
	g := gen.WattsStrogatz(2000, 8, 0.3, 23)
	w := graph.Convert(g)
	opts := DefaultOptions(4)
	opts.Seed = 5
	res, err := mustPartitioner(t, opts).PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge within %d iterations", opts.MaxIterations)
	}
	if res.Iterations >= opts.MaxIterations {
		t.Fatalf("iterations=%d not fewer than max", res.Iterations)
	}
}

func TestHistoryShape(t *testing.T) {
	// Fig. 4: score improves overall; balance converges near 1.
	g := gen.BarabasiAlbert(4000, 8, 29)
	w := graph.Convert(g)
	opts := DefaultOptions(16)
	opts.Seed = 7
	res, err := mustPartitioner(t, opts).PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}
	h := res.History
	if len(h) < 3 {
		t.Fatalf("history too short: %d", len(h))
	}
	if h[len(h)-1].Score <= h[0].Score {
		t.Fatalf("score did not improve: first=%.1f last=%.1f", h[0].Score, h[len(h)-1].Score)
	}
	if h[len(h)-1].Phi <= h[0].Phi {
		t.Fatalf("phi did not improve: first=%.3f last=%.3f", h[0].Phi, h[len(h)-1].Phi)
	}
	for i, it := range h {
		if it.Iteration != i+1 {
			t.Fatalf("iteration numbering broken at %d", i)
		}
		if it.Rho < 1-1e-9 {
			t.Fatalf("rho=%.3f < 1 at iteration %d", it.Rho, i+1)
		}
	}
	if res.FinalPhi() != h[len(h)-1].Phi || res.FinalRho() != h[len(h)-1].Rho {
		t.Fatal("Final accessors disagree with history")
	}
	if res.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestMaxIterationsRespected(t *testing.T) {
	g := gen.WattsStrogatz(500, 6, 0.3, 31)
	w := graph.Convert(g)
	opts := DefaultOptions(8)
	opts.MaxIterations = 3
	opts.W = 100 // prevent early convergence
	res, err := mustPartitioner(t, opts).PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 3 {
		t.Fatalf("iterations=%d, want 3", res.Iterations)
	}
	if res.Converged {
		t.Fatal("claimed convergence at MaxIterations")
	}
}

func TestMessagesCounted(t *testing.T) {
	g := gen.WattsStrogatz(500, 6, 0.3, 37)
	w := graph.Convert(g)
	opts := DefaultOptions(4)
	res, err := mustPartitioner(t, opts).PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages == 0 {
		t.Fatal("no messages counted")
	}
	if res.Runtime <= 0 {
		t.Fatal("no runtime recorded")
	}
}

func TestUndirectedGraphViaConversion(t *testing.T) {
	// An undirected Graph run through Partition must behave like its
	// weighted conversion (all weights 2).
	g := gen.ErdosRenyi(600, 2400, false, 41)
	opts := DefaultOptions(4)
	opts.Seed = 9
	res, err := mustPartitioner(t, opts).Partition(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.ValidateLabels(res.Labels, 4); err != nil {
		t.Fatal(err)
	}
	w := graph.Convert(g)
	if rho := metrics.Rho(w, res.Labels, 4); rho > 1.25 {
		t.Fatalf("rho=%.3f", rho)
	}
}
