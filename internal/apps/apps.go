// Package apps implements the three analytical applications used in the
// paper's application-performance experiments (§V-F, Fig. 9, Table IV) as
// Pregel programs on internal/pregel:
//
//   - PageRank (PR): fixed-iteration ranking, the Table IV workload;
//   - Single-Source Shortest Paths via BFS (SP): connectivity/centrality;
//   - Weakly Connected Components (CC): community discovery.
//
// Each app accepts a vertex→worker placement so experiments can compare
// hash placement against Spinner-derived placement: exactly the mechanism
// of §V-F, where Giraph is instructed to place vertices with the same
// label on the same physical worker.
package apps

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/pregel"
)

// RunConfig configures an application run.
type RunConfig struct {
	// NumWorkers is the number of Pregel workers (defaults to GOMAXPROCS).
	NumWorkers int
	// Placement maps vertices to workers. Nil means the engine default
	// (contiguous ranges). Use PlacementFromLabels to derive one from a
	// partitioning.
	Placement func(graph.VertexID) int
	// Seed seeds worker random streams (unused by these deterministic
	// apps, present for uniformity).
	Seed uint64
}

// PlacementFromLabels maps each vertex to worker labels[v] mod numWorkers,
// so vertices sharing a partition share a worker — the paper's vertex-id
// wrapper hashed on the label field.
func PlacementFromLabels(labels []int32, numWorkers int) func(graph.VertexID) int {
	return func(v graph.VertexID) int {
		return int(labels[v]) % numWorkers
	}
}

// HashPlacement is Giraph's default placement: h(v) mod numWorkers.
func HashPlacement(numWorkers int) func(graph.VertexID) int {
	return func(v graph.VertexID) int {
		x := uint64(v) + 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		return int((x ^ (x >> 31)) % uint64(numWorkers))
	}
}

// Result captures an application run's outputs relevant to the
// experiments: the per-superstep engine statistics that the cluster cost
// model converts into simulated runtime.
type Result struct {
	// Supersteps executed.
	Supersteps int
	// Stats is the engine's per-superstep accounting.
	Stats []pregel.SuperstepStats
}

// TotalMessages sums sent messages across supersteps.
func (r *Result) TotalMessages() int64 {
	var t int64
	for _, st := range r.Stats {
		t += st.TotalSent()
	}
	return t
}

// RemoteMessages sums cross-worker messages across supersteps; this is the
// network traffic a partitioning is supposed to reduce.
func (r *Result) RemoteMessages() int64 {
	var t int64
	for _, st := range r.Stats {
		for _, x := range st.SentRemote {
			t += x
		}
	}
	return t
}

// --- PageRank ---

type prProg struct{ iterations int }

func (p *prProg) Compute(ctx *pregel.Context[float64, struct{}, float64], v *pregel.Vertex[float64, struct{}], msgs []float64) {
	if ctx.Superstep() > 0 {
		sum := 0.0
		for _, m := range msgs {
			sum += m
		}
		v.Value = 0.15/float64(ctx.NumVertices()) + 0.85*sum
	}
	ctx.CountEdges(len(v.Edges))
	if ctx.Superstep() < p.iterations {
		if len(v.Edges) > 0 {
			share := v.Value / float64(len(v.Edges))
			for _, e := range v.Edges {
				ctx.SendTo(e.To, share)
			}
		}
	}
}

func (p *prProg) MasterCompute(m *pregel.Master) {
	if m.Superstep() >= p.iterations {
		m.Halt()
	}
}

// PageRank runs the given number of PageRank iterations over the directed
// graph g and returns the ranks and run statistics.
func PageRank(g *graph.Graph, iterations int, cfg RunConfig) ([]float64, *Result, error) {
	if iterations < 1 {
		return nil, nil, errors.New("apps: PageRank needs iterations >= 1")
	}
	n := g.NumVertices()
	vs := make([]pregel.Vertex[float64, struct{}], n)
	for i := range vs {
		vs[i].ID = graph.VertexID(i)
		vs[i].Value = 1 / float64(n)
		for _, to := range g.Neighbors(graph.VertexID(i)) {
			vs[i].Edges = append(vs[i].Edges, pregel.Edge[struct{}]{To: to})
		}
	}
	eng := pregel.NewEngine[float64, struct{}, float64](pregel.Config{
		NumWorkers: cfg.NumWorkers, Placement: cfg.Placement, Seed: cfg.Seed,
		MaxSupersteps: iterations + 2,
	}, &prProg{iterations: iterations})
	eng.SetCombiner(func(a, b float64) float64 { return a + b })
	if err := eng.SetVertices(vs); err != nil {
		return nil, nil, fmt.Errorf("apps: PageRank: %w", err)
	}
	steps, err := eng.Run()
	if err != nil {
		return nil, nil, fmt.Errorf("apps: PageRank: %w", err)
	}
	ranks := make([]float64, n)
	for i := range eng.Vertices() {
		ranks[i] = eng.Vertices()[i].Value
	}
	return ranks, &Result{Supersteps: steps, Stats: eng.Stats()}, nil
}

// --- SSSP / BFS ---

type ssspProg struct{ source graph.VertexID }

func (p *ssspProg) Compute(ctx *pregel.Context[float64, struct{}, float64], v *pregel.Vertex[float64, struct{}], msgs []float64) {
	ctx.CountEdges(len(v.Edges))
	best := v.Value
	if ctx.Superstep() == 0 {
		if v.ID == p.source {
			best = 0
		}
	} else {
		for _, m := range msgs {
			if m < best {
				best = m
			}
		}
	}
	if best < v.Value || (ctx.Superstep() == 0 && v.ID == p.source) {
		v.Value = best
		for _, e := range v.Edges {
			ctx.SendTo(e.To, best+1)
		}
	}
	// Vote to halt; a better distance reactivates the vertex.
	v.VoteToHalt()
}

// SSSP computes BFS distances (unit edge weights) from source. Like the
// paper's connectivity study, the BFS runs over the symmetrized graph
// (followers are reachable from followees and vice versa); unreachable
// vertices report +Inf.
func SSSP(g *graph.Graph, source graph.VertexID, cfg RunConfig) ([]float64, *Result, error) {
	n := g.NumVertices()
	if source < 0 || int(source) >= n {
		return nil, nil, fmt.Errorf("apps: SSSP source %d out of range", source)
	}
	sym := make([][]graph.VertexID, n)
	g.Edges(func(u, v graph.VertexID) {
		sym[u] = append(sym[u], v)
		if g.Directed() {
			sym[v] = append(sym[v], u)
		}
	})
	vs := make([]pregel.Vertex[float64, struct{}], n)
	for i := range vs {
		vs[i].ID = graph.VertexID(i)
		vs[i].Value = math.Inf(1)
		for _, to := range sym[i] {
			vs[i].Edges = append(vs[i].Edges, pregel.Edge[struct{}]{To: to})
		}
	}
	eng := pregel.NewEngine[float64, struct{}, float64](pregel.Config{
		NumWorkers: cfg.NumWorkers, Placement: cfg.Placement, Seed: cfg.Seed,
	}, &ssspProg{source: source})
	eng.SetCombiner(func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	})
	if err := eng.SetVertices(vs); err != nil {
		return nil, nil, fmt.Errorf("apps: SSSP: %w", err)
	}
	steps, err := eng.Run()
	if err != nil {
		return nil, nil, fmt.Errorf("apps: SSSP: %w", err)
	}
	dist := make([]float64, n)
	for i := range eng.Vertices() {
		dist[i] = eng.Vertices()[i].Value
	}
	return dist, &Result{Supersteps: steps, Stats: eng.Stats()}, nil
}

// --- Weakly Connected Components ---

type wccProg struct{}

func (wccProg) Compute(ctx *pregel.Context[float64, struct{}, float64], v *pregel.Vertex[float64, struct{}], msgs []float64) {
	ctx.CountEdges(len(v.Edges))
	best := v.Value
	if ctx.Superstep() == 0 {
		best = float64(v.ID)
	}
	for _, m := range msgs {
		if m < best {
			best = m
		}
	}
	if best < v.Value || ctx.Superstep() == 0 {
		v.Value = best
		for _, e := range v.Edges {
			ctx.SendTo(e.To, best)
		}
	}
	v.VoteToHalt()
}

// WCC labels each vertex with the smallest vertex ID in its weakly
// connected component. Directed inputs are symmetrized when the Pregel
// vertices are built (exactly what a Giraph WCC job does).
func WCC(g *graph.Graph, cfg RunConfig) ([]int32, *Result, error) {
	n := g.NumVertices()
	// Symmetrize.
	sym := make([][]graph.VertexID, n)
	g.Edges(func(u, v graph.VertexID) {
		sym[u] = append(sym[u], v)
		if g.Directed() {
			sym[v] = append(sym[v], u)
		}
	})
	vs := make([]pregel.Vertex[float64, struct{}], n)
	for i := range vs {
		vs[i].ID = graph.VertexID(i)
		vs[i].Value = math.Inf(1)
		for _, to := range sym[i] {
			vs[i].Edges = append(vs[i].Edges, pregel.Edge[struct{}]{To: to})
		}
	}
	eng := pregel.NewEngine[float64, struct{}, float64](pregel.Config{
		NumWorkers: cfg.NumWorkers, Placement: cfg.Placement, Seed: cfg.Seed,
	}, wccProg{})
	eng.SetCombiner(func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	})
	if err := eng.SetVertices(vs); err != nil {
		return nil, nil, fmt.Errorf("apps: WCC: %w", err)
	}
	steps, err := eng.Run()
	if err != nil {
		return nil, nil, fmt.Errorf("apps: WCC: %w", err)
	}
	comp := make([]int32, n)
	for i := range eng.Vertices() {
		comp[i] = int32(eng.Vertices()[i].Value)
	}
	return comp, &Result{Supersteps: steps, Stats: eng.Stats()}, nil
}
