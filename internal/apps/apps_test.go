package apps

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func chain(n int) *graph.Graph {
	g := graph.New(n, true)
	for i := 0; i < n-1; i++ {
		g.AddEdge(graph.VertexID(i), graph.VertexID(i+1))
	}
	return g
}

func TestSSSPChain(t *testing.T) {
	g := chain(10)
	dist, res, err := SSSP(g, 0, RunConfig{NumWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if dist[i] != float64(i) {
			t.Fatalf("dist[%d]=%v, want %d", i, dist[i], i)
		}
	}
	if res.Supersteps < 9 {
		t.Fatalf("supersteps=%d, want >= 9 for a 10-chain", res.Supersteps)
	}
}

func TestSSSPUnreachable(t *testing.T) {
	g := graph.New(3, true)
	g.AddEdge(0, 1)
	dist, _, err := SSSP(g, 0, RunConfig{NumWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(dist[2], 1) {
		t.Fatalf("dist[2]=%v, want +Inf", dist[2])
	}
}

func TestSSSPBadSource(t *testing.T) {
	if _, _, err := SSSP(chain(3), 99, RunConfig{}); err == nil {
		t.Fatal("bad source accepted")
	}
}

func TestSSSPMatchesBFSOnRandomGraph(t *testing.T) {
	g := gen.ErdosRenyi(500, 2500, true, 7)
	dist, _, err := SSSP(g, 0, RunConfig{NumWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Reference BFS over the symmetrized graph (SSSP's traversal domain).
	sym := make([][]graph.VertexID, 500)
	g.Edges(func(u, v graph.VertexID) {
		sym[u] = append(sym[u], v)
		sym[v] = append(sym[v], u)
	})
	ref := make([]float64, 500)
	for i := range ref {
		ref[i] = math.Inf(1)
	}
	ref[0] = 0
	queue := []graph.VertexID{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range sym[u] {
			if math.IsInf(ref[v], 1) {
				ref[v] = ref[u] + 1
				queue = append(queue, v)
			}
		}
	}
	for i := range ref {
		if dist[i] != ref[i] {
			t.Fatalf("dist[%d]=%v, reference %v", i, dist[i], ref[i])
		}
	}
}

func TestWCCComponents(t *testing.T) {
	g := graph.New(6, true)
	g.AddEdge(0, 1)
	g.AddEdge(2, 1) // weakly connects {0,1,2}
	g.AddEdge(3, 4)
	comp, _, err := WCC(g, RunConfig{NumWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if comp[0] != 0 || comp[1] != 0 || comp[2] != 0 {
		t.Fatalf("component of {0,1,2} = %v", comp[:3])
	}
	if comp[3] != 3 || comp[4] != 3 {
		t.Fatalf("component of {3,4} = %v", comp[3:5])
	}
	if comp[5] != 5 {
		t.Fatalf("isolated vertex component = %d", comp[5])
	}
}

func TestWCCMatchesReference(t *testing.T) {
	g := gen.ErdosRenyi(400, 500, true, 9) // sparse → several components
	comp, _, err := WCC(g, RunConfig{NumWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	refLabels, _ := graph.ConnectedComponents(g)
	// Same partition structure: comp[u]==comp[v] iff refLabels[u]==refLabels[v].
	repr := map[int32]int32{}
	for v := range comp {
		r, ok := repr[refLabels[v]]
		if !ok {
			repr[refLabels[v]] = comp[v]
		} else if r != comp[v] {
			t.Fatalf("vertex %d: WCC disagrees with reference", v)
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := gen.BarabasiAlbert(1000, 5, 11)
	ranks, res, err := PageRank(g, 20, RunConfig{NumWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps != 21 {
		t.Fatalf("supersteps=%d, want 21 (20 iterations + final)", res.Supersteps)
	}
	sum := 0.0
	for _, r := range ranks {
		sum += r
	}
	// Dangling mass leaks in this formulation (as in the standard Pregel
	// example); sum stays within (0.5, 1.01].
	if sum <= 0.5 || sum > 1.01 {
		t.Fatalf("rank sum=%v", sum)
	}
}

func TestPageRankHubsRankHigher(t *testing.T) {
	// Star pointing at vertex 0: vertex 0 must out-rank the leaves.
	g := graph.New(10, true)
	for i := 1; i < 10; i++ {
		g.AddEdge(graph.VertexID(i), 0)
	}
	ranks, _, err := PageRank(g, 15, RunConfig{NumWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 10; i++ {
		if ranks[0] <= ranks[i] {
			t.Fatalf("hub rank %v <= leaf rank %v", ranks[0], ranks[i])
		}
	}
}

func TestPageRankValidation(t *testing.T) {
	if _, _, err := PageRank(chain(3), 0, RunConfig{}); err == nil {
		t.Fatal("iterations=0 accepted")
	}
}

func TestPlacementReducesRemoteMessages(t *testing.T) {
	// The §V-F mechanism: placement derived from a locality-aware
	// partitioning must produce fewer remote messages than hash placement.
	g, truth := gen.PlantedPartition(2000, 4, 12, 2, 13)
	const workers = 4
	_, hashRes, err := PageRank(g, 10, RunConfig{NumWorkers: workers, Placement: HashPlacement(workers)})
	if err != nil {
		t.Fatal(err)
	}
	_, partRes, err := PageRank(g, 10, RunConfig{NumWorkers: workers, Placement: PlacementFromLabels(truth, workers)})
	if err != nil {
		t.Fatal(err)
	}
	if partRes.RemoteMessages() >= hashRes.RemoteMessages() {
		t.Fatalf("partitioned remote=%d not fewer than hash remote=%d",
			partRes.RemoteMessages(), hashRes.RemoteMessages())
	}
	// PageRank installs a sum combiner, and the engine combines on the send
	// side: messages that share a (worker, destination) pair collapse before
	// they are counted. Locality-aware placement therefore reduces — never
	// increases — the total physical traffic relative to hash placement.
	if partRes.TotalMessages() > hashRes.TotalMessages() {
		t.Fatalf("partitioned total=%d exceeds hash total=%d (send-side combining should shrink totals under better placement)",
			partRes.TotalMessages(), hashRes.TotalMessages())
	}
}

func TestAppsDeterministic(t *testing.T) {
	g := gen.WattsStrogatz(500, 6, 0.3, 15)
	r1, _, err := PageRank(g, 10, RunConfig{NumWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := PageRank(g, 10, RunConfig{NumWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("PageRank nondeterministic at %d", i)
		}
	}
}
