package baselines

import (
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Restreamer is a partitioner that can incorporate a previous assignment —
// the "restreaming" model of Nishimura & Ugander (KDD 2013), cited by the
// paper (§VI, [19]) as the streaming world's answer to adaptivity. It is
// the natural baseline for Spinner's incremental mode: both repartition a
// changed graph starting from the previous state.
type Restreamer interface {
	// Name identifies the approach in experiment output.
	Name() string
	// Restream produces a labeling of w into k parts, given the previous
	// labeling (entries beyond len(prev) are new vertices). A nil prev is
	// a cold start.
	Restream(w *graph.Weighted, k int, prev []int32) []int32
}

// ReLDG is restreaming LDG: vertices stream in a fixed order; each is
// placed by the LDG objective where neighbors not yet re-assigned in this
// pass contribute via their previous-pass label.
type ReLDG struct {
	// Seed fixes the stream order (the same order every pass, as
	// published).
	Seed uint64
	// Passes is the number of restreaming sweeps (default 3).
	Passes int
	// Slack is the vertex-capacity multiplier (default 1.0).
	Slack float64
}

// Name implements Restreamer.
func (ReLDG) Name() string { return "ReLDG" }

// Restream implements Restreamer.
func (r ReLDG) Restream(w *graph.Weighted, k int, prev []int32) []int32 {
	passes := r.Passes
	if passes <= 0 {
		passes = 3
	}
	slack := r.Slack
	if slack <= 0 {
		slack = 1.0
	}
	n := w.NumVertices()
	capacity := slack * float64(n) / float64(k)
	labels := coldStart(n, k, prev, r.Seed)
	order := rng.New(r.Seed).Perm(n)
	counts := make([]float64, k)
	for pass := 0; pass < passes; pass++ {
		sizes := make([]float64, k)
		for _, vi := range order {
			v := graph.VertexID(vi)
			for i := range counts {
				counts[i] = 0
			}
			for _, a := range w.Neighbors(v) {
				counts[labels[a.To]] += float64(a.Weight)
			}
			best, bestScore := labels[v], math.Inf(-1)
			for l := 0; l < k; l++ {
				penalty := 1 - sizes[l]/capacity
				if penalty < 0 {
					penalty = 0
				}
				s := counts[l] * penalty
				if s > bestScore || (s == bestScore && int32(l) == labels[v]) {
					best, bestScore = int32(l), s
				}
			}
			labels[v] = best
			sizes[best]++
		}
	}
	return labels
}

// ReFennel is restreaming Fennel with a per-pass tightening of the balance
// weight (α grows geometrically each pass, as Nishimura & Ugander suggest
// to force convergence toward balance).
type ReFennel struct {
	// Seed fixes the stream order.
	Seed uint64
	// Passes is the number of sweeps (default 3).
	Passes int
	// Gamma is the objective exponent (default 1.5).
	Gamma float64
	// AlphaGrowth multiplies α each pass (default 1.5).
	AlphaGrowth float64
}

// Name implements Restreamer.
func (ReFennel) Name() string { return "ReFennel" }

// Restream implements Restreamer.
func (r ReFennel) Restream(w *graph.Weighted, k int, prev []int32) []int32 {
	passes := r.Passes
	if passes <= 0 {
		passes = 3
	}
	gamma := r.Gamma
	if gamma == 0 {
		gamma = 1.5
	}
	growth := r.AlphaGrowth
	if growth <= 0 {
		growth = 1.5
	}
	n := w.NumVertices()
	m := float64(w.NumEdges())
	alpha := math.Sqrt(float64(k)) * m / math.Pow(float64(n), 1.5)
	labels := coldStart(n, k, prev, r.Seed)
	order := rng.New(r.Seed).Perm(n)
	counts := make([]float64, k)
	for pass := 0; pass < passes; pass++ {
		sizes := make([]float64, k)
		for _, vi := range order {
			v := graph.VertexID(vi)
			for i := range counts {
				counts[i] = 0
			}
			for _, a := range w.Neighbors(v) {
				counts[labels[a.To]] += float64(a.Weight)
			}
			best, bestScore := labels[v], math.Inf(-1)
			for l := 0; l < k; l++ {
				s := counts[l] - alpha*gamma*math.Pow(sizes[l], gamma-1)
				if s > bestScore || (s == bestScore && int32(l) == labels[v]) {
					best, bestScore = int32(l), s
				}
			}
			labels[v] = best
			sizes[best]++
		}
		alpha *= growth
	}
	return labels
}

// coldStart extends prev to n entries, assigning unknown vertices randomly.
func coldStart(n, k int, prev []int32, seed uint64) []int32 {
	labels := make([]int32, n)
	src := rng.New(seed ^ 0x5eed)
	for v := 0; v < n; v++ {
		if v < len(prev) && prev[v] >= 0 && int(prev[v]) < k {
			labels[v] = prev[v]
		} else {
			labels[v] = int32(src.Intn(k))
		}
	}
	return labels
}
