package baselines

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
)

func TestRestreamColdStartValid(t *testing.T) {
	w := testGraph()
	for _, r := range []Restreamer{ReLDG{Seed: 1}, ReFennel{Seed: 1}} {
		labels := r.Restream(w, 8, nil)
		if err := metrics.ValidateLabels(labels, 8); err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
	}
}

func TestRestreamImprovesOverSinglePass(t *testing.T) {
	// Multiple restreaming passes must beat one-pass streaming locality.
	w := testGraph()
	single := metrics.Phi(w, LDG{Seed: 3}.Partition(w, 8))
	multi := metrics.Phi(w, ReLDG{Seed: 3, Passes: 4}.Restream(w, 8, nil))
	if multi <= single {
		t.Fatalf("restreaming phi=%.3f not better than single pass %.3f", multi, single)
	}
}

func TestRestreamWarmStartIsStable(t *testing.T) {
	// Re-partitioning from a good previous state must move few vertices.
	g, truth := gen.PlantedPartition(2000, 4, 12, 2, 31)
	w := graph.Convert(g)
	for _, r := range []Restreamer{ReLDG{Seed: 5, Passes: 1}, ReFennel{Seed: 5, Passes: 1}} {
		labels := r.Restream(w, 4, truth)
		if d := metrics.Difference(truth, labels); d > 0.25 {
			t.Fatalf("%s moved %.0f%% from a near-optimal start", r.Name(), 100*d)
		}
		if phi := metrics.Phi(w, labels); phi < 0.7 {
			t.Fatalf("%s destroyed locality: phi=%.3f", r.Name(), phi)
		}
	}
}

func TestRestreamHandlesNewVertices(t *testing.T) {
	w := testGraph()
	prev := ReLDG{Seed: 7}.Restream(w, 4, nil)
	grown := w.Clone()
	grown.AddVertices(100)
	for i := 0; i < 100; i++ {
		grown.AddEdge(graph.VertexID(2000+i), graph.VertexID(i*13%2000), 2)
	}
	labels := ReLDG{Seed: 7}.Restream(grown, 4, prev)
	if len(labels) != 2100 {
		t.Fatalf("labels=%d", len(labels))
	}
	if err := metrics.ValidateLabels(labels, 4); err != nil {
		t.Fatal(err)
	}
}

func TestRestreamDeterministic(t *testing.T) {
	w := testGraph()
	for _, r := range []Restreamer{ReLDG{Seed: 11}, ReFennel{Seed: 11}} {
		a := r.Restream(w, 8, nil)
		b := r.Restream(w, 8, nil)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s nondeterministic", r.Name())
			}
		}
	}
}

func TestRestreamRejectsBadPrevLabels(t *testing.T) {
	// Out-of-range previous labels are treated as cold vertices rather than
	// propagated.
	w := graph.NewWeighted(4)
	w.AddEdge(0, 1, 1)
	w.AddEdge(2, 3, 1)
	labels := ReLDG{Seed: 13}.Restream(w, 2, []int32{-1, 5, 0, 1})
	if err := metrics.ValidateLabels(labels, 2); err != nil {
		t.Fatal(err)
	}
}

// Spinner's incremental mode and restreaming solve the same problem; on a
// growth workload Spinner should be at least as stable (it migrates only
// score-improving vertices, while restreaming re-places everything).
func TestSpinnerAdaptVsRestreamStability(t *testing.T) {
	g := gen.WattsStrogatz(3000, 8, 0.2, 37)
	w := graph.Convert(g)
	base := ReLDG{Seed: 17, Passes: 4}.Restream(w, 8, nil)

	grown := w.Clone()
	mut := gen.GrowthBatch(grown, 0.02, 39)
	if _, err := mut.Apply(grown); err != nil {
		t.Fatal(err)
	}
	relabeled := ReLDG{Seed: 17, Passes: 1}.Restream(grown, 8, base)
	moved := metrics.Difference(base, relabeled[:len(base)])
	t.Logf("restreaming moved %.1f%% after 2%% growth", 100*moved)
	if err := metrics.ValidateLabels(relabeled, 8); err != nil {
		t.Fatal(err)
	}
}
