package baselines

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/rng"
)

var allPartitioners = []Partitioner{
	Hash{},
	Random{Seed: 1},
	LDG{Seed: 1},
	Fennel{Seed: 1},
	Multilevel{Seed: 1},
	LPACoarsen{Seed: 1},
}

func testGraph() *graph.Weighted {
	return graph.Convert(gen.WattsStrogatz(2000, 8, 0.2, 99))
}

func TestAllProduceValidLabels(t *testing.T) {
	w := testGraph()
	for _, p := range allPartitioners {
		for _, k := range []int{1, 2, 7, 16} {
			labels := p.Partition(w, k)
			if len(labels) != w.NumVertices() {
				t.Fatalf("%s k=%d: %d labels", p.Name(), k, len(labels))
			}
			if err := metrics.ValidateLabels(labels, k); err != nil {
				t.Fatalf("%s k=%d: %v", p.Name(), k, err)
			}
		}
	}
}

func TestAllDeterministic(t *testing.T) {
	w := testGraph()
	for _, p := range allPartitioners {
		a := p.Partition(w, 8)
		b := p.Partition(w, 8)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s nondeterministic at vertex %d", p.Name(), i)
			}
		}
	}
}

func TestNames(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range allPartitioners {
		if p.Name() == "" || seen[p.Name()] {
			t.Fatalf("bad or duplicate name %q", p.Name())
		}
		seen[p.Name()] = true
	}
}

func TestHashUniform(t *testing.T) {
	w := graph.NewWeighted(10000)
	labels := Hash{}.Partition(w, 10)
	counts := make([]int, 10)
	for _, l := range labels {
		counts[l]++
	}
	for l, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("hash bucket %d has %d vertices, want ~1000", l, c)
		}
	}
}

func TestHashLocalityIsRandomLevel(t *testing.T) {
	// Hash partitioning gives φ ≈ 1/k.
	w := testGraph()
	phi := metrics.Phi(w, Hash{}.Partition(w, 8))
	if phi < 0.08 || phi > 0.18 {
		t.Fatalf("hash phi=%.3f, want ~1/8", phi)
	}
}

func TestLDGBetterThanHash(t *testing.T) {
	w := testGraph()
	phiLDG := metrics.Phi(w, LDG{Seed: 3}.Partition(w, 8))
	phiHash := metrics.Phi(w, Hash{}.Partition(w, 8))
	if phiLDG <= phiHash {
		t.Fatalf("LDG phi=%.3f not better than hash %.3f", phiLDG, phiHash)
	}
}

func TestLDGVertexBalance(t *testing.T) {
	w := testGraph()
	labels := LDG{Seed: 3}.Partition(w, 8)
	counts := make([]int, 8)
	for _, l := range labels {
		counts[l]++
	}
	target := w.NumVertices() / 8
	for l, c := range counts {
		if float64(c) > 1.2*float64(target) {
			t.Fatalf("LDG partition %d has %d vertices (target %d)", l, c, target)
		}
	}
}

func TestFennelBetterThanHashAndBounded(t *testing.T) {
	w := testGraph()
	labels := Fennel{Seed: 5}.Partition(w, 8)
	phi := metrics.Phi(w, labels)
	phiHash := metrics.Phi(w, Hash{}.Partition(w, 8))
	if phi <= phiHash {
		t.Fatalf("Fennel phi=%.3f not better than hash %.3f", phi, phiHash)
	}
	counts := make([]int, 8)
	for _, l := range labels {
		counts[l]++
	}
	bound := 1.1 * float64(w.NumVertices()) / 8
	for l, c := range counts {
		if float64(c) > bound+1 {
			t.Fatalf("Fennel partition %d has %d vertices, bound %.0f", l, c, bound)
		}
	}
}

func TestMultilevelQuality(t *testing.T) {
	// On a planted-community graph the multilevel partitioner should
	// essentially recover the communities.
	g, _ := gen.PlantedPartition(2000, 4, 14, 2, 7)
	w := graph.Convert(g)
	labels := Multilevel{Seed: 7}.Partition(w, 4)
	phi := metrics.Phi(w, labels)
	rho := metrics.Rho(w, labels, 4)
	if phi < 0.75 {
		t.Fatalf("multilevel phi=%.3f on planted graph", phi)
	}
	if rho > 1.10 {
		t.Fatalf("multilevel rho=%.3f, want near 1.03", rho)
	}
}

func TestMultilevelBalanceBound(t *testing.T) {
	w := testGraph()
	for _, k := range []int{4, 16} {
		labels := Multilevel{Seed: 9}.Partition(w, k)
		if rho := metrics.Rho(w, labels, k); rho > 1.12 {
			t.Fatalf("k=%d rho=%.3f, exceeds imbalance", k, rho)
		}
	}
}

func TestMultilevelBeatsStreaming(t *testing.T) {
	// Table I ordering: METIS produces the best (or near-best) locality.
	w := testGraph()
	phiML := metrics.Phi(w, Multilevel{Seed: 11}.Partition(w, 8))
	phiLDG := metrics.Phi(w, LDG{Seed: 11}.Partition(w, 8))
	if phiML <= phiLDG {
		t.Fatalf("multilevel phi=%.3f not better than LDG %.3f", phiML, phiLDG)
	}
}

func TestMultilevelK1(t *testing.T) {
	w := testGraph()
	labels := Multilevel{Seed: 1}.Partition(w, 1)
	for _, l := range labels {
		if l != 0 {
			t.Fatal("k=1 nonzero label")
		}
	}
}

func TestMultilevelEmptyGraph(t *testing.T) {
	w := graph.NewWeighted(0)
	if got := (Multilevel{}).Partition(w, 4); len(got) != 0 {
		t.Fatal("empty graph labels")
	}
}

func TestMultilevelDisconnected(t *testing.T) {
	// Several components; region growing must still cover everything.
	w := graph.NewWeighted(300)
	for c := 0; c < 3; c++ {
		base := graph.VertexID(c * 100)
		for i := 0; i < 99; i++ {
			w.AddEdge(base+graph.VertexID(i), base+graph.VertexID(i+1), 1)
		}
	}
	labels := Multilevel{Seed: 13}.Partition(w, 3)
	if err := metrics.ValidateLabels(labels, 3); err != nil {
		t.Fatal(err)
	}
	if rho := metrics.Rho(w, labels, 3); rho > 1.25 {
		t.Fatalf("disconnected rho=%.3f", rho)
	}
}

func TestLPACoarsenQuality(t *testing.T) {
	g, _ := gen.PlantedPartition(2000, 4, 14, 2, 17)
	w := graph.Convert(g)
	labels := LPACoarsen{Seed: 17}.Partition(w, 4)
	phi := metrics.Phi(w, labels)
	phiHash := metrics.Phi(w, Hash{}.Partition(w, 4))
	if phi <= phiHash {
		t.Fatalf("LPACoarsen phi=%.3f not better than hash %.3f", phi, phiHash)
	}
}

func TestLPACoarsenVertexBalanced(t *testing.T) {
	w := testGraph()
	labels := LPACoarsen{Seed: 19}.Partition(w, 8)
	counts := make([]int, 8)
	for _, l := range labels {
		counts[l]++
	}
	target := float64(w.NumVertices()) / 8
	for l, c := range counts {
		if float64(c) > 1.6*target {
			t.Fatalf("LPACoarsen partition %d has %d vertices (target %.0f)", l, c, target)
		}
	}
}

// Property: every partitioner yields complete valid labelings on arbitrary
// graphs.
func TestAllPartitionersProperty(t *testing.T) {
	f := func(seed uint16, kRaw uint8) bool {
		k := int(kRaw%6) + 1
		s := rng.New(uint64(seed))
		n := 30 + s.Intn(120)
		w := graph.Convert(gen.ErdosRenyi(n, int64(3*n), true, uint64(seed)))
		for _, p := range []Partitioner{Hash{}, Random{Seed: uint64(seed)}, LDG{Seed: uint64(seed)}, Fennel{Seed: uint64(seed)}, Multilevel{Seed: uint64(seed)}, LPACoarsen{Seed: uint64(seed)}} {
			labels := p.Partition(w, k)
			if len(labels) != n || metrics.ValidateLabels(labels, k) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
