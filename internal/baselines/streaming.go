package baselines

import (
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// LDG is the Linear Deterministic Greedy streaming partitioner of Stanton
// & Kliot (KDD 2012): vertices arrive in a random order and each is placed
// on the partition maximizing
//
//	|N(v) ∩ P_i| · (1 − |P_i| / C)
//
// where |P_i| is the partition's vertex count and C = slack·n/k its vertex
// capacity. LDG balances vertex counts, not edges — which is why Table I
// reports it with higher edge-ρ than edge-balanced approaches.
type LDG struct {
	// Seed orders the stream.
	Seed uint64
	// Slack is the capacity multiplier (default 1.0, the published
	// setting: capacity n/k).
	Slack float64
}

// Name implements Partitioner.
func (LDG) Name() string { return "LDG" }

// Partition implements Partitioner.
func (l LDG) Partition(w *graph.Weighted, k int) []int32 {
	n := w.NumVertices()
	slack := l.Slack
	if slack <= 0 {
		slack = 1.0
	}
	capacity := slack * float64(n) / float64(k)
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	sizes := make([]float64, k)
	counts := make([]float64, k) // |N(v) ∩ P_i| scratch
	src := rng.New(l.Seed)
	order := src.Perm(n)
	for _, vi := range order {
		v := graph.VertexID(vi)
		for i := range counts {
			counts[i] = 0
		}
		for _, a := range w.Neighbors(v) {
			if lab := labels[a.To]; lab >= 0 {
				counts[lab] += float64(a.Weight)
			}
		}
		best, bestScore := int32(0), math.Inf(-1)
		for i := 0; i < k; i++ {
			penalty := 1 - sizes[i]/capacity
			if penalty < 0 {
				penalty = 0
			}
			s := counts[i] * penalty
			// Break score ties toward the emptier partition, as published.
			if s > bestScore || (s == bestScore && sizes[i] < sizes[best]) {
				best, bestScore = int32(i), s
			}
		}
		labels[v] = best
		sizes[best]++
	}
	return labels
}

// Fennel is the streaming partitioner of Tsourakakis et al. (WSDM 2014).
// Each arriving vertex is placed on the partition maximizing
//
//	|N(v) ∩ P_i| − α·γ·|P_i|^(γ−1)
//
// with γ = 1.5 and α = √k · m / n^1.5, subject to the hard vertex bound
// ν·n/k (ν = 1.1), the configuration the paper's Table I row uses.
type Fennel struct {
	// Seed orders the stream.
	Seed uint64
	// Gamma is the objective exponent (default 1.5).
	Gamma float64
	// Nu is the hard balance bound multiplier (default 1.1).
	Nu float64
}

// Name implements Partitioner.
func (Fennel) Name() string { return "Fennel" }

// Partition implements Partitioner.
func (f Fennel) Partition(w *graph.Weighted, k int) []int32 {
	n := w.NumVertices()
	gamma := f.Gamma
	if gamma == 0 {
		gamma = 1.5
	}
	nu := f.Nu
	if nu == 0 {
		nu = 1.1
	}
	m := float64(w.NumEdges())
	alpha := math.Sqrt(float64(k)) * m / math.Pow(float64(n), 1.5)
	bound := nu * float64(n) / float64(k)

	labels := make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	sizes := make([]float64, k)
	counts := make([]float64, k)
	src := rng.New(f.Seed)
	order := src.Perm(n)
	for _, vi := range order {
		v := graph.VertexID(vi)
		for i := range counts {
			counts[i] = 0
		}
		for _, a := range w.Neighbors(v) {
			if lab := labels[a.To]; lab >= 0 {
				counts[lab] += float64(a.Weight)
			}
		}
		best, bestScore := int32(-1), math.Inf(-1)
		for i := 0; i < k; i++ {
			if sizes[i]+1 > bound {
				continue
			}
			s := counts[i] - alpha*gamma*math.Pow(sizes[i], gamma-1)
			if s > bestScore {
				best, bestScore = int32(i), s
			}
		}
		if best < 0 {
			// All partitions at the bound (can happen for the last few
			// vertices); fall back to the smallest.
			best = 0
			for i := 1; i < k; i++ {
				if sizes[i] < sizes[best] {
					best = int32(i)
				}
			}
		}
		labels[v] = best
		sizes[best]++
	}
	return labels
}
