package baselines

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
)

// LPACoarsen is an analogue of Wang et al., "How to Partition a
// Billion-Node Graph" (ICDE 2014): plain label propagation groups vertices
// into size-capped communities, the graph is contracted by community, the
// contracted graph is partitioned with the multilevel partitioner, and the
// result is projected back to the original vertices.
//
// As the paper observes (§VI), the coarsening loses locality on skewed
// graphs and the method balances vertex counts rather than edges — both
// effects visible in Table I's Wang et al. row (lower φ at k ≥ 8, high ρ).
// We reproduce the vertex-count balancing deliberately: community sizes are
// capped in vertices, and the contracted partitioning balances community
// vertex counts.
type LPACoarsen struct {
	// Seed drives LPA ordering and the downstream multilevel partitioner.
	Seed uint64
	// Rounds is the number of LPA sweeps (default 5).
	Rounds int
	// MaxCommunityFrac caps each community at this fraction of n
	// (default 0.01, i.e. communities of at most 1% of the vertices, the
	// role of the authors' size threshold parameter).
	MaxCommunityFrac float64
}

// Name implements Partitioner.
func (LPACoarsen) Name() string { return "LPACoarsen" }

// Partition implements Partitioner.
func (p LPACoarsen) Partition(w *graph.Weighted, k int) []int32 {
	n := w.NumVertices()
	if k <= 1 || n == 0 {
		return make([]int32, n)
	}
	rounds := p.Rounds
	if rounds <= 0 {
		rounds = 5
	}
	frac := p.MaxCommunityFrac
	if frac <= 0 {
		frac = 0.01
	}
	maxSize := int(frac * float64(n))
	if maxSize < 1 {
		maxSize = 1
	}

	src := rng.New(p.Seed)
	comm := make([]int32, n) // community label, initially singleton
	size := make([]int, n)
	for v := range comm {
		comm[v] = int32(v)
		size[v] = 1
	}
	counts := make([]float64, 0, 32)
	countIdx := map[int32]int{}
	order := src.Perm(n)
	for r := 0; r < rounds; r++ {
		moved := 0
		for _, vi := range order {
			v := graph.VertexID(vi)
			counts = counts[:0]
			clear(countIdx)
			var labels []int32
			for _, a := range w.Neighbors(v) {
				c := comm[a.To]
				i, ok := countIdx[c]
				if !ok {
					i = len(counts)
					countIdx[c] = i
					counts = append(counts, 0)
					labels = append(labels, c)
				}
				counts[i] += float64(a.Weight)
			}
			cur := comm[v]
			best, bestW := cur, -1.0
			for i, c := range labels {
				if c != cur && size[c] >= maxSize {
					continue // community full
				}
				if counts[i] > bestW || (counts[i] == bestW && c == cur) {
					best, bestW = c, counts[i]
				}
			}
			if best != cur {
				size[cur]--
				size[best]++
				comm[v] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}

	// Renumber communities densely.
	remap := make(map[int32]int32, 256)
	for v := 0; v < n; v++ {
		if _, ok := remap[comm[v]]; !ok {
			remap[comm[v]] = int32(len(remap))
		}
	}
	nc := len(remap)
	cid := make([]int32, n)
	for v := 0; v < n; v++ {
		cid[v] = remap[comm[v]]
	}

	// Contract: community graph weighted by inter-community edge weight;
	// "vertex weight" for the downstream balance is the community's vertex
	// count (Wang et al. balances vertices, not edges).
	contracted := graph.NewWeighted(nc)
	type pair struct{ a, b int32 }
	acc := map[pair]int64{}
	w.EdgesOnce(func(u, v graph.VertexID, weight int32) {
		cu, cv := cid[u], cid[v]
		if cu == cv {
			return
		}
		if cu > cv {
			cu, cv = cv, cu
		}
		acc[pair{cu, cv}] += int64(weight)
	})
	// Insert in sorted order: map iteration order is random and adjacency
	// order feeds the downstream matching, so sorting keeps the whole
	// pipeline deterministic.
	pairs := make([]pair, 0, len(acc))
	for pr := range acc {
		pairs = append(pairs, pr)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	for _, pr := range pairs {
		cw := acc[pr]
		if cw > (1 << 30) {
			cw = 1 << 30
		}
		contracted.AddEdge(graph.VertexID(pr.a), graph.VertexID(pr.b), int32(cw))
	}

	// Partition the contracted graph with the multilevel partitioner, then
	// rebalance on community vertex counts.
	ml := Multilevel{Seed: p.Seed ^ 0x77616e67}
	clabels := ml.Partition(contracted, k)
	rebalanceVertexCounts(cid, clabels, size0(cid, nc), k)

	out := make([]int32, n)
	for v := 0; v < n; v++ {
		out[v] = clabels[cid[v]]
	}
	return out
}

// size0 returns the vertex count per community.
func size0(cid []int32, nc int) []int {
	s := make([]int, nc)
	for _, c := range cid {
		s[c]++
	}
	return s
}

// rebalanceVertexCounts greedily moves the smallest communities off
// overloaded partitions (by vertex count) until every partition is within
// 10% of the ideal, mimicking the vertex balancing of Wang et al.
func rebalanceVertexCounts(cid []int32, clabels []int32, csize []int, k int) {
	n := 0
	for _, s := range csize {
		n += s
	}
	target := float64(n) / float64(k)
	limit := 1.10 * target
	loads := make([]float64, k)
	for c, l := range clabels {
		loads[l] += float64(csize[c])
	}
	for iter := 0; iter < 4*len(clabels); iter++ {
		// Find the most overloaded partition.
		worst := 0
		for l := 1; l < k; l++ {
			if loads[l] > loads[worst] {
				worst = l
			}
		}
		if loads[worst] <= limit {
			return
		}
		// Move its smallest community to the lightest partition.
		lightest := 0
		for l := 1; l < k; l++ {
			if loads[l] < loads[lightest] {
				lightest = l
			}
		}
		bestC, bestSize := -1, 1<<62
		for c, l := range clabels {
			if int(l) == worst && csize[c] > 0 && csize[c] < bestSize {
				bestC, bestSize = c, csize[c]
			}
		}
		if bestC < 0 {
			return
		}
		clabels[bestC] = int32(lightest)
		loads[worst] -= float64(bestSize)
		loads[lightest] += float64(bestSize)
	}
}
