package baselines

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// Multilevel is a from-scratch METIS-style multilevel k-way partitioner
// (Karypis & Kumar): the graph is coarsened by heavy-edge matching, the
// coarsest graph is partitioned by greedy region growing, and the
// partitioning is projected back level by level with boundary
// Fiduccia–Mattheyses refinement at each level.
//
// It stands in for the sequential METIS binary in Table I: centralized,
// needs the whole graph in memory, and produces the best locality at
// near-perfect balance — the golden-standard row Spinner is compared
// against. Balance is on edges (vertex weight = weighted degree), matching
// the paper's ρ metric.
type Multilevel struct {
	// Seed drives matching and seed selection.
	Seed uint64
	// Imbalance is the allowed load factor over the ideal (default 1.03,
	// METIS's default ufactor ≈ 1.03 as reported in Table I's ρ column).
	Imbalance float64
	// CoarsenTo stops coarsening when the graph has at most this many
	// vertices (default 30·k).
	CoarsenTo int
	// Passes is the number of refinement passes per level (default 6).
	Passes int
}

// Name implements Partitioner.
func (Multilevel) Name() string { return "Multilevel" }

// mlArc is a weighted arc in a coarse graph.
type mlArc struct {
	to int32
	w  float64
}

// mlGraph is one level of the multilevel hierarchy.
type mlGraph struct {
	vwgt []float64 // vertex weight: total original weighted degree merged in
	adj  [][]mlArc
}

func (g *mlGraph) n() int { return len(g.vwgt) }

func (g *mlGraph) totalVwgt() float64 {
	t := 0.0
	for _, w := range g.vwgt {
		t += w
	}
	return t
}

// Partition implements Partitioner.
func (m Multilevel) Partition(w *graph.Weighted, k int) []int32 {
	n := w.NumVertices()
	if k <= 1 || n == 0 {
		return make([]int32, n)
	}
	imb := m.Imbalance
	if imb <= 1 {
		imb = 1.03
	}
	coarsenTo := m.CoarsenTo
	if coarsenTo <= 0 {
		coarsenTo = 30 * k
	}
	passes := m.Passes
	if passes <= 0 {
		passes = 6
	}
	src := rng.New(m.Seed)

	// Level 0 from the input graph.
	g0 := &mlGraph{vwgt: make([]float64, n), adj: make([][]mlArc, n)}
	for v := 0; v < n; v++ {
		g0.vwgt[v] = float64(w.WeightedDegree(graph.VertexID(v)))
		arcs := w.Neighbors(graph.VertexID(v))
		g0.adj[v] = make([]mlArc, len(arcs))
		for i, a := range arcs {
			g0.adj[v][i] = mlArc{to: int32(a.To), w: float64(a.Weight)}
		}
	}

	// Coarsen.
	levels := []*mlGraph{g0}
	maps := [][]int32{} // maps[i]: levels[i] vertex -> levels[i+1] vertex
	for levels[len(levels)-1].n() > coarsenTo {
		cur := levels[len(levels)-1]
		cmap, coarse := coarsen(cur, src)
		if coarse.n() >= cur.n() { // no progress; stop
			break
		}
		levels = append(levels, coarse)
		maps = append(maps, cmap)
	}

	// Initial partitioning on the coarsest graph.
	coarsest := levels[len(levels)-1]
	labels := growPartitions(coarsest, k, src)
	refine(coarsest, labels, k, imb, passes, src)

	// Uncoarsen with refinement at every level.
	for i := len(maps) - 1; i >= 0; i-- {
		fine := levels[i]
		fineLabels := make([]int32, fine.n())
		for v := range fineLabels {
			fineLabels[v] = labels[maps[i][v]]
		}
		labels = fineLabels
		refine(fine, labels, k, imb, passes, src)
	}
	return labels
}

// coarsen performs one round of heavy-edge matching and contracts matched
// pairs. Returns the fine→coarse map and the coarse graph.
func coarsen(g *mlGraph, src *rng.Source) ([]int32, *mlGraph) {
	n := g.n()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	order := src.Perm(n)
	for _, vi := range order {
		if match[vi] >= 0 {
			continue
		}
		best, bestW := int32(-1), -1.0
		for _, a := range g.adj[vi] {
			if match[a.to] < 0 && int(a.to) != vi && a.w > bestW {
				best, bestW = a.to, a.w
			}
		}
		if best >= 0 {
			match[vi] = best
			match[best] = int32(vi)
		} else {
			match[vi] = int32(vi) // matched with itself
		}
	}
	// Assign coarse IDs: pair gets one ID, owned by the smaller index.
	cmap := make([]int32, n)
	next := int32(0)
	for v := 0; v < n; v++ {
		u := int(match[v])
		if u >= v {
			cmap[v] = next
			if u != v {
				cmap[u] = next
			}
			next++
		}
	}
	coarse := &mlGraph{vwgt: make([]float64, next), adj: make([][]mlArc, next)}
	for v := 0; v < n; v++ {
		coarse.vwgt[cmap[v]] += g.vwgt[v]
	}
	// Merge adjacency using a stamped scratch to dedup arcs.
	idx := make([]int32, next)
	stamp := make([]int32, next)
	for i := range stamp {
		stamp[i] = -1
	}
	// Accumulate arcs per coarse vertex by iterating fine vertices grouped
	// by their coarse owner.
	group := make([][]int32, next)
	for v := 0; v < n; v++ {
		group[cmap[v]] = append(group[cmap[v]], int32(v))
	}
	for cv := int32(0); cv < next; cv++ {
		var arcs []mlArc
		for _, v := range group[cv] {
			for _, a := range g.adj[v] {
				cu := cmap[a.to]
				if cu == cv {
					continue // internal edge disappears
				}
				if stamp[cu] != cv {
					stamp[cu] = cv
					idx[cu] = int32(len(arcs))
					arcs = append(arcs, mlArc{to: cu, w: a.w})
				} else {
					arcs[idx[cu]].w += a.w
				}
			}
		}
		coarse.adj[cv] = arcs
	}
	return cmap, coarse
}

// growPartitions produces an initial k-way labeling by greedy region
// growing: repeatedly BFS from a random unassigned seed, absorbing
// vertices until the partition reaches the ideal weight.
func growPartitions(g *mlGraph, k int, src *rng.Source) []int32 {
	n := g.n()
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	target := g.totalVwgt() / float64(k)
	queue := make([]int32, 0, n)
	part := int32(0)
	load := 0.0
	nextSeed := 0
	order := src.Perm(n)
	for assigned := 0; assigned < n; {
		if len(queue) == 0 {
			// New BFS seed: next unassigned vertex in the random order.
			for nextSeed < n && labels[order[nextSeed]] >= 0 {
				nextSeed++
			}
			if nextSeed >= n {
				break
			}
			queue = append(queue, int32(order[nextSeed]))
		}
		v := queue[0]
		queue = queue[1:]
		if labels[v] >= 0 {
			continue
		}
		labels[v] = part
		load += g.vwgt[v]
		assigned++
		for _, a := range g.adj[v] {
			if labels[a.to] < 0 {
				queue = append(queue, a.to)
			}
		}
		if load >= target && part < int32(k-1) {
			part++
			load = 0
			queue = queue[:0]
		}
	}
	for v := range labels {
		if labels[v] < 0 {
			labels[v] = part
		}
	}
	return labels
}

// refine runs boundary FM-style passes: each pass scans all vertices and
// greedily moves a vertex to the adjacent partition with the highest gain,
// subject to the balance bound. Overloaded partitions may evict vertices
// even at zero or negative gain to restore balance.
func refine(g *mlGraph, labels []int32, k int, imb float64, passes int, src *rng.Source) {
	n := g.n()
	total := g.totalVwgt()
	maxLoad := imb * total / float64(k)
	loads := make([]float64, k)
	for v := 0; v < n; v++ {
		loads[labels[v]] += g.vwgt[v]
	}
	conn := make([]float64, k)
	touched := make([]int32, 0, 16)
	order := src.Perm(n)
	for pass := 0; pass < passes; pass++ {
		moved := 0
		for _, vi := range order {
			v := int32(vi)
			cur := labels[v]
			// Connectivity to each adjacent partition.
			touched = touched[:0]
			for _, a := range g.adj[v] {
				l := labels[a.to]
				if conn[l] == 0 {
					touched = append(touched, l)
				}
				conn[l] += a.w
			}
			intW := conn[cur]
			vw := g.vwgt[v]
			best := cur
			bestGain := 0.0
			const eps = 1e-9
			for _, l := range touched {
				if l == cur || loads[l]+vw > maxLoad {
					continue
				}
				gain := conn[l] - intW
				if gain > bestGain+eps {
					best, bestGain = l, gain
					continue
				}
				// Zero-/equal-gain moves are taken when they even out loads.
				if gain > bestGain-eps && gain >= -eps && loads[cur]-vw > loads[l]+vw {
					best, bestGain = l, gain
				}
			}
			// Overloaded source with no gainful escape: evict to the
			// lightest adjacent partition regardless of gain.
			if best == cur && loads[cur] > maxLoad {
				for _, l := range touched {
					if l == cur {
						continue
					}
					if best == cur || loads[l] < loads[best] {
						best = l
					}
				}
			}
			if best != cur {
				loads[cur] -= vw
				loads[best] += vw
				labels[v] = best
				moved++
			}
			for _, l := range touched {
				conn[l] = 0
			}
		}
		if moved == 0 {
			break
		}
	}
}
