// Package baselines implements the partitioners Spinner is compared against
// in the paper's evaluation (Table I and Fig. 3b):
//
//   - Hash: the de-facto standard hash partitioning that Spinner aims to
//     replace (§I, §V-F);
//   - Random: seeded uniform assignment (the paper's "random partitioning"
//     starting point, Fig. 4);
//   - LDG: the streaming linear deterministic greedy heuristic of Stanton
//     & Kliot (KDD 2012), vertex-balanced;
//   - Fennel: the streaming partitioner of Tsourakakis et al. (WSDM 2014)
//     with the γ = 1.5 objective;
//   - Multilevel: a from-scratch METIS-style multilevel partitioner
//     (heavy-edge matching, greedy growing, boundary FM refinement),
//     standing in for the sequential METIS binary;
//   - LPACoarsen: an analogue of Wang et al. (ICDE 2014): label-propagation
//     coarsening followed by multilevel partitioning of the contracted
//     graph.
//
// Every implementation is deterministic given its seed, balances on edges
// (weighted degree) except LDG which is vertex-balanced exactly as
// published — the paper calls out that this is why Stanton et al. shows
// higher ρ in Table I.
package baselines

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// Partitioner assigns each vertex of a weighted undirected graph one of k
// labels.
type Partitioner interface {
	// Name identifies the approach in experiment output.
	Name() string
	// Partition returns a labeling of w into k parts.
	Partition(w *graph.Weighted, k int) []int32
}

// Hash is modulo-hash partitioning: label(v) = h(v) mod k. It is the
// baseline every system falls back to and the comparison target of
// Fig. 3(b), Fig. 9 and Table IV.
type Hash struct{}

// Name implements Partitioner.
func (Hash) Name() string { return "Hash" }

// Partition implements Partitioner.
func (Hash) Partition(w *graph.Weighted, k int) []int32 {
	labels := make([]int32, w.NumVertices())
	for v := range labels {
		labels[v] = int32(hash64(uint64(v)) % uint64(k))
	}
	return labels
}

// hash64 is a splitmix64-style finalizer, a good integer hash.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Random assigns labels uniformly at random (seeded).
type Random struct {
	// Seed drives the assignment; the zero value is a valid seed.
	Seed uint64
}

// Name implements Partitioner.
func (Random) Name() string { return "Random" }

// Partition implements Partitioner.
func (r Random) Partition(w *graph.Weighted, k int) []int32 {
	src := rng.New(r.Seed)
	labels := make([]int32, w.NumVertices())
	for v := range labels {
		labels[v] = int32(src.Intn(k))
	}
	return labels
}
