package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// smallCfg keeps experiment tests fast while preserving the shapes.
func smallCfg() Config {
	return Config{Scale: 4000, Seed: 7, Workers: 4}
}

func TestTable1Shape(t *testing.T) {
	var buf bytes.Buffer
	cfg := smallCfg()
	cfg.Out = &buf
	rows, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5*5 {
		t.Fatalf("rows=%d, want 25", len(rows))
	}
	// Indivisible-hub granularity bound for balance checks: a single
	// celebrity vertex can exceed the slack capacity at test scale.
	w := graph.Convert(gen.Load(gen.TwitterLike, cfg.Scale, cfg.Seed))
	var totalLoad, maxDeg float64
	for v := 0; v < w.NumVertices(); v++ {
		d := float64(w.WeightedDegree(graph.VertexID(v)))
		totalLoad += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	granularity := func(k int) float64 { return maxDeg / (totalLoad / float64(k)) }
	get := func(app string, k int) Table1Row {
		for _, r := range rows {
			if r.Approach == app && r.K == k {
				return r
			}
		}
		t.Fatalf("missing row %s k=%d", app, k)
		return Table1Row{}
	}
	for _, k := range []int{2, 4, 8, 16, 32} {
		sp := get("Spinner", k)
		// Spinner's balance must be near c = 1.05, up to hub granularity.
		if sp.Rho > 1.10+granularity(k) {
			t.Errorf("k=%d: Spinner rho=%.3f (granularity %.2f)", k, sp.Rho, granularity(k))
		}
		// Spinner locality must be within striking distance of Metis
		// (Table I: within 2-12% of the best) — allow 25% slack at test
		// scale — and must beat vertex-balanced streaming at higher k.
		me := get("Metis", k)
		if sp.Phi < 0.75*me.Phi {
			t.Errorf("k=%d: Spinner φ=%.3f too far below Metis φ=%.3f", k, sp.Phi, me.Phi)
		}
	}
	// φ decreases in k for Spinner (Fig. 3a trend visible in Table I too).
	if get("Spinner", 2).Phi <= get("Spinner", 32).Phi {
		t.Error("Spinner φ did not decrease with k")
	}
	if !strings.Contains(buf.String(), "Spinner") {
		t.Error("rendered output missing Spinner row")
	}
}

func TestTable3Shape(t *testing.T) {
	rows, err := Table3(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(gen.AllDatasets) {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.Rho < 1 || r.Rho > 1.25 {
			t.Errorf("%s: rho=%.3f outside sane band", r.Dataset, r.Rho)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	rows, err := Table4(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows=%d", len(rows))
	}
	random, spinner := rows[0], rows[1]
	if random.Approach != "Random" || spinner.Approach != "Spinner" {
		t.Fatalf("row order: %+v", rows)
	}
	// Spinner must cut the slowest-worker time and the idle fraction.
	if spinner.Summary.Max >= random.Summary.Max {
		t.Errorf("Spinner max %v not better than random %v", spinner.Summary.Max, random.Summary.Max)
	}
	if spinner.Summary.Mean >= random.Summary.Mean {
		t.Errorf("Spinner mean %v not better than random %v", spinner.Summary.Mean, random.Summary.Mean)
	}
}

func TestFig3Shape(t *testing.T) {
	cfg := smallCfg()
	rows, err := Fig3(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Per dataset: k ∈ {2,4,8,16} → 4 rows each.
	if len(rows) != len(gen.AllDatasets)*4 {
		t.Fatalf("rows=%d", len(rows))
	}
	byDS := map[gen.Dataset][]Fig3Row{}
	for _, r := range rows {
		byDS[r.Dataset] = append(byDS[r.Dataset], r)
	}
	for d, rs := range byDS {
		// φ decreases (weakly) with k; improvement over hash grows.
		if rs[0].Phi < rs[len(rs)-1].Phi {
			t.Errorf("%s: φ increased with k", d)
		}
		if rs[len(rs)-1].Improvement <= rs[0].Improvement {
			t.Errorf("%s: improvement did not grow with k", d)
		}
		for _, r := range rs {
			if r.Improvement < 1 {
				t.Errorf("%s k=%d: Spinner worse than hash (%.2fx)", d, r.K, r.Improvement)
			}
		}
	}
}

func TestFig4Shape(t *testing.T) {
	series, err := Fig4(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series=%d", len(series))
	}
	for _, s := range series {
		h := s.History
		if len(h) < 3 {
			t.Fatalf("%s: only %d iterations", s.Name, len(h))
		}
		last := h[len(h)-1]
		if last.Phi <= h[0].Phi {
			t.Errorf("%s: φ did not improve (%.3f → %.3f)", s.Name, h[0].Phi, last.Phi)
		}
		// Final balance: near c up to the indivisible-hub granularity.
		if last.Rho > 1.1+s.Granularity {
			t.Errorf("%s: final ρ=%.3f (granularity %.2f)", s.Name, last.Rho, s.Granularity)
		}
		// Balance improves from the random start (Fig. 4a behaviour) unless
		// the hub floor dominates both.
		if last.Rho > h[0].Rho+s.Granularity/2+1e-9 && h[0].Rho > 1.1 {
			t.Errorf("%s: ρ worsened (%.3f → %.3f, granularity %.2f)", s.Name, h[0].Rho, last.Rho, s.Granularity)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	cfg := smallCfg()
	rows, err := Fig5(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("rows=%d", len(rows))
	}
	var sumItersSmallC, sumItersLargeC float64
	for _, r := range rows {
		// ρ ≤ c up to the vertex-granularity term (a single hub can exceed
		// the slack capacity at laptop scale) plus probabilistic slack.
		if r.AvgRho > r.C+r.Granularity+0.03 {
			t.Errorf("c=%.2f k=%d: avg ρ=%.3f exceeds c+granularity (%.2f)", r.C, r.K, r.AvgRho, r.C+r.Granularity)
		}
		switch r.C {
		case 1.02:
			sumItersSmallC += r.Iterations
		case 1.20:
			sumItersLargeC += r.Iterations
		}
	}
	// Fig. 5(b): larger c converges at least as fast on average.
	if sumItersLargeC > sumItersSmallC*1.1 {
		t.Errorf("c=1.20 iterations (%v) slower than c=1.02 (%v)", sumItersLargeC, sumItersSmallC)
	}
}

func TestFig7Shape(t *testing.T) {
	cfg := smallCfg()
	rows, err := Fig7(cfg, []float64{0.01, 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.MsgSavings <= 0.3 {
			t.Errorf("+%.0f%%: msg savings %.0f%%, want > 30%%", 100*r.NewEdgeFrac, 100*r.MsgSavings)
		}
		if r.MovedAdaptive >= r.MovedScratch {
			t.Errorf("+%.0f%%: adaptive moved %.0f%% >= scratch %.0f%%",
				100*r.NewEdgeFrac, 100*r.MovedAdaptive, 100*r.MovedScratch)
		}
		if r.MovedScratch < 0.5 {
			t.Errorf("scratch moved only %.0f%%, expected large shuffle", 100*r.MovedScratch)
		}
		if r.AdaptPhi < 0.85*r.ScratchPhi {
			t.Errorf("adaptive φ=%.3f much worse than scratch %.3f", r.AdaptPhi, r.ScratchPhi)
		}
	}
	// Small changes adapt with fewer moved vertices than large ones.
	if rows[0].MovedAdaptive > rows[1].MovedAdaptive+0.15 {
		t.Errorf("moved%% did not grow with change size: %v vs %v", rows[0].MovedAdaptive, rows[1].MovedAdaptive)
	}
}

func TestFig8Shape(t *testing.T) {
	cfg := smallCfg()
	rows, err := Fig8(cfg, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.MovedAdaptive >= r.MovedScratch {
			t.Errorf("+%d: adaptive moved %.0f%% >= scratch %.0f%%", r.NewPartitions,
				100*r.MovedAdaptive, 100*r.MovedScratch)
		}
		if r.AdaptRho > 1.3 {
			t.Errorf("+%d: ρ=%.3f", r.NewPartitions, r.AdaptRho)
		}
	}
	// More new partitions → more vertices shuffle (Fig. 8b trend).
	if rows[1].MovedAdaptive <= rows[0].MovedAdaptive {
		t.Errorf("moved%% did not grow with added partitions: %v vs %v",
			rows[0].MovedAdaptive, rows[1].MovedAdaptive)
	}
}

func TestFig9Shape(t *testing.T) {
	cfg := smallCfg()
	rows, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows=%d, want 3 datasets × 3 apps", len(rows))
	}
	improved := 0
	for _, r := range rows {
		if r.Improvement > 0 {
			improved++
		}
	}
	// Spinner placement must win on the (vast) majority of combinations.
	if improved < 7 {
		t.Errorf("only %d/9 app runs improved under Spinner placement", improved)
	}
}

func TestFig6Shapes(t *testing.T) {
	cfg := Config{Scale: 2000, Seed: 7, Workers: 2}
	a, err := Fig6a(cfg, []int{2000, 8000})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 2 || a[0].Iteration <= 0 {
		t.Fatalf("fig6a rows=%v", a)
	}
	b, err := Fig6b(cfg, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 2 {
		t.Fatalf("fig6b rows=%v", b)
	}
	c, err := Fig6c(cfg, []int{2, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 2 {
		t.Fatalf("fig6c rows=%v", c)
	}
}
