package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Fig6Row is one scalability measurement: the wall-clock runtime of the
// first LPA iteration (ComputeScores + ComputeMigrations), the quantity
// §V-B isolates because it is the most deterministic and expensive
// iteration.
type Fig6Row struct {
	Vertices  int
	Workers   int
	K         int
	Iteration time.Duration
}

// fig6Graph builds the paper's scalability workload: a Watts–Strogatz
// graph with out-degree 40 (scaled down by default to out-degree 16 to
// keep laptop runs fast at small n) and β = 0.3.
func fig6Graph(n int, seed uint64) *graph.Weighted {
	deg := 16
	if n < 64 {
		deg = 4
	}
	return graph.Convert(gen.WattsStrogatz(n, deg, 0.3, seed))
}

// fig6Run measures the first-iteration runtime for one configuration.
func fig6Run(w *graph.Weighted, k, workers int, seed uint64) (time.Duration, error) {
	opts := core.DefaultOptions(k)
	opts.Seed = seed
	opts.NumWorkers = workers
	opts.MaxIterations = 3 // only the first iteration is measured
	opts.W = 1000          // prevent early halting from hiding the iteration
	p, err := core.NewPartitioner(opts)
	if err != nil {
		return 0, err
	}
	res, err := p.PartitionWeighted(w)
	if err != nil {
		return 0, err
	}
	d := res.FirstIterationTime()
	if d == 0 {
		return 0, fmt.Errorf("experiments: no iteration measured")
	}
	return d, nil
}

// Fig6a sweeps the graph size (vertices doubling across the given range)
// at fixed k and workers: runtime should grow near-linearly in |V|.
func Fig6a(cfg Config, sizes []int) ([]Fig6Row, error) {
	if len(sizes) == 0 {
		sizes = []int{4000, 8000, 16000, 32000, 64000, 128000}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	var rows []Fig6Row
	cfg.printf("Figure 6(a) — first-iteration runtime vs graph size (k=64, %d workers)\n", workers)
	for _, n := range sizes {
		w := fig6Graph(n, cfg.Seed)
		d, err := fig6Run(w, 64, workers, cfg.Seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig6Row{Vertices: n, Workers: workers, K: 64, Iteration: d})
		cfg.printf("  n=%-8d runtime=%v\n", n, d)
	}
	return rows, nil
}

// Fig6b sweeps the worker count on a fixed graph: runtime should drop
// near-linearly with workers (the paper reports a 7.6× speedup from 7.6×
// more workers).
func Fig6b(cfg Config, workerCounts []int) ([]Fig6Row, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	n := cfg.scale() * 4
	w := fig6Graph(n, cfg.Seed)
	var rows []Fig6Row
	cfg.printf("Figure 6(b) — first-iteration runtime vs workers (n=%d, k=64)\n", n)
	for _, wk := range workerCounts {
		d, err := fig6Run(w, 64, wk, cfg.Seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig6Row{Vertices: n, Workers: wk, K: 64, Iteration: d})
		cfg.printf("  workers=%-3d runtime=%v\n", wk, d)
	}
	return rows, nil
}

// Fig6c sweeps the number of partitions on a fixed graph: per-iteration
// cost grows with k because the per-vertex heuristic and the sharded
// aggregators are both O(k).
func Fig6c(cfg Config, ks []int) ([]Fig6Row, error) {
	if len(ks) == 0 {
		ks = []int{2, 8, 32, 128, 512}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	n := cfg.scale() * 2
	w := fig6Graph(n, cfg.Seed)
	var rows []Fig6Row
	cfg.printf("Figure 6(c) — first-iteration runtime vs partitions (n=%d, %d workers)\n", n, workers)
	for _, k := range ks {
		d, err := fig6Run(w, k, workers, cfg.Seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig6Row{Vertices: n, Workers: workers, K: k, Iteration: d})
		cfg.printf("  k=%-4d runtime=%v\n", k, d)
	}
	return rows, nil
}
