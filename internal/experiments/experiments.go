// Package experiments regenerates every table and figure of the Spinner
// paper's evaluation (§V) on the synthetic dataset analogues, printing rows
// in the same shape the paper reports. Each Table*/Fig* function returns
// structured results so tests and benchmarks can assert on the shape
// (who wins, by roughly what factor) and writes a human-readable rendition
// to the configured writer.
//
// The mapping from experiment to modules is indexed in DESIGN.md §3;
// paper-vs-measured numbers are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/apps"
	"repro/internal/baselines"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// Config scales and seeds an experiment run.
type Config struct {
	// Scale is the vertex count for dataset analogues (default 20 000).
	Scale int
	// Seed drives every random choice.
	Seed uint64
	// Workers is the Pregel worker count (default GOMAXPROCS).
	Workers int
	// Out receives the rendered rows; nil discards them.
	Out io.Writer
}

func (c Config) scale() int {
	if c.Scale <= 0 {
		return 20000
	}
	return c.Scale
}

func (c Config) printf(format string, args ...any) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format, args...)
	}
}

// spinnerOpts returns the paper's standard configuration.
func (c Config) spinnerOpts(k int) core.Options {
	o := core.DefaultOptions(k)
	o.Seed = c.Seed
	o.NumWorkers = c.Workers
	return o
}

// runSpinner partitions w with Spinner and returns labels plus the result.
func (c Config) runSpinner(w *graph.Weighted, k int) (*core.Result, error) {
	p, err := core.NewPartitioner(c.spinnerOpts(k))
	if err != nil {
		return nil, err
	}
	return p.PartitionWeighted(w)
}

// --- Table I: comparison with the state of the art -----------------------

// Table1Row is one (approach, k) cell pair of Table I.
type Table1Row struct {
	Approach string
	K        int
	Phi      float64
	Rho      float64
}

// Table1 compares Spinner against Wang et al. (LPACoarsen), Stanton et al.
// (LDG), Fennel and METIS (Multilevel) on a Twitter-like graph for
// k ∈ {2,4,8,16,32}.
func Table1(cfg Config) ([]Table1Row, error) {
	g := gen.Load(gen.TwitterLike, cfg.scale(), cfg.Seed)
	w := graph.Convert(g)
	ks := []int{2, 4, 8, 16, 32}
	type namedPartitioner struct {
		name string
		fn   func(k int) ([]int32, error)
	}
	parts := []namedPartitioner{
		{"Wang et al.", func(k int) ([]int32, error) {
			return baselines.LPACoarsen{Seed: cfg.Seed}.Partition(w, k), nil
		}},
		{"Stanton et al.", func(k int) ([]int32, error) {
			return baselines.LDG{Seed: cfg.Seed}.Partition(w, k), nil
		}},
		{"Fennel", func(k int) ([]int32, error) {
			return baselines.Fennel{Seed: cfg.Seed}.Partition(w, k), nil
		}},
		{"Metis", func(k int) ([]int32, error) {
			return baselines.Multilevel{Seed: cfg.Seed}.Partition(w, k), nil
		}},
		{"Spinner", func(k int) ([]int32, error) {
			res, err := cfg.runSpinner(w, k)
			if err != nil {
				return nil, err
			}
			return res.Labels, nil
		}},
	}
	cfg.printf("Table I — Twitter-like graph (n=%d, |E|=%d)\n%-16s", w.NumVertices(), w.NumEdges(), "Approach")
	for _, k := range ks {
		cfg.printf("  k=%-3d φ    ρ  ", k)
	}
	cfg.printf("\n")
	var rows []Table1Row
	for _, p := range parts {
		cfg.printf("%-16s", p.name)
		for _, k := range ks {
			labels, err := p.fn(k)
			if err != nil {
				return nil, fmt.Errorf("table1 %s k=%d: %w", p.name, k, err)
			}
			phi := metrics.Phi(w, labels)
			rho := metrics.Rho(w, labels, k)
			rows = append(rows, Table1Row{Approach: p.name, K: k, Phi: phi, Rho: rho})
			cfg.printf("  %.2f %.2f  ", phi, rho)
		}
		cfg.printf("\n")
	}
	return rows, nil
}

// --- Table III: balance per graph ----------------------------------------

// Table3Row is the average ρ for one dataset analogue.
type Table3Row struct {
	Dataset gen.Dataset
	Rho     float64
}

// Table3 partitions every social-graph analogue into 32 parts and reports
// the resulting maximum normalized load.
func Table3(cfg Config) ([]Table3Row, error) {
	cfg.printf("Table III — partitioning balance (k=32)\n")
	var rows []Table3Row
	for _, d := range gen.AllDatasets {
		g := gen.Load(d, cfg.scale(), cfg.Seed)
		w := graph.Convert(g)
		res, err := cfg.runSpinner(w, 32)
		if err != nil {
			return nil, fmt.Errorf("table3 %s: %w", d, err)
		}
		rho := metrics.Rho(w, res.Labels, 32)
		rows = append(rows, Table3Row{Dataset: d, Rho: rho})
		cfg.printf("  %-4s ρ=%.3f\n", d, rho)
	}
	return rows, nil
}

// --- Table IV: worker load balance under PageRank ------------------------

// Table4Row is one placement strategy's superstep timing summary.
type Table4Row struct {
	Approach string
	Summary  cluster.Summary
}

// Table4 runs 20 PageRank iterations on the Twitter-like graph under hash
// placement and Spinner placement and prices the supersteps with the
// cluster cost model, reproducing the Mean/Max/Min worker times.
func Table4(cfg Config) ([]Table4Row, error) {
	g := gen.Load(gen.TwitterLike, cfg.scale(), cfg.Seed)
	w := graph.Convert(g)
	// The paper runs 256 partitions on 256 workers: one partition per
	// worker, so a hub-heavy partition translates directly into a slow
	// worker. The skew effect requires per-worker load to be small relative
	// to a hub's traffic, so the simulated worker count stays high
	// regardless of the local GOMAXPROCS (workers are goroutines; superstep
	// time is priced by the cost model, not measured).
	const workers = 64
	k := workers
	res, err := cfg.runSpinner(w, k)
	if err != nil {
		return nil, err
	}
	model := cluster.Default()
	var rows []Table4Row
	cfg.printf("Table IV — PageRank superstep worker times (k=%d, %d workers)\n", k, workers)
	for _, p := range []struct {
		name      string
		placement func(graph.VertexID) int
	}{
		{"Random", apps.HashPlacement(workers)},
		{"Spinner", apps.PlacementFromLabels(res.Labels, workers)},
	} {
		_, appRes, err := apps.PageRank(g, 20, apps.RunConfig{NumWorkers: workers, Placement: p.placement})
		if err != nil {
			return nil, fmt.Errorf("table4 %s: %w", p.name, err)
		}
		sum := model.Summarize(appRes.Stats)
		rows = append(rows, Table4Row{Approach: p.name, Summary: sum})
		cfg.printf("  %-8s %s\n", p.name, sum)
	}
	return rows, nil
}

// --- Figure 3: locality vs number of partitions ---------------------------

// Fig3Row is one (dataset, k) measurement.
type Fig3Row struct {
	Dataset     gen.Dataset
	K           int
	Phi         float64
	HashPhi     float64
	Improvement float64 // Phi / HashPhi
}

// Fig3 sweeps the number of partitions over 2..maxK (powers of two) for
// every dataset analogue, measuring Spinner's locality (Fig. 3a) and its
// improvement over hash partitioning (Fig. 3b).
func Fig3(cfg Config, maxK int) ([]Fig3Row, error) {
	if maxK <= 0 {
		maxK = 512
	}
	var rows []Fig3Row
	cfg.printf("Figure 3 — locality vs number of partitions\n")
	for _, d := range gen.AllDatasets {
		g := gen.Load(d, cfg.scale(), cfg.Seed)
		w := graph.Convert(g)
		for k := 2; k <= maxK; k *= 2 {
			res, err := cfg.runSpinner(w, k)
			if err != nil {
				return nil, fmt.Errorf("fig3 %s k=%d: %w", d, k, err)
			}
			phi := metrics.Phi(w, res.Labels)
			hashPhi := metrics.Phi(w, baselines.Hash{}.Partition(w, k))
			if hashPhi <= 0 {
				hashPhi = 1e-9
			}
			rows = append(rows, Fig3Row{Dataset: d, K: k, Phi: phi, HashPhi: hashPhi, Improvement: phi / hashPhi})
			cfg.printf("  %-4s k=%-4d φ=%.3f  hash φ=%.3f  improvement=%.1fx\n", d, k, phi, hashPhi, phi/hashPhi)
		}
	}
	return rows, nil
}

// --- Figure 4: metric evolution across iterations -------------------------

// Fig4Series is the per-iteration trace for one graph.
type Fig4Series struct {
	Name    string
	History []core.IterationMetrics
	// Granularity is maxDeg_w/(T/k); final ρ can never drop below roughly
	// this value because the heaviest vertex is indivisible (negligible at
	// paper scale, material at laptop scale).
	Granularity float64
}

// Fig4 partitions the Twitter-like graph (hub-skewed, panel a) and the
// Yahoo-like web graph (panel b) and returns the φ/ρ/score evolution.
func Fig4(cfg Config) ([]Fig4Series, error) {
	var out []Fig4Series
	for _, d := range []gen.Dataset{gen.TwitterLike, gen.YahooLike} {
		g := gen.Load(d, cfg.scale(), cfg.Seed)
		w := graph.Convert(g)
		k := 32
		var totalLoad, maxDeg float64
		for v := 0; v < w.NumVertices(); v++ {
			dw := float64(w.WeightedDegree(graph.VertexID(v)))
			totalLoad += dw
			if dw > maxDeg {
				maxDeg = dw
			}
		}
		res, err := cfg.runSpinner(w, k)
		if err != nil {
			return nil, fmt.Errorf("fig4 %s: %w", d, err)
		}
		out = append(out, Fig4Series{Name: string(d), History: res.History,
			Granularity: maxDeg / (totalLoad / float64(k))})
		cfg.printf("Figure 4 — %s (k=%d): %d iterations\n  iter    φ      ρ     score\n", d, k, len(res.History))
		for _, it := range res.History {
			cfg.printf("  %4d  %.3f  %.3f  %.1f\n", it.Iteration, it.Phi, it.Rho, it.Score)
		}
	}
	return out, nil
}

// --- Figure 5: impact of the additional capacity c ------------------------

// Fig5Row is one (c, k) measurement averaged over runs.
type Fig5Row struct {
	C          float64
	K          int
	AvgRho     float64
	MaxRho     float64
	Iterations float64
	// Granularity is maxDeg_w/(T/k): the largest single vertex's load as a
	// fraction of the ideal partition load. ρ ≤ c only holds up to this
	// term — at the paper's scale (4.8M-vertex LiveJournal) it is
	// negligible, at laptop scale it is not, so rows carry it explicitly.
	Granularity float64
}

// Fig5 varies c over {1.02, 1.05, 1.10, 1.20} and k over {8..64} on the
// LiveJournal-like graph, measuring final ρ (panel a: ρ ≤ c) and
// iterations to converge (panel b: larger c converges faster).
func Fig5(cfg Config, runs int) ([]Fig5Row, error) {
	if runs <= 0 {
		runs = 3
	}
	g := gen.Load(gen.LiveJournalLike, cfg.scale(), cfg.Seed)
	w := graph.Convert(g)
	var totalLoad, maxDeg float64
	for v := 0; v < w.NumVertices(); v++ {
		d := float64(w.WeightedDegree(graph.VertexID(v)))
		totalLoad += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	var rows []Fig5Row
	cfg.printf("Figure 5 — impact of c (LJ-like, %d runs each)\n", runs)
	for _, c := range []float64{1.02, 1.05, 1.10, 1.20} {
		for _, k := range []int{8, 16, 32, 64} {
			sumRho, maxRho, sumIter := 0.0, 0.0, 0.0
			for r := 0; r < runs; r++ {
				opts := cfg.spinnerOpts(k)
				opts.C = c
				opts.Seed = cfg.Seed + uint64(r)*7919
				p, err := core.NewPartitioner(opts)
				if err != nil {
					return nil, err
				}
				res, err := p.PartitionWeighted(w)
				if err != nil {
					return nil, fmt.Errorf("fig5 c=%v k=%d: %w", c, k, err)
				}
				rho := metrics.Rho(w, res.Labels, k)
				sumRho += rho
				if rho > maxRho {
					maxRho = rho
				}
				sumIter += float64(res.Iterations)
			}
			row := Fig5Row{
				C: c, K: k, AvgRho: sumRho / float64(runs), MaxRho: maxRho,
				Iterations:  sumIter / float64(runs),
				Granularity: maxDeg / (totalLoad / float64(k)),
			}
			rows = append(rows, row)
			cfg.printf("  c=%.2f k=%-3d avg ρ=%.3f max ρ=%.3f iters=%.1f granularity=%.2f\n",
				c, k, row.AvgRho, row.MaxRho, row.Iterations, row.Granularity)
		}
	}
	return rows, nil
}

// --- Figure 7: adapting to dynamic graph changes --------------------------

// Fig7Row measures adaptation vs scratch for one change fraction.
type Fig7Row struct {
	NewEdgeFrac   float64
	TimeSavings   float64 // 1 − adaptTime/scratchTime
	MsgSavings    float64 // 1 − adaptMsgs/scratchMsgs
	MovedAdaptive float64 // partitioning difference, adaptive
	MovedScratch  float64 // partitioning difference, scratch
	AdaptPhi      float64
	ScratchPhi    float64
	AdaptRho      float64
}

// Fig7 grows a Tuenti-like graph by x% new edges and compares incremental
// adaptation against repartitioning from scratch on cost (panel a) and
// stability (panel b).
func Fig7(cfg Config, fracs []float64) ([]Fig7Row, error) {
	if len(fracs) == 0 {
		fracs = []float64{0.005, 0.01, 0.05, 0.10, 0.30}
	}
	g := gen.Load(gen.TuentiLike, cfg.scale(), cfg.Seed)
	w := graph.Convert(g)
	const k = 32
	base, err := cfg.runSpinner(w, k)
	if err != nil {
		return nil, err
	}
	p, err := core.NewPartitioner(cfg.spinnerOpts(k))
	if err != nil {
		return nil, err
	}
	var rows []Fig7Row
	cfg.printf("Figure 7 — adapting to graph changes (TU-like, k=%d)\n", k)
	for _, frac := range fracs {
		grown := w.Clone()
		mut := gen.GrowthBatch(grown, frac, cfg.Seed+uint64(1e6*frac))
		if _, err := mut.Apply(grown); err != nil {
			return nil, err
		}
		adaptStart := time.Now()
		adapt, err := p.Adapt(grown, base.Labels, mut.TouchedVertices())
		if err != nil {
			return nil, err
		}
		adaptTime := time.Since(adaptStart)
		scratchStart := time.Now()
		scratch, err := p.PartitionWeighted(grown)
		if err != nil {
			return nil, err
		}
		scratchTime := time.Since(scratchStart)

		row := Fig7Row{
			NewEdgeFrac:   frac,
			TimeSavings:   1 - adaptTime.Seconds()/scratchTime.Seconds(),
			MsgSavings:    1 - float64(adapt.Messages)/float64(scratch.Messages),
			MovedAdaptive: metrics.Difference(base.Labels, adapt.Labels),
			MovedScratch:  metrics.Difference(base.Labels, scratch.Labels),
			AdaptPhi:      metrics.Phi(grown, adapt.Labels),
			ScratchPhi:    metrics.Phi(grown, scratch.Labels),
			AdaptRho:      metrics.Rho(grown, adapt.Labels, k),
		}
		rows = append(rows, row)
		cfg.printf("  +%.1f%% edges: time savings=%.0f%% msg savings=%.0f%% moved(adapt)=%.0f%% moved(scratch)=%.0f%% φ=%.2f/%.2f ρ=%.3f\n",
			100*frac, 100*row.TimeSavings, 100*row.MsgSavings, 100*row.MovedAdaptive, 100*row.MovedScratch,
			row.AdaptPhi, row.ScratchPhi, row.AdaptRho)
	}
	return rows, nil
}

// --- Figure 8: adapting to resource changes -------------------------------

// Fig8Row measures elastic adaptation vs scratch for one partition-count
// change.
type Fig8Row struct {
	NewPartitions int
	TimeSavings   float64
	MsgSavings    float64
	MovedAdaptive float64
	MovedScratch  float64
	AdaptPhi      float64
	AdaptRho      float64
}

// Fig8 grows the partition count of a Tuenti-like graph from 32 by 1..8
// partitions and compares elastic adaptation against scratch.
func Fig8(cfg Config, added []int) ([]Fig8Row, error) {
	if len(added) == 0 {
		added = []int{1, 2, 4, 8}
	}
	g := gen.Load(gen.TuentiLike, cfg.scale(), cfg.Seed)
	w := graph.Convert(g)
	const oldK = 32
	base, err := cfg.runSpinner(w, oldK)
	if err != nil {
		return nil, err
	}
	var rows []Fig8Row
	cfg.printf("Figure 8 — adapting to resource changes (TU-like, base k=%d)\n", oldK)
	for _, n := range added {
		newK := oldK + n
		p, err := core.NewPartitioner(cfg.spinnerOpts(newK))
		if err != nil {
			return nil, err
		}
		adaptStart := time.Now()
		adapt, err := p.Resize(w, base.Labels, oldK)
		if err != nil {
			return nil, err
		}
		adaptTime := time.Since(adaptStart)
		scratchStart := time.Now()
		scratch, err := p.PartitionWeighted(w)
		if err != nil {
			return nil, err
		}
		scratchTime := time.Since(scratchStart)
		row := Fig8Row{
			NewPartitions: n,
			TimeSavings:   1 - adaptTime.Seconds()/scratchTime.Seconds(),
			MsgSavings:    1 - float64(adapt.Messages)/float64(scratch.Messages),
			MovedAdaptive: metrics.Difference(base.Labels, adapt.Labels),
			MovedScratch:  metrics.Difference(base.Labels, scratch.Labels),
			AdaptPhi:      metrics.Phi(w, adapt.Labels),
			AdaptRho:      metrics.Rho(w, adapt.Labels, newK),
		}
		rows = append(rows, row)
		cfg.printf("  +%d partitions: time savings=%.0f%% msg savings=%.0f%% moved(adapt)=%.0f%% moved(scratch)=%.0f%% φ=%.2f ρ=%.3f\n",
			n, 100*row.TimeSavings, 100*row.MsgSavings, 100*row.MovedAdaptive, 100*row.MovedScratch, row.AdaptPhi, row.AdaptRho)
	}
	return rows, nil
}

// --- Figure 9: impact on application performance --------------------------

// Fig9Row is one (dataset, application) improvement measurement.
type Fig9Row struct {
	Dataset     gen.Dataset
	App         string
	HashTime    time.Duration
	SpinnerTime time.Duration
	Improvement float64 // 1 − spinner/hash
}

// Fig9 runs SSSP (SP), PageRank (PR) and Connected Components (CC) on the
// LJ-, TU- and TW-like graphs under hash and Spinner placement and prices
// the runs with the cluster cost model.
func Fig9(cfg Config) ([]Fig9Row, error) {
	model := cluster.Default()
	workers := cfg.Workers
	if workers <= 0 {
		workers = 8
	}
	datasets := []struct {
		d gen.Dataset
		k int
	}{
		{gen.LiveJournalLike, 16},
		{gen.TuentiLike, 32},
		{gen.TwitterLike, 64},
	}
	var rows []Fig9Row
	cfg.printf("Figure 9 — application runtime improvement, Spinner vs hash\n")
	for _, ds := range datasets {
		g := gen.Load(ds.d, cfg.scale(), cfg.Seed)
		w := graph.Convert(g)
		res, err := cfg.runSpinner(w, ds.k)
		if err != nil {
			return nil, err
		}
		hashPl := apps.HashPlacement(workers)
		spinPl := apps.PlacementFromLabels(res.Labels, workers)
		runs := []struct {
			name string
			run  func(pl func(graph.VertexID) int) (*apps.Result, error)
		}{
			{"SP", func(pl func(graph.VertexID) int) (*apps.Result, error) {
				_, r, err := apps.SSSP(g, 0, apps.RunConfig{NumWorkers: workers, Placement: pl})
				return r, err
			}},
			{"PR", func(pl func(graph.VertexID) int) (*apps.Result, error) {
				_, r, err := apps.PageRank(g, 20, apps.RunConfig{NumWorkers: workers, Placement: pl})
				return r, err
			}},
			{"CC", func(pl func(graph.VertexID) int) (*apps.Result, error) {
				_, r, err := apps.WCC(g, apps.RunConfig{NumWorkers: workers, Placement: pl})
				return r, err
			}},
		}
		for _, app := range runs {
			hr, err := app.run(hashPl)
			if err != nil {
				return nil, fmt.Errorf("fig9 %s/%s hash: %w", ds.d, app.name, err)
			}
			sr, err := app.run(spinPl)
			if err != nil {
				return nil, fmt.Errorf("fig9 %s/%s spinner: %w", ds.d, app.name, err)
			}
			ht, st := model.Total(hr.Stats), model.Total(sr.Stats)
			row := Fig9Row{Dataset: ds.d, App: app.name, HashTime: ht, SpinnerTime: st,
				Improvement: 1 - float64(st)/float64(ht)}
			rows = append(rows, row)
			cfg.printf("  %-4s %-3s hash=%-12v spinner=%-12v improvement=%.0f%%\n",
				ds.d, app.name, ht, st, 100*row.Improvement)
		}
	}
	return rows, nil
}
