package api

import (
	"testing"
	"time"
)

// The dance heartbeatTimer encapsulates has two hazardous histories:
// (a) the previous arming expired and its tick was received (the caller
// must say Fired, and Arm must not drain a tick that is not there), and
// (b) the previous arming expired but the tick was never received
// (a wakeup won the select) — Arm must drain the stale tick or the next
// wait fires instantly.
func TestHeartbeatTimerArmAfterReceivedTick(t *testing.T) {
	hb := newHeartbeatTimer()
	defer hb.Stop()

	hb.Arm(time.Millisecond)
	select {
	case <-hb.C():
		hb.Fired()
	case <-time.After(5 * time.Second):
		t.Fatal("armed timer never fired")
	}

	// Re-arm long: no stale tick may surface early.
	hb.Arm(time.Hour)
	select {
	case tick := <-hb.C():
		t.Fatalf("stale tick %v after re-arm", tick)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestHeartbeatTimerArmAfterUnreceivedExpiry(t *testing.T) {
	hb := newHeartbeatTimer()
	defer hb.Stop()

	// Expire without receiving — the case the watch loop hits when a
	// delta wakeup wins the select against a due heartbeat.
	hb.Arm(time.Millisecond)
	time.Sleep(20 * time.Millisecond)

	// The stale tick from the first arming must not leak into this one.
	hb.Arm(time.Hour)
	select {
	case tick := <-hb.C():
		t.Fatalf("stale tick %v leaked through re-arm", tick)
	case <-time.After(50 * time.Millisecond):
	}

	// And a real expiry still comes through.
	hb.Arm(time.Millisecond)
	select {
	case <-hb.C():
		hb.Fired()
	case <-time.After(5 * time.Second):
		t.Fatal("re-armed timer never fired")
	}
}

func TestHeartbeatTimerStopBeforeExpiry(t *testing.T) {
	hb := newHeartbeatTimer()
	hb.Arm(time.Hour)
	hb.Stop()
	select {
	case tick := <-hb.C():
		t.Fatalf("tick %v after Stop", tick)
	case <-time.After(20 * time.Millisecond):
	}
}
