package api

import "time"

// heartbeatTimer wraps time.Timer with the stop/drain/reset discipline
// a select loop needs when it re-arms the timer on every iteration.
// The subtlety it encapsulates: time.Timer.Reset on a timer that
// already expired — but whose tick was never received — leaves the
// stale tick in the channel, and the next select would see a phantom
// expiry. Reset is only safe after the channel is known empty, which
// depends on whether the previous arming (a) was stopped in time,
// (b) expired and was received (the caller must say so via Fired), or
// (c) expired unreceived (the tick must be drained). Getting this
// wrong is easy and the bug is a heartbeat that fires immediately
// after real traffic — hence one helper instead of an inline dance at
// every call site.
type heartbeatTimer struct {
	t *time.Timer
	// fired records that the caller received the tick of the current
	// arming, i.e. the channel is empty even though Stop returns false.
	fired bool
}

// newHeartbeatTimer returns a helper whose timer is not yet armed; call
// Arm before each wait.
func newHeartbeatTimer() *heartbeatTimer {
	t := time.NewTimer(time.Hour)
	if !t.Stop() {
		<-t.C
	}
	return &heartbeatTimer{t: t, fired: true}
}

// C returns the expiry channel. After receiving from it, the caller
// must call Fired before the next Arm.
func (h *heartbeatTimer) C() <-chan time.Time { return h.t.C }

// Fired tells the helper the current arming's tick was received from C,
// so the next Arm knows the channel is already empty.
func (h *heartbeatTimer) Fired() { h.fired = true }

// Arm schedules the timer d from now, stopping and draining any
// previous arming so exactly zero or one tick is ever pending.
func (h *heartbeatTimer) Arm(d time.Duration) {
	if !h.t.Stop() && !h.fired {
		// The previous arming expired but its tick was never received:
		// drain it so Reset cannot leave a stale expiry pending. The
		// drain is non-blocking because older runtimes may not have
		// delivered the tick yet (and Go 1.23+ timers drop it on Stop).
		select {
		case <-h.t.C:
		default:
		}
	}
	h.fired = false
	h.t.Reset(d)
}

// Stop releases the timer. The helper must not be used afterwards.
func (h *heartbeatTimer) Stop() { h.t.Stop() }
