// Package api is spinnerd's versioned HTTP surface: every endpoint lives
// under /v1/ with the pre-versioning paths kept as aliases, success and
// error bodies are both JSON (errors share one envelope —
// {"error": msg, "code": c} with the status carrying the class and a
// Retry-After header wherever a backoff hint exists), and the change
// feed (/v1/watch) streams the store's delta records as CRC-checked
// binary frames. See the spinnerd command doc for the route reference;
// the typed Go client lives in api/client.
package api

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/replica"
	"repro/internal/serve"
)

// Replica carries a node's replication role into the API: Srv is non-nil
// on any durable node (it serves the journal stream), Fl is non-nil in
// follower mode. A nil *Replica is an in-memory node with no replication
// surface.
type Replica struct {
	Srv *replica.Server
	Fl  *replica.Follower
	// MaxStaleness bounds follower lookups: past this lag they answer
	// 503 {"code":"stale_replica"}. Zero serves regardless of lag.
	MaxStaleness time.Duration
}

// Following reports whether the node is still a tailing follower (false
// once promoted — and on leaders, which never had a tail).
func (rs *Replica) Following() bool {
	return rs != nil && rs.Fl != nil && !rs.Fl.Promoted()
}

// Role names the node's current replication role.
func (rs *Replica) Role() string {
	if rs.Following() {
		return "follower"
	}
	return "leader"
}

// Server serves the versioned HTTP API for one store.
type Server struct {
	st  *serve.Store
	rep *Replica

	// Heartbeat is the idle /v1/watch heartbeat period (default 1s).
	Heartbeat time.Duration

	// feed is the slice of the store the watch handler reads; it is the
	// store itself in production and a seam for tests that need to
	// inject compaction races deterministically.
	feed watchFeed
	// fanoutHist records publish-to-delivery latency of delta frames
	// written to watch streams (spinner_watch_fanout_duration_seconds).
	fanoutHist *metrics.Histogram
}

// watchFeed is the change-feed surface handleWatch consumes.
type watchFeed interface {
	DeltaBounds() (floor, next uint64)
	FramedDeltasSince(after uint64, max int) ([]serve.FramedDelta, uint64)
	SubscribeDeltas() *serve.DeltaSub
}

// NewServer wires a store (and its optional replication role) into an
// API server. rep may be nil.
func NewServer(st *serve.Store, rep *Replica) *Server {
	return &Server{st: st, rep: rep, Heartbeat: time.Second, feed: st,
		fanoutHist: st.Metrics().NewHistogram(
			"spinner_watch_fanout_duration_seconds",
			"Publish-to-delivery latency of delta frames written to /v1/watch streams (sampled at the last frame of each batch).",
			metrics.UnitSeconds,
		)}
}

// Mux builds the route table: every endpoint under /v1/ plus the legacy
// unversioned aliases the pre-/v1 daemon exposed (same handlers, same
// shapes — existing scripts and followers keep working). /v1/watch is
// new surface and has no legacy alias.
// Every route is wrapped by the latency middleware (middleware.go);
// /v1/watch and the replication stream record time-to-first-byte.
// /v1/metrics and /v1/watch are new surface and have no legacy alias.
func (s *Server) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	route := func(pattern, name string, h http.HandlerFunc) {
		method, path, _ := strings.Cut(pattern, " ")
		wrapped := s.instrument(name, false, h)
		mux.HandleFunc(method+" /v1"+path, wrapped)
		mux.HandleFunc(pattern, wrapped)
	}
	route("GET /healthz", "healthz", s.handleHealthz)
	route("GET /lookup", "lookup", s.handleLookup)
	route("POST /mutate", "mutate", s.handleMutate)
	route("POST /resize", "resize", s.handleResize)
	route("GET /stats", "stats", s.handleStats)
	mux.HandleFunc("GET /v1/replicate", s.instrument("replicate", true, s.handleReplicate))
	mux.HandleFunc("GET /replicate", s.instrument("replicate", true, s.handleReplicate))
	route("GET /replicate/checkpoint", "replicate_checkpoint", s.handleReplicateCheckpoint)
	route("POST /promote", "promote", s.handlePromote)
	mux.HandleFunc("GET /v1/watch", s.instrument("watch", true, s.handleWatch))
	mux.HandleFunc("GET /v1/metrics", s.instrument("metrics", false, s.handleMetrics))
	return mux
}

// HealthResponse is the GET /v1/healthz body.
type HealthResponse struct {
	Status string `json:"status"` // "ok" | "degraded"
	Error  string `json:"error,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.st.Degraded() {
		resp := HealthResponse{Status: "degraded"}
		if err := s.st.Err(); err != nil {
			resp.Error = err.Error()
		}
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok"})
}

// LookupResponse is the GET /v1/lookup?v=ID body.
type LookupResponse struct {
	Vertex    int64  `json:"vertex"`
	Partition int32  `json:"partition"`
	Version   uint64 `json:"version"`
	K         int    `json:"k"`
}

// ResyncResponse is the GET /v1/lookup body with no v parameter: the
// full label map plus the delta sequence a /v1/watch consumer should
// resume from after applying it. FromSeq is captured before the labels
// snapshot, so deltas from FromSeq+1 onward re-deliver (never skip) any
// change racing the dump — replaying a delta over a state that already
// includes it is idempotent.
type ResyncResponse struct {
	K        int     `json:"k"`
	Vertices int     `json:"vertices"`
	Labels   []int32 `json:"labels"`
	FromSeq  uint64  `json:"from_seq"`
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	raw := q.Get("v")
	if !q.Has("v") && strings.HasPrefix(r.URL.Path, "/v1/") {
		// Full resync for change-feed consumers that fell past the
		// compaction floor. Only on the /v1 path: the legacy /lookup
		// contract keeps answering 400 here.
		if !s.checkStaleness(w) {
			return
		}
		fromSeq := s.resyncFromSeq()
		snap := s.st.Snapshot()
		writeJSON(w, http.StatusOK, ResyncResponse{
			K: snap.K, Vertices: len(snap.Labels), Labels: snap.Labels, FromSeq: fromSeq})
		return
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad vertex id")
		return
	}
	if !s.checkStaleness(w) {
		return
	}
	part, ok := s.st.Lookup(graph.VertexID(v))
	if !ok {
		writeError(w, http.StatusNotFound, "vertex not found")
		return
	}
	snap := s.st.Snapshot()
	writeJSON(w, http.StatusOK, LookupResponse{Vertex: v, Partition: part, Version: snap.Version, K: snap.K})
}

// resyncFromSeq returns the watch cursor a fresh full dump pairs with:
// the newest published delta sequence, read before the snapshot so the
// dump can only be newer than the cursor claims, never older.
func (s *Server) resyncFromSeq() uint64 {
	_, next := s.st.DeltaBounds()
	return next - 1
}

// checkStaleness enforces the follower staleness bound on the read
// path; it reports whether the request may proceed.
func (s *Server) checkStaleness(w http.ResponseWriter) bool {
	rep := s.rep
	if rep.Following() && rep.MaxStaleness > 0 && rep.Fl.Staleness() > rep.MaxStaleness {
		s.st.Counters().StaleLookups.Add(1)
		writeErrorCode(w, http.StatusServiceUnavailable, "stale_replica",
			fmt.Sprintf("replica %s behind the leader (bound %s)",
				rep.Fl.Staleness().Round(time.Millisecond), rep.MaxStaleness), time.Second)
		return false
	}
	return true
}

// MutateResponse is the POST /v1/mutate body.
type MutateResponse struct {
	Queued   bool `json:"queued"`
	Adds     int  `json:"adds"`
	Removes  int  `json:"removes"`
	Vertices int  `json:"vertices"`
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	mut, err := ParseMutation(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	mut.Tenant = r.Header.Get("X-Tenant")
	if err := s.st.TrySubmit(mut); err != nil {
		var qe *serve.QuotaError
		switch {
		case errors.As(err, &qe):
			writeErrorCode(w, http.StatusTooManyRequests, "quota_exceeded", err.Error(), qe.RetryAfter)
		case errors.Is(err, serve.ErrLogFull):
			writeErrorCode(w, http.StatusTooManyRequests, "log_full", err.Error(), s.st.RetryAfter())
		case errors.Is(err, serve.ErrDegraded):
			writeErrorCode(w, http.StatusServiceUnavailable, "degraded", err.Error(), 0)
		case errors.Is(err, serve.ErrReadOnly):
			writeErrorCode(w, http.StatusServiceUnavailable, "read_only", err.Error(), 0)
		default:
			writeErrorCode(w, http.StatusServiceUnavailable, "unavailable", err.Error(), 0)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, MutateResponse{Queued: true,
		Adds: len(mut.NewEdges), Removes: len(mut.RemovedEdges), Vertices: mut.NewVertices})
}

// ResizeResponse is the POST /v1/resize body.
type ResizeResponse struct {
	Queued bool `json:"queued"`
	K      int  `json:"k"`
}

func (s *Server) handleResize(w http.ResponseWriter, r *http.Request) {
	k, err := strconv.Atoi(r.URL.Query().Get("k"))
	if err != nil || k < 1 {
		writeError(w, http.StatusBadRequest, "bad k")
		return
	}
	// Resizes are the most expensive write (global relabel + repair
	// runs); under overload they are shed outright so the degradation
	// budget is spent on keeping lookups and mutations flowing.
	if s.st.Overloaded() {
		s.st.Counters().ShedRequests.Add(1)
		writeErrorCode(w, http.StatusServiceUnavailable, "overloaded", "serve: overloaded; resize shed", s.st.RetryAfter())
		return
	}
	if err := s.st.Resize(k); err != nil {
		switch {
		case errors.Is(err, serve.ErrKUnchanged):
			// The unchanged-k check lives inside Resize so concurrent
			// duplicate resizes race atomically, not via a stale K().
			writeErrorCode(w, http.StatusBadRequest, "k_unchanged", "k unchanged", 0)
		case errors.Is(err, serve.ErrDegraded):
			writeErrorCode(w, http.StatusServiceUnavailable, "degraded", err.Error(), 0)
		case errors.Is(err, serve.ErrReadOnly):
			writeErrorCode(w, http.StatusServiceUnavailable, "read_only", err.Error(), 0)
		default:
			writeErrorCode(w, http.StatusServiceUnavailable, "unavailable", err.Error(), 0)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, ResizeResponse{Queued: true, K: k})
}

// StatsResponse is the GET /v1/stats body — one struct so the field
// names are a stable, documented contract rather than ad-hoc map keys.
type StatsResponse struct {
	Vertices       int     `json:"vertices"`
	K              int     `json:"k"`
	Version        uint64  `json:"version"`
	Epoch          uint64  `json:"epoch"`
	Applied        uint64  `json:"applied"`
	Cut            float64 `json:"cut"`
	CutWeight      int64   `json:"cut_weight"`
	TotalWeight    int64   `json:"total_weight"`
	CutByPartition []int64 `json:"cut_by_partition"`
	Shards         int     `json:"shards"`
	Durable        bool    `json:"durable"`
	// JournalGroupDepth is the mean journal records framed per group
	// append — the entries amortizing each fsync under -fsync always.
	JournalGroupDepth float64                      `json:"journal_group_depth"`
	Counters          metrics.ServeSnapshot        `json:"counters"`
	Degraded          bool                         `json:"degraded"`
	Overloaded        bool                         `json:"overloaded"`
	DrainRate         float64                      `json:"drain_rate"`
	LookupRate        float64                      `json:"lookup_rate"`
	Tenants           map[string]serve.TenantStats `json:"tenants"`
	// DeltaFloor/DeltaNext bound the change feed: deltas with sequence
	// in [DeltaFloor, DeltaNext) are currently retrievable via
	// /v1/watch; older ones have been compacted away.
	DeltaFloor uint64 `json:"delta_floor"`
	DeltaNext  uint64 `json:"delta_next"`
	// Latency summarizes every non-empty histogram in the metric
	// registry (p50/p90/p99/max in seconds for duration series, raw
	// units otherwise); keys are compacted series names like "lookup",
	// "stage:apply" or "http_request:lookup:2xx". The full-resolution
	// data is the /v1/metrics exposition.
	Latency    map[string]LatencySummary `json:"latency,omitempty"`
	Role       string                    `json:"role"`
	AppliedSeq uint64                    `json:"applied_seq"`
	LeaderSeq  uint64                    `json:"leader_seq"`
	// Follower-only fields.
	StalenessMS      *int64  `json:"staleness_ms,omitempty"`
	ReplicationError string  `json:"replication_error,omitempty"`
	ReplicaEpoch     *uint64 `json:"replica_epoch,omitempty"`
	LastError        string  `json:"last_error,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.st.Snapshot()
	ctr := s.st.Counters().Snapshot()
	floor, next := s.st.DeltaBounds()
	resp := StatsResponse{
		Vertices:          len(snap.Labels),
		K:                 snap.K,
		Version:           snap.Version,
		Epoch:             snap.Epoch,
		Applied:           snap.AppliedBatches,
		Cut:               snap.CutRatio,
		CutWeight:         snap.CutWeight,
		TotalWeight:       snap.TotalWeight,
		CutByPartition:    snap.CutByPartition,
		Shards:            snap.Shards,
		Durable:           s.st.Durable(),
		JournalGroupDepth: ctr.GroupCommitDepth(),
		Counters:          ctr,
		Degraded:          s.st.Degraded(),
		Overloaded:        s.st.Overloaded(),
		DrainRate:         s.st.DrainRate(),
		LookupRate:        s.st.LookupRate(),
		Tenants:           s.st.Tenants(),
		DeltaFloor:        floor,
		DeltaNext:         next,
		Latency:           latencySection(s.st.Metrics()),
		Role:              s.rep.Role(),
		AppliedSeq:        s.st.JournalSeq(),
		LeaderSeq:         s.st.JournalSeq(),
	}
	if s.rep.Following() {
		resp.AppliedSeq = s.rep.Fl.AppliedSeq()
		resp.LeaderSeq = s.rep.Fl.LeaderSeq()
		ms := s.rep.Fl.Staleness().Milliseconds()
		resp.StalenessMS = &ms
		if err := s.rep.Fl.Err(); err != nil {
			resp.ReplicationError = err.Error()
		}
	}
	if s.rep != nil && s.rep.Fl != nil {
		ep := s.rep.Fl.Epoch()
		resp.ReplicaEpoch = &ep
	}
	if err := s.st.Err(); err != nil {
		resp.LastError = err.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

// replicating gates the replication endpoints: only a durable
// non-following node serves the journal stream.
func (s *Server) replicating(w http.ResponseWriter) bool {
	if s.rep == nil || s.rep.Srv == nil {
		writeErrorCode(w, http.StatusServiceUnavailable, "not_durable", "replication requires -data-dir", 0)
		return false
	}
	if s.rep.Following() {
		// A tailing follower does not serve the stream: chaining
		// replicas from a replica would hide leader truncation and
		// staleness behind a second hop. Promote first.
		writeErrorCode(w, http.StatusServiceUnavailable, "follower", "node is a follower; promote it to serve replication", 0)
		return false
	}
	return true
}

func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if !s.replicating(w) {
		return
	}
	s.rep.Srv.ServeStream(w, r)
}

func (s *Server) handleReplicateCheckpoint(w http.ResponseWriter, r *http.Request) {
	if !s.replicating(w) {
		return
	}
	s.rep.Srv.ServeCheckpoint(w, r)
}

// PromoteResponse is the POST /v1/promote body.
type PromoteResponse struct {
	Promoted  bool   `json:"promoted"`
	Epoch     uint64 `json:"epoch"`
	SealedSeq uint64 `json:"sealed_seq"`
}

func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if s.rep == nil || s.rep.Fl == nil {
		writeErrorCode(w, http.StatusConflict, "not_follower", "node is not running with -follow", 0)
		return
	}
	ep, err := s.rep.Fl.Promote()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, PromoteResponse{Promoted: true, Epoch: ep.Epoch, SealedSeq: ep.SealedSeq})
}

// ErrorBody is the JSON error envelope every endpoint shares.
type ErrorBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits the JSON error shape every endpoint shares:
// {"error": msg} with the status carrying the class.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorBody{Error: msg})
}

// writeErrorCode is writeError plus a stable machine-readable "code"
// field and, when retryAfter > 0, a Retry-After header carrying an
// honest backoff hint (whole seconds, minimum 1) computed from the
// store's observed drain rate.
func writeErrorCode(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	if retryAfter > 0 {
		secs := int(retryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, status, ErrorBody{Error: msg, Code: code})
}

// ParseMutation reads the /v1/mutate line protocol: one op per line —
// "+ u v [w]" adds an undirected edge (weight w, default 2), "- u v"
// removes one, "v n" appends n vertices; blank lines and #-comments are
// skipped.
func ParseMutation(r io.Reader) (*graph.Mutation, error) {
	mut := &graph.Mutation{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		switch fields[0] {
		case "+":
			if len(fields) < 3 {
				return nil, fmt.Errorf("line %d: want '+ u v [w]'", lineNo)
			}
			u, err1 := strconv.ParseInt(fields[1], 10, 32)
			v, err2 := strconv.ParseInt(fields[2], 10, 32)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("line %d: bad endpoints", lineNo)
			}
			weight := int64(2)
			if len(fields) > 3 {
				var err error
				weight, err = strconv.ParseInt(fields[3], 10, 32)
				if err != nil || weight < 1 {
					return nil, fmt.Errorf("line %d: bad weight %q", lineNo, fields[3])
				}
			}
			mut.NewEdges = append(mut.NewEdges, graph.WeightedEdgeRecord{
				U: graph.VertexID(u), V: graph.VertexID(v), Weight: int32(weight)})
		case "-":
			if len(fields) != 3 {
				return nil, fmt.Errorf("line %d: want '- u v'", lineNo)
			}
			u, err1 := strconv.ParseInt(fields[1], 10, 32)
			v, err2 := strconv.ParseInt(fields[2], 10, 32)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("line %d: bad endpoints", lineNo)
			}
			mut.RemovedEdges = append(mut.RemovedEdges, graph.Edge{From: graph.VertexID(u), To: graph.VertexID(v)})
		case "v":
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: want 'v n'", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 || n > graph.MaxVertices || mut.NewVertices > graph.MaxVertices-n {
				return nil, fmt.Errorf("line %d: bad vertex count %q", lineNo, fields[1])
			}
			mut.NewVertices += n
		default:
			return nil, fmt.Errorf("line %d: unknown op %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return mut, nil
}
