// HTTP instrumentation: every route is wrapped so request latency lands
// in spinner_http_request_duration_seconds{route,status} histograms in
// the store's registry. Streaming routes (watch, replicate) record
// time-to-first-byte — the handshake — since their total duration is the
// subscription lifetime, not a latency.
package api

import (
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

var statusClasses = [...]string{"xxx", "1xx", "2xx", "3xx", "4xx", "5xx"}

// routeHist lazily creates one latency histogram per status class
// actually observed on a route, so the exposition carries no empty 4xx/5xx
// series for routes that never fail. The pointer cache makes the hot path
// one atomic load; the racy fill is benign because registration is
// get-or-create (both racers receive the same histogram).
type routeHist struct {
	reg       *metrics.Registry
	route     string
	streaming bool
	classes   [len(statusClasses)]atomic.Pointer[metrics.Histogram]
}

func (rh *routeHist) observe(status int, d time.Duration) {
	c := status / 100
	if c < 1 || c >= len(statusClasses) {
		c = 0
	}
	h := rh.classes[c].Load()
	if h == nil {
		h = rh.reg.NewHistogram(
			"spinner_http_request_duration_seconds",
			"HTTP request latency by route and status class; streaming routes (watch, replicate) record time-to-first-byte.",
			metrics.UnitSeconds,
			metrics.Label{Key: "route", Value: rh.route},
			metrics.Label{Key: "status", Value: statusClasses[c]},
		)
		rh.classes[c].Store(h)
	}
	h.Record(d)
}

// statusWriter captures the response status and the first-byte time
// without changing what the handler sees. It deliberately does NOT
// implement http.Flusher — flushWriter adds that only when the underlying
// writer supports it, so handlers that type-assert Flusher to refuse
// non-streamable connections (handleWatch) keep their contract.
type statusWriter struct {
	http.ResponseWriter
	status int
	first  time.Time // wall time of the first header/body write
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
		w.first = time.Now()
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
		w.first = time.Now()
	}
	return w.ResponseWriter.Write(b)
}

// flushWriter is a statusWriter over a flushable connection.
type flushWriter struct{ *statusWriter }

func (w *flushWriter) Flush() {
	if w.status == 0 {
		w.status = http.StatusOK
		w.first = time.Now()
	}
	w.ResponseWriter.(http.Flusher).Flush()
}

// instrument wraps a handler so its latency is recorded per route and
// status class. streaming selects time-to-first-byte over total duration.
func (s *Server) instrument(route string, streaming bool, h http.HandlerFunc) http.HandlerFunc {
	rh := &routeHist{reg: s.st.Metrics(), route: route, streaming: streaming}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		var ww http.ResponseWriter = sw
		if _, ok := w.(http.Flusher); ok {
			ww = &flushWriter{sw}
		}
		h(ww, r)
		status := sw.status
		if status == 0 {
			// Handler wrote nothing; net/http will send an implicit 200.
			status = http.StatusOK
			sw.first = time.Now()
		}
		if rh.streaming {
			rh.observe(status, sw.first.Sub(start))
		} else {
			rh.observe(status, time.Since(start))
		}
	}
}
