package api

import (
	"net/http"
	"strings"

	"repro/internal/metrics"
)

// PromContentType is the Prometheus text exposition format version the
// /v1/metrics endpoint emits.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// handleMetrics serves GET /v1/metrics: the registry's histograms and
// gauges followed by every ServeCounters field, all in Prometheus text
// format. Rendering is two appends into one buffer — no reflection, no
// dependencies — so scraping is cheap enough for tight intervals.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	buf := s.st.Metrics().AppendProm(nil)
	snap := s.st.Counters().Snapshot()
	buf = metrics.AppendServeProm(buf, &snap)
	w.Header().Set("Content-Type", PromContentType)
	_, _ = w.Write(buf)
}

// LatencySummary is the /v1/stats headline view of one histogram:
// quantiles in the series' natural unit (seconds for duration series,
// raw values otherwise) plus the observation count.
type LatencySummary struct {
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
	Count int64   `json:"count"`
}

// latencySection summarizes every non-empty histogram in the registry
// under a compact key: the metric name stripped of the spinner_ prefix
// and unit suffixes, with label values appended — e.g.
// spinner_stage_duration_seconds{stage="apply"} becomes "stage:apply"
// and spinner_http_request_duration_seconds{route="lookup",status="2xx"}
// becomes "http_request:lookup:2xx".
func latencySection(reg *metrics.Registry) map[string]LatencySummary {
	out := make(map[string]LatencySummary)
	reg.Each(func(se *metrics.Series) {
		if se.Kind != metrics.KindHistogram {
			return
		}
		snap := se.Hist.Snapshot()
		if snap.Count == 0 {
			return
		}
		scale := 1.0
		if se.Unit == metrics.UnitSeconds {
			scale = 1e-9
		}
		out[latencyKey(se)] = LatencySummary{
			P50:   float64(snap.Quantile(0.50)) * scale,
			P90:   float64(snap.Quantile(0.90)) * scale,
			P99:   float64(snap.Quantile(0.99)) * scale,
			Max:   float64(snap.Max) * scale,
			Count: snap.Count,
		}
	})
	return out
}

func latencyKey(se *metrics.Series) string {
	key := strings.TrimPrefix(se.Name, "spinner_")
	key = strings.TrimSuffix(key, "_seconds")
	key = strings.TrimSuffix(key, "_duration")
	for _, l := range se.Labels {
		key += ":" + l.Value
	}
	return key
}
