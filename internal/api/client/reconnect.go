package client

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// AutoWatcher consumes the change feed across connection failures: it
// re-dials with jittered exponential backoff and resumes from the last
// delta sequence it delivered, so a flappy network or a server restart
// of the HTTP listener costs at most a re-read of undelivered deltas,
// never a gap. What it deliberately does NOT hide is an unserveable
// cursor: a 410 ("compacted"/"reset") on reconnect, or a typed end
// frame mid-stream, surfaces as an error matching ErrCompacted — only
// the caller can run the /v1/lookup resync (it owns the label state) —
// after which SetCursor re-arms the watcher at the resync cursor.
//
// Not safe for concurrent use.
type AutoWatcher struct {
	// BaseBackoff and MaxBackoff bound the jittered exponential delay
	// between re-dials (defaults 50ms and 5s). The delay before attempt
	// n is uniform in [d/2, d] with d = min(Base<<n, Max).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// Reconnects counts successful re-dials after the initial connect —
	// an observability hook for tests and CLIs.
	Reconnects int

	c         *Client
	ctx       context.Context
	w         *Watcher
	cursor    uint64
	connected bool // a stream was established at least once
	attempt   int  // consecutive failed dials, for backoff growth
	rng       *rand.Rand
}

// WatchReconnect returns an auto-reconnecting watcher resuming after
// fromSeq. No connection is made until the first Recv. Cancel ctx to
// stop; Close releases the current stream.
func (c *Client) WatchReconnect(ctx context.Context, fromSeq uint64) *AutoWatcher {
	return &AutoWatcher{
		BaseBackoff: 50 * time.Millisecond,
		MaxBackoff:  5 * time.Second,
		c:           c,
		ctx:         ctx,
		cursor:      fromSeq,
		rng:         rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// Cursor returns the last delta sequence delivered (or the sequence the
// watcher will resume after).
func (a *AutoWatcher) Cursor() uint64 { return a.cursor }

// SetCursor re-arms the watcher after fromSeq — the caller's half of
// the ErrCompacted contract, called with the FromSeq of the LookupAll
// resync. Any current stream is dropped; the next Recv re-dials.
func (a *AutoWatcher) SetCursor(fromSeq uint64) {
	a.cursor = fromSeq
	if a.w != nil {
		a.w.Close()
		a.w = nil
	}
}

// Recv blocks for the next event, transparently re-dialing on
// connection failures and server-side stream ends (limit, shutdown).
// Errors matching ErrCompacted mean the cursor is unserveable: resync
// via LookupAll, SetCursor(resp.FromSeq), and call Recv again. Any
// other returned error is terminal (context cancellation, corrupt
// stream).
func (a *AutoWatcher) Recv() (Event, error) {
	for {
		if a.w == nil {
			if err := a.dial(); err != nil {
				return Event{}, err
			}
		}
		ev, err := a.w.Recv()
		if err == nil {
			if ev.Delta != nil {
				a.cursor = ev.Delta.Seq
			}
			a.attempt = 0
			return ev, nil
		}
		a.w.Close()
		a.w = nil
		if errors.Is(err, ErrCompacted) {
			// The typed end frame: hand the resync decision up with the
			// refreshed bounds.
			return ev, err
		}
		if a.ctx.Err() != nil {
			return Event{}, a.ctx.Err()
		}
		// io.EOF, a torn read, or a decode failure on a half-written
		// frame: the connection is gone. Back off and resume from the
		// cursor; anything truly unserveable turns into a 410 on the
		// re-dial, which dial surfaces as ErrCompacted.
		if werr := a.backoff(); werr != nil {
			return Event{}, werr
		}
	}
}

// dial establishes a stream after the current cursor, retrying
// connection-level failures with backoff. API-level refusals
// (ErrCompacted and friends) are surfaced, not retried.
func (a *AutoWatcher) dial() error {
	for {
		w, err := a.c.Watch(a.ctx, a.cursor)
		if err == nil {
			a.w = w
			if a.connected {
				a.Reconnects++
			}
			a.connected = true
			return nil
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) || a.ctx.Err() != nil {
			return err
		}
		if werr := a.backoff(); werr != nil {
			return werr
		}
	}
}

// backoff sleeps the jittered exponential delay for the next attempt,
// or returns early with the context's error.
func (a *AutoWatcher) backoff() error {
	d := a.BaseBackoff << a.attempt
	if d <= 0 || d > a.MaxBackoff {
		d = a.MaxBackoff
	}
	if a.attempt < 30 {
		a.attempt++
	}
	// Uniform in [d/2, d]: full-jitter halves synchronized reconnect
	// herds without ever going below half the deterministic schedule.
	d = d/2 + time.Duration(a.rng.Int63n(int64(d/2)+1))
	select {
	case <-a.ctx.Done():
		return a.ctx.Err()
	case <-time.After(d):
		return nil
	}
}

// Close releases the current stream, if any. The watcher may be reused
// afterwards (the next Recv re-dials).
func (a *AutoWatcher) Close() error {
	if a.w == nil {
		return nil
	}
	err := a.w.Close()
	a.w = nil
	return err
}
