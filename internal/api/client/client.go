// Package client is the typed Go client for spinnerd's /v1 HTTP API:
// every endpoint as a method returning the api package's response
// structs, server error envelopes surfaced as *APIError values that
// errors.Is-match stable sentinels (ErrQuotaExceeded, ErrReadOnly,
// ErrStaleReplica, ...), and the /v1/watch change feed as a Watcher that
// decodes the CRC-framed delta stream back into serve.Delta records.
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/serve"
)

// Sentinel errors matching the server's stable "code" field, for
// errors.Is against any error returned by a Client method.
var (
	ErrQuotaExceeded = errors.New("quota exceeded")
	ErrLogFull       = errors.New("mutation log full")
	ErrOverloaded    = errors.New("overloaded")
	ErrDegraded      = errors.New("degraded")
	ErrReadOnly      = errors.New("read only")
	ErrStaleReplica  = errors.New("stale replica")
	ErrKUnchanged    = errors.New("k unchanged")
	ErrUnavailable   = errors.New("unavailable")
	ErrNotFollower   = errors.New("not a follower")
	ErrNotFound      = errors.New("not found")
	// ErrCompacted matches both 410 codes a /v1/watch cursor can earn
	// ("compacted" and "reset"): either way the cursor is unserveable and
	// the consumer must full-resync via LookupAll.
	ErrCompacted = errors.New("cursor compacted away")
)

// codeSentinels maps server error codes to their sentinel.
var codeSentinels = map[string]error{
	"quota_exceeded": ErrQuotaExceeded,
	"log_full":       ErrLogFull,
	"overloaded":     ErrOverloaded,
	"degraded":       ErrDegraded,
	"read_only":      ErrReadOnly,
	"stale_replica":  ErrStaleReplica,
	"k_unchanged":    ErrKUnchanged,
	"unavailable":    ErrUnavailable,
	"not_follower":   ErrNotFollower,
	"compacted":      ErrCompacted,
	"reset":          ErrCompacted,
}

// APIError is a server error envelope ({"error","code"} + status +
// Retry-After) surfaced as a Go error. errors.Is matches the sentinel
// for its code (and ErrNotFound for any 404).
type APIError struct {
	Status     int           // HTTP status
	Code       string        // stable machine-readable code ("" on plain errors)
	Message    string        // server's human-readable message
	RetryAfter time.Duration // from the Retry-After header (0 = none)
}

func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("api: %s (%s, http %d)", e.Message, e.Code, e.Status)
	}
	return fmt.Sprintf("api: %s (http %d)", e.Message, e.Status)
}

// Is matches the sentinel corresponding to the error's code (and
// ErrNotFound for 404s), so callers branch with errors.Is instead of
// string-matching.
func (e *APIError) Is(target error) bool {
	if target == ErrNotFound && e.Status == http.StatusNotFound {
		return true
	}
	if s, ok := codeSentinels[e.Code]; ok {
		return target == s
	}
	return false
}

// Client talks to one spinnerd node's /v1 API.
type Client struct {
	// BaseURL is the node's root URL, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides http.DefaultClient when non-nil. Watch
	// streams are long-lived: give the client no overall timeout.
	HTTPClient *http.Client
	// Tenant, when set, is sent as X-Tenant on every mutate.
	Tenant string
}

// New returns a client for the node at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues the request and decodes a JSON success body into out (when
// non-nil), converting error envelopes into *APIError.
func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if c.Tenant != "" {
		req.Header.Set("X-Tenant", c.Tenant)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeError converts an error response into an *APIError, consuming
// the body.
func decodeError(resp *http.Response) error {
	apiErr := &APIError{Status: resp.StatusCode}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	var envelope api.ErrorBody
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&envelope); err == nil {
		apiErr.Code = envelope.Code
		apiErr.Message = envelope.Error
	}
	if apiErr.Message == "" {
		apiErr.Message = resp.Status
	}
	return apiErr
}

// Health fetches GET /v1/healthz. A degraded node answers 503, which
// surfaces as an *APIError with Status 503.
func (c *Client) Health(ctx context.Context) (*api.HealthResponse, error) {
	var out api.HealthResponse
	if err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Lookup resolves one vertex's partition.
func (c *Client) Lookup(ctx context.Context, v int64) (*api.LookupResponse, error) {
	var out api.LookupResponse
	if err := c.do(ctx, http.MethodGet, "/v1/lookup?v="+strconv.FormatInt(v, 10), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// LookupAll fetches the full label map plus the watch cursor to resume
// the change feed from — the resync path after ErrCompacted.
func (c *Client) LookupAll(ctx context.Context) (*api.ResyncResponse, error) {
	var out api.ResyncResponse
	if err := c.do(ctx, http.MethodGet, "/v1/lookup", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Mutate submits a batch in the line protocol ("+ u v [w]", "- u v",
// "v n"; see api.ParseMutation).
func (c *Client) Mutate(ctx context.Context, ops string) (*api.MutateResponse, error) {
	var out api.MutateResponse
	if err := c.do(ctx, http.MethodPost, "/v1/mutate", strings.NewReader(ops), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Resize requests an elastic resize to k partitions.
func (c *Client) Resize(ctx context.Context, k int) (*api.ResizeResponse, error) {
	var out api.ResizeResponse
	if err := c.do(ctx, http.MethodPost, "/v1/resize?k="+strconv.Itoa(k), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches the full serving snapshot.
func (c *Client) Stats(ctx context.Context) (*api.StatsResponse, error) {
	var out api.StatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Promote fails a follower over to leader.
func (c *Client) Promote(ctx context.Context) (*api.PromoteResponse, error) {
	var out api.PromoteResponse
	if err := c.do(ctx, http.MethodPost, "/v1/promote", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Event is one frame of a watch stream: a delta record, or a heartbeat
// (Delta nil) refreshing the server's retention bounds.
type Event struct {
	// Delta is nil on heartbeats.
	Delta *serve.Delta
	// Floor and Next are the server's retention bounds as of the last
	// handshake or heartbeat: deltas in [Floor, Next) are retrievable,
	// and a consumer whose cursor equals Next-1 is caught up.
	Floor, Next uint64
}

// Watcher consumes one /v1/watch stream. Not safe for concurrent use.
type Watcher struct {
	resp  *http.Response
	br    *bufio.Reader
	buf   []byte
	floor uint64
	next  uint64
}

// Watch opens a change-feed stream resuming after fromSeq (0 = from the
// beginning; the first delta is then the baseline full-label record).
// A cursor past the compaction floor (or from a previous server
// incarnation) fails with ErrCompacted: full-resync via LookupAll and
// re-watch from the returned FromSeq. Cancel ctx to end the stream.
func (c *Client) Watch(ctx context.Context, fromSeq uint64) (*Watcher, error) {
	url := c.BaseURL + "/v1/watch?from_seq=" + strconv.FormatUint(fromSeq, 10)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	w := &Watcher{resp: resp, br: bufio.NewReader(resp.Body)}
	f, err := w.readFrame()
	if err != nil {
		w.Close()
		return nil, err
	}
	if f.Kind != api.WatchHandshake {
		w.Close()
		return nil, fmt.Errorf("client: watch stream opened with frame kind %d, want handshake", f.Kind)
	}
	w.floor, w.next = f.Floor, f.Next
	return w, nil
}

// Floor returns the server's oldest retained delta sequence as of the
// last handshake or heartbeat.
func (w *Watcher) Floor() uint64 { return w.floor }

// Next returns the sequence the server will assign to its next delta as
// of the last handshake or heartbeat.
func (w *Watcher) Next() uint64 { return w.next }

// readFrame blocks until one full frame is buffered and decodes it.
func (w *Watcher) readFrame() (api.WatchFrame, error) {
	for {
		f, n, err := api.DecodeWatchFrame(w.buf)
		if err == nil {
			w.buf = w.buf[n:]
			return f, nil
		}
		if !errors.Is(err, api.ErrShortFrame) {
			return api.WatchFrame{}, err
		}
		chunk := make([]byte, 4096)
		m, rerr := w.br.Read(chunk)
		if m > 0 {
			w.buf = append(w.buf, chunk[:m]...)
			continue
		}
		if rerr != nil {
			if errors.Is(rerr, io.EOF) && len(w.buf) > 0 {
				return api.WatchFrame{}, io.ErrUnexpectedEOF
			}
			return api.WatchFrame{}, rerr
		}
	}
}

// Recv blocks for the next event: a delta record, or a heartbeat with
// Delta nil. io.EOF means the server closed the stream (limit reached
// or shutdown — a plain connection end, safe to re-Watch from the same
// cursor). A cursor that compaction overran mid-stream arrives as a
// typed end frame and surfaces as an error matching ErrCompacted (with
// the event carrying the server's new bounds): full-resync via
// LookupAll, like a 410 on Watch.
func (w *Watcher) Recv() (Event, error) {
	f, err := w.readFrame()
	if err != nil {
		return Event{}, err
	}
	switch f.Kind {
	case api.WatchDelta:
		d, err := serve.DecodeDelta(f.Delta)
		if err != nil {
			return Event{}, err
		}
		if d.Seq >= w.next {
			w.next = d.Seq + 1
		}
		return Event{Delta: d, Floor: w.floor, Next: w.next}, nil
	case api.WatchHeartbeat:
		w.floor, w.next = f.Floor, f.Next
		return Event{Floor: w.floor, Next: w.next}, nil
	case api.WatchEnd:
		w.floor, w.next = f.Floor, f.Next
		return Event{Floor: w.floor, Next: w.next},
			fmt.Errorf("client: cursor compacted away mid-stream (floor now %d): %w", f.Floor, ErrCompacted)
	default:
		return Event{}, fmt.Errorf("client: unexpected mid-stream frame kind %d", f.Kind)
	}
}

// Close tears the stream down. Safe after any Recv error. The body is
// deliberately not drained first: a watch stream is live and unbounded,
// so draining would block on the server's next heartbeat. Dropping the
// connection instead is the only way to hang up.
func (w *Watcher) Close() error {
	return w.resp.Body.Close()
}
