package client

import (
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/serve"
)

func testClient(t *testing.T, cfg serve.Config) (*Client, *serve.Store) {
	t.Helper()
	if cfg.Options.K == 0 {
		opts := core.DefaultOptions(4)
		opts.Seed = 7
		opts.NumWorkers = 2
		opts.MaxIterations = 30
		cfg.Options = opts
	}
	st, err := serve.Bootstrap(gen.WattsStrogatz(600, 8, 0.2, 7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	as := api.NewServer(st, nil)
	as.Heartbeat = 10 * time.Millisecond
	srv := httptest.NewServer(as.Mux())
	t.Cleanup(srv.Close)
	return New(srv.URL), st
}

func TestClientRoundTrip(t *testing.T) {
	cli, st := testClient(t, serve.Config{})
	ctx := context.Background()

	h, err := cli.Health(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("Health = %+v, %v", h, err)
	}

	l, err := cli.Lookup(ctx, 5)
	if err != nil || l.Vertex != 5 || l.K != 4 {
		t.Fatalf("Lookup = %+v, %v", l, err)
	}

	m, err := cli.Mutate(ctx, "v 2\n+ 600 0\n+ 601 1 3\n")
	if err != nil || !m.Queued || m.Adds != 2 || m.Vertices != 2 {
		t.Fatalf("Mutate = %+v, %v", m, err)
	}

	r, err := cli.Resize(ctx, 6)
	if err != nil || !r.Queued || r.K != 6 {
		t.Fatalf("Resize = %+v, %v", r, err)
	}
	if err := st.Quiesce(); err != nil {
		t.Fatal(err)
	}

	stats, err := cli.Stats(ctx)
	if err != nil || stats.K != 6 || stats.Vertices != 602 {
		t.Fatalf("Stats = %+v, %v", stats, err)
	}
	if stats.DeltaNext <= stats.DeltaFloor {
		t.Fatalf("Stats delta bounds [%d, %d)", stats.DeltaFloor, stats.DeltaNext)
	}

	all, err := cli.LookupAll(ctx)
	if err != nil || all.K != 6 || all.Vertices != 602 || len(all.Labels) != 602 {
		t.Fatalf("LookupAll = k=%d n=%d labels=%d, %v", all.K, all.Vertices, len(all.Labels), err)
	}
}

func TestClientErrorSentinels(t *testing.T) {
	cli, _ := testClient(t, serve.Config{Quota: serve.QuotaConfig{Rate: 0.001, Burst: 1}})
	ctx := context.Background()

	if _, err := cli.Lookup(ctx, 99999999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing vertex err = %v, want ErrNotFound", err)
	}
	if _, err := cli.Resize(ctx, 4); !errors.Is(err, ErrKUnchanged) {
		t.Fatalf("unchanged resize err = %v, want ErrKUnchanged", err)
	}
	if _, err := cli.Promote(ctx); !errors.Is(err, ErrNotFollower) {
		t.Fatalf("promote on leader err = %v, want ErrNotFollower", err)
	}

	cli.Tenant = "alpha"
	if _, err := cli.Mutate(ctx, "+ 1 2\n"); err != nil {
		t.Fatal(err)
	}
	_, err := cli.Mutate(ctx, "+ 2 3\n")
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota err = %v, want ErrQuotaExceeded", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("over-quota err %T, want *APIError", err)
	}
	if apiErr.Status != 429 || apiErr.Code != "quota_exceeded" || apiErr.RetryAfter < time.Second {
		t.Fatalf("APIError = %+v", apiErr)
	}
	// A plain 400 carries no code and matches no sentinel.
	_, err = cli.Mutate(ctx, "bogus\n")
	if err == nil || errors.Is(err, ErrQuotaExceeded) || errors.Is(err, ErrNotFound) {
		t.Fatalf("malformed mutate err = %v", err)
	}
}

// followFeed drains the watch stream from cursor until a caught-up
// heartbeat, applying every delta.
func followFeed(t *testing.T, cli *Client, labels []int32, cursor uint64) []int32 {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for {
		w, err := cli.Watch(ctx, cursor)
		if errors.Is(err, ErrCompacted) {
			all, aerr := cli.LookupAll(ctx)
			if aerr != nil {
				t.Fatal(aerr)
			}
			labels = append(labels[:0], all.Labels...)
			cursor = all.FromSeq
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		for {
			ev, rerr := w.Recv()
			if rerr != nil {
				if errors.Is(rerr, io.EOF) {
					break
				}
				w.Close()
				t.Fatal(rerr)
			}
			if ev.Delta != nil {
				labels, err = ev.Delta.Apply(labels)
				if err != nil {
					w.Close()
					t.Fatal(err)
				}
				cursor = ev.Delta.Seq
			} else if cursor+1 >= ev.Next {
				w.Close()
				return labels
			}
		}
		w.Close()
	}
}

func TestClientWatchConverges(t *testing.T) {
	cli, st := testClient(t, serve.Config{})
	ctx := context.Background()

	for i := 0; i < 5; i++ {
		if _, err := cli.Mutate(ctx, "v 3\n+ 1 2\n+ 3 4 5\n"); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Quiesce(); err != nil && !strings.Contains(err.Error(), "absent edge") {
		t.Fatal(err)
	}

	labels := followFeed(t, cli, nil, 0)
	all, err := cli.LookupAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != len(all.Labels) {
		t.Fatalf("feed has %d vertices, lookup %d", len(labels), len(all.Labels))
	}
	for v := range all.Labels {
		if labels[v] != all.Labels[v] {
			t.Fatalf("feed label[%d] = %d, lookup = %d", v, labels[v], all.Labels[v])
		}
	}
}

// A cursor compacted out of a tiny ring earns ErrCompacted, and the
// documented LookupAll resync path still converges to lookup truth.
func TestClientWatchCompactedResync(t *testing.T) {
	cli, st := testClient(t, serve.Config{DeltaRing: 4})
	ctx := context.Background()

	for i := 0; i < 12; i++ {
		if _, err := cli.Mutate(ctx, "v 1\n"); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Watch(ctx, 0); !errors.Is(err, ErrCompacted) {
		t.Fatalf("stale cursor err = %v, want ErrCompacted", err)
	}
	labels := followFeed(t, cli, nil, 0)
	all, err := cli.LookupAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for v := range all.Labels {
		if labels[v] != all.Labels[v] {
			t.Fatalf("post-resync label[%d] = %d, lookup = %d", v, labels[v], all.Labels[v])
		}
	}
}
