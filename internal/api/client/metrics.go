package client

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// MetricsText fetches the raw Prometheus exposition from GET /v1/metrics.
// Unlike every other endpoint the body is text, not JSON, so it bypasses
// the do helper; error statuses still decode the shared envelope.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return "", decodeError(resp)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

// Sample is one parsed exposition line: a series (name + label set) and
// its value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Family groups the samples of one metric family in exposition order.
type Family struct {
	Name    string
	Type    string // "counter" | "gauge" | "histogram" | "untyped"
	Help    string
	Samples []Sample
}

// ParseProm parses Prometheus 0.0.4 text exposition into families, in
// input order. It understands exactly what the server emits — HELP/TYPE
// comments, optional labels with escaped values, float values — which is
// all spinnerctl needs; it is not a general scraper.
func ParseProm(text string) ([]*Family, error) {
	var fams []*Family
	byName := map[string]*Family{}
	family := func(name string) *Family {
		// Histogram sample names carry _bucket/_sum/_count suffixes; fold
		// them into the family that declared the base name.
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if t := strings.TrimSuffix(name, suf); t != name && byName[t] != nil {
				base = t
				break
			}
		}
		f := byName[base]
		if f == nil {
			f = &Family{Name: base, Type: "untyped"}
			byName[base] = f
			fams = append(fams, f)
		}
		return f
	}
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, _ := strings.Cut(rest, " ")
			family(name).Help = help
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, _ := strings.Cut(rest, " ")
			family(name).Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sample, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("client: metrics line %d: %w", lineNo+1, err)
		}
		f := family(sample.Name)
		f.Samples = append(f.Samples, sample)
	}
	return fams, nil
}

func parseSample(line string) (Sample, error) {
	sp := strings.LastIndex(line, " ")
	if sp <= 0 {
		return Sample{}, fmt.Errorf("no value in %q", line)
	}
	series, rawVal := line[:sp], line[sp+1:]
	v, err := strconv.ParseFloat(rawVal, 64)
	if err != nil {
		return Sample{}, fmt.Errorf("bad value %q", rawVal)
	}
	s := Sample{Value: v}
	brace := strings.IndexByte(series, '{')
	if brace < 0 {
		s.Name = series
		return s, nil
	}
	if !strings.HasSuffix(series, "}") {
		return Sample{}, fmt.Errorf("unterminated labels in %q", series)
	}
	s.Name = series[:brace]
	s.Labels = map[string]string{}
	body := series[brace+1 : len(series)-1]
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || eq+1 >= len(body) || body[eq+1] != '"' {
			return Sample{}, fmt.Errorf("bad label pair in %q", series)
		}
		key := body[:eq]
		val, rest, err := unquoteLabel(body[eq+2:])
		if err != nil {
			return Sample{}, fmt.Errorf("bad label value in %q: %w", series, err)
		}
		s.Labels[key] = val
		body = strings.TrimPrefix(rest, ",")
	}
	return s, nil
}

// unquoteLabel consumes an escaped label value up to its closing quote,
// returning the decoded value and the remainder after the quote.
func unquoteLabel(s string) (string, string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("trailing backslash")
			}
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quote")
}

// HistQuantile extracts quantile q from a histogram family's cumulative
// buckets, interpolating within the winning bucket. Non-bucket samples
// and samples whose labels (minus "le") differ from match are ignored.
// Returns false when the matching series has no observations.
func HistQuantile(f *Family, match map[string]string, q float64) (float64, bool) {
	type bucket struct {
		le    float64
		count float64
	}
	var buckets []bucket
	for _, s := range f.Samples {
		if s.Name != f.Name+"_bucket" || !labelsMatch(s.Labels, match) {
			continue
		}
		le := s.Labels["le"]
		bound := math.Inf(1)
		if le != "+Inf" {
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			bound = v
		}
		buckets = append(buckets, bucket{le: bound, count: s.Value})
	}
	if len(buckets) == 0 {
		return 0, false
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].count
	if total == 0 {
		return 0, false
	}
	target := q * total
	prevLe, prevCount := 0.0, 0.0
	for _, b := range buckets {
		if b.count >= target {
			if math.IsInf(b.le, 1) {
				return prevLe, true
			}
			if b.count == prevCount {
				return b.le, true
			}
			frac := (target - prevCount) / (b.count - prevCount)
			return prevLe + (b.le-prevLe)*frac, true
		}
		prevLe, prevCount = b.le, b.count
	}
	return prevLe, true
}

// labelsMatch reports whether got equals want ignoring the "le" label.
func labelsMatch(got, want map[string]string) bool {
	n := 0
	for k, v := range got {
		if k == "le" {
			continue
		}
		if want[k] != v {
			return false
		}
		n++
	}
	return n == len(want)
}
