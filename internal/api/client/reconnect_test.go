package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/serve"
)

// fakeFeed is a scripted /v1/watch server: it retains deltas
// [floor, next), serves at most perConn delta frames per connection and
// then closes the stream — the degenerate flappy server an
// auto-reconnecting consumer must ride out.
type fakeFeed struct {
	floor, next uint64
	deltas      map[uint64][]byte // seq -> EncodeDelta payload
	perConn     int
	dials       int
}

func newFakeFeed(floor, next uint64, perConn int) *fakeFeed {
	f := &fakeFeed{floor: floor, next: next, deltas: map[uint64][]byte{}, perConn: perConn}
	for seq := floor; seq < next; seq++ {
		f.deltas[seq] = serve.EncodeDelta(&serve.Delta{Seq: seq, Cross: int64(seq)})
	}
	return f
}

func (f *fakeFeed) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.dials++
	after, _ := strconv.ParseUint(r.URL.Query().Get("from_seq"), 10, 64)
	code := ""
	if after+1 < f.floor {
		code = "compacted"
	} else if after >= f.next {
		code = "reset"
	}
	if code != "" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusGone)
		json.NewEncoder(w).Encode(api.ErrorBody{Error: code, Code: code})
		return
	}
	w.WriteHeader(http.StatusOK)
	buf := api.AppendWatchFrame(nil, api.WatchFrame{Kind: api.WatchHandshake, Floor: f.floor, Next: f.next})
	for n := 0; n < f.perConn && after+1 < f.next; n++ {
		after++
		buf = api.AppendWatchFrame(buf, api.WatchFrame{Kind: api.WatchDelta, Delta: f.deltas[after]})
	}
	w.Write(buf) // then drop the connection: the client must reconnect
}

// An end frame mid-stream must surface as ErrCompacted from Recv, with
// the event carrying the server's refreshed bounds.
func TestWatcherEndFrameSurfacesCompacted(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		buf := api.AppendWatchFrame(nil, api.WatchFrame{Kind: api.WatchHandshake, Floor: 1, Next: 4})
		buf = api.AppendWatchFrame(buf, api.WatchFrame{Kind: api.WatchEnd, Floor: 42, Next: 99})
		w.Write(buf)
	}))
	defer srv.Close()

	w, err := New(srv.URL).Watch(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ev, err := w.Recv()
	if !errors.Is(err, ErrCompacted) {
		t.Fatalf("Recv after end frame = %v, want ErrCompacted", err)
	}
	if ev.Floor != 42 || ev.Next != 99 || w.Floor() != 42 || w.Next() != 99 {
		t.Fatalf("end frame bounds not applied: ev [%d,%d), watcher [%d,%d)",
			ev.Floor, ev.Next, w.Floor(), w.Next())
	}
}

// The auto-watcher must ride out a server that drops the stream every
// two deltas, resuming from the last applied sequence each time — six
// deltas over three connections, no gaps, no duplicates.
func TestAutoWatcherResumesAcrossDrops(t *testing.T) {
	feed := newFakeFeed(1, 7, 2)
	srv := httptest.NewServer(feed)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	aw := New(srv.URL).WatchReconnect(ctx, 0)
	aw.BaseBackoff = time.Millisecond // keep the test fast
	defer aw.Close()

	for want := uint64(1); want <= 6; want++ {
		ev, err := aw.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", want, err)
		}
		if ev.Delta == nil || ev.Delta.Seq != want {
			t.Fatalf("Recv %d = %+v, want delta seq %d", want, ev, want)
		}
	}
	if aw.Cursor() != 6 {
		t.Fatalf("cursor = %d, want 6", aw.Cursor())
	}
	if aw.Reconnects != 2 || feed.dials != 3 {
		t.Fatalf("reconnects = %d, dials = %d; want 2 re-dials over 3 connections",
			aw.Reconnects, feed.dials)
	}
}

// A compacted cursor is NOT hidden by the auto-watcher: the 410
// surfaces as ErrCompacted, and after the caller resyncs and SetCursors,
// the stream resumes from the serveable range.
func TestAutoWatcherSurfacesCompactedAndResumes(t *testing.T) {
	feed := newFakeFeed(5, 8, 10)
	srv := httptest.NewServer(feed)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	aw := New(srv.URL).WatchReconnect(ctx, 0)
	aw.BaseBackoff = time.Millisecond
	defer aw.Close()

	if _, err := aw.Recv(); !errors.Is(err, ErrCompacted) {
		t.Fatalf("Recv with compacted cursor = %v, want ErrCompacted", err)
	}
	// The caller's half of the contract: resync (here: jump to the
	// floor) and re-arm.
	aw.SetCursor(4)
	for want := uint64(5); want <= 7; want++ {
		ev, err := aw.Recv()
		if err != nil {
			t.Fatalf("post-resync Recv %d: %v", want, err)
		}
		if ev.Delta == nil || ev.Delta.Seq != want {
			t.Fatalf("post-resync Recv = %+v, want delta seq %d", ev, want)
		}
	}
}
