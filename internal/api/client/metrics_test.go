package client

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/serve"
)

func TestClientMetricsText(t *testing.T) {
	cli, st := testClient(t, serve.Config{})
	ctx := context.Background()
	if _, err := cli.Lookup(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Mutate(ctx, "+ 0 599 3\n"); err != nil {
		t.Fatal(err)
	}
	if err := st.Quiesce(); err != nil {
		t.Fatal(err)
	}
	text, err := cli.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := ParseProm(text)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f := byName["spinner_lookups_total"]; f == nil || f.Type != "counter" ||
		len(f.Samples) != 1 || f.Samples[0].Value < 1 {
		t.Fatalf("spinner_lookups_total family: %+v", f)
	}
	hist := byName["spinner_http_request_duration_seconds"]
	if hist == nil || hist.Type != "histogram" {
		t.Fatalf("http histogram family missing: %+v", hist)
	}
	q, ok := HistQuantile(hist, map[string]string{"route": "lookup", "status": "2xx"}, 0.99)
	if !ok || q <= 0 || math.IsInf(q, 1) {
		t.Fatalf("HistQuantile = %v, %v", q, ok)
	}
	if _, ok := HistQuantile(hist, map[string]string{"route": "nonexistent", "status": "2xx"}, 0.5); ok {
		t.Fatal("quantile for unmatched labels should report no data")
	}
}

func TestParseProm(t *testing.T) {
	text := strings.Join([]string{
		"# HELP spinner_x_total things",
		"# TYPE spinner_x_total counter",
		"spinner_x_total 41",
		"# TYPE spinner_h_seconds histogram",
		`spinner_h_seconds_bucket{stage="a\"b",le="0.5"} 3`,
		`spinner_h_seconds_bucket{stage="a\"b",le="+Inf"} 4`,
		`spinner_h_seconds_sum{stage="a\"b"} 1.25`,
		`spinner_h_seconds_count{stage="a\"b"} 4`,
		"",
	}, "\n")
	fams, err := ParseProm(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 2 {
		t.Fatalf("got %d families, want 2", len(fams))
	}
	if fams[0].Name != "spinner_x_total" || fams[0].Type != "counter" ||
		fams[0].Help != "things" || fams[0].Samples[0].Value != 41 {
		t.Fatalf("counter family: %+v", fams[0])
	}
	h := fams[1]
	if h.Name != "spinner_h_seconds" || len(h.Samples) != 4 {
		t.Fatalf("histogram family: %+v", h)
	}
	if h.Samples[0].Labels["stage"] != `a"b` || h.Samples[0].Labels["le"] != "0.5" {
		t.Fatalf("escaped labels: %+v", h.Samples[0].Labels)
	}
	q, ok := HistQuantile(h, map[string]string{"stage": `a"b`}, 0.5)
	if !ok || q <= 0 || q > 0.5 {
		t.Fatalf("interpolated quantile = %v, %v", q, ok)
	}
	if _, err := ParseProm("spinner_bad{x=} 1"); err == nil {
		t.Fatal("malformed labels did not error")
	}
	if _, err := ParseProm("spinner_bad 1 2 3 nope"); err == nil {
		t.Fatal("malformed value did not error")
	}
}
