package api

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestMetricsExposition drives traffic through the mux and checks the
// /v1/metrics exposition: parseable lines, the HTTP middleware series,
// the serve-counter series, non-empty pipeline stage histograms, and no
// duplicate series names.
func TestMetricsExposition(t *testing.T) {
	st := testStore(t, 4)
	srv := testServer(t, st)

	// Churn: a lookup, a mutate, a failed lookup (4xx class).
	for _, url := range []string{"/v1/lookup?v=1", "/v1/lookup?v=notanumber", "/v1/stats"} {
		resp, err := http.Get(srv.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := http.Post(srv.URL+"/v1/mutate", "text/plain", strings.NewReader("+ 0 599 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := st.Quiesce(); err != nil {
		t.Fatal(err)
	}

	resp, err = http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Fatalf("metrics Content-Type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)

	for _, want := range []string{
		`spinner_http_request_duration_seconds_count{route="lookup",status="2xx"} 1`,
		`spinner_http_request_duration_seconds_count{route="lookup",status="4xx"} 1`,
		`spinner_http_request_duration_seconds_count{route="mutate",status="2xx"} 1`,
		"# TYPE spinner_stage_duration_seconds histogram",
		"# TYPE spinner_lookups_total counter",
		"spinner_batches_applied_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The mutate went through the pipeline: drain and apply stages must
	// have recorded at least one turn.
	for _, stage := range []string{"drain", "apply"} {
		line := `spinner_stage_duration_seconds_count{stage="` + stage + `"}`
		idx := strings.Index(out, line)
		if idx < 0 {
			t.Fatalf("exposition missing %s stage count", stage)
		}
		rest := out[idx+len(line)+1:]
		if strings.HasPrefix(rest, "0\n") {
			t.Errorf("stage %s histogram empty after mutate", stage)
		}
	}
	// Legacy unversioned path must not exist for metrics.
	r2, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("legacy /metrics status %d, want 404", r2.StatusCode)
	}
	// Exposition hygiene: every non-comment line is "name{labels} value"
	// and no series repeats.
	seen := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp <= 0 {
			t.Fatalf("unparseable line %q", line)
		}
		series := line[:sp]
		if seen[series] {
			t.Fatalf("duplicate series %q", series)
		}
		seen[series] = true
	}
}

// TestStatsLatencySection checks /v1/stats carries headline quantiles
// once histograms have observations.
func TestStatsLatencySection(t *testing.T) {
	st := testStore(t, 4)
	srv := testServer(t, st)
	// Two stats requests: the first may render before any histogram has
	// data; the second must at least see the first's http latency.
	for i := 0; i < 2; i++ {
		resp, err := http.Get(srv.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		var stats StatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		sum, ok := stats.Latency["http_request:stats:2xx"]
		if !ok {
			t.Fatalf("latency section missing http_request:stats:2xx: %v", stats.Latency)
		}
		if sum.Count < 1 || sum.P99 <= 0 || sum.Max < sum.P50 {
			t.Fatalf("implausible latency summary %+v", sum)
		}
	}
}
