package api

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// watchBatch bounds the deltas fetched (and written) per iteration so a
// far-behind consumer streams in chunks instead of one giant write.
const watchBatch = 256

// watchBufPool recycles the per-stream gather buffers: each stream
// holds one buffer only while it is actively writing a batch, so at
// 10k mostly-idle streams the pool keeps the steady-state footprint at
// roughly (active writers × batch size) instead of (streams × batch
// size) grow-only buffers.
var watchBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// handleWatch serves GET /v1/watch?from_seq=N — a chunked stream of
// delta frames starting at sequence N+1 (from_seq names the last delta
// the consumer has applied; 0 = from the beginning, whose first delta is
// the baseline full-label record). The stream long-polls: while the
// consumer is caught up the server parks on a per-stream delta
// subscription (coalesced single-slot wakeups; no thundering herd) and
// emits heartbeat frames so the consumer can see the floor advance.
//
// Fan-out is encode-once: the frames written here are the immutable
// bytes memoized by the delta hub at publish time, shared by every
// stream — the per-stream cost is a copy into a pooled gather buffer
// and one chunked write, never an encode or a CRC.
//
// 410 Gone answers a cursor the ring can no longer serve — either
// compacted (N+1 below the floor) or reset (N ahead of the newest
// sequence, i.e. minted by a previous server incarnation); both mean
// "full resync via /v1/lookup, then re-watch from the returned
// from_seq". A cursor that compaction overruns mid-stream gets a final
// WatchEnd frame carrying the new floor, so the consumer can tell
// "fell behind, resync" from a dropped connection.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	after := uint64(0)
	if raw := q.Get("from_seq"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad from_seq")
			return
		}
		after = v
	}
	// limit caps the delta frames delivered before the server closes the
	// stream (0 = stream forever) — for consumers that want a bounded
	// catch-up read rather than a subscription.
	limit := 0
	if raw := q.Get("limit"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "bad limit")
			return
		}
		limit = v
	}

	floor, next := s.feed.DeltaBounds()
	if after+1 < floor {
		writeErrorCode(w, http.StatusGone, "compacted",
			fmt.Sprintf("delta %d compacted away (floor %d); full resync required", after+1, floor), 0)
		return
	}
	if after >= next {
		writeErrorCode(w, http.StatusGone, "reset",
			fmt.Sprintf("from_seq %d is ahead of the newest delta %d (server restarted?); full resync required", after, next-1), 0)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	// WatchStreams is a gauge of open streams; WatchStreamsTotal counts
	// every accepted stream for rate math across scrapes.
	ctr := s.st.Counters()
	ctr.WatchStreams.Add(1)
	ctr.WatchStreamsTotal.Add(1)
	defer ctr.WatchStreams.Add(-1)

	sub := s.feed.SubscribeDeltas()
	defer sub.Cancel()

	bufp := watchBufPool.Get().(*[]byte)
	buf := (*bufp)[:0]
	defer func() {
		// Return the (possibly grown) buffer, not the original backing.
		*bufp = buf[:0]
		watchBufPool.Put(bufp)
	}()

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Delta-Floor", strconv.FormatUint(floor, 10))
	w.Header().Set("X-Delta-Next", strconv.FormatUint(next, 10))
	w.WriteHeader(http.StatusOK)
	buf = AppendWatchFrame(buf, WatchFrame{Kind: WatchHandshake, Floor: floor, Next: next})
	if _, err := w.Write(buf); err != nil {
		return
	}
	flusher.Flush()
	ctr.WatchBytesSent.Add(int64(len(buf)))

	heartbeat := s.Heartbeat
	if heartbeat <= 0 {
		heartbeat = time.Second
	}
	hb := newHeartbeatTimer()
	defer hb.Stop()
	ctx := r.Context()
	sent := 0
	for {
		fds, _ := s.feed.FramedDeltasSince(after, watchBatch)
		if len(fds) > 0 {
			if fds[0].Delta.Seq != after+1 {
				// Compaction overtook the cursor mid-stream (the consumer
				// fell behind a full ring). Say so with a typed end frame
				// carrying the new bounds — the client distinguishes
				// "resync required" from a dropped connection — then end
				// the stream; the /v1/lookup resync path takes over.
				f, n := s.feed.DeltaBounds()
				buf = AppendWatchFrame(buf[:0], WatchFrame{Kind: WatchEnd, Floor: f, Next: n})
				if _, err := w.Write(buf); err != nil {
					return
				}
				flusher.Flush()
				ctr.WatchBytesSent.Add(int64(len(buf)))
				return
			}
			buf = buf[:0]
			last := 0
			for i := range fds {
				buf = append(buf, fds[i].Frame...)
				after = fds[i].Delta.Seq
				last = i
				sent++
				if limit > 0 && sent >= limit {
					break
				}
			}
			if _, err := w.Write(buf); err != nil {
				return
			}
			flusher.Flush()
			ctr.WatchBytesSent.Add(int64(len(buf)))
			if d := fds[last].Elapsed(); d > 0 {
				s.fanoutHist.Record(d)
			}
			if limit > 0 && sent >= limit {
				return
			}
			continue
		}
		// A wakeup that raced the ring read is already pending: loop
		// straight back to the read without re-arming the heartbeat
		// timer (arming costs a stop/drain/reset; skipping it matters at
		// publication rates where the slot is almost always full).
		select {
		case <-sub.C():
			continue
		default:
		}
		hb.Arm(heartbeat)
		select {
		case <-ctx.Done():
			return
		case <-sub.C():
		case <-hb.C():
			hb.Fired()
			f, n := s.feed.DeltaBounds()
			buf = AppendWatchFrame(buf[:0], WatchFrame{Kind: WatchHeartbeat, Floor: f, Next: n})
			if _, err := w.Write(buf); err != nil {
				return
			}
			flusher.Flush()
			ctr.WatchBytesSent.Add(int64(len(buf)))
		}
	}
}
