package api

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/serve"
)

// watchBatch bounds the deltas fetched (and framed) per iteration so a
// far-behind consumer streams in chunks instead of one giant write.
const watchBatch = 256

// handleWatch serves GET /v1/watch?from_seq=N — a chunked stream of
// delta frames starting at sequence N+1 (from_seq names the last delta
// the consumer has applied; 0 = from the beginning, whose first delta is
// the baseline full-label record). The stream long-polls: while the
// consumer is caught up the server parks on the store's delta
// notification channel and emits heartbeat frames so the consumer can
// see the floor advance. 410 Gone answers a cursor the ring can no
// longer serve — either compacted (N+1 below the floor) or reset (N
// ahead of the newest sequence, i.e. minted by a previous server
// incarnation); both mean "full resync via /v1/lookup, then re-watch
// from the returned from_seq".
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	after := uint64(0)
	if raw := q.Get("from_seq"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad from_seq")
			return
		}
		after = v
	}
	// limit caps the delta frames delivered before the server closes the
	// stream (0 = stream forever) — for consumers that want a bounded
	// catch-up read rather than a subscription.
	limit := 0
	if raw := q.Get("limit"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "bad limit")
			return
		}
		limit = v
	}

	floor, next := s.st.DeltaBounds()
	if after+1 < floor {
		writeErrorCode(w, http.StatusGone, "compacted",
			fmt.Sprintf("delta %d compacted away (floor %d); full resync required", after+1, floor), 0)
		return
	}
	if after >= next {
		writeErrorCode(w, http.StatusGone, "reset",
			fmt.Sprintf("from_seq %d is ahead of the newest delta %d (server restarted?); full resync required", after, next-1), 0)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	// WatchStreams is a gauge of open streams; WatchStreamsTotal counts
	// every accepted stream for rate math across scrapes.
	ctr := s.st.Counters()
	ctr.WatchStreams.Add(1)
	ctr.WatchStreamsTotal.Add(1)
	defer ctr.WatchStreams.Add(-1)

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Delta-Floor", strconv.FormatUint(floor, 10))
	w.Header().Set("X-Delta-Next", strconv.FormatUint(next, 10))
	w.WriteHeader(http.StatusOK)
	buf := AppendWatchFrame(nil, WatchFrame{Kind: WatchHandshake, Floor: floor, Next: next})
	if _, err := w.Write(buf); err != nil {
		return
	}
	flusher.Flush()

	heartbeat := s.Heartbeat
	if heartbeat <= 0 {
		heartbeat = time.Second
	}
	timer := time.NewTimer(heartbeat)
	defer timer.Stop()
	ctx := r.Context()
	sent := 0
	for {
		// Grab the notification channel BEFORE reading, so a delta
		// published between the read and the park wakes us immediately.
		notify := s.st.DeltaNotify()
		ds, _ := s.st.DeltasSince(after, watchBatch)
		if len(ds) > 0 {
			if ds[0].Seq != after+1 {
				// Compaction overtook the cursor mid-stream (the consumer
				// fell behind a full ring). End the stream; the reconnect
				// gets an honest 410 and resyncs.
				return
			}
			buf = buf[:0]
			for _, d := range ds {
				buf = AppendWatchFrame(buf, WatchFrame{Kind: WatchDelta, Delta: serve.EncodeDelta(d)})
				after = d.Seq
				sent++
				if limit > 0 && sent >= limit {
					break
				}
			}
			if _, err := w.Write(buf); err != nil {
				return
			}
			flusher.Flush()
			if limit > 0 && sent >= limit {
				return
			}
			continue
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(heartbeat)
		select {
		case <-ctx.Done():
			return
		case <-notify:
		case <-timer.C:
			f, n := s.st.DeltaBounds()
			buf = AppendWatchFrame(buf[:0], WatchFrame{Kind: WatchHeartbeat, Floor: f, Next: n})
			if _, err := w.Write(buf); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}
