package api

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/serve"
	"repro/internal/wal"
)

func testStore(t *testing.T, k int) *serve.Store {
	t.Helper()
	return testStoreCfg(t, serve.Config{Options: testOpts(k)})
}

func testOpts(k int) core.Options {
	opts := core.DefaultOptions(k)
	opts.Seed = 7
	opts.NumWorkers = 2
	opts.MaxIterations = 30
	return opts
}

func testStoreCfg(t *testing.T, cfg serve.Config) *serve.Store {
	t.Helper()
	st, err := serve.Bootstrap(gen.WattsStrogatz(600, 8, 0.2, 7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func testServer(t *testing.T, st *serve.Store) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewServer(st, nil).Mux())
	t.Cleanup(srv.Close)
	return srv
}

// prefixes parametrizes route tests over the versioned path and its
// legacy alias — both must serve identical shapes.
var prefixes = []string{"/v1", ""}

func TestHTTPLookupAndStats(t *testing.T) {
	st := testStore(t, 4)
	srv := testServer(t, st)

	for _, prefix := range prefixes {
		resp, err := http.Get(srv.URL + prefix + "/lookup?v=5")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s/lookup status %d", prefix, resp.StatusCode)
		}
		var body LookupResponse
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if body.Vertex != 5 || body.Partition < 0 || int(body.Partition) >= body.K {
			t.Fatalf("%s/lookup body %+v", prefix, body)
		}

		for _, bad := range []string{"/lookup?v=abc", "/lookup?v="} {
			r, err := http.Get(srv.URL + prefix + bad)
			if err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
			if r.StatusCode != http.StatusBadRequest {
				t.Fatalf("%s%s status %d, want 400", prefix, bad, r.StatusCode)
			}
		}
		r, err := http.Get(srv.URL + prefix + "/lookup?v=100000")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("%s missing vertex status %d, want 404", prefix, r.StatusCode)
		}

		r, err = http.Get(srv.URL + prefix + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		var stats StatsResponse
		err = json.NewDecoder(r.Body).Decode(&stats)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Vertices != 600 || stats.K != 4 {
			t.Fatalf("%s/stats %+v", prefix, stats)
		}
		if stats.DeltaFloor < 1 || stats.DeltaNext <= stats.DeltaFloor {
			t.Fatalf("%s/stats delta bounds [%d, %d)", prefix, stats.DeltaFloor, stats.DeltaNext)
		}

		r, err = http.Get(srv.URL + prefix + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var health HealthResponse
		err = json.NewDecoder(r.Body).Decode(&health)
		r.Body.Close()
		if r.StatusCode != http.StatusOK || err != nil || health.Status != "ok" {
			t.Fatalf("%s/healthz status %d body %+v err %v", prefix, r.StatusCode, health, err)
		}
	}
}

// The bare /v1/lookup (no v) is the full-resync dump; the legacy alias
// keeps its original 400 contract there.
func TestLookupResync(t *testing.T) {
	st := testStore(t, 4)
	srv := testServer(t, st)

	r, err := http.Get(srv.URL + "/lookup")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("legacy bare /lookup status %d, want 400", r.StatusCode)
	}

	r, err = http.Get(srv.URL + "/v1/lookup")
	if err != nil {
		t.Fatal(err)
	}
	var dump ResyncResponse
	err = json.NewDecoder(r.Body).Decode(&dump)
	r.Body.Close()
	if r.StatusCode != http.StatusOK || err != nil {
		t.Fatalf("/v1/lookup resync status %d err %v", r.StatusCode, err)
	}
	snap := st.Snapshot()
	if dump.K != snap.K || dump.Vertices != len(snap.Labels) || len(dump.Labels) != len(snap.Labels) {
		t.Fatalf("resync dump k=%d n=%d labels=%d, want k=%d n=%d", dump.K, dump.Vertices, len(dump.Labels), snap.K, len(snap.Labels))
	}
	for v := range snap.Labels {
		if dump.Labels[v] != snap.Labels[v] {
			t.Fatalf("resync label[%d] = %d, want %d", v, dump.Labels[v], snap.Labels[v])
		}
	}
	_, next := st.DeltaBounds()
	if dump.FromSeq > next-1 {
		t.Fatalf("resync from_seq %d ahead of newest delta %d", dump.FromSeq, next-1)
	}
}

func TestHTTPMutateAndResize(t *testing.T) {
	st := testStore(t, 4)
	srv := testServer(t, st)

	body := "# add two vertices and wire them in\nv 2\n+ 600 0\n+ 601 1 3\n- 0 1\n"
	resp, err := http.Post(srv.URL+"/v1/mutate", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var mres MutateResponse
	err = json.NewDecoder(resp.Body).Decode(&mres)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || err != nil {
		t.Fatalf("mutate status %d err %v", resp.StatusCode, err)
	}
	if !mres.Queued || mres.Adds != 2 || mres.Removes != 1 || mres.Vertices != 2 {
		t.Fatalf("mutate body %+v", mres)
	}
	if err := st.Quiesce(); err != nil {
		// {0,1} may legitimately be absent in the generated graph; only a
		// rejected-batch error is acceptable here.
		if !strings.Contains(err.Error(), "absent edge") {
			t.Fatal(err)
		}
	}

	resp, err = http.Post(srv.URL+"/v1/resize?k=6", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resize status %d", resp.StatusCode)
	}
	if err := st.Quiesce(); err != nil && !strings.Contains(err.Error(), "absent edge") {
		t.Fatal(err)
	}
	if got := st.Snapshot().K; got != 6 {
		t.Fatalf("k after resize = %d, want 6", got)
	}

	for _, prefix := range prefixes {
		for _, bad := range []string{"/resize", "/resize?k=0", "/resize?k=x"} {
			r, err := http.Post(srv.URL+prefix+bad, "text/plain", nil)
			if err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
			if r.StatusCode != http.StatusBadRequest {
				t.Fatalf("%s%s status %d, want 400", prefix, bad, r.StatusCode)
			}
		}
		r, err := http.Post(srv.URL+prefix+"/mutate", "text/plain", strings.NewReader("bogus 1 2\n"))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s bad mutate status %d, want 400", prefix, r.StatusCode)
		}
	}
}

func TestParseMutation(t *testing.T) {
	mut, err := ParseMutation(strings.NewReader("v 3\n+ 1 2\n+ 2 3 5\n- 4 5\n\n# comment\n"))
	if err != nil {
		t.Fatal(err)
	}
	if mut.NewVertices != 3 || len(mut.NewEdges) != 2 || len(mut.RemovedEdges) != 1 {
		t.Fatalf("parsed %+v", mut)
	}
	if mut.NewEdges[0].Weight != 2 || mut.NewEdges[1].Weight != 5 {
		t.Fatalf("weights %d,%d", mut.NewEdges[0].Weight, mut.NewEdges[1].Weight)
	}
	for _, bad := range []string{"+ 1\n", "- 1\n", "v x\n", "v -1\n", "v 999999999999\n", "v 8000000\nv 8000000\n", "+ a b\n", "+ 1 2 0\n", "? 1 2\n"} {
		if _, err := ParseMutation(strings.NewReader(bad)); err == nil {
			t.Fatalf("ParseMutation(%q) accepted", bad)
		}
	}
}

// Every HTTP error path must report the right status code and leave the
// store untouched: same snapshot version, batch counts, and k.
func TestHTTPErrorPathsLeaveStoreUntouched(t *testing.T) {
	st := testStore(t, 4)
	srv := testServer(t, st)
	if err := st.Quiesce(); err != nil {
		t.Fatal(err)
	}
	before := st.Snapshot()
	beforeCtr := st.Counters().Snapshot()

	cases := []struct {
		method, path, body string
		wantStatus         int
	}{
		// /resize: malformed, out-of-range, and unchanged k.
		{"POST", "/resize", "", http.StatusBadRequest},
		{"POST", "/resize?k=0", "", http.StatusBadRequest},
		{"POST", "/resize?k=-3", "", http.StatusBadRequest},
		{"POST", "/resize?k=abc", "", http.StatusBadRequest},
		{"POST", "/resize?k=4", "", http.StatusBadRequest}, // unchanged
		// /mutate: malformed bodies.
		{"POST", "/mutate", "bogus 1 2\n", http.StatusBadRequest},
		{"POST", "/mutate", "+ 1\n", http.StatusBadRequest},
		{"POST", "/mutate", "+ a b\n", http.StatusBadRequest},
		{"POST", "/mutate", "+ 1 2 -5\n", http.StatusBadRequest},
		{"POST", "/mutate", "- 1\n", http.StatusBadRequest},
		{"POST", "/mutate", "v notanumber\n", http.StatusBadRequest},
		{"POST", "/mutate", "{\"json\": \"not the protocol\"}", http.StatusBadRequest},
		// /lookup: malformed and unknown vertices.
		{"GET", "/lookup?v=junk", "", http.StatusBadRequest},
		{"GET", "/lookup?v=999999", "", http.StatusNotFound},
		{"GET", "/lookup?v=-1", "", http.StatusNotFound},
		// /watch: malformed cursor and limit.
		{"GET", "/watch?from_seq=junk", "", http.StatusBadRequest},
		{"GET", "/watch?limit=-2", "", http.StatusBadRequest},
	}
	for _, prefix := range prefixes {
		for _, tc := range cases {
			if strings.HasPrefix(tc.path, "/watch") && prefix == "" {
				continue // /watch has no legacy alias
			}
			req, err := http.NewRequest(tc.method, srv.URL+prefix+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("%s %s%s: status %d, want %d", tc.method, prefix, tc.path, resp.StatusCode, tc.wantStatus)
			}
		}
	}

	if err := st.Quiesce(); err != nil {
		t.Fatal(err)
	}
	after := st.Snapshot()
	afterCtr := st.Counters().Snapshot()
	if after.Version != before.Version || after.K != before.K ||
		after.AppliedBatches != before.AppliedBatches || len(after.Labels) != len(before.Labels) {
		t.Fatalf("error paths mutated the store: %+v -> %+v", before, after)
	}
	if afterCtr.BatchesApplied != beforeCtr.BatchesApplied ||
		afterCtr.BatchesRejected != beforeCtr.BatchesRejected ||
		afterCtr.ElasticResizes != beforeCtr.ElasticResizes {
		t.Fatalf("error paths reached the maintenance plane: %v -> %v", beforeCtr, afterCtr)
	}
}

// Every response — success and error alike — must carry
// Content-Type: application/json and, on errors, the shared envelope.
func TestHTTPBodiesAreJSON(t *testing.T) {
	st := testStore(t, 4)
	srv := testServer(t, st)
	cases := []struct {
		method, path, body string
		wantErr            bool
	}{
		{"GET", "/healthz", "", false},
		{"GET", "/lookup?v=5", "", false},
		{"GET", "/stats", "", false},
		{"GET", "/lookup?v=abc", "", true},
		{"GET", "/lookup?v=99999999", "", true},
		{"POST", "/mutate", "bogus 1 2\n", true},
		{"POST", "/resize?k=0", "", true},
		{"POST", "/resize?k=4", "", true}, // unchanged k
		{"POST", "/promote", "", true},    // not a follower
		{"GET", "/replicate", "", true},   // not durable
	}
	for _, prefix := range prefixes {
		for _, tc := range cases {
			req, err := http.NewRequest(tc.method, srv.URL+prefix+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("%s %s%s: Content-Type %q", tc.method, prefix, tc.path, ct)
			}
			if !tc.wantErr {
				resp.Body.Close()
				continue
			}
			var body ErrorBody
			err = json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if err != nil || body.Error == "" {
				t.Fatalf("%s %s%s: error body not {\"error\": msg}: %v", tc.method, prefix, tc.path, err)
			}
		}
	}
}

// A tenant past its token-bucket quota gets 429 with the stable
// machine-readable code, an honest Retry-After header, and per-tenant
// accounting in /stats; other tenants are unaffected.
func TestHTTPQuotaRejection(t *testing.T) {
	st := testStoreCfg(t, serve.Config{Options: testOpts(4),
		Quota: serve.QuotaConfig{Rate: 0.001, Burst: 1}})
	srv := testServer(t, st)

	mutate := func(tenant string) *http.Response {
		req, err := http.NewRequest("POST", srv.URL+"/v1/mutate", strings.NewReader("+ 1 2\n"))
		if err != nil {
			t.Fatal(err)
		}
		if tenant != "" {
			req.Header.Set("X-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if resp := mutate("alpha"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first alpha mutate status %d, want 202", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	resp := mutate("alpha") // burst of 1 spent, refill ~17 min away
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second alpha mutate status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want whole seconds >= 1", ra)
	}
	var body ErrorBody
	err := json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if err != nil || body.Code != "quota_exceeded" || body.Error == "" {
		t.Fatalf("429 body = %+v, err %v; want code quota_exceeded", body, err)
	}

	// A different tenant has its own bucket and sails through.
	if resp := mutate("beta"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("beta mutate status %d, want 202", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	r, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	err = json.NewDecoder(r.Body).Decode(&stats)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	alpha := stats.Tenants["alpha"]
	if alpha.Submitted != 1 || alpha.QuotaRejected != 1 {
		t.Fatalf("alpha stats %+v, want submitted=1 quota_rejected=1", alpha)
	}
	if beta := stats.Tenants["beta"]; beta.Submitted != 1 || beta.QuotaRejected != 0 {
		t.Fatalf("beta stats %+v, want submitted=1 quota_rejected=0", beta)
	}
	if stats.Counters.QuotaRejections != 1 {
		t.Fatalf("QuotaRejections = %d, want 1", stats.Counters.QuotaRejections)
	}
}

// While the store is overloaded, /resize is shed with 503 + Retry-After
// and the shed is counted; lookups and mutations keep flowing.
func TestHTTPResizeShedUnderOverload(t *testing.T) {
	st := testStoreCfg(t, serve.Config{Options: testOpts(4),
		Overload: serve.OverloadConfig{LookupRate: 1, Window: 5 * time.Millisecond}})
	srv := testServer(t, st)

	// Hammer lookups until the EWMA detector trips (well above 1/sec).
	deadline := time.Now().Add(5 * time.Second)
	for !st.Overloaded() {
		if time.Now().After(deadline) {
			t.Fatal("overload detector never tripped")
		}
		for v := 0; v < 500; v++ {
			st.Lookup(graph.VertexID(v))
		}
	}

	resp, err := http.Post(srv.URL+"/v1/resize?k=6", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded resize status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed resize without Retry-After header")
	}
	var body ErrorBody
	err = json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if err != nil || body.Code != "overloaded" {
		t.Fatalf("shed body code = %q, err %v; want overloaded", body.Code, err)
	}
	if got := st.Counters().ShedRequests.Load(); got < 1 {
		t.Fatalf("ShedRequests = %d, want >= 1", got)
	}

	// Mutations still flow while overloaded.
	r, err := http.Post(srv.URL+"/v1/mutate", "text/plain", strings.NewReader("v 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusAccepted {
		t.Fatalf("mutate while overloaded status %d, want 202", r.StatusCode)
	}
}

// After an injected storage fault the daemon fails stop: /healthz flips
// to 503 {"status":"degraded"}, writes refuse with code "degraded", and
// lookups keep serving the last applied state.
func TestHTTPDegradedAfterStorageFault(t *testing.T) {
	cfg := serve.Config{Options: testOpts(4), Shards: 2,
		Durability: serve.DurabilityConfig{Fsync: wal.SyncNever}}
	st, err := serve.BootstrapDurable(t.TempDir(), gen.WattsStrogatz(600, 8, 0.2, 7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Quiesce(); err != nil {
		t.Fatal(err)
	}
	srv := testServer(t, st)

	restore := wal.InjectFaults(func(*os.File, []byte) (int, error) {
		return 0, errors.New("injected: disk gone")
	}, nil)
	defer restore()

	// The faulted write happens on the coordinator after the 202; poll
	// until the fail-stop transition lands.
	r, err := http.Post(srv.URL+"/v1/mutate", "text/plain", strings.NewReader("v 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusAccepted {
		t.Fatalf("mutate status %d, want 202", r.StatusCode)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !st.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("store never degraded after injected journal fault")
		}
		time.Sleep(time.Millisecond)
	}

	for _, prefix := range prefixes {
		resp, err := http.Get(srv.URL + prefix + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("degraded %s/healthz status %d, want 503", prefix, resp.StatusCode)
		}
		var health HealthResponse
		err = json.NewDecoder(resp.Body).Decode(&health)
		resp.Body.Close()
		if err != nil || health.Status != "degraded" {
			t.Fatalf("%s/healthz body status = %q, err %v; want degraded", prefix, health.Status, err)
		}
	}

	for _, tc := range []struct{ path, body string }{
		{"/v1/mutate", "v 1\n"},
		{"/v1/resize?k=6", ""},
	} {
		resp, err := http.Post(srv.URL+tc.path, "text/plain", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var body ErrorBody
		derr := json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable || derr != nil || body.Code != "degraded" {
			t.Fatalf("POST %s while degraded: status %d code %q err %v; want 503 degraded",
				tc.path, resp.StatusCode, body.Code, derr)
		}
	}

	// The read path is unaffected.
	lr, err := http.Get(srv.URL + "/v1/lookup?v=5")
	if err != nil {
		t.Fatal(err)
	}
	lr.Body.Close()
	if lr.StatusCode != http.StatusOK {
		t.Fatalf("lookup while degraded status %d, want 200", lr.StatusCode)
	}
}

// The /stats payload must expose the durability counters and flag.
func TestHTTPStatsDurabilityFields(t *testing.T) {
	st := testStore(t, 4)
	srv := testServer(t, st)
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if durable, ok := stats["durable"].(bool); !ok || durable {
		t.Fatalf("in-memory store durable flag = %v", stats["durable"])
	}
	// The documented field names are a contract: assert the exact keys.
	for _, field := range []string{"vertices", "k", "version", "epoch", "applied", "cut",
		"cut_weight", "total_weight", "cut_by_partition", "shards", "durable",
		"journal_group_depth", "counters", "degraded", "overloaded", "drain_rate",
		"lookup_rate", "tenants", "delta_floor", "delta_next", "role", "applied_seq", "leader_seq"} {
		if _, ok := stats[field]; !ok {
			t.Fatalf("stats missing %q: %v", field, stats)
		}
	}
	ctr, ok := stats["counters"].(map[string]any)
	if !ok {
		t.Fatalf("counters missing: %v", stats)
	}
	for _, field := range []string{"JournalAppends", "JournalBytes", "JournalSyncs", "Checkpoints",
		"ReplayedRecords", "IncrCheckpointBytes", "CheckpointRebases", "DeltasPublished", "WatchStreams",
		"WatchStreamsTotal"} {
		if _, ok := ctr[field]; !ok {
			t.Fatalf("counters missing %s: %v", field, ctr)
		}
	}
}

// readWatch drains one finite watch stream (limit set) into frames.
func readWatch(t *testing.T, url string) (WatchFrame, []*serve.Delta) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("watch Content-Type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var handshake WatchFrame
	var deltas []*serve.Delta
	first := true
	for len(raw) > 0 {
		f, n, err := DecodeWatchFrame(raw)
		if err != nil {
			t.Fatalf("decode frame: %v", err)
		}
		raw = raw[n:]
		if first {
			if f.Kind != WatchHandshake {
				t.Fatalf("first frame kind %d, want handshake", f.Kind)
			}
			handshake = f
			first = false
			continue
		}
		if f.Kind == WatchDelta {
			d, err := serve.DecodeDelta(f.Delta)
			if err != nil {
				t.Fatal(err)
			}
			deltas = append(deltas, d)
		}
	}
	if first {
		t.Fatal("watch stream had no handshake")
	}
	return handshake, deltas
}

// A consumer applying every delta from sequence 0 must converge to the
// exact label map the lookup path serves — across growth, removal,
// resize, and restabilization churn.
func TestWatchConvergesToLookupTruth(t *testing.T) {
	st := testStoreCfg(t, serve.Config{Options: testOpts(4), Shards: 2, DegradeFactor: 1.01})
	srv := testServer(t, st)

	// Churn: growth batches plus a resize, then quiesce.
	for b := 0; b < 8; b++ {
		body := strings.Builder{}
		body.WriteString("v 5\n")
		for i := 0; i < 30; i++ {
			u := (b*31 + i*7) % 600
			v := (b*17 + i*13) % 600
			if u != v {
				body.WriteString("+ " + strconv.Itoa(u) + " " + strconv.Itoa(v) + " 2\n")
			}
		}
		r, err := http.Post(srv.URL+"/v1/mutate", "text/plain", strings.NewReader(body.String()))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusAccepted {
			t.Fatalf("churn mutate status %d", r.StatusCode)
		}
	}
	r, err := http.Post(srv.URL+"/v1/resize?k=6", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if err := st.Quiesce(); err != nil {
		t.Fatal(err)
	}

	_, next := st.DeltaBounds()
	limit := int(next - 1)
	handshake, deltas := readWatch(t, srv.URL+"/v1/watch?from_seq=0&limit="+strconv.Itoa(limit))
	if handshake.Floor != 1 {
		t.Fatalf("handshake floor %d, want 1 (nothing compacted)", handshake.Floor)
	}
	if len(deltas) != limit {
		t.Fatalf("got %d deltas, want %d", len(deltas), limit)
	}

	var labels []int32
	var k int
	for i, d := range deltas {
		if d.Seq != uint64(i+1) {
			t.Fatalf("delta %d has seq %d, want dense sequences from 1", i, d.Seq)
		}
		labels, err = d.Apply(labels)
		if err != nil {
			t.Fatal(err)
		}
		if d.K > 0 {
			k = d.K
		}
	}
	snap := st.Snapshot()
	if k != snap.K {
		t.Fatalf("feed k = %d, lookup k = %d", k, snap.K)
	}
	if len(labels) != len(snap.Labels) {
		t.Fatalf("feed has %d vertices, lookup %d", len(labels), len(snap.Labels))
	}
	for v := range snap.Labels {
		if labels[v] != snap.Labels[v] {
			t.Fatalf("feed label[%d] = %d, lookup = %d", v, labels[v], snap.Labels[v])
		}
	}
	// The final delta's counters must match the snapshot's integers.
	last := deltas[len(deltas)-1]
	if last.Cross != snap.CutWeight || last.Total != snap.TotalWeight {
		t.Fatalf("final delta counters cross=%d total=%d, snapshot %d/%d",
			last.Cross, last.Total, snap.CutWeight, snap.TotalWeight)
	}
}

// A cursor below the compaction floor gets 410 {"code":"compacted"}; a
// cursor from a later incarnation gets 410 {"code":"reset"}; the
// /v1/lookup resync dump then pairs with a servable cursor.
func TestWatchGoneAndResync(t *testing.T) {
	st := testStoreCfg(t, serve.Config{Options: testOpts(4), Shards: 2, DeltaRing: 4})
	srv := testServer(t, st)

	// Push enough deltas through the 4-slot ring to compact seq 1 away.
	for b := 0; b < 12; b++ {
		r, err := http.Post(srv.URL+"/v1/mutate", "text/plain", strings.NewReader("v 1\n"))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	if err := st.Quiesce(); err != nil {
		t.Fatal(err)
	}
	floor, next := st.DeltaBounds()
	if floor <= 1 {
		t.Fatalf("floor %d, want > 1 after churn through a 4-slot ring", floor)
	}

	gone := func(url, wantCode string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		var body ErrorBody
		derr := json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusGone || derr != nil || body.Code != wantCode {
			t.Fatalf("%s: status %d code %q err %v; want 410 %s", url, resp.StatusCode, body.Code, derr, wantCode)
		}
	}
	gone(srv.URL+"/v1/watch?from_seq=0", "compacted")
	gone(srv.URL+"/v1/watch?from_seq="+strconv.FormatUint(next+5, 10), "reset")

	// The documented recovery: full resync, then watch from its cursor.
	resp, err := http.Get(srv.URL + "/v1/lookup")
	if err != nil {
		t.Fatal(err)
	}
	var dump ResyncResponse
	err = json.NewDecoder(resp.Body).Decode(&dump)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	if dump.K != snap.K || len(dump.Labels) != len(snap.Labels) {
		t.Fatalf("resync dump k=%d n=%d, want k=%d n=%d", dump.K, len(dump.Labels), snap.K, len(snap.Labels))
	}

	// One more batch so the resumed stream has something finite to hand
	// over, then the resumed cursor must be servable (200, not 410) and
	// the overlay must land on the resync labels cleanly.
	r2, err := http.Post(srv.URL+"/v1/mutate", "text/plain", strings.NewReader("v 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if err := st.Quiesce(); err != nil {
		t.Fatal(err)
	}
	_, next2 := st.DeltaBounds()
	limit := next2 - 1 - dump.FromSeq
	if limit == 0 {
		t.Fatal("churn batch published no delta")
	}
	_, deltas := readWatch(t, srv.URL+"/v1/watch?from_seq="+strconv.FormatUint(dump.FromSeq, 10)+
		"&limit="+strconv.FormatUint(limit, 10))
	labels := append([]int32(nil), dump.Labels...)
	for _, d := range deltas {
		labels, err = d.Apply(labels)
		if err != nil {
			t.Fatal(err)
		}
	}
	final := st.Snapshot()
	if len(labels) != len(final.Labels) {
		t.Fatalf("resync+feed has %d vertices, lookup %d", len(labels), len(final.Labels))
	}
	for v := range final.Labels {
		if labels[v] != final.Labels[v] {
			t.Fatalf("resync+feed label[%d] = %d, lookup = %d", v, labels[v], final.Labels[v])
		}
	}
}

// WatchStreamsTotal must count accepted streams; WatchStreams is a gauge
// of open streams and must return to its prior value once the stream
// closes.
func TestWatchStreamCounter(t *testing.T) {
	st := testStore(t, 4)
	srv := testServer(t, st)
	if err := st.Quiesce(); err != nil {
		t.Fatal(err)
	}
	open := st.Counters().WatchStreams.Load()
	total := st.Counters().WatchStreamsTotal.Load()
	_, next := st.DeltaBounds()
	readWatch(t, srv.URL+"/v1/watch?from_seq=0&limit="+strconv.FormatUint(next-1, 10))
	if got := st.Counters().WatchStreamsTotal.Load(); got != total+1 {
		t.Fatalf("WatchStreamsTotal %d -> %d, want +1", total, got)
	}
	// The handler decrements the gauge on return, which races the body
	// read completing client-side; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for st.Counters().WatchStreams.Load() != open {
		if time.Now().After(deadline) {
			t.Fatalf("WatchStreams gauge stuck at %d, want %d after close",
				st.Counters().WatchStreams.Load(), open)
		}
		time.Sleep(time.Millisecond)
	}
}

// An idle caught-up stream must emit heartbeats carrying the bounds.
func TestWatchHeartbeat(t *testing.T) {
	st := testStore(t, 4)
	if err := st.Quiesce(); err != nil {
		t.Fatal(err)
	}
	as := NewServer(st, nil)
	as.Heartbeat = 10 * time.Millisecond
	srv := httptest.NewServer(as.Mux())
	defer srv.Close()

	floor, next := st.DeltaBounds()
	resp, err := http.Get(srv.URL + "/v1/watch?from_seq=" + strconv.FormatUint(next-1, 10))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch status %d", resp.StatusCode)
	}
	// Read the handshake and then at least one heartbeat.
	buf := make([]byte, 0, 256)
	chunk := make([]byte, 64)
	var frames []WatchFrame
	deadline := time.Now().Add(5 * time.Second)
	for len(frames) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("no heartbeat within 5s")
		}
		n, rerr := resp.Body.Read(chunk)
		if n > 0 {
			buf = append(buf, chunk[:n]...)
			for {
				f, used, derr := DecodeWatchFrame(buf)
				if derr != nil {
					break
				}
				frames = append(frames, f)
				buf = buf[used:]
			}
		}
		if rerr != nil {
			t.Fatalf("stream ended early: %v (frames %d)", rerr, len(frames))
		}
	}
	if frames[0].Kind != WatchHandshake || frames[1].Kind != WatchHeartbeat {
		t.Fatalf("frame kinds %d, %d; want handshake, heartbeat", frames[0].Kind, frames[1].Kind)
	}
	if frames[1].Floor != floor || frames[1].Next != next {
		t.Fatalf("heartbeat bounds [%d,%d), want [%d,%d)", frames[1].Floor, frames[1].Next, floor, next)
	}
}

func FuzzWatchFrame(f *testing.F) {
	f.Add(AppendWatchFrame(nil, WatchFrame{Kind: WatchHandshake, Floor: 1, Next: 9}))
	f.Add(AppendWatchFrame(nil, WatchFrame{Kind: WatchHeartbeat, Floor: 3, Next: 12}))
	f.Add(AppendWatchFrame(nil, WatchFrame{Kind: WatchDelta, Delta: []byte{1, 2, 3, 4, 5}}))
	f.Add([]byte{})
	f.Add([]byte{2, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		frame, n, err := DecodeWatchFrame(b)
		if err != nil {
			if n != 0 {
				t.Fatalf("error with %d bytes consumed", n)
			}
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("consumed %d of %d", n, len(b))
		}
		// Round-trip: re-encoding the decoded frame must reproduce the
		// consumed bytes exactly.
		enc := AppendWatchFrame(nil, frame)
		if !bytes.Equal(enc, b[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", enc, b[:n])
		}
		// Truncation: every strict prefix must be a short frame, never a
		// misparse.
		for cut := 0; cut < n; cut += 1 + cut/3 {
			if _, _, err := DecodeWatchFrame(b[:cut]); err == nil {
				t.Fatalf("truncated frame (%d of %d bytes) decoded", cut, n)
			}
		}
	})
}
