package api

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
)

// Hundreds of concurrent watchers over live churn (run with -race): the
// encode-once fan-out must hand every stream bit-identical delta
// frames, every stream must converge on the same dense prefix, the
// WatchStreams gauge must return to zero, and the publish path must
// have encoded each delta exactly once no matter how many streams were
// attached.
func TestWatchManyConcurrentStreamsBitIdentical(t *testing.T) {
	st := testStoreCfg(t, serve.Config{Options: testOpts(4), Shards: 2})
	srv := testServer(t, st)
	const streams = 150
	const wantDeltas = 25

	// Live churn until at least wantDeltas publications exist, racing
	// the streams below.
	churnDone := make(chan error, 1)
	go func() {
		for i := 0; ; i++ {
			if _, next := st.DeltaBounds(); next > wantDeltas {
				churnDone <- st.Quiesce()
				return
			}
			u := strconv.Itoa((i * 7) % 600)
			v := strconv.Itoa((i*13 + 1) % 600)
			r, err := http.Post(srv.URL+"/v1/mutate", "text/plain",
				strings.NewReader("+ "+u+" "+v+" 2\n"))
			if err != nil {
				churnDone <- err
				return
			}
			r.Body.Close()
		}
	}()

	type result struct {
		deltaBytes []byte // concatenated raw delta-frame bytes, in order
		seqs       []uint64
		err        error
	}
	results := make([]result, streams)
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/v1/watch?from_seq=0&limit=" + strconv.Itoa(wantDeltas))
			if err != nil {
				results[i].err = err
				return
			}
			raw, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				results[i].err = err
				return
			}
			for len(raw) > 0 {
				f, n, err := DecodeWatchFrame(raw)
				if err != nil {
					results[i].err = err
					return
				}
				if f.Kind == WatchDelta {
					results[i].deltaBytes = append(results[i].deltaBytes, raw[:n]...)
					d, err := serve.DecodeDelta(f.Delta)
					if err != nil {
						results[i].err = err
						return
					}
					results[i].seqs = append(results[i].seqs, d.Seq)
				}
				raw = raw[n:]
			}
		}(i)
	}
	wg.Wait()
	if err := <-churnDone; err != nil {
		t.Fatal(err)
	}

	for i := range results {
		if results[i].err != nil {
			t.Fatalf("stream %d: %v", i, results[i].err)
		}
		if len(results[i].seqs) != wantDeltas {
			t.Fatalf("stream %d got %d deltas, want %d", i, len(results[i].seqs), wantDeltas)
		}
		for j, seq := range results[i].seqs {
			if seq != uint64(j+1) {
				t.Fatalf("stream %d delta %d has seq %d, want dense from 1", i, j, seq)
			}
		}
		if !bytes.Equal(results[i].deltaBytes, results[0].deltaBytes) {
			t.Fatalf("stream %d delta frames differ from stream 0: fan-out must be bit-identical", i)
		}
	}

	// Encode-once, end to end: the publish path encoded each delta once;
	// 150 subscribers added zero encodes.
	ctr := st.Counters()
	if pub, enc := ctr.DeltasPublished.Load(), ctr.DeltaEncodes.Load(); enc != pub {
		t.Fatalf("DeltaEncodes = %d, DeltasPublished = %d; want equal (encode-once)", enc, pub)
	}
	// Every stream's bytes were accounted.
	wantBytes := int64(streams) * int64(len(results[0].deltaBytes))
	if got := ctr.WatchBytesSent.Load(); got < wantBytes {
		t.Fatalf("WatchBytesSent = %d, want >= %d (%d streams x %d delta bytes)",
			got, wantBytes, streams, len(results[0].deltaBytes))
	}

	// All streams hung up: the gauge drains to zero.
	deadline := time.Now().Add(5 * time.Second)
	for ctr.WatchStreams.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("WatchStreams gauge stuck at %d, want 0", ctr.WatchStreams.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// gapFeed wraps a store's change feed and, once, drops the first entry
// of a read — simulating compaction overtaking the cursor between the
// bounds check and the ring read, deterministically.
type gapFeed struct {
	*serve.Store
	mu      sync.Mutex
	dropped bool
}

func (g *gapFeed) FramedDeltasSince(after uint64, max int) ([]serve.FramedDelta, uint64) {
	fds, floor := g.Store.FramedDeltasSince(after, max)
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.dropped && len(fds) >= 2 {
		g.dropped = true
		return fds[1:], fds[1].Delta.Seq
	}
	return fds, floor
}

// A cursor that compaction overruns mid-stream must get a typed end
// frame carrying the new bounds before the stream closes — not a bare
// connection drop.
func TestWatchMidStreamCompactionEndFrame(t *testing.T) {
	st := testStoreCfg(t, serve.Config{Options: testOpts(4), Shards: 2})
	as := NewServer(st, nil)
	as.feed = &gapFeed{Store: st}
	srv := httptest.NewServer(as.Mux())
	defer srv.Close()

	// Two more publications beyond the baseline so the gapped read has a
	// second entry to start from.
	for i := 0; i < 2; i++ {
		r, err := http.Post(srv.URL+"/v1/mutate", "text/plain", strings.NewReader("v 1\n"))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	if err := st.Quiesce(); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/v1/watch?from_seq=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body) // the server ends the stream itself
	if err != nil {
		t.Fatal(err)
	}
	var kinds []byte
	var end WatchFrame
	for len(raw) > 0 {
		f, n, err := DecodeWatchFrame(raw)
		if err != nil {
			t.Fatalf("decode: %v (kinds so far %v)", err, kinds)
		}
		kinds = append(kinds, f.Kind)
		if f.Kind == WatchEnd {
			end = f
		}
		raw = raw[n:]
	}
	if len(kinds) != 2 || kinds[0] != WatchHandshake || kinds[1] != WatchEnd {
		t.Fatalf("frame kinds = %v, want [handshake end]", kinds)
	}
	floor, next := st.DeltaBounds()
	if end.Floor != floor || end.Next != next {
		t.Fatalf("end frame bounds [%d,%d), want [%d,%d)", end.Floor, end.Next, floor, next)
	}
}
