package api

// The /v1/watch frame codec lives in internal/serve so the delta hub
// can memoize fully framed bytes at publish time (see serve/frame.go
// for the wire format). The api package re-exports it: the HTTP layer
// and its clients keep importing the codec from here, and the aliases
// guarantee both packages speak the exact same bytes.

import "repro/internal/serve"

// Watch stream frame kinds. See the serve package for semantics.
const (
	WatchHandshake = serve.WatchHandshake
	WatchDelta     = serve.WatchDelta
	WatchHeartbeat = serve.WatchHeartbeat
	WatchEnd       = serve.WatchEnd
)

// ErrShortFrame reports that a buffer holds only a prefix of a frame:
// read more bytes and retry. Every other decode error is corruption (or
// a version skew) and must drop the connection.
var ErrShortFrame = serve.ErrShortFrame

// WatchFrame is one decoded /v1/watch stream frame.
type WatchFrame = serve.WatchFrame

// AppendWatchFrame encodes f onto dst and returns the extended slice.
func AppendWatchFrame(dst []byte, f WatchFrame) []byte {
	return serve.AppendWatchFrame(dst, f)
}

// DecodeWatchFrame parses one frame from the front of b, returning it
// and the number of bytes consumed. ErrShortFrame means b ends mid-frame
// (a torn read — wait for more bytes); any other error means the bytes
// can never parse and the stream must be abandoned. Delta aliases b.
func DecodeWatchFrame(b []byte) (WatchFrame, int, error) {
	return serve.DecodeWatchFrame(b)
}
