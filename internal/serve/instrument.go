package serve

import (
	"math/bits"

	"repro/internal/metrics"
)

// Pipeline stages timed by the coordinator into per-stage histograms
// (spinner_stage_duration_seconds{stage=...}). Each index names one seam
// of the staged commit pipeline:
//
//	drain               log drain + group formation (transferLog + nextGroup)
//	journal             wal group append incl. the fsync wait (journalGroup)
//	apply               shard broadcast / barrier application of one group
//	publish             full shard republication after a relabeling event
//	checkpoint_capture  the under-barrier state clone (captureState)
//	checkpoint_write    background checkpoint encode + install
const (
	stageDrain = iota
	stageJournal
	stageApply
	stagePublish
	stageCkptCapture
	stageCkptWrite
	numStages
)

var stageNames = [numStages]string{
	stageDrain:       "drain",
	stageJournal:     "journal",
	stageApply:       "apply",
	stagePublish:     "publish",
	stageCkptCapture: "checkpoint_capture",
	stageCkptWrite:   "checkpoint_write",
}

// initMetrics builds the store's metric registry and registers the serve
// plane's own series. The registry is process-scoped by convention: the
// API layer and the replication follower register their series into the
// same registry (via Store.Metrics) so one /v1/metrics endpoint covers
// the whole process. Called from both constructors (newStore and
// newStoreFromCheckpoint) before any goroutine can observe the store.
func (s *Store) initMetrics() {
	s.reg = metrics.NewRegistry()
	for i := range s.stageHist {
		s.stageHist[i] = s.reg.NewHistogram(
			"spinner_stage_duration_seconds",
			"Wall-clock duration of one execution of a serve-pipeline stage.",
			metrics.UnitSeconds,
			metrics.Label{Key: "stage", Value: stageNames[i]},
		)
	}
	s.lookupHist = s.reg.NewHistogram(
		"spinner_lookup_duration_seconds",
		"Sampled lookup latency (one in Config.LookupSampleEvery lookups is timed).",
		metrics.UnitSeconds,
	)
	s.reg.NewGaugeFunc(
		"spinner_watch_subscribers",
		"Delta-hub broadcast registrations (watch streams currently parked on or draining the change feed).",
		func() float64 { return float64(s.deltas.subscribers()) },
	)
	// Sampling mask: a lookup is timed when its Lookups-counter value has
	// all mask bits zero, i.e. one in every (mask+1) lookups. The counter
	// starts at 1, so the all-ones disabled mask matches (practically)
	// never without any extra branch on the hot path.
	switch every := s.cfg.LookupSampleEvery; {
	case every < 0:
		s.lookupMask = ^uint64(0)
	case every <= 1:
		s.lookupMask = 0
	default:
		s.lookupMask = 1<<bits.Len64(uint64(every)-1) - 1
	}
}
