package serve

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/wal"
)

// BenchmarkCheckpointDelta is the PR-8 acceptance gate: checkpoint bytes
// per interval on a low-churn history after a large base, incremental
// chain vs full re-encode. Each iteration applies one small (64-edge)
// batch to a 30k-vertex store and synchronously installs one checkpoint,
// exactly what the periodic checkpointer does per cadence point. The
// reported B/op is overridden with the installed checkpoint payload
// bytes, so the recorded bytes_per_op IS the bytes-per-interval figure —
// mode=incr must come in >= 5x below mode=full (label churn is a few
// runs; a full re-encode carries all |E| edges every time).
func BenchmarkCheckpointDelta(b *testing.B) {
	const n, batchEdges = 30000, 64
	g := gen.WattsStrogatz(n, 10, 0.2, 41)
	w := graph.Convert(g)
	opts := core.DefaultOptions(8)
	opts.Seed = 41
	opts.MaxIterations = 30
	p, err := core.NewPartitioner(opts)
	if err != nil {
		b.Fatal(err)
	}
	res, err := p.PartitionWeighted(w)
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(77)
	batches := make([]*graph.Mutation, 64)
	for i := range batches {
		m := &graph.Mutation{NewEdges: make([]graph.WeightedEdgeRecord, 0, batchEdges)}
		for len(m.NewEdges) < batchEdges {
			u, v := graph.VertexID(src.Intn(n)), graph.VertexID(src.Intn(n))
			if u != v {
				m.NewEdges = append(m.NewEdges, graph.WeightedEdgeRecord{U: u, V: v, Weight: 2})
			}
		}
		batches[i] = m
	}

	for _, tc := range []struct {
		name     string
		maxChain int
	}{
		{"mode=incr", 1 << 20}, // chain effectively unbounded: every interval is a delta
		{"mode=full", -1},      // incremental checkpoints disabled
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := Config{
				Options:        opts,
				Shards:         2,
				DegradeFactor:  1e9, // isolate the checkpoint plane
				MidRunOff:      true,
				ReconcileEvery: -1,
				Durability: DurabilityConfig{
					Fsync:             wal.SyncNever,
					CheckpointEvery:   -1, // checkpoints driven synchronously below
					NoFinalCheckpoint: true,
					MaxDeltaChain:     tc.maxChain,
				},
			}
			st, err := NewDurable(b.TempDir(), w.Clone(), append([]int32(nil), res.Labels...), cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			var payloadBytes int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := st.Submit(batches[i%len(batches)]); err != nil {
					b.Fatal(err)
				}
				if err := st.Quiesce(); err != nil {
					b.Fatal(err)
				}
				var cs *ckptState
				st.withBarrier(func() { cs = st.captureState(true) })
				res := st.writeCheckpointState(cs)
				if res.err != nil {
					b.Fatal(res.err)
				}
				payloadBytes += int64(res.bytes)
			}
			b.StopTimer()
			b.ReportMetric(float64(payloadBytes)/float64(b.N), "B/op")
		})
	}
}
