package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// randomBatch builds a mutation against the shadow graph: mostly edge
// additions (the fast path), sometimes removals of existing edges or
// vertex growth (the barrier path). Weights derive from the endpoint pair
// so duplicate instances stay uniform, matching real mutation sources.
func randomBatch(shadow *graph.Weighted, seed uint64, step int) *graph.Mutation {
	src := newTestRng(seed, step)
	m := &graph.Mutation{}
	n := shadow.NumVertices()
	if step%7 == 3 {
		m.NewVertices = 1 + src.Intn(3)
	}
	total := n + m.NewVertices
	for i := 0; i < 4+src.Intn(12); i++ {
		u := graph.VertexID(src.Intn(total))
		v := graph.VertexID(src.Intn(total))
		if u != v {
			m.NewEdges = append(m.NewEdges, graph.WeightedEdgeRecord{
				U: u, V: v, Weight: int32(1 + (u+v)%3)})
		}
	}
	if step%5 == 2 {
		seen := map[graph.Edge]bool{}
		for i := 0; i < 1+src.Intn(3); i++ {
			u := graph.VertexID(src.Intn(n))
			if shadow.Degree(u) == 0 {
				continue
			}
			a := shadow.Neighbors(u)[src.Intn(shadow.Degree(u))]
			key := graph.Edge{From: min(u, a.To), To: max(u, a.To)}
			if seen[key] { // removing one pair twice needs two instances
				continue
			}
			seen[key] = true
			m.RemovedEdges = append(m.RemovedEdges, graph.Edge{From: u, To: a.To})
		}
	}
	return m
}

func copyMutation(m *graph.Mutation) *graph.Mutation {
	return &graph.Mutation{
		NewVertices:  m.NewVertices,
		NewEdges:     append([]graph.WeightedEdgeRecord(nil), m.NewEdges...),
		RemovedEdges: append([]graph.Edge(nil), m.RemovedEdges...),
	}
}

type testRng struct{ state uint64 }

func newTestRng(seed uint64, step int) *testRng {
	return &testRng{state: seed*0x9e3779b97f4a7c15 + uint64(step)*0xbf58476d1ce4e5b9 + 1}
}

func (r *testRng) next() uint64 {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return r.state
}

func (r *testRng) Intn(n int) int { return int(r.next() % uint64(n)) }

// Acceptance criterion: the incremental per-batch cut deltas must stay
// bit-identical to the exact O(E) recompute across randomized mutation
// sequences — adds (fast path), removals and growth (barrier path),
// resizes, at 1 and at 3 shards — with reconciliation disabled so nothing
// silently repairs drift.
func TestIncrementalCutMatchesExact(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			w, labels := twoClusters(60)
			shadow := w.Clone()
			st, err := New(w, append([]int32(nil), labels...), Config{
				Options:        storeOpts(2, 11),
				Shards:         shards,
				DegradeFactor:  1e9, // isolate the delta path from restab merges
				ReconcileEvery: -1,
				MidRunOff:      true,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()

			k := 2
			for step := 0; step < 80; step++ {
				if step == 40 {
					k = 5
					if err := st.Resize(k); err != nil {
						t.Fatal(err)
					}
					// The forced repair run merges during this quiesce; its
					// relabeling republishes exact counters, and subsequent
					// deltas must keep matching.
					if err := st.Quiesce(); err != nil {
						t.Fatal(err)
					}
				}
				m := randomBatch(shadow, 77, step)
				if _, err := copyMutation(m).Apply(shadow); err != nil {
					t.Fatalf("step %d: shadow apply: %v", step, err)
				}
				if err := st.Submit(m); err != nil {
					t.Fatal(err)
				}
				if err := st.Quiesce(); err != nil {
					t.Fatal(err)
				}
				snap := st.Snapshot()
				if len(snap.Labels) != shadow.NumVertices() {
					t.Fatalf("step %d: %d labels for %d shadow vertices", step, len(snap.Labels), shadow.NumVertices())
				}
				cross, total, perPart := metrics.CutWeights(shadow, snap.Labels, snap.K)
				if snap.CutWeight != cross || snap.TotalWeight != total {
					t.Fatalf("step %d: incremental (cut=%d,total=%d) != exact (cut=%d,total=%d)",
						step, snap.CutWeight, snap.TotalWeight, cross, total)
				}
				for l := range perPart {
					if snap.CutByPartition[l] != perPart[l] {
						t.Fatalf("step %d: CutByPartition[%d] = %d, exact %d",
							step, l, snap.CutByPartition[l], perPart[l])
					}
				}
				if snap.CutRatio != cutRatio(cross, total) {
					t.Fatalf("step %d: ratio %v != %v", step, snap.CutRatio, cutRatio(cross, total))
				}
			}
			if st.Counters().CutReconciles.Load() != 0 {
				t.Fatal("reconciliation ran while disabled")
			}
		})
	}
}

// The periodic reconciliation pass must find zero drift (the deltas are
// exact), and its boundary rebalance must keep lookups and counters
// correct as growth skews the vertex space toward the last shard.
func TestReconcileRebalance(t *testing.T) {
	w, labels := twoClusters(60)
	shadow := w.Clone()
	st, err := New(w, append([]int32(nil), labels...), Config{
		Options:        storeOpts(2, 13),
		Shards:         3,
		DegradeFactor:  1e9,
		ReconcileEvery: 4,
		MidRunOff:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	for step := 0; step < 40; step++ {
		m := &graph.Mutation{NewVertices: 3}
		n := shadow.NumVertices()
		for i := 0; i < 3; i++ {
			u, v := graph.VertexID(n+i), graph.VertexID((n+i*17)%n)
			m.NewEdges = append(m.NewEdges, graph.WeightedEdgeRecord{U: u, V: v, Weight: 2})
		}
		if _, err := copyMutation(m).Apply(shadow); err != nil {
			t.Fatal(err)
		}
		if err := st.Submit(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Quiesce(); err != nil {
		t.Fatal(err)
	}
	c := st.Counters().Snapshot()
	if c.CutReconciles == 0 {
		t.Fatal("no reconciliation ran")
	}
	if c.CutDrift != 0 {
		t.Fatalf("reconciliation repaired drift %d times; deltas must be exact", c.CutDrift)
	}
	if c.ShardRebalances == 0 {
		t.Fatal("growth skewed the ranges but boundaries never rebalanced")
	}
	snap := st.Snapshot()
	cross, total, _ := metrics.CutWeights(shadow, snap.Labels, snap.K)
	if snap.CutWeight != cross || snap.TotalWeight != total {
		t.Fatalf("post-rebalance counters (cut=%d,total=%d) != exact (cut=%d,total=%d)",
			snap.CutWeight, snap.TotalWeight, cross, total)
	}
	for v := 0; v < shadow.NumVertices(); v++ {
		if l, ok := st.Lookup(graph.VertexID(v)); !ok || l != snap.Labels[v] {
			t.Fatalf("post-rebalance lookup(%d) = %d,%v want %d,true", v, l, ok, snap.Labels[v])
		}
	}
}

// A quiesced entry sequence must produce bit-identical labels regardless
// of the shard count: sharding parallelizes mutation application but every
// relabeling event runs under a full barrier on the merged graph.
func TestShardCountDoesNotChangeLabels(t *testing.T) {
	run := func(shards int) []int32 {
		w, labels := twoClusters(50)
		st, err := New(w, append([]int32(nil), labels...), Config{
			Options:       storeOpts(2, 9),
			Shards:        shards,
			DegradeFactor: 1.05,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		for step := 0; step < 6; step++ {
			mut := &graph.Mutation{}
			if step == 2 {
				mut.NewVertices = 5
				for i := 0; i < 5; i++ {
					mut.NewEdges = append(mut.NewEdges, graph.WeightedEdgeRecord{
						U: graph.VertexID(100 + i), V: graph.VertexID(i), Weight: 2})
				}
			}
			for i := 0; i < 20; i++ {
				mut.NewEdges = append(mut.NewEdges, graph.WeightedEdgeRecord{
					U: graph.VertexID((i + 13*step) % 50), V: graph.VertexID(50 + (i*3+step)%50), Weight: 2})
			}
			if err := st.Submit(mut); err != nil {
				t.Fatal(err)
			}
			if err := st.Quiesce(); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Resize(4); err != nil {
			t.Fatal(err)
		}
		if err := st.Quiesce(); err != nil {
			t.Fatal(err)
		}
		return st.Snapshot().Labels
	}
	want := run(1)
	for _, shards := range []int{2, 4} {
		got := run(shards)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d labels, want %d", shards, len(got), len(want))
		}
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("shards=%d: label of vertex %d = %d, 1-shard run got %d", shards, v, got[v], want[v])
			}
		}
	}
}

// Concurrent lookups against a sharded store stay valid and race-clean
// while fast-path batches fan out and a restabilization merges underneath.
// Run with -race.
func TestShardedConcurrentLookups(t *testing.T) {
	g := gen.WattsStrogatz(3000, 8, 0.2, 29)
	w := graph.Convert(g)
	p, err := core.NewPartitioner(storeOpts(4, 7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}
	shadow := w.Clone()
	st, err := New(w, res.Labels, Config{
		Options: storeOpts(4, 7), Shards: 4,
		DegradeFactor: 1.01, DegradeSlack: 0.0001, ReconcileEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	var invalid atomic.Int64
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			v := graph.VertexID(r * 31)
			for !stop.Load() {
				snap := st.Snapshot()
				l, ok := st.Lookup(v % graph.VertexID(len(snap.Labels)))
				if ok && (l < 0 || int(l) >= snap.K) {
					invalid.Add(1)
				}
				v += 7
			}
		}(r)
	}

	for batch := 0; batch < 300; batch++ {
		mut := gen.GrowthBatch(shadow, 0.01, uint64(500+batch))
		if _, err := mut.Apply(shadow); err != nil {
			t.Fatal(err)
		}
		cp := &graph.Mutation{NewEdges: append([]graph.WeightedEdgeRecord(nil), mut.NewEdges...)}
		if err := st.Submit(cp); err != nil {
			t.Fatal(err)
		}
		if st.Counters().Restabilizations.Load() >= 2 {
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	if err := st.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if invalid.Load() != 0 {
		t.Fatalf("%d invalid lookups observed", invalid.Load())
	}
	c := st.Counters().Snapshot()
	if c.ShardBatches < c.BatchesApplied {
		t.Fatalf("fast path never fanned out: sub=%d batches=%d", c.ShardBatches, c.BatchesApplied)
	}
	if c.CutDrift != 0 {
		t.Fatalf("cut drift under concurrency: %d", c.CutDrift)
	}
	snap := st.Snapshot()
	if err := metrics.ValidateLabels(snap.Labels, snap.K); err != nil {
		t.Fatal(err)
	}
	cross, total, _ := metrics.CutWeights(shadow, snap.Labels, snap.K)
	if snap.CutWeight != cross || snap.TotalWeight != total {
		t.Fatalf("counters after churn (cut=%d,total=%d) != exact (cut=%d,total=%d)",
			snap.CutWeight, snap.TotalWeight, cross, total)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// Config validation for the new sharding knobs.
func TestShardConfigValidation(t *testing.T) {
	w, labels := twoClusters(10)
	if _, err := New(w.Clone(), append([]int32(nil), labels...), Config{Options: storeOpts(2, 1), Shards: -1}); err == nil {
		t.Fatal("negative Shards accepted")
	}
	if _, err := New(w.Clone(), append([]int32(nil), labels...), Config{Options: storeOpts(2, 1), ShardLogDepth: -2}); err == nil {
		t.Fatal("negative ShardLogDepth accepted")
	}
	// More shards than vertices clamps rather than fails.
	st, err := New(w.Clone(), append([]int32(nil), labels...), Config{Options: storeOpts(2, 1), Shards: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.Snapshot().Shards; got != 20 {
		t.Fatalf("clamped shard count %d, want 20", got)
	}
}
