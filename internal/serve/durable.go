package serve

// Durability: the optional journal + checkpoint subsystem that lets a
// Store survive process death without recomputing the partitioning from
// scratch — the exact cost the paper's maintenance argument (§III-D) is
// about avoiding. The durable write path is a staged commit pipeline:
//
//   - Stage 1, group commit (journalGroup → wal.AppendGroup): each
//     coordinator turn drains everything pending in the mutation log and
//     durably appends the drained mutations/resizes to the segmented
//     CRC-framed journal as ONE group — one frame-staging pass, one
//     write syscall, and (under wal.SyncAlways) one fsync for the whole
//     group, so concurrent submitters amortize the disk barrier toward
//     the interval policy. The durability boundary is UNCHANGED by the
//     batching: every entry is journaled (and the group's fsync has
//     completed) before ANY entry of the group is applied, so the
//     pre-apply invariant — no state a lookup has ever observed can be
//     forgotten by a crash — holds per entry exactly as it did when
//     entries were journaled one at a time. (Entries still queued in the
//     in-memory mutation log at crash time were never applied, never
//     visible, and are dropped.)
//   - Stage 2, coalesced apply (handleGroup): the group's entries apply
//     in submission order, with consecutive add-only batches merged into
//     a single shard broadcast — one cut-delta fold and one snapshot
//     publication per shard for the run. Sound because add-only batches
//     never relabel: their composed effect is independent of grouping.
//   - Stage 3, background checkpoints: every Durability.CheckpointEvery
//     applied entries the coordinator only *captures* the composed state
//     under the shard barrier — labels, k, shard ranges, integer cut
//     counters, trigger state, and the graph via Weighted.Clone — and a
//     background goroutine encodes the capture (the existing CSR binary
//     form), writes + fsyncs + atomically installs the checkpoint file,
//     prunes old checkpoints, and truncates covered journal segments.
//     At most one checkpoint is in flight; the write plane never stops
//     for the state encode. Close still checkpoints synchronously (after
//     waiting out an in-flight capture), so graceful shutdown semantics
//     are unchanged. When the change feed is on (deltas recorded since
//     the last checkpoint) and the chain gate passes, the interval is
//     persisted as an INCREMENTAL checkpoint instead: a .dckp link
//     holding just the label-run deltas since the previous link, chained
//     by (seq, prevSeq) back to the last full base. The chain is capped
//     (Durability.MaxDeltaChain) and a link that would not be meaningfully
//     smaller than a full re-encode forces a rebase: a fresh full
//     checkpoint, chain pruned, journal truncated — so recovery cost and
//     disk footprint stay bounded while steady-state checkpoint bytes per
//     interval shrink by orders of magnitude (see BenchmarkCheckpointDelta).
//   - Recovery (Open): load the latest valid checkpoint — a full base
//     plus any .dckp delta links chained above it, applied in order (a
//     broken link ends the chain early; the journal tail covers the
//     rest) — rebuild the shards over the decoded state (verifying the composed cut counters
//     bit-for-bit against an exact recompute), then replay the journal
//     tail through the normal shard-broadcast apply path, quiescing after
//     each record. A torn tail is truncated; mid-log corruption fails
//     recovery loudly. A final exact reconcile pass verifies the
//     recovered counters (metrics CutDrift stays 0). A crash while a
//     background checkpoint was in flight leaves, at worst, a leftover
//     temp file (ignored) and no new checkpoint — recovery falls back to
//     the previous valid checkpoint and replays a longer journal tail to
//     the identical state, which is why the journal is only truncated
//     below the oldest RETAINED checkpoint.
//
// Determinism: replay re-applies the journaled entry sequence with a
// quiesce between entries, so a store whose live history was itself a
// quiesced submit/await sequence (the regime the package comment's
// determinism contract covers) recovers labels, k, shard ranges and
// integer cut counters bit-identical to the uninterrupted run. A store
// crashed mid-churn recovers to *a* valid quiesced state reflecting every
// journaled entry — the same guarantee any WAL database gives.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"slices"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/wal"
)

// DurabilityConfig tunes the journal + checkpoint subsystem used by
// NewDurable, BootstrapDurable and Open. The zero value means: no
// per-append fsync (wal.SyncNever), 4 MiB segments, a checkpoint every
// 4096 applied entries, the 2 newest checkpoints retained, and a final
// checkpoint on Close.
type DurabilityConfig struct {
	// Fsync selects when journal appends reach stable storage:
	// wal.SyncNever (page cache; survives process crashes, not power
	// loss), wal.SyncEvery (background interval), wal.SyncAlways (every
	// record, the strongest and slowest).
	Fsync wal.Policy
	// FsyncInterval is the background fsync period under wal.SyncEvery.
	// Default 50ms.
	FsyncInterval time.Duration
	// SegmentBytes rotates journal segments past this size. Default 4 MiB.
	SegmentBytes int64
	// CheckpointEvery writes a checkpoint after this many applied entries.
	// Default 4096; negative disables periodic checkpoints (the journal
	// then grows until Close's final checkpoint truncates it).
	CheckpointEvery int
	// KeepCheckpoints retains this many newest checkpoints; the journal is
	// truncated below the oldest retained one, so recovery still works if
	// the newest checkpoint file is lost. Default 2.
	KeepCheckpoints int
	// NoFinalCheckpoint skips the checkpoint normally written during
	// Close, leaving recovery to replay the journal tail — faster
	// shutdown, slower next Open. (The crash-recovery tests use it to
	// exercise replay.)
	NoFinalCheckpoint bool
	// MaxDeltaChain caps the chain of incremental (delta) checkpoints
	// written between full re-encodes: after a full checkpoint, up to
	// MaxDeltaChain checkpoints encode only the changed label runs plus
	// the small metadata block against the previous encoding (bytes scale
	// with churn, not |E|), then the next one rebases in full. A delta
	// that would not undercut half the last full payload also forces a
	// rebase. Default 8; negative disables incremental checkpoints
	// (every checkpoint re-encodes in full, the pre-delta behavior).
	MaxDeltaChain int
}

func (d *DurabilityConfig) normalize() {
	if d.CheckpointEvery == 0 {
		d.CheckpointEvery = 4096
	}
	if d.KeepCheckpoints < 1 {
		d.KeepCheckpoints = 2
	}
	if d.MaxDeltaChain == 0 {
		d.MaxDeltaChain = 8
	}
}

// durable is the coordinator-owned durability state. Between Open's
// attach handshake and Close, only the coordinator goroutine touches it
// (the background checkpointer works on a captured clone and reports
// back through Store.ckptDone).
type durable struct {
	dir         string
	cfg         DurabilityConfig
	jrn         *wal.Journal
	active      bool             // journaling live (false while Open replays)
	lastSeq     uint64           // sequence of the last journaled record
	ckptApplied int64            // applied count at the last installed checkpoint
	pending     bool             // a background checkpoint is in flight
	groupBuf    []wal.GroupEntry // group-append staging, reused per turn

	// Incremental-checkpoint chain state, touched only inside
	// writeCheckpointState: at most one checkpoint is ever in flight
	// (pending gates the background path; the synchronous paths run with
	// nothing else active), so the writer owns these exclusively.
	prevLabels []int32 // labels at the last written encoding; nil until a full lands
	tipSeq     uint64  // journal seq of the chain tip (last written encoding)
	chainLen   int     // delta links written since the last full checkpoint
	fullBytes  int     // payload size of the last full checkpoint
}

// attachReq hands Open's freshly opened journal to the coordinator
// through the ordered log, so journaling activates only after every
// replayed entry was applied and without racing coordinator reads.
type attachReq struct {
	jrn     *wal.Journal
	lastSeq uint64
	reply   chan error
}

func journalDir(dir string) string { return filepath.Join(dir, "journal") }
func ckptDir(dir string) string    { return filepath.Join(dir, "checkpoints") }

func (d *durable) walOptions(ctr *metrics.ServeCounters) wal.Options {
	return wal.Options{
		SegmentBytes:   d.cfg.SegmentBytes,
		Sync:           d.cfg.Fsync,
		SyncInterval:   d.cfg.FsyncInterval,
		AppendsCounter: &ctr.JournalAppends,
		BytesCounter:   &ctr.JournalBytes,
		SyncsCounter:   &ctr.JournalSyncs,
	}
}

// HasState reports whether dir holds a recoverable store (at least one
// checkpoint) — the "open or bootstrap?" decision drivers make at start.
func HasState(dir string) bool {
	seqs, err := wal.Checkpoints(ckptDir(dir))
	return err == nil && len(seqs) > 0
}

// NewDurable is New plus durability: it writes an initial checkpoint of
// the starting state into dir, opens the journal, and returns a Store
// that journals every accepted entry before applying it. dir must not
// already hold store state (use Open to recover).
func NewDurable(dir string, w *graph.Weighted, labels []int32, cfg Config) (*Store, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	cfg.Durability.normalize()
	if HasState(dir) {
		return nil, fmt.Errorf("serve: %s already holds store state; use Open to recover it", dir)
	}
	s, err := newStore(w, labels, cfg)
	if err != nil {
		return nil, err
	}
	s.d = &durable{dir: dir, cfg: cfg.Durability}
	// Initial checkpoint at sequence 0: recovery of an empty journal must
	// reproduce exactly the construction-time state.
	if err := s.checkpointNow(); err != nil {
		return nil, err
	}
	jrn, err := wal.Open(journalDir(dir), 1, s.d.walOptions(&s.ctr))
	if err != nil {
		return nil, err
	}
	s.d.jrn = jrn
	s.d.active = true
	s.jrnLive.Store(jrn)
	s.start()
	return s, nil
}

// BootstrapDurable partitions g from scratch and starts a durable Store
// over the result — the one-call path for drivers with a -data-dir.
func BootstrapDurable(dir string, g *graph.Graph, cfg Config) (*Store, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	w := graph.Convert(g)
	p, err := core.NewPartitioner(cfg.Options)
	if err != nil {
		return nil, err
	}
	res, err := p.PartitionWeighted(w)
	if err != nil {
		return nil, err
	}
	return NewDurable(dir, w, res.Labels, cfg)
}

// Open recovers a Store from dir: it loads the newest valid base
// checkpoint plus its chain of delta checkpoints (wal.LatestChain),
// composes the chain — structurally replaying the journal across
// (base, tip] to rebuild the graph while each link overlays the labels,
// k, bounds and counters it covers — rebuilds the shards over the
// composed state (re-verifying the cut counters bit-for-bit, which
// checks the whole chain's integrity for free), replays any records past
// the tip through the normal apply path (quiescing after each record, so
// quiesced histories recover bit-identically — see the durability
// comment above), verifies the counters again with an exact reconcile,
// and resumes journaling new entries. With no chain on disk this is
// exactly the pre-delta recovery. Returns wal.ErrNoCheckpoint (wrapped)
// when dir holds no state.
//
// Batches that were rejected live re-reject identically during replay
// (both phases); such errors are observable via Err, as they were, and
// do not fail recovery. Journal or checkpoint corruption does — except a
// damaged chain link, which just shortens the chain (wal.LatestChain)
// and lengthens the live replay tail.
func Open(dir string, cfg Config) (*Store, error) {
	baseSeq, payload, chain, err := wal.LatestChain(ckptDir(dir))
	if err != nil {
		return nil, fmt.Errorf("serve: opening %s: %w", dir, err)
	}
	st, err := decodeCheckpoint(payload)
	if err != nil {
		return nil, fmt.Errorf("serve: checkpoint %d in %s: %w", baseSeq, dir, err)
	}
	if st.seq != baseSeq {
		return nil, fmt.Errorf("serve: checkpoint file %d declares inner seq %d", baseSeq, st.seq)
	}
	seq := baseSeq
	if len(chain) > 0 {
		// Compose base+chain: walk the journal once from the base,
		// overlaying each link when the replay cursor passes its sequence.
		// Records past the tip are left to the live replay phase below.
		idx := 0
		if _, err := wal.Replay(journalDir(dir), baseSeq, func(rec wal.Record) error {
			for idx < len(chain) && rec.Seq > chain[idx].Seq {
				if err := applyCkptDelta(st, chain[idx]); err != nil {
					return err
				}
				idx++
			}
			if idx >= len(chain) {
				return nil
			}
			return applyStructural(st, rec)
		}); err != nil {
			return nil, fmt.Errorf("serve: composing checkpoint chain in %s: %w", dir, err)
		}
		// Links at or past the final record (the tip usually is).
		for ; idx < len(chain); idx++ {
			if err := applyCkptDelta(st, chain[idx]); err != nil {
				return nil, fmt.Errorf("serve: composing checkpoint chain in %s: %w", dir, err)
			}
		}
		// applyCkptDelta advanced st.seq to the tip; recovery resumes the
		// journal (and the attach handshake) from there.
		seq = chain[len(chain)-1].Seq
	}
	if cfg.Shards == 0 {
		// Default to the checkpointed layout: recovery restores the shard
		// ranges bit-identically unless the caller asks for a new count.
		cfg.Shards = len(st.bounds) - 1
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	cfg.Durability.normalize()
	s, err := newStoreFromCheckpoint(st, cfg)
	if err != nil {
		return nil, fmt.Errorf("serve: checkpoint %d in %s: %w", seq, dir, err)
	}
	s.d = &durable{dir: dir, cfg: cfg.Durability}
	s.start()

	// Settle before replaying: a checkpoint can capture a pending or
	// in-flight restabilization (folded into wantRestab). In a quiesced
	// history that run merged before the next entry was accepted, so the
	// replayed entries must likewise observe the merged state — quiescing
	// here re-runs it from the same graph, epoch and generation.
	_ = s.Quiesce()
	next, err := wal.Replay(journalDir(dir), seq, func(rec wal.Record) error {
		switch rec.Type {
		case wal.RecordMutation:
			// submitReplay bypasses admission: these records were admitted
			// by the live process that journaled them.
			if err := s.submitReplay(rec.Mut); err != nil {
				return err
			}
		case wal.RecordResize:
			// Journals written before Resize claimed the target k can hold
			// duplicate resizes (the coordinator dropped them as no-ops);
			// replaying one is likewise a no-op.
			if err := s.Resize(rec.NewK); err != nil && !errors.Is(err, ErrKUnchanged) {
				return err
			}
		default:
			return fmt.Errorf("serve: replaying unknown record type %d", rec.Type)
		}
		s.ctr.ReplayedRecords.Add(1)
		// Quiesce between records: replay reproduces the quiesced apply
		// order, and batch-application errors (deterministic re-rejections
		// of batches rejected live) stay observable without failing
		// recovery.
		_ = s.Quiesce()
		return nil
	})
	if err != nil {
		s.Close()
		return nil, fmt.Errorf("serve: replaying journal in %s: %w", dir, err)
	}
	jrn, err := wal.Open(journalDir(dir), next, s.d.walOptions(&s.ctr))
	if err != nil {
		s.Close()
		return nil, err
	}
	if err := s.control(logEntry{attach: &attachReq{jrn: jrn, lastSeq: next - 1, reply: make(chan error, 1)}}); err != nil {
		jrn.Close()
		s.Close()
		return nil, err
	}
	// Post-recovery reconcile: every shard recomputes its counters exactly
	// inside the barrier; a mismatch with the incremental values recovered
	// from checkpoint+replay would surface as CutDrift (it must stay 0).
	if err := s.control(logEntry{reconcile: make(chan error, 1)}); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// control sends one coordinator-control entry through the ordered log and
// waits for its reply.
func (s *Store) control(e logEntry) error {
	var reply chan error
	switch {
	case e.attach != nil:
		reply = e.attach.reply
	case e.reconcile != nil:
		reply = e.reconcile
	}
	select {
	case s.log <- e:
	case <-s.closed:
		return ErrClosed
	}
	select {
	case err := <-reply:
		return err
	case <-s.done:
		return ErrClosed
	}
}

// Durable reports whether the store journals and checkpoints to disk.
func (s *Store) Durable() bool { return s.d != nil }

// journalGroup durably records every mutation and resize in the drained
// group — framed by wal.AppendGroup as one write and at most one fsync —
// before any of them is applied. This is the group-commit stage: the
// per-entry durability boundary (journal-before-apply) is preserved
// because the whole group is durable before the first apply. A failed
// group append rejects every journalable entry in the group (counted,
// error recorded, graph untouched): applying an unjournaled batch would
// let a crash forget state lookups had seen. Control entries are
// unaffected. Returns false when the group's entries must be dropped.
func (s *Store) journalGroup(entries []logEntry) bool {
	if s.d == nil || !s.d.active {
		return true
	}
	ge := s.d.groupBuf[:0]
	for _, e := range entries {
		switch {
		case e.newK > 0:
			ge = append(ge, wal.GroupEntry{NewK: e.newK})
		case e.mut != nil:
			ge = append(ge, wal.GroupEntry{Mut: e.mut})
		}
	}
	s.d.groupBuf = ge
	if len(ge) == 0 {
		return true
	}
	firstSeq, _, err := s.d.jrn.AppendGroup(ge)
	for i := range ge {
		ge[i] = wal.GroupEntry{} // drop batch references; the buffer outlives the turn
	}
	if err != nil {
		err = fmt.Errorf("serve: journal append: %w", err)
		s.lastErr.Store(&err)
		for _, e := range entries {
			if e.mut != nil && e.newK == 0 {
				s.ctr.BatchesRejected.Add(1)
				s.applied.Add(1) // resolved, though rejected
				if e.ten != nil {
					e.ten.rejected.Add(1)
				}
			}
		}
		// Fail stop on storage faults: a poisoned journal (sticky write or
		// fsync error) can never append again, so continuing to accept
		// writes would either silently drop durability or reject every
		// batch one group at a time. Flip to degraded — the write paths
		// refuse with ErrDegraded, checkpoints stop (the journal tail on
		// disk stays the authoritative suffix), and lookups keep serving
		// the last published snapshots. Per-call rejections that do NOT
		// poison the journal (an oversized record) degrade nothing.
		if s.d.jrn.Err() != nil {
			s.degraded.Store(true)
		}
		return false
	}
	s.d.lastSeq = firstSeq + uint64(len(ge)) - 1
	s.journalSeq.Store(s.d.lastSeq)
	s.ctr.GroupCommits.Add(1)
	s.ctr.GroupedEntries.Add(int64(len(ge)))
	return true
}

// maybeCheckpoint starts the periodic background checkpoint: every
// CheckpointEvery applied entries, capture the composed state under a
// barrier (clone-only — labels, bounds, counters, and the graph via
// Weighted.Clone) and hand it to a goroutine that encodes, writes and
// installs it off the hot path. At most one checkpoint is in flight; a
// failed one re-arms at the next cadence point (see ckptResult), with
// the journal carrying every entry in the meantime.
func (s *Store) maybeCheckpoint() {
	if s.d == nil || !s.d.active || s.d.cfg.CheckpointEvery <= 0 || s.d.pending || s.degraded.Load() {
		return
	}
	if s.applied.Load()-s.d.ckptApplied < int64(s.d.cfg.CheckpointEvery) {
		return
	}
	var st *ckptState
	tCapture := time.Now()
	s.withBarrier(func() {
		st = s.captureState(true)
	})
	s.stageHist[stageCkptCapture].Record(time.Since(tCapture))
	s.d.pending = true
	s.ctr.CheckpointsPending.Store(1)
	go func() {
		tWrite := time.Now()
		res := s.writeCheckpointState(st)
		s.stageHist[stageCkptWrite].Record(time.Since(tWrite))
		s.ckptDone <- res
	}()
}

// ckptResult is the background checkpointer's report back to the
// coordinator loop. applied is set on success AND failure: the cadence
// counter advances either way, so a persistently failing checkpoint
// retries at the next cadence point instead of hot-looping (the ckptDone
// delivery itself wakes the coordinator, so an instant re-arm would
// barrier + clone + fail continuously with no external traffic).
type ckptResult struct {
	applied int64 // applied count at capture; ckptApplied advances to it
	bytes   int
	incr    bool // installed as a delta checkpoint (chain link)
	rebase  bool // full encode forced while a chain was open (cap or size)
	err     error
}

// writeCheckpointState encodes a captured state, atomically installs the
// checkpoint file, prunes old checkpoints and truncates covered journal
// segments. It touches only the capture, the durable chain state (which
// it owns — at most one checkpoint is in flight), the checkpoint
// directory and the (concurrency-safe) journal truncation API, so it is
// safe to run off the coordinator; the tmp+fsync+rename install keeps a
// crash mid-write invisible to recovery.
//
// Incremental mode: while a chain is open and under MaxDeltaChain, the
// state is encoded as changed label runs against the previous encoding
// plus the metadata block — no graph re-encode, so the bytes scale with
// label churn. The chain cap, a delta that fails to undercut half the
// last full payload, or any state with no prior encoding (first
// checkpoint, post-recovery) forces a full rebase, after which the
// superseded delta files are pruned. The journal is always truncated
// below the oldest retained FULL checkpoint only: chain recovery replays
// the journal across (base, tip] to rebuild the graph, so those records
// must survive until a rebase supersedes the chain.
func (s *Store) writeCheckpointState(st *ckptState) ckptResult {
	d := s.d
	chainOpen := d.cfg.MaxDeltaChain > 0 && d.prevLabels != nil && st.seq > d.tipSeq
	if chainOpen && d.chainLen < d.cfg.MaxDeltaChain {
		runs := labelDiffRuns(d.prevLabels, st.labels)
		payload := encodeDeltaCheckpoint(st, runs)
		if 2*len(payload) < d.fullBytes {
			if err := wal.WriteDeltaCheckpoint(ckptDir(d.dir), st.seq, d.tipSeq, payload); err != nil {
				return ckptResult{applied: st.applied, err: err}
			}
			d.prevLabels = append(d.prevLabels[:0], st.labels...)
			d.tipSeq = st.seq
			d.chainLen++
			return ckptResult{applied: st.applied, bytes: len(payload), incr: true}
		}
		// Too dense to pay off: fall through to a full rebase.
	}
	payload := encodeCheckpoint(st)
	if err := wal.WriteCheckpoint(ckptDir(d.dir), st.seq, payload); err != nil {
		return ckptResult{applied: st.applied, err: err}
	}
	oldest, err := wal.PruneCheckpoints(ckptDir(d.dir), d.cfg.KeepCheckpoints)
	if err != nil {
		return ckptResult{applied: st.applied, err: err}
	}
	// The new full supersedes every chain link at or below it.
	if err := wal.PruneDeltaCheckpointsBelow(ckptDir(d.dir), st.seq); err != nil {
		return ckptResult{applied: st.applied, err: err}
	}
	if d.jrn != nil {
		if _, err := d.jrn.TruncateBelow(oldest); err != nil {
			return ckptResult{applied: st.applied, err: err}
		}
	}
	res := ckptResult{applied: st.applied, bytes: len(payload), rebase: chainOpen}
	d.prevLabels = append(d.prevLabels[:0], st.labels...)
	d.tipSeq = st.seq
	d.chainLen = 0
	d.fullBytes = len(payload)
	return res
}

// finishCheckpoint lands the background checkpointer's report on the
// coordinator: bookkeeping on success, a recorded (non-fatal) error on
// failure — the store keeps serving and journaling either way, and a
// failed checkpoint just means recovery replays a longer tail.
func (s *Store) finishCheckpoint(res ckptResult) {
	s.d.pending = false
	s.ctr.CheckpointsPending.Store(0)
	s.d.ckptApplied = res.applied // success or not: re-arm at the next cadence point
	if res.err != nil {
		err := fmt.Errorf("serve: checkpoint: %w", res.err)
		s.lastErr.Store(&err)
		return
	}
	s.noteCheckpoint(res)
}

// noteCheckpoint folds one successful checkpoint install into the
// counters, splitting the incremental and rebase axes out of the totals.
func (s *Store) noteCheckpoint(res ckptResult) {
	s.ctr.Checkpoints.Add(1)
	s.ctr.CheckpointBytes.Add(int64(res.bytes))
	if res.incr {
		s.ctr.IncrCheckpointBytes.Add(int64(res.bytes))
	}
	if res.rebase {
		s.ctr.CheckpointRebases.Add(1)
	}
}

// checkpointNow captures, encodes and installs a checkpoint
// synchronously. The caller must hold exclusive access to the state:
// before start, or after drainAndExit stopped the shards (the initial
// and final checkpoints). The live graph is encoded directly — no clone
// — since nothing else is running.
func (s *Store) checkpointNow() error {
	res := s.writeCheckpointState(s.captureState(false))
	if res.err != nil {
		return res.err
	}
	s.noteCheckpoint(res)
	s.d.ckptApplied = res.applied
	return nil
}

// finishDurable runs during drainAndExit, after the shards stopped: wait
// out an in-flight background checkpoint, write the graceful-shutdown
// final checkpoint (unless disabled), and close the journal.
func (s *Store) finishDurable() {
	if s.d == nil {
		return
	}
	if s.d.pending {
		s.finishCheckpoint(<-s.ckptDone)
	}
	// A degraded store skips the final checkpoint too: the journal tail
	// on disk is the authoritative suffix of the history, and a
	// checkpoint taken after the fault could cover acknowledged state the
	// poisoned journal never recorded the successor of.
	if s.d.active && !s.d.cfg.NoFinalCheckpoint && !s.degraded.Load() {
		if err := s.checkpointNow(); err != nil {
			err = fmt.Errorf("serve: final checkpoint: %w", err)
			s.lastErr.Store(&err)
		}
	}
	if s.d.jrn != nil {
		if err := s.d.jrn.Close(); err != nil && s.d.active {
			err = fmt.Errorf("serve: closing journal: %w", err)
			s.lastErr.Store(&err)
		}
	}
}

// Checkpoint payload layout (all little-endian; the file header, CRC and
// covering sequence live in internal/wal):
//
//	u16 version | u64 seq | u64 applied | i64 appliedAtRestab
//	i64 lastReconcile | u64 gen | u64 epoch | f64 baseline | u8 flags
//	u32 k | u32 shards | (shards+1) × u64 bounds
//	u32 n | n × u32 labels
//	i64 cross | i64 total   (composed counters, verified on recovery)
//	u32 affected | affected × u32 vertex
//	graph (graph.Weighted).EncodeBinary
const ckptVersion = 1

const flagWantRestab = 1 << 0

// captureState snapshots the coordinator-owned state into a ckptState —
// the barrier-time half of a background checkpoint. With clone set the
// graph is deep-copied (Weighted.Clone, a flat-array memcpy much cheaper
// than the binary encode) and labels/bounds/affected are copied, so the
// capture stays consistent while the shards resume; the synchronous
// paths (initial and final checkpoint) pass clone=false and alias the
// live state they exclusively own. An in-flight restabilization cannot
// be captured (it lives in a background clone), so it is folded into the
// wantRestab flag: recovery re-runs it from the same graph, epoch and
// generation, which reproduces the same labels.
func (s *Store) captureState(clone bool) *ckptState {
	var cross, total int64
	for _, sh := range s.shards {
		cross += sh.cross
		total += sh.total
	}
	st := &ckptState{
		seq:             s.d.lastSeq,
		applied:         s.applied.Load(),
		appliedAtRestab: s.appliedAtRestab,
		lastReconcile:   s.lastReconcile,
		gen:             s.gen,
		epoch:           s.epoch,
		baseline:        s.baseline,
		wantRestab:      s.wantRestab || s.inflight,
		k:               s.k,
		bounds:          s.bounds,
		labels:          s.labels,
		cross:           cross,
		total:           total,
		w:               s.w,
	}
	st.affected = make([]graph.VertexID, 0, len(s.affected))
	for v := range s.affected {
		st.affected = append(st.affected, v)
	}
	slices.Sort(st.affected)
	if clone {
		st.bounds = append([]int(nil), s.bounds...)
		st.labels = append([]int32(nil), s.labels...)
		st.w = s.w.Clone()
	}
	return st
}

// encodeCheckpoint serializes a captured state into the checkpoint
// payload (layout above).
func encodeCheckpoint(st *ckptState) []byte {
	buf := make([]byte, 0, 64+4*len(st.labels)+16*len(st.bounds))
	buf = binary.LittleEndian.AppendUint16(buf, ckptVersion)
	buf = binary.LittleEndian.AppendUint64(buf, st.seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.applied))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.appliedAtRestab))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.lastReconcile))
	buf = binary.LittleEndian.AppendUint64(buf, st.gen)
	buf = binary.LittleEndian.AppendUint64(buf, st.epoch)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(st.baseline))
	var flags byte
	if st.wantRestab {
		flags |= flagWantRestab
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(st.k))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.bounds)-1))
	for _, b := range st.bounds {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(b))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.labels)))
	for _, l := range st.labels {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(l))
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.cross))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.total))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.affected)))
	for _, v := range st.affected {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	var gb bytes.Buffer
	gb.Grow(int(16*st.w.NumEdges()) + 4*st.w.NumVertices() + 32)
	// bytes.Buffer writes cannot fail.
	_ = st.w.EncodeBinary(&gb)
	return append(buf, gb.Bytes()...)
}

// ckptState is both the capture a checkpoint writes and the decoded
// checkpoint payload a recovery reads.
type ckptState struct {
	seq             uint64
	applied         int64
	appliedAtRestab int64
	lastReconcile   int64
	gen, epoch      uint64
	baseline        float64
	wantRestab      bool
	k               int
	bounds          []int
	labels          []int32
	cross, total    int64
	affected        []graph.VertexID
	w               *graph.Weighted
}

type ckptReader struct {
	b   []byte
	err error
}

func (r *ckptReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = fmt.Errorf("truncated payload (%d bytes left, need %d)", len(r.b), n)
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *ckptReader) u16() uint16 {
	if b := r.take(2); r.err == nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

func (r *ckptReader) u32() uint32 {
	if b := r.take(4); r.err == nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *ckptReader) u64() uint64 {
	if b := r.take(8); r.err == nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func decodeCheckpoint(payload []byte) (*ckptState, error) {
	r := &ckptReader{b: payload}
	if v := r.u16(); r.err == nil && v != ckptVersion {
		return nil, fmt.Errorf("checkpoint version %d, want %d", v, ckptVersion)
	}
	st := &ckptState{}
	st.seq = r.u64()
	st.applied = int64(r.u64())
	st.appliedAtRestab = int64(r.u64())
	st.lastReconcile = int64(r.u64())
	st.gen = r.u64()
	st.epoch = r.u64()
	st.baseline = math.Float64frombits(r.u64())
	flags := r.take(1)
	if r.err == nil {
		st.wantRestab = flags[0]&flagWantRestab != 0
	}
	st.k = int(int32(r.u32()))
	nShards := int(r.u32())
	if r.err == nil && (nShards < 1 || nShards > 1<<20) {
		return nil, fmt.Errorf("checkpoint declares %d shards", nShards)
	}
	if r.err == nil {
		st.bounds = make([]int, nShards+1)
		for i := range st.bounds {
			st.bounds[i] = int(r.u64())
		}
	}
	nLabels := int(r.u32())
	if r.err == nil && (nLabels < 0 || nLabels > graph.MaxVertices) {
		return nil, fmt.Errorf("checkpoint declares %d labels", nLabels)
	}
	if r.err == nil {
		if raw := r.take(4 * nLabels); r.err == nil {
			st.labels = make([]int32, nLabels)
			for i := range st.labels {
				st.labels[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
			}
		}
	}
	st.cross = int64(r.u64())
	st.total = int64(r.u64())
	nAffected := int(r.u32())
	if r.err == nil && (nAffected < 0 || nAffected > nLabels) {
		return nil, fmt.Errorf("checkpoint declares %d affected vertices for %d labels", nAffected, nLabels)
	}
	if r.err == nil && nAffected > 0 {
		if raw := r.take(4 * nAffected); r.err == nil {
			st.affected = make([]graph.VertexID, nAffected)
			for i := range st.affected {
				st.affected[i] = graph.VertexID(binary.LittleEndian.Uint32(raw[4*i:]))
			}
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	w, err := graph.DecodeWeightedBinary(bytes.NewReader(r.b))
	if err != nil {
		return nil, err
	}
	st.w = w
	return st, nil
}

// Delta-checkpoint payload layout (little-endian; the file header with
// the chained-from sequence and CRC lives in internal/wal): the full
// checkpoint's metadata block re-encoded whole (it is tens of bytes),
// changed label runs instead of the full label array, and NO graph —
// recovery rebuilds the graph by structurally replaying the journal
// across the chain (see Open), which is what makes the bytes scale with
// churn instead of |E|.
//
//	u16 version | u64 seq | u64 applied | i64 appliedAtRestab
//	i64 lastReconcile | u64 gen | u64 epoch | f64 baseline | u8 flags
//	u32 k | u32 shards | (shards+1) × u64 bounds
//	u32 n | label runs (delta.go appendRuns layout)
//	i64 cross | i64 total
//	u32 affected | affected × u32 vertex
const dckpVersion = 1

// encodeDeltaCheckpoint serializes a captured state as a chain link:
// runs are the label changes since the previous encoding.
func encodeDeltaCheckpoint(st *ckptState, runs []LabelRun) []byte {
	size := 64 + 8*len(st.bounds) + 4*len(st.affected)
	for _, r := range runs {
		size += 8 + 4*len(r.Labels)
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint16(buf, dckpVersion)
	buf = binary.LittleEndian.AppendUint64(buf, st.seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.applied))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.appliedAtRestab))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.lastReconcile))
	buf = binary.LittleEndian.AppendUint64(buf, st.gen)
	buf = binary.LittleEndian.AppendUint64(buf, st.epoch)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(st.baseline))
	var flags byte
	if st.wantRestab {
		flags |= flagWantRestab
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(st.k))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.bounds)-1))
	for _, b := range st.bounds {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(b))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.labels)))
	buf = appendRuns(buf, runs)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.cross))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.total))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.affected)))
	for _, v := range st.affected {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	return buf
}

// ckptDelta is a decoded chain link: the metadata block at its sequence
// plus the label runs taking the previous encoding's labels to its own.
type ckptDelta struct {
	seq             uint64
	applied         int64
	appliedAtRestab int64
	lastReconcile   int64
	gen, epoch      uint64
	baseline        float64
	wantRestab      bool
	k               int
	bounds          []int
	n               int
	runs            []LabelRun
	cross, total    int64
	affected        []graph.VertexID
}

func decodeDeltaCheckpoint(payload []byte) (*ckptDelta, error) {
	r := &ckptReader{b: payload}
	if v := r.u16(); r.err == nil && v != dckpVersion {
		return nil, fmt.Errorf("delta checkpoint version %d, want %d", v, dckpVersion)
	}
	d := &ckptDelta{}
	d.seq = r.u64()
	d.applied = int64(r.u64())
	d.appliedAtRestab = int64(r.u64())
	d.lastReconcile = int64(r.u64())
	d.gen = r.u64()
	d.epoch = r.u64()
	d.baseline = math.Float64frombits(r.u64())
	flags := r.take(1)
	if r.err == nil {
		d.wantRestab = flags[0]&flagWantRestab != 0
	}
	d.k = int(int32(r.u32()))
	nShards := int(r.u32())
	if r.err == nil && (nShards < 1 || nShards > 1<<20) {
		return nil, fmt.Errorf("delta checkpoint declares %d shards", nShards)
	}
	if r.err == nil {
		d.bounds = make([]int, nShards+1)
		for i := range d.bounds {
			d.bounds[i] = int(r.u64())
		}
	}
	d.n = int(r.u32())
	if r.err == nil && (d.n < 0 || d.n > graph.MaxVertices) {
		return nil, fmt.Errorf("delta checkpoint declares %d labels", d.n)
	}
	d.runs = readRuns(r)
	d.cross = int64(r.u64())
	d.total = int64(r.u64())
	nAffected := int(r.u32())
	if r.err == nil && (nAffected < 0 || nAffected > d.n) {
		return nil, fmt.Errorf("delta checkpoint declares %d affected vertices for %d labels", nAffected, d.n)
	}
	if r.err == nil && nAffected > 0 {
		if raw := r.take(4 * nAffected); r.err == nil {
			d.affected = make([]graph.VertexID, nAffected)
			for i := range d.affected {
				d.affected[i] = graph.VertexID(binary.LittleEndian.Uint32(raw[4*i:]))
			}
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("delta checkpoint has %d trailing bytes", len(r.b))
	}
	return d, nil
}

// applyCkptDelta overlays one decoded chain link onto the composing
// state. The caller has structurally replayed the journal up to the
// link's sequence, so the graph's vertex count must already match the
// link's — a mismatch means the chain and journal disagree, which is
// corruption, not a recoverable tear.
func applyCkptDelta(st *ckptState, link wal.DeltaLink) error {
	d, err := decodeDeltaCheckpoint(link.Payload)
	if err != nil {
		return fmt.Errorf("delta checkpoint %d: %w", link.Seq, err)
	}
	if d.seq != link.Seq {
		return fmt.Errorf("delta checkpoint file %d declares inner seq %d", link.Seq, d.seq)
	}
	if d.n != st.w.NumVertices() {
		return fmt.Errorf("delta checkpoint %d covers %d vertices, journal replay produced %d",
			link.Seq, d.n, st.w.NumVertices())
	}
	labels := st.labels
	if d.n > len(labels) {
		grown := make([]int32, d.n)
		copy(grown, labels)
		labels = grown
	} else if d.n < len(labels) {
		return fmt.Errorf("delta checkpoint %d shrinks %d labels to %d", link.Seq, len(labels), d.n)
	}
	for _, r := range d.runs {
		if r.Start < 0 || r.Start+len(r.Labels) > len(labels) {
			return fmt.Errorf("delta checkpoint %d run [%d,%d) outside %d labels",
				link.Seq, r.Start, r.Start+len(r.Labels), len(labels))
		}
		copy(labels[r.Start:], r.Labels)
	}
	st.labels = labels
	st.seq = d.seq
	st.applied = d.applied
	st.appliedAtRestab = d.appliedAtRestab
	st.lastReconcile = d.lastReconcile
	st.gen, st.epoch = d.gen, d.epoch
	st.baseline = d.baseline
	st.wantRestab = d.wantRestab
	st.k = d.k
	st.bounds = d.bounds
	st.cross, st.total = d.cross, d.total
	st.affected = d.affected
	return nil
}

// applyStructural replays one journal record's effect on the graph
// TOPOLOGY only, mirroring the live apply paths bit-for-bit: labels, k,
// bounds and counters come from the chain-link overlays, so resizes are
// no-ops here and label seeding is skipped. Fast-path-eligible batches
// (the same graph-independent test the live coordinator ran, so
// eligibility replays identically) insert arcs exactly as the shard scan
// does — per edge: clamp non-positive weight to 1, normalize u<v, row u
// then row v, one AdjustTotals fold; each row receives its arcs in
// submission order live (single owner shard, FIFO), so the rebuilt
// adjacency is byte-identical. Barrier-path batches go through
// Mutation.Apply, the same validate-then-apply the live barrier ran —
// a batch rejected live re-rejects identically, leaving the graph
// untouched.
func applyStructural(st *ckptState, rec wal.Record) error {
	switch rec.Type {
	case wal.RecordResize:
		return nil
	case wal.RecordMutation:
		m := rec.Mut
		fast := m.NewVertices == 0 && len(m.RemovedEdges) == 0
		if fast {
			n := graph.VertexID(st.w.NumVertices())
			for _, e := range m.NewEdges {
				if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n || e.U == e.V {
					fast = false
					break
				}
			}
		}
		if fast {
			for _, e := range m.NewEdges {
				u, v, wgt := e.U, e.V, e.Weight
				if wgt <= 0 {
					wgt = 1
				}
				if u > v {
					u, v = v, u
				}
				st.w.InsertArc(u, v, wgt)
				st.w.InsertArc(v, u, wgt)
				st.w.AdjustTotals(1, int64(wgt))
			}
			return nil
		}
		// Rejected batches rejected live too, with the graph untouched;
		// the error stays observable via Err after the live replay phase
		// re-runs any post-tip records.
		_, _ = m.Apply(st.w)
		return nil
	default:
		return fmt.Errorf("replaying unknown record type %d", rec.Type)
	}
}

// newStoreFromCheckpoint rebuilds the coordinator state a checkpoint
// captured. The stored shard ranges are restored when cfg asks for the
// same shard count (the bit-identical recovery contract); a different
// cfg.Shards is honored with freshly balanced ranges. The per-shard cut
// counters are recomputed exactly and verified against the stored
// composed totals — a mismatch means the checkpoint is inconsistent.
func newStoreFromCheckpoint(st *ckptState, cfg Config) (*Store, error) {
	n := st.w.NumVertices()
	if len(st.labels) != n {
		return nil, fmt.Errorf("%d labels for %d vertices", len(st.labels), n)
	}
	if st.k < 1 {
		return nil, fmt.Errorf("k=%d", st.k)
	}
	if err := metrics.ValidateLabels(st.labels, st.k); err != nil {
		return nil, err
	}
	storedShards := len(st.bounds) - 1
	if st.bounds[0] != 0 || st.bounds[storedShards] != n || !slices.IsSorted(st.bounds) {
		return nil, fmt.Errorf("shard bounds %v do not tile %d vertices", st.bounds, n)
	}
	if cfg.Shards > n {
		cfg.Shards = max(1, n)
	}
	s := &Store{
		cfg:             cfg,
		deltas:          newDeltaHub(cfg.DeltaRing),
		log:             make(chan logEntry, cfg.LogDepth),
		batchDone:       make(chan struct{}, 1),
		closed:          make(chan struct{}),
		done:            make(chan struct{}),
		w:               st.w,
		labels:          st.labels,
		k:               st.k,
		targetK:         st.k,
		gen:             st.gen,
		epoch:           st.epoch,
		baseline:        st.baseline,
		wantRestab:      st.wantRestab,
		appliedAtRestab: st.appliedAtRestab,
		lastReconcile:   st.lastReconcile,
		affected:        make(map[graph.VertexID]struct{}, len(st.affected)),
		restabDone:      make(chan restabResult, 1),
		midrun:          make(chan midrunNote, 1),
		ckptDone:        make(chan ckptResult, 1),
	}
	s.initMetrics()
	for _, v := range st.affected {
		s.affected[v] = struct{}{}
	}
	s.applied.Store(st.applied)
	s.submitted.Store(st.applied)
	switch {
	case cfg.Shards == storedShards:
		s.bounds = append([]int(nil), st.bounds...)
	case n == 0:
		s.bounds = []int{0, 0}
	default:
		s.bounds = cluster.BalancedRanges(st.w, cfg.Shards)
	}
	var cross, total int64
	for i := 0; i < len(s.bounds)-1; i++ {
		sh := &shard{
			st: s, id: i,
			log:  make(chan shardEntry, cfg.ShardLogDepth),
			done: make(chan struct{}),
			w:    st.w, labels: st.labels,
			lo: s.bounds[i], hi: s.bounds[i+1],
			k: s.k, epoch: s.epoch,
		}
		sh.cross, sh.total, sh.perPart = metrics.CutWeightsRange(st.w, st.labels, s.k, sh.lo, sh.hi)
		cross += sh.cross
		total += sh.total
		sh.publishFresh()
		s.shards = append(s.shards, sh)
	}
	if cross != st.cross || total != st.total {
		return nil, fmt.Errorf("recomputed cut counters (cut=%d,total=%d) disagree with checkpoint (cut=%d,total=%d)",
			cross, total, st.cross, st.total)
	}
	s.publishRouter()
	// Delta sequences are per-process: the recovered store starts its
	// change feed with a fresh baseline, and watch consumers holding
	// sequences from the previous incarnation are told to resync.
	s.emitBaselineDelta()
	return s, nil
}
