package serve

// The delta plane: every publication event the coordinator (or, for
// counter-only publications, the finishing shard) goes through emits a
// compact Delta record — publication sequence, epoch/generation, the
// changed vertex→label runs, shard-bound changes, and the integer cut
// counters — into a bounded in-memory ring with a compaction floor. One
// representation, two consumers: the /v1/watch change feed streams the
// ring to HTTP clients so routers and caches can track label movement
// without re-pulling snapshots (the paper's "maintain, don't recompute"
// story applied to the serving edge), and the incremental-checkpoint
// encoder in durable.go reuses the same label-run encoding to write
// checkpoint deltas whose size scales with churn instead of |E|.
//
// Sequencing: delta sequence numbers are dense, 1-based, and per-process
// (they restart when the store restarts — a consumer holding a seq from a
// previous incarnation gets an explicit 410-style "reset" from the watch
// endpoint and resyncs). The first delta of every store is a baseline
// carrying the full label map, so a consumer that applies deltas from
// seq 0 reconstructs the exact composed labeling; once the ring compacts
// past seq 1, such a consumer is told to resync via a full lookup.
//
// Label truth: every label-changing event runs under a shard barrier and
// emits its delta synchronously with exact coordinator-owned state, in
// event order. Counter-only deltas (fast-path broadcasts, which never
// relabel) carry no runs and may trail the live counters by a publication;
// consumers must treat Cross/Total as monotone-converging hints and the
// runs as the authoritative label stream.

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// LabelRun is one contiguous block of changed labels: vertex Start+i has
// label Labels[i] after the delta applies.
type LabelRun struct {
	Start  int
	Labels []int32
}

// Delta is one change-feed record. The zero value of K/N means
// "unchanged" (counter-only deltas); Bounds is nil unless the shard
// boundaries changed (growth, rebalance) or the delta is a baseline.
// A Delta and everything it references is immutable after publication.
type Delta struct {
	// Seq is the publication sequence: dense, 1-based, per-process.
	Seq uint64
	// Epoch and Gen mirror the store's restabilization epoch and resize
	// generation at emission.
	Epoch uint64
	Gen   uint64
	// K is the partition count after this delta (0 = unchanged).
	K int
	// N is the vertex count after this delta (0 = unchanged).
	N int
	// Bounds are the shard boundaries after this delta, when they changed.
	Bounds []int
	// Runs are the changed label runs, ascending and non-overlapping.
	Runs []LabelRun
	// Cross and Total are the composed integer cut counters.
	Cross, Total int64
}

// Apply overlays d onto a label map being reconstructed from the feed,
// growing it to d.N first, and returns the (possibly re-allocated) slice.
// Applying every delta from seq 1 in order yields the store's composed
// labels. A run outside the grown bounds means the consumer missed a
// delta (or the stream is corrupt): resync.
func (d *Delta) Apply(labels []int32) ([]int32, error) {
	if d.N > len(labels) {
		grown := make([]int32, d.N)
		copy(grown, labels)
		labels = grown
	}
	for _, r := range d.Runs {
		if r.Start < 0 || r.Start+len(r.Labels) > len(labels) {
			return labels, fmt.Errorf("serve: delta %d run [%d,%d) outside %d labels",
				d.Seq, r.Start, r.Start+len(r.Labels), len(labels))
		}
		copy(labels[r.Start:], r.Labels)
	}
	return labels, nil
}

// RunVertices totals the vertices covered by the delta's runs.
func (d *Delta) RunVertices() int {
	n := 0
	for _, r := range d.Runs {
		n += len(r.Labels)
	}
	return n
}

// Delta payload layout (little-endian; framing/CRC belongs to the
// transport — internal/api's watch frames and internal/wal's delta
// checkpoint files both wrap this payload):
//
//	u16 version | u64 seq | u64 epoch | u64 gen | u32 k | u32 n
//	i64 cross | i64 total
//	u32 nbounds | nbounds × u64        (0 = no bound change)
//	u32 nruns | per run: u32 start | u32 len | len × u32 labels
const deltaVersion = 1

// EncodeDelta serializes d into its binary payload.
func EncodeDelta(d *Delta) []byte {
	size := 2 + 8*3 + 4*2 + 8*2 + 4 + 8*len(d.Bounds) + 4
	for _, r := range d.Runs {
		size += 8 + 4*len(r.Labels)
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint16(buf, deltaVersion)
	buf = binary.LittleEndian.AppendUint64(buf, d.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, d.Epoch)
	buf = binary.LittleEndian.AppendUint64(buf, d.Gen)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(d.K))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(d.N))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.Cross))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.Total))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(d.Bounds)))
	for _, b := range d.Bounds {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(b))
	}
	buf = appendRuns(buf, d.Runs)
	return buf
}

// appendRuns encodes the shared label-run section (also used by the
// incremental-checkpoint payload in durable.go).
func appendRuns(buf []byte, runs []LabelRun) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(runs)))
	for _, r := range runs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Start))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Labels)))
		for _, l := range r.Labels {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(l))
		}
	}
	return buf
}

// readRuns decodes the label-run section through a ckptReader.
func readRuns(r *ckptReader) []LabelRun {
	nRuns := int(r.u32())
	if r.err != nil {
		return nil
	}
	if nRuns < 0 || nRuns > graph.MaxVertices {
		r.err = fmt.Errorf("payload declares %d label runs", nRuns)
		return nil
	}
	runs := make([]LabelRun, 0, min(nRuns, 1024))
	for i := 0; i < nRuns; i++ {
		start := int(r.u32())
		length := int(r.u32())
		if r.err != nil {
			return nil
		}
		if start < 0 || length < 0 || length > graph.MaxVertices || start > graph.MaxVertices-length {
			r.err = fmt.Errorf("label run [%d,%d) out of range", start, start+length)
			return nil
		}
		raw := r.take(4 * length)
		if r.err != nil {
			return nil
		}
		labels := make([]int32, length)
		for j := range labels {
			labels[j] = int32(binary.LittleEndian.Uint32(raw[4*j:]))
		}
		runs = append(runs, LabelRun{Start: start, Labels: labels})
	}
	return runs
}

// DecodeDelta parses a delta payload produced by EncodeDelta.
func DecodeDelta(payload []byte) (*Delta, error) {
	r := &ckptReader{b: payload}
	if v := r.u16(); r.err == nil && v != deltaVersion {
		return nil, fmt.Errorf("serve: delta version %d, want %d", v, deltaVersion)
	}
	d := &Delta{}
	d.Seq = r.u64()
	d.Epoch = r.u64()
	d.Gen = r.u64()
	d.K = int(int32(r.u32()))
	d.N = int(int32(r.u32()))
	d.Cross = int64(r.u64())
	d.Total = int64(r.u64())
	if d.K < 0 || d.N < 0 || d.N > graph.MaxVertices {
		return nil, fmt.Errorf("serve: delta declares k=%d n=%d", d.K, d.N)
	}
	nBounds := int(r.u32())
	if r.err == nil && (nBounds < 0 || nBounds > 1<<20) {
		return nil, fmt.Errorf("serve: delta declares %d bounds", nBounds)
	}
	if r.err == nil && nBounds > 0 {
		d.Bounds = make([]int, nBounds)
		for i := range d.Bounds {
			d.Bounds[i] = int(r.u64())
		}
	}
	d.Runs = readRuns(r)
	if r.err != nil {
		return nil, fmt.Errorf("serve: delta: %w", r.err)
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("serve: delta has %d trailing bytes", len(r.b))
	}
	return d, nil
}

// labelDiffRuns computes the changed label runs taking old to new: maximal
// blocks where the labels differ over the common prefix, plus the whole
// appended tail when new is longer. Exact (no gap coalescing), so the run
// bytes scale with the churn, which is what makes incremental checkpoints
// and watch frames compact on low-churn histories.
func labelDiffRuns(old, new []int32) []LabelRun {
	var runs []LabelRun
	common := min(len(old), len(new))
	for i := 0; i < common; {
		if old[i] == new[i] {
			i++
			continue
		}
		j := i + 1
		for j < common && old[j] != new[j] {
			j++
		}
		runs = append(runs, LabelRun{Start: i, Labels: append([]int32(nil), new[i:j]...)})
		i = j
	}
	if len(new) > common {
		runs = append(runs, LabelRun{Start: common, Labels: append([]int32(nil), new[common:]...)})
	}
	return runs
}

// hubEpoch anchors FramedDelta publication instants: storing a
// time.Duration offset instead of a time.Time keeps the ring entry one
// word smaller and monotonic-clock based (time.Since reads the
// monotonic clock, so delivery latencies survive wall-clock jumps).
var hubEpoch = time.Now()

// FramedDelta is one retained publication with its canonical encodings
// memoized at publish time: the Delta record plus the complete
// CRC-framed /v1/watch frame (u8 kind | u32 len | u32 crc |
// EncodeDelta payload). Framing is deterministic, so every watch stream
// writes the same immutable Frame bytes — one encode and one CRC per
// publication regardless of subscriber count. Consumers must treat
// Frame (and everything Delta references) as read-only.
type FramedDelta struct {
	Delta *Delta
	Frame []byte
	pub   time.Duration // publication instant, offset from hubEpoch
}

// Payload returns the EncodeDelta bytes inside Frame (aliased, not
// copied).
func (f *FramedDelta) Payload() []byte { return f.Frame[watchHeader:] }

// Elapsed returns the time since the delta was published — the fan-out
// delivery latency when sampled right after writing Frame to a stream.
// Zero for entries constructed outside a hub (tests).
func (f *FramedDelta) Elapsed() time.Duration {
	if f.pub == 0 {
		return 0
	}
	return time.Since(hubEpoch) - f.pub
}

// deltaRing is one immutable ring snapshot: entries are contiguous and
// ascending by Seq; entries[0].Delta.Seq is the compaction floor.
// Readers load the current snapshot with one atomic pointer read and
// index into it arithmetically — no lock, no coordination with
// publishers. Successive snapshots share backing storage: publish
// appends past the previous snapshot's length and compacts by slicing
// off the front, so older snapshots never observe the write and the
// per-publication copy cost is amortized O(1) instead of O(ring).
type deltaRing struct {
	entries []FramedDelta
}

// DeltaSub is one subscriber registration on the delta hub's broadcast
// plane. C carries coalesced wakeups: publish puts at most one token in
// the single-slot channel, so a subscriber that fell several
// publications behind wakes once and drains the ring, and a publisher
// never blocks on a slow subscriber. The publish ordering guarantee is:
// the ring snapshot containing a delta is visible before its token is
// sent, so "read the ring, then park on C" never misses a publication.
type DeltaSub struct {
	hub *deltaHub
	c   chan struct{}
}

// C returns the coalesced wakeup channel.
func (s *DeltaSub) C() <-chan struct{} { return s.c }

// Cancel removes the registration. Safe to call more than once; the
// channel is left open (a buffered token may still be pending).
func (s *DeltaSub) Cancel() { s.hub.unsubscribe(s) }

// deltaHub is the bounded publication ring. Publications come from the
// coordinator (barrier events, exact) and from shard goroutines
// (counter-only fast-path publications); the mutex serializes
// publishers only — readers go through the atomic ring snapshot and
// the atomic next seq, so caught-up checks and catch-up reads never
// contend with a publish, and a publish never stalls behind readers.
type deltaHub struct {
	mu   sync.Mutex // serializes publishers; no reader ever takes it
	max  int
	ring atomic.Pointer[deltaRing]
	next atomic.Uint64 // seq the next publication gets

	// encodes counts EncodeDelta calls on the publish path — the
	// "encode-once" invariant under test: it tracks publications, not
	// subscribers.
	encodes atomic.Int64

	// subMu guards the subscriber set; it is taken by publish after the
	// ring swap, and by subscribe/unsubscribe on stream open/close.
	subMu sync.Mutex
	subs  map[*DeltaSub]struct{}

	// notify is the legacy close-and-replace broadcast channel, kept for
	// DeltaNotify. Allocated lazily on first waitCh so stores whose
	// watchers all use DeltaSub never pay the per-publication channel
	// churn.
	notifyMu sync.Mutex
	notify   chan struct{}
}

func newDeltaHub(max int) *deltaHub {
	h := &deltaHub{max: max}
	h.next.Store(1)
	return h
}

// publish assigns d its sequence, memoizes its encodings, swaps in the
// new ring snapshot, and wakes subscribers. The caller must not mutate
// d afterwards.
func (h *deltaHub) publish(d *Delta) {
	h.mu.Lock()
	d.Seq = h.next.Load()
	payload := EncodeDelta(d)
	h.encodes.Add(1)
	frame := make([]byte, 0, watchHeader+len(payload))
	frame = AppendWatchFrame(frame, WatchFrame{Kind: WatchDelta, Delta: payload})
	entry := FramedDelta{Delta: d, Frame: frame, pub: time.Since(hubEpoch)}
	var keep []FramedDelta
	if old := h.ring.Load(); old != nil {
		keep = old.entries
		if len(keep) >= h.max {
			// Compaction: slice the oldest off the front. The backing
			// array is shared with prior snapshots, so dropped entries
			// stay pinned until append reallocates — bounded at roughly
			// one ring's worth, the price of O(1) amortized publish.
			keep = keep[len(keep)+1-h.max:]
		}
	}
	// Appending writes at an index beyond every previously published
	// snapshot's length, so concurrent readers of older snapshots never
	// observe it; the ring swap is the sole publication point.
	h.ring.Store(&deltaRing{entries: append(keep, entry)})
	h.next.Add(1)
	h.mu.Unlock()

	h.notifyMu.Lock()
	if h.notify != nil {
		close(h.notify)
		h.notify = nil
	}
	h.notifyMu.Unlock()

	h.subMu.Lock()
	for sub := range h.subs {
		select {
		case sub.c <- struct{}{}:
		default: // wakeup already pending; coalesce
		}
	}
	h.subMu.Unlock()
}

// bounds returns the compaction floor (seq of the oldest retained delta;
// equals next when the ring is empty) and the next seq to be assigned.
// Lock-free: the ring is loaded before next so floor <= next always
// holds even when publications race the two reads.
func (h *deltaHub) bounds() (floor, next uint64) {
	r := h.ring.Load()
	next = h.next.Load()
	if r == nil || len(r.entries) == 0 {
		return next, next
	}
	return r.entries[0].Delta.Seq, next
}

// framedSince returns up to max retained entries with Seq > after, plus
// the floor. The entries alias the hub's immutable snapshot — zero
// copies, zero encodes; callers must not mutate them. A caller that
// finds fds[0].Delta.Seq != after+1 raced compaction and must resync.
func (h *deltaHub) framedSince(after uint64, max int) (fds []FramedDelta, floor uint64) {
	r := h.ring.Load()
	if r == nil || len(r.entries) == 0 {
		return nil, h.next.Load()
	}
	ents := r.entries
	floor = ents[0].Delta.Seq
	if after+1 > floor {
		// Seqs are dense and ascending, so the cursor's position is
		// index arithmetic, not a scan.
		skip := after + 1 - floor
		if skip >= uint64(len(ents)) {
			return nil, floor
		}
		ents = ents[skip:]
	}
	if max > 0 && len(ents) > max {
		ents = ents[:max]
	}
	return ents, floor
}

// since is framedSince projected onto bare deltas, for consumers that
// do not need the memoized frames.
func (h *deltaHub) since(after uint64, max int) (ds []*Delta, floor uint64) {
	fds, floor := h.framedSince(after, max)
	if len(fds) > 0 {
		ds = make([]*Delta, len(fds))
		for i := range fds {
			ds[i] = fds[i].Delta
		}
	}
	return ds, floor
}

// waitCh returns a channel closed by the next publication — the legacy
// single-channel broadcast. Each publication closes and discards it, so
// every parked waiter wakes and re-calls waitCh (a thundering herd at
// scale); high-fan-out consumers should use subscribe instead.
func (h *deltaHub) waitCh() <-chan struct{} {
	h.notifyMu.Lock()
	defer h.notifyMu.Unlock()
	if h.notify == nil {
		h.notify = make(chan struct{})
	}
	return h.notify
}

// subscribe registers a coalesced-wakeup subscriber.
func (h *deltaHub) subscribe() *DeltaSub {
	sub := &DeltaSub{hub: h, c: make(chan struct{}, 1)}
	h.subMu.Lock()
	if h.subs == nil {
		h.subs = make(map[*DeltaSub]struct{})
	}
	h.subs[sub] = struct{}{}
	h.subMu.Unlock()
	return sub
}

func (h *deltaHub) unsubscribe(sub *DeltaSub) {
	h.subMu.Lock()
	delete(h.subs, sub)
	h.subMu.Unlock()
}

// subscribers returns the current registration count (the
// spinner_watch_subscribers gauge).
func (h *deltaHub) subscribers() int {
	h.subMu.Lock()
	defer h.subMu.Unlock()
	return len(h.subs)
}

// DeltaBounds returns the change feed's compaction floor (the oldest
// delta sequence still in the ring) and the next sequence to be
// published. A consumer may resume from any from_seq with
// floor-1 <= from_seq <= next-1; anything older was compacted away.
func (s *Store) DeltaBounds() (floor, next uint64) { return s.deltas.bounds() }

// DeltasSince returns up to max (0 = all) retained deltas with
// Seq > after, and the current compaction floor. When the first returned
// delta's Seq is not after+1 the gap was compacted: resync.
func (s *Store) DeltasSince(after uint64, max int) ([]*Delta, uint64) {
	return s.deltas.since(after, max)
}

// FramedDeltasSince is DeltasSince with the memoized watch-frame bytes:
// up to max (0 = all) retained entries with Seq > after, plus the
// floor. The returned entries alias the hub's immutable ring snapshot —
// every caller shares the same Frame bytes and must not mutate them.
// When the first entry's Seq is not after+1 the gap was compacted:
// resync.
func (s *Store) FramedDeltasSince(after uint64, max int) ([]FramedDelta, uint64) {
	return s.deltas.framedSince(after, max)
}

// SubscribeDeltas registers a publication subscriber with a coalesced
// single-slot wakeup channel — the scalable watch-stream hook (the
// legacy DeltaNotify channel wakes every waiter on every publication).
// Callers must Cancel when done.
func (s *Store) SubscribeDeltas() *DeltaSub { return s.deltas.subscribe() }

// DeltaNotify returns a channel closed by the next delta publication —
// the legacy long-poll hook. Prefer SubscribeDeltas for long-lived
// streams: this channel is re-allocated per publication and wakes all
// waiters at once.
func (s *Store) DeltaNotify() <-chan struct{} { return s.deltas.waitCh() }

// emitBaselineDelta publishes the full-state delta every store starts its
// feed with. Called before the goroutines start (construction/recovery),
// while the caller owns the state exclusively.
func (s *Store) emitBaselineDelta() {
	var cross, total int64
	for _, sh := range s.shards {
		cross += sh.cross
		total += sh.total
	}
	d := &Delta{
		Epoch: s.epoch, Gen: s.gen, K: s.k, N: s.w.NumVertices(),
		Bounds: append([]int(nil), s.bounds...),
		Cross:  cross, Total: total,
	}
	if n := len(s.labels); n > 0 {
		d.Runs = []LabelRun{{Start: 0, Labels: append([]int32(nil), s.labels...)}}
	}
	s.deltas.publish(d)
	s.ctr.DeltasPublished.Add(1)
	s.ctr.DeltaEncodes.Add(1)
}

// emitBarrierDelta publishes an exact delta from coordinator-owned state.
// Coordinator-only, under a barrier (or with the goroutines stopped).
func (s *Store) emitBarrierDelta(runs []LabelRun, includeBounds bool) {
	var cross, total int64
	for _, sh := range s.shards {
		cross += sh.cross
		total += sh.total
	}
	d := &Delta{
		Epoch: s.epoch, Gen: s.gen, K: s.k, N: s.w.NumVertices(),
		Runs: runs, Cross: cross, Total: total,
	}
	if includeBounds {
		d.Bounds = append([]int(nil), s.bounds...)
	}
	s.deltas.publish(d)
	s.ctr.DeltasPublished.Add(1)
	s.ctr.DeltaEncodes.Add(1)
}

// emitCounterDelta publishes a counter-only delta composed from the
// published shard snapshots — safe from any goroutine (it reads only
// atomics); the counters may trail in-flight sub-batches by one
// publication, and Epoch is advisory (labels never change on the fast
// path, so the label stream stays exact regardless).
func (s *Store) emitCounterDelta() {
	var cross, total int64
	var epoch uint64
	for _, sh := range s.router.Load().shards {
		sn := sh.snap.Load()
		cross += sn.cross
		total += sn.total
		if sn.epoch > epoch {
			epoch = sn.epoch
		}
	}
	s.deltas.publish(&Delta{Epoch: epoch, Cross: cross, Total: total})
	s.ctr.DeltasPublished.Add(1)
	s.ctr.DeltaEncodes.Add(1)
}
