package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// twoClusters builds a weighted graph of two dense pseudo-random clusters
// of size half joined by a single bridge, with the obvious 2-way labeling.
// Its near-zero cut ratio makes restabilization triggers easy to provoke.
func twoClusters(half int) (*graph.Weighted, []int32) {
	w := graph.NewWeighted(2 * half)
	addClique := func(off int) {
		for i := 0; i < half; i++ {
			for j := 1; j <= 6; j++ {
				u := (i + j*j*7 + 13*j) % half
				if u != i && i < u {
					dup := false
					for _, a := range w.Neighbors(graph.VertexID(off + i)) {
						if a.To == graph.VertexID(off+u) {
							dup = true
							break
						}
					}
					if !dup {
						w.AddEdge(graph.VertexID(off+i), graph.VertexID(off+u), 2)
					}
				}
			}
		}
	}
	addClique(0)
	addClique(half)
	w.AddEdge(0, graph.VertexID(half), 2)
	labels := make([]int32, 2*half)
	for v := half; v < 2*half; v++ {
		labels[v] = 1
	}
	return w, labels
}

func storeOpts(k int, seed uint64) core.Options {
	o := core.DefaultOptions(k)
	o.Seed = seed
	o.NumWorkers = 2
	o.MaxIterations = 60
	return o
}

func TestStoreLookupAndSnapshot(t *testing.T) {
	w, labels := twoClusters(40)
	st, err := New(w, labels, Config{Options: storeOpts(2, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	if l, ok := st.Lookup(0); !ok || l != 0 {
		t.Fatalf("Lookup(0) = %d,%v want 0,true", l, ok)
	}
	if l, ok := st.Lookup(41); !ok || l != 1 {
		t.Fatalf("Lookup(41) = %d,%v want 1,true", l, ok)
	}
	if _, ok := st.Lookup(-1); ok {
		t.Fatal("negative vertex resolved")
	}
	if _, ok := st.Lookup(10_000); ok {
		t.Fatal("out-of-range vertex resolved")
	}
	snap := st.Snapshot()
	if snap.K != 2 || len(snap.Labels) != 80 || snap.Version == 0 {
		t.Fatalf("bad initial snapshot %+v", snap)
	}
	c := st.Counters().Snapshot()
	if c.Lookups != 4 || c.LookupMisses != 2 {
		t.Fatalf("counters %v", c)
	}
}

func TestStoreConstructionValidation(t *testing.T) {
	w, labels := twoClusters(10)
	if _, err := New(w, labels[:5], Config{Options: storeOpts(2, 1)}); err == nil {
		t.Fatal("short label slice accepted")
	}
	bad := append([]int32(nil), labels...)
	bad[3] = 7
	if _, err := New(w, bad, Config{Options: storeOpts(2, 1)}); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if _, err := New(w, labels, Config{Options: core.Options{K: 0}}); err == nil {
		t.Fatal("invalid partitioner options accepted")
	}
	if _, err := New(w, labels, Config{Options: storeOpts(2, 1), DegradeFactor: 0.5}); err == nil {
		t.Fatal("DegradeFactor < 1 accepted")
	}
}

// New vertices arriving in batches become visible to lookups with valid,
// least-loaded-seeded labels, without any restabilization run.
func TestStoreSeedsNewVertices(t *testing.T) {
	w, labels := twoClusters(40)
	st, err := New(w, labels, Config{Options: storeOpts(2, 1), DegradeFactor: 100}) // never restabilize
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	mut := &graph.Mutation{NewVertices: 10}
	for i := 0; i < 10; i++ {
		mut.NewEdges = append(mut.NewEdges, graph.WeightedEdgeRecord{U: graph.VertexID(80 + i), V: graph.VertexID(i), Weight: 2})
	}
	if err := st.Submit(mut); err != nil {
		t.Fatal(err)
	}
	if err := st.Quiesce(); err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	if len(snap.Labels) != 90 {
		t.Fatalf("snapshot has %d labels, want 90", len(snap.Labels))
	}
	if err := metrics.ValidateLabels(snap.Labels, 2); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 80; v++ {
		if snap.Labels[v] != labels[v] {
			t.Fatalf("existing vertex %d moved without a restabilization", v)
		}
	}
	c := st.Counters().Snapshot()
	if c.VerticesAdded != 10 || c.BatchesApplied != 1 || c.Restabilizations != 0 {
		t.Fatalf("counters %v", c)
	}
}

// A batch that fails validation must leave the store exactly as it was:
// same labels, same vertex count, same cut — and later batches still apply.
func TestStoreRejectsBadBatchAtomically(t *testing.T) {
	w, labels := twoClusters(40)
	st, err := New(w, labels, Config{Options: storeOpts(2, 1), DegradeFactor: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	before := st.Snapshot()

	bad := &graph.Mutation{RemovedEdges: []graph.Edge{{From: 1, To: 2}, {From: 1, To: 2}, {From: 1, To: 2}}}
	if err := st.Submit(bad); err != nil {
		t.Fatal(err)
	}
	if err := st.Quiesce(); err == nil {
		t.Fatal("Quiesce did not surface the batch rejection")
	}
	after := st.Snapshot()
	if len(after.Labels) != len(before.Labels) || after.CutRatio != before.CutRatio {
		t.Fatalf("rejected batch changed state: %+v -> %+v", before, after)
	}
	if st.Err() == nil {
		t.Fatal("Err() empty after rejection")
	}
	c := st.Counters().Snapshot()
	if c.BatchesRejected != 1 || c.BatchesApplied != 0 {
		t.Fatalf("counters %v", c)
	}

	good := &graph.Mutation{NewEdges: []graph.WeightedEdgeRecord{{U: 0, V: 2, Weight: 2}}}
	if err := st.Submit(good); err != nil {
		t.Fatal(err)
	}
	_ = st.Quiesce() // still reports the sticky last error; application proceeds
	if got := st.Counters().BatchesApplied.Load(); got != 1 {
		t.Fatalf("good batch after rejection not applied: %d", got)
	}
}

// Degrading the cut past the threshold triggers a background run that
// restores it; the run must improve the cut and count migration volume.
func TestStoreRestabilizationTrigger(t *testing.T) {
	w, labels := twoClusters(60)
	st, err := New(w, labels, Config{Options: storeOpts(2, 3), DegradeFactor: 1.05})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	base := st.Snapshot().CutRatio

	// Move a block of cluster-0 vertices' worth of edges across: add many
	// cross-cluster edges to wreck locality.
	mut := &graph.Mutation{}
	for i := 0; i < 120; i++ {
		u := graph.VertexID(i % 60)
		v := graph.VertexID(60 + (i*7)%60)
		mut.NewEdges = append(mut.NewEdges, graph.WeightedEdgeRecord{U: u, V: v, Weight: 2})
	}
	if err := st.Submit(mut); err != nil {
		t.Fatal(err)
	}
	if err := st.Quiesce(); err != nil {
		t.Fatal(err)
	}
	c := st.Counters().Snapshot()
	if c.Restabilizations < 1 {
		t.Fatalf("no restabilization ran (counters %v)", c)
	}
	snap := st.Snapshot()
	if snap.Epoch < 1 {
		t.Fatalf("snapshot epoch %d, want >= 1", snap.Epoch)
	}
	if err := metrics.ValidateLabels(snap.Labels, 2); err != nil {
		t.Fatal(err)
	}
	if c.MigratedVertices > 0 && c.MigratedWeight == 0 {
		t.Fatal("migrated vertices with zero dragged weight")
	}
	// The run must not leave the cut materially worse than where the batch
	// pushed it; on this topology it reliably improves it.
	degraded := 1 - metricsPhiOnSubmit(t, w, labels, mut)
	if snap.CutRatio > degraded {
		t.Fatalf("restabilized cut %.4f worse than degraded cut %.4f (baseline %.4f)", snap.CutRatio, degraded, base)
	}
}

// metricsPhiOnSubmit replays the batch on a private copy to compute the
// degraded cut the store saw before restabilizing.
func metricsPhiOnSubmit(t *testing.T, w *graph.Weighted, labels []int32, mut *graph.Mutation) float64 {
	t.Helper()
	// w was handed to the store; rebuild an identical copy.
	cp, lcp := twoClusters(60)
	_ = w
	if _, err := mut.Apply(cp); err != nil {
		t.Fatal(err)
	}
	return metrics.Phi(cp, lcp)
}

// Acceptance criterion: an elastic k→k+2 change must migrate incrementally
// (the probabilistic n/(k+n) fraction plus LPA repair, never a full
// recompute) and land within 10% of a from-scratch run's cut ratio on the
// same graph.
func TestStoreElasticResizeIncremental(t *testing.T) {
	const oldK, newK = 8, 10
	g := gen.WattsStrogatz(4000, 10, 0.2, 17)
	w := graph.Convert(g)

	p, err := core.NewPartitioner(storeOpts(oldK, 5))
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := p.PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}
	baseLabels := append([]int32(nil), baseRes.Labels...)

	st, err := New(w.Clone(), append([]int32(nil), baseRes.Labels...), Config{Options: storeOpts(oldK, 5)})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Resize(newK); err != nil {
		t.Fatal(err)
	}
	if err := st.Quiesce(); err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	if snap.K != newK {
		t.Fatalf("snapshot k = %d, want %d", snap.K, newK)
	}
	if err := metrics.ValidateLabels(snap.Labels, newK); err != nil {
		t.Fatal(err)
	}
	c := st.Counters().Snapshot()
	if c.ElasticResizes != 1 {
		t.Fatalf("counters %v", c)
	}
	// The probabilistic relabeling moves ≈ n/(k+n) = 20% of vertices.
	seedFrac := float64(c.ElasticSeedMoved) / 4000
	if seedFrac < 0.1 || seedFrac > 0.35 {
		t.Fatalf("elastic seed moved %.1f%% of vertices, want ≈20%%", 100*seedFrac)
	}

	// Incrementality: the end-to-end move fraction stays far below a
	// from-scratch recompute, which reshuffles nearly everything.
	scratch, err := core.NewPartitioner(storeOpts(newK, 5))
	if err != nil {
		t.Fatal(err)
	}
	scratchRes, err := scratch.PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}
	elasticMoved := metrics.Difference(baseLabels, snap.Labels)
	scratchMoved := metrics.Difference(baseLabels, scratchRes.Labels)
	if elasticMoved >= scratchMoved {
		t.Fatalf("elastic moved %.1f%% of vertices, scratch moved %.1f%% — not incremental",
			100*elasticMoved, 100*scratchMoved)
	}
	if elasticMoved > 0.6 {
		t.Fatalf("elastic moved %.1f%% of vertices — effectively a recompute", 100*elasticMoved)
	}

	// Quality: cut ratio within 10% of from-scratch.
	scratchCut := 1 - metrics.Phi(w, scratchRes.Labels)
	if snap.CutRatio > scratchCut*1.10+0.01 {
		t.Fatalf("elastic cut %.4f not within 10%% of scratch cut %.4f", snap.CutRatio, scratchCut)
	}
}

// Acceptance criterion: concurrent lookups stay valid and race-clean while
// an in-flight restabilization (triggered by concurrent mutation batches)
// runs underneath. Run with -race.
func TestStoreConcurrentLookupsDuringRestabilization(t *testing.T) {
	g := gen.WattsStrogatz(3000, 8, 0.2, 23)
	w := graph.Convert(g)
	p, err := core.NewPartitioner(storeOpts(4, 7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.PartitionWeighted(w)
	if err != nil {
		t.Fatal(err)
	}
	shadow := w.Clone()
	st, err := New(w, res.Labels, Config{Options: storeOpts(4, 7), DegradeFactor: 1.01, DegradeSlack: 0.0001})
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var lookupsDone sync.WaitGroup
	var invalid atomic.Int64
	for r := 0; r < 4; r++ {
		lookupsDone.Add(1)
		go func(r int) {
			defer lookupsDone.Done()
			v := graph.VertexID(r * 31)
			var lastVersion uint64
			for !stop.Load() {
				snap := st.Snapshot()
				if snap.Version < lastVersion {
					invalid.Add(1) // versions must be monotonic per reader
				}
				lastVersion = snap.Version
				l, ok := st.Lookup(v % graph.VertexID(len(snap.Labels)))
				if !ok || l < 0 || int(l) >= snap.K {
					// The vertex may be beyond a *newer* snapshot's range;
					// invalid only when inside and mislabeled.
					if ok {
						invalid.Add(1)
					}
				}
				v += 7
			}
		}(r)
	}

	// Writer: degrade locality hard so a restabilization must trigger, and
	// keep batches flowing while it runs.
	deadline := time.After(20 * time.Second)
	for batch := 0; ; batch++ {
		mut := gen.GrowthBatch(shadow, 0.01, uint64(100+batch))
		if _, err := mut.Apply(shadow); err != nil {
			t.Fatal(err)
		}
		cp := &graph.Mutation{NewEdges: append([]graph.WeightedEdgeRecord(nil), mut.NewEdges...)}
		if err := st.Submit(cp); err != nil {
			t.Fatal(err)
		}
		if st.Counters().Restabilizations.Load() >= 1 {
			break // lookups demonstrably overlapped a full run
		}
		select {
		case <-deadline:
			t.Fatal("no restabilization completed within deadline")
		default:
		}
	}
	stop.Store(true)
	lookupsDone.Wait()
	if err := st.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if invalid.Load() != 0 {
		t.Fatalf("%d invalid lookups observed", invalid.Load())
	}
	c := st.Counters().Snapshot()
	if c.Lookups == 0 || c.BatchesApplied == 0 || c.Restabilizations == 0 {
		t.Fatalf("concurrency test exercised nothing: %v", c)
	}
	if err := metrics.ValidateLabels(st.Snapshot().Labels, st.Snapshot().K); err != nil {
		t.Fatal(err)
	}
}

// With a fixed seed, a quiesced entry sequence must produce bit-identical
// labels across repeated runs — at 1 and at 4 workers (compared within
// each worker count, as in the core determinism tests).
func TestStoreDeterminismAcrossRuns(t *testing.T) {
	for _, workers := range []int{1, 4} {
		run := func() []int32 {
			w, labels := twoClusters(50)
			o := storeOpts(2, 9)
			o.NumWorkers = workers
			st, err := New(w, append([]int32(nil), labels...), Config{Options: o, DegradeFactor: 1.05})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			mut := &graph.Mutation{NewVertices: 5}
			for i := 0; i < 60; i++ {
				mut.NewEdges = append(mut.NewEdges, graph.WeightedEdgeRecord{
					U: graph.VertexID(i % 50), V: graph.VertexID(50 + (i*3)%50), Weight: 2})
			}
			for i := 0; i < 5; i++ {
				mut.NewEdges = append(mut.NewEdges, graph.WeightedEdgeRecord{
					U: graph.VertexID(100 + i), V: graph.VertexID(i), Weight: 2})
			}
			if err := st.Submit(mut); err != nil {
				t.Fatal(err)
			}
			if err := st.Quiesce(); err != nil {
				t.Fatal(err)
			}
			if err := st.Resize(4); err != nil {
				t.Fatal(err)
			}
			if err := st.Quiesce(); err != nil {
				t.Fatal(err)
			}
			snap := st.Snapshot()
			if snap.K != 4 {
				t.Fatalf("k = %d", snap.K)
			}
			return snap.Labels
		}
		a, b := run(), run()
		if len(a) != len(b) {
			t.Fatalf("workers=%d: label counts differ %d vs %d", workers, len(a), len(b))
		}
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("workers=%d: label of vertex %d differs: %d vs %d", workers, v, a[v], b[v])
			}
		}
	}
}

// White-box: the bounded log applies backpressure. The loop is wedged by
// an artificial in-flight restabilization so entries pile up.
func TestStoreLogBackpressure(t *testing.T) {
	s := &Store{
		log:    make(chan logEntry, 2),
		closed: make(chan struct{}),
	}
	m := &graph.Mutation{}
	if err := s.TrySubmit(m); err != nil {
		t.Fatal(err)
	}
	if err := s.TrySubmit(m); err != nil {
		t.Fatal(err)
	}
	if err := s.TrySubmit(m); !errors.Is(err, ErrLogFull) {
		t.Fatalf("TrySubmit on full log = %v, want ErrLogFull", err)
	}
	close(s.closed)
	if err := s.TrySubmit(m); !errors.Is(err, ErrClosed) {
		t.Fatalf("TrySubmit after close = %v, want ErrClosed", err)
	}
	if err := s.Submit(m); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after close = %v, want ErrClosed", err)
	}
	if err := s.Resize(5); !errors.Is(err, ErrClosed) {
		t.Fatalf("Resize after close = %v, want ErrClosed", err)
	}
}

func TestStoreCloseIsIdempotentAndLookupsSurvive(t *testing.T) {
	w, labels := twoClusters(20)
	st, err := New(w, labels, Config{Options: storeOpts(2, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Lookup(3); !ok {
		t.Fatal("lookup failed after Close")
	}
	if err := st.Submit(&graph.Mutation{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v", err)
	}
	if err := st.Quiesce(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Quiesce after Close = %v", err)
	}
}

func TestBootstrap(t *testing.T) {
	g := gen.WattsStrogatz(500, 6, 0.2, 3)
	st, err := Bootstrap(g, Config{Options: storeOpts(4, 3)})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	snap := st.Snapshot()
	if len(snap.Labels) != 500 || snap.K != 4 {
		t.Fatalf("bootstrap snapshot %+v", snap)
	}
	if err := metrics.ValidateLabels(snap.Labels, 4); err != nil {
		t.Fatal(err)
	}
}
