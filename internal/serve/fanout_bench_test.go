package serve

// BenchmarkWatchFanout measures the change-feed fan-out at the hub
// level: one publisher churning label-run deltas into the ring while N
// subscribers drain it concurrently, the shape of a spinnerd carrying N
// /v1/watch streams. Two modes bracket the design space:
//
//   - mode=shared: subscribers append the memoized FramedDelta.Frame
//     bytes (the encode-once path /v1/watch uses). The headline metric
//     is encodes/op staying at 1.0 as subscribers grow 256 → 10240.
//   - mode=encode-per-sub: subscribers re-encode and re-frame every
//     delta themselves (the pre-memoization per-stream cost), so
//     encodes/op and ns/op grow linearly with the subscriber count.
//
// Each op is one publication, timed end to end: publish, wake, and
// every subscriber draining through the final sequence. encodes/op and
// the p99 publish→delivery latency are reported as extra metrics and
// land in BENCH_pr10.json via scripts/bench.sh (make bench-watch).

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/metrics"
)

func benchWatchFanout(b *testing.B, subs int, encodePerSub bool) {
	const (
		ringMax = 4096
		batch   = 64 // mirrors the /v1/watch handler's per-wakeup batch
	)
	h := newDeltaHub(ringMax)
	hist := &metrics.Histogram{}
	var subEncodes atomic.Int64

	// Publications are dense from 1, so b.N publishes end at seq b.N.
	lastSeq := uint64(b.N)
	var wg sync.WaitGroup
	for i := 0; i < subs; i++ {
		sub := h.subscribe()
		wg.Add(1)
		go func(sub *DeltaSub) {
			defer wg.Done()
			defer sub.Cancel()
			var cursor uint64
			buf := make([]byte, 0, 8192)
			for cursor < lastSeq {
				fds, _ := h.framedSince(cursor, batch)
				if len(fds) == 0 {
					// Caught up to the ring (or past a compacted gap —
					// either way nothing to read): park for the coalesced
					// wakeup. The ring snapshot is stored before the
					// token is sent, so read-then-park never misses.
					<-sub.C()
					continue
				}
				buf = buf[:0]
				for i := range fds {
					if encodePerSub {
						// The old per-stream cost: every subscriber
						// re-encodes and re-CRCs every delta.
						payload := EncodeDelta(fds[i].Delta)
						subEncodes.Add(1)
						buf = AppendWatchFrame(buf, WatchFrame{Kind: WatchDelta, Delta: payload})
					} else {
						buf = append(buf, fds[i].Frame...)
					}
				}
				hist.Record(fds[len(fds)-1].Elapsed())
				// A slow subscriber that the ring compacted past resumes
				// from the floor: fds starts there, so the cursor jump is
				// implicit.
				cursor = fds[len(fds)-1].Delta.Seq
			}
		}(sub)
	}

	// 64 changed labels per publication — low-churn barrier deltas, the
	// steady-state frame mix on a live store.
	labels := make([]int32, 64)
	for i := range labels {
		labels[i] = int32(i % 7)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		h.publish(&Delta{
			Epoch: 1, K: 4, N: 8192,
			Runs:  []LabelRun{{Start: (n * 64) % 8192, Labels: labels}},
			Cross: int64(n), Total: 8192,
		})
	}
	wg.Wait() // every subscriber drained through lastSeq
	b.StopTimer()

	encodes := h.encodes.Load() + subEncodes.Load()
	b.ReportMetric(float64(encodes)/float64(b.N), "encodes/op")
	b.ReportMetric(float64(hist.Snapshot().Quantile(0.99)), "p99-delivery-ns/op")
}

func BenchmarkWatchFanout(b *testing.B) {
	for _, subs := range []int{256, 2048, 10240} {
		b.Run(fmt.Sprintf("mode=shared/subs=%d", subs), func(b *testing.B) {
			benchWatchFanout(b, subs, false)
		})
	}
	// The linear baseline: per-subscriber encode cost. 10240 is omitted —
	// the point (encodes/op == subs, ns/op scaling with it) is already
	// unmistakable at 2048.
	for _, subs := range []int{256, 2048} {
		b.Run(fmt.Sprintf("mode=encode-per-sub/subs=%d", subs), func(b *testing.B) {
			benchWatchFanout(b, subs, true)
		})
	}
}
