package serve

import (
	"sync/atomic"

	"repro/internal/graph"
)

// batchTracker counts down the shards working one broadcast — a single
// submitted batch or a coalesced run of them; the shard finishing last
// resolves every batch the broadcast carried.
type batchTracker struct {
	remaining atomic.Int32
	batches   int64 // submitted batches riding this broadcast
	edges     int64 // their total edge count
}

// barrier synchronizes the coordinator with every shard: each shard acks
// and parks until resume closes, handing the coordinator exclusive access
// to all shard-owned state (labels, adjacency rows, cut counters). An
// optional work step runs in each shard goroutine before the ack — the
// hook the parallel reconcile pass uses to recompute per-shard counters
// inside the shards instead of serially on the coordinator. Work running
// in shard A may overlap shard B still applying earlier entries, which is
// safe for reads of A's own rows (single writer per row range) and of the
// labels (frozen outside barriers).
type barrier struct {
	ack    chan struct{}
	resume chan struct{}
	work   func(*shard)
}

// shardEntry is one unit of shard work: a broadcast of one or more
// coalesced fast-path batches (sent to every shard; each picks out the
// arcs whose rows it owns) or a barrier.
type shardEntry struct {
	muts    []*graph.Mutation // read-only; shared by all shards
	tracker *batchTracker
	barrier *barrier
}

// shardSnap is the immutable per-shard snapshot readers resolve against
// and the store composes into the global view. labels[i] is the label of
// vertex lo+i. On the fast path labels never change, so successive
// snapshots share one label slice; relabeling events publish fresh copies
// under a barrier.
type shardSnap struct {
	lo      int
	labels  []int32
	k       int
	epoch   uint64
	version uint64
	pubGen  uint64  // label generation; bumped by every barrier relabel
	cross   int64   // cut weight of the edges this shard owns
	total   int64   // total weight of the edges this shard owns
	perPart []int64 // per-partition external weight of owned cut edges
}

func (sn *shardSnap) lookup(v graph.VertexID) (int32, bool) {
	i := int(v) - sn.lo
	if i < 0 || i >= len(sn.labels) {
		return -1, false
	}
	return sn.labels[i], true
}

// shard owns a contiguous vertex range: the adjacency rows of the shared
// graph in [lo, hi), and the incremental cut counters of the edges it owns
// (an undirected edge {u,v} with u < v belongs to the shard whose range
// contains u). Between barriers the shard goroutine is the sole writer of
// this state and the shared label slice is frozen, so locality tests need
// no synchronization; during a barrier the parked shard cedes everything
// to the coordinator.
type shard struct {
	st *Store
	id int

	log  chan shardEntry
	done chan struct{}

	w       *graph.Weighted
	labels  []int32 // authoritative global labels; written only under barrier
	lo, hi  int
	k       int
	epoch   uint64
	version uint64
	pubGen  uint64
	cross   int64
	total   int64
	perPart []int64
	dEdges  int64 // owned edges inserted since the last barrier fold
	dWeight int64 // their total weight
	dirty   bool  // counters changed since the last publication

	snap atomic.Pointer[shardSnap]
}

func (sh *shard) run() {
	defer close(sh.done)
	for e := range sh.log {
		if e.barrier != nil {
			if sh.dirty {
				sh.publishDelta() // coalesced counters must land first
			}
			if e.barrier.work != nil {
				e.barrier.work(sh)
			}
			e.barrier.ack <- struct{}{}
			<-e.barrier.resume
			continue
		}
		sh.apply(e)
	}
}

// apply lands one broadcast of coalesced fast-path batches: the shard
// scans each (coordinator-validated, shared, read-only) edge list,
// inserts the arcs whose rows it owns, and folds O(batch) cut-counter
// deltas for the edges it owns (lower endpoint in range) — the
// incremental replacement for the seed's exact O(E) recompute per swap.
// A multi-batch broadcast pays the queue hop, the counter fold and the
// snapshot publication once for the whole run. Scanning in the shard
// rather than routing in the coordinator keeps the serial per-batch work
// O(1)+send, so adding shards scales the heavy part (row appends,
// cache-missing label reads).
func (sh *shard) apply(e shardEntry) {
	lo, hi := graph.VertexID(sh.lo), graph.VertexID(sh.hi)
	touched := false
	for _, m := range e.muts {
		owned := false
		for _, ed := range m.NewEdges {
			u, v, wgt := ed.U, ed.V, ed.Weight
			if wgt <= 0 {
				wgt = 1
			}
			if u > v {
				u, v = v, u
			}
			if u >= lo && u < hi {
				sh.w.InsertArc(u, v, wgt)
				owned = true
				w64 := int64(wgt)
				sh.total += w64
				sh.dEdges++
				sh.dWeight += w64
				if lu, lv := sh.labels[u], sh.labels[v]; lu != lv {
					sh.cross += w64
					sh.perPart[lu] += w64
					sh.perPart[lv] += w64
				}
			}
			if v >= lo && v < hi {
				sh.w.InsertArc(v, u, wgt)
				owned = true
			}
		}
		if owned {
			touched = true
			sh.st.ctr.ShardBatches.Add(1)
		}
	}
	if touched {
		// Coalesce publication under burst: when more work is already
		// queued, fold these counters into the next publication — the
		// snapshot a reader misses here is at most one log turn stale,
		// and a pending barrier flushes before parking.
		sh.dirty = true
		if len(sh.log) == 0 {
			sh.publishDelta()
		}
	}
	if e.tracker.remaining.Add(-1) == 0 {
		sh.st.finishBatch(e.tracker)
	}
}

// publishDelta swaps in a snapshot that reuses the previous label copy —
// the fast path never relabels, so publication costs O(k), independent of
// the range size.
func (sh *shard) publishDelta() {
	prev := sh.snap.Load()
	sh.dirty = false
	sh.version++
	sh.snap.Store(&shardSnap{
		lo: sh.lo, labels: prev.labels, k: sh.k, epoch: sh.epoch,
		version: sh.version, pubGen: sh.pubGen, cross: sh.cross, total: sh.total,
		perPart: append([]int64(nil), sh.perPart...),
	})
	sh.st.ctr.SnapshotSwaps.Add(1)
}

// publishFresh copies the label segment. Coordinator-only, under a
// barrier, after any relabeling or range change.
func (sh *shard) publishFresh() {
	sh.dirty = false
	sh.version++
	seg := make([]int32, sh.hi-sh.lo)
	copy(seg, sh.labels[sh.lo:sh.hi])
	sh.snap.Store(&shardSnap{
		lo: sh.lo, labels: seg, k: sh.k, epoch: sh.epoch,
		version: sh.version, pubGen: sh.pubGen, cross: sh.cross, total: sh.total,
		perPart: append([]int64(nil), sh.perPart...),
	})
	sh.st.ctr.SnapshotSwaps.Add(1)
}

// routeTable is the immutable vertex→shard router, swapped atomically when
// the vertex space grows or shard boundaries rebalance. Readers take one
// atomic load of the table and one of the target shard's snapshot; both
// sides bounds-check, so a reader interleaving with a republication sees a
// miss rather than an inconsistent label.
type routeTable struct {
	n      int
	bounds []int // len(shards)+1; shard i owns [bounds[i], bounds[i+1])
	shards []*shard
}

func (rt *routeTable) shardOf(v graph.VertexID) *shard {
	return rt.shards[rangeIndex(rt.bounds, v)]
}

// rangeIndex returns i such that bounds[i] <= v < bounds[i+1], clamping
// out-of-range v into the nearest shard (callers bounds-check separately).
// Shard counts are small (≈ core count), so a linear scan beats a binary
// search on the routing hot path.
func rangeIndex(bounds []int, v graph.VertexID) int {
	last := len(bounds) - 2
	for i := 0; i < last; i++ {
		if int(v) < bounds[i+1] {
			return i
		}
	}
	return last
}
