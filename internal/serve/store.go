// Package serve is the live partition-maintenance service: the
// production-shaped layer that turns Spinner's batch algorithms into a
// long-running system answering vertex→partition lookups under heavy
// concurrent traffic while the partitioning evolves underneath — the
// paper's core claim (§III-D/E) that partitions are *maintained*, not
// recomputed.
//
// # Architecture
//
// A Store is split into N shards, each owning a contiguous vertex range
// (its adjacency rows, its segment of the labeling, and the incremental
// cut counters of the edges whose lower endpoint falls in the range),
// coordinated by one control goroutine. Three planes:
//
//   - Read plane: a lookup loads the immutable vertex→shard route table
//     through one atomic pointer and the target shard's immutable snapshot
//     through another. No locks, no contention with writers; a published
//     snapshot is never mutated, so readers hold it as long as they like.
//   - Write plane: graph.Mutation batches enter a bounded mutation log (a
//     buffered channel). Submit blocks for backpressure, TrySubmit fails
//     fast with ErrLogFull. The coordinator runs a staged commit pipeline:
//     each turn it drains EVERYTHING pending in the log, journals the
//     drained entries as one wal group (one write + one fsync on durable
//     stores — group commit), then applies them in order, merging each
//     maximal run of consecutive add-only batches into a single shard
//     broadcast (coalesced apply: one scan, one cut-delta fold, one
//     snapshot publication per shard for the whole run). Edge-addition
//     batches between existing vertices — the high-rate churn case —
//     broadcast to every shard: each picks out the arcs whose rows it
//     owns (two compares per edge), appends them, and folds an O(batch)
//     delta into its cut counters (labels are frozen between barriers, so
//     no synchronization is needed), then publishes an O(k) snapshot that
//     reuses the previous label copy. Batches that append vertices or
//     remove edges take the barrier path: the coordinator parks every
//     shard, applies the batch atomically to the merged graph, seeds new
//     vertices least-loaded (§III-D), folds the batch's exact cut deltas
//     into the owning shards (graph.Mutation.CutEdits), and republishes.
//   - Maintenance plane: the coordinator tracks the composed cut ratio
//     cross/total from integer per-shard counters — O(shards) per check
//     instead of the seed's exact O(E) recompute per swap. Past the
//     degradation threshold it barriers the shards, clones the merged
//     graph, and restabilizes in a background goroutine (§III-D) while the
//     shards keep ingesting and serving. Completed runs merge back under a
//     barrier and scatter per shard; mid-run per-iteration labelings
//     publish the same way. Elastic k→k′ (§III-E) relabels the n/(k+n)
//     fraction under a barrier and repairs in the background; in-flight
//     runs from the old k-space are discarded. Every ReconcileEvery
//     applied batches a reconciliation pass recomputes the per-shard
//     counters exactly (they must match bit-for-bit — the deltas are
//     integer arithmetic) and rebalances shard boundaries by weighted
//     degree (cluster.BalancedRanges).
//
// Determinism: with a fixed Options.Seed, a quiesced submit/await sequence
// yields identical labels regardless of worker count, shard count, or
// wall-clock timing: fast-path batches never relabel, every relabeling
// event runs under a barrier on the merged graph, and restabilization
// seeds derive from the run epoch. (Unquiesced sequences interleave merges
// with ingest nondeterministically, as any live system does.)
package serve

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/wal"
)

// Errors returned by the submission paths.
var (
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("serve: store closed")
	// ErrLogFull is returned by TrySubmit when the bounded mutation log is
	// at capacity (backpressure; retry or fall back to Submit).
	ErrLogFull = errors.New("serve: mutation log full")
)

// Config tunes a Store.
type Config struct {
	// Options configures the partitioner used for restabilization and
	// elastic repair. Options.K is the initial partition count. The zero
	// value of a field falls back to core defaults via normalization.
	Options core.Options
	// LogDepth bounds the mutation log; Submit blocks (and TrySubmit
	// fails) when this many entries are pending. Default 64.
	LogDepth int
	// DegradeFactor triggers a restabilization run when the tracked cut
	// ratio exceeds baseline·DegradeFactor + DegradeSlack, where baseline
	// is the cut ratio achieved by the last stabilization. Default 1.10
	// (10% degradation).
	DegradeFactor float64
	// DegradeSlack is the additive term of the trigger, guarding against a
	// zero baseline on perfectly separable graphs. Default 0.005.
	DegradeSlack float64
	// MidRunOff disables the per-iteration snapshot publication from
	// in-flight restabilization runs (on by default).
	MidRunOff bool
	// Shards is the number of contiguous vertex-range shards mutation
	// application parallelizes over (clamped to the vertex count).
	// Default 1 — a single shard reproduces the unsharded timing exactly;
	// serving deployments set it near the core count.
	Shards int
	// ShardLogDepth bounds each shard's sub-batch log. Default 32.
	ShardLogDepth int
	// ReconcileEvery runs the exact cut reconciliation and shard-boundary
	// rebalance after this many applied batches. Default 512; negative
	// disables (the incremental integer deltas are exact, so this is a
	// safety net and a rebalance point, not a correctness requirement).
	ReconcileEvery int
	// DeltaRing bounds the change-feed publication ring (delta.go): how
	// many Delta records stay retrievable for watch consumers before the
	// compaction floor rises past them. Default 1024.
	DeltaRing int
	// Durability tunes the journal + checkpoint subsystem. Only the
	// durable constructors (NewDurable, BootstrapDurable, Open) read it;
	// New and Bootstrap build in-memory stores regardless.
	Durability DurabilityConfig
	// Quota tunes per-tenant admission control and fair draining; the
	// zero value admits everything and weighs all tenants equally.
	Quota QuotaConfig
	// Overload tunes the degradation budget; the zero value never
	// declares overload.
	Overload OverloadConfig
	// LookupSampleEvery times one in N lookups into the lookup-latency
	// histogram (N is rounded up to a power of two). Timing every lookup
	// would roughly double the ~50ns lock-free path, so sampling keeps
	// the instrumented cost within noise while still filling the
	// histogram quickly at serving rates. 0 means the default 256;
	// negative disables lookup timing entirely.
	LookupSampleEvery int
}

func (c *Config) normalize() error {
	// Validate the partitioner configuration up front so a misconfigured
	// store fails at construction, not at the first background run.
	if _, err := core.NewPartitioner(c.Options); err != nil {
		return err
	}
	if c.LogDepth == 0 {
		c.LogDepth = 64
	}
	if c.LogDepth < 1 {
		return fmt.Errorf("serve: LogDepth=%d", c.LogDepth)
	}
	if c.DegradeFactor == 0 {
		c.DegradeFactor = 1.10
	}
	if c.DegradeFactor < 1 {
		return fmt.Errorf("serve: DegradeFactor=%v, want >= 1", c.DegradeFactor)
	}
	if c.DegradeSlack == 0 {
		c.DegradeSlack = 0.005
	}
	if c.DegradeSlack < 0 {
		return fmt.Errorf("serve: negative DegradeSlack")
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Shards < 1 {
		return fmt.Errorf("serve: Shards=%d", c.Shards)
	}
	if c.ShardLogDepth == 0 {
		c.ShardLogDepth = 32
	}
	if c.ShardLogDepth < 1 {
		return fmt.Errorf("serve: ShardLogDepth=%d", c.ShardLogDepth)
	}
	if c.ReconcileEvery == 0 {
		c.ReconcileEvery = 512
	}
	if c.DeltaRing == 0 {
		c.DeltaRing = 1024
	}
	if c.DeltaRing < 1 {
		return fmt.Errorf("serve: DeltaRing=%d", c.DeltaRing)
	}
	if c.LookupSampleEvery == 0 {
		c.LookupSampleEvery = 256
	}
	if err := c.Quota.normalize(); err != nil {
		return err
	}
	return c.Overload.normalize()
}

// Snapshot is an immutable composed view of the partitioning. Lookups
// resolve against exactly one per-shard snapshot; Snapshot composes all of
// them for callers that want the global labeling and counters.
type Snapshot struct {
	// Labels maps vertex → partition; len(Labels) is the vertex count at
	// publication. The slice is immutable: neither the Store nor callers
	// may write to it.
	Labels []int32
	// K is the partition count this snapshot's labels live in.
	K int
	// Version counts snapshot publications, summed over shards
	// (monotonically increasing).
	Version uint64
	// AppliedBatches counts mutation batches resolved (applied or
	// rejected) at composition time.
	AppliedBatches uint64
	// Epoch counts restabilization merges reflected in this snapshot.
	Epoch uint64
	// CutRatio is CutWeight/TotalWeight: the fraction of edge weight
	// crossing partitions (1−φ), tracked incrementally in integers.
	CutRatio float64
	// CutWeight and TotalWeight are the integer cut counters the ratio
	// derives from; CutByPartition is each partition's external weight
	// (a cut edge contributes its weight to both endpoints' partitions).
	CutWeight      int64
	TotalWeight    int64
	CutByPartition []int64
	// Shards is the shard count the view was composed from.
	Shards int
}

// Lookup resolves one vertex against the composed snapshot.
func (s *Snapshot) Lookup(v graph.VertexID) (int32, bool) {
	if v < 0 || int(v) >= len(s.Labels) {
		return -1, false
	}
	return s.Labels[v], true
}

// logEntry is one unit of maintenance work: a mutation batch, an elastic
// resize, a quiesce sentinel, or a recovery-control message (journal
// attach / forced reconcile), all ordered through the same log.
type logEntry struct {
	mut       *graph.Mutation
	newK      int        // >0: elastic resize
	quiesce   chan error // non-nil: reply when drained and stable
	attach    *attachReq // non-nil: adopt the journal after replay
	reconcile chan error // non-nil: run the exact pass now and reply
	ten       *tenantState
	seq       uint64 // arrival order, stamped by route; restores FIFO after DRR picking
}

// restabResult carries a completed background run back to the loop.
type restabResult struct {
	gen    uint64 // resize generation the run belongs to
	base   int    // vertex count the run saw
	labels []int32
	err    error
}

// midrunNote carries one per-iteration labeling out of an in-flight run.
// Only the latest unconsumed note is kept (older ones are superseded).
// Notes are stamped with both the resize generation and the epoch the run
// started at, so a leftover note from a completed run can never merge into
// a successor run's window.
type midrunNote struct {
	gen    uint64
	epoch  uint64
	base   int
	labels []int32
}

// Store is the live partition-maintenance service. See the package comment
// for the architecture. All exported methods are safe for concurrent use.
type Store struct {
	cfg    Config
	ctr    metrics.ServeCounters
	router atomic.Pointer[routeTable]
	deltas *deltaHub // change-feed ring; internally synchronized

	// Observability plane (instrument.go): the named-series registry the
	// whole process shares, the per-stage pipeline histograms, and the
	// sampled lookup-latency histogram with its sampling mask.
	reg        *metrics.Registry
	stageHist  [numStages]*metrics.Histogram
	lookupHist *metrics.Histogram
	lookupMask uint64

	submitted atomic.Int64 // batches submitted (staleness numerator)
	applied   atomic.Int64 // batches resolved (applied or rejected)
	lastErr   atomic.Pointer[error]

	log       chan logEntry
	batchDone chan struct{} // capacity 1; shards poke after resolving a batch
	closed    chan struct{} // closes when Close is called
	done      chan struct{} // closes when the coordinator exits

	// Admission state, shared between submitters and the coordinator.
	tenantsMu sync.Mutex
	tenants   map[string]*tenantState // lazily created on first submission
	now       func() time.Time        // test clock; nil means time.Now

	// Resize target: the current k composed with every queued resize.
	// Resize claims newK against it atomically, so a duplicate request
	// fails typed (ErrKUnchanged) instead of racing the coordinator.
	kMu     sync.Mutex
	targetK int

	// Overload / fail-stop state (written by the coordinator, read
	// anywhere).
	degraded   atomic.Bool   // journal poisoned; writes refuse with ErrDegraded
	overloaded atomic.Bool   // degradation budget engaged
	drainRate  atomic.Uint64 // EWMA resolved batches/sec (float64 bits)
	lookupRate atomic.Uint64 // EWMA lookups/sec (float64 bits)

	// Replication state (see replication.go). readOnly marks a follower
	// store: external writes refuse with ErrReadOnly while the replicated
	// apply path keeps flowing. journalSeq mirrors durable.lastSeq for
	// lock-free readers, and jrnLive exposes the attached journal to the
	// retention plumbing without entering the coordinator.
	readOnly   atomic.Bool
	journalSeq atomic.Uint64
	jrnLive    atomic.Pointer[wal.Journal]

	// Coordinator state (no locks: single owner between barriers).
	w               *graph.Weighted
	labels          []int32
	k               int
	shards          []*shard
	bounds          []int
	gen             uint64  // bumped by every resize; stamps in-flight runs
	epoch           uint64  // completed restabilization merges
	baseline        float64 // cut ratio achieved by the last stabilization
	wantRestab      bool    // forced run requested (elastic repair)
	appliedAtRestab int64   // batches resolved when the last run started
	lastReconcile   int64   // batches resolved at the last exact pass
	affected        map[graph.VertexID]struct{}
	pubGen          uint64 // bumped per barrier relabel/rebalance publication round
	inflight        bool
	restabDone      chan restabResult
	midrun          chan midrunNote // capacity 1; latest-wins mailbox
	ckptDone        chan ckptResult // capacity 1; background checkpointer reply
	quiescers       []chan error
	d               *durable // nil on in-memory stores

	// Fair-drain state (coordinator-only).
	ring              []*tenantState // tenants with a registered queue, first-seen order
	cursor            int            // DRR rotation point in ring
	controlQ          []logEntry     // routed control entries awaiting the next group
	queued            int            // mutation entries parked in tenant queues
	arrival           uint64         // monotonic arrival stamp
	groupBuf          []logEntry     // group-formation buffer, reused across turns
	loadAt            time.Time      // load-sampling state (updateLoad)
	loadLookups       int64
	loadApplied       int64
	restabDeferred    bool // current overload episode already counted a deferred restab
	reconcileDeferred bool
}

// New builds a Store over an already-partitioned weighted graph. The Store
// takes ownership of w and labels: the caller must not use either again.
// len(labels) must equal w.NumVertices() and every label must be inside
// [0, cfg.Options.K).
func New(w *graph.Weighted, labels []int32, cfg Config) (*Store, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	s, err := newStore(w, labels, cfg)
	if err != nil {
		return nil, err
	}
	s.start()
	return s, nil
}

// newStore builds the store and its shards without starting the
// goroutines, so the durable constructors can checkpoint or restore state
// while they still own it exclusively. cfg must already be normalized.
func newStore(w *graph.Weighted, labels []int32, cfg Config) (*Store, error) {
	if len(labels) != w.NumVertices() {
		return nil, fmt.Errorf("serve: %d labels for %d vertices", len(labels), w.NumVertices())
	}
	if err := metrics.ValidateLabels(labels, cfg.Options.K); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if n := w.NumVertices(); cfg.Shards > n {
		cfg.Shards = max(1, n)
	}
	s := &Store{
		cfg:        cfg,
		deltas:     newDeltaHub(cfg.DeltaRing),
		log:        make(chan logEntry, cfg.LogDepth),
		batchDone:  make(chan struct{}, 1),
		closed:     make(chan struct{}),
		done:       make(chan struct{}),
		w:          w,
		labels:     labels,
		k:          cfg.Options.K,
		targetK:    cfg.Options.K,
		affected:   make(map[graph.VertexID]struct{}),
		restabDone: make(chan restabResult, 1),
		midrun:     make(chan midrunNote, 1),
		ckptDone:   make(chan ckptResult, 1),
	}
	s.initMetrics()
	if w.NumVertices() == 0 {
		s.bounds = []int{0, 0}
	} else {
		s.bounds = cluster.BalancedRanges(w, cfg.Shards)
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{
			st: s, id: i,
			log:  make(chan shardEntry, cfg.ShardLogDepth),
			done: make(chan struct{}),
			w:    w, labels: labels,
			lo: s.bounds[i], hi: s.bounds[i+1],
			k: s.k,
		}
		sh.cross, sh.total, sh.perPart = metrics.CutWeightsRange(w, labels, s.k, sh.lo, sh.hi)
		sh.publishFresh()
		s.shards = append(s.shards, sh)
	}
	s.publishRouter()
	s.baseline = s.ownedCut()
	s.emitBaselineDelta()
	return s, nil
}

// start launches the shard and coordinator goroutines.
func (s *Store) start() {
	for _, sh := range s.shards {
		go sh.run()
	}
	go s.loop()
}

// Bootstrap partitions g from scratch and starts a Store over the result —
// the one-call path for drivers.
func Bootstrap(g *graph.Graph, cfg Config) (*Store, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	w := graph.Convert(g)
	p, err := core.NewPartitioner(cfg.Options)
	if err != nil {
		return nil, err
	}
	res, err := p.PartitionWeighted(w)
	if err != nil {
		return nil, err
	}
	return New(w, res.Labels, cfg)
}

// Lookup returns the partition of v in the owning shard's current
// snapshot: one atomic load of the route table, one of the shard snapshot.
// The second return is false when v is not (yet) visible: either never
// created, or appended by a batch whose snapshot has not been published.
func (s *Store) Lookup(v graph.VertexID) (int32, bool) {
	// Latency sampling rides the counter every lookup already pays for:
	// unsampled lookups add one mask compare (~1ns), sampled ones pay the
	// two clock reads. See Config.LookupSampleEvery.
	n := s.ctr.Lookups.Add(1)
	sampled := uint64(n)&s.lookupMask == 0
	var t0 time.Time
	if sampled {
		t0 = time.Now()
	}
	if lag := s.submitted.Load() - s.applied.Load(); lag > 0 {
		s.ctr.StalenessSum.Add(lag)
	}
	for {
		rt := s.router.Load()
		if v < 0 || int(v) >= rt.n {
			s.ctr.LookupMisses.Add(1)
			if sampled {
				s.lookupHist.Record(time.Since(t0))
			}
			return -1, false
		}
		if l, ok := rt.shardOf(v).snap.Load().lookup(v); ok {
			if sampled {
				s.lookupHist.Record(time.Since(t0))
			}
			return l, true
		}
		// The router says v exists but the routed snapshot does not cover
		// it: the sweep raced a boundary republication (growth or
		// rebalance). The coordinator finishes publishing in straight-line
		// code, so a retry converges; a miss is never reported for a
		// vertex the published vertex space contains.
	}
}

// Snapshot composes the per-shard snapshots into one immutable global
// view. A sweep that interleaves with a boundary republication (growth or
// rebalance, both rare) can catch shards from different layouts; the
// sweep retries until the captured ranges tile the vertex space exactly,
// so the composed labels have no gaps or overlaps and every edge is
// counted by exactly one owner. Each composition allocates; lookups
// should use Lookup, which resolves against a single shard without
// composing.
func (s *Store) Snapshot() *Snapshot {
	rt := s.router.Load()
	snaps := make([]*shardSnap, len(rt.shards))
	for {
		consistent := true
		end := 0
		for i, sh := range rt.shards {
			sn := sh.snap.Load()
			snaps[i] = sn
			// The sweep must capture one publication round: ranges tiling
			// the vertex space exactly AND a single label generation —
			// tiling alone would accept a mix of pre- and post-relabel
			// segments whose boundaries happen to agree.
			if sn.lo != end || sn.pubGen != snaps[0].pubGen {
				consistent = false
			}
			end = sn.lo + len(sn.labels)
		}
		if consistent {
			break
		}
		// Mid-republication; the coordinator finishes in straight-line
		// code, so a re-sweep converges promptly.
	}
	k := 1
	var version, epoch uint64
	var cross, total int64
	maxEnd := 0
	for _, sn := range snaps {
		if end := sn.lo + len(sn.labels); end > maxEnd {
			maxEnd = end
		}
		if sn.k > k {
			k = sn.k
		}
		if sn.epoch > epoch {
			epoch = sn.epoch
		}
		version += sn.version
		cross += sn.cross
		total += sn.total
	}
	labels := make([]int32, maxEnd)
	perPart := make([]int64, k)
	for _, sn := range snaps {
		copy(labels[sn.lo:], sn.labels)
		for l, wgt := range sn.perPart {
			if l < k {
				perPart[l] += wgt
			}
		}
	}
	return &Snapshot{
		Labels:         labels,
		K:              k,
		Version:        version,
		AppliedBatches: uint64(s.applied.Load()),
		Epoch:          epoch,
		CutRatio:       cutRatio(cross, total),
		CutWeight:      cross,
		TotalWeight:    total,
		CutByPartition: perPart,
		Shards:         len(rt.shards),
	}
}

// K returns the current partition count without composing a full
// snapshot: O(shards) atomic loads, no label copying. During an elastic
// transition it reports the larger of the two k-spaces, matching the
// composed Snapshot.K.
func (s *Store) K() int {
	k := 1
	for _, sh := range s.router.Load().shards {
		if sn := sh.snap.Load(); sn.k > k {
			k = sn.k
		}
	}
	return k
}

// Counters exposes the serving metrics.
func (s *Store) Counters() *metrics.ServeCounters { return &s.ctr }

// Metrics exposes the store's named-series registry. It is the
// process-wide home for histograms and gauges: the API layer and the
// replication follower register their series here, so one /v1/metrics
// endpoint rendered from this registry covers the whole process.
func (s *Store) Metrics() *metrics.Registry { return s.reg }

// Err returns the most recent batch-application error, if any. Rejected
// batches do not stop the store; they are counted and dropped.
func (s *Store) Err() error {
	if p := s.lastErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Submit appends a mutation batch to the log, blocking for backpressure
// while the log is full. The Store takes ownership of m; m.Tenant
// attributes the batch for admission control and fair draining (empty is
// the default tenant). Returns ErrClosed after Close, ErrDegraded after
// a storage fault, and a QuotaError (errors.Is ErrQuotaExceeded) when
// the tenant's admission bucket is empty.
func (s *Store) Submit(m *graph.Mutation) error {
	select {
	case <-s.closed:
		return ErrClosed
	default:
	}
	if s.degraded.Load() {
		return ErrDegraded
	}
	if s.readOnly.Load() {
		return ErrReadOnly
	}
	t := s.tenant(m.Tenant)
	if err := s.admit(t, false); err != nil {
		return err
	}
	select {
	case s.log <- logEntry{mut: m, ten: t}:
		s.noteSubmitted(t)
		return nil
	case <-s.closed:
		return ErrClosed
	}
}

// TrySubmit is the non-blocking Submit: ErrLogFull when the bounded log
// is at capacity or the tenant's backlog cap (Quota.TenantDepth) is
// reached.
func (s *Store) TrySubmit(m *graph.Mutation) error {
	select {
	case <-s.closed:
		return ErrClosed
	default:
	}
	if s.degraded.Load() {
		return ErrDegraded
	}
	if s.readOnly.Load() {
		return ErrReadOnly
	}
	t := s.tenant(m.Tenant)
	if err := s.admit(t, true); err != nil {
		return err
	}
	select {
	case s.log <- logEntry{mut: m, ten: t}:
		s.noteSubmitted(t)
		return nil
	case <-s.closed:
		return ErrClosed
	default:
		return ErrLogFull
	}
}

// submitReplay is Submit without admission control: recovery (Open)
// replays records the live process already admitted and journaled, and
// quota state is not persisted, so re-running admission could refuse a
// durably committed record.
func (s *Store) submitReplay(m *graph.Mutation) error {
	select {
	case <-s.closed:
		return ErrClosed
	default:
	}
	t := s.tenant(m.Tenant)
	select {
	case s.log <- logEntry{mut: m, ten: t}:
		s.noteSubmitted(t)
		return nil
	case <-s.closed:
		return ErrClosed
	}
}

// noteSubmitted counts one admitted batch against the store and tenant.
func (s *Store) noteSubmitted(t *tenantState) {
	s.submitted.Add(1)
	t.submitted.Add(1)
	t.backlog.Add(1)
}

// Resize requests an elastic change to newK partitions (§III-E). The
// relabeling of the n/(k+n) fraction is applied as soon as the entry is
// processed — lookups immediately see valid [0,newK) labels — and a
// background repair run restores locality. Ordered with Submit through the
// same log. Requesting the store's target k — the current count composed
// with every resize already queued — returns ErrKUnchanged; the check is
// atomic with the coordinator, so concurrent duplicate requests cannot
// both pass it.
func (s *Store) Resize(newK int) error {
	if newK < 1 {
		return fmt.Errorf("serve: resize to k=%d", newK)
	}
	select {
	case <-s.closed:
		return ErrClosed
	default:
	}
	if s.degraded.Load() {
		return ErrDegraded
	}
	if s.readOnly.Load() {
		return ErrReadOnly
	}
	s.kMu.Lock()
	if newK == s.targetK {
		s.kMu.Unlock()
		return ErrKUnchanged
	}
	prev := s.targetK
	s.targetK = newK
	s.kMu.Unlock()
	select {
	case s.log <- logEntry{newK: newK}:
		return nil
	case <-s.closed:
		// The claim never reached the log; restore it unless another
		// Resize raced past us (then the target is theirs to keep).
		s.kMu.Lock()
		if s.targetK == newK {
			s.targetK = prev
		}
		s.kMu.Unlock()
		return ErrClosed
	}
}

// Quiesce blocks until every entry submitted before the call has been
// applied and no restabilization is in flight or pending — the state in
// which the snapshot is fully stabilized. It returns the store's most
// recent batch-application error, if any. Used by tests and orderly
// shutdown; a serving deployment never needs it.
func (s *Store) Quiesce() error {
	reply := make(chan error, 1)
	select {
	case s.log <- logEntry{quiesce: reply}:
	case <-s.closed:
		return ErrClosed
	}
	select {
	case err := <-reply:
		return err
	case <-s.done:
		return ErrClosed
	}
}

// Close stops the coordinator and the shard goroutines and waits for them
// (and any in-flight restabilization, whose result is discarded) to exit.
// Lookups remain valid against the last published snapshots after Close.
func (s *Store) Close() error {
	select {
	case <-s.closed:
		<-s.done
		return nil
	default:
	}
	close(s.closed)
	<-s.done
	return nil
}

// cutRatio derives the float ratio from the integer counters; an edgeless
// graph cuts nothing.
func cutRatio(cross, total int64) float64 {
	if total == 0 {
		return 0
	}
	return float64(cross) / float64(total)
}

// publishRouter swaps in a fresh immutable route table. Coordinator-only.
func (s *Store) publishRouter() {
	s.router.Store(&routeTable{
		n:      s.w.NumVertices(),
		bounds: append([]int(nil), s.bounds...),
		shards: s.shards,
	})
}

// shardIndexOf routes a vertex on the coordinator's authoritative bounds.
func (s *Store) shardIndexOf(v graph.VertexID) int {
	return rangeIndex(s.bounds, v)
}

// ownedCut composes the cut ratio from the shard-owned counters. Only
// valid under a barrier (or before the shards start).
func (s *Store) ownedCut() float64 {
	var cross, total int64
	for _, sh := range s.shards {
		cross += sh.cross
		total += sh.total
	}
	return cutRatio(cross, total)
}

// currentCut composes the cut ratio from the published shard snapshots —
// safe anytime, trailing in-flight sub-batches by at most one loop turn.
func (s *Store) currentCut() float64 {
	var cross, total int64
	for _, sh := range s.shards {
		sn := sh.snap.Load()
		cross += sn.cross
		total += sn.total
	}
	return cutRatio(cross, total)
}

// withBarrier parks every shard, folds their pending edge/weight totals
// into the shared graph, runs fn with exclusive access to all state, and
// resumes the shards. Entries forwarded before the barrier are guaranteed
// applied when fn runs (shard logs are FIFO).
func (s *Store) withBarrier(fn func()) {
	s.withBarrierWork(nil, fn)
}

// withBarrierWork is withBarrier with a parallel pre-step: each shard
// goroutine runs work(sh) before acking, so per-shard computations (the
// exact reconcile pass) fan out across the shards instead of serializing
// on the coordinator. work may touch only the shard's own state and rows
// and barrier-frozen shared state (labels never change outside barriers).
func (s *Store) withBarrierWork(work func(*shard), fn func()) {
	b := &barrier{ack: make(chan struct{}, len(s.shards)), resume: make(chan struct{}), work: work}
	for _, sh := range s.shards {
		sh.log <- shardEntry{barrier: b}
	}
	for range s.shards {
		<-b.ack
	}
	for _, sh := range s.shards {
		if sh.dEdges != 0 || sh.dWeight != 0 {
			s.w.AdjustTotals(sh.dEdges, sh.dWeight)
			sh.dEdges, sh.dWeight = 0, 0
		}
	}
	fn()
	close(b.resume)
}

// finishBatch resolves every batch a fast-path broadcast carried; called
// by the shard that completed its last sub-batch.
func (s *Store) finishBatch(tr *batchTracker) {
	s.ctr.BatchesApplied.Add(tr.batches)
	s.ctr.EdgesAdded.Add(tr.edges)
	s.applied.Add(tr.batches)
	s.emitCounterDelta()
	select {
	case s.batchDone <- struct{}{}:
	default:
	}
}

// loop is the coordinator: sole owner of the authoritative graph topology
// and labels (jointly with the shards, exclusively under barriers). Each
// turn transfers what is pending in the log into the per-tenant fair
// queues, forms a commit group (deficit-round-robin across tenants,
// capped at LogDepth — see nextGroup) and pushes it through the commit
// pipeline (journal group → coalesced apply) as one unit. When the
// degradation budget is enabled a ticker wakes the loop every sampling
// window, so overload engages and clears on time even with no traffic.
func (s *Store) loop() {
	defer close(s.done)
	var tickC <-chan time.Time
	if s.cfg.Overload.enabled() {
		t := time.NewTicker(s.cfg.Overload.Window)
		defer t.Stop()
		tickC = t.C
	}
	for {
		s.updateLoad(s.clock())
		s.maybeReconcile()
		s.maybeCheckpoint()
		s.maybeRestabilize()
		s.maybeReleaseQuiescers()
		tDrain := time.Now()
		s.transferLog()
		if g := s.nextGroup(); len(g) > 0 {
			s.stageHist[stageDrain].Record(time.Since(tDrain))
			s.handleGroup(g)
			clear(g) // drop batch references; the buffer outlives the turn
			continue
		}
		select {
		case e := <-s.log:
			s.route(e)
		case <-s.batchDone:
			// Fast-path batches resolved; loop to re-evaluate triggers.
		case res := <-s.restabDone:
			s.merge(res)
		case note := <-s.midrun:
			s.mergeMidrun(note)
		case res := <-s.ckptDone:
			s.finishCheckpoint(res)
		case <-tickC:
			// Load-sampling tick; updateLoad runs at the top of the turn.
		case <-s.closed:
			s.drainAndExit()
			return
		}
	}
}

// drainAndExit waits out an in-flight run (discarding it), stops the
// shards, fails pending quiescers and queued controls, and drops
// unprocessed mutation entries (from the channel and the fair queues).
func (s *Store) drainAndExit() {
	if s.inflight {
		<-s.restabDone
		s.inflight = false
		s.ctr.RestabDiscarded.Add(1)
	}
	for _, sh := range s.shards {
		close(sh.log) // coordinator is the only sender
	}
	for _, sh := range s.shards {
		<-sh.done
	}
	s.finishDurable()
	failControl := func(e logEntry) {
		switch {
		case e.quiesce != nil:
			e.quiesce <- ErrClosed
		case e.attach != nil:
			e.attach.reply <- ErrClosed
		case e.reconcile != nil:
			e.reconcile <- ErrClosed
		}
	}
	for {
		select {
		case e := <-s.log:
			failControl(e)
			if e.mut != nil && e.ten != nil {
				e.ten.backlog.Add(-1)
			}
		default:
			for _, t := range s.ring {
				for t.qlen() > 0 {
					t.pop()
					t.backlog.Add(-1)
					s.queued--
				}
			}
			for _, e := range s.controlQ {
				failControl(e)
			}
			s.controlQ = nil
			for _, q := range s.quiescers {
				q <- ErrClosed
			}
			return
		}
	}
}

// handleGroup processes one drained group of log entries — the staged
// commit pipeline. Stage 1 (journalGroup): every mutation/resize in the
// group is durably framed as one wal group append BEFORE any of them is
// applied, preserving the pre-apply durability boundary per entry while
// paying at most one fsync for the group. Stage 2 (coalesced apply): the
// entries are applied strictly in submission order, with each maximal
// run of consecutive fast-path-eligible add-only batches merged into a
// single shard broadcast. Control entries (quiesce, attach, reconcile)
// are interleaved at their submitted positions.
func (s *Store) handleGroup(entries []logEntry) {
	var ok bool
	if s.d != nil && s.d.active {
		tJournal := time.Now()
		ok = s.journalGroup(entries)
		s.stageHist[stageJournal].Record(time.Since(tJournal))
	} else {
		ok = s.journalGroup(entries)
	}
	tApply := time.Now()
	defer func() { s.stageHist[stageApply].Record(time.Since(tApply)) }()
	var run []*graph.Mutation
	flush := func() {
		if len(run) > 0 {
			s.broadcast(run)
			run = nil // ownership moved to the shards; never reuse
		}
	}
	for _, e := range entries {
		switch {
		case e.quiesce != nil:
			s.quiescers = append(s.quiescers, e.quiesce)
		case e.attach != nil:
			flush()
			s.d.jrn = e.attach.jrn
			s.d.lastSeq = e.attach.lastSeq
			s.d.ckptApplied = s.applied.Load()
			s.d.active = true
			s.jrnLive.Store(e.attach.jrn)
			s.journalSeq.Store(e.attach.lastSeq)
			e.attach.reply <- nil
		case e.reconcile != nil:
			flush()
			s.reconcile(false)
			e.reconcile <- nil
		case e.newK > 0:
			if !ok {
				continue // group journal failed; entry was never durable
			}
			flush()
			s.resize(e.newK)
		default:
			if !ok {
				continue // rejected in journalGroup
			}
			if s.stageFastPath(e.mut, &run) {
				// Staged (or resolved inline) batches cannot fail; count the
				// tenant's commit now rather than threading tenants through
				// the shard broadcast.
				if e.ten != nil {
					e.ten.committed.Add(1)
				}
				continue
			}
			flush()
			s.applyGlobalBatch(e.mut, e.ten)
		}
	}
	flush()
}

// stageFastPath stages an add-only batch into the current coalesce run;
// each shard will pick out the arcs whose rows it owns with two compares
// per edge, so the coordinator's serial cost per batch is one validation
// scan plus the (per-run, not per-batch) sends. Such a batch can never
// fail validation (the checks are graph-independent), so atomicity is
// trivial, and it never relabels, so the shards apply it against frozen
// labels without synchronization — which is also why coalescing runs is
// sound: the composed effect of consecutive add-only batches is
// independent of how they are grouped. Eligibility is evaluated in
// submission order: the vertex bound only changes on the barrier path,
// which always flushes the run first.
func (s *Store) stageFastPath(m *graph.Mutation, run *[]*graph.Mutation) bool {
	if m.NewVertices != 0 || len(m.RemovedEdges) != 0 {
		return false
	}
	n := graph.VertexID(s.w.NumVertices())
	for _, e := range m.NewEdges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n || e.U == e.V {
			return false
		}
	}
	if len(m.NewEdges) == 0 { // empty batch: resolve immediately
		s.ctr.BatchesApplied.Add(1)
		s.applied.Add(1)
		return true
	}
	if s.cfg.Options.AffectedOnly {
		for _, e := range m.NewEdges {
			s.affected[e.U] = struct{}{}
			s.affected[e.V] = struct{}{}
		}
	}
	*run = append(*run, m)
	return true
}

// broadcast fans one coalesced run of add-only batches out to every
// shard as a single shardEntry: one queue hop, one cut-delta fold and
// one snapshot publication per shard for the whole run. The run slice is
// handed to the shards and must not be reused by the caller.
func (s *Store) broadcast(run []*graph.Mutation) {
	var edges int64
	for _, m := range run {
		edges += int64(len(m.NewEdges))
	}
	if len(run) > 1 {
		s.ctr.ApplyCoalesces.Add(1)
		s.ctr.CoalescedBatches.Add(int64(len(run)))
	}
	tr := &batchTracker{batches: int64(len(run)), edges: edges}
	tr.remaining.Store(int32(len(s.shards)))
	e := shardEntry{muts: run, tracker: tr}
	for _, sh := range s.shards {
		sh.log <- e
	}
}

// applyGlobalBatch applies one batch under a barrier: vertex growth,
// removals, and invalid batches land here. Application is atomic
// (Mutation.Apply validates first); a rejected batch is counted, recorded
// and dropped with the graph untouched. Cut counters advance by the
// batch's O(batch) exact deltas, never an O(E) recompute — except the
// ErrCutAmbiguous corner (duplicate-pair removals with differing weights),
// which falls back to reconciliation.
func (s *Store) applyGlobalBatch(m *graph.Mutation, ten *tenantState) {
	s.withBarrier(func() {
		oldN := s.w.NumVertices()
		edits, editErr := m.CutEdits(s.w)
		firstNew, err := m.Apply(s.w)
		if err != nil {
			s.ctr.BatchesRejected.Add(1)
			s.lastErr.Store(&err)
			s.applied.Add(1) // resolved, though rejected
			if ten != nil {
				ten.rejected.Add(1)
			}
			return
		}
		grew := firstNew >= 0
		if grew {
			newN := s.w.NumVertices()
			grown := make([]int32, newN)
			copy(grown, s.labels)
			core.SeedNewVertices(s.w, grown, oldN, s.k)
			s.labels = grown
			for _, sh := range s.shards {
				sh.labels = grown
			}
			// The appended tail extends the last shard's range; boundaries
			// rebalance at the next reconciliation pass.
			s.shards[len(s.shards)-1].hi = newN
			s.bounds[len(s.bounds)-1] = newN
			s.ctr.VerticesAdded.Add(int64(newN - oldN))
			if s.cfg.Options.AffectedOnly {
				for v := oldN; v < newN; v++ {
					s.affected[graph.VertexID(v)] = struct{}{}
				}
			}
		}
		if s.cfg.Options.AffectedOnly {
			for _, v := range m.TouchedVertices() {
				if int(v) < s.w.NumVertices() {
					s.affected[v] = struct{}{}
				}
			}
		}
		s.ctr.EdgesAdded.Add(int64(len(m.NewEdges)))
		s.ctr.EdgesRemoved.Add(int64(len(m.RemovedEdges)))
		s.ctr.BatchesApplied.Add(1)
		s.applied.Add(1)
		if ten != nil {
			ten.committed.Add(1)
		}
		// The appended tail is the only label change a barrier apply makes;
		// existing labels are untouched, so the delta's runs are exact.
		var runs []LabelRun
		if grew {
			runs = []LabelRun{{Start: oldN, Labels: append([]int32(nil), s.labels[oldN:]...)}}
		}

		if editErr != nil {
			// Valid batch whose removal weights were unpredictable:
			// recompute exactly (rare safety valve, see ErrCutAmbiguous).
			s.recomputeShardCuts()
			if grew {
				s.publishRouter()
			}
			s.emitBarrierDelta(runs, grew)
			return
		}
		touched := make([]bool, len(s.shards))
		for _, ed := range edits {
			sh := s.shards[s.shardIndexOf(ed.U)]
			wgt := int64(ed.Weight)
			if !ed.Add {
				wgt = -wgt
			}
			sh.total += wgt
			if lu, lv := s.labels[ed.U], s.labels[ed.V]; lu != lv {
				sh.cross += wgt
				sh.perPart[lu] += wgt
				sh.perPart[lv] += wgt
			}
			touched[sh.id] = true
		}
		last := len(s.shards) - 1
		for i, sh := range s.shards {
			switch {
			case i == last && grew:
				sh.publishFresh() // segment grew: copy the new tail
			case touched[i]:
				sh.publishDelta()
			}
		}
		if grew {
			s.publishRouter()
		}
		s.emitBarrierDelta(runs, grew)
	})
}

// resize performs the elastic step of §III-E under a barrier: relabel the
// n/(k+n) fraction (or collapse removed partitions) immediately and
// deterministically, then schedule a background repair run. An in-flight
// restabilization belongs to the old k-space; bumping the generation
// invalidates it.
func (s *Store) resize(newK int) {
	if newK == s.k {
		return
	}
	s.withBarrier(func() {
		seed := s.cfg.Options.Seed ^ (0x9e37*s.gen + 0xb5)
		relabeled, err := core.ElasticRelabel(s.labels, s.k, newK, seed)
		if err != nil {
			s.lastErr.Store(&err)
			return
		}
		moved := 0
		for v := range relabeled {
			if relabeled[v] != s.labels[v] {
				moved++
			}
		}
		runs := labelDiffRuns(s.labels, relabeled)
		s.labels = relabeled
		s.k = newK
		s.gen++
		s.wantRestab = true
		s.ctr.ElasticResizes.Add(1)
		s.ctr.ElasticSeedMoved.Add(int64(moved))
		s.recomputeShardCuts()
		s.emitBarrierDelta(runs, false)
	})
}

// recomputeShardCuts refreshes every shard's labels view, counters (exact)
// and snapshot. Coordinator-only, under a barrier; used by the relabeling
// events (resize, merges), which move too many labels for per-edge deltas
// to pay off.
func (s *Store) recomputeShardCuts() {
	tPublish := time.Now()
	defer func() { s.stageHist[stagePublish].Record(time.Since(tPublish)) }()
	s.pubGen++ // new label generation: Snapshot refuses to mix rounds
	for _, sh := range s.shards {
		sh.labels = s.labels
		sh.k = s.k
		sh.epoch = s.epoch
		sh.pubGen = s.pubGen
		sh.cross, sh.total, sh.perPart = metrics.CutWeightsRange(s.w, s.labels, s.k, sh.lo, sh.hi)
		sh.publishFresh()
	}
}

// shouldRestabilize evaluates the degradation trigger.
func (s *Store) shouldRestabilize() bool {
	if s.wantRestab {
		return true
	}
	return s.applied.Load() > s.appliedAtRestab &&
		s.currentCut() > s.baseline*s.cfg.DegradeFactor+s.cfg.DegradeSlack
}

// maybeRestabilize starts a background incremental run when the trigger
// fires and none is in flight. Under overload the run is deferred — the
// degradation budget trades cut quality for lookup latency — and starts
// at the first turn after the load clears. The clone is taken under a
// barrier so the run sees a consistent merged graph; the shards then
// keep ingesting and serving while the run adapts the clone, streaming
// per-iteration labels back through the mid-run mailbox.
func (s *Store) maybeRestabilize() {
	if s.inflight || !s.shouldRestabilize() {
		return
	}
	if s.overloaded.Load() {
		if !s.restabDeferred {
			s.restabDeferred = true
			s.ctr.DeferredRestabs.Add(1)
		}
		return
	}
	s.restabDeferred = false
	var clone *graph.Weighted
	var prev []int32
	var affected []graph.VertexID
	s.withBarrier(func() {
		s.wantRestab = false
		s.appliedAtRestab = s.applied.Load()
		clone = s.w.Clone()
		prev = append([]int32(nil), s.labels...)
		if s.cfg.Options.AffectedOnly {
			affected = make([]graph.VertexID, 0, len(s.affected))
			for v := range s.affected {
				affected = append(affected, v)
			}
		}
		s.affected = make(map[graph.VertexID]struct{})
	})

	opts := s.cfg.Options
	opts.K = s.k
	// Epoch-derived seed: deterministic across runs of the same entry
	// sequence, distinct across restabilizations.
	opts.Seed = s.cfg.Options.Seed ^ (0xa5a5*(s.epoch+1) + 0x51*s.gen)
	// A completed run's final note may still sit unconsumed in the mailbox
	// (the loop's select drains restabDone and midrun in arbitrary order);
	// clear it so it cannot be attributed to the run starting now.
	select {
	case <-s.midrun:
	default:
	}
	gen, base, epoch := s.gen, clone.NumVertices(), s.epoch
	if !s.cfg.MidRunOff {
		opts.IterationSnapshot = func(_ int, labels []int32) {
			note := midrunNote{gen: gen, epoch: epoch, base: base, labels: labels}
			// Latest-wins mailbox: drop the stale note, never block the run.
			for {
				select {
				case s.midrun <- note:
					return
				default:
				}
				select {
				case <-s.midrun:
				default:
				}
			}
		}
	}
	s.inflight = true
	go func() {
		p, err := core.NewPartitioner(opts)
		if err != nil {
			s.restabDone <- restabResult{gen: gen, base: base, err: err}
			return
		}
		res, err := p.Adapt(clone, prev, affected)
		if err != nil {
			s.restabDone <- restabResult{gen: gen, base: base, err: err}
			return
		}
		s.restabDone <- restabResult{gen: gen, base: base, labels: res.Labels}
	}()
}

// mergeMidrun publishes an in-flight run's intermediate labeling: run
// labels for the vertices the run saw, current (seeded) labels for any
// appended since. Stale notes — a resize landed (gen), or the note belongs
// to an already-merged run (epoch) — are dropped.
func (s *Store) mergeMidrun(note midrunNote) {
	if note.gen != s.gen || note.epoch != s.epoch || !s.inflight {
		return
	}
	s.withBarrier(func() {
		merged := make([]int32, len(s.labels))
		copy(merged, note.labels[:note.base])
		copy(merged[note.base:], s.labels[note.base:])
		runs := labelDiffRuns(s.labels, merged)
		s.labels = merged
		s.ctr.MidRunSnapshots.Add(1)
		s.recomputeShardCuts()
		s.emitBarrierDelta(runs, false)
	})
}

// merge lands a completed restabilization: counts the migration volume,
// adopts the run's labels (plus seeded labels for vertices appended during
// the run), resets the degradation baseline, and republishes every shard.
// Runs from a previous resize generation are discarded — their labels live
// in the wrong k-space.
func (s *Store) merge(res restabResult) {
	s.inflight = false
	if res.err != nil {
		s.lastErr.Store(&res.err)
		s.ctr.RestabDiscarded.Add(1)
		return
	}
	if res.gen != s.gen {
		s.ctr.RestabDiscarded.Add(1)
		return
	}
	s.withBarrier(func() {
		merged := make([]int32, len(s.labels))
		copy(merged, res.labels[:res.base])
		copy(merged[res.base:], s.labels[res.base:])
		verts, weight := cluster.MigrationVolume(s.w, s.labels, merged)
		s.ctr.MigratedVertices.Add(verts)
		s.ctr.MigratedWeight.Add(weight)
		runs := labelDiffRuns(s.labels, merged)
		s.labels = merged
		s.epoch++
		s.ctr.Restabilizations.Add(1)
		s.recomputeShardCuts()
		s.baseline = s.ownedCut()
		s.emitBarrierDelta(runs, false)
	})
}

// maybeReconcile runs the periodic exact pass every ReconcileEvery
// resolved batches, deferring it while the store is overloaded (the
// incremental counters are exact, so postponing the safety net costs
// nothing but the rebalance point).
func (s *Store) maybeReconcile() {
	if s.cfg.ReconcileEvery <= 0 {
		return
	}
	if s.applied.Load()-s.lastReconcile < int64(s.cfg.ReconcileEvery) {
		return
	}
	if s.overloaded.Load() {
		if !s.reconcileDeferred {
			s.reconcileDeferred = true
			s.ctr.DeferredReconciles.Add(1)
		}
		return
	}
	s.reconcileDeferred = false
	s.reconcile(true)
}

// reconcile is the exact pass: every shard recomputes the counters of its
// owned edges from its own rows in parallel, inside the barrier's work
// step (the recompute reads only the shard's rows and the barrier-frozen
// labels, so the shards race nothing); the coordinator then verifies them
// against the incremental values bit-for-bit and, on the periodic path,
// rebalances the shard boundaries by weighted degree. Open runs it once
// after replay with rebalance=false: a recovered store proves its
// counters before serving without disturbing the recovered shard ranges
// (or the periodic rebalance cadence, which lastReconcile carries across
// the crash).
func (s *Store) reconcile(rebalance bool) {
	if s.w.NumVertices() < len(s.shards) {
		// A zero-vertex store has one shard with an empty range; there is
		// nothing to reconcile or rebalance (and BalancedRanges requires
		// shards <= vertices).
		if rebalance {
			s.lastReconcile = s.applied.Load()
		}
		return
	}
	type exact struct {
		cross, total int64
		perPart      []int64
	}
	// Computed over the CURRENT ownership before any boundary moves — a
	// moved boundary transfers edges between shards, which is not drift.
	// Indexed writes from the shard goroutines never alias.
	results := make([]exact, len(s.shards))
	s.withBarrierWork(func(sh *shard) {
		cross, total, perPart := metrics.CutWeightsRange(sh.w, sh.labels, sh.k, sh.lo, sh.hi)
		results[sh.id] = exact{cross: cross, total: total, perPart: perPart}
	}, func() {
		drifted := make([]bool, len(s.shards))
		for i, sh := range s.shards {
			r := results[i]
			if r.cross != sh.cross || r.total != sh.total || !slices.Equal(r.perPart, sh.perPart) {
				drifted[i] = true
				s.ctr.CutDrift.Add(1)
				sh.cross, sh.total, sh.perPart = r.cross, r.total, r.perPart
			}
		}
		rebalanced := false
		if rebalance {
			newBounds := cluster.BalancedRanges(s.w, len(s.shards))
			rebalanced = !slices.Equal(newBounds, s.bounds)
			if rebalanced {
				copy(s.bounds, newBounds)
				s.pubGen++ // boundary move: republish every shard as one round
				s.ctr.ShardRebalances.Add(1)
			}
		}
		for i, sh := range s.shards {
			if rebalanced {
				sh.lo, sh.hi = s.bounds[i], s.bounds[i+1]
				sh.pubGen = s.pubGen
				sh.cross, sh.total, sh.perPart = metrics.CutWeightsRange(s.w, s.labels, s.k, sh.lo, sh.hi)
			}
			if rebalanced || drifted[i] {
				sh.publishFresh()
			}
		}
		s.ctr.CutReconciles.Add(1)
		if rebalanced {
			s.publishRouter()
			s.emitBarrierDelta(nil, true)
		}
	})
	if rebalance {
		s.lastReconcile = s.applied.Load()
	}
}

// maybeReleaseQuiescers answers pending Quiesce calls once the store is
// fully drained: no log backlog, no run in flight, no background
// checkpoint pending, no trigger pending. The shard logs are drained
// with an empty barrier before the final trigger evaluation, so the
// decision is made on fully-applied counters. (Waiting out the
// checkpoint keeps quiesced histories deterministic in their durability
// side effects — which checkpoints exist — not just their labels.)
func (s *Store) maybeReleaseQuiescers() {
	if len(s.quiescers) == 0 {
		return
	}
	if s.inflight || len(s.log) > 0 || s.queued > 0 || len(s.controlQ) > 0 || len(s.midrun) > 0 {
		return
	}
	if s.d != nil && s.d.pending {
		return
	}
	s.withBarrier(func() {})
	if s.shouldRestabilize() {
		return
	}
	err := s.Err()
	for _, q := range s.quiescers {
		q <- err
	}
	s.quiescers = nil
}
