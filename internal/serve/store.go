// Package serve is the live partition-maintenance service: the
// production-shaped layer that turns Spinner's batch algorithms into a
// long-running system answering vertex→partition lookups under heavy
// concurrent traffic while the partitioning evolves underneath — the
// paper's core claim (§III-D/E) that partitions are *maintained*, not
// recomputed.
//
// # Architecture
//
// A Store is built from three decoupled planes:
//
//   - Read plane: lookups load an immutable Snapshot through one atomic
//     pointer. No locks, no contention with writers; a swapped snapshot is
//     never mutated again, so readers hold it as long as they like.
//   - Write plane: graph.Mutation batches enter a bounded mutation log (a
//     buffered channel). Submit blocks for backpressure, TrySubmit fails
//     fast with ErrLogFull. A single maintenance goroutine owns the
//     authoritative graph; it drains the log, applies each batch
//     atomically, labels appended vertices on the least-loaded partitions
//     (§III-D), and swaps a fresh snapshot — so a batch becomes visible to
//     lookups within one loop turn, without waiting for any LPA run.
//   - Maintenance plane: the loop tracks the cut ratio (1−φ) after every
//     batch. When it degrades past the configured factor of the last
//     stabilized baseline, a background restabilization goroutine runs the
//     incremental Spinner adaptation (§III-D) on a clone of the graph
//     while the loop keeps serving and ingesting. Completed runs merge
//     back label-by-label; vertices appended mid-run keep their seeded
//     labels until the next run. Long runs publish per-iteration mid-run
//     snapshots (monotonically improving labelings) through the same
//     atomic swap. Elastic partition-count changes (§III-E) relabel only
//     the paper's n/(k+n) fraction immediately — lookups never see an
//     invalid label — and then repair locality with the same background
//     machinery; a restabilization in flight across a resize is discarded
//     rather than merged, since its labels live in the old k-space.
//
// Determinism: with a fixed Options.Seed the maintenance plane is
// deterministic in the sequence of log entries — restabilization seeds are
// derived from the run epoch, so a quiesced submit/await sequence yields
// identical labels regardless of worker count or wall-clock timing.
package serve

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// Errors returned by the submission paths.
var (
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("serve: store closed")
	// ErrLogFull is returned by TrySubmit when the bounded mutation log is
	// at capacity (backpressure; retry or fall back to Submit).
	ErrLogFull = errors.New("serve: mutation log full")
)

// Config tunes a Store.
type Config struct {
	// Options configures the partitioner used for restabilization and
	// elastic repair. Options.K is the initial partition count. The zero
	// value of a field falls back to core defaults via normalization.
	Options core.Options
	// LogDepth bounds the mutation log; Submit blocks (and TrySubmit
	// fails) when this many entries are pending. Default 64.
	LogDepth int
	// DegradeFactor triggers a restabilization run when the tracked cut
	// ratio exceeds baseline·DegradeFactor + DegradeSlack, where baseline
	// is the cut ratio achieved by the last stabilization. Default 1.10
	// (10% degradation).
	DegradeFactor float64
	// DegradeSlack is the additive term of the trigger, guarding against a
	// zero baseline on perfectly separable graphs. Default 0.005.
	DegradeSlack float64
	// MidRunOff disables the per-iteration snapshot publication from
	// in-flight restabilization runs (on by default).
	MidRunOff bool
}

func (c *Config) normalize() error {
	// Validate the partitioner configuration up front so a misconfigured
	// store fails at construction, not at the first background run.
	if _, err := core.NewPartitioner(c.Options); err != nil {
		return err
	}
	if c.LogDepth == 0 {
		c.LogDepth = 64
	}
	if c.LogDepth < 1 {
		return fmt.Errorf("serve: LogDepth=%d", c.LogDepth)
	}
	if c.DegradeFactor == 0 {
		c.DegradeFactor = 1.10
	}
	if c.DegradeFactor < 1 {
		return fmt.Errorf("serve: DegradeFactor=%v, want >= 1", c.DegradeFactor)
	}
	if c.DegradeSlack == 0 {
		c.DegradeSlack = 0.005
	}
	if c.DegradeSlack < 0 {
		return fmt.Errorf("serve: negative DegradeSlack")
	}
	return nil
}

// Snapshot is an immutable view of the partitioning. Lookups resolve
// against exactly one snapshot, so a reader sees a single consistent
// labeling even while batches and restabilizations land underneath.
type Snapshot struct {
	// Labels maps vertex → partition; len(Labels) is the vertex count at
	// publication. The slice is immutable: neither the Store nor callers
	// may write to it.
	Labels []int32
	// K is the partition count this snapshot's labels live in.
	K int
	// Version counts snapshot publications (monotonically increasing).
	Version uint64
	// AppliedBatches counts mutation batches reflected in this snapshot.
	AppliedBatches uint64
	// Epoch counts restabilization merges reflected in this snapshot.
	Epoch uint64
	// CutRatio is 1−φ of this labeling on the graph it was published
	// against: the fraction of edge weight crossing partitions.
	CutRatio float64
}

// Lookup resolves one vertex against the snapshot.
func (s *Snapshot) Lookup(v graph.VertexID) (int32, bool) {
	if v < 0 || int(v) >= len(s.Labels) {
		return -1, false
	}
	return s.Labels[v], true
}

// logEntry is one unit of maintenance work: a mutation batch, an elastic
// resize, or a quiesce sentinel.
type logEntry struct {
	mut     *graph.Mutation
	newK    int        // >0: elastic resize
	quiesce chan error // non-nil: reply when drained and stable
}

// restabResult carries a completed background run back to the loop.
type restabResult struct {
	gen    uint64 // resize generation the run belongs to
	base   int    // vertex count the run saw
	labels []int32
	err    error
}

// midrunNote carries one per-iteration labeling out of an in-flight run.
// Only the latest unconsumed note is kept (older ones are superseded).
// Notes are stamped with both the resize generation and the epoch the run
// started at, so a leftover note from a completed run can never merge into
// a successor run's window.
type midrunNote struct {
	gen    uint64
	epoch  uint64
	base   int
	labels []int32
}

// Store is the live partition-maintenance service. See the package comment
// for the architecture. All exported methods are safe for concurrent use.
type Store struct {
	cfg  Config
	ctr  metrics.ServeCounters
	snap atomic.Pointer[Snapshot]

	submitted atomic.Int64 // batches submitted (staleness numerator)
	applied   atomic.Int64 // batches applied
	lastErr   atomic.Pointer[error]

	log    chan logEntry
	closed chan struct{} // closes when Close is called
	done   chan struct{} // closes when the maintenance loop exits

	// Maintenance-goroutine state (no locks: single owner).
	w          *graph.Weighted
	labels     []int32
	k          int
	gen        uint64  // bumped by every resize; stamps in-flight runs
	epoch      uint64  // completed restabilization merges
	version    uint64  // snapshot publications
	baseline   float64 // cut ratio achieved by the last stabilization
	cut        float64 // current cut ratio
	wantRestab bool    // forced run requested (elastic repair)
	dirtySince int     // batches applied since the last run started
	affected   map[graph.VertexID]struct{}
	inflight   bool
	restabDone chan restabResult
	midrun     chan midrunNote // capacity 1; latest-wins mailbox
	quiescers  []chan error
}

// New builds a Store over an already-partitioned weighted graph. The Store
// takes ownership of w and labels: the caller must not use either again.
// len(labels) must equal w.NumVertices() and every label must be inside
// [0, cfg.Options.K).
func New(w *graph.Weighted, labels []int32, cfg Config) (*Store, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if len(labels) != w.NumVertices() {
		return nil, fmt.Errorf("serve: %d labels for %d vertices", len(labels), w.NumVertices())
	}
	if err := metrics.ValidateLabels(labels, cfg.Options.K); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Store{
		cfg:        cfg,
		log:        make(chan logEntry, cfg.LogDepth),
		closed:     make(chan struct{}),
		done:       make(chan struct{}),
		w:          w,
		labels:     labels,
		k:          cfg.Options.K,
		affected:   make(map[graph.VertexID]struct{}),
		restabDone: make(chan restabResult, 1),
		midrun:     make(chan midrunNote, 1),
	}
	s.cut = 1 - metrics.Phi(w, labels)
	s.baseline = s.cut
	s.publish()
	go s.loop()
	return s, nil
}

// Bootstrap partitions g from scratch and starts a Store over the result —
// the one-call path for drivers.
func Bootstrap(g *graph.Graph, cfg Config) (*Store, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	w := graph.Convert(g)
	p, err := core.NewPartitioner(cfg.Options)
	if err != nil {
		return nil, err
	}
	res, err := p.PartitionWeighted(w)
	if err != nil {
		return nil, err
	}
	return New(w, res.Labels, cfg)
}

// Lookup returns the partition of v in the current snapshot. The second
// return is false when v is not (yet) visible: either never created, or
// appended by a batch whose snapshot has not been published.
func (s *Store) Lookup(v graph.VertexID) (int32, bool) {
	snap := s.snap.Load()
	s.ctr.Lookups.Add(1)
	if lag := s.submitted.Load() - int64(snap.AppliedBatches); lag > 0 {
		s.ctr.StalenessSum.Add(lag)
	}
	l, ok := snap.Lookup(v)
	if !ok {
		s.ctr.LookupMisses.Add(1)
	}
	return l, ok
}

// Snapshot returns the current immutable snapshot.
func (s *Store) Snapshot() *Snapshot { return s.snap.Load() }

// Counters exposes the serving metrics.
func (s *Store) Counters() *metrics.ServeCounters { return &s.ctr }

// Err returns the most recent batch-application error, if any. Rejected
// batches do not stop the store; they are counted and dropped.
func (s *Store) Err() error {
	if p := s.lastErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Submit appends a mutation batch to the log, blocking for backpressure
// while the log is full. The Store takes ownership of m. Returns ErrClosed
// after Close.
func (s *Store) Submit(m *graph.Mutation) error {
	select {
	case <-s.closed:
		return ErrClosed
	default:
	}
	select {
	case s.log <- logEntry{mut: m}:
		s.submitted.Add(1)
		return nil
	case <-s.closed:
		return ErrClosed
	}
}

// TrySubmit is the non-blocking Submit: ErrLogFull when the bounded log is
// at capacity.
func (s *Store) TrySubmit(m *graph.Mutation) error {
	select {
	case <-s.closed:
		return ErrClosed
	default:
	}
	select {
	case s.log <- logEntry{mut: m}:
		s.submitted.Add(1)
		return nil
	case <-s.closed:
		return ErrClosed
	default:
		return ErrLogFull
	}
}

// Resize requests an elastic change to newK partitions (§III-E). The
// relabeling of the n/(k+n) fraction is applied as soon as the entry is
// processed — lookups immediately see valid [0,newK) labels — and a
// background repair run restores locality. Ordered with Submit through the
// same log.
func (s *Store) Resize(newK int) error {
	if newK < 1 {
		return fmt.Errorf("serve: resize to k=%d", newK)
	}
	select {
	case <-s.closed:
		return ErrClosed
	default:
	}
	select {
	case s.log <- logEntry{newK: newK}:
		return nil
	case <-s.closed:
		return ErrClosed
	}
}

// Quiesce blocks until every entry submitted before the call has been
// applied and no restabilization is in flight or pending — the state in
// which the snapshot is fully stabilized. It returns the store's most
// recent batch-application error, if any. Used by tests and orderly
// shutdown; a serving deployment never needs it.
func (s *Store) Quiesce() error {
	reply := make(chan error, 1)
	select {
	case s.log <- logEntry{quiesce: reply}:
	case <-s.closed:
		return ErrClosed
	}
	select {
	case err := <-reply:
		return err
	case <-s.done:
		return ErrClosed
	}
}

// Close stops the maintenance loop and waits for it (and any in-flight
// restabilization, whose result is discarded) to exit. Lookups remain
// valid against the last published snapshot after Close.
func (s *Store) Close() error {
	select {
	case <-s.closed:
		<-s.done
		return nil
	default:
	}
	close(s.closed)
	<-s.done
	return nil
}

// publish swaps in a new immutable snapshot built from the loop's state.
func (s *Store) publish() {
	s.version++
	labels := make([]int32, len(s.labels))
	copy(labels, s.labels)
	s.snap.Store(&Snapshot{
		Labels:         labels,
		K:              s.k,
		Version:        s.version,
		AppliedBatches: uint64(s.applied.Load()),
		Epoch:          s.epoch,
		CutRatio:       s.cut,
	})
	s.ctr.SnapshotSwaps.Add(1)
}

// loop is the maintenance goroutine: sole owner of the authoritative graph
// and labels.
func (s *Store) loop() {
	defer close(s.done)
	for {
		s.maybeRestabilize()
		s.maybeReleaseQuiescers()
		select {
		case e := <-s.log:
			s.handle(e)
		case res := <-s.restabDone:
			s.merge(res)
		case note := <-s.midrun:
			s.mergeMidrun(note)
		case <-s.closed:
			s.drainAndExit()
			return
		}
	}
}

// drainAndExit waits out an in-flight run (discarding it), fails pending
// quiescers, and drops unprocessed log entries.
func (s *Store) drainAndExit() {
	if s.inflight {
		<-s.restabDone
		s.inflight = false
		s.ctr.RestabDiscarded.Add(1)
	}
	for {
		select {
		case e := <-s.log:
			if e.quiesce != nil {
				e.quiesce <- ErrClosed
			}
		default:
			for _, q := range s.quiescers {
				q <- ErrClosed
			}
			return
		}
	}
}

// handle processes one log entry.
func (s *Store) handle(e logEntry) {
	switch {
	case e.quiesce != nil:
		s.quiescers = append(s.quiescers, e.quiesce)
	case e.newK > 0:
		s.resize(e.newK)
	default:
		s.applyBatch(e.mut)
	}
}

// applyBatch applies one mutation batch to the authoritative graph, seeds
// appended vertices on the least-loaded partitions, refreshes the cut
// ratio, and publishes. A batch that fails validation is counted, recorded
// and dropped — the graph is untouched (Mutation.Apply is atomic).
func (s *Store) applyBatch(m *graph.Mutation) {
	oldN := s.w.NumVertices()
	firstNew, err := m.Apply(s.w)
	if err != nil {
		s.ctr.BatchesRejected.Add(1)
		s.lastErr.Store(&err)
		s.applied.Add(1) // resolved, though rejected
		s.publish()      // refresh AppliedBatches so staleness converges
		return
	}
	if firstNew >= 0 {
		grown := make([]int32, s.w.NumVertices())
		copy(grown, s.labels)
		core.SeedNewVertices(s.w, grown, oldN, s.k)
		s.labels = grown
		s.ctr.VerticesAdded.Add(int64(s.w.NumVertices() - oldN))
		for v := oldN; v < s.w.NumVertices(); v++ {
			s.affected[graph.VertexID(v)] = struct{}{}
		}
	}
	for _, v := range m.TouchedVertices() {
		if int(v) < s.w.NumVertices() {
			s.affected[v] = struct{}{}
		}
	}
	s.ctr.EdgesAdded.Add(int64(len(m.NewEdges)))
	s.ctr.EdgesRemoved.Add(int64(len(m.RemovedEdges)))
	s.ctr.BatchesApplied.Add(1)
	s.applied.Add(1)
	s.dirtySince++
	s.cut = 1 - metrics.Phi(s.w, s.labels)
	s.publish()
}

// resize performs the elastic step of §III-E: relabel the n/(k+n) fraction
// (or collapse removed partitions) immediately and deterministically, then
// schedule a background repair run. An in-flight restabilization belongs
// to the old k-space; bumping the generation invalidates it.
func (s *Store) resize(newK int) {
	if newK == s.k {
		return
	}
	seed := s.cfg.Options.Seed ^ (0x9e37*s.gen + 0xb5)
	relabeled, err := core.ElasticRelabel(s.labels, s.k, newK, seed)
	if err != nil {
		s.lastErr.Store(&err)
		return
	}
	moved := 0
	for v := range relabeled {
		if relabeled[v] != s.labels[v] {
			moved++
		}
	}
	s.labels = relabeled
	s.k = newK
	s.gen++
	s.wantRestab = true
	s.ctr.ElasticResizes.Add(1)
	s.ctr.ElasticSeedMoved.Add(int64(moved))
	s.cut = 1 - metrics.Phi(s.w, s.labels)
	s.publish()
}

// shouldRestabilize evaluates the degradation trigger.
func (s *Store) shouldRestabilize() bool {
	if s.wantRestab {
		return true
	}
	return s.dirtySince > 0 && s.cut > s.baseline*s.cfg.DegradeFactor+s.cfg.DegradeSlack
}

// maybeRestabilize starts a background incremental run when the trigger
// fires and none is in flight. The run adapts a clone of the graph, so the
// loop keeps ingesting batches and serving lookups; per-iteration labels
// stream back through the mid-run mailbox.
func (s *Store) maybeRestabilize() {
	if s.inflight || !s.shouldRestabilize() {
		return
	}
	s.wantRestab = false
	s.dirtySince = 0
	clone := s.w.Clone()
	prev := make([]int32, len(s.labels))
	copy(prev, s.labels)
	var affected []graph.VertexID
	if s.cfg.Options.AffectedOnly {
		affected = make([]graph.VertexID, 0, len(s.affected))
		for v := range s.affected {
			affected = append(affected, v)
		}
	}
	s.affected = make(map[graph.VertexID]struct{})

	opts := s.cfg.Options
	opts.K = s.k
	// Epoch-derived seed: deterministic across runs of the same entry
	// sequence, distinct across restabilizations.
	opts.Seed = s.cfg.Options.Seed ^ (0xa5a5*(s.epoch+1) + 0x51*s.gen)
	// A completed run's final note may still sit unconsumed in the mailbox
	// (the loop's select drains restabDone and midrun in arbitrary order);
	// clear it so it cannot be attributed to the run starting now.
	select {
	case <-s.midrun:
	default:
	}
	gen, base, epoch := s.gen, clone.NumVertices(), s.epoch
	if !s.cfg.MidRunOff {
		opts.IterationSnapshot = func(_ int, labels []int32) {
			note := midrunNote{gen: gen, epoch: epoch, base: base, labels: labels}
			// Latest-wins mailbox: drop the stale note, never block the run.
			for {
				select {
				case s.midrun <- note:
					return
				default:
				}
				select {
				case <-s.midrun:
				default:
				}
			}
		}
	}
	s.inflight = true
	go func() {
		p, err := core.NewPartitioner(opts)
		if err != nil {
			s.restabDone <- restabResult{gen: gen, base: base, err: err}
			return
		}
		res, err := p.Adapt(clone, prev, affected)
		if err != nil {
			s.restabDone <- restabResult{gen: gen, base: base, err: err}
			return
		}
		s.restabDone <- restabResult{gen: gen, base: base, labels: res.Labels}
	}()
}

// mergeMidrun publishes an in-flight run's intermediate labeling: run
// labels for the vertices the run saw, current (seeded) labels for any
// appended since. Stale notes — a resize landed (gen), or the note belongs
// to an already-merged run (epoch) — are dropped.
func (s *Store) mergeMidrun(note midrunNote) {
	if note.gen != s.gen || note.epoch != s.epoch || !s.inflight {
		return
	}
	merged := make([]int32, len(s.labels))
	copy(merged, note.labels[:note.base])
	copy(merged[note.base:], s.labels[note.base:])
	s.labels = merged
	s.cut = 1 - metrics.Phi(s.w, s.labels)
	s.ctr.MidRunSnapshots.Add(1)
	s.publish()
}

// merge lands a completed restabilization: counts the migration volume,
// adopts the run's labels (plus seeded labels for vertices appended during
// the run), resets the degradation baseline, and publishes. Runs from a
// previous resize generation are discarded — their labels are in the wrong
// k-space.
func (s *Store) merge(res restabResult) {
	s.inflight = false
	if res.err != nil {
		s.lastErr.Store(&res.err)
		s.ctr.RestabDiscarded.Add(1)
		return
	}
	if res.gen != s.gen {
		s.ctr.RestabDiscarded.Add(1)
		return
	}
	merged := make([]int32, len(s.labels))
	copy(merged, res.labels[:res.base])
	copy(merged[res.base:], s.labels[res.base:])
	verts, weight := cluster.MigrationVolume(s.w, s.labels, merged)
	s.ctr.MigratedVertices.Add(verts)
	s.ctr.MigratedWeight.Add(weight)
	s.labels = merged
	s.epoch++
	s.ctr.Restabilizations.Add(1)
	s.cut = 1 - metrics.Phi(s.w, s.labels)
	s.baseline = s.cut
	s.publish()
}

// maybeReleaseQuiescers answers pending Quiesce calls once the store is
// fully drained: no log backlog, no run in flight, no trigger pending.
func (s *Store) maybeReleaseQuiescers() {
	if len(s.quiescers) == 0 {
		return
	}
	if s.inflight || len(s.log) > 0 || len(s.midrun) > 0 || s.shouldRestabilize() {
		return
	}
	err := s.Err()
	for _, q := range s.quiescers {
		q <- err
	}
	s.quiescers = nil
}
