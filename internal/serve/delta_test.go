package serve

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

func TestDeltaHubPublishCompactionAndBounds(t *testing.T) {
	h := newDeltaHub(4)
	if floor, next := h.bounds(); floor != 1 || next != 1 {
		t.Fatalf("empty hub bounds [%d, %d), want [1, 1)", floor, next)
	}
	for i := 0; i < 10; i++ {
		h.publish(&Delta{Cross: int64(i)})
	}
	floor, next := h.bounds()
	if floor != 7 || next != 11 {
		t.Fatalf("bounds [%d, %d) after 10 publishes into 4 slots, want [7, 11)", floor, next)
	}

	// A live cursor gets the dense tail.
	ds, f := h.since(8, 0)
	if f != 7 || len(ds) != 2 || ds[0].Seq != 9 || ds[1].Seq != 10 {
		t.Fatalf("since(8) = %d deltas floor %d", len(ds), f)
	}
	// max truncates.
	ds, _ = h.since(6, 1)
	if len(ds) != 1 || ds[0].Seq != 7 {
		t.Fatalf("since(6, max 1) = %v", ds)
	}
	// A compacted cursor sees a gap it must detect: first seq != after+1.
	ds, f = h.since(2, 0)
	if f != 7 || len(ds) != 4 || ds[0].Seq == 3 {
		t.Fatalf("since(2) = %d deltas starting %d, floor %d", len(ds), ds[0].Seq, f)
	}
	// A caught-up cursor gets nothing.
	if ds, _ := h.since(10, 0); len(ds) != 0 {
		t.Fatalf("since(10) = %v, want empty", ds)
	}

	// notify fires on publish.
	ch := h.waitCh()
	select {
	case <-ch:
		t.Fatal("notify closed before publish")
	default:
	}
	h.publish(&Delta{})
	select {
	case <-ch:
	default:
		t.Fatal("notify not closed by publish")
	}
}

// The tentpole invariant of the encode-once fan-out: the hub encodes
// and frames each delta exactly once at publish time, and every reader
// shares the same immutable frame bytes.
func TestDeltaHubFramedSinceSharesMemoizedFrames(t *testing.T) {
	h := newDeltaHub(8)
	for i := 0; i < 5; i++ {
		h.publish(&Delta{Cross: int64(i), Runs: []LabelRun{{Start: i, Labels: []int32{1, 2}}}})
	}
	if got := h.encodes.Load(); got != 5 {
		t.Fatalf("encodes = %d after 5 publishes, want 5 (one per publication)", got)
	}

	a, floorA := h.framedSince(0, 0)
	b, floorB := h.framedSince(0, 0)
	if floorA != 1 || floorB != 1 || len(a) != 5 || len(b) != 5 {
		t.Fatalf("framedSince(0) = %d/%d entries, floors %d/%d", len(a), len(b), floorA, floorB)
	}
	for i := range a {
		if &a[i].Frame[0] != &b[i].Frame[0] {
			t.Fatalf("entry %d: readers got distinct frame copies, want shared memoized bytes", i)
		}
	}
	// Reading does not re-encode.
	if got := h.encodes.Load(); got != 5 {
		t.Fatalf("encodes = %d after reads, want 5", got)
	}

	// The memoized frame is byte-identical to framing the delta fresh —
	// the unshared path a pre-memoization server would have produced.
	for i, fd := range a {
		want := AppendWatchFrame(nil, WatchFrame{Kind: WatchDelta, Delta: EncodeDelta(fd.Delta)})
		if !bytes.Equal(fd.Frame, want) {
			t.Fatalf("entry %d: memoized frame differs from freshly framed bytes", i)
		}
		f, n, err := DecodeWatchFrame(fd.Frame)
		if err != nil || n != len(fd.Frame) || f.Kind != WatchDelta {
			t.Fatalf("entry %d: memoized frame decode = kind %d, %d bytes, err %v", i, f.Kind, n, err)
		}
		if !bytes.Equal(f.Delta, fd.Payload()) {
			t.Fatalf("entry %d: Payload() disagrees with decoded frame payload", i)
		}
		d, err := DecodeDelta(f.Delta)
		if err != nil || d.Seq != fd.Delta.Seq {
			t.Fatalf("entry %d: payload decodes to seq %d err %v, want %d", i, d.Seq, err, fd.Delta.Seq)
		}
	}

	// framedSince matches since on cursor/max/gap semantics.
	fds, floor := h.framedSince(2, 2)
	if floor != 1 || len(fds) != 2 || fds[0].Delta.Seq != 3 || fds[1].Delta.Seq != 4 {
		t.Fatalf("framedSince(2, max 2) = %d entries starting %d, floor %d", len(fds), fds[0].Delta.Seq, floor)
	}
	if fds, _ := h.framedSince(5, 0); len(fds) != 0 {
		t.Fatalf("caught-up framedSince = %d entries, want 0", len(fds))
	}
}

// Broadcast semantics: a subscriber gets exactly one coalesced wakeup
// token no matter how many publications it slept through, publish never
// blocks on a full slot, and Cancel removes the registration.
func TestDeltaHubSubscribeCoalescedWakeups(t *testing.T) {
	h := newDeltaHub(8)
	sub := h.subscribe()
	if n := h.subscribers(); n != 1 {
		t.Fatalf("subscribers = %d, want 1", n)
	}
	select {
	case <-sub.C():
		t.Fatal("wakeup token before any publish")
	default:
	}

	for i := 0; i < 3; i++ {
		h.publish(&Delta{})
	}
	select {
	case <-sub.C():
	default:
		t.Fatal("no wakeup token after publishes")
	}
	// Coalesced: three publications left exactly one token.
	select {
	case <-sub.C():
		t.Fatal("second token pending; wakeups must coalesce into one slot")
	default:
	}

	// The ordering contract: ring first, then token — so after draining
	// the token, the published deltas are already readable.
	h.publish(&Delta{})
	<-sub.C()
	if fds, _ := h.framedSince(3, 0); len(fds) != 1 || fds[0].Delta.Seq != 4 {
		t.Fatalf("post-wakeup read = %d entries, want seq 4", len(fds))
	}

	sub.Cancel()
	if n := h.subscribers(); n != 0 {
		t.Fatalf("subscribers = %d after Cancel, want 0", n)
	}
	h.publish(&Delta{})
	select {
	case <-sub.C():
		t.Fatal("cancelled subscriber still woken")
	default:
	}
	sub.Cancel() // idempotent
}

// Subscribe/unsubscribe churn racing live publications (run with -race):
// every subscriber that parks after reading the ring is woken for
// publications it has not seen, and concurrent readers always observe
// dense ascending sequences inside one snapshot read.
func TestDeltaHubBroadcastUnderConcurrentPublish(t *testing.T) {
	const (
		publishers   = 4
		perPublisher = 300
		subscribers  = 8
	)
	h := newDeltaHub(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				h.publish(&Delta{Cross: int64(p*perPublisher + i)})
			}
		}(p)
	}

	errs := make(chan error, subscribers)
	for s := 0; s < subscribers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Churn the registration: resubscribe every few drains.
			sub := h.subscribe()
			defer func() { sub.Cancel() }()
			cursor := uint64(0)
			drains := 0
			for {
				fds, floor := h.framedSince(cursor, 0)
				if len(fds) == 0 {
					if cursor+1 >= h.next.Load() {
						select {
						case <-stop:
							return
						default:
						}
					}
					select {
					case <-sub.C():
					case <-stop:
						return
					}
					continue
				}
				if fds[0].Delta.Seq != cursor+1 && fds[0].Delta.Seq != floor {
					errs <- fmt.Errorf("read started at %d, cursor %d, floor %d", fds[0].Delta.Seq, cursor, floor)
					return
				}
				for i := 1; i < len(fds); i++ {
					if fds[i].Delta.Seq != fds[i-1].Delta.Seq+1 {
						errs <- fmt.Errorf("non-dense batch: %d then %d", fds[i-1].Delta.Seq, fds[i].Delta.Seq)
						return
					}
				}
				cursor = fds[len(fds)-1].Delta.Seq
				if drains++; drains%5 == 0 {
					sub.Cancel()
					sub = h.subscribe()
				}
			}
		}()
	}

	// Publishers finish first; then release the subscribers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		if h.next.Load() == publishers*perPublisher+1 {
			break
		}
		select {
		case err := <-errs:
			t.Fatal(err)
		default:
			runtime.Gosched()
		}
	}
	close(stop)
	<-done
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := h.subscribers(); n != 0 {
		t.Fatalf("subscribers = %d after all cancelled, want 0", n)
	}
	floor, next := h.bounds()
	if next != publishers*perPublisher+1 || floor != next-64 {
		t.Fatalf("final bounds [%d, %d), want [%d, %d)", floor, next, next-64, publishers*perPublisher+1)
	}
}

func TestLabelDiffRunsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(64)
		old := make([]int32, n)
		for i := range old {
			old[i] = int32(rng.Intn(4))
		}
		// new: mutate some entries, sometimes grow.
		grown := n + rng.Intn(8)
		newLabels := make([]int32, grown)
		copy(newLabels, old)
		for i := n; i < grown; i++ {
			newLabels[i] = int32(rng.Intn(4))
		}
		for c := rng.Intn(10); c > 0; c-- {
			if n == 0 {
				break
			}
			newLabels[rng.Intn(n)] = int32(rng.Intn(4))
		}

		runs := labelDiffRuns(old, newLabels)
		// Applying the runs to old (grown) must reproduce new exactly.
		d := &Delta{N: grown, Runs: runs}
		got, err := d.Apply(append([]int32(nil), old...))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != grown {
			t.Fatalf("apply grew to %d, want %d", len(got), grown)
		}
		for i := range newLabels {
			if got[i] != newLabels[i] {
				t.Fatalf("trial %d: applied[%d] = %d, want %d", trial, i, got[i], newLabels[i])
			}
		}
		// Exactness over the common prefix: a run never covers an
		// unchanged index.
		for _, r := range runs {
			for i, l := range r.Labels {
				v := r.Start + i
				if v < n && old[v] == l {
					t.Fatalf("trial %d: run covers unchanged vertex %d", trial, v)
				}
			}
		}
		// Ascending and non-overlapping.
		prevEnd := -1
		for _, r := range runs {
			if r.Start <= prevEnd {
				t.Fatalf("trial %d: runs overlap or are unsorted: %v", trial, runs)
			}
			prevEnd = r.Start + len(r.Labels) - 1
		}
	}
}

func TestDeltaApplyRejectsOutOfRangeRun(t *testing.T) {
	d := &Delta{Seq: 9, Runs: []LabelRun{{Start: 5, Labels: []int32{1, 2}}}}
	if _, err := d.Apply(make([]int32, 6)); err == nil {
		t.Fatal("run past the end applied cleanly")
	}
	d = &Delta{Seq: 9, Runs: []LabelRun{{Start: -1, Labels: []int32{1}}}}
	if _, err := d.Apply(make([]int32, 6)); err == nil {
		t.Fatal("negative run start applied cleanly")
	}
}

func TestDeltaCodecRoundTrip(t *testing.T) {
	cases := []*Delta{
		{},
		{Seq: 1, Epoch: 2, Gen: 3, K: 4, N: 5, Cross: -7, Total: 100},
		{Seq: 9, K: 2, N: 8, Bounds: []int{0, 4, 8},
			Runs: []LabelRun{{Start: 0, Labels: []int32{0, 1, 0, 1}}, {Start: 6, Labels: []int32{1}}}},
	}
	for i, d := range cases {
		payload := EncodeDelta(d)
		got, err := DecodeDelta(payload)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.Seq != d.Seq || got.Epoch != d.Epoch || got.Gen != d.Gen ||
			got.K != d.K || got.N != d.N || got.Cross != d.Cross || got.Total != d.Total ||
			len(got.Bounds) != len(d.Bounds) || len(got.Runs) != len(d.Runs) {
			t.Fatalf("case %d: %+v != %+v", i, got, d)
		}
		for j := range d.Bounds {
			if got.Bounds[j] != d.Bounds[j] {
				t.Fatalf("case %d bounds %v != %v", i, got.Bounds, d.Bounds)
			}
		}
		for j := range d.Runs {
			if got.Runs[j].Start != d.Runs[j].Start || len(got.Runs[j].Labels) != len(d.Runs[j].Labels) {
				t.Fatalf("case %d runs %+v != %+v", i, got.Runs, d.Runs)
			}
		}
	}
	// Corruption is rejected: trailing garbage and truncation.
	payload := EncodeDelta(cases[2])
	if _, err := DecodeDelta(append(payload, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := DecodeDelta(payload[:len(payload)-1]); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

// Every store opens its feed with a baseline delta at seq 1 that alone
// reconstructs the composed labels.
func TestBaselineDeltaReconstructsLabels(t *testing.T) {
	opts := core.DefaultOptions(4)
	opts.Seed = 7
	opts.NumWorkers = 2
	opts.MaxIterations = 20
	st, err := Bootstrap(gen.WattsStrogatz(300, 6, 0.2, 7), Config{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	ds, _ := st.DeltasSince(0, 1)
	if len(ds) != 1 || ds[0].Seq != 1 {
		t.Fatalf("first delta = %+v", ds)
	}
	base := ds[0]
	if base.K != 4 || base.N != 300 || len(base.Bounds) == 0 || base.RunVertices() != 300 {
		t.Fatalf("baseline delta k=%d n=%d bounds=%d runs cover %d", base.K, base.N, len(base.Bounds), base.RunVertices())
	}
	labels, err := base.Apply(nil)
	if err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	for v := range snap.Labels {
		if labels[v] != snap.Labels[v] {
			t.Fatalf("baseline label[%d] = %d, snapshot %d", v, labels[v], snap.Labels[v])
		}
	}
	if base.Cross != snap.CutWeight || base.Total != snap.TotalWeight {
		t.Fatalf("baseline counters %d/%d, snapshot %d/%d", base.Cross, base.Total, snap.CutWeight, snap.TotalWeight)
	}
}

func FuzzDeltaCodec(f *testing.F) {
	f.Add(EncodeDelta(&Delta{}))
	f.Add(EncodeDelta(&Delta{Seq: 3, Epoch: 1, Gen: 2, K: 4, N: 6, Cross: 5, Total: 9,
		Bounds: []int{0, 3, 6}, Runs: []LabelRun{{Start: 2, Labels: []int32{1, 0}}}}))
	f.Add([]byte{1, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := DecodeDelta(b)
		if err != nil {
			return
		}
		// The codec is canonical: re-encoding must be byte-identical.
		if enc := EncodeDelta(d); !bytes.Equal(enc, b) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", enc, b)
		}
		// Every strict prefix is torn and must be rejected.
		for cut := 0; cut < len(b); cut += 1 + cut/4 {
			if _, err := DecodeDelta(b[:cut]); err == nil {
				t.Fatalf("truncated payload (%d of %d bytes) decoded", cut, len(b))
			}
		}
	})
}
