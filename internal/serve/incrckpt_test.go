package serve

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"path/filepath"

	"repro/internal/graph"
	"repro/internal/wal"
)

// randomHistory builds a reproducible random mutation script: steady
// edge churn, occasional growth, occasional removal of an edge the
// script itself added (uniform weight 2, so removals are unambiguous).
func randomHistory(rng *rand.Rand, steps int) []*graph.Mutation {
	n := 100 // twoClusters(50)
	var added []graph.Edge
	var muts []*graph.Mutation
	for s := 0; s < steps; s++ {
		mut := &graph.Mutation{}
		if rng.Intn(3) == 0 {
			g := 1 + rng.Intn(4)
			mut.NewVertices = g
			for i := 0; i < g; i++ {
				mut.NewEdges = append(mut.NewEdges, graph.WeightedEdgeRecord{
					U: graph.VertexID(n + i), V: graph.VertexID(rng.Intn(n)), Weight: 2})
			}
			n += g
		}
		for i := 10 + rng.Intn(20); i > 0; i-- {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			mut.NewEdges = append(mut.NewEdges, graph.WeightedEdgeRecord{
				U: graph.VertexID(u), V: graph.VertexID(v), Weight: 2})
			added = append(added, graph.Edge{From: graph.VertexID(u), To: graph.VertexID(v)})
		}
		if len(added) > 8 && rng.Intn(3) == 0 {
			i := rng.Intn(len(added))
			mut.RemovedEdges = append(mut.RemovedEdges, added[i])
			added[i] = added[len(added)-1]
			added = added[:len(added)-1]
		}
		muts = append(muts, mut)
	}
	return muts
}

func playHistory(t *testing.T, st *Store, muts []*graph.Mutation, resizeAt, resizeK int) {
	t.Helper()
	for i, mut := range muts {
		if err := st.Submit(mut); err != nil {
			t.Fatal(err)
		}
		if err := st.Quiesce(); err != nil && !strings.Contains(err.Error(), "absent edge") {
			t.Fatal(err)
		}
		if i == resizeAt {
			if err := st.Resize(resizeK); err != nil {
				t.Fatal(err)
			}
			if err := st.Quiesce(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// The incremental-checkpoint acceptance property: over randomized
// histories, recovery from a base checkpoint plus its delta chain is
// bit-identical to recovery with incremental checkpoints disabled
// (full re-encodes only) — labels, k, shard bounds, and the integer cut
// counters — at one and several shards.
func TestIncrementalRecoveryBitIdenticalToFull(t *testing.T) {
	for _, shards := range []int{1, 3} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				muts := randomHistory(rand.New(rand.NewSource(seed*1000+int64(shards))), 12)

				runDurable := func(maxChain int) (string, *Store) {
					dir := t.TempDir()
					cfg := durableCfg(shards, 3)
					cfg.Durability.MaxDeltaChain = maxChain
					w, labels := twoClusters(50)
					st, err := NewDurable(dir, w, append([]int32(nil), labels...), cfg)
					if err != nil {
						t.Fatal(err)
					}
					playHistory(t, st, muts, 7, 4)
					if err := st.Close(); err != nil {
						t.Fatal(err)
					}
					return dir, st
				}

				incrDir, incrSt := runDurable(0) // 0 = default chain length
				fullDir, fullSt := runDurable(-1)
				requireSameState(t, "incr-vs-full-precrash", incrSt, fullSt)

				// The incremental run must actually have written a chain —
				// otherwise this test proves nothing.
				if dseqs, err := wal.DeltaCheckpoints(filepath.Join(incrDir, "checkpoints")); err != nil || len(dseqs) == 0 {
					t.Fatalf("incremental run wrote no delta checkpoints (%v, %v)", dseqs, err)
				}
				if got := incrSt.Counters().Snapshot().IncrCheckpointBytes; got == 0 {
					t.Fatal("IncrCheckpointBytes = 0 on the incremental run")
				}
				if dseqs, err := wal.DeltaCheckpoints(filepath.Join(fullDir, "checkpoints")); err != nil || len(dseqs) != 0 {
					t.Fatalf("full-only run wrote delta checkpoints: %v, %v", dseqs, err)
				}

				recover := func(dir string, maxChain int) *Store {
					cfg := durableCfg(shards, 3)
					cfg.Durability.MaxDeltaChain = maxChain
					rec, err := Open(dir, cfg)
					if err != nil {
						t.Fatal(err)
					}
					t.Cleanup(func() { rec.Close() })
					if err := rec.Quiesce(); err != nil && !strings.Contains(err.Error(), "absent edge") {
						t.Fatal(err)
					}
					return rec
				}
				recIncr := recover(incrDir, 0)
				recFull := recover(fullDir, -1)
				requireSameState(t, "incr-recovery-vs-full-recovery", recIncr, recFull)
				requireSameState(t, "incr-recovery-vs-precrash", recIncr, incrSt)
				if c := recIncr.Counters().Snapshot(); c.CutDrift != 0 {
					t.Fatalf("incremental recovery reconciled drift %d times; must be exact", c.CutDrift)
				}

				// Both recoveries keep working identically.
				tail := randomHistory(rand.New(rand.NewSource(seed*7777)), 2)
				playHistory(t, recIncr, tail, -1, 0)
				playHistory(t, recFull, tail, -1, 0)
				requireSameState(t, "post-recovery-continuation", recIncr, recFull)
			})
		}
	}
}

// A chain longer than MaxDeltaChain must force a full rebase that prunes
// the superseded links, and the rebased state must still recover.
func TestIncrementalChainRebase(t *testing.T) {
	dir := t.TempDir()
	cfg := durableCfg(2, 1) // checkpoint on every record
	cfg.Durability.MaxDeltaChain = 2
	w, labels := twoClusters(50)
	st, err := NewDurable(dir, w, append([]int32(nil), labels...), cfg)
	if err != nil {
		t.Fatal(err)
	}
	muts := randomHistory(rand.New(rand.NewSource(99)), 10)
	playHistory(t, st, muts, -1, 0)
	rebases := st.Counters().Snapshot().CheckpointRebases
	if rebases == 0 {
		t.Fatal("10 checkpointed batches with MaxDeltaChain=2 forced no rebase")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// On disk: any surviving chain is at most MaxDeltaChain long.
	_, _, chain, err := wal.LatestChain(filepath.Join(dir, "checkpoints"))
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) > 2 {
		t.Fatalf("chain of %d links survived MaxDeltaChain=2", len(chain))
	}

	rec, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if err := rec.Quiesce(); err != nil && !strings.Contains(err.Error(), "absent edge") {
		t.Fatal(err)
	}
	requireSameState(t, "post-rebase-recovery", rec, st)
}
