package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/wal"
)

// durableCfg is the store configuration the recovery tests share: small
// checkpoint cadence so a mid-sequence checkpoint + journal tail both
// exist, NoFinalCheckpoint so Close simulates a crash (the journal tail
// must carry the recovery), and the same partitioner seed everywhere so
// quiesced histories are deterministic.
func durableCfg(shards, checkpointEvery int) Config {
	return Config{
		Options:       storeOpts(2, 9),
		Shards:        shards,
		DegradeFactor: 1.05,
		Durability: DurabilityConfig{
			CheckpointEvery:   checkpointEvery,
			NoFinalCheckpoint: true,
			SegmentBytes:      1 << 10,
		},
	}
}

// scriptedEntry drives the same entry sequence as
// TestShardCountDoesNotChangeLabels: growth at step 2, steady edge
// additions otherwise, one elastic resize at the end.
func scriptedMutation(step int) *graph.Mutation {
	mut := &graph.Mutation{}
	if step == 2 {
		mut.NewVertices = 5
		for i := 0; i < 5; i++ {
			mut.NewEdges = append(mut.NewEdges, graph.WeightedEdgeRecord{
				U: graph.VertexID(100 + i), V: graph.VertexID(i), Weight: 2})
		}
	}
	for i := 0; i < 20; i++ {
		mut.NewEdges = append(mut.NewEdges, graph.WeightedEdgeRecord{
			U: graph.VertexID((i + 13*step) % 50), V: graph.VertexID(50 + (i*3+step)%50), Weight: 2})
	}
	return mut
}

func runScript(t *testing.T, st *Store) {
	t.Helper()
	for step := 0; step < 6; step++ {
		if err := st.Submit(scriptedMutation(step)); err != nil {
			t.Fatal(err)
		}
		if err := st.Quiesce(); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Resize(4); err != nil {
		t.Fatal(err)
	}
	if err := st.Quiesce(); err != nil {
		t.Fatal(err)
	}
}

func requireSameState(t *testing.T, name string, got, want *Store) {
	t.Helper()
	gs, ws := got.Snapshot(), want.Snapshot()
	if gs.K != ws.K || len(gs.Labels) != len(ws.Labels) {
		t.Fatalf("%s: k=%d with %d labels, want k=%d with %d labels", name, gs.K, len(gs.Labels), ws.K, len(ws.Labels))
	}
	for v := range ws.Labels {
		if gs.Labels[v] != ws.Labels[v] {
			t.Fatalf("%s: label of vertex %d = %d, want %d", name, v, gs.Labels[v], ws.Labels[v])
		}
	}
	if gs.CutWeight != ws.CutWeight || gs.TotalWeight != ws.TotalWeight {
		t.Fatalf("%s: counters (cut=%d,total=%d), want (cut=%d,total=%d)",
			name, gs.CutWeight, gs.TotalWeight, ws.CutWeight, ws.TotalWeight)
	}
	for l := range ws.CutByPartition {
		if gs.CutByPartition[l] != ws.CutByPartition[l] {
			t.Fatalf("%s: CutByPartition[%d] = %d, want %d", name, l, gs.CutByPartition[l], ws.CutByPartition[l])
		}
	}
	gb, wb := got.router.Load().bounds, want.router.Load().bounds
	if len(gb) != len(wb) {
		t.Fatalf("%s: %d shard bounds, want %d", name, len(gb), len(wb))
	}
	for i := range wb {
		if gb[i] != wb[i] {
			t.Fatalf("%s: shard bounds %v, want %v", name, gb, wb)
		}
	}
	if gs.AppliedBatches != ws.AppliedBatches {
		t.Fatalf("%s: applied %d, want %d", name, gs.AppliedBatches, ws.AppliedBatches)
	}
}

// The acceptance property: checkpoint + journal replay reproduces labels,
// k, shard ranges and integer cut counters bit-identical to the
// uninterrupted store, at one and several shards — and the post-recovery
// exact reconcile finds zero drift.
func TestDurableRecoveryBitIdentical(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			// Uninterrupted in-memory reference.
			w, labels := twoClusters(50)
			ref, err := New(w, append([]int32(nil), labels...), Config{
				Options: storeOpts(2, 9), Shards: shards, DegradeFactor: 1.05,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			runScript(t, ref)

			// Durable run over the same script, "crashed" at the end:
			// NoFinalCheckpoint leaves the tail only in the journal.
			dir := t.TempDir()
			w2, labels2 := twoClusters(50)
			st, err := NewDurable(dir, w2, append([]int32(nil), labels2...), durableCfg(shards, 3))
			if err != nil {
				t.Fatal(err)
			}
			runScript(t, st)
			requireSameState(t, "durable-vs-inmemory", st, ref)
			preCrash := st.Counters().Snapshot()
			if preCrash.Checkpoints < 2 {
				t.Fatalf("only %d periodic checkpoints; the test must exercise checkpoint+tail, not tail-only", preCrash.Checkpoints)
			}
			if preCrash.JournalAppends != 7 {
				t.Fatalf("journaled %d records, want 7 (6 batches + 1 resize)", preCrash.JournalAppends)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}

			// Recover and require bit-identical state.
			rec, err := Open(dir, durableCfg(shards, 3))
			if err != nil {
				t.Fatal(err)
			}
			defer rec.Close()
			if err := rec.Quiesce(); err != nil && !strings.Contains(err.Error(), "absent edge") {
				t.Fatal(err)
			}
			requireSameState(t, "recovered", rec, ref)
			c := rec.Counters().Snapshot()
			if c.ReplayedRecords == 0 {
				t.Fatal("recovery replayed nothing; the journal tail was not exercised")
			}
			if c.CutReconciles == 0 {
				t.Fatal("post-recovery reconcile did not run")
			}
			if c.CutDrift != 0 {
				t.Fatalf("post-recovery reconcile repaired drift %d times; recovered counters must be exact", c.CutDrift)
			}
			// And the recovered store keeps working: one more quiesced step
			// must match the reference continuing the same script.
			if err := rec.Submit(scriptedMutation(7)); err != nil {
				t.Fatal(err)
			}
			if err := rec.Quiesce(); err != nil {
				t.Fatal(err)
			}
			if err := ref.Submit(scriptedMutation(7)); err != nil {
				t.Fatal(err)
			}
			if err := ref.Quiesce(); err != nil {
				t.Fatal(err)
			}
			requireSameState(t, "post-recovery-continuation", rec, ref)
		})
	}
}

// The crash-mid-checkpoint property (ISSUE 5): a crash while a
// background checkpoint is in flight leaves, at worst, the previous
// checkpoint set plus a leftover temp file — wal.WriteCheckpoint installs
// atomically, so the in-flight checkpoint simply never appears. Recovery
// must ignore the temp file, fall back to the previous valid checkpoint,
// and replay the LONGER journal tail to a state bit-identical to the
// uninterrupted run, at one and several shards. (The journal makes this
// possible because it is only truncated below the oldest RETAINED
// checkpoint, never below the newest.)
func TestDurableRecoveryCrashDuringCheckpoint(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			w, labels := twoClusters(50)
			ref, err := New(w, append([]int32(nil), labels...), Config{
				Options: storeOpts(2, 9), Shards: shards, DegradeFactor: 1.05,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			runScript(t, ref)

			dir := t.TempDir()
			w2, labels2 := twoClusters(50)
			// This test is about the FULL-checkpoint fallback: disable the
			// incremental chain so every periodic checkpoint is a full file
			// recovery can fall back between.
			cfg := durableCfg(shards, 3)
			cfg.Durability.MaxDeltaChain = -1
			st, err := NewDurable(dir, w2, append([]int32(nil), labels2...), cfg)
			if err != nil {
				t.Fatal(err)
			}
			runScript(t, st)
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}

			// Simulate the crash mid-background-checkpoint: the newest
			// checkpoint was never installed (remove it) and the writer died
			// mid-write (a leftover temp file recovery must ignore).
			cdir := filepath.Join(dir, "checkpoints")
			seqs, err := wal.Checkpoints(cdir)
			if err != nil {
				t.Fatal(err)
			}
			if len(seqs) < 2 {
				t.Fatalf("need >= 2 checkpoints to lose one, have %v", seqs)
			}
			newest := seqs[len(seqs)-1]
			if err := os.Remove(filepath.Join(cdir, fmt.Sprintf("ckpt-%016x.ckpt", newest))); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(cdir, "ckpt-1234567890.tmp"), []byte("torn checkpoint write"), 0o644); err != nil {
				t.Fatal(err)
			}

			rec, err := Open(dir, cfg)
			if err != nil {
				t.Fatalf("recovery must fall back past the lost checkpoint: %v", err)
			}
			defer rec.Close()
			if err := rec.Quiesce(); err != nil && !strings.Contains(err.Error(), "absent edge") {
				t.Fatal(err)
			}
			requireSameState(t, "crash-during-checkpoint", rec, ref)
			c := rec.Counters().Snapshot()
			// 7 journaled records, surviving checkpoint at seq 3: the tail is
			// records 4..7 — strictly longer than the 1-record tail the lost
			// checkpoint at seq 6 would have left.
			if c.ReplayedRecords != int64(7-int(seqs[len(seqs)-2])) {
				t.Fatalf("replayed %d records from the fallback checkpoint at seq %d, want %d",
					c.ReplayedRecords, seqs[len(seqs)-2], 7-int(seqs[len(seqs)-2]))
			}
			if c.CutDrift != 0 {
				t.Fatalf("cut drift %d after fallback recovery", c.CutDrift)
			}
			// The recovered store keeps working identically.
			for _, target := range []*Store{rec, ref} {
				if err := target.Submit(scriptedMutation(7)); err != nil {
					t.Fatal(err)
				}
				if err := target.Quiesce(); err != nil {
					t.Fatal(err)
				}
			}
			requireSameState(t, "post-fallback-continuation", rec, ref)
		})
	}
}

// A graceful Close writes a final checkpoint, so reopening replays
// nothing and still lands on the identical state.
func TestDurableGracefulReopen(t *testing.T) {
	dir := t.TempDir()
	w, labels := twoClusters(50)
	cfg := durableCfg(2, -1) // no periodic checkpoints: Close's final one carries everything
	cfg.Durability.NoFinalCheckpoint = false
	st, err := NewDurable(dir, w, append([]int32(nil), labels...), cfg)
	if err != nil {
		t.Fatal(err)
	}
	runScript(t, st)
	want := st.Snapshot()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	c := rec.Counters().Snapshot()
	if c.ReplayedRecords != 0 {
		t.Fatalf("replayed %d records past a final checkpoint", c.ReplayedRecords)
	}
	got := rec.Snapshot()
	if got.K != want.K || got.CutWeight != want.CutWeight || got.TotalWeight != want.TotalWeight {
		t.Fatalf("reopened state %+v, want %+v", got, want)
	}
	for v := range want.Labels {
		if got.Labels[v] != want.Labels[v] {
			t.Fatalf("label of %d = %d, want %d", v, got.Labels[v], want.Labels[v])
		}
	}
}

// A torn final record — the classic crash shape — must be dropped by
// recovery, landing exactly on the state before the torn batch.
func TestDurableTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	w, labels := twoClusters(50)
	cfg := durableCfg(2, -1)
	st, err := NewDurable(dir, w, append([]int32(nil), labels...), cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, labels2 := twoClusters(50)
	ref, err := New(w2, append([]int32(nil), labels2...), Config{
		Options: storeOpts(2, 9), Shards: 2, DegradeFactor: 1.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	// Reference applies steps 0..4; the durable store also applies step 5,
	// whose journal record we then tear.
	for step := 0; step < 6; step++ {
		if err := st.Submit(scriptedMutation(step)); err != nil {
			t.Fatal(err)
		}
		if err := st.Quiesce(); err != nil {
			t.Fatal(err)
		}
		if step < 5 {
			if err := ref.Submit(scriptedMutation(step)); err != nil {
				t.Fatal(err)
			}
			if err := ref.Quiesce(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "journal", "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no journal segments: %v", err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-2); err != nil {
		t.Fatal(err)
	}

	rec, err := Open(dir, cfg)
	if err != nil {
		t.Fatalf("torn tail must not fail recovery: %v", err)
	}
	defer rec.Close()
	if err := rec.Quiesce(); err != nil {
		t.Fatal(err)
	}
	requireSameState(t, "torn-tail", rec, ref)
	if c := rec.Counters().Snapshot(); c.ReplayedRecords != 5 || c.CutDrift != 0 {
		t.Fatalf("replayed %d records (drift %d), want 5 (0)", c.ReplayedRecords, c.CutDrift)
	}
}

// Damage before the tail is corruption: recovery must refuse rather than
// silently drop acknowledged mutations.
func TestDurableMidLogCorruptionFailsOpen(t *testing.T) {
	dir := t.TempDir()
	w, labels := twoClusters(50)
	cfg := durableCfg(1, -1)
	cfg.Durability.SegmentBytes = 256 // force several segments
	st, err := NewDurable(dir, w, append([]int32(nil), labels...), cfg)
	if err != nil {
		t.Fatal(err)
	}
	runScript(t, st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "journal", "wal-*.log"))
	if len(segs) < 2 {
		t.Fatalf("need several segments, have %d", len(segs))
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, cfg); err == nil {
		t.Fatal("mid-log corruption recovered silently")
	}
}

func TestOpenWithoutState(t *testing.T) {
	dir := t.TempDir()
	if HasState(dir) {
		t.Fatal("empty dir reports state")
	}
	if _, err := Open(dir, durableCfg(1, -1)); !errors.Is(err, wal.ErrNoCheckpoint) {
		t.Fatalf("Open of empty dir: %v", err)
	}
}

func TestNewDurableRefusesExistingState(t *testing.T) {
	dir := t.TempDir()
	w, labels := twoClusters(20)
	st, err := NewDurable(dir, w, append([]int32(nil), labels...), durableCfg(1, -1))
	if err != nil {
		t.Fatal(err)
	}
	if !st.Durable() {
		t.Fatal("durable store reports in-memory")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if !HasState(dir) {
		t.Fatal("dir with checkpoints reports no state")
	}
	w2, labels2 := twoClusters(20)
	if _, err := NewDurable(dir, w2, labels2, durableCfg(1, -1)); err == nil {
		t.Fatal("NewDurable clobbered an existing data dir")
	}
}

// Aggressive checkpointing must prune checkpoints to the retention limit
// and reclaim journal segments — and the surviving checkpoint + tail must
// still recover a state bit-identical to an uninterrupted run.
func TestDurableCheckpointTruncatesJournal(t *testing.T) {
	dir := t.TempDir()
	w, labels := twoClusters(50)
	cfg := durableCfg(1, 2)
	cfg.Durability.SegmentBytes = 512
	st, err := NewDurable(dir, w, append([]int32(nil), labels...), cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, labels2 := twoClusters(50)
	ref, err := New(w2, append([]int32(nil), labels2...), Config{
		Options: storeOpts(2, 9), Shards: 1, DegradeFactor: 1.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for step := 0; step < 20; step++ {
		for _, target := range []*Store{st, ref} {
			if err := target.Submit(scriptedMutation(step % 6)); err != nil {
				t.Fatal(err)
			}
			if err := target.Quiesce(); err != nil {
				t.Fatal(err)
			}
		}
	}
	c := st.Counters().Snapshot()
	if c.Checkpoints < 5 {
		t.Fatalf("only %d checkpoints after 20 quiesced batches at cadence 2", c.Checkpoints)
	}
	ckpts, err := wal.Checkpoints(filepath.Join(dir, "checkpoints"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpts) != 2 {
		t.Fatalf("%d checkpoints retained, want 2", len(ckpts))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if err := rec.Quiesce(); err != nil {
		t.Fatal(err)
	}
	requireSameState(t, "truncated-journal", rec, ref)
}
