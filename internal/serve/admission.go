package serve

// Overload robustness: per-tenant admission control on the mutation log,
// deficit-round-robin fair draining, and the degradation budget that
// trades cut quality for latency under lookup pressure.
//
//   - Admission: every submission is attributed to a tenant (the
//     Mutation.Tenant tag; empty is the default tenant) and passes a
//     token bucket refilled at Quota.Rate before it may enter the log.
//     A refusal is typed (ErrQuotaExceeded via QuotaError, with the
//     bucket's own refill time as RetryAfter) and never consumes log
//     capacity, so one abusive client cannot starve admission for the
//     rest. TrySubmit additionally enforces a per-tenant backlog cap
//     (Quota.TenantDepth) so a single tenant cannot own the whole
//     bounded log either.
//   - Fair drain: the coordinator routes admitted mutations into
//     per-tenant FIFO queues and forms each commit group by
//     deficit-round-robin over the tenants (Quota.Weights, default
//     equal), so a burst from one tenant pipelines BEHIND others'
//     steady trickle rather than ahead of it. The picked group is then
//     sorted back into arrival order, which preserves the exact FIFO
//     apply order for any single tenant — and therefore the package's
//     determinism contract: with one tenant (every test and every
//     pre-multi-tenant caller), group formation is the identity.
//   - Degradation budget: the coordinator samples lookup and drain
//     rates each Overload.Window into EWMAs; past the configured
//     thresholds it defers background restabilization and exact
//     reconcile passes (cut quality degrades gracefully, lookup latency
//     does not), and the HTTP layer sheds /resize. RetryAfter derives
//     an honest client backoff from the observed drain rate.
//
// Everything here is off by default: a zero QuotaConfig admits
// everything, a zero OverloadConfig never defers, and a store with one
// (default) tenant drains in exact submission order.

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"
	"time"
)

// Errors returned by the admission and resize paths.
var (
	// ErrQuotaExceeded is returned (wrapped in a QuotaError) when a
	// tenant's token bucket is empty. Match with errors.Is.
	ErrQuotaExceeded = errors.New("serve: tenant quota exceeded")
	// ErrDegraded is returned by the write paths after a storage fault
	// poisoned the journal: the store is read-only (fail-stop) and must
	// be closed and recovered via Open.
	ErrDegraded = errors.New("serve: store degraded after journal fault; writes refused")
	// ErrKUnchanged is returned by Resize when the requested k equals the
	// store's target partition count — the current k composed with every
	// resize already queued — making the duplicate-resize check atomic
	// with the coordinator instead of a caller-side read-then-act race.
	ErrKUnchanged = errors.New("serve: resize to current k")
)

// QuotaError is the typed admission refusal: which tenant, and when its
// bucket will hold a token again. errors.Is(err, ErrQuotaExceeded)
// matches it.
type QuotaError struct {
	Tenant     string
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	name := e.Tenant
	if name == "" {
		name = "default"
	}
	return fmt.Sprintf("serve: tenant %s quota exceeded (retry in %v)", name, e.RetryAfter)
}

func (e *QuotaError) Is(target error) bool { return target == ErrQuotaExceeded }

// QuotaConfig tunes per-tenant admission control and fair draining. The
// zero value disables every limit and weighs all tenants equally.
type QuotaConfig struct {
	// Rate is the sustained admission rate per tenant in batches/second;
	// 0 disables the token bucket.
	Rate float64
	// Burst is the bucket capacity (the batch count a tenant may submit
	// instantaneously). Default max(1, Rate) when Rate is set.
	Burst float64
	// TenantDepth caps one tenant's admitted-but-unresolved backlog on
	// the TrySubmit path (ErrLogFull past it), so a flooding tenant
	// saturates its own allowance, not the shared bounded log. 0
	// disables. Blocking Submit is exempt: it already pays backpressure
	// by waiting.
	TenantDepth int
	// Weights are the deficit-round-robin drain weights per tenant name;
	// tenants not listed weigh 1. A tenant with weight w gets w entries
	// per pass while backlogged.
	Weights map[string]int
}

func (q *QuotaConfig) normalize() error {
	if q.Rate < 0 {
		return fmt.Errorf("serve: Quota.Rate=%v", q.Rate)
	}
	if q.Burst < 0 {
		return fmt.Errorf("serve: Quota.Burst=%v", q.Burst)
	}
	if q.Burst == 0 && q.Rate > 0 {
		q.Burst = math.Max(1, q.Rate)
	}
	if q.TenantDepth < 0 {
		return fmt.Errorf("serve: Quota.TenantDepth=%d", q.TenantDepth)
	}
	for name, w := range q.Weights {
		if w < 1 {
			return fmt.Errorf("serve: Quota.Weights[%q]=%d, want >= 1", name, w)
		}
	}
	return nil
}

// defaultOverloadWindow is the load-sampling period when
// OverloadConfig.Window is unset.
const defaultOverloadWindow = 100 * time.Millisecond

// OverloadConfig tunes the degradation budget. The zero value never
// declares overload (maintenance always runs, nothing is shed).
type OverloadConfig struct {
	// LookupRate declares overload while the EWMA lookup rate
	// (lookups/second) exceeds this; 0 disables the trigger.
	LookupRate float64
	// Staleness declares overload while the submitted-but-unresolved
	// batch backlog (the snapshot staleness numerator) exceeds this; 0
	// disables the trigger.
	Staleness float64
	// Window is the load-sampling period. Default 100ms.
	Window time.Duration
}

func (o *OverloadConfig) normalize() error {
	if o.LookupRate < 0 || o.Staleness < 0 {
		return fmt.Errorf("serve: negative overload threshold")
	}
	if o.Window < 0 {
		return fmt.Errorf("serve: Overload.Window=%v", o.Window)
	}
	if o.Window == 0 {
		o.Window = defaultOverloadWindow
	}
	return nil
}

func (o *OverloadConfig) enabled() bool { return o.LookupRate > 0 || o.Staleness > 0 }

// tenantState is one tenant's admission bucket, counters, and
// coordinator-owned drain queue. The bucket is guarded by mu (submitters
// race each other); the counters are atomic (submitters and coordinator
// race); queue, qhead, deficit and ringed are coordinator-only.
type tenantState struct {
	name   string
	weight int

	bktMu  sync.Mutex // guards the token bucket
	tokens float64
	last   time.Time

	submitted     atomic.Int64 // admitted into the log
	committed     atomic.Int64 // resolved and applied
	rejected      atomic.Int64 // resolved and refused (validation or journal failure)
	quotaRejected atomic.Int64 // refused at admission, never enqueued
	backlog       atomic.Int64 // admitted, not yet picked into a commit group

	queue   []logEntry
	qhead   int
	deficit int
	ringed  bool
}

func (t *tenantState) qlen() int { return len(t.queue) - t.qhead }

func (t *tenantState) push(e logEntry) { t.queue = append(t.queue, e) }

func (t *tenantState) pop() logEntry {
	e := t.queue[t.qhead]
	t.queue[t.qhead] = logEntry{} // drop batch references
	t.qhead++
	if t.qhead == len(t.queue) {
		t.queue, t.qhead = t.queue[:0], 0
	}
	return e
}

// takeToken refills the bucket to now and consumes one token, or reports
// the duration until one is available.
func (t *tenantState) takeToken(rate, burst float64, now time.Time) (retry time.Duration, ok bool) {
	t.bktMu.Lock()
	defer t.bktMu.Unlock()
	if t.last.IsZero() {
		t.tokens = burst
	} else if dt := now.Sub(t.last); dt > 0 {
		t.tokens = math.Min(burst, t.tokens+rate*dt.Seconds())
	}
	t.last = now
	if t.tokens >= 1 {
		t.tokens--
		return 0, true
	}
	need := (1 - t.tokens) / rate
	return time.Duration(math.Ceil(need * float64(time.Second))), false
}

// tenant returns (lazily creating) the state for name. Safe on a
// zero-value Store: the map and its mutex initialize on first use.
func (s *Store) tenant(name string) *tenantState {
	s.tenantsMu.Lock()
	defer s.tenantsMu.Unlock()
	if t, ok := s.tenants[name]; ok {
		return t
	}
	if s.tenants == nil {
		s.tenants = make(map[string]*tenantState)
	}
	w := s.cfg.Quota.Weights[name]
	if w < 1 {
		w = 1
	}
	t := &tenantState{name: name, weight: w}
	s.tenants[name] = t
	return t
}

// admit runs admission control for one submission: the token bucket
// (both paths) and the per-tenant backlog cap (TrySubmit only).
func (s *Store) admit(t *tenantState, try bool) error {
	q := &s.cfg.Quota
	if q.Rate > 0 {
		if retry, ok := t.takeToken(q.Rate, q.Burst, s.clock()); !ok {
			t.quotaRejected.Add(1)
			s.ctr.QuotaRejections.Add(1)
			return &QuotaError{Tenant: t.name, RetryAfter: retry}
		}
	}
	if try && q.TenantDepth > 0 && t.backlog.Load() >= int64(q.TenantDepth) {
		return ErrLogFull
	}
	return nil
}

// TenantStats is one tenant's admission and resolution counters, as
// surfaced in /stats.
type TenantStats struct {
	Weight        int   `json:"weight"`
	Submitted     int64 `json:"submitted"`
	Committed     int64 `json:"committed"`
	Rejected      int64 `json:"rejected"`
	QuotaRejected int64 `json:"quota_rejected"`
	Backlog       int64 `json:"backlog"`
}

// Tenants snapshots the per-tenant counters for every tenant the store
// has seen. For any tenant, Submitted == Committed + Rejected + Backlog
// once the log is drained (QuotaRejected counts refusals that were never
// submitted).
func (s *Store) Tenants() map[string]TenantStats {
	s.tenantsMu.Lock()
	defer s.tenantsMu.Unlock()
	out := make(map[string]TenantStats, len(s.tenants))
	for name, t := range s.tenants {
		out[name] = TenantStats{
			Weight:        t.weight,
			Submitted:     t.submitted.Load(),
			Committed:     t.committed.Load(),
			Rejected:      t.rejected.Load(),
			QuotaRejected: t.quotaRejected.Load(),
			Backlog:       t.backlog.Load(),
		}
	}
	return out
}

// clock is the store's time source; tests override Store.now.
func (s *Store) clock() time.Time {
	if s.now != nil {
		return s.now()
	}
	return time.Now()
}

// Degraded reports whether a storage fault poisoned the journal: the
// store serves lookups from the last published snapshots but refuses
// every write with ErrDegraded (fail-stop; recover by Close + Open).
func (s *Store) Degraded() bool { return s.degraded.Load() }

// Overloaded reports whether the degradation budget is engaged:
// background restabilization and reconcile passes are deferred and
// callers should shed expensive writes.
func (s *Store) Overloaded() bool { return s.overloaded.Load() }

// DrainRate returns the EWMA rate at which the coordinator resolves
// batches, in batches/second (0 until the first sampling window closes).
func (s *Store) DrainRate() float64 {
	return math.Float64frombits(s.drainRate.Load())
}

// LookupRate returns the EWMA lookup rate in lookups/second.
func (s *Store) LookupRate() float64 {
	return math.Float64frombits(s.lookupRate.Load())
}

// RetryAfter estimates how long a refused client should back off:
// backlog over observed drain rate, clamped to [1s, 30s] (1s when no
// drain rate has been observed yet).
func (s *Store) RetryAfter() time.Duration {
	backlog := s.submitted.Load() - s.applied.Load()
	if backlog < 1 {
		backlog = 1
	}
	dr := s.DrainRate()
	if dr <= 0 {
		return time.Second
	}
	d := time.Duration(float64(backlog) / dr * float64(time.Second))
	return min(max(d, time.Second), 30*time.Second)
}

// updateLoad folds one sample into the EWMA lookup/drain rates and
// re-evaluates the overload predicate. Coordinator-only; now comes from
// s.clock() (or directly from tests).
func (s *Store) updateLoad(now time.Time) {
	w := s.cfg.Overload.Window
	if w <= 0 {
		w = defaultOverloadWindow
	}
	if s.loadAt.IsZero() {
		s.loadAt = now
		s.loadLookups = s.ctr.Lookups.Load()
		s.loadApplied = s.applied.Load()
		return
	}
	dt := now.Sub(s.loadAt)
	if dt < w {
		return
	}
	lookups := s.ctr.Lookups.Load()
	applied := s.applied.Load()
	sec := dt.Seconds()
	const alpha = 0.5 // EWMA smoothing per window
	lr := alpha*(float64(lookups-s.loadLookups)/sec) + (1-alpha)*s.LookupRate()
	dr := alpha*(float64(applied-s.loadApplied)/sec) + (1-alpha)*s.DrainRate()
	s.lookupRate.Store(math.Float64bits(lr))
	s.drainRate.Store(math.Float64bits(dr))
	s.loadAt, s.loadLookups, s.loadApplied = now, lookups, applied

	oc := &s.cfg.Overload
	over := oc.LookupRate > 0 && lr > oc.LookupRate ||
		oc.Staleness > 0 && float64(s.submitted.Load()-applied) > oc.Staleness
	s.overloaded.Store(over)
	if !over {
		// New deferral episode next time overload engages.
		s.restabDeferred, s.reconcileDeferred = false, false
	}
}

// route stamps an entry's arrival order and parks it: control entries
// (quiesce, attach, reconcile, resize) on the control queue, mutations
// on their tenant's queue. Coordinator-only.
func (s *Store) route(e logEntry) {
	e.seq = s.arrival
	s.arrival++
	if e.mut == nil || e.ten == nil {
		s.controlQ = append(s.controlQ, e)
		return
	}
	t := e.ten
	if !t.ringed {
		t.ringed = true
		s.ring = append(s.ring, t)
	}
	t.push(e)
	s.queued++
}

// transferLog moves what is currently queued in the mutation log channel
// into the fair queues without blocking. The parked-mutation total is
// capped at a small multiple of LogDepth: each receive frees a channel
// slot a blocked Submit refills, so an uncapped drain would grow the
// backlog (and defeat Submit's backpressure) without bound.
func (s *Store) transferLog() {
	limit := 4 * s.cfg.LogDepth
	for s.queued < limit {
		select {
		case e := <-s.log:
			s.route(e)
		default:
			return
		}
	}
}

// nextGroup forms the commit group for this coordinator turn: every
// pending control entry, plus up to LogDepth mutations picked
// deficit-round-robin across the backlogged tenants — each pass grants
// every tenant its weight in credits, so over any contention interval
// tenant shares converge to the weight ratio and a trickle tenant's
// entry is picked within one pass of arriving. The picked entries are
// then sorted back into arrival order, so the apply order within a
// tenant is exactly FIFO (and with a single tenant the whole group is
// FIFO — the determinism contract is untouched). Returns a buffer
// reused across turns; the caller clears it after handling.
func (s *Store) nextGroup() []logEntry {
	g := s.groupBuf[:0]
	g = append(g, s.controlQ...)
	clear(s.controlQ)
	s.controlQ = s.controlQ[:0]

	if s.queued > 0 {
		s.ctr.FairnessPasses.Add(1)
		budget := s.cfg.LogDepth
		if budget < 1 {
			budget = 1
		}
		n := len(s.ring)
		for budget > 0 && s.queued > 0 {
			progressed := false
			for i := 0; i < n && budget > 0 && s.queued > 0; i++ {
				t := s.ring[(s.cursor+i)%n]
				if t.qlen() == 0 {
					t.deficit = 0
					continue
				}
				t.deficit += t.weight
				for t.deficit >= 1 && t.qlen() > 0 && budget > 0 {
					g = append(g, t.pop())
					t.deficit--
					t.backlog.Add(-1)
					s.queued--
					budget--
					progressed = true
				}
			}
			if !progressed {
				break
			}
		}
		if n > 0 {
			s.cursor = (s.cursor + 1) % n
		}
	}
	if len(g) == 0 {
		s.groupBuf = g
		return nil
	}
	slices.SortFunc(g, func(a, b logEntry) int {
		switch {
		case a.seq < b.seq:
			return -1
		case a.seq > b.seq:
			return 1
		}
		return 0
	})
	s.groupBuf = g
	return g
}
