package serve

// Tests for the overload-robustness layer (ISSUE 6): per-tenant
// token-bucket admission, deficit-round-robin fair draining, the
// degradation budget, the atomic unchanged-k resize rejection, and the
// storage fail-stop contract (an injected journal fault never loses an
// acknowledged batch).

import (
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/wal"
)

// tenantBatch is addBatch tagged with a submitting tenant.
func tenantBatch(tenant string, n, step, edges int) *graph.Mutation {
	m := addBatch(n, step, edges)
	m.Tenant = tenant
	return m
}

// The token bucket refuses a tenant past its rate with a typed error
// carrying an honest refill estimate, refills with the clock, and keeps
// tenants' buckets independent. Driven against an unstarted coordinator
// with a fake clock, so the arithmetic is exact.
func TestQuotaTokenBucket(t *testing.T) {
	w, labels := twoClusters(20)
	cfg := Config{Options: storeOpts(2, 9), Quota: QuotaConfig{Rate: 1, Burst: 2}}
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	st, err := newStore(w, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	st.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if err := st.TrySubmit(tenantBatch("bursty", 40, i, 2)); err != nil {
			t.Fatalf("submit %d within burst: %v", i, err)
		}
	}
	err = st.TrySubmit(tenantBatch("bursty", 40, 2, 2))
	var qe *QuotaError
	if !errors.As(err, &qe) || !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-burst submit err = %v, want QuotaError", err)
	}
	if qe.Tenant != "bursty" || qe.RetryAfter != time.Second {
		t.Fatalf("QuotaError = %+v, want tenant bursty, retry 1s (empty bucket, rate 1)", qe)
	}

	// Half a second refills half a token: still refused, half the wait.
	now = now.Add(500 * time.Millisecond)
	if err := st.TrySubmit(tenantBatch("bursty", 40, 3, 2)); !errors.As(err, &qe) {
		t.Fatalf("submit at half token err = %v, want QuotaError", err)
	} else if qe.RetryAfter != 500*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 500ms", qe.RetryAfter)
	}
	now = now.Add(600 * time.Millisecond)
	if err := st.TrySubmit(tenantBatch("bursty", 40, 4, 2)); err != nil {
		t.Fatalf("submit after refill: %v", err)
	}

	// Another tenant holds its own full bucket the whole time.
	if err := st.TrySubmit(tenantBatch("quiet", 40, 0, 2)); err != nil {
		t.Fatalf("independent tenant refused: %v", err)
	}

	stats := st.Tenants()
	if b := stats["bursty"]; b.Submitted != 3 || b.QuotaRejected != 2 {
		t.Fatalf("bursty stats %+v, want submitted=3 quota_rejected=2", b)
	}
	if q := stats["quiet"]; q.Submitted != 1 || q.QuotaRejected != 0 {
		t.Fatalf("quiet stats %+v, want submitted=1 quota_rejected=0", q)
	}
	if got := st.ctr.QuotaRejections.Load(); got != 2 {
		t.Fatalf("QuotaRejections = %d, want 2", got)
	}
}

// TenantDepth caps one tenant's parked backlog on the non-blocking path
// without touching other tenants.
func TestQuotaTenantDepth(t *testing.T) {
	w, labels := twoClusters(20)
	cfg := Config{Options: storeOpts(2, 9), LogDepth: 16,
		Quota: QuotaConfig{Rate: 1000, Burst: 1000, TenantDepth: 2}}
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	st, err := newStore(w, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := st.TrySubmit(tenantBatch("deep", 40, i, 2)); err != nil {
			t.Fatalf("submit %d under depth: %v", i, err)
		}
	}
	if err := st.TrySubmit(tenantBatch("deep", 40, 2, 2)); !errors.Is(err, ErrLogFull) {
		t.Fatalf("over-depth submit err = %v, want ErrLogFull", err)
	}
	if err := st.TrySubmit(tenantBatch("other", 40, 0, 2)); err != nil {
		t.Fatalf("other tenant refused by deep's depth cap: %v", err)
	}
}

// starvationHarness builds an unstarted coordinator with running shards,
// so tests drive turns (transferLog/nextGroup/handleGroup) by hand.
func starvationHarness(t *testing.T, cfg Config) (st *Store, stop func()) {
	t.Helper()
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	w, labels := twoClusters(50)
	st, err := newStore(w, append([]int32(nil), labels...), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range st.shards {
		go sh.run()
	}
	return st, func() {
		for _, sh := range st.shards {
			close(sh.log)
		}
		for _, sh := range st.shards {
			<-sh.done
		}
	}
}

// One tenant flooding the log cannot starve trickle tenants: the
// deficit-round-robin drain picks every waiting tenant's entry within a
// single coordinator turn, and the per-tenant counters reconcile exactly
// once the backlog drains.
func TestFairDrainStarvationFreedom(t *testing.T) {
	st, stop := starvationHarness(t, Config{
		Options: storeOpts(2, 9), Shards: 2, LogDepth: 8,
		DegradeFactor: 1e9, ReconcileEvery: -1,
	})
	defer stop()

	// Park 25 flood batches (under the 4×LogDepth transfer cap, leaving
	// room for the trickles): TrySubmit fills the channel, transferLog
	// moves it into the tenant queue (the coordinator's role).
	flooded := 0
	for i := 0; i < 25; i++ {
		err := st.TrySubmit(tenantBatch("flood", 100, i, 4))
		if errors.Is(err, ErrLogFull) {
			st.transferLog()
			err = st.TrySubmit(tenantBatch("flood", 100, i, 4))
		}
		if err != nil {
			t.Fatalf("flood submit %d: %v", i, err)
		}
		flooded++
	}
	st.transferLog() // free channel slots the trickle tenants will use
	for _, tenant := range []string{"a", "b", "c"} {
		if err := st.TrySubmit(tenantBatch(tenant, 100, 77, 4)); err != nil {
			t.Fatalf("trickle submit %s: %v", tenant, err)
		}
	}
	st.transferLog()

	// One turn: every trickle tenant's sole entry is picked despite the
	// flood backlog dwarfing the turn budget.
	g := st.nextGroup()
	picked := map[string]int{}
	for _, e := range g {
		picked[e.mut.Tenant]++
	}
	if len(g) != 8 {
		t.Fatalf("turn picked %d entries, want LogDepth=8", len(g))
	}
	for _, tenant := range []string{"a", "b", "c"} {
		if picked[tenant] != 1 {
			t.Fatalf("turn picks %v: tenant %s starved behind %d flood entries", picked, tenant, flooded)
		}
	}
	if picked["flood"] != 5 {
		t.Fatalf("turn picks %v: flood should fill the remaining budget", picked)
	}
	st.handleGroup(g)
	clear(g)

	if c := st.Tenants()["a"]; c.Committed != 1 {
		t.Fatalf("tenant a committed %d after one turn, want 1", c.Committed)
	}

	// Drain the rest and check exact accounting per tenant.
	for st.queued > 0 || len(st.log) > 0 {
		st.transferLog()
		if g := st.nextGroup(); len(g) > 0 {
			st.handleGroup(g)
			clear(g)
		}
	}
	st.withBarrier(func() {}) // settle the shard logs

	if got := st.ctr.FairnessPasses.Load(); got < 2 {
		t.Fatalf("FairnessPasses = %d, want one per non-empty turn", got)
	}
	for tenant, want := range map[string]int64{"flood": int64(flooded), "a": 1, "b": 1, "c": 1} {
		c := st.Tenants()[tenant]
		if c.Committed+c.Rejected != want || c.Backlog != 0 {
			t.Fatalf("tenant %s stats %+v, want committed+rejected=%d backlog=0", tenant, c, want)
		}
		if c.Submitted != c.Committed+c.Rejected+c.Backlog {
			t.Fatalf("tenant %s counters do not reconcile: %+v", tenant, c)
		}
	}
}

// Drain shares converge to the configured weights while both tenants
// stay backlogged.
func TestWeightedFairShares(t *testing.T) {
	st, stop := starvationHarness(t, Config{
		Options: storeOpts(2, 9), Shards: 2, LogDepth: 8,
		DegradeFactor: 1e9, ReconcileEvery: -1,
		Quota: QuotaConfig{Weights: map[string]int{"gold": 3}},
	})
	defer stop()

	for i := 0; i < 10; i++ {
		for _, tenant := range []string{"gold", "bronze"} {
			if err := st.TrySubmit(tenantBatch(tenant, 100, i, 3)); err != nil {
				t.Fatalf("submit %s %d: %v", tenant, i, err)
			}
			st.transferLog()
		}
	}
	st.transferLog()

	g := st.nextGroup()
	picked := map[string]int{}
	for _, e := range g {
		picked[e.mut.Tenant]++
	}
	if picked["gold"] != 6 || picked["bronze"] != 2 {
		t.Fatalf("turn picks %v, want 3:1 split of the 8-entry budget", picked)
	}
	st.handleGroup(g)
}

// Under overload the maintenance plane defers restabilization and
// reconcile passes (counted once per episode), and both resume at the
// first turn after the load clears.
func TestOverloadDefersMaintenance(t *testing.T) {
	const window = 100 * time.Millisecond
	st, stop := starvationHarness(t, Config{
		Options: storeOpts(2, 9), Shards: 2,
		DegradeFactor: 1e9, ReconcileEvery: 1, MidRunOff: true,
		Overload: OverloadConfig{LookupRate: 10, Window: window},
	})
	defer stop()

	now := time.Unix(1000, 0)
	st.updateLoad(now) // arm the sampler
	st.ctr.Lookups.Add(10_000)
	now = now.Add(window)
	st.updateLoad(now)
	if !st.Overloaded() {
		t.Fatalf("not overloaded at %.0f lookups/sec over a 10/sec threshold", st.LookupRate())
	}

	st.wantRestab = true
	st.applied.Add(1) // one resolved batch past the reconcile cadence
	for i := 0; i < 3; i++ {
		st.maybeRestabilize()
		st.maybeReconcile()
	}
	if st.inflight {
		t.Fatal("restabilization started while overloaded")
	}
	c := st.ctr.Snapshot()
	if c.DeferredRestabs != 1 || c.DeferredReconciles != 1 {
		t.Fatalf("deferrals = %d/%d, want 1/1 (one per episode, not per turn)",
			c.DeferredRestabs, c.DeferredReconciles)
	}
	if c.CutReconciles != 0 || c.Restabilizations != 0 {
		t.Fatal("maintenance ran while overloaded")
	}

	// Idle windows decay the EWMA below the threshold.
	for i := 0; i < 30 && st.Overloaded(); i++ {
		now = now.Add(window)
		st.updateLoad(now)
	}
	if st.Overloaded() {
		t.Fatalf("overload never cleared, lookup rate %.1f", st.LookupRate())
	}

	st.maybeReconcile()
	st.maybeRestabilize()
	if !st.inflight {
		t.Fatal("restabilization did not start after overload cleared")
	}
	st.merge(<-st.restabDone)
	c = st.ctr.Snapshot()
	if c.CutReconciles != 1 || c.Restabilizations != 1 {
		t.Fatalf("reconciles=%d restabs=%d after overload cleared, want 1/1",
			c.CutReconciles, c.Restabilizations)
	}
}

// Resize rejects the current target k atomically inside the store, so
// two racing duplicate resizes cannot both be accepted (the check rides
// the claimed target, not the applied k).
func TestResizeKUnchangedAtomic(t *testing.T) {
	w, labels := twoClusters(40)
	st, err := New(w, labels, Config{Options: storeOpts(2, 9), DegradeFactor: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	if err := st.Resize(2); !errors.Is(err, ErrKUnchanged) {
		t.Fatalf("resize to current k err = %v, want ErrKUnchanged", err)
	}
	if err := st.Resize(3); err != nil {
		t.Fatal(err)
	}
	// The duplicate is refused immediately — before the first resize has
	// been applied — because 3 is already the claimed target.
	if err := st.Resize(3); !errors.Is(err, ErrKUnchanged) {
		t.Fatalf("duplicate queued resize err = %v, want ErrKUnchanged", err)
	}
	if err := st.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if got := st.K(); got != 3 {
		t.Fatalf("K = %d after resize, want 3", got)
	}
	if err := st.Resize(2); err != nil {
		t.Fatal(err)
	}
	if err := st.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if got := st.K(); got != 2 {
		t.Fatalf("K = %d after resize back, want 2", got)
	}
	if got := st.ctr.ElasticResizes.Load(); got != 2 {
		t.Fatalf("ElasticResizes = %d, want 2 (duplicates never reached the coordinator)", got)
	}
}

// Property: across several injected write-fault points, a batch whose
// Quiesce succeeded is never lost — recovery lands exactly on the acked
// prefix — and the store fails stop (degraded, read-only) at the fault.
func TestFaultStopNeverLosesAckedBatch(t *testing.T) {
	for _, failAt := range []int{1, 2, 5, 9} {
		t.Run(fmt.Sprintf("failWrite%d", failAt), func(t *testing.T) {
			cfg := Config{
				Options: storeOpts(2, 9), Shards: 2,
				DegradeFactor: 1e9, ReconcileEvery: -1,
				Durability: DurabilityConfig{
					Fsync: wal.SyncAlways, CheckpointEvery: -1, NoFinalCheckpoint: true,
				},
			}
			w, labels := twoClusters(50)
			ref, err := New(w, append([]int32(nil), labels...),
				Config{Options: storeOpts(2, 9), Shards: 2, DegradeFactor: 1e9, ReconcileEvery: -1})
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()

			dir := t.TempDir()
			w2, labels2 := twoClusters(50)
			st, err := NewDurable(dir, w2, append([]int32(nil), labels2...), cfg)
			if err != nil {
				t.Fatal(err)
			}
			calls := 0
			restore := wal.InjectFaults(func(f *os.File, b []byte) (int, error) {
				calls++
				if calls >= failAt {
					return 0, errors.New("injected: write fault")
				}
				return f.Write(b)
			}, nil)

			acked := 0
			for step := 0; step < 12; step++ {
				if err := st.Submit(addBatch(100, step, 6)); err != nil {
					break // ErrDegraded once the fault landed
				}
				if err := st.Quiesce(); err != nil {
					break // the faulted batch is refused, never acked
				}
				// Acked: mirror it into the in-memory reference.
				if err := ref.Submit(addBatch(100, step, 6)); err != nil {
					t.Fatal(err)
				}
				if err := ref.Quiesce(); err != nil {
					t.Fatal(err)
				}
				acked++
			}
			if acked >= 12 {
				t.Fatal("injected fault never fired")
			}
			if !st.Degraded() {
				t.Fatal("store not degraded after journal write fault")
			}
			// Fail-stop shape: reads keep serving, writes refuse typed.
			if _, ok := st.Lookup(0); !ok {
				t.Fatal("lookup failed on degraded store")
			}
			if err := st.Submit(addBatch(100, 0, 2)); !errors.Is(err, ErrDegraded) {
				t.Fatalf("submit on degraded store err = %v, want ErrDegraded", err)
			}
			if err := st.Resize(5); !errors.Is(err, ErrDegraded) {
				t.Fatalf("resize on degraded store err = %v, want ErrDegraded", err)
			}
			st.Close()
			restore()

			rec, err := Open(dir, cfg)
			if err != nil {
				t.Fatalf("recovery after fault: %v", err)
			}
			defer rec.Close()
			if err := rec.Quiesce(); err != nil {
				t.Fatal(err)
			}
			if got := rec.Counters().ReplayedRecords.Load(); got != int64(acked) {
				t.Fatalf("replayed %d records, want the %d acked", got, acked)
			}
			requireSameState(t, "acked-prefix", rec, ref)
		})
	}
}

// An fsync fault under SyncAlways never acknowledges the affected batch;
// recovery may replay it anyway (written but unsynced — at-least-once
// for the unacknowledged), but every acked batch survives.
func TestFsyncFaultStopDegradesStore(t *testing.T) {
	cfg := Config{
		Options: storeOpts(2, 9), Shards: 2,
		DegradeFactor: 1e9, ReconcileEvery: -1,
		Durability: DurabilityConfig{
			Fsync: wal.SyncAlways, CheckpointEvery: -1, NoFinalCheckpoint: true,
		},
	}
	w, labels := twoClusters(50)
	dir := t.TempDir()
	st, err := NewDurable(dir, w, append([]int32(nil), labels...), cfg)
	if err != nil {
		t.Fatal(err)
	}

	acked := 0
	for step := 0; step < 3; step++ {
		if err := st.Submit(addBatch(100, step, 6)); err != nil {
			t.Fatal(err)
		}
		if err := st.Quiesce(); err != nil {
			t.Fatal(err)
		}
		acked++
	}
	restore := wal.InjectFaults(nil, func(*os.File) error {
		return errors.New("injected: fsync fault")
	})
	if err := st.Submit(addBatch(100, 3, 6)); err != nil {
		t.Fatal(err)
	}
	if err := st.Quiesce(); err == nil {
		t.Fatal("batch over failed fsync was acknowledged")
	}
	if !st.Degraded() {
		t.Fatal("store not degraded after fsync fault")
	}
	st.Close()
	restore()

	rec, err := Open(dir, cfg)
	if err != nil {
		t.Fatalf("recovery after fsync fault: %v", err)
	}
	defer rec.Close()
	if err := rec.Quiesce(); err != nil {
		t.Fatal(err)
	}
	got := rec.Counters().ReplayedRecords.Load()
	if got < int64(acked) || got > int64(acked)+1 {
		t.Fatalf("replayed %d records, want %d acked (+ at most the 1 unsynced)", got, acked)
	}
}
