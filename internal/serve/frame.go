package serve

// The /v1/watch wire format reuses the CRC frame discipline of the
// replication stream (internal/replica): every frame is
//
//	u8 kind | u32 payload len | u32 CRC-32C(payload) | payload
//
// kinds: handshake (1, opens every stream), delta (2, one encoded
// serve.Delta — see EncodeDelta), heartbeat (3, keeps an idle
// consumer's view of the compaction floor honest), end (4, closes a
// stream whose cursor compaction overtook mid-flight — "resync, this
// was not a dropped connection"). Handshake, heartbeat and end payloads
// are u64 floor | u64 next: the server's oldest retained delta sequence
// and the next sequence it will assign, so a consumer can tell "caught
// up" (cursor == next-1) from "falling toward the floor" without a
// second request.
//
// The codec lives in serve (not internal/api, which re-exports it) so
// the delta hub can memoize fully framed bytes at publish time: framing
// is deterministic, so one AppendWatchFrame per publication serves
// every watch stream with the byte-identical frame.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Watch stream frame kinds.
const (
	// WatchHandshake opens a stream: the current floor and next delta
	// sequence, sent before any deltas.
	WatchHandshake byte = 1
	// WatchDelta carries one encoded delta record (EncodeDelta).
	WatchDelta byte = 2
	// WatchHeartbeat refreshes floor/next during idle periods.
	WatchHeartbeat byte = 3
	// WatchEnd terminates a stream whose cursor was compacted away
	// mid-stream (the consumer fell a full ring behind). It carries the
	// new floor/next; the consumer must resync via /v1/lookup rather
	// than treat the close as a transient network failure.
	WatchEnd byte = 4
)

const (
	watchHeader   = 9  // u8 kind + u32 len + u32 crc
	watchFixed    = 16 // u64 floor + u64 next
	maxWatchFrame = 1 << 28
)

var watchCRC = crc32.MakeTable(crc32.Castagnoli)

// ErrShortFrame reports that a buffer holds only a prefix of a frame:
// read more bytes and retry. Every other decode error is corruption (or
// a version skew) and must drop the connection.
var ErrShortFrame = errors.New("serve: short watch frame")

// WatchFrame is one decoded /v1/watch stream frame.
type WatchFrame struct {
	Kind  byte
	Floor uint64 // handshake/heartbeat/end: oldest retained delta seq
	Next  uint64 // handshake/heartbeat/end: next delta seq to be assigned
	Delta []byte // WatchDelta only: EncodeDelta payload
}

// AppendWatchFrame encodes f onto dst and returns the extended slice.
func AppendWatchFrame(dst []byte, f WatchFrame) []byte {
	start := len(dst)
	dst = append(dst, f.Kind, 0, 0, 0, 0, 0, 0, 0, 0)
	if f.Kind == WatchDelta {
		dst = append(dst, f.Delta...)
	} else {
		dst = binary.LittleEndian.AppendUint64(dst, f.Floor)
		dst = binary.LittleEndian.AppendUint64(dst, f.Next)
	}
	payload := dst[start+watchHeader:]
	binary.LittleEndian.PutUint32(dst[start+1:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+5:], crc32.Checksum(payload, watchCRC))
	return dst
}

// DecodeWatchFrame parses one frame from the front of b, returning it
// and the number of bytes consumed. ErrShortFrame means b ends mid-frame
// (a torn read — wait for more bytes); any other error means the bytes
// can never parse and the stream must be abandoned. Delta aliases b.
func DecodeWatchFrame(b []byte) (WatchFrame, int, error) {
	if len(b) < watchHeader {
		return WatchFrame{}, 0, ErrShortFrame
	}
	kind := b[0]
	if kind < WatchHandshake || kind > WatchEnd {
		return WatchFrame{}, 0, fmt.Errorf("serve: unknown watch frame kind %d", kind)
	}
	n := int(binary.LittleEndian.Uint32(b[1:]))
	if n < 0 || n > maxWatchFrame {
		return WatchFrame{}, 0, fmt.Errorf("serve: watch frame payload of %d bytes", n)
	}
	if kind != WatchDelta && n != watchFixed {
		return WatchFrame{}, 0, fmt.Errorf("serve: %d-byte payload on control frame kind %d", n, kind)
	}
	if len(b) < watchHeader+n {
		return WatchFrame{}, 0, ErrShortFrame
	}
	payload := b[watchHeader : watchHeader+n]
	if crc32.Checksum(payload, watchCRC) != binary.LittleEndian.Uint32(b[5:]) {
		return WatchFrame{}, 0, errors.New("serve: watch frame fails CRC")
	}
	f := WatchFrame{Kind: kind}
	if kind == WatchDelta {
		if n == 0 {
			return WatchFrame{}, 0, errors.New("serve: empty delta frame")
		}
		f.Delta = payload
	} else {
		f.Floor = binary.LittleEndian.Uint64(payload)
		f.Next = binary.LittleEndian.Uint64(payload[8:])
	}
	return f, watchHeader + n, nil
}
