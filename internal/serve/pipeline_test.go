package serve

// Tests for the staged commit pipeline (ISSUE 5): coalesced apply of
// drained add-only runs, group-commit journaling of burst submissions,
// and the equivalence/recovery guarantees both must preserve.

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/wal"
)

// addBatch builds a deterministic add-only batch inside [0, n).
func addBatch(n, step, edges int) *graph.Mutation {
	m := &graph.Mutation{}
	for i := 0; i < edges; i++ {
		u := graph.VertexID((i*7 + step*31) % n)
		v := graph.VertexID((i*13 + step*5 + 1) % n)
		if u == v {
			v = (v + 1) % graph.VertexID(n)
		}
		m.NewEdges = append(m.NewEdges, graph.WeightedEdgeRecord{U: u, V: v, Weight: 2})
	}
	return m
}

// handleGroup must merge consecutive add-only batches into single shard
// broadcasts, flush the run at barrier-path entries (growth), resolve
// empty batches inline — and land on a state bit-identical to the same
// batches applied one at a time. Driven directly against an unstarted
// coordinator (the test plays its role), so the grouping is
// deterministic rather than timing-dependent.
func TestHandleGroupCoalescesRuns(t *testing.T) {
	w, labels := twoClusters(50)
	cfg := Config{Options: storeOpts(2, 9), Shards: 3, DegradeFactor: 1e9, ReconcileEvery: -1}
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	st, err := newStore(w, append([]int32(nil), labels...), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range st.shards {
		go sh.run()
	}
	stopShards := func() {
		for _, sh := range st.shards {
			close(sh.log)
		}
		for _, sh := range st.shards {
			<-sh.done
		}
	}
	defer stopShards()

	growth := &graph.Mutation{NewVertices: 5}
	for i := 0; i < 5; i++ {
		growth.NewEdges = append(growth.NewEdges, graph.WeightedEdgeRecord{
			U: graph.VertexID(100 + i), V: graph.VertexID(i), Weight: 2})
	}
	entries := []logEntry{
		{mut: addBatch(100, 0, 20)},
		{mut: addBatch(100, 1, 20)},
		{mut: &graph.Mutation{}}, // empty: resolved inline, run unbroken
		{mut: addBatch(100, 2, 20)},
		{mut: growth}, // barrier path: flushes the run of 3
		{mut: addBatch(105, 3, 20)},
	}
	st.handleGroup(entries)
	st.withBarrier(func() {}) // drain the shard logs

	c := st.ctr.Snapshot()
	if c.ApplyCoalesces != 1 || c.CoalescedBatches != 3 {
		t.Fatalf("coalesces=%d batches=%d, want 1 coalesced broadcast of 3", c.ApplyCoalesces, c.CoalescedBatches)
	}
	if c.BatchesApplied != 6 || st.applied.Load() != 6 {
		t.Fatalf("applied %d batches (counter %d), want 6", c.BatchesApplied, st.applied.Load())
	}
	if c.EdgesAdded != 85 {
		t.Fatalf("EdgesAdded=%d, want 85", c.EdgesAdded)
	}

	// Reference: the same batches, one per submit, fully quiesced.
	w2, labels2 := twoClusters(50)
	ref, err := New(w2, append([]int32(nil), labels2...), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for _, e := range entries {
		if err := ref.Submit(e.mut); err != nil {
			t.Fatal(err)
		}
		if err := ref.Quiesce(); err != nil {
			t.Fatal(err)
		}
	}
	requireSameState(t, "coalesced-vs-sequential", st, ref)
}

// An unquiesced burst into a fsync=always durable store must journal in
// groups (group commit), coalesce applies, and still recover
// bit-identically after a crash: add-only batches never relabel, so the
// composed state is independent of how the pipeline grouped them, and
// replaying the group-framed journal one record at a time lands on the
// same state the live store reached.
func TestDurableGroupCommitBurstRecovery(t *testing.T) {
	const batches = 48
	cfg := Config{
		Options:        storeOpts(2, 9),
		Shards:         2,
		DegradeFactor:  1e9, // no restabs: burst state must be exactly additive
		ReconcileEvery: -1,
		Durability: DurabilityConfig{
			Fsync:             wal.SyncAlways,
			CheckpointEvery:   -1,
			NoFinalCheckpoint: true,
			SegmentBytes:      1 << 10,
		},
	}
	w, labels := twoClusters(50)
	ref, err := New(w, append([]int32(nil), labels...), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for step := 0; step < batches; step++ {
		if err := ref.Submit(addBatch(100, step, 8)); err != nil {
			t.Fatal(err)
		}
		if err := ref.Quiesce(); err != nil {
			t.Fatal(err)
		}
	}

	dir := t.TempDir()
	w2, labels2 := twoClusters(50)
	st, err := NewDurable(dir, w2, append([]int32(nil), labels2...), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < batches; step++ { // unquiesced: let the log back up
		if err := st.Submit(addBatch(100, step, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Quiesce(); err != nil {
		t.Fatal(err)
	}
	c := st.Counters().Snapshot()
	if c.JournalAppends != batches || c.GroupedEntries != batches {
		t.Fatalf("journaled %d records in %d grouped entries, want %d", c.JournalAppends, c.GroupedEntries, batches)
	}
	if c.GroupCommits < 1 || c.GroupCommits > batches {
		t.Fatalf("GroupCommits=%d outside [1,%d]", c.GroupCommits, batches)
	}
	requireSameState(t, "burst-vs-sequential", st, ref)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash shape: no final checkpoint — the group-framed journal alone
	// must carry recovery to the identical state.
	rec, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if err := rec.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if got := rec.Counters().ReplayedRecords.Load(); got != batches {
		t.Fatalf("replayed %d records, want %d", got, batches)
	}
	requireSameState(t, "burst-recovery", rec, ref)
}
