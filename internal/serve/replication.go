// Replication hooks: the narrow exported surface internal/replica builds
// the replicated serving plane on. A follower is a durable Store over its
// own data directory, flipped read-only (SetReadOnly) so external writes
// refuse with ErrReadOnly while the streamed leader records flow through
// SubmitReplicated/ResizeReplicated — the same journal-before-apply path
// recovery uses, which is what makes follower state bit-identical to the
// leader's quiesced history. JournalSeq exposes the replication watermark
// (the follower's applied_seq, the leader's leader_seq), and
// SetJournalRetention pins the leader's journal tail under connected
// followers so checkpoints cannot truncate records they still need.

package serve

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// ErrReadOnly is returned by Submit, TrySubmit and Resize on a follower
// store: replicas apply the leader's journal only, until promotion flips
// them read-write.
var ErrReadOnly = errors.New("serve: read-only follower (promote to accept writes)")

// JournalDir returns the journal subdirectory of a durable store's data
// dir — the leader-side path wal.ReadFramesAfter streams frames from.
func JournalDir(dir string) string { return journalDir(dir) }

// CheckpointDir returns the checkpoint subdirectory of a durable store's
// data dir — where the leader serves bootstrap checkpoints from and a
// follower installs them.
func CheckpointDir(dir string) string { return ckptDir(dir) }

// SetReadOnly flips the external write paths on or off. Lookups, stats
// and the replicated apply paths are unaffected.
func (s *Store) SetReadOnly(v bool) { s.readOnly.Store(v) }

// ReadOnly reports whether the store currently refuses external writes.
func (s *Store) ReadOnly() bool { return s.readOnly.Load() }

// JournalSeq returns the sequence number of the last record this store
// journaled — 0 on in-memory stores and before the first durable append.
// On a leader this is the replication high-water mark; on a follower it
// equals the applied sequence, because the replicated apply path journals
// exactly one record per leader record.
func (s *Store) JournalSeq() uint64 { return s.journalSeq.Load() }

// SetJournalRetention pins the store's journal so records with sequence
// numbers >= floor survive checkpoint truncation (0 clears the pin). A
// no-op until a journal is attached; the pin does not persist across
// reopen — reconnecting followers re-establish it, and a follower that
// missed the window gets an explicit gap (410) and re-bootstraps.
func (s *Store) SetJournalRetention(floor uint64) {
	if j := s.jrnLive.Load(); j != nil {
		j.SetRetention(floor)
	}
}

// Bounds returns a copy of the current shard boundaries (len(shards)+1;
// shard i owns [Bounds[i], Bounds[i+1])) — the "shard ranges" leg of the
// replication bit-identity contract.
func (s *Store) Bounds() []int {
	rt := s.router.Load()
	return append([]int(nil), rt.bounds...)
}

// SubmitReplicated appends a leader-journaled mutation batch, bypassing
// admission control and the read-only gate: the record was already
// admitted and acknowledged by the leader, so refusing it here would fork
// the replica. Blocks for backpressure like Submit. ErrDegraded still
// applies — a follower with a poisoned journal must stop applying, not
// silently drop durability.
func (s *Store) SubmitReplicated(m *graph.Mutation) error {
	if s.degraded.Load() {
		return ErrDegraded
	}
	return s.submitReplay(m)
}

// ResizeReplicated applies a leader-journaled resize record. Unlike
// Resize it does not claim newK against the target (a duplicate resize in
// the leader's journal must still be journaled here, one record per
// leader record, to keep the sequence numbers aligned) — the coordinator
// drops a same-k resize as a no-op after journaling it, exactly as the
// leader did.
func (s *Store) ResizeReplicated(newK int) error {
	if newK < 1 {
		return fmt.Errorf("serve: resize to k=%d", newK)
	}
	select {
	case <-s.closed:
		return ErrClosed
	default:
	}
	if s.degraded.Load() {
		return ErrDegraded
	}
	s.kMu.Lock()
	s.targetK = newK
	s.kMu.Unlock()
	select {
	case s.log <- logEntry{newK: newK}:
		return nil
	case <-s.closed:
		return ErrClosed
	}
}
