package serve

import (
	"errors"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/wal"
)

// BenchmarkServeLookupUnderChurn measures sustained lookup throughput
// (lookups/sec via ns/op) while the partitioning is actively maintained
// underneath: a churn goroutine streams growth batches through the
// mutation log, degradation triggers fire background restabilization runs,
// and mid-run snapshots swap in as they are extracted. This is the
// serving-layer headline number recorded in BENCH_pr2.json.
func BenchmarkServeLookupUnderChurn(b *testing.B) {
	g := gen.WattsStrogatz(20000, 10, 0.2, 31)
	w := graph.Convert(g)
	opts := core.DefaultOptions(8)
	opts.Seed = 31
	opts.MaxIterations = 30
	p, err := core.NewPartitioner(opts)
	if err != nil {
		b.Fatal(err)
	}
	res, err := p.PartitionWeighted(w)
	if err != nil {
		b.Fatal(err)
	}
	shadow := w.Clone()
	st, err := New(w, res.Labels, Config{
		Options:       opts,
		DegradeFactor: 1.02,
		DegradeSlack:  0.001,
		LogDepth:      16,
	})
	if err != nil {
		b.Fatal(err)
	}

	// Churn: keep the mutation log busy for the whole measurement. The
	// generator works against a shadow copy so batch construction never
	// touches the store's graph; TrySubmit sheds load instead of stalling
	// the benchmark when a restabilization backlog builds up.
	stop := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		seed := uint64(1000)
		for {
			select {
			case <-stop:
				return
			default:
			}
			mut := gen.GrowthBatch(shadow, 0.002, seed)
			seed++
			if err := st.TrySubmit(mut); err == nil {
				if _, err := mut.Apply(shadow); err != nil {
					b.Error(err)
					return
				}
			}
		}
	}()

	var miss atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		v := graph.VertexID(0)
		for pb.Next() {
			if _, ok := st.Lookup(v); !ok {
				miss.Add(1)
			}
			v = (v + 37) % 20000
		}
	})
	b.StopTimer()
	close(stop)
	<-churnDone
	if err := st.Quiesce(); err != nil {
		b.Fatal(err)
	}
	c := st.Counters().Snapshot()
	b.ReportMetric(float64(c.BatchesApplied), "batches")
	b.ReportMetric(float64(c.Restabilizations), "restabs")
	b.ReportMetric(float64(c.MidRunSnapshots), "midrun-swaps")
	b.ReportMetric(c.MeanStaleness(), "staleness")
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	if miss.Load() != 0 {
		b.Fatalf("%d lookup misses for always-present vertices", miss.Load())
	}
}

// BenchmarkServeMutateThroughput measures sustained mutation-application
// throughput (ns per 256-edge batch) along the two axes this PR changes
// (recorded in BENCH_pr3.json):
//
//   - shards=1/2/4: each batch broadcasts to the shards, which append
//     their rows and fold O(batch) cut deltas in parallel. The speedup is
//     bounded by the host's core count — on a single-core container the
//     sub-benchmarks show fan-out overhead parity, not speedup.
//   - exactcut: ReconcileEvery=1 forces a full exact cut recompute per
//     applied batch — the seed's per-swap O(E) cost model — against the
//     default incremental O(batch) deltas. This axis is hardware-
//     independent and dominates at scale, since E keeps growing while
//     batches do not.
//
// Restabilization is disabled so the numbers isolate the write plane.
func BenchmarkServeMutateThroughput(b *testing.B) {
	const n, batchEdges = 30000, 256
	g := gen.WattsStrogatz(n, 10, 0.2, 41)
	w := graph.Convert(g)
	opts := core.DefaultOptions(8)
	opts.Seed = 41
	opts.MaxIterations = 30
	p, err := core.NewPartitioner(opts)
	if err != nil {
		b.Fatal(err)
	}
	res, err := p.PartitionWeighted(w)
	if err != nil {
		b.Fatal(err)
	}
	// Pre-generate add-only batches (the fast path); reusing them is safe:
	// the store reads NewEdges but never retains or mutates the batch.
	src := rng.New(4242)
	batches := make([]*graph.Mutation, 64)
	for i := range batches {
		m := &graph.Mutation{NewEdges: make([]graph.WeightedEdgeRecord, 0, batchEdges)}
		for len(m.NewEdges) < batchEdges {
			u, v := graph.VertexID(src.Intn(n)), graph.VertexID(src.Intn(n))
			if u != v {
				m.NewEdges = append(m.NewEdges, graph.WeightedEdgeRecord{U: u, V: v, Weight: 2})
			}
		}
		batches[i] = m
	}

	cases := []struct {
		name           string
		shards         int
		reconcileEvery int
	}{
		{"shards=1", 1, -1},
		{"shards=2", 2, -1},
		{"shards=4", 4, -1},
		{"exactcut", 1, 1}, // seed cost model: exact O(E) pass per batch
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			st, err := New(w.Clone(), append([]int32(nil), res.Labels...), Config{
				Options:        opts,
				Shards:         tc.shards,
				DegradeFactor:  1e9, // isolate the write plane
				MidRunOff:      true,
				ReconcileEvery: tc.reconcileEvery,
				LogDepth:       64,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := st.Submit(batches[i%len(batches)]); err != nil {
					b.Fatal(err)
				}
			}
			if err := st.Quiesce(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(batchEdges)*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkServeMutateDurable measures what durability costs the write
// plane (PR 4 recorded the serial numbers in BENCH_pr4.json; PR 5
// records the pipelined ones in BENCH_pr5.json): the same 256-edge add
// batches as BenchmarkServeMutateThroughput against an in-memory store
// and against journaled stores along two axes —
//
//   - fsync policy: never is the pure framing overhead (binary encode +
//     CRC + one write syscall on the pre-apply path); always adds the
//     disk barrier and is the upper bound an acknowledged-durable
//     configuration pays.
//   - concurrent submitters (subs=1/8): the ISSUE-5 group-commit axis.
//     With one submitter the coordinator journals mostly one entry per
//     group; with 8 submitters the log backs up behind each fsync and
//     the next turn drains the backlog into ONE group append (one write,
//     one fsync) and coalesced shard broadcasts — so fsync=always
//     amortizes toward the interval policy (the PR-5 gate: within ~3x of
//     fsync=never at 8 submitters, down from ~7x serial). The group-depth
//     metric reports entries per group append.
//
// Periodic checkpoints are disabled so the numbers isolate the journal;
// restabilization is off as in the PR-3 benchmark.
func BenchmarkServeMutateDurable(b *testing.B) {
	const n, batchEdges = 30000, 256
	g := gen.WattsStrogatz(n, 10, 0.2, 41)
	w := graph.Convert(g)
	opts := core.DefaultOptions(8)
	opts.Seed = 41
	opts.MaxIterations = 30
	p, err := core.NewPartitioner(opts)
	if err != nil {
		b.Fatal(err)
	}
	res, err := p.PartitionWeighted(w)
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(4242)
	batches := make([]*graph.Mutation, 64)
	for i := range batches {
		m := &graph.Mutation{NewEdges: make([]graph.WeightedEdgeRecord, 0, batchEdges)}
		for len(m.NewEdges) < batchEdges {
			u, v := graph.VertexID(src.Intn(n)), graph.VertexID(src.Intn(n))
			if u != v {
				m.NewEdges = append(m.NewEdges, graph.WeightedEdgeRecord{U: u, V: v, Weight: 2})
			}
		}
		batches[i] = m
	}

	cases := []struct {
		name       string
		durable    bool
		fsync      wal.Policy
		submitters int
	}{
		{"inmem", false, 0, 1},
		{"fsync=never/subs=1", true, wal.SyncNever, 1},
		{"fsync=never/subs=8", true, wal.SyncNever, 8},
		{"fsync=interval/subs=8", true, wal.SyncEvery, 8},
		{"fsync=always/subs=1", true, wal.SyncAlways, 1},
		{"fsync=always/subs=8", true, wal.SyncAlways, 8},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			cfg := Config{
				Options:        opts,
				Shards:         2,
				DegradeFactor:  1e9, // isolate the write plane
				MidRunOff:      true,
				ReconcileEvery: -1,
				LogDepth:       64,
				Durability: DurabilityConfig{
					Fsync:             tc.fsync,
					CheckpointEvery:   -1, // isolate the journal from checkpoint cost
					NoFinalCheckpoint: true,
				},
			}
			var st *Store
			var err error
			if tc.durable {
				st, err = NewDurable(b.TempDir(), w.Clone(), append([]int32(nil), res.Labels...), cfg)
			} else {
				st, err = New(w.Clone(), append([]int32(nil), res.Labels...), cfg)
			}
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			for sub := 0; sub < tc.submitters; sub++ {
				count := b.N / tc.submitters
				if sub < b.N%tc.submitters {
					count++
				}
				wg.Add(1)
				go func(sub, count int) {
					defer wg.Done()
					for i := 0; i < count; i++ {
						if err := st.Submit(batches[(sub*17+i)%len(batches)]); err != nil {
							b.Error(err)
							return
						}
					}
				}(sub, count)
			}
			wg.Wait()
			if err := st.Quiesce(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(batchEdges)*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
			c := st.Counters().Snapshot()
			if tc.durable {
				b.ReportMetric(float64(c.JournalBytes)/float64(b.N), "journalB/op")
				b.ReportMetric(float64(c.JournalSyncs), "fsyncs")
				b.ReportMetric(c.GroupCommitDepth(), "group-depth")
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkServeFairness measures a well-behaved tenant's submit→commit
// latency (ns/op, with the p99 tail as p99-ns) with and without an
// abusive tenant flooding the mutation log — the multi-tenancy gate of
// ISSUE 6, recorded in BENCH_pr6.json. The trickle tenant submits one
// batch at a time and waits for it to commit; under flood=on a second
// goroutine fires TrySubmit as fast as the log accepts (typically two
// orders of magnitude more batches than the trickle tenant), relying on
// the deficit-round-robin drain to bound the trickle tenant's wait to
// one coordinator turn. The gate: flood=on ns/op within ~2x of
// flood=off.
func BenchmarkServeFairness(b *testing.B) {
	const n, batchEdges = 20000, 64
	g := gen.WattsStrogatz(n, 10, 0.2, 51)
	w := graph.Convert(g)
	opts := core.DefaultOptions(8)
	opts.Seed = 51
	opts.MaxIterations = 30
	p, err := core.NewPartitioner(opts)
	if err != nil {
		b.Fatal(err)
	}
	res, err := p.PartitionWeighted(w)
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(5151)
	batches := make([]*graph.Mutation, 64)
	for i := range batches {
		m := &graph.Mutation{NewEdges: make([]graph.WeightedEdgeRecord, 0, batchEdges)}
		for len(m.NewEdges) < batchEdges {
			u, v := graph.VertexID(src.Intn(n)), graph.VertexID(src.Intn(n))
			if u != v {
				m.NewEdges = append(m.NewEdges, graph.WeightedEdgeRecord{U: u, V: v, Weight: 2})
			}
		}
		batches[i] = m
	}

	for _, tc := range []struct {
		name  string
		flood bool
	}{
		{"flood=off", false},
		{"flood=on", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			st, err := New(w.Clone(), append([]int32(nil), res.Labels...), Config{
				Options:        opts,
				Shards:         2,
				DegradeFactor:  1e9, // isolate the write plane
				MidRunOff:      true,
				ReconcileEvery: -1,
				LogDepth:       16,
			})
			if err != nil {
				b.Fatal(err)
			}
			stop := make(chan struct{})
			var floodDone chan struct{}
			if tc.flood {
				floodDone = make(chan struct{})
				go func() {
					defer close(floodDone)
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						m := *batches[i%len(batches)] // shallow copy: retag only
						m.Tenant = "flood"
						if err := st.TrySubmit(&m); errors.Is(err, ErrLogFull) {
							// Back off instead of hot-spinning: a spin loop
							// would measure CPU starvation of the shard
							// goroutines, not queueing fairness.
							time.Sleep(20 * time.Microsecond)
						} else if err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}

			trickle := st.tenant("trickle")
			samples := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := *batches[i%len(batches)]
				m.Tenant = "trickle"
				start := time.Now()
				if err := st.Submit(&m); err != nil {
					b.Fatal(err)
				}
				want := int64(i + 1)
				for trickle.committed.Load() < want {
					time.Sleep(10 * time.Microsecond)
				}
				samples = append(samples, time.Since(start))
			}
			b.StopTimer()
			close(stop)
			if floodDone != nil {
				<-floodDone
			}
			if err := st.Quiesce(); err != nil {
				b.Fatal(err)
			}
			slices.Sort(samples)
			b.ReportMetric(float64(samples[len(samples)*99/100]), "p99-ns")
			if tc.flood {
				fl := st.Tenants()["flood"]
				b.ReportMetric(float64(fl.Committed)/float64(b.N), "flood-ratio")
			}
			b.ReportMetric(float64(st.ctr.FairnessPasses.Load()), "fair-passes")
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
