package serve

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// BenchmarkServeLookupUnderChurn measures sustained lookup throughput
// (lookups/sec via ns/op) while the partitioning is actively maintained
// underneath: a churn goroutine streams growth batches through the
// mutation log, degradation triggers fire background restabilization runs,
// and mid-run snapshots swap in as they are extracted. This is the
// serving-layer headline number recorded in BENCH_pr2.json.
func BenchmarkServeLookupUnderChurn(b *testing.B) {
	g := gen.WattsStrogatz(20000, 10, 0.2, 31)
	w := graph.Convert(g)
	opts := core.DefaultOptions(8)
	opts.Seed = 31
	opts.MaxIterations = 30
	p, err := core.NewPartitioner(opts)
	if err != nil {
		b.Fatal(err)
	}
	res, err := p.PartitionWeighted(w)
	if err != nil {
		b.Fatal(err)
	}
	shadow := w.Clone()
	st, err := New(w, res.Labels, Config{
		Options:       opts,
		DegradeFactor: 1.02,
		DegradeSlack:  0.001,
		LogDepth:      16,
	})
	if err != nil {
		b.Fatal(err)
	}

	// Churn: keep the mutation log busy for the whole measurement. The
	// generator works against a shadow copy so batch construction never
	// touches the store's graph; TrySubmit sheds load instead of stalling
	// the benchmark when a restabilization backlog builds up.
	stop := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		seed := uint64(1000)
		for {
			select {
			case <-stop:
				return
			default:
			}
			mut := gen.GrowthBatch(shadow, 0.002, seed)
			seed++
			if err := st.TrySubmit(mut); err == nil {
				if _, err := mut.Apply(shadow); err != nil {
					b.Error(err)
					return
				}
			}
		}
	}()

	var miss atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		v := graph.VertexID(0)
		for pb.Next() {
			if _, ok := st.Lookup(v); !ok {
				miss.Add(1)
			}
			v = (v + 37) % 20000
		}
	})
	b.StopTimer()
	close(stop)
	<-churnDone
	if err := st.Quiesce(); err != nil {
		b.Fatal(err)
	}
	c := st.Counters().Snapshot()
	b.ReportMetric(float64(c.BatchesApplied), "batches")
	b.ReportMetric(float64(c.Restabilizations), "restabs")
	b.ReportMetric(float64(c.MidRunSnapshots), "midrun-swaps")
	b.ReportMetric(c.MeanStaleness(), "staleness")
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	if miss.Load() != 0 {
		b.Fatalf("%d lookup misses for always-present vertices", miss.Load())
	}
}
