package serve

import (
	"testing"
	"time"

	"repro/internal/graph"
)

// TestStageHistogramsFillUnderChurn drives mutations, a resize and a
// checkpoint through a durable store and checks every pipeline stage
// histogram recorded at least one observation — the wiring test for the
// stage-timing seams.
func TestStageHistogramsFillUnderChurn(t *testing.T) {
	dir := t.TempDir()
	w, labels := twoClusters(50)
	st, err := NewDurable(dir, w, labels, durableCfg(2, 3)) // checkpoint every 3 entries
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	runScript(t, st) // 6 batches + quiesces + one resize at the end
	waitCheckpoint(t, st)
	for i, h := range st.stageHist {
		if h.Snapshot().Count == 0 {
			t.Errorf("stage %q histogram empty after churn", stageNames[i])
		}
	}
}

// waitCheckpoint blocks until at least one background checkpoint has
// fully completed (written and acknowledged by the coordinator).
func waitCheckpoint(t *testing.T, st *Store) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for st.ctr.Checkpoints.Load() == 0 || st.ctr.CheckpointsPending.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint completed (done=%d pending=%d)",
				st.ctr.Checkpoints.Load(), st.ctr.CheckpointsPending.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLookupSampling checks the sampling mask: 1-in-N fills the lookup
// histogram at ~1/N of the lookup count, and a negative configuration
// disables timing entirely without disturbing the lookup counters.
func TestLookupSampling(t *testing.T) {
	w, labels := twoClusters(40)
	st, err := New(w, labels, Config{Options: storeOpts(2, 1), LookupSampleEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const lookups = 1024
	for i := 0; i < lookups; i++ {
		st.Lookup(graph.VertexID(i % 80))
	}
	snap := st.lookupHist.Snapshot()
	if want := int64(lookups / 4); snap.Count != want {
		t.Fatalf("sampled %d of %d lookups, want %d", snap.Count, lookups, want)
	}
	if st.ctr.Lookups.Load() != lookups {
		t.Fatalf("Lookups counter %d, want %d", st.ctr.Lookups.Load(), lookups)
	}

	w2, labels2 := twoClusters(40)
	off, err := New(w2, labels2, Config{Options: storeOpts(2, 1), LookupSampleEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	for i := 0; i < lookups; i++ {
		off.Lookup(graph.VertexID(i % 80))
	}
	if got := off.lookupHist.Snapshot().Count; got != 0 {
		t.Fatalf("disabled sampling recorded %d observations", got)
	}
}

// TestLookupAllocs enforces the zero-allocation budget on the
// instrumented lookup path, sampled iterations included.
func TestLookupAllocs(t *testing.T) {
	w, labels := twoClusters(40)
	st, err := New(w, labels, Config{Options: storeOpts(2, 1), LookupSampleEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if allocs := testing.AllocsPerRun(1000, func() {
		st.Lookup(3)
	}); allocs > 0 {
		t.Fatalf("instrumented Lookup allocates %v per op, want 0", allocs)
	}
}

// BenchmarkServeLookupInstrumented measures the steady-state lookup path
// with latency sampling at the default 1-in-256 rate against sampling
// disabled — the instrumentation-overhead number recorded in
// BENCH_pr9.json. The contract: the sampled variant stays within ~10% of
// the uninstrumented ~50ns path, with zero extra allocations.
func BenchmarkServeLookupInstrumented(b *testing.B) {
	for _, bc := range []struct {
		name  string
		every int
	}{
		{"sampled", 0},    // default: one in 256 lookups timed
		{"unsampled", -1}, // timing disabled: the baseline
	} {
		b.Run(bc.name, func(b *testing.B) {
			w, labels := twoClusters(10000)
			st, err := New(w, labels, Config{Options: storeOpts(2, 1), LookupSampleEvery: bc.every})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				v := graph.VertexID(0)
				for pb.Next() {
					st.Lookup(v)
					v = (v + 37) % 20000
				}
			})
		})
	}
}
