// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by every randomized component in this repository.
//
// All randomness in the Spinner reproduction flows through this package so
// that experiments are exactly reproducible from a single seed: the graph
// generators, the initial random labeling, the probabilistic migration step
// (Eq. 14 in the paper), and the elastic re-labeling (Eq. 11) all derive
// their streams from an rng.Source.
//
// The generator is splitmix64 (Steele, Lea, Flood; also used as the seeding
// procedure of xoshiro). It is tiny, allocation free, passes BigCrush, and
// supports cheap stream splitting, which we use to give every worker
// goroutine an independent deterministic stream.
package rng

import "math"

// Source is a splitmix64 pseudo-random number generator.
// The zero value is a valid generator seeded with 0.
// Source is NOT safe for concurrent use; use Split to derive
// independent per-goroutine streams.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split derives a new independent Source from s. The derived stream is a
// deterministic function of s's current state, so calling Split n times
// yields n reproducible, statistically independent streams.
func (s *Source) Split() *Source {
	// Advance twice so the child does not share its first output with the
	// parent's next output.
	a := s.Uint64()
	b := s.Uint64()
	return &Source{state: a ^ (b << 1) ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Intn returns a uniform pseudo-random int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(s.Uint64() % uint64(n)) // bias is negligible for n << 2^64
}

// Int31n returns a uniform pseudo-random int32 in [0, n). It panics if n <= 0.
func (s *Source) Int31n(n int32) int32 {
	if n <= 0 {
		panic("rng: Int31n called with n <= 0")
	}
	return int32(s.Uint64() % uint64(n))
}

// Float64 returns a uniform pseudo-random float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles p in place (Fisher–Yates).
func (s *Source) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Zipf samples integers in [0, n) with probability proportional to
// 1/(i+1)^alpha using inverse-CDF over a precomputed table.
// Build one with NewZipf; sampling is O(log n).
type Zipf struct {
	cdf []float64
	src *Source
}

// NewZipf constructs a Zipf sampler over [0, n) with exponent alpha > 0.
func NewZipf(src *Source, n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf called with n <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, src: src}
}

// Next returns the next Zipf-distributed sample in [0, n).
func (z *Zipf) Next() int {
	u := z.src.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
