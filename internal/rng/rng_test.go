package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first output")
	}
}

func TestSplitDeterministic(t *testing.T) {
	p1 := New(7)
	p2 := New(7)
	c1 := p1.Split()
	c2 := p2.Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("split not deterministic at step %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(9)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBoolEdgeCases(t *testing.T) {
	s := New(11)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if s.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !s.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(13)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate = %v, want ~0.3", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(17)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnUniformity(t *testing.T) {
	s := New(19)
	const buckets = 10
	const n = 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[s.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Fatalf("bucket %d count %d deviates >5%% from %v", b, c, want)
		}
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	s := New(23)
	z := NewZipf(s, 1000, 1.2)
	const n = 50000
	counts := make([]int, 1000)
	for i := 0; i < n; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("Zipf sample %d out of range", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate rank 100 heavily for alpha=1.2.
	if counts[0] < 5*counts[100] {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[100]=%d", counts[0], counts[100])
	}
}

func TestZipfPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(_, 0, _) did not panic")
		}
	}()
	NewZipf(New(1), 0, 1.0)
}

func TestExpFloat64Positive(t *testing.T) {
	s := New(29)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1.0) > 0.02 {
		t.Fatalf("ExpFloat64 mean = %v, want ~1", mean)
	}
}

func TestShuffleSwapCount(t *testing.T) {
	s := New(31)
	arr := []string{"a", "b", "c", "d", "e"}
	orig := append([]string(nil), arr...)
	s.Shuffle(len(arr), func(i, j int) { arr[i], arr[j] = arr[j], arr[i] })
	// Must still be a permutation of the original.
	seen := map[string]int{}
	for _, v := range arr {
		seen[v]++
	}
	for _, v := range orig {
		if seen[v] != 1 {
			t.Fatalf("shuffle lost element %q", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Float64()
	}
}
