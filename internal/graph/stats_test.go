package graph

import (
	"math"
	"testing"
)

func ring(n int) *Graph {
	g := New(n, false)
	for i := 0; i < n; i++ {
		g.AddEdge(VertexID(i), VertexID((i+1)%n))
	}
	return g
}

func TestDegreesRing(t *testing.T) {
	st := Degrees(ring(10))
	if st.Min != 2 || st.Max != 2 || st.Mean != 2 || st.Median != 2 {
		t.Fatalf("ring degree stats = %+v, want all 2", st)
	}
}

func TestDegreesEmpty(t *testing.T) {
	st := Degrees(New(0, true))
	if st.Max != 0 || st.Mean != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := New(4, true)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	h := DegreeHistogram(g, 2)
	// deg: v0=2 v1=1 v2=0 v3=0
	if h[0] != 2 || h[1] != 1 || h[2] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestDegreeHistogramClamp(t *testing.T) {
	g := New(5, true)
	for i := 1; i < 5; i++ {
		g.AddEdge(0, VertexID(i))
	}
	h := DegreeHistogram(g, 2)
	if h[2] != 1 { // degree 4 clamped into last bucket
		t.Fatalf("clamped histogram = %v", h)
	}
}

func TestConnectedComponentsUndirected(t *testing.T) {
	g := New(6, false)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	labels, count := ConnectedComponents(g)
	if count != 3 { // {0,1,2}, {3,4}, {5}
		t.Fatalf("components=%d, want 3", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("component {0,1,2} split")
	}
	if labels[3] != labels[4] || labels[3] == labels[0] {
		t.Fatal("component {3,4} wrong")
	}
	if labels[5] == labels[0] || labels[5] == labels[3] {
		t.Fatal("isolated vertex merged")
	}
}

func TestConnectedComponentsWeaklyDirected(t *testing.T) {
	g := New(4, true)
	g.AddEdge(0, 1)
	g.AddEdge(2, 1) // weakly connects 2 to {0,1}
	labels, count := ConnectedComponents(g)
	if count != 2 {
		t.Fatalf("weak components=%d, want 2", count)
	}
	if labels[0] != labels[2] {
		t.Fatal("weakly connected vertices 0 and 2 in different components")
	}
}

func TestClusteringCoefficientTriangle(t *testing.T) {
	g := New(3, false)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.SortAdjacency()
	cc := ClusteringCoefficient(g, 0)
	if math.Abs(cc-1.0) > 1e-9 {
		t.Fatalf("triangle clustering = %v, want 1", cc)
	}
}

func TestClusteringCoefficientStar(t *testing.T) {
	g := New(5, false)
	for i := 1; i < 5; i++ {
		g.AddEdge(0, VertexID(i))
	}
	g.SortAdjacency()
	cc := ClusteringCoefficient(g, 0)
	if cc != 0 {
		t.Fatalf("star clustering = %v, want 0", cc)
	}
}

func TestMutationApply(t *testing.T) {
	w := NewWeighted(3)
	w.AddEdge(0, 1, 1)
	m := &Mutation{NewVertices: 1, NewEdges: []WeightedEdgeRecord{{U: 2, V: 3, Weight: 2}, {U: 0, V: 2}}}
	first, err := m.Apply(w)
	if err != nil {
		t.Fatal(err)
	}
	if first != 3 || w.NumVertices() != 4 {
		t.Fatalf("first=%d n=%d", first, w.NumVertices())
	}
	if w.NumEdges() != 3 {
		t.Fatalf("edges=%d, want 3", w.NumEdges())
	}
	// Default weight is 1 for the zero-weight record.
	found := false
	for _, a := range w.Neighbors(0) {
		if a.To == 2 && a.Weight == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("default-weight edge missing")
	}
}

func TestMutationApplyErrors(t *testing.T) {
	w := NewWeighted(2)
	if _, err := (&Mutation{NewEdges: []WeightedEdgeRecord{{U: 0, V: 9}}}).Apply(w); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := (&Mutation{NewEdges: []WeightedEdgeRecord{{U: 1, V: 1}}}).Apply(w); err == nil {
		t.Fatal("self-loop accepted")
	}
	if _, err := (&Mutation{NewVertices: -1}).Apply(w); err == nil {
		t.Fatal("negative vertex count accepted")
	}
	// A hostile append past MaxVertices must be rejected before any
	// allocation happens (and without overflow tripping the check).
	if _, err := (&Mutation{NewVertices: MaxVertices + 1}).Apply(w); err == nil {
		t.Fatal("append past MaxVertices accepted")
	}
	if _, err := (&Mutation{NewVertices: int(^uint(0) >> 1)}).Apply(w); err == nil {
		t.Fatal("overflowing vertex count accepted")
	}
	if w.NumVertices() != 2 {
		t.Fatalf("rejected mutations mutated the graph: %d vertices", w.NumVertices())
	}
}

func TestMutationTouchedVertices(t *testing.T) {
	m := &Mutation{NewEdges: []WeightedEdgeRecord{{U: 5, V: 1}, {U: 1, V: 3}}}
	got := m.TouchedVertices()
	want := []VertexID{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("touched=%v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("touched=%v, want %v", got, want)
		}
	}
}
