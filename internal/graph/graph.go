// Package graph provides the in-memory graph substrate used throughout the
// Spinner reproduction: directed and undirected adjacency-list graphs, the
// directed→weighted-undirected conversion of Eq. 3 in the paper, dynamic
// mutation batches for the incremental-repartitioning experiments, edge-list
// I/O, and basic topology statistics.
//
// Vertices are dense integers in [0, NumVertices()). This mirrors the data
// model of Pregel-style systems, where vertex identifiers are remapped to a
// dense range at load time, and keeps every per-vertex table a flat slice.
package graph

import (
	"fmt"
	"slices"
)

// VertexID identifies a vertex. IDs are dense: a graph with n vertices uses
// exactly the IDs 0..n-1.
type VertexID int32

// Edge is a directed edge (or one endpoint-ordered record of an undirected
// edge) used in construction and mutation batches.
type Edge struct {
	From, To VertexID
}

// Graph is an adjacency-list graph. For directed graphs adj[u] holds the
// out-neighbors of u. For undirected graphs every edge {u,v} is stored in
// both adj[u] and adj[v].
//
// Graphs produced by Builder.Build are backed by a CSR (compressed sparse
// row) arena: one flat target array plus per-vertex offset windows that the
// adj slices alias. The flat layout keeps the LPA edge scans cache-friendly
// while the adj indirection preserves the Neighbors API; the windows are
// capacity-clamped, so a later AddEdge copies the touched list out of the
// arena instead of corrupting its neighbor.
//
// Graph is immutable-by-convention after construction except through the
// explicit mutation API in dynamic.go; concurrent readers are safe as long
// as no mutation is in flight.
type Graph struct {
	directed bool
	adj      [][]VertexID
	numArcs  int64 // number of stored adjacency entries
	sorted   bool  // every adjacency list is ascending (enables binary search)
}

// New returns an empty graph with n vertices and no edges.
func New(n int, directed bool) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{directed: directed, adj: make([][]VertexID, n)}
}

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumArcs returns the number of stored adjacency entries. For a directed
// graph this is the number of edges; for an undirected graph it is twice
// the number of edges.
func (g *Graph) NumArcs() int64 { return g.numArcs }

// NumEdges returns the number of edges: arcs for a directed graph, arcs/2
// for an undirected one.
func (g *Graph) NumEdges() int64 {
	if g.directed {
		return g.numArcs
	}
	return g.numArcs / 2
}

// OutDegree returns the out-degree of u (degree, for undirected graphs).
func (g *Graph) OutDegree(u VertexID) int { return len(g.adj[u]) }

// Neighbors returns the out-neighbors of u. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Neighbors(u VertexID) []VertexID { return g.adj[u] }

// Sorted reports whether every adjacency list is known to be ascending
// (set by Builder.Build and SortAdjacency, cleared by AddEdge).
func (g *Graph) Sorted() bool { return g.sorted }

// HasEdge reports whether the arc (u,v) is present. O(log deg(u)) when the
// adjacency is sorted (after Builder.Build or SortAdjacency), O(deg(u))
// otherwise.
func (g *Graph) HasEdge(u, v VertexID) bool {
	if g.sorted {
		_, ok := slices.BinarySearch(g.adj[u], v)
		return ok
	}
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// AddEdge appends the arc (u,v); for undirected graphs it also appends
// (v,u). It does not deduplicate — use a Builder for deduplicated
// construction. Panics if an endpoint is out of range. Appending
// invalidates sortedness; call SortAdjacency again before relying on
// binary-search membership.
func (g *Graph) AddEdge(u, v VertexID) {
	g.checkVertex(u)
	g.checkVertex(v)
	g.adj[u] = append(g.adj[u], v)
	g.numArcs++
	if !g.directed {
		g.adj[v] = append(g.adj[v], u)
		g.numArcs++
	}
	g.sorted = false
}

// AddVertices grows the graph by n isolated vertices and returns the ID of
// the first new vertex.
func (g *Graph) AddVertices(n int) VertexID {
	first := VertexID(len(g.adj))
	g.adj = append(g.adj, make([][]VertexID, n)...)
	return first
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{directed: g.directed, numArcs: g.numArcs, sorted: g.sorted, adj: make([][]VertexID, len(g.adj))}
	for i, nbrs := range g.adj {
		c.adj[i] = append([]VertexID(nil), nbrs...)
	}
	return c
}

// SortAdjacency sorts every adjacency list ascending. Useful for
// deterministic iteration and for binary-search membership tests
// (HasEdge switches to binary search afterwards).
func (g *Graph) SortAdjacency() {
	for _, nbrs := range g.adj {
		slices.Sort(nbrs)
	}
	g.sorted = true
}

// Edges calls fn for every stored arc (u,v). For undirected graphs each
// edge is visited twice, once in each direction; use u < v inside fn to
// visit undirected edges once.
func (g *Graph) Edges(fn func(u, v VertexID)) {
	for u, nbrs := range g.adj {
		for _, v := range nbrs {
			fn(VertexID(u), v)
		}
	}
}

func (g *Graph) checkVertex(u VertexID) {
	if u < 0 || int(u) >= len(g.adj) {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", u, len(g.adj)))
	}
}

// Builder accumulates edges with deduplication and self-loop removal, then
// produces a Graph. It is the recommended construction path for data read
// from external sources.
type Builder struct {
	directed  bool
	n         int
	edges     []Edge
	keepLoops bool
}

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int, directed bool) *Builder {
	return &Builder{directed: directed, n: n}
}

// KeepSelfLoops makes the builder retain self-loops (dropped by default).
func (b *Builder) KeepSelfLoops() *Builder { b.keepLoops = true; return b }

// Add records the edge (u,v). Endpoints beyond the current vertex count
// grow the graph.
func (b *Builder) Add(u, v VertexID) {
	if int(u) >= b.n {
		b.n = int(u) + 1
	}
	if int(v) >= b.n {
		b.n = int(v) + 1
	}
	b.edges = append(b.edges, Edge{u, v})
}

// Build deduplicates the accumulated edges and returns the Graph.
// For undirected graphs, (u,v) and (v,u) are considered duplicates.
//
// The result is CSR-backed: all adjacency entries live in one flat target
// array, each adj[u] aliasing its offset window, and every list is sorted
// ascending — so built graphs get cache-friendly edge scans and
// binary-search HasEdge for free.
func (b *Builder) Build() *Graph {
	g := New(b.n, b.directed)
	g.sorted = true
	if len(b.edges) == 0 {
		return g
	}
	norm := make([]Edge, 0, len(b.edges))
	for _, e := range b.edges {
		if e.From == e.To && !b.keepLoops {
			continue
		}
		if !b.directed && e.From > e.To {
			e.From, e.To = e.To, e.From
		}
		norm = append(norm, e)
	}
	slices.SortFunc(norm, func(a, c Edge) int {
		if a.From != c.From {
			return int(a.From) - int(c.From)
		}
		return int(a.To) - int(c.To)
	})
	norm = slices.Compact(norm)

	// Degree census, then offsets, then a fill pass. Iterating the sorted
	// unique edge list keeps every window ascending: for directed graphs the
	// targets of u arrive in To order; for undirected graphs adj[v] first
	// receives the smaller endpoints (From ascending while v is the To side)
	// and then, once From reaches v, the larger ones in To order.
	// Offsets are int64: an undirected graph stores two arcs per edge, so
	// billion-edge inputs overflow 32-bit arithmetic.
	deg := make([]int64, b.n+1)
	for _, e := range norm {
		deg[e.From]++
		if !b.directed {
			deg[e.To]++
		}
	}
	off := make([]int64, b.n+1)
	var total int64
	for v := 0; v < b.n; v++ {
		off[v] = total
		total += deg[v]
	}
	off[b.n] = total
	csr := make([]VertexID, total)
	cur := deg[:b.n]
	copy(cur, off[:b.n])
	for _, e := range norm {
		csr[cur[e.From]] = e.To
		cur[e.From]++
		if !b.directed {
			csr[cur[e.To]] = e.From
			cur[e.To]++
		}
	}
	g.numArcs = total
	for v := 0; v < b.n; v++ {
		g.adj[v] = csr[off[v]:off[v+1]:off[v+1]]
	}
	return g
}
