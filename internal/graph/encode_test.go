package graph

import (
	"bytes"
	"testing"
)

func TestMutationBinaryRoundTrip(t *testing.T) {
	cases := []*Mutation{
		{},
		{NewVertices: 3},
		{NewEdges: []WeightedEdgeRecord{{U: 1, V: 2, Weight: 5}, {U: 0, V: 9, Weight: 1}}},
		{
			NewVertices:  2,
			NewEdges:     []WeightedEdgeRecord{{U: 10, V: 11, Weight: 2}},
			RemovedEdges: []Edge{{From: 3, To: 4}, {From: 4, To: 3}},
		},
	}
	for i, m := range cases {
		buf := AppendMutationBinary(nil, m)
		if len(buf) != MutationBinaryLen(m) {
			t.Fatalf("case %d: encoded %d bytes, MutationBinaryLen says %d", i, len(buf), MutationBinaryLen(m))
		}
		got, err := DecodeMutationBinary(buf)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.NewVertices != m.NewVertices || len(got.NewEdges) != len(m.NewEdges) || len(got.RemovedEdges) != len(m.RemovedEdges) {
			t.Fatalf("case %d: round trip %+v vs %+v", i, got, m)
		}
		for e := range m.NewEdges {
			if got.NewEdges[e] != m.NewEdges[e] {
				t.Fatalf("case %d edge %d: %+v vs %+v", i, e, got.NewEdges[e], m.NewEdges[e])
			}
		}
		for e := range m.RemovedEdges {
			if got.RemovedEdges[e] != m.RemovedEdges[e] {
				t.Fatalf("case %d removal %d mismatch", i, e)
			}
		}
	}
}

func TestDecodeMutationBinaryRejectsDamage(t *testing.T) {
	m := &Mutation{NewEdges: []WeightedEdgeRecord{{U: 1, V: 2, Weight: 3}}, RemovedEdges: []Edge{{From: 0, To: 1}}}
	buf := AppendMutationBinary(nil, m)
	for cut := 1; cut < len(buf); cut++ {
		if _, err := DecodeMutationBinary(buf[:len(buf)-cut]); err == nil {
			t.Fatalf("truncation by %d accepted", cut)
		}
	}
	if _, err := DecodeMutationBinary(append(buf, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// A hostile count must not force a huge allocation; the length check
	// fires first.
	hostile := append([]byte(nil), buf...)
	hostile[4] = 0xff
	hostile[5] = 0xff
	hostile[6] = 0xff
	hostile[7] = 0x7f
	if _, err := DecodeMutationBinary(hostile); err == nil {
		t.Fatal("hostile edge count accepted")
	}
}

func TestWeightedBinaryRoundTrip(t *testing.T) {
	w := NewWeighted(7)
	w.AddEdge(0, 1, 2)
	w.AddEdge(1, 2, 1)
	w.AddEdge(3, 6, 5)
	w.AddEdge(0, 5, 2)
	w.RemoveEdge(1, 2)

	var buf bytes.Buffer
	if err := w.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeWeightedBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != w.NumVertices() || got.NumEdges() != w.NumEdges() || got.TotalWeight() != w.TotalWeight() {
		t.Fatalf("totals: %d/%d/%d vs %d/%d/%d", got.NumVertices(), got.NumEdges(), got.TotalWeight(),
			w.NumVertices(), w.NumEdges(), w.TotalWeight())
	}
	for v := 0; v < w.NumVertices(); v++ {
		a, b := w.Neighbors(VertexID(v)), got.Neighbors(VertexID(v))
		if len(a) != len(b) {
			t.Fatalf("vertex %d: %d arcs vs %d", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d arc %d: %+v vs %+v", v, i, a[i], b[i])
			}
		}
	}

	// An empty graph round-trips too.
	var empty bytes.Buffer
	if err := NewWeighted(0).EncodeBinary(&empty); err != nil {
		t.Fatal(err)
	}
	if g, err := DecodeWeightedBinary(bytes.NewReader(empty.Bytes())); err != nil || g.NumVertices() != 0 {
		t.Fatalf("empty graph: %v", err)
	}
}

func TestDecodeWeightedBinaryRejectsDamage(t *testing.T) {
	w := NewWeighted(5)
	w.AddEdge(0, 1, 2)
	w.AddEdge(2, 3, 1)
	var buf bytes.Buffer
	if err := w.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut += 3 {
		if _, err := DecodeWeightedBinary(bytes.NewReader(full[:len(full)-cut])); err == nil {
			t.Fatalf("truncation by %d accepted", cut)
		}
	}
	// Out-of-range arc target.
	bad := append([]byte(nil), full...)
	bad[36] = 0xee // first row's first arc target
	bad[37] = 0xee
	if _, err := DecodeWeightedBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("out-of-range arc accepted")
	}
}
