package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNewEmpty(t *testing.T) {
	g := New(5, true)
	if g.NumVertices() != 5 || g.NumEdges() != 0 || !g.Directed() {
		t.Fatalf("unexpected empty graph state: n=%d m=%d dir=%v", g.NumVertices(), g.NumEdges(), g.Directed())
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, _) did not panic")
		}
	}()
	New(-1, false)
}

func TestAddEdgeDirected(t *testing.T) {
	g := New(3, true)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if g.NumEdges() != 2 || g.NumArcs() != 2 {
		t.Fatalf("edges=%d arcs=%d, want 2/2", g.NumEdges(), g.NumArcs())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("directed edge direction wrong")
	}
}

func TestAddEdgeUndirected(t *testing.T) {
	g := New(3, false)
	g.AddEdge(0, 1)
	if g.NumEdges() != 1 || g.NumArcs() != 2 {
		t.Fatalf("edges=%d arcs=%d, want 1/2", g.NumEdges(), g.NumArcs())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("undirected edge missing a direction")
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	New(2, true).AddEdge(0, 5)
}

func TestAddVertices(t *testing.T) {
	g := New(2, false)
	first := g.AddVertices(3)
	if first != 2 || g.NumVertices() != 5 {
		t.Fatalf("first=%d n=%d, want 2/5", first, g.NumVertices())
	}
	g.AddEdge(4, 0) // new vertex usable
	if !g.HasEdge(4, 0) {
		t.Fatal("edge to appended vertex missing")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New(3, true)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.NumEdges() != 1 || c.NumEdges() != 2 {
		t.Fatalf("clone not independent: g=%d c=%d", g.NumEdges(), c.NumEdges())
	}
}

func TestBuilderDedup(t *testing.T) {
	b := NewBuilder(0, true)
	b.Add(0, 1)
	b.Add(0, 1)
	b.Add(1, 0)
	b.Add(2, 2) // self loop dropped
	g := b.Build()
	if g.NumVertices() != 3 {
		t.Fatalf("n=%d, want 3", g.NumVertices())
	}
	if g.NumEdges() != 2 { // (0,1) and (1,0) are distinct directed edges
		t.Fatalf("m=%d, want 2", g.NumEdges())
	}
}

func TestBuilderUndirectedDedup(t *testing.T) {
	b := NewBuilder(0, false)
	b.Add(0, 1)
	b.Add(1, 0) // same undirected edge
	b.Add(2, 1)
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("m=%d, want 2", g.NumEdges())
	}
}

func TestBuilderKeepSelfLoops(t *testing.T) {
	b := NewBuilder(0, true).KeepSelfLoops()
	b.Add(0, 0)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("m=%d, want 1 (self-loop kept)", g.NumEdges())
	}
}

func TestBuilderEmpty(t *testing.T) {
	g := NewBuilder(4, false).Build()
	if g.NumVertices() != 4 || g.NumEdges() != 0 {
		t.Fatal("empty builder broken")
	}
}

func TestEdgesVisitsAll(t *testing.T) {
	g := New(4, true)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	got := map[[2]VertexID]bool{}
	g.Edges(func(u, v VertexID) { got[[2]VertexID{u, v}] = true })
	if len(got) != 2 || !got[[2]VertexID{0, 1}] || !got[[2]VertexID{2, 3}] {
		t.Fatalf("Edges visited %v", got)
	}
}

func TestSortAdjacency(t *testing.T) {
	g := New(4, true)
	g.AddEdge(0, 3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.SortAdjacency()
	nbrs := g.Neighbors(0)
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i-1] > nbrs[i] {
			t.Fatalf("adjacency not sorted: %v", nbrs)
		}
	}
}

// Property: builder output never contains duplicates or self loops.
func TestBuilderProperty(t *testing.T) {
	src := rng.New(99)
	f := func(seed uint16) bool {
		s := rng.New(uint64(seed))
		b := NewBuilder(0, seed%2 == 0)
		n := 2 + s.Intn(20)
		for i := 0; i < 100; i++ {
			b.Add(VertexID(s.Intn(n)), VertexID(s.Intn(n)))
		}
		g := b.Build()
		seen := map[[2]VertexID]bool{}
		ok := true
		g.Edges(func(u, v VertexID) {
			if u == v {
				ok = false
			}
			key := [2]VertexID{u, v}
			if seen[key] {
				ok = false
			}
			seen[key] = true
		})
		return ok
	}
	cfg := &quick.Config{MaxCount: 50, Rand: nil}
	_ = src
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedAddEdge(t *testing.T) {
	w := NewWeighted(3)
	w.AddEdge(0, 1, 2)
	w.AddEdge(1, 2, 1)
	if w.NumEdges() != 2 {
		t.Fatalf("edges=%d, want 2", w.NumEdges())
	}
	if w.TotalWeight() != 3 {
		t.Fatalf("total weight=%d, want 3", w.TotalWeight())
	}
	if w.WeightedDegree(1) != 3 {
		t.Fatalf("deg_w(1)=%d, want 3", w.WeightedDegree(1))
	}
	if w.Degree(1) != 2 {
		t.Fatalf("deg(1)=%d, want 2", w.Degree(1))
	}
}

func TestWeightedEdgesOnce(t *testing.T) {
	w := NewWeighted(3)
	w.AddEdge(0, 1, 2)
	w.AddEdge(2, 1, 1)
	count := 0
	w.EdgesOnce(func(u, v VertexID, weight int32) {
		if u >= v {
			t.Fatalf("EdgesOnce gave u=%d >= v=%d", u, v)
		}
		count++
	})
	if count != 2 {
		t.Fatalf("EdgesOnce visited %d, want 2", count)
	}
}

func TestConvertXORWeight(t *testing.T) {
	// 0->1 only; 1->2 and 2->1 both.
	g := New(3, true)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	w := Convert(g)
	if w.NumEdges() != 2 {
		t.Fatalf("converted edges=%d, want 2", w.NumEdges())
	}
	wantWeight := func(u, v VertexID, want int32) {
		t.Helper()
		for _, a := range w.Neighbors(u) {
			if a.To == v {
				if a.Weight != want {
					t.Fatalf("w(%d,%d)=%d, want %d", u, v, a.Weight, want)
				}
				return
			}
		}
		t.Fatalf("edge {%d,%d} missing", u, v)
	}
	wantWeight(0, 1, 1)
	wantWeight(1, 2, 2)
	// TotalWeight equals the number of directed arcs: 3.
	if w.TotalWeight() != 3 {
		t.Fatalf("total weight=%d, want 3 (number of directed arcs)", w.TotalWeight())
	}
}

func TestConvertFigure1(t *testing.T) {
	// The example of Fig. 1: vertices 1,2,3 with arcs forming mixed
	// reciprocal/one-way links. Use 0-based IDs: arcs 0->1, 1->0, 1->2.
	g := New(3, true)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	w := Convert(g)
	var w01, w12 int32
	for _, a := range w.Neighbors(1) {
		switch a.To {
		case 0:
			w01 = a.Weight
		case 2:
			w12 = a.Weight
		}
	}
	if w01 != 2 || w12 != 1 {
		t.Fatalf("w(0,1)=%d w(1,2)=%d, want 2 and 1", w01, w12)
	}
}

func TestConvertUndirectedInput(t *testing.T) {
	g := New(3, false)
	g.AddEdge(0, 1)
	w := Convert(g)
	if w.NumEdges() != 1 {
		t.Fatalf("edges=%d, want 1", w.NumEdges())
	}
	if w.Neighbors(0)[0].Weight != 2 {
		t.Fatalf("undirected edge weight=%d, want 2", w.Neighbors(0)[0].Weight)
	}
}

func TestConvertIgnoresSelfLoops(t *testing.T) {
	g := New(2, true)
	g.adj[0] = append(g.adj[0], 0) // raw self-loop
	g.numArcs++
	g.AddEdge(0, 1)
	w := Convert(g)
	if w.NumEdges() != 1 {
		t.Fatalf("edges=%d, want 1 (self-loop dropped)", w.NumEdges())
	}
}

// Property: conversion preserves the handshake identity
// Σ_v deg_w(v) = 2 * TotalWeight, and TotalWeight equals the number of
// directed arcs among distinct endpoints.
func TestConvertProperty(t *testing.T) {
	f := func(seed uint16) bool {
		s := rng.New(uint64(seed))
		n := 3 + s.Intn(40)
		b := NewBuilder(n, true)
		for i := 0; i < 4*n; i++ {
			b.Add(VertexID(s.Intn(n)), VertexID(s.Intn(n)))
		}
		g := b.Build()
		w := Convert(g)
		var degSum int64
		for v := 0; v < w.NumVertices(); v++ {
			degSum += w.WeightedDegree(VertexID(v))
		}
		return degSum == 2*w.TotalWeight() && w.TotalWeight() == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: conversion is symmetric — if v appears in adj[u] with weight w,
// u appears in adj[v] with the same weight.
func TestConvertSymmetry(t *testing.T) {
	f := func(seed uint16) bool {
		s := rng.New(uint64(seed))
		n := 3 + s.Intn(30)
		b := NewBuilder(n, true)
		for i := 0; i < 3*n; i++ {
			b.Add(VertexID(s.Intn(n)), VertexID(s.Intn(n)))
		}
		w := Convert(b.Build())
		for u := 0; u < w.NumVertices(); u++ {
			for _, a := range w.Neighbors(VertexID(u)) {
				found := false
				for _, back := range w.Neighbors(a.To) {
					if back.To == VertexID(u) && back.Weight == a.Weight {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedClone(t *testing.T) {
	w := NewWeighted(3)
	w.AddEdge(0, 1, 1)
	c := w.Clone()
	c.AddEdge(1, 2, 2)
	if w.NumEdges() != 1 || c.NumEdges() != 2 {
		t.Fatal("weighted clone not independent")
	}
}

func TestWeightedAddVertices(t *testing.T) {
	w := NewWeighted(2)
	first := w.AddVertices(2)
	if first != 2 || w.NumVertices() != 4 {
		t.Fatalf("first=%d n=%d", first, w.NumVertices())
	}
}
