package graph

import "fmt"

// Mutation describes a batch of changes to apply to a weighted undirected
// graph: new vertices and new edges. It models the "graphs are naturally
// dynamic" scenario of §III-D: the incremental experiments (Fig. 7) build a
// Mutation holding x% new edges and apply it between partitioning rounds.
type Mutation struct {
	// NewVertices is the number of vertices to append.
	NewVertices int
	// NewEdges are undirected edges to insert with the given weight.
	// Endpoints may refer to appended vertices.
	NewEdges []WeightedEdgeRecord
	// RemovedEdges are undirected edges to delete. Removing an absent edge
	// is an error (it indicates a stale batch).
	RemovedEdges []Edge
	// Tenant optionally tags the batch with the submitting tenant, used by
	// the serving layer (internal/serve) for admission control and
	// weighted-fair draining. It is an admission-time attribute, not part
	// of the graph delta: the binary journal encoding does not carry it,
	// and recovery replays records under the default tenant.
	Tenant string
}

// WeightedEdgeRecord is an undirected edge with an explicit weight.
type WeightedEdgeRecord struct {
	U, V   VertexID
	Weight int32
}

// Apply applies m to w in place and returns the ID of the first appended
// vertex (or -1 if none). Application is atomic: the whole batch is
// validated against the pre-mutation graph (plus the batch's own additions)
// before anything is mutated, so a returned error — out-of-range endpoint,
// self-loop, or removal of an absent edge (a stale batch) — leaves w
// unchanged. Duplicate additions are the caller's responsibility: mutation
// generators in internal/gen only emit fresh edges.
func (m *Mutation) Apply(w *Weighted) (firstNew VertexID, err error) {
	if err := m.validate(w); err != nil {
		return -1, err
	}
	firstNew = -1
	if m.NewVertices > 0 {
		firstNew = w.AddVertices(m.NewVertices)
	}
	for _, e := range m.NewEdges {
		weight := e.Weight
		if weight <= 0 {
			weight = 1
		}
		w.AddEdge(e.U, e.V, weight)
	}
	for _, e := range m.RemovedEdges {
		if !w.RemoveEdge(e.From, e.To) {
			// validate established presence; reaching here means w was
			// mutated concurrently, which Weighted does not support.
			panic(fmt.Sprintf("graph: validated removal {%d,%d} now absent", e.From, e.To))
		}
	}
	return firstNew, nil
}

// validate dry-runs m against w: every edge endpoint must be in range after
// the vertex append, additions must not be self-loops, and every removal
// must find a distinct edge instance among the pre-existing edges plus the
// batch's own additions (Weighted does not deduplicate, so multiplicity is
// counted, not just presence).
func (m *Mutation) validate(w *Weighted) error {
	if m.NewVertices < 0 {
		return fmt.Errorf("graph: mutation appends %d vertices", m.NewVertices)
	}
	if after := w.NumVertices() + m.NewVertices; after > MaxVertices || after < w.NumVertices() {
		return fmt.Errorf("graph: mutation grows graph to %d vertices, past MaxVertices=%d",
			w.NumVertices()+m.NewVertices, MaxVertices)
	}
	old := VertexID(w.NumVertices())
	n := old + VertexID(m.NewVertices)
	for _, e := range m.NewEdges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return fmt.Errorf("graph: mutation edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		if e.U == e.V {
			return fmt.Errorf("graph: mutation self-loop at %d", e.U)
		}
	}
	if len(m.RemovedEdges) == 0 {
		return nil
	}
	need := make(map[Edge]int, len(m.RemovedEdges))
	for _, e := range m.RemovedEdges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return fmt.Errorf("graph: removal (%d,%d) out of range [0,%d)", e.From, e.To, n)
		}
		need[normEdge(e.From, e.To)]++
	}
	for key, cnt := range need {
		avail := 0
		if key.From < old && key.To < old {
			for _, a := range w.Neighbors(key.From) {
				if a.To == key.To {
					avail++
				}
			}
		}
		for _, e := range m.NewEdges {
			if normEdge(e.U, e.V) == key {
				avail++
			}
		}
		if avail < cnt {
			return fmt.Errorf("graph: removal of absent edge {%d,%d}", key.From, key.To)
		}
	}
	return nil
}

// normEdge orders an undirected edge's endpoints canonically.
func normEdge(u, v VertexID) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{From: u, To: v}
}

// TouchedVertices returns the set of pre-existing vertices adjacent to a
// mutation edge, as a sorted-unique slice. The incremental restart strategy
// that migrates only affected vertices (§III-D, first strategy) uses this.
func (m *Mutation) TouchedVertices() []VertexID {
	seen := make(map[VertexID]struct{}, 2*(len(m.NewEdges)+len(m.RemovedEdges)))
	for _, e := range m.NewEdges {
		seen[e.U] = struct{}{}
		seen[e.V] = struct{}{}
	}
	for _, e := range m.RemovedEdges {
		seen[e.From] = struct{}{}
		seen[e.To] = struct{}{}
	}
	out := make([]VertexID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	// Insertion sort is fine for typical batch sizes; keep deterministic order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
