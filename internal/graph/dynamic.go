package graph

import "fmt"

// Mutation describes a batch of changes to apply to a weighted undirected
// graph: new vertices and new edges. It models the "graphs are naturally
// dynamic" scenario of §III-D: the incremental experiments (Fig. 7) build a
// Mutation holding x% new edges and apply it between partitioning rounds.
type Mutation struct {
	// NewVertices is the number of vertices to append.
	NewVertices int
	// NewEdges are undirected edges to insert with the given weight.
	// Endpoints may refer to appended vertices.
	NewEdges []WeightedEdgeRecord
	// RemovedEdges are undirected edges to delete. Removing an absent edge
	// is an error (it indicates a stale batch).
	RemovedEdges []Edge
}

// WeightedEdgeRecord is an undirected edge with an explicit weight.
type WeightedEdgeRecord struct {
	U, V   VertexID
	Weight int32
}

// Apply applies m to w in place and returns the ID of the first appended
// vertex (or -1 if none). Duplicate edges are the caller's responsibility:
// mutation generators in internal/gen only emit fresh edges.
func (m *Mutation) Apply(w *Weighted) (firstNew VertexID, err error) {
	firstNew = -1
	if m.NewVertices > 0 {
		firstNew = w.AddVertices(m.NewVertices)
	}
	n := VertexID(w.NumVertices())
	for _, e := range m.NewEdges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return firstNew, fmt.Errorf("graph: mutation edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		if e.U == e.V {
			return firstNew, fmt.Errorf("graph: mutation self-loop at %d", e.U)
		}
		weight := e.Weight
		if weight <= 0 {
			weight = 1
		}
		w.AddEdge(e.U, e.V, weight)
	}
	for _, e := range m.RemovedEdges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return firstNew, fmt.Errorf("graph: removal (%d,%d) out of range [0,%d)", e.From, e.To, n)
		}
		if !w.RemoveEdge(e.From, e.To) {
			return firstNew, fmt.Errorf("graph: removal of absent edge {%d,%d}", e.From, e.To)
		}
	}
	return firstNew, nil
}

// TouchedVertices returns the set of pre-existing vertices adjacent to a
// mutation edge, as a sorted-unique slice. The incremental restart strategy
// that migrates only affected vertices (§III-D, first strategy) uses this.
func (m *Mutation) TouchedVertices() []VertexID {
	seen := make(map[VertexID]struct{}, 2*(len(m.NewEdges)+len(m.RemovedEdges)))
	for _, e := range m.NewEdges {
		seen[e.U] = struct{}{}
		seen[e.V] = struct{}{}
	}
	for _, e := range m.RemovedEdges {
		seen[e.From] = struct{}{}
		seen[e.To] = struct{}{}
	}
	out := make([]VertexID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	// Insertion sort is fine for typical batch sizes; keep deterministic order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
