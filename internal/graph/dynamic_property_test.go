package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// randomWeighted builds a random simple weighted graph for property runs.
func randomWeighted(src *rng.Source, n int) *Weighted {
	w := NewWeighted(n)
	edges := 2 * n
	for i := 0; i < edges; i++ {
		u := VertexID(src.Intn(n))
		v := VertexID(src.Intn(n))
		if u == v {
			continue
		}
		dup := false
		for _, a := range w.Neighbors(u) {
			if a.To == v {
				dup = true
				break
			}
		}
		if !dup {
			w.AddEdge(u, v, int32(src.Intn(2)+1))
		}
	}
	return w
}

// randomMutation builds a random valid mutation batch against w: appended
// vertices, fresh edges (some incident to the new vertices), and removals
// sampled from the existing edges without replacement.
func randomMutation(src *rng.Source, w *Weighted) *Mutation {
	m := &Mutation{NewVertices: src.Intn(4)}
	n := w.NumVertices() + m.NewVertices
	adds := src.Intn(8)
	for i := 0; i < adds; i++ {
		u := VertexID(src.Intn(n))
		v := VertexID(src.Intn(n))
		if u == v {
			continue
		}
		m.NewEdges = append(m.NewEdges, WeightedEdgeRecord{U: u, V: v, Weight: int32(src.Intn(3))}) // weight 0 exercises the <=0 -> 1 default
	}
	var existing []Edge
	w.EdgesOnce(func(u, v VertexID, _ int32) { existing = append(existing, Edge{From: u, To: v}) })
	src.Shuffle(len(existing), func(i, j int) { existing[i], existing[j] = existing[j], existing[i] })
	removals := src.Intn(3)
	if removals > len(existing) {
		removals = len(existing)
	}
	m.RemovedEdges = append(m.RemovedEdges, existing[:removals]...)
	return m
}

// equalWeighted compares two weighted graphs structurally (order-insensitive
// adjacency multiset comparison).
func equalWeighted(t *testing.T, a, b *Weighted) bool {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() || a.TotalWeight() != b.TotalWeight() {
		return false
	}
	for v := 0; v < a.NumVertices(); v++ {
		u := VertexID(v)
		if a.Degree(u) != b.Degree(u) || a.WeightedDegree(u) != b.WeightedDegree(u) {
			return false
		}
		seen := map[WeightedArc]int{}
		for _, arc := range a.Neighbors(u) {
			seen[arc]++
		}
		for _, arc := range b.Neighbors(u) {
			seen[arc]--
		}
		for _, c := range seen {
			if c != 0 {
				return false
			}
		}
	}
	return true
}

// Property: a successful Apply preserves the bookkeeping invariants — the
// vertex count grows by exactly NewVertices, the edge count changes by
// adds − removals, the degree sum stays equal to 2·Σ per-edge weight, and
// the weighted-degree sum moves by exactly the weight added minus the
// weight removed.
func TestMutationApplyInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		w := randomWeighted(src, 20+src.Intn(60))
		m := randomMutation(src, w)

		beforeVerts := w.NumVertices()
		beforeEdges := w.NumEdges()
		var beforeDegW int64
		for v := 0; v < beforeVerts; v++ {
			beforeDegW += w.WeightedDegree(VertexID(v))
		}
		var addedW, removedW int64
		for _, e := range m.NewEdges {
			wt := int64(e.Weight)
			if wt <= 0 {
				wt = 1
			}
			addedW += wt
		}
		removedSet := map[Edge]bool{}
		for _, e := range m.RemovedEdges {
			removedSet[normEdge(e.From, e.To)] = true
		}
		w.EdgesOnce(func(u, v VertexID, weight int32) {
			if removedSet[normEdge(u, v)] {
				removedW += int64(weight)
			}
		})

		firstNew, err := m.Apply(w)
		if err != nil {
			t.Logf("seed %d: unexpected Apply error: %v", seed, err)
			return false
		}
		if m.NewVertices > 0 && firstNew != VertexID(beforeVerts) {
			return false
		}
		if m.NewVertices == 0 && firstNew != -1 {
			return false
		}
		if w.NumVertices() != beforeVerts+m.NewVertices {
			return false
		}
		if w.NumEdges() != beforeEdges+int64(len(m.NewEdges))-int64(len(m.RemovedEdges)) {
			return false
		}
		var afterDegW int64
		for v := 0; v < w.NumVertices(); v++ {
			afterDegW += w.WeightedDegree(VertexID(v))
		}
		if afterDegW != beforeDegW+2*(addedW-removedW) {
			return false
		}
		return afterDegW == 2*w.TotalWeight()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a failing Apply is atomic — whatever makes the batch invalid
// (absent-edge removal, out-of-range endpoint, self-loop), the graph is
// byte-for-byte the graph it was before the call.
func TestMutationApplyAtomicOnErrorProperty(t *testing.T) {
	f := func(seed uint64, mode uint8) bool {
		src := rng.New(seed)
		w := randomWeighted(src, 20+src.Intn(40))
		m := randomMutation(src, w)
		n := VertexID(w.NumVertices() + m.NewVertices)
		switch mode % 4 {
		case 0: // removal of an edge that never existed between valid endpoints
			u := VertexID(src.Intn(int(n)))
			v := u
			for v == u {
				v = VertexID(src.Intn(int(n)))
			}
			// Remove it once more than it is available (it may legitimately
			// exist, or be added by this very batch).
			avail := 0
			if int(u) < w.NumVertices() && int(v) < w.NumVertices() {
				for _, a := range w.Neighbors(u) {
					if a.To == v {
						avail++
					}
				}
			}
			for _, e := range m.NewEdges {
				if normEdge(e.U, e.V) == normEdge(u, v) {
					avail++
				}
			}
			for i := 0; i <= avail; i++ {
				m.RemovedEdges = append(m.RemovedEdges, Edge{From: u, To: v})
			}
		case 1: // out-of-range addition
			m.NewEdges = append(m.NewEdges, WeightedEdgeRecord{U: 0, V: n + VertexID(src.Intn(5)), Weight: 1})
		case 2: // self-loop addition
			v := VertexID(src.Intn(int(n)))
			m.NewEdges = append(m.NewEdges, WeightedEdgeRecord{U: v, V: v, Weight: 1})
		case 3: // out-of-range removal
			m.RemovedEdges = append(m.RemovedEdges, Edge{From: -1, To: 0})
		}
		snapshot := w.Clone()
		firstNew, err := m.Apply(w)
		if err == nil {
			t.Logf("seed %d mode %d: expected an error", seed, mode%4)
			return false
		}
		if firstNew != -1 {
			return false
		}
		return equalWeighted(t, w, snapshot)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: TouchedVertices is sorted, duplicate-free, and covers exactly
// the endpoints named by the batch's edges.
func TestMutationTouchedVerticesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		w := randomWeighted(src, 20+src.Intn(40))
		m := randomMutation(src, w)
		got := m.TouchedVertices()
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				return false
			}
		}
		want := map[VertexID]bool{}
		for _, e := range m.NewEdges {
			want[e.U], want[e.V] = true, true
		}
		for _, e := range m.RemovedEdges {
			want[e.From], want[e.To] = true, true
		}
		if len(want) != len(got) {
			return false
		}
		for _, v := range got {
			if !want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
