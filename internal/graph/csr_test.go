package graph

import (
	"slices"
	"testing"
)

// TestBuildCSRSortedAdjacency: Builder.Build must produce ascending
// adjacency lists (the CSR fill is a counting sort) for both directed and
// undirected graphs, and report Sorted().
func TestBuildCSRSortedAdjacency(t *testing.T) {
	for _, directed := range []bool{true, false} {
		b := NewBuilder(0, directed)
		// Adversarial insertion order, duplicates and a self-loop.
		edges := []Edge{{5, 1}, {0, 3}, {3, 0}, {2, 2}, {1, 5}, {4, 0}, {0, 3}, {5, 2}, {0, 4}}
		for _, e := range edges {
			b.Add(e.From, e.To)
		}
		g := b.Build()
		if !g.Sorted() {
			t.Fatalf("directed=%v: built graph not marked sorted", directed)
		}
		for u := 0; u < g.NumVertices(); u++ {
			nbrs := g.Neighbors(VertexID(u))
			if !slices.IsSorted(nbrs) {
				t.Fatalf("directed=%v: adjacency of %d not sorted: %v", directed, u, nbrs)
			}
			for i := 1; i < len(nbrs); i++ {
				if nbrs[i] == nbrs[i-1] {
					t.Fatalf("directed=%v: duplicate neighbor %d of %d", directed, nbrs[i], u)
				}
			}
		}
		// Self-loop dropped, duplicates collapsed.
		if g.HasEdge(2, 2) {
			t.Fatalf("directed=%v: self-loop retained", directed)
		}
	}
}

// TestBuildCSREquivalence: the CSR construction must produce the same
// graph (arc count, membership, adjacency) as incremental AddEdge of the
// deduplicated edge set.
func TestBuildCSREquivalence(t *testing.T) {
	b := NewBuilder(6, false)
	edges := []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}, {1, 4}}
	for _, e := range edges {
		b.Add(e.From, e.To)
		b.Add(e.To, e.From) // reverse duplicates must collapse
	}
	got := b.Build()
	want := New(6, false)
	for _, e := range edges {
		want.AddEdge(e.From, e.To)
	}
	want.SortAdjacency()
	if got.NumArcs() != want.NumArcs() {
		t.Fatalf("arcs %d vs %d", got.NumArcs(), want.NumArcs())
	}
	for u := 0; u < 6; u++ {
		if !slices.Equal(got.Neighbors(VertexID(u)), want.Neighbors(VertexID(u))) {
			t.Fatalf("adjacency of %d: %v vs %v", u, got.Neighbors(VertexID(u)), want.Neighbors(VertexID(u)))
		}
	}
}

// TestHasEdgeSortedTracking: HasEdge must stay correct through the
// sorted→unsorted→sorted lifecycle, and AddEdge on a CSR-backed graph must
// not corrupt a neighboring vertex's window.
func TestHasEdgeSortedTracking(t *testing.T) {
	b := NewBuilder(5, true)
	b.Add(0, 2)
	b.Add(0, 4)
	b.Add(1, 3)
	g := b.Build()
	if !g.HasEdge(0, 2) || !g.HasEdge(0, 4) || g.HasEdge(0, 3) {
		t.Fatal("binary-search HasEdge wrong on built graph")
	}
	// AddEdge invalidates sortedness (3 < 4 would break binary search if
	// the flag were kept) and must copy vertex 0's window out of the CSR
	// arena rather than overwrite vertex 1's.
	g.AddEdge(0, 3)
	if g.Sorted() {
		t.Fatal("AddEdge left graph marked sorted")
	}
	if !g.HasEdge(0, 3) || !g.HasEdge(0, 2) {
		t.Fatal("linear HasEdge wrong after AddEdge")
	}
	if !slices.Equal(g.Neighbors(1), []VertexID{3}) {
		t.Fatalf("vertex 1 adjacency corrupted by vertex 0's append: %v", g.Neighbors(1))
	}
	g.SortAdjacency()
	if !g.Sorted() || !g.HasEdge(0, 3) || g.HasEdge(0, 1) {
		t.Fatal("HasEdge wrong after re-sorting")
	}
}
