package graph

import "sort"

// DegreeStats summarizes a graph's degree distribution.
type DegreeStats struct {
	Min, Max int
	Mean     float64
	Median   int
	P99      int
}

// Degrees computes out-degree statistics for g.
func Degrees(g *Graph) DegreeStats {
	n := g.NumVertices()
	if n == 0 {
		return DegreeStats{}
	}
	ds := make([]int, n)
	sum := 0
	for u := 0; u < n; u++ {
		d := g.OutDegree(VertexID(u))
		ds[u] = d
		sum += d
	}
	sort.Ints(ds)
	return DegreeStats{
		Min:    ds[0],
		Max:    ds[n-1],
		Mean:   float64(sum) / float64(n),
		Median: ds[n/2],
		P99:    ds[min(n-1, n*99/100)],
	}
}

// DegreeHistogram returns counts[d] = number of vertices with out-degree d,
// up to maxDeg (inclusive); larger degrees are clamped into the last bucket.
func DegreeHistogram(g *Graph, maxDeg int) []int {
	counts := make([]int, maxDeg+1)
	for u := 0; u < g.NumVertices(); u++ {
		d := g.OutDegree(VertexID(u))
		if d > maxDeg {
			d = maxDeg
		}
		counts[d]++
	}
	return counts
}

// ConnectedComponents labels each vertex of an undirected (or symmetrized)
// graph with a component ID in [0, count) and returns the labels and count.
// For directed graphs it computes weakly connected components by following
// out-arcs in both directions via an implicit symmetrization.
func ConnectedComponents(g *Graph) (labels []int32, count int) {
	n := g.NumVertices()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var rev [][]VertexID
	if g.Directed() {
		rev = make([][]VertexID, n)
		g.Edges(func(u, v VertexID) { rev[v] = append(rev[v], u) })
	}
	queue := make([]VertexID, 0, 1024)
	for s := 0; s < n; s++ {
		if labels[s] >= 0 {
			continue
		}
		c := int32(count)
		count++
		labels[s] = c
		queue = append(queue[:0], VertexID(s))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range g.Neighbors(u) {
				if labels[v] < 0 {
					labels[v] = c
					queue = append(queue, v)
				}
			}
			if rev != nil {
				for _, v := range rev[u] {
					if labels[v] < 0 {
						labels[v] = c
						queue = append(queue, v)
					}
				}
			}
		}
	}
	return labels, count
}

// ClusteringCoefficient estimates the average local clustering coefficient
// over up to sample vertices (all vertices if sample <= 0 or >= n). The
// graph's adjacency must be sorted (call SortAdjacency) for the binary
// searches to be correct.
func ClusteringCoefficient(g *Graph, sample int) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	step := 1
	if sample > 0 && sample < n {
		step = n / sample
	}
	total, counted := 0.0, 0
	for u := 0; u < n; u += step {
		nbrs := g.Neighbors(VertexID(u))
		d := len(nbrs)
		if d < 2 {
			continue
		}
		links := 0
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if containsSorted(g.Neighbors(nbrs[i]), nbrs[j]) {
					links++
				}
			}
		}
		total += 2 * float64(links) / float64(d*(d-1))
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

func containsSorted(s []VertexID, x VertexID) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == x
}
