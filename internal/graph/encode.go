package graph

// Binary encodings for the durability subsystem (internal/wal): mutation
// batches are journaled and the weighted graph is checkpointed, so both
// need a compact, deterministic, versionless wire form. All integers are
// fixed-width little-endian; framing, CRCs and versioning are the
// journal's responsibility, not this file's.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// AppendMutationBinary appends m's binary encoding to buf and returns the
// extended slice. Layout:
//
//	u32 NewVertices
//	u32 len(NewEdges)   then per edge: u32 U, u32 V, i32 Weight
//	u32 len(RemovedEdges) then per edge: u32 From, u32 To
//
// The encoding is bijective with the Mutation value, so journal replay
// applies exactly the batch the coordinator applied — including batches
// that will be rejected by validation, which re-reject deterministically.
func AppendMutationBinary(buf []byte, m *Mutation) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.NewVertices))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.NewEdges)))
	for _, e := range m.NewEdges {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.U))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.V))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Weight))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.RemovedEdges)))
	for _, e := range m.RemovedEdges {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.From))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.To))
	}
	return buf
}

// MutationBinaryLen returns the exact encoded size of m in bytes.
func MutationBinaryLen(m *Mutation) int {
	return 12 + 12*len(m.NewEdges) + 8*len(m.RemovedEdges)
}

// DecodeMutationBinary decodes a Mutation encoded by AppendMutationBinary.
// The buffer must contain exactly one mutation: trailing bytes are a
// framing error. Counts are validated against the available bytes before
// any allocation, so a corrupt length prefix cannot force a huge alloc.
func DecodeMutationBinary(b []byte) (*Mutation, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("graph: mutation encoding truncated at %d bytes", len(b))
	}
	m := &Mutation{NewVertices: int(int32(binary.LittleEndian.Uint32(b)))}
	nNew := int(binary.LittleEndian.Uint32(b[4:]))
	b = b[8:]
	if nNew < 0 || len(b) < 12*nNew+4 {
		return nil, fmt.Errorf("graph: mutation encoding claims %d new edges, %d bytes left", nNew, len(b))
	}
	if nNew > 0 {
		m.NewEdges = make([]WeightedEdgeRecord, nNew)
		for i := range m.NewEdges {
			m.NewEdges[i] = WeightedEdgeRecord{
				U:      VertexID(binary.LittleEndian.Uint32(b)),
				V:      VertexID(binary.LittleEndian.Uint32(b[4:])),
				Weight: int32(binary.LittleEndian.Uint32(b[8:])),
			}
			b = b[12:]
		}
	}
	nRem := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if nRem < 0 || len(b) < 8*nRem {
		return nil, fmt.Errorf("graph: mutation encoding claims %d removals, %d bytes left", nRem, len(b))
	}
	if nRem > 0 {
		m.RemovedEdges = make([]Edge, nRem)
		for i := range m.RemovedEdges {
			m.RemovedEdges[i] = Edge{
				From: VertexID(binary.LittleEndian.Uint32(b)),
				To:   VertexID(binary.LittleEndian.Uint32(b[4:])),
			}
			b = b[8:]
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("graph: %d trailing bytes after mutation", len(b))
	}
	return m, nil
}

// EncodeBinary writes w in a CSR-shaped binary form: a header with the
// vertex/arc/edge/weight totals, then each row as a length-prefixed run of
// (target, weight) arcs. The totals double as integrity checks for
// DecodeWeightedBinary; end-to-end corruption detection is the
// checkpoint's CRC, not this layout.
func (w *Weighted) EncodeBinary(out io.Writer) error {
	bw := bufio.NewWriterSize(out, 1<<16)
	var totalArcs uint64
	for _, row := range w.adj {
		totalArcs += uint64(len(row))
	}
	var hdr [32]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(len(w.adj)))
	binary.LittleEndian.PutUint64(hdr[8:], totalArcs)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(w.numEdges))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(w.totalWeight))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [8]byte
	for _, row := range w.adj {
		binary.LittleEndian.PutUint32(rec[:], uint32(len(row)))
		if _, err := bw.Write(rec[:4]); err != nil {
			return err
		}
		for _, a := range row {
			binary.LittleEndian.PutUint32(rec[0:], uint32(a.To))
			binary.LittleEndian.PutUint32(rec[4:], uint32(a.Weight))
			if _, err := bw.Write(rec[:8]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// DecodeWeightedBinary reads a graph written by EncodeBinary, validating
// the structural invariants the serving layer relies on: vertex count
// within MaxVertices, arc targets in range, positive weights, the arc
// count exactly twice the edge count (every undirected edge is stored as
// two symmetric arcs), and the stored total weight matching the arcs.
func DecodeWeightedBinary(r io.Reader) (*Weighted, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [32]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading graph header: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[0:])
	totalArcs := binary.LittleEndian.Uint64(hdr[8:])
	numEdges := int64(binary.LittleEndian.Uint64(hdr[16:]))
	totalWeight := int64(binary.LittleEndian.Uint64(hdr[24:]))
	if n > uint64(MaxVertices) {
		return nil, fmt.Errorf("graph: encoded graph has %d vertices, past MaxVertices=%d", n, MaxVertices)
	}
	if numEdges < 0 || totalArcs != uint64(2*numEdges) {
		return nil, fmt.Errorf("graph: %d arcs for %d undirected edges", totalArcs, numEdges)
	}
	w := &Weighted{adj: make([][]WeightedArc, n), numEdges: numEdges, totalWeight: totalWeight}
	// One backing array for all arcs keeps the decode allocation-light and
	// the rows cache-adjacent, like the CSR builders elsewhere.
	arcs := make([]WeightedArc, totalArcs)
	var used uint64
	var weightSum int64
	var rec [8]byte
	for v := range w.adj {
		if _, err := io.ReadFull(br, rec[:4]); err != nil {
			return nil, fmt.Errorf("graph: reading row %d: %w", v, err)
		}
		deg := uint64(binary.LittleEndian.Uint32(rec[:4]))
		if used+deg > totalArcs {
			return nil, fmt.Errorf("graph: rows overflow the declared %d arcs at vertex %d", totalArcs, v)
		}
		row := arcs[used : used+deg : used+deg]
		used += deg
		for i := range row {
			if _, err := io.ReadFull(br, rec[:8]); err != nil {
				return nil, fmt.Errorf("graph: reading arcs of %d: %w", v, err)
			}
			to := VertexID(binary.LittleEndian.Uint32(rec[0:]))
			weight := int32(binary.LittleEndian.Uint32(rec[4:]))
			if to < 0 || uint64(to) >= n || VertexID(v) == to {
				return nil, fmt.Errorf("graph: arc %d→%d out of range", v, to)
			}
			if weight < 1 {
				return nil, fmt.Errorf("graph: arc %d→%d has weight %d", v, to, weight)
			}
			row[i] = WeightedArc{To: to, Weight: weight}
			weightSum += int64(weight)
		}
		w.adj[v] = row
	}
	if used != totalArcs {
		return nil, fmt.Errorf("graph: rows hold %d arcs, header declared %d", used, totalArcs)
	}
	if weightSum != totalWeight {
		return nil, fmt.Errorf("graph: arc weights sum to %d, header declared %d", weightSum, totalWeight)
	}
	return w, nil
}
