package graph

import "testing"

func TestRemoveEdge(t *testing.T) {
	w := NewWeighted(3)
	w.AddEdge(0, 1, 2)
	w.AddEdge(1, 2, 1)
	if !w.RemoveEdge(0, 1) {
		t.Fatal("existing edge not removed")
	}
	if w.NumEdges() != 1 || w.TotalWeight() != 1 {
		t.Fatalf("edges=%d weight=%d after removal", w.NumEdges(), w.TotalWeight())
	}
	if w.Degree(0) != 0 || w.Degree(1) != 1 {
		t.Fatalf("degrees wrong after removal: %d %d", w.Degree(0), w.Degree(1))
	}
	if w.RemoveEdge(0, 1) {
		t.Fatal("absent edge reported removed")
	}
}

func TestRemoveEdgeReverseDirection(t *testing.T) {
	w := NewWeighted(2)
	w.AddEdge(0, 1, 1)
	if !w.RemoveEdge(1, 0) {
		t.Fatal("removal via reverse endpoint order failed")
	}
	if w.NumEdges() != 0 {
		t.Fatal("edge not fully removed")
	}
}

func TestRemoveEdgeParallel(t *testing.T) {
	// Two parallel edges: each removal takes one.
	w := NewWeighted(2)
	w.AddEdge(0, 1, 1)
	w.AddEdge(0, 1, 2)
	if !w.RemoveEdge(0, 1) || w.NumEdges() != 1 {
		t.Fatal("first parallel removal wrong")
	}
	if !w.RemoveEdge(0, 1) || w.NumEdges() != 0 {
		t.Fatal("second parallel removal wrong")
	}
	if w.TotalWeight() != 0 {
		t.Fatalf("residual weight %d", w.TotalWeight())
	}
}

func TestMutationWithRemovals(t *testing.T) {
	w := NewWeighted(4)
	w.AddEdge(0, 1, 1)
	w.AddEdge(1, 2, 1)
	w.AddEdge(2, 3, 1)
	m := &Mutation{
		NewEdges:     []WeightedEdgeRecord{{U: 0, V: 3, Weight: 2}},
		RemovedEdges: []Edge{{From: 1, To: 2}},
	}
	if _, err := m.Apply(w); err != nil {
		t.Fatal(err)
	}
	if w.NumEdges() != 3 {
		t.Fatalf("edges=%d, want 3", w.NumEdges())
	}
	// Removal endpoints count as touched.
	touched := m.TouchedVertices()
	want := map[VertexID]bool{0: true, 1: true, 2: true, 3: true}
	for _, v := range touched {
		delete(want, v)
	}
	if len(want) != 0 {
		t.Fatalf("touched missing %v", want)
	}
}

func TestMutationRemovalErrors(t *testing.T) {
	w := NewWeighted(2)
	w.AddEdge(0, 1, 1)
	if _, err := (&Mutation{RemovedEdges: []Edge{{From: 0, To: 9}}}).Apply(w); err == nil {
		t.Fatal("out-of-range removal accepted")
	}
	if _, err := (&Mutation{RemovedEdges: []Edge{{From: 1, To: 0}, {From: 1, To: 0}}}).Apply(w); err == nil {
		t.Fatal("double removal of a single edge accepted")
	}
}
