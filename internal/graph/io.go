package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// MaxVertices bounds the vertex count ReadEdgeList accepts and the vertex
// count a Mutation may grow a graph to. A dense-ID edge list implies an
// adjacency table of 1 + max(ID) entries, so a hostile (or corrupt)
// few-byte input naming vertex 2^31−1 — or a mutation batch appending
// 10^12 vertices — would otherwise commit gigabytes before a single edge
// exists. The default covers every graph this reproduction runs at laptop
// scale with two orders of magnitude to spare; raise it for genuinely
// larger inputs.
var MaxVertices = 8 << 20

// ReadEdgeList parses a whitespace-separated edge list ("src dst" per line)
// into a graph with the given directedness. Lines starting with '#' or '%'
// and blank lines are skipped. Duplicate edges and self-loops are removed.
// Vertex IDs must be non-negative integers below MaxVertices; the vertex
// count is 1 + max(ID) seen.
func ReadEdgeList(r io.Reader, directed bool) (*Graph, error) {
	b := NewBuilder(0, directed)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %d", lineNo, len(fields))
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q: %w", lineNo, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target %q: %w", lineNo, fields[1], err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative vertex id", lineNo)
		}
		if u >= int64(MaxVertices) || v >= int64(MaxVertices) {
			return nil, fmt.Errorf("graph: line %d: vertex id %d exceeds MaxVertices=%d", lineNo, max(u, v), MaxVertices)
		}
		b.Add(VertexID(u), VertexID(v))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return b.Build(), nil
}

// WriteEdgeList writes g as a "src dst" edge list. Undirected edges are
// written once, smaller endpoint first.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	var err error
	g.Edges(func(u, v VertexID) {
		if err != nil {
			return
		}
		if !g.Directed() && u > v {
			return
		}
		_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
	})
	if err != nil {
		return fmt.Errorf("graph: writing edge list: %w", err)
	}
	return bw.Flush()
}

// ReadPartitioning parses "vertex label" lines into a label slice of length
// n. Every vertex in [0,n) must be assigned exactly once and labels must be
// in [0,k).
func ReadPartitioning(r io.Reader, n, k int) ([]int32, error) {
	labels := make([]int32, n)
	seen := make([]bool, n)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		v, err := strconv.Atoi(fields[0])
		if err != nil || v < 0 || v >= n {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q", lineNo, fields[0])
		}
		l, err := strconv.Atoi(fields[1])
		if err != nil || l < 0 || l >= k {
			return nil, fmt.Errorf("graph: line %d: bad label %q", lineNo, fields[1])
		}
		if seen[v] {
			return nil, fmt.Errorf("graph: line %d: vertex %d assigned twice", lineNo, v)
		}
		seen[v] = true
		labels[v] = int32(l)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading partitioning: %w", err)
	}
	for v, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("graph: vertex %d unassigned", v)
		}
	}
	return labels, nil
}

// WritePartitioning writes one "vertex label" line per vertex.
func WritePartitioning(w io.Writer, labels []int32) error {
	bw := bufio.NewWriter(w)
	for v, l := range labels {
		if _, err := fmt.Fprintf(bw, "%d %d\n", v, l); err != nil {
			return fmt.Errorf("graph: writing partitioning: %w", err)
		}
	}
	return bw.Flush()
}
