package graph

// WeightedArc is one endpoint-ordered record of a weighted undirected edge.
type WeightedArc struct {
	To     VertexID
	Weight int32
}

// Weighted is the weighted undirected graph that Spinner actually
// partitions. It is produced from a directed graph by Convert (Eq. 3 of the
// paper): an undirected edge {u,v} gets weight 1 if exactly one of (u,v),
// (v,u) exists in the directed input, and weight 2 if both exist. The edge
// weight therefore counts the number of messages a Pregel system would send
// across {u,v} per superstep, which is exactly the quantity whose cut
// Spinner minimizes.
//
// The adjacency is symmetric: {u,v} with weight w appears as (v,w) in
// adj[u] and (u,w) in adj[v].
type Weighted struct {
	adj         [][]WeightedArc
	totalWeight int64 // sum of weights over all arcs = 2 * sum over edges
	numEdges    int64 // number of undirected edges
}

// NewWeighted returns an empty weighted undirected graph with n vertices.
func NewWeighted(n int) *Weighted {
	return &Weighted{adj: make([][]WeightedArc, n)}
}

// NumVertices returns the number of vertices.
func (w *Weighted) NumVertices() int { return len(w.adj) }

// NumEdges returns the number of undirected edges.
func (w *Weighted) NumEdges() int64 { return w.numEdges }

// TotalWeight returns the sum of edge weights counted once per edge.
// This equals the number of directed arcs in the original graph and is the
// |E| that partition capacities (Eq. 5) are defined over.
func (w *Weighted) TotalWeight() int64 { return w.totalWeight / 2 }

// WeightedDegree returns deg_w(u) = Σ_{v∈N(u)} w(u,v) — the per-vertex load
// contribution used in b(l) (Eq. 6).
func (w *Weighted) WeightedDegree(u VertexID) int64 {
	var d int64
	for _, a := range w.adj[u] {
		d += int64(a.Weight)
	}
	return d
}

// Degree returns the number of distinct neighbors of u.
func (w *Weighted) Degree(u VertexID) int { return len(w.adj[u]) }

// Neighbors returns the weighted adjacency of u. The slice is owned by the
// graph and must not be modified.
func (w *Weighted) Neighbors(u VertexID) []WeightedArc { return w.adj[u] }

// AddEdge inserts the undirected edge {u,v} with the given weight. It does
// not deduplicate; construction paths are responsible for uniqueness.
func (w *Weighted) AddEdge(u, v VertexID, weight int32) {
	w.adj[u] = append(w.adj[u], WeightedArc{To: v, Weight: weight})
	w.adj[v] = append(w.adj[v], WeightedArc{To: u, Weight: weight})
	w.totalWeight += 2 * int64(weight)
	w.numEdges++
}

// RemoveEdge deletes one undirected edge {u,v} (the first matching arc in
// each direction) and reports whether it was present.
func (w *Weighted) RemoveEdge(u, v VertexID) bool {
	weight, ok := w.removeArc(u, v)
	if !ok {
		return false
	}
	if _, ok := w.removeArc(v, u); !ok {
		// Symmetry is a structural invariant; a one-sided edge means the
		// graph was corrupted by the caller.
		panic("graph: asymmetric adjacency in RemoveEdge")
	}
	w.totalWeight -= 2 * int64(weight)
	w.numEdges--
	return true
}

// removeArc removes the first arc u→v, returning its weight.
func (w *Weighted) removeArc(u, v VertexID) (int32, bool) {
	arcs := w.adj[u]
	for i, a := range arcs {
		if a.To == v {
			arcs[i] = arcs[len(arcs)-1]
			w.adj[u] = arcs[:len(arcs)-1]
			return a.Weight, true
		}
	}
	return 0, false
}

// InsertArc appends the single directed arc u→v to u's row without touching
// the symmetric row or the edge/weight totals. It exists for sharded
// writers (internal/serve): two shards owning u's and v's rows insert the
// two arcs of an undirected edge independently — appends to distinct rows
// never race — and the owner reconciles the totals via AdjustTotals. Any
// other use breaks the symmetry invariant the rest of the package relies
// on; prefer AddEdge.
func (w *Weighted) InsertArc(u, v VertexID, weight int32) {
	w.adj[u] = append(w.adj[u], WeightedArc{To: v, Weight: weight})
}

// AdjustTotals folds dEdges undirected edges of total weight dWeight into
// the graph's edge and weight totals — the bookkeeping counterpart of
// InsertArc, applied once per edge (not per arc) by the coordinating
// owner after concurrent shard writers have quiesced.
func (w *Weighted) AdjustTotals(dEdges, dWeight int64) {
	w.numEdges += dEdges
	w.totalWeight += 2 * dWeight
}

// AddVertices grows the graph by n isolated vertices and returns the ID of
// the first new vertex.
func (w *Weighted) AddVertices(n int) VertexID {
	first := VertexID(len(w.adj))
	w.adj = append(w.adj, make([][]WeightedArc, n)...)
	return first
}

// Clone returns a deep copy.
func (w *Weighted) Clone() *Weighted {
	c := &Weighted{totalWeight: w.totalWeight, numEdges: w.numEdges, adj: make([][]WeightedArc, len(w.adj))}
	for i, arcs := range w.adj {
		c.adj[i] = append([]WeightedArc(nil), arcs...)
	}
	return c
}

// EdgesOnce calls fn once per undirected edge with u < v.
func (w *Weighted) EdgesOnce(fn func(u, v VertexID, weight int32)) {
	for u, arcs := range w.adj {
		for _, a := range arcs {
			if VertexID(u) < a.To {
				fn(VertexID(u), a.To, a.Weight)
			}
		}
	}
}

// Convert turns a (possibly directed) graph into the weighted undirected
// form Spinner partitions, implementing Eq. 3:
//
//	w(u,v) = 1 if exactly one of (u,v),(v,u) ∈ D   (XOR)
//	w(u,v) = 2 if both (u,v),(v,u) ∈ D
//
// For an already-undirected input every edge simply gets weight 2: an
// undirected edge carries messages in both directions in a Pregel system,
// matching the paper's Tuenti/Friendster treatment where |E| counts
// bidirectional friendships. Self-loops in the input are ignored.
func Convert(g *Graph) *Weighted {
	n := g.NumVertices()
	w := NewWeighted(n)
	if !g.directed {
		g.Edges(func(u, v VertexID) {
			if u < v {
				w.AddEdge(u, v, 2)
			}
		})
		return w
	}
	// Directed: count multiplicity of each unordered pair.
	// mark[v] holds, per scan of u's combined in/out neighborhood, a bitmask:
	// bit 0 = arc u->v present, bit 1 = arc v->u present.
	in := make([][]VertexID, n)
	g.Edges(func(u, v VertexID) {
		if u != v {
			in[v] = append(in[v], u)
		}
	})
	mark := make([]byte, n)
	touched := make([]VertexID, 0, 64)
	for ui := 0; ui < n; ui++ {
		u := VertexID(ui)
		touched = touched[:0]
		for _, v := range g.Neighbors(u) {
			if v == u {
				continue
			}
			if mark[v] == 0 {
				touched = append(touched, v)
			}
			mark[v] |= 1
		}
		for _, v := range in[u] {
			if mark[v] == 0 {
				touched = append(touched, v)
			}
			mark[v] |= 2
		}
		for _, v := range touched {
			// Emit each unordered pair once, from the smaller endpoint.
			if u < v {
				if mark[v] == 3 {
					w.AddEdge(u, v, 2)
				} else {
					w.AddEdge(u, v, 1)
				}
			}
			mark[v] = 0
		}
	}
	return w
}
