package graph

import (
	"errors"
	"fmt"
)

// ErrCutAmbiguous is returned by CutEdits when a batch removes an edge of
// a vertex pair that exists in several instances with differing weights:
// RemoveEdge's swap-delete makes the consumed instance order-dependent, so
// no pre-apply enumeration can predict the exact weight. The batch itself
// is valid — callers should apply it and fall back to an exact cut
// recompute instead of an incremental delta. Well-behaved mutation sources
// (internal/gen, the serving protocol) never duplicate a pair with
// differing weights, so this is a safety valve, not a steady-state path.
var ErrCutAmbiguous = errors.New("graph: duplicate removals of a pair with differing weights")

// CutEdit is one edge-level effect of applying a Mutation: an undirected
// edge inserted (Add) or deleted (!Add), with canonically ordered endpoints
// (U < V) and the effective weight — for additions the normalized weight
// Apply would insert (non-positive weights default to 1), for removals the
// weight of the exact arc RemoveEdge would delete. The incremental cut
// trackers in internal/serve fold these into per-partition counters in
// O(batch) instead of recomputing the cut over all edges per snapshot.
type CutEdit struct {
	U, V   VertexID
	Weight int32
	Add    bool
}

// CutEdits enumerates the edge-level effects of applying m to w, without
// mutating w. Folding each edit's signed weight into counters produced by
// metrics.CutWeights — total += ±weight, and for edits whose endpoint
// labels differ, cross and both endpoints' per-partition external weight
// likewise — keeps them exactly equal to a fresh recompute; the sharded
// store (internal/serve) does this per owning shard.
//
// CutEdits must be called against the pre-mutation graph: removal
// weights are resolved by replaying RemoveEdge's first-match rule against
// the current adjacency (pre-existing arcs in row order, then the batch's
// own additions), so repeated removals of the same pair consume successive
// arc instances exactly as Apply will. Additions may reference vertices the
// batch itself appends.
//
// An out-of-range endpoint, a self-loop, or a removal with no matching arc
// yields an error; Apply would reject such a batch, so callers should
// discard the edits and let Apply report the canonical validation error.
func (m *Mutation) CutEdits(w *Weighted) ([]CutEdit, error) {
	if m.NewVertices < 0 {
		return nil, fmt.Errorf("graph: mutation appends %d vertices", m.NewVertices)
	}
	n := VertexID(w.NumVertices() + m.NewVertices)
	edits := make([]CutEdit, 0, len(m.NewEdges)+len(m.RemovedEdges))
	for _, e := range m.NewEdges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("graph: mutation edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("graph: mutation self-loop at %d", e.U)
		}
		weight := e.Weight
		if weight <= 0 {
			weight = 1
		}
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		edits = append(edits, CutEdit{U: u, V: v, Weight: weight, Add: true})
	}
	if len(m.RemovedEdges) == 0 {
		return edits, nil
	}
	// Per removed pair, replay RemoveEdge's first-match rule: Apply scans
	// adj[From] in row order, then the batch's own additions become
	// removable. Repeated removals of the same pair consume successive
	// instances.
	taken := make(map[Edge]int, len(m.RemovedEdges))
	for _, e := range m.RemovedEdges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return nil, fmt.Errorf("graph: removal (%d,%d) out of range [0,%d)", e.From, e.To, n)
		}
		key := normEdge(e.From, e.To)
		skip := taken[key]
		taken[key]++
		weight, uniform, ok := m.removalWeight(w, e, skip)
		if !ok {
			return nil, fmt.Errorf("graph: removal of absent edge {%d,%d}", key.From, key.To)
		}
		if !uniform {
			// Several instances of the pair with differing weights: swap
			// deletes reorder rows, and RemoveEdge picks by the written
			// From row while cut recomputes read the lower endpoint's row,
			// so no orientation-independent prediction exists.
			return nil, ErrCutAmbiguous
		}
		edits = append(edits, CutEdit{U: key.From, V: key.To, Weight: weight, Add: false})
	}
	return edits, nil
}

// removalWeight resolves the weight of the skip-th arc instance that
// removing e would delete: existing arcs in adj[e.From] row order first,
// then the batch's own additions of the same unordered pair. The second
// return reports whether every candidate instance of the pair carries the
// same weight — when they differ and skip > 0, the prediction is unsafe
// (see ErrCutAmbiguous).
func (m *Mutation) removalWeight(w *Weighted, e Edge, skip int) (weight int32, uniform, ok bool) {
	uniform = true
	var first int32
	seen := 0
	consider := func(cand int32) {
		if seen == 0 {
			first = cand
		} else if cand != first {
			uniform = false
		}
		if seen == skip {
			weight, ok = cand, true
		}
		seen++
	}
	if int(e.From) < w.NumVertices() && int(e.To) < w.NumVertices() {
		for _, a := range w.Neighbors(e.From) {
			if a.To == e.To {
				consider(a.Weight)
			}
		}
	}
	key := normEdge(e.From, e.To)
	for _, add := range m.NewEdges {
		if normEdge(add.U, add.V) == key {
			cand := add.Weight
			if cand <= 0 {
				cand = 1
			}
			consider(cand)
		}
	}
	return weight, uniform, ok
}
