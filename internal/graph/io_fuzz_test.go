package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList hammers the edge-list parser with arbitrary bytes. The
// contract under fuzz: never panic, never build a structurally invalid
// graph. Malformed lines (too few fields, non-integer tokens, 64-bit
// overflowing IDs, negative IDs, IDs past MaxVertices) must surface as
// errors; on success the graph must be simple — deduplicated, loop-free,
// with sorted adjacency and an arc count consistent with directedness.
func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n2 0\n"), true)
	f.Add([]byte("# comment\n% comment\n\n3 4\n"), false)
	f.Add([]byte("0 1\n0 1\n1 0\n"), false)         // duplicates (both orders)
	f.Add([]byte("5 5\n"), true)                    // self-loop
	f.Add([]byte("0\n"), true)                      // too few fields
	f.Add([]byte("a b\n"), false)                   // non-integer
	f.Add([]byte("-1 2\n"), true)                   // negative
	f.Add([]byte("99999999999999999999 1\n"), true) // overflows int64
	f.Add([]byte("4294967295 0\n"), false)          // overflows int32 / MaxVertices
	f.Add([]byte("0 1 extra fields ignored\n"), true)
	f.Add([]byte("0\t1\r\n"), true)
	f.Fuzz(func(t *testing.T, data []byte, directed bool) {
		g, err := ReadEdgeList(bytes.NewReader(data), directed)
		if err != nil {
			if g != nil {
				t.Fatalf("non-nil graph alongside error %v", err)
			}
			return
		}
		if g.NumVertices() > MaxVertices {
			t.Fatalf("parser accepted %d vertices past MaxVertices=%d", g.NumVertices(), MaxVertices)
		}
		var arcs int64
		for v := 0; v < g.NumVertices(); v++ {
			u := VertexID(v)
			nbrs := g.Neighbors(u)
			arcs += int64(len(nbrs))
			for i, to := range nbrs {
				if to == u {
					t.Fatalf("self-loop at %d survived parsing", v)
				}
				if to < 0 || int(to) >= g.NumVertices() {
					t.Fatalf("vertex %d has out-of-range neighbor %d", v, to)
				}
				if i > 0 && nbrs[i-1] >= to {
					t.Fatalf("vertex %d adjacency not sorted-unique: %v", v, nbrs)
				}
			}
		}
		if !directed && arcs%2 != 0 {
			t.Fatalf("undirected graph with odd arc count %d", arcs)
		}
	})
}

// FuzzReadPartitioning checks the partitioning parser: never panic, and a
// successful parse is a complete assignment — every vertex labeled exactly
// once (duplicate assignments must error) with labels inside [0,k).
func FuzzReadPartitioning(f *testing.F) {
	f.Add("0 0\n1 1\n2 0\n", uint16(3), uint16(2))
	f.Add("0 0\n0 1\n", uint16(1), uint16(2)) // duplicate vertex
	f.Add("0 5\n", uint16(1), uint16(2))      // label out of range
	f.Add("0 0\n", uint16(2), uint16(1))      // vertex 1 unassigned
	f.Add("x y\n", uint16(1), uint16(1))      // non-integer
	f.Add("0 0 0\n", uint16(1), uint16(1))    // too many fields
	f.Add("# c\n0 0\n", uint16(1), uint16(1)) // comment
	f.Add("99999999999 0\n", uint16(4), uint16(4))
	f.Fuzz(func(t *testing.T, text string, nRaw, kRaw uint16) {
		n := int(nRaw%512) + 1
		k := int(kRaw%64) + 1
		labels, err := ReadPartitioning(strings.NewReader(text), n, k)
		if err != nil {
			return
		}
		if len(labels) != n {
			t.Fatalf("got %d labels, want %d", len(labels), n)
		}
		for v, l := range labels {
			if l < 0 || int(l) >= k {
				t.Fatalf("vertex %d labeled %d outside [0,%d)", v, l, k)
			}
		}
		// Round-trip: writing and re-reading must reproduce the labeling.
		var buf bytes.Buffer
		if err := WritePartitioning(&buf, labels); err != nil {
			t.Fatalf("write-back: %v", err)
		}
		again, err := ReadPartitioning(&buf, n, k)
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		for v := range labels {
			if labels[v] != again[v] {
				t.Fatalf("round-trip changed vertex %d: %d -> %d", v, labels[v], again[v])
			}
		}
	})
}
