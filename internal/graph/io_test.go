package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := "# comment\n% also comment\n0 1\n1 2\n\n2 0\n"
	g, err := ReadEdgeList(strings.NewReader(in), true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("n=%d m=%d, want 3/3", g.NumVertices(), g.NumEdges())
	}
}

func TestReadEdgeListDedup(t *testing.T) {
	in := "0 1\n0 1\n1 1\n"
	g, err := ReadEdgeList(strings.NewReader(in), true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("m=%d, want 1", g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",                      // too few fields
		"a 1\n",                    // bad source
		"0 b\n",                    // bad target
		"-1 2\n",                   // negative
		"1 -2\n",                   // negative target
		"99999999999999999999 1\n", // overflow
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in), false); err == nil {
			t.Fatalf("input %q: want error, got nil", in)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := New(4, true)
	g.AddEdge(0, 1)
	g.AddEdge(3, 2)
	g.AddEdge(1, 3)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != 4 || g2.NumEdges() != 3 {
		t.Fatalf("round trip n=%d m=%d", g2.NumVertices(), g2.NumEdges())
	}
	g.Edges(func(u, v VertexID) {
		if !g2.HasEdge(u, v) {
			t.Fatalf("round trip lost edge (%d,%d)", u, v)
		}
	})
}

func TestEdgeListRoundTripUndirected(t *testing.T) {
	g := New(3, false)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 2 {
		t.Fatalf("undirected edges written %d times, want 2 lines got %q", lines, buf.String())
	}
	g2, err := ReadEdgeList(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 2 {
		t.Fatalf("round trip m=%d, want 2", g2.NumEdges())
	}
}

func TestPartitioningRoundTrip(t *testing.T) {
	labels := []int32{0, 2, 1, 1}
	var buf bytes.Buffer
	if err := WritePartitioning(&buf, labels); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPartitioning(&buf, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range labels {
		if got[i] != labels[i] {
			t.Fatalf("label[%d]=%d, want %d", i, got[i], labels[i])
		}
	}
}

func TestReadPartitioningErrors(t *testing.T) {
	cases := []struct {
		in   string
		n, k int
	}{
		{"0 0\n0 1\n", 1, 2}, // duplicate
		{"0 5\n", 1, 2},      // label out of range
		{"7 0\n", 1, 2},      // vertex out of range
		{"0\n", 1, 2},        // malformed
		{"0 0\n", 2, 2},      // missing vertex 1
		{"x 0\n", 1, 2},      // bad vertex
	}
	for _, c := range cases {
		if _, err := ReadPartitioning(strings.NewReader(c.in), c.n, c.k); err == nil {
			t.Fatalf("input %q: want error", c.in)
		}
	}
}
