package graph

import (
	"errors"
	"testing"

	"repro/internal/rng"
)

// cutWeightsExact recomputes (cross, total, perPart) from scratch — the
// reference the incremental deltas must stay bit-identical to.
func cutWeightsExact(w *Weighted, labels []int32, k int) (cross, total int64, perPart []int64) {
	perPart = make([]int64, k)
	w.EdgesOnce(func(u, v VertexID, weight int32) {
		total += int64(weight)
		if labels[u] != labels[v] {
			cross += int64(weight)
			perPart[labels[u]] += int64(weight)
			perPart[labels[v]] += int64(weight)
		}
	})
	return cross, total, perPart
}

// Randomized sequences of add/remove/grow batches: folding each batch's
// CutDelta into running counters must stay exactly equal to a fresh
// recompute after every application.
func TestCutDeltaMatchesExactRecompute(t *testing.T) {
	const k = 4
	src := rng.New(99)
	// Weights derive from the pair so duplicate instances stay uniform —
	// the contract real mutation sources keep (differing-weight duplicates
	// are the ErrCutAmbiguous path, tested separately). A zero weight
	// exercises Apply's default-to-1 normalization.
	pairWeight := func(u, v VertexID) int32 {
		if (u+v)%5 == 0 {
			return 0
		}
		return int32(1 + (u+v)%3)
	}
	w := NewWeighted(30)
	labels := make([]int32, 30)
	for v := range labels {
		labels[v] = int32(src.Intn(k))
	}
	for i := 0; i < 60; i++ {
		u, v := VertexID(src.Intn(30)), VertexID(src.Intn(30))
		if u != v {
			weight := pairWeight(u, v)
			if weight == 0 {
				weight = 1
			}
			w.AddEdge(u, v, weight)
		}
	}
	cross, total, perPart := cutWeightsExact(w, labels, k)

	for step := 0; step < 200; step++ {
		m := &Mutation{}
		// Adds between existing (and occasionally appended) vertices.
		if src.Intn(4) == 0 {
			m.NewVertices = 1 + src.Intn(2)
		}
		n := VertexID(w.NumVertices() + m.NewVertices)
		for i := src.Intn(5); i > 0; i-- {
			u, v := VertexID(src.Intn(int(n))), VertexID(src.Intn(int(n)))
			if u != v {
				m.NewEdges = append(m.NewEdges, WeightedEdgeRecord{U: u, V: v, Weight: pairWeight(u, v)})
			}
		}
		// Removals of randomly chosen existing edges.
		for i := src.Intn(3); i > 0 && w.NumEdges() > 0; i-- {
			u := VertexID(src.Intn(w.NumVertices()))
			if w.Degree(u) == 0 {
				continue
			}
			a := w.Neighbors(u)[src.Intn(w.Degree(u))]
			m.RemovedEdges = append(m.RemovedEdges, Edge{From: u, To: a.To})
		}

		// Post-mutation labels: appended vertices get arbitrary labels
		// before the delta is computed, mirroring serve's seed-then-delta
		// ordering.
		grown := labels
		if m.NewVertices > 0 {
			grown = make([]int32, int(n))
			copy(grown, labels)
			for v := w.NumVertices(); v < int(n); v++ {
				grown[v] = int32(src.Intn(k))
			}
		}
		edits, derr := m.CutEdits(w)
		if _, err := m.Apply(w); err != nil {
			// Random removals can collide (same edge twice when it exists
			// once); the batch is rejected atomically, so skip the step —
			// but the delta path must not have claimed success with a
			// wrong prediction either way.
			continue
		}
		labels = grown
		if errors.Is(derr, ErrCutAmbiguous) {
			// Valid batch, unpredictable removal weights: callers recompute.
			cross, total, perPart = cutWeightsExact(w, labels, k)
			continue
		}
		if derr != nil {
			t.Fatalf("step %d: CutEdits failed on a batch Apply accepted: %v", step, derr)
		}
		// Fold the edits the way the serving layer does.
		for _, e := range edits {
			weight := int64(e.Weight)
			if !e.Add {
				weight = -weight
			}
			total += weight
			if lu, lv := grown[e.U], grown[e.V]; lu != lv {
				cross += weight
				perPart[lu] += weight
				perPart[lv] += weight
			}
		}
		ec, et, ep := cutWeightsExact(w, labels, k)
		if cross != ec || total != et {
			t.Fatalf("step %d: incremental (cross=%d,total=%d) != exact (cross=%d,total=%d)",
				step, cross, total, ec, et)
		}
		for l := range ep {
			if perPart[l] != ep[l] {
				t.Fatalf("step %d: perPart[%d] incremental %d != exact %d", step, l, perPart[l], ep[l])
			}
		}
	}
}

func TestCutEditsErrors(t *testing.T) {
	w := NewWeighted(4)
	w.AddEdge(0, 1, 2)
	for _, m := range []*Mutation{
		{NewEdges: []WeightedEdgeRecord{{U: 0, V: 9}}},
		{NewEdges: []WeightedEdgeRecord{{U: 2, V: 2}}},
		{RemovedEdges: []Edge{{From: 2, To: 3}}},
		{RemovedEdges: []Edge{{From: 0, To: 1}, {From: 1, To: 0}}},
		{NewVertices: -1},
	} {
		if _, err := m.CutEdits(w); err == nil {
			t.Fatalf("CutEdits(%+v) accepted an invalid batch", m)
		}
	}
	// Duplicate instances with differing weights: removing two is ambiguous.
	w.AddEdge(0, 1, 5)
	w.AddEdge(0, 1, 7)
	amb := &Mutation{RemovedEdges: []Edge{{From: 0, To: 1}, {From: 0, To: 1}}}
	if _, err := amb.CutEdits(w); !errors.Is(err, ErrCutAmbiguous) {
		t.Fatalf("ambiguous duplicate removal: err = %v, want ErrCutAmbiguous", err)
	}
	// Uniform duplicate weights stay predictable.
	w2 := NewWeighted(2)
	w2.AddEdge(0, 1, 3)
	w2.AddEdge(0, 1, 3)
	uni := &Mutation{RemovedEdges: []Edge{{From: 0, To: 1}, {From: 1, To: 0}}}
	edits, err := uni.CutEdits(w2)
	if err != nil || len(edits) != 2 || edits[0].Weight != 3 || edits[1].Weight != 3 {
		t.Fatalf("uniform duplicate removal: edits=%v err=%v", edits, err)
	}
}

func TestInsertArcAndAdjustTotals(t *testing.T) {
	w := NewWeighted(3)
	w.InsertArc(0, 1, 4)
	w.InsertArc(1, 0, 4)
	w.AdjustTotals(1, 4)
	if w.NumEdges() != 1 || w.TotalWeight() != 4 {
		t.Fatalf("totals after arc insert: edges=%d weight=%d", w.NumEdges(), w.TotalWeight())
	}
	if w.WeightedDegree(0) != 4 || w.WeightedDegree(1) != 4 {
		t.Fatalf("degrees %d,%d", w.WeightedDegree(0), w.WeightedDegree(1))
	}
	if !w.RemoveEdge(0, 1) {
		t.Fatal("arc-inserted edge not removable")
	}
	if w.NumEdges() != 0 || w.TotalWeight() != 0 {
		t.Fatalf("totals after removal: edges=%d weight=%d", w.NumEdges(), w.TotalWeight())
	}
}
