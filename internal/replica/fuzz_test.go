package replica

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/graph"
	"repro/internal/wal"
)

// journalFrames builds a real WAL journal and returns its raw frame bytes
// — a realistic records payload for fuzz seeding.
func journalFrames(tb testing.TB) []byte {
	tb.Helper()
	dir, err := os.MkdirTemp("", "replica-fuzz")
	if err != nil {
		tb.Fatal(err)
	}
	defer os.RemoveAll(dir)
	j, err := wal.Open(dir, 1, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		tb.Fatal(err)
	}
	if _, _, err := j.AppendMutation(&graph.Mutation{NewVertices: 2,
		NewEdges: []graph.WeightedEdgeRecord{{U: 0, V: 1, Weight: 3}}}); err != nil {
		tb.Fatal(err)
	}
	if _, _, err := j.AppendResize(5); err != nil {
		tb.Fatal(err)
	}
	if err := j.Close(); err != nil {
		tb.Fatal(err)
	}
	frames, _, _, err := wal.ReadFramesAfter(dir, 0, 1<<20)
	if err != nil {
		tb.Fatal(err)
	}
	return frames
}

// FuzzStreamFrame hammers the stream-frame decoder with arbitrary bytes:
// it must never panic, must reject frames whose CRC does not cover the
// payload, and on success must round-trip through AppendFrame and hand
// wal.DecodeRecords a payload it can iterate without panicking.
func FuzzStreamFrame(f *testing.F) {
	records := journalFrames(f)
	f.Add(AppendFrame(nil, Frame{Kind: FrameHandshake, Epoch: 1, LeaderSeq: 2}))
	f.Add(AppendFrame(nil, Frame{Kind: FrameHeartbeat, Epoch: 7, LeaderSeq: 99}))
	f.Add(AppendFrame(nil, Frame{Kind: FrameRecords, Epoch: 3, LeaderSeq: 2, Records: records}))
	f.Add([]byte{FrameRecords, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := DecodeFrame(b)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("DecodeFrame consumed %d of %d bytes", n, len(b))
		}
		// Round-trip: re-encoding the decoded frame must reproduce the
		// consumed bytes exactly.
		if re := AppendFrame(nil, fr); !bytes.Equal(re, b[:n]) {
			t.Fatalf("round-trip mismatch:\n got %x\nwant %x", re, b[:n])
		}
		if fr.Kind == FrameRecords {
			// The record iterator must not panic on whatever payload
			// survived the frame CRC; per-record CRCs still apply.
			_ = wal.DecodeRecords(fr.Records, func(wal.Record) error { return nil })
		}
		// Chained decode of the remainder must also not panic.
		if _, _, err := DecodeFrame(b[n:]); err != nil {
			return
		}
	})
}
