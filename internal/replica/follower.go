package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/wal"
)

// FollowerConfig tunes StartFollower.
type FollowerConfig struct {
	// Leader is the leader's base address (host:port or http:// URL).
	Leader string
	// Dir is the follower's own data directory: bootstrap installs the
	// leader's checkpoint here, and the follower journals + checkpoints
	// into it exactly like a leader, so a crashed follower resumes from
	// its own state instead of re-bootstrapping.
	Dir string
	// Store is the serve configuration. It must match the leader's
	// partitioner options for the replay to be bit-identical. Shards 0
	// inherits the leader's checkpointed shard layout.
	Store serve.Config
	// Client is the HTTP client for checkpoint fetch + streaming (default
	// http.DefaultClient; tests inject the httptest client).
	Client *http.Client
	// Reconnect is the backoff between stream attempts (default 200ms).
	Reconnect time.Duration
}

// Follower tails a leader's journal into a read-only durable store. Reads
// (Store().Lookup) serve from the follower's own snapshots; AppliedSeq,
// LeaderSeq and Staleness expose the replication watermark; Promote seals
// the position into a new epoch and flips the store read-write.
type Follower struct {
	cfg    FollowerConfig
	st     *serve.Store
	ctx    context.Context // cancels the tail loop
	cancel context.CancelFunc
	done   chan struct{}

	epoch      atomic.Uint64
	appliedSeq atomic.Uint64
	leaderSeq  atomic.Uint64
	caughtUpAt atomic.Int64 // unix nanos of the last applied==leader observation
	promoted   atomic.Bool
	fatal      atomic.Pointer[error]

	// lagHist tracks the apply lag (leader seq − applied seq, in
	// records) observed at each record application; the instantaneous
	// lag and wall-clock staleness are gauge funcs over the same atomics
	// (see registerMetrics).
	lagHist *metrics.Histogram

	closeOnce sync.Once
}

// fatalErr marks follower errors that retrying cannot fix (journal gap
// requiring re-bootstrap, storage fault, fencing); the tail loop stops on
// them, and Err surfaces them. Everything else is a transient stream
// failure: reconnect from appliedSeq.
type fatalErr struct{ err error }

func (e fatalErr) Error() string { return e.err.Error() }
func (e fatalErr) Unwrap() error { return e.err }

// StartFollower bootstraps (or resumes) a follower over cfg.Dir and
// starts tailing the leader. A dir with existing state resumes from its
// own latest checkpoint + journal tail — the leader checkpoint fetch only
// happens on first contact.
func StartFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Reconnect <= 0 {
		cfg.Reconnect = 200 * time.Millisecond
	}
	cfg.Leader = normalizeLeader(cfg.Leader)

	f := &Follower{cfg: cfg, done: make(chan struct{})}
	f.ctx, f.cancel = context.WithCancel(context.Background())

	if !serve.HasState(cfg.Dir) {
		if err := f.bootstrap(); err != nil {
			return nil, err
		}
	}
	if e, ok, err := LoadEpoch(cfg.Dir); err != nil {
		return nil, err
	} else if ok {
		f.epoch.Store(e.Epoch)
	}
	st, err := serve.Open(cfg.Dir, cfg.Store)
	if err != nil {
		return nil, err
	}
	st.SetReadOnly(true)
	f.st = st
	f.appliedSeq.Store(st.JournalSeq())
	f.caughtUpAt.Store(time.Now().UnixNano())
	f.registerMetrics()
	go f.run()
	return f, nil
}

// registerMetrics publishes the replication watermark into the store's
// metric registry: instantaneous lag and staleness as computed gauges
// (sampled at exposition time) plus a histogram of the apply lag seen by
// each applied record, so catch-up bursts stay visible between scrapes.
func (f *Follower) registerMetrics() {
	reg := f.st.Metrics()
	reg.NewGaugeFunc("spinner_replica_lag_records",
		"Leader journal sequence minus the follower's applied sequence.",
		func() float64 {
			if lag := int64(f.leaderSeq.Load()) - int64(f.appliedSeq.Load()); lag > 0 {
				return float64(lag)
			}
			return 0
		})
	reg.NewGaugeFunc("spinner_replica_staleness_seconds",
		"Wall-clock time since the follower last observed itself caught up.",
		func() float64 { return f.Staleness().Seconds() })
	f.lagHist = reg.NewHistogram("spinner_replica_apply_lag_records",
		"Apply lag in journal records observed at each record application.",
		metrics.UnitNone)
}

func normalizeLeader(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// bootstrap installs the leader's latest checkpoint (and its epoch) into
// the follower's empty data dir.
func (f *Follower) bootstrap() error {
	req, err := http.NewRequestWithContext(f.ctx, http.MethodGet, f.cfg.Leader+"/replicate/checkpoint", nil)
	if err != nil {
		return err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return fmt.Errorf("replica: fetching leader checkpoint: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica: leader checkpoint: %s", resp.Status)
	}
	seq, err := strconv.ParseUint(resp.Header.Get("X-Checkpoint-Seq"), 10, 64)
	if err != nil {
		return fmt.Errorf("replica: leader checkpoint seq: %w", err)
	}
	epoch, err := strconv.ParseUint(resp.Header.Get("X-Replica-Epoch"), 10, 64)
	if err != nil {
		return fmt.Errorf("replica: leader epoch: %w", err)
	}
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if err := wal.WriteCheckpoint(serve.CheckpointDir(f.cfg.Dir), seq, payload); err != nil {
		return err
	}
	if err := SaveEpoch(f.cfg.Dir, Epoch{Epoch: epoch, SealedSeq: 0}); err != nil {
		return err
	}
	f.epoch.Store(epoch)
	return nil
}

// run is the tail loop: stream, apply, reconnect on transient failure.
func (f *Follower) run() {
	defer close(f.done)
	first := true
	for {
		if f.ctx.Err() != nil || f.promoted.Load() {
			return
		}
		if !first {
			select {
			case <-f.ctx.Done():
				return
			case <-time.After(f.cfg.Reconnect):
			}
			if f.ctx.Err() != nil || f.promoted.Load() {
				return
			}
			f.st.Counters().ReplicaReconnects.Add(1)
		}
		first = false
		err := f.streamOnce()
		var fe fatalErr
		if errors.As(err, &fe) {
			if !f.promoted.Load() {
				f.fatal.Store(&fe.err)
			}
			return
		}
	}
}

// streamOnce opens one /replicate stream at the applied position and
// applies frames until the connection drops. A partial frame at the end
// of the connection is discarded (it re-arrives whole on the next
// attempt), so a torn stream can never apply a torn group.
func (f *Follower) streamOnce() error {
	u := fmt.Sprintf("%s/replicate?after_seq=%d", f.cfg.Leader, f.appliedSeq.Load())
	if e := f.epoch.Load(); e > 0 {
		u += "&epoch=" + strconv.FormatUint(e, 10)
	}
	req, err := http.NewRequestWithContext(f.ctx, http.MethodGet, u, nil)
	if err != nil {
		return fatalErr{err}
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return fatalErr{fmt.Errorf("replica: leader journal no longer holds seq %d: wipe %s and re-bootstrap", f.appliedSeq.Load()+1, f.cfg.Dir)}
	case http.StatusConflict:
		return fatalErr{fmt.Errorf("replica: leader at epoch %s, follower fenced at %d", resp.Header.Get("X-Replica-Epoch"), f.epoch.Load())}
	default:
		return fmt.Errorf("replica: stream: %s", resp.Status)
	}

	var buf []byte
	chunk := make([]byte, 64<<10)
	for {
		n, err := resp.Body.Read(chunk)
		if n > 0 {
			buf = append(buf, chunk[:n]...)
			for len(buf) > 0 {
				fr, consumed, err := DecodeFrame(buf)
				if errors.Is(err, ErrShortFrame) {
					break // torn read; complete it with the next chunk
				}
				if err != nil {
					return err // corruption: drop the stream, re-request
				}
				if err := f.handleFrame(fr); err != nil {
					return err
				}
				buf = buf[consumed:]
			}
		}
		if err != nil {
			return err // io.EOF and friends: reconnect from appliedSeq
		}
	}
}

// handleFrame fences, applies and advances the watermark for one stream
// frame.
func (f *Follower) handleFrame(fr Frame) error {
	e := f.epoch.Load()
	if e == 0 && fr.Kind == FrameHandshake {
		// First contact with no persisted epoch (a pre-replication data
		// dir): adopt the leader's.
		if err := SaveEpoch(f.cfg.Dir, Epoch{Epoch: fr.Epoch}); err != nil {
			return fatalErr{err}
		}
		f.epoch.Store(fr.Epoch)
		e = fr.Epoch
	}
	if fr.Epoch != e {
		f.st.Counters().ReplicaFencedFrames.Add(1)
		return fatalErr{fmt.Errorf("replica: frame from epoch %d, fenced at %d", fr.Epoch, e)}
	}
	if fr.Kind == FrameRecords {
		if err := wal.DecodeRecords(fr.Records, f.applyRecord); err != nil {
			return err
		}
	}
	if s := fr.LeaderSeq; s > f.leaderSeq.Load() {
		f.leaderSeq.Store(s)
	}
	if f.appliedSeq.Load() >= f.leaderSeq.Load() {
		f.caughtUpAt.Store(time.Now().UnixNano())
	}
	return nil
}

// applyRecord pushes one leader journal record through the store's
// replicated apply path, quiescing after it exactly as recovery does (the
// bit-identity contract), and verifies the follower's own journal stayed
// sequence-aligned with the leader's.
func (f *Follower) applyRecord(rec wal.Record) error {
	want := f.appliedSeq.Load() + 1
	if rec.Seq < want {
		return nil // overlap after a reconnect; already applied
	}
	if rec.Seq > want {
		return fmt.Errorf("replica: stream gap: record %d, want %d", rec.Seq, want)
	}
	switch rec.Type {
	case wal.RecordMutation:
		if err := f.st.SubmitReplicated(rec.Mut); err != nil {
			return fatalErr{err}
		}
	case wal.RecordResize:
		if err := f.st.ResizeReplicated(rec.NewK); err != nil {
			return fatalErr{err}
		}
	default:
		return fatalErr{fmt.Errorf("replica: unknown record type %d", rec.Type)}
	}
	// Deterministic re-rejections of batches the leader rejected stay
	// observable via Err without failing replication — same contract as
	// recovery replay.
	_ = f.st.Quiesce()
	if f.st.Degraded() {
		return fatalErr{errors.New("replica: follower storage degraded")}
	}
	if js := f.st.JournalSeq(); js != rec.Seq {
		return fatalErr{fmt.Errorf("replica: journal misaligned: local seq %d after applying leader seq %d", js, rec.Seq)}
	}
	f.appliedSeq.Store(rec.Seq)
	f.st.Counters().ReplicaRecordsApplied.Add(1)
	if lag := int64(f.leaderSeq.Load()) - int64(rec.Seq); lag >= 0 {
		f.lagHist.RecordValue(lag)
	}
	return nil
}

// Store returns the follower's serving store (read-only until Promote).
func (f *Follower) Store() *serve.Store { return f.st }

// AppliedSeq returns the last leader journal sequence applied locally.
func (f *Follower) AppliedSeq() uint64 { return f.appliedSeq.Load() }

// LeaderSeq returns the leader's last advertised journal sequence.
func (f *Follower) LeaderSeq() uint64 { return f.leaderSeq.Load() }

// Epoch returns the node's current fencing epoch.
func (f *Follower) Epoch() uint64 { return f.epoch.Load() }

// Promoted reports whether Promote has run.
func (f *Follower) Promoted() bool { return f.promoted.Load() }

// Err returns the fatal replication error that stopped the tail loop, if
// any (lookups keep serving the last applied state regardless).
func (f *Follower) Err() error {
	if p := f.fatal.Load(); p != nil {
		return *p
	}
	return nil
}

// Staleness reports how long ago the follower last observed itself caught
// up with the leader. It grows during lag, partition from the leader, or
// leader death — the watermark -max-staleness bounds.
func (f *Follower) Staleness() time.Duration {
	return time.Duration(time.Now().UnixNano() - f.caughtUpAt.Load())
}

// Promote seals the follower's applied journal position into a new epoch
// and flips the store read-write. The epoch is bumped in memory first —
// instantly fencing any in-flight frames from the deposed leader — then
// the tail loop is stopped, the epoch record persisted, and only then do
// external writes open. Safe to call once; later calls return the sealed
// epoch unchanged.
func (f *Follower) Promote() (Epoch, error) {
	if f.promoted.Swap(true) {
		e, _, err := LoadEpoch(f.cfg.Dir)
		return e, err
	}
	f.epoch.Add(1)
	f.cancel()
	<-f.done
	e := Epoch{Epoch: f.epoch.Load(), SealedSeq: f.appliedSeq.Load()}
	if err := SaveEpoch(f.cfg.Dir, e); err != nil {
		return Epoch{}, fmt.Errorf("replica: sealing epoch: %w", err)
	}
	f.st.SetReadOnly(false)
	return e, nil
}

// Close stops the tail loop and closes the store (final checkpoint
// included, unless degraded).
func (f *Follower) Close() error {
	var err error
	f.closeOnce.Do(func() {
		f.cancel()
		<-f.done
		err = f.st.Close()
	})
	return err
}
