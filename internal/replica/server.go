package replica

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/wal"
)

// Server is the leader side of the replication plane: it serves checkpoint
// bootstrap (GET /replicate/checkpoint) and the live journal tail as a
// chunked stream (GET /replicate?after_seq=N[&epoch=E]). While a follower
// is connected, the Server pins the leader's journal retention at the
// lowest sequence any connected follower still needs, so checkpoint
// truncation cannot reclaim segments out from under the stream (the
// truncate-under-replication race).
type Server struct {
	st    *serve.Store
	dir   string
	epoch func() uint64

	// Tuning, settable before the first request (tests shorten these).
	Heartbeat  time.Duration // idle heartbeat period (default 500ms)
	Poll       time.Duration // journal poll interval (default 20ms)
	ChunkBytes int           // target records-frame size (default 256 KiB)

	mu        sync.Mutex
	followers map[int]uint64 // stream id → next sequence it needs
	nextID    int
}

// NewServer builds a leader endpoint over a durable store rooted at dir.
// epoch supplies the node's current fencing epoch per frame — a static
// closure on a bootstrap leader, the follower's live epoch on a promoted
// one (so a deposed-then-promoted chain keeps fencing correctly).
func NewServer(st *serve.Store, dir string, epoch func() uint64) *Server {
	return &Server{
		st:         st,
		dir:        dir,
		epoch:      epoch,
		Heartbeat:  500 * time.Millisecond,
		Poll:       20 * time.Millisecond,
		ChunkBytes: 256 << 10,
		followers:  make(map[int]uint64),
	}
}

// track registers a connected follower needing records from nextNeeded on
// and re-pins journal retention; advance and untrack keep it current. The
// pin is the min over connected followers, cleared when none remain.
func (s *Server) track(nextNeeded uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextID
	s.nextID++
	s.followers[id] = nextNeeded
	s.applyRetentionLocked()
	return id
}

func (s *Server) advance(id int, nextNeeded uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.followers[id] = nextNeeded
	s.applyRetentionLocked()
}

func (s *Server) untrack(id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.followers, id)
	s.applyRetentionLocked()
}

func (s *Server) applyRetentionLocked() {
	var floor uint64
	for _, seq := range s.followers {
		if floor == 0 || seq < floor {
			floor = seq
		}
	}
	s.st.SetJournalRetention(floor)
}

// ServeCheckpoint streams the leader's latest checkpoint payload for
// follower bootstrap; X-Replica-Epoch and X-Checkpoint-Seq headers carry
// the fencing epoch and the sequence the payload covers through.
func (s *Server) ServeCheckpoint(w http.ResponseWriter, r *http.Request) {
	seq, payload, err := wal.LatestCheckpoint(serve.CheckpointDir(s.dir))
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Replica-Epoch", strconv.FormatUint(s.epoch(), 10))
	w.Header().Set("X-Checkpoint-Seq", strconv.FormatUint(seq, 10))
	w.Write(payload)
}

// ServeStream handles GET /replicate?after_seq=N[&epoch=E]: a chunked
// stream opening with a handshake frame and then pushing records frames
// as the journal grows, heartbeats when it is idle. An epoch parameter
// that does not match the node's current epoch is refused with 409 (the
// follower is fenced off or talking to the wrong incarnation); a
// truncated journal that no longer holds after_seq+1 is refused with 410
// (the follower must re-bootstrap from a checkpoint). The stream ends
// when the client disconnects or the node's epoch changes under it.
func (s *Server) ServeStream(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	after, err := strconv.ParseUint(q.Get("after_seq"), 10, 64)
	if err != nil {
		http.Error(w, "bad after_seq", http.StatusBadRequest)
		return
	}
	epoch := s.epoch()
	if es := q.Get("epoch"); es != "" {
		want, err := strconv.ParseUint(es, 10, 64)
		if err != nil {
			http.Error(w, "bad epoch", http.StatusBadRequest)
			return
		}
		if want != epoch {
			w.Header().Set("X-Replica-Epoch", strconv.FormatUint(epoch, 10))
			http.Error(w, fmt.Sprintf("epoch %d, want %d", epoch, want), http.StatusConflict)
			return
		}
	}
	jdir := serve.JournalDir(s.dir)
	frames, first, last, err := wal.ReadFramesAfter(jdir, after, s.ChunkBytes)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if first != 0 && first > after+1 {
		// The journal starts past the follower's position: truncated
		// below it before this stream could pin retention.
		http.Error(w, fmt.Sprintf("journal starts at seq %d, follower needs %d", first, after+1), http.StatusGone)
		return
	}
	id := s.track(after + 1)
	defer s.untrack(id)

	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Replica-Epoch", strconv.FormatUint(epoch, 10))
	w.WriteHeader(http.StatusOK)

	ctr := s.st.Counters()
	send := func(f Frame) bool {
		buf := AppendFrame(nil, f)
		if _, err := w.Write(buf); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		ctr.ReplicaFramesSent.Add(1)
		ctr.ReplicaBytesSent.Add(int64(len(buf)))
		return true
	}
	if !send(Frame{Kind: FrameHandshake, Epoch: epoch, LeaderSeq: s.st.JournalSeq()}) {
		return
	}
	lastBeat := time.Now()
	for {
		if len(frames) > 0 {
			if !send(Frame{Kind: FrameRecords, Epoch: epoch, LeaderSeq: s.st.JournalSeq(), Records: frames}) {
				return
			}
			after = last
			s.advance(id, after+1)
			lastBeat = time.Now()
		} else if time.Since(lastBeat) >= s.Heartbeat {
			if !send(Frame{Kind: FrameHeartbeat, Epoch: epoch, LeaderSeq: s.st.JournalSeq()}) {
				return
			}
			lastBeat = time.Now()
		}
		if s.epoch() != epoch {
			return // deposed under this stream; end it so the client re-handshakes
		}
		if s.st.JournalSeq() <= after {
			select {
			case <-r.Context().Done():
				return
			case <-time.After(s.Poll):
			}
		} else if r.Context().Err() != nil {
			return
		}
		frames, first, last, err = wal.ReadFramesAfter(jdir, after, s.ChunkBytes)
		if err != nil || (first != 0 && first > after+1) {
			return // corruption or gap mid-stream: drop; the client rehandshakes
		}
	}
}

// Register installs the replication endpoints on mux.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET /replicate", s.ServeStream)
	mux.HandleFunc("GET /replicate/checkpoint", s.ServeCheckpoint)
}
