package replica

// Epoch persistence: a tiny fenced-leadership record in the data dir. A
// bootstrap leader starts at epoch 1; /promote seals the follower's
// applied journal position into epoch+1 and persists it BEFORE the node
// starts accepting writes, so a restart of a promoted node keeps fencing
// the deposed leader's stream. The file is one fixed-size record written
// atomically (tmp + fsync + rename), mirroring wal.WriteCheckpoint.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

const (
	epochFile  = "epoch"
	epochMagic = 0x53505245 // "SPRE"
	epochSize  = 4 + 8 + 8 + 4
)

// Epoch is the persisted leadership record.
type Epoch struct {
	// Epoch is the fencing token carried on every stream frame.
	Epoch uint64
	// SealedSeq is the journal sequence the previous epoch was sealed at
	// (the promoted follower's applied position; 0 for a bootstrap
	// leader).
	SealedSeq uint64
}

// SaveEpoch atomically persists e into dir.
func SaveEpoch(dir string, e Epoch) error {
	var buf [epochSize]byte
	binary.LittleEndian.PutUint32(buf[0:], epochMagic)
	binary.LittleEndian.PutUint64(buf[4:], e.Epoch)
	binary.LittleEndian.PutUint64(buf[12:], e.SealedSeq)
	binary.LittleEndian.PutUint32(buf[20:], crc32.Checksum(buf[:20], crcTable))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp := filepath.Join(dir, epochFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf[:]); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, epochFile))
}

// LoadEpoch reads the epoch record from dir. ok=false (with a nil error)
// means no record exists — a fresh data dir.
func LoadEpoch(dir string) (e Epoch, ok bool, err error) {
	buf, err := os.ReadFile(filepath.Join(dir, epochFile))
	if errors.Is(err, os.ErrNotExist) {
		return Epoch{}, false, nil
	}
	if err != nil {
		return Epoch{}, false, err
	}
	if len(buf) != epochSize {
		return Epoch{}, false, fmt.Errorf("replica: epoch file of %d bytes", len(buf))
	}
	if binary.LittleEndian.Uint32(buf) != epochMagic {
		return Epoch{}, false, errors.New("replica: epoch file bad magic")
	}
	if crc32.Checksum(buf[:20], crcTable) != binary.LittleEndian.Uint32(buf[20:]) {
		return Epoch{}, false, errors.New("replica: epoch file fails CRC")
	}
	return Epoch{
		Epoch:     binary.LittleEndian.Uint64(buf[4:]),
		SealedSeq: binary.LittleEndian.Uint64(buf[12:]),
	}, true, nil
}

// LoadOrInitEpoch returns dir's epoch record, persisting epoch 1 first if
// none exists — the bootstrap-leader path.
func LoadOrInitEpoch(dir string) (Epoch, error) {
	e, ok, err := LoadEpoch(dir)
	if err != nil {
		return Epoch{}, err
	}
	if ok {
		return e, nil
	}
	e = Epoch{Epoch: 1}
	if err := SaveEpoch(dir, e); err != nil {
		return Epoch{}, err
	}
	return e, nil
}
